// Package chats is a software reproduction of "Chaining Transactions for
// Effective Concurrency Management in Hardware Transactional Memory"
// (MICRO 2024): a deterministic multicore simulator with best-effort HTM
// whose conflict-resolution policy is pluggable, including the paper's
// CHATS requester-speculates design and every system it is evaluated
// against.
//
// Quick start:
//
//	cfg := chats.DefaultConfig()
//	cfg.System = chats.CHATS
//	stats, err := chats.Run(cfg, myWorkload)
//
// A workload implements chats.Workload: Setup lays out data in simulated
// memory, Thread runs on each simulated core using chats.Ctx (Atomic,
// Load, Store, Work), and Check verifies the final memory image. The
// STAMP-like benchmarks of the paper's evaluation are available through
// chats.NewWorkload.
package chats

import (
	"fmt"
	"io"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/mem"
)

// SystemKind selects the evaluated HTM system.
type SystemKind = core.Kind

// The evaluated systems (Section VI-B).
const (
	Baseline SystemKind = core.KindBaseline // requester-wins, Intel-RTM-like
	NaiveRS  SystemKind = core.KindNaiveRS  // naive requester-speculates (Fig. 1)
	CHATS    SystemKind = core.KindCHATS    // the paper's contribution
	Power    SystemKind = core.KindPower    // PowerTM dual priority
	PCHATS   SystemKind = core.KindPCHATS   // CHATS + PowerTM
	LEVC     SystemKind = core.KindLEVC     // LEVC-BE-Idealized
)

// Systems lists all systems in the paper's presentation order.
func Systems() []SystemKind { return core.Kinds() }

// Addr is a simulated physical byte address.
type Addr = mem.Addr

// LineSize is the simulated cache line size in bytes.
const LineSize = mem.LineSize

// WordSize is the simulated machine word size in bytes.
const WordSize = mem.WordSize

// Re-exported workload-facing types.
type (
	// Workload is a transactional program (see package documentation).
	Workload = machine.Workload
	// Ctx is the per-thread programming interface.
	Ctx = machine.Ctx
	// Tx is the handle inside an atomic block.
	Tx = machine.Tx
	// World is the simulated memory view used by Setup/Check.
	World = machine.World
	// Stats are the per-run statistics (cycles, aborts by cause, flits...).
	Stats = machine.RunStats
	// Traits are the per-system tunables of Table II (retries, VSB size,
	// validation interval, forwarding mode).
	Traits = htm.Traits
	// MachineConfig are the Table I machine parameters.
	MachineConfig = machine.Config
	// Tracer observes the transactional event stream of a run (see
	// machine.Tracer; telemetry.New builds a collecting implementation).
	Tracer = machine.Tracer
	// MultiTracer fans events out to several tracers at once.
	MultiTracer = machine.MultiTracer
)

// Config selects the machine, the HTM system and optional trait
// overrides for one run.
type Config struct {
	// Machine carries the Table I parameters (cores, caches, latencies).
	Machine MachineConfig
	// System picks the conflict-resolution design.
	System SystemKind
	// Traits, when non-nil, overrides the system's Table II defaults —
	// used by the sensitivity analyses (retry count, VSB size, validation
	// interval, forwarding mode).
	Traits *Traits
}

// DefaultConfig returns the paper's 16-core Table I machine running the
// baseline system.
func DefaultConfig() Config {
	return Config{Machine: machine.DefaultConfig(), System: Baseline}
}

// Run simulates the workload on the configured machine and returns the
// collected statistics. The workload's Check runs on the flushed final
// memory image; its failure is returned as an error.
func Run(cfg Config, w Workload) (Stats, error) {
	m, err := build(cfg)
	if err != nil {
		return Stats{}, err
	}
	return m.Run(w)
}

// RunTraced is Run with a per-event transactional trace (begins,
// commits, aborts, forwardings, validations) written to out.
func RunTraced(cfg Config, w Workload, out io.Writer) (Stats, error) {
	return RunWithTracer(cfg, w, machine.WriterTracer{W: out})
}

// WriterTracer returns a Tracer that formats every event as one line on
// w (what chatsim -trace and RunTraced attach).
func WriterTracer(w io.Writer) Tracer { return machine.WriterTracer{W: w} }

// RunWithTracer is Run with an arbitrary tracer attached — a
// machine.WriterTracer, a telemetry.Collector, or several at once via a
// MultiTracer. The tracer observes every transactional event of the run.
func RunWithTracer(cfg Config, w Workload, t Tracer) (Stats, error) {
	m, err := build(cfg)
	if err != nil {
		return Stats{}, err
	}
	m.SetTracer(t)
	return m.Run(w)
}

// WaveInfo carries the engine's parallel-coverage counters for one run:
// fired events, the same-cycle distinct-domain waves they formed, and
// the subset that ran on the serial domain (each one a full barrier).
// Events/Waves is the average parallel batch width; Serial/Events the
// residual barrier fraction. Scheduling structure only — never part of
// Stats, so bit-equality comparisons don't see it.
type WaveInfo struct {
	Events uint64
	Waves  uint64
	Serial uint64
}

// RunObserved is Run with an optional tracer (nil = none) and, when
// waves is non-nil, the engine's wave counters stored there after the
// run — the seam record producers use to stamp wave width into the run
// database without rebuilding the machine.
func RunObserved(cfg Config, w Workload, t Tracer, waves *WaveInfo) (Stats, error) {
	m, err := build(cfg)
	if err != nil {
		return Stats{}, err
	}
	if t != nil {
		m.SetTracer(t)
	}
	st, err := m.Run(w)
	if waves != nil {
		waves.Events, waves.Waves, waves.Serial = m.WaveStats()
	}
	return st, err
}

func build(cfg Config) (*machine.Machine, error) {
	var (
		policy htm.Policy
		err    error
	)
	if cfg.Traits != nil {
		policy, err = core.NewWith(cfg.System, *cfg.Traits)
	} else {
		policy, err = core.New(cfg.System)
	}
	if err != nil {
		return nil, err
	}
	return machine.New(cfg.Machine, policy)
}

// EffectiveIntraWorkers reports the engine worker count Run will use for
// cfg: Machine.IntraWorkers, clamped to 1 (the serial engine) when the
// run is forced serial — traced reports whether any tracer, telemetry
// collector or invariant checker will be attached; fault injection,
// watchdog/starvation diagnostics and PowerTM-token systems force serial
// on their own. Record producers use it to stamp the engine mode.
func EffectiveIntraWorkers(cfg Config, traced bool) int {
	usesPower := false
	if cfg.Traits != nil {
		usesPower = cfg.Traits.UsesPower
	} else if t, err := SystemTraits(cfg.System); err == nil {
		usesPower = t.UsesPower
	}
	return machine.EffectiveIntraWorkers(cfg.Machine, traced, usesPower)
}

// SystemTraits returns the Table II default traits of a system.
func SystemTraits(k SystemKind) (Traits, error) {
	p, err := core.New(k)
	if err != nil {
		return Traits{}, err
	}
	return p.Traits(), nil
}

// ParseSystem converts a CLI string into a SystemKind.
func ParseSystem(s string) (SystemKind, error) {
	k := SystemKind(s)
	if _, err := core.New(k); err != nil {
		return "", fmt.Errorf("chats: unknown system %q (known: %v)", s, core.KindNames())
	}
	return k, nil
}
