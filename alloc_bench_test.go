// Allocation benchmarks for the simulation hot path. The scheduling
// micro-benchmarks in internal/sim pin the event free list at 0
// allocs/op; these whole-machine benchmarks track the steady-state
// allocation rate per simulated cycle end to end (event recycling,
// transaction read/write-set reuse, write-back buffer pooling), so a
// regression in any layer shows up as allocs/simcycle creeping back up.
package chats_test

import (
	"testing"

	"chats"
	"chats/internal/workloads"
)

// runAllocCell simulates one cell per iteration and reports allocations
// normalized by simulated cycles, the scale-free steady-state figure.
func runAllocCell(b *testing.B, system chats.SystemKind, bench string) {
	b.Helper()
	cfg := benchCfg(system)
	var cycles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := workloads.New(bench, workloads.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		st, err := chats.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/op")
}

// BenchmarkMachineAllocs runs contended and cache-friendly cells on the
// baseline and CHATS systems. allocs/op here covers machine+workload
// construction (unavoidable per run) plus the steady state; watch the
// trend, the sim-layer benchmarks assert the exact zero.
func BenchmarkMachineAllocs(b *testing.B) {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.CHATS} {
		for _, bench := range []string{"cadd", "llb-h", "intruder"} {
			b.Run(string(system)+"/"+bench, func(b *testing.B) {
				runAllocCell(b, system, bench)
			})
		}
	}
}
