module chats

go 1.22
