// Bank: concurrent random transfers between accounts under every
// evaluated HTM system. The invariant — total money is conserved — holds
// regardless of how conflicts are resolved, demonstrating that
// requester-speculates forwarding (with value-based validation and
// PiC-ordered commits) preserves atomicity and isolation.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"chats"
)

const (
	accounts        = 32
	transfersPerTid = 50
	initialBalance  = 1000
)

type bank struct {
	base chats.Addr
}

func (b *bank) Name() string { return "bank" }

func (b *bank) acct(i int) chats.Addr { return b.base + chats.Addr(i*chats.LineSize) }

func (b *bank) Setup(w *chats.World, threads int) {
	b.base = w.Alloc.Lines(accounts)
	for i := 0; i < accounts; i++ {
		w.Mem.WriteWord(b.acct(i), initialBalance)
	}
}

func (b *bank) Thread(ctx chats.Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < transfersPerTid; i++ {
		from, to := r.Intn(accounts), r.Intn(accounts)
		if from == to {
			continue
		}
		amount := r.Uint64n(20) + 1
		ctx.Atomic(func(tx chats.Tx) {
			fv := tx.Load(b.acct(from))
			if fv < amount {
				return // insufficient funds: no-op transaction
			}
			tv := tx.Load(b.acct(to))
			tx.Work(25) // fraud checks
			tx.Store(b.acct(from), fv-amount)
			tx.Store(b.acct(to), tv+amount)
		})
	}
}

func (b *bank) Check(w *chats.World) error {
	var total uint64
	for i := 0; i < accounts; i++ {
		total += w.Mem.ReadWord(b.acct(i))
	}
	if want := uint64(accounts * initialBalance); total != want {
		return fmt.Errorf("money not conserved: %d, want %d", total, want)
	}
	return nil
}

func main() {
	fmt.Printf("%-16s %10s %8s %8s %10s\n", "system", "cycles", "commits", "aborts", "conserved")
	for _, system := range chats.Systems() {
		cfg := chats.DefaultConfig()
		cfg.System = system
		stats, err := chats.Run(cfg, &bank{})
		if err != nil {
			log.Fatalf("%s: %v", system, err)
		}
		fmt.Printf("%-16s %10d %8d %8d %10s\n",
			system, stats.Cycles, stats.Commits, stats.Aborts, "yes")
	}
}
