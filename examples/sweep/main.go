// Sweep: a parameter-sweep study through the public API — how CHATS
// reacts to the size of its Validation State Buffer and the validation
// period (the paper's Fig. 10 sensitivity analysis, on one workload).
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"chats"
	"chats/internal/workloads"
)

func main() {
	vsbSizes := []int{1, 2, 4, 8, 16}
	intervals := []uint64{50, 100, 200, 400}

	fmt.Println("CHATS on yada: execution cycles by VSB size (rows) and validation interval (cols)")
	fmt.Printf("%8s", "")
	for _, iv := range intervals {
		fmt.Printf("  val=%-6d", iv)
	}
	fmt.Println()
	for _, vsb := range vsbSizes {
		fmt.Printf("vsb=%-4d", vsb)
		for _, iv := range intervals {
			traits, err := chats.SystemTraits(chats.CHATS)
			if err != nil {
				log.Fatal(err)
			}
			traits.VSBSize = vsb
			traits.ValidationInterval = iv
			cfg := chats.DefaultConfig()
			cfg.System = chats.CHATS
			cfg.Traits = &traits
			w, err := workloads.New("yada", workloads.Small)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := chats.Run(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10d", stats.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nAs in the paper's Fig. 10, a handful of VSB entries captures almost all")
	fmt.Println("of the benefit: growing the buffer past the knee barely moves execution time.")
}
