// LLB: the paper's linked-list microbenchmark (Section VI-C) run through
// the public API — threads traverse a shared sorted list and modify the
// element they searched for. Traversals read long prefixes of the list,
// so a writer near the front invalidates many concurrent traversals; the
// requester-speculates systems forward instead of aborting.
//
//	go run ./examples/llb
package main

import (
	"fmt"
	"log"

	"chats"
	"chats/internal/workloads"
)

func main() {
	fmt.Println("llb (low contention): threads mostly modify disjoint key ranges")
	run("llb-l")
	fmt.Println("\nllb (high contention): every thread modifies every range")
	run("llb-h")
}

func run(name string) {
	var baseline uint64
	fmt.Printf("%-16s %10s %8s %8s %12s\n", "system", "cycles", "aborts", "fwd-used", "vs baseline")
	for _, system := range chats.Systems() {
		w, err := workloads.New(name, workloads.Small)
		if err != nil {
			log.Fatal(err)
		}
		cfg := chats.DefaultConfig()
		cfg.System = system
		stats, err := chats.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		if system == chats.Baseline {
			baseline = stats.Cycles
		}
		fmt.Printf("%-16s %10d %8d %8d %11.2fx\n",
			system, stats.Cycles, stats.Aborts, stats.SpecRespsConsumed,
			float64(stats.Cycles)/float64(baseline))
	}
}
