// Chains: watch CHATS build transaction chains. Runs the cadd
// microbenchmark (the chained-add pattern) with a chain tracer attached
// and prints the forwarding edges — who produced speculative data for
// whom — plus the longest chain observed, demonstrating the paper's
// central concept end to end.
//
//	go run ./examples/chains
package main

import (
	"fmt"
	"log"

	"chats"
	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/workloads"
)

func main() {
	policy, err := core.New(core.KindCHATS)
	if err != nil {
		log.Fatal(err)
	}
	cfg := chats.DefaultConfig()
	m, err := machine.New(cfg.Machine, policy)
	if err != nil {
		log.Fatal(err)
	}
	tracer := &machine.ChainTracer{}
	m.SetTracer(tracer)

	w, err := workloads.New("cadd", workloads.Tiny)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := m.Run(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cadd under CHATS: %d cycles, %d commits, %d aborts\n",
		stats.Cycles, stats.Commits, stats.Aborts)
	fmt.Printf("%d forwardings recorded; showing the first 15:\n\n", len(tracer.Edges))
	for i, e := range tracer.Edges {
		if i == 15 {
			break
		}
		fmt.Printf("  cycle %7d  core%-2d --%v--> core%-2d (producer PiC %d)\n",
			e.Cycle, e.Producer, e.Line, e.Consumer, e.PiC)
	}

	// How often did each core act as producer / consumer?
	var produced, consumed [64]int
	for _, e := range tracer.Edges {
		produced[e.Producer]++
		consumed[e.Consumer]++
	}
	fmt.Printf("\n%-6s %9s %9s\n", "core", "produced", "consumed")
	for c := 0; c < cfg.Machine.Cores; c++ {
		if produced[c]+consumed[c] > 0 {
			fmt.Printf("core%-2d %9d %9d\n", c, produced[c], consumed[c])
		}
	}
	fmt.Printf("\nlongest observed chain: %d hops\n", tracer.MaxChainDepth())
	fmt.Println("(a hop is one producer->consumer forwarding; the PiC register")
	fmt.Println("caps chains at 31 positions and keeps them acyclic)")
}
