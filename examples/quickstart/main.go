// Quickstart: define a tiny transactional workload against the public
// API and compare the requester-wins baseline with CHATS on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chats"
)

// counters is a workload where every thread increments a handful of hot
// shared counters — write-write contention that requester-speculates
// turns into chains instead of aborts.
type counters struct {
	iters int
	base  chats.Addr
	n     int
}

func (c *counters) Name() string { return "quickstart-counters" }

func (c *counters) Setup(w *chats.World, threads int) {
	c.n = 4
	c.base = w.Alloc.Lines(c.n) // one counter per cache line
}

func (c *counters) Thread(ctx chats.Ctx, tid int) {
	for i := 0; i < c.iters; i++ {
		slot := c.base + chats.Addr(ctx.Rand().Intn(c.n)*64)
		ctx.Atomic(func(tx chats.Tx) {
			v := tx.Load(slot)
			tx.Store(slot, v+1)
			tx.Work(60) // some transactional computation after the update
		})
		ctx.Work(40) // non-transactional work between operations
	}
}

func (c *counters) Check(w *chats.World) error {
	var sum uint64
	for i := 0; i < c.n; i++ {
		sum += w.Mem.ReadWord(c.base + chats.Addr(i*64))
	}
	want := uint64(16 * c.iters)
	if sum != want {
		return fmt.Errorf("lost updates: %d, want %d", sum, want)
	}
	return nil
}

func main() {
	for _, system := range []chats.SystemKind{chats.Baseline, chats.CHATS} {
		cfg := chats.DefaultConfig()
		cfg.System = system
		stats, err := chats.Run(cfg, &counters{iters: 40})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %8d cycles  %4d commits  %4d aborts  %4d forwardings used\n",
			system, stats.Cycles, stats.Commits, stats.Aborts, stats.ValidationsOK)
	}
	fmt.Println("\nEvery update survived on both systems (Check verifies the sum);")
	fmt.Println("CHATS gets there with fewer aborts by chaining the transactions.")
}
