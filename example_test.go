package chats_test

import (
	"fmt"

	"chats"
)

// histogram is a workload where threads bump shared histogram buckets.
type histogram struct {
	base chats.Addr
}

func (h *histogram) Name() string { return "histogram" }

func (h *histogram) Setup(w *chats.World, threads int) {
	h.base = w.Alloc.Lines(8) // 8 buckets, one line each
}

func (h *histogram) Thread(ctx chats.Ctx, tid int) {
	for i := 0; i < 12; i++ {
		bucket := h.base + chats.Addr(ctx.Rand().Intn(8)*chats.LineSize)
		ctx.Atomic(func(tx chats.Tx) {
			tx.Store(bucket, tx.Load(bucket)+1)
		})
	}
}

func (h *histogram) Check(w *chats.World) error {
	var sum uint64
	for i := 0; i < 8; i++ {
		sum += w.Mem.ReadWord(h.base + chats.Addr(i*chats.LineSize))
	}
	if sum != 16*12 {
		return fmt.Errorf("histogram lost updates: %d", sum)
	}
	return nil
}

// Example runs a small transactional workload under CHATS and prints
// whether every update survived. Runs are deterministic, so the output
// is stable.
func Example() {
	cfg := chats.DefaultConfig()
	cfg.System = chats.CHATS
	stats, err := chats.Run(cfg, &histogram{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("committed %d transactions on %s\n", stats.Commits, stats.System)
	// Output: committed 192 transactions on CHATS
}
