package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"chats"
	"chats/internal/difftest"
	"chats/internal/htm"
	"chats/internal/randprog"
	"chats/internal/runstore"
	"chats/internal/workloads"
)

// fuzzGen maps the CLI -size to a generator preset and mixes plain
// stores in (the registry presets are adds-only; the fuzzer wants
// order-sensitive programs too, which the commit-order replay oracle
// handles).
func fuzzGen(size workloads.Size) randprog.GenConfig {
	g := randprog.Preset(int(size))
	g.AddFrac = 0.5
	return g
}

// fuzzSystems parses the -systems list for -fuzz/-repro (empty: the
// five paper systems).
func fuzzSystems(systems string) ([]chats.SystemKind, error) {
	if systems == "" {
		return nil, nil // difftest default
	}
	var kinds []chats.SystemKind
	for _, s := range strings.Split(systems, ",") {
		k, err := chats.ParseSystem(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// runFuzz drives a differential-fuzzing campaign from the CLI. Exits
// non-zero if any program fails its oracles. With -fuzz-break the CHATS
// validation is deliberately broken and the exit sense inverts: the
// campaign must CATCH the bug, proving the oracle has teeth.
func runFuzz(cfg chats.Config, n int, start uint64, size, systems string, jobs int,
	budget time.Duration, minimize bool, reproOut string, selfTest, jsonOut bool,
	record func(runstore.Record)) error {
	sz, err := workloads.ParseSize(size)
	if err != nil {
		return err
	}
	kinds, err := fuzzSystems(systems)
	if err != nil {
		return err
	}
	opts := difftest.Options{
		Machine: &cfg.Machine,
		Systems: kinds,
		Seed:    cfg.Machine.Seed,
		Faults:  cfg.Machine.Faults,
	}
	if selfTest {
		// Break value-based validation on CHATS only and turn the
		// invariant checker off: the pure cross-system memory oracle
		// must still catch the corruption.
		opts.Systems = []chats.SystemKind{chats.CHATS}
		opts.Wrap = func(_ chats.SystemKind, p htm.Policy) htm.Policy { return difftest.SkipValidation(p) }
		opts.NoInvariants = true
	}
	rep := difftest.Fuzz(difftest.FuzzOptions{
		Start:    start,
		N:        n,
		Gen:      fuzzGen(sz),
		Check:    opts,
		Jobs:     jobs,
		Minimize: minimize,
		Budget:   budget,
		Record:   record,
	})

	if reproOut != "" && !rep.Ok() {
		writeFile(reproOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep.Failures)
		})
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Println(rep.Summary())
		for _, f := range rep.Failures {
			fmt.Printf("  seed %d: %s\n    spec: %s\n", f.Seed, f.Err, f.Spec)
			if f.MinSpec != "" {
				fmt.Printf("    minimized (%d ops): %s\n", f.MinOps, f.MinSpec)
			}
		}
	}
	if selfTest {
		if rep.Ok() {
			return fmt.Errorf("self-test: broken validation escaped the differential oracle (%d programs)", rep.Ran)
		}
		fmt.Printf("self-test ok: oracle caught the broken policy in %d/%d programs\n", len(rep.Failures), rep.Ran)
		return nil
	}
	if !rep.Ok() {
		return fmt.Errorf("%d of %d programs failed the differential oracle", len(rep.Failures), rep.Ran)
	}
	return nil
}

// runRepro replays one rp1 spec (or @file containing one, '#' comments
// allowed) through the full differential oracle.
func runRepro(cfg chats.Config, arg, systems string) error {
	spec := arg
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return err
		}
		spec = ""
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			spec = line
			break
		}
		if spec == "" {
			return fmt.Errorf("%s: no spec line found", arg[1:])
		}
	}
	p, err := randprog.Parse(spec)
	if err != nil {
		return err
	}
	kinds, err := fuzzSystems(systems)
	if err != nil {
		return err
	}
	opts := difftest.Options{
		Machine: &cfg.Machine,
		Systems: kinds,
		Seed:    cfg.Machine.Seed,
		Faults:  cfg.Machine.Faults,
	}
	if err := difftest.Check(p, opts); err != nil {
		return err
	}
	fmt.Printf("repro ok: %d ops, %d cores, all oracles green\n", p.NumOps(), p.Cores)
	return nil
}
