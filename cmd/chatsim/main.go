// Command chatsim runs one benchmark on one HTM system and prints the
// collected statistics.
//
// Usage:
//
//	chatsim -system chats -bench kmeans-h -size medium
//	chatsim -trace-chrome out.json -bench kmeans-h   # load in Perfetto
//	chatsim -hot-lines 8 -chain -metrics -bench cadd
//	chatsim -sweep -systems baseline,chats -benches cadd,llb-h -j 4
//	chatsim -fuzz 50 -size tiny -minimize            # differential fuzzing
//	chatsim -repro 'rp1;cores=2;pool=4;pack=1;priv=0|[a0+1]|[s0+2]'
//	chatsim -dump-config     # Table I
//	chatsim -dump-systems    # Table II
//	chatsim -list            # available benchmarks and systems
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"chats"
	"chats/internal/experiments"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/sweep"
	"chats/internal/telemetry"
	"chats/internal/workloads"
)

func main() {
	var (
		system      = flag.String("system", "chats", "HTM system: "+strings.Join(systemNames(), ", "))
		bench       = flag.String("bench", "kmeans-h", "benchmark: "+strings.Join(workloads.Names(), ", "))
		size        = flag.String("size", "small", "workload size: tiny, small, medium")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		cores       = flag.Int("cores", 16, "number of cores/threads")
		retries     = flag.Int("retries", -1, "override retry budget (-1 = Table II default)")
		vsb         = flag.Int("vsb", -1, "override VSB size (-1 = default)")
		valInterval = flag.Int("validation", -1, "override validation interval (-1 = default)")
		trace       = flag.Bool("trace", false, "print a per-event transactional trace to stderr")
		traceJSON   = flag.String("trace-json", "", "write the event stream as JSON Lines to this file")
		traceChrome = flag.String("trace-chrome", "", "write a Chrome trace_event file (open in Perfetto / chrome://tracing)")
		hotLines    = flag.Int("hot-lines", 0, "print the top-K contended cache lines (0 = off)")
		chainRep    = flag.Bool("chain", false, "print the chain-topology report")
		metrics     = flag.Bool("metrics", false, "print telemetry histograms and cycle-windowed series")
		window      = flag.Uint64("window", 10_000, "cycle window for the telemetry time series")
		jsonOut     = flag.Bool("json", false, "print statistics as JSON")
		faultSpec   = flag.String("faults", "", "fault-injection spec, e.g. 'spurious:p=0.01;jitter:p=0.1,max=8' ('soak' = the canonical all-kinds plan)")
		fallbackFB  = flag.String("fallback", "", "fallback path: lock (default), stm[:locks=N], elide[:budget=N,refill=N]")
		cmSpec      = flag.String("cm", "", "contention manager: fixed (default) or adaptive[:window=N,spec=F,wait=N,cap=N,fallbackafter=N,hotline=N]")
		backoffSpec = flag.String("backoff", "", "post-abort backoff variant: exp (default), linear, jitter, each with optional :cap=N")
		invariants  = flag.Bool("invariants", false, "attach the runtime invariant checker (chains, coherence, serializability oracle)")
		wdCycles    = flag.Uint64("watchdog-cycles", 0, "arm the livelock watchdog: kill the run with a diagnostic dump after this many cycles without a commit or fallback (0 = off)")
		maxAttempts = flag.Int("max-attempts", 0, "per-transaction attempt budget before the starvation watchdog kills the run (0 = off)")
		fuzzN       = flag.Int("fuzz", 0, "differential-fuzz N seeded random programs across systems (0 = off)")
		fuzzSeed    = flag.Uint64("fuzz-seed", 1, "first generator seed for -fuzz")
		fuzzBudget  = flag.Duration("fuzz-budget", 0, "wall-clock budget for -fuzz (0 = none; budgeted runs are not seed-reproducible)")
		minimize    = flag.Bool("minimize", false, "shrink each -fuzz failure to a minimal reproducer")
		reproOut    = flag.String("repro-out", "", "write -fuzz failures (specs + minimized reproducers) as JSON to this file")
		fuzzBreak   = flag.Bool("fuzz-break", false, "oracle self-test: break CHATS validation on purpose; the fuzz campaign must catch it")
		repro       = flag.String("repro", "", "replay one rp1 spec (or @file) through the differential oracle and exit")
		doSweep     = flag.Bool("sweep", false, "run a (systems × benches) grid instead of a single cell")
		storeDir    = flag.String("store", "", "record the run (or every sweep cell) into the run database at this directory")
		progress    = flag.Bool("progress", false, "with -sweep: print a live done/total cell count to stderr")
		sweepSys    = flag.String("systems", "", "comma-separated systems for -sweep (default: all)")
		sweepBench  = flag.String("benches", "", "comma-separated benchmarks for -sweep (default: all)")
		jobs        = flag.Int("j", 0, "cells to run in parallel with -sweep (0 = host cores / intra-j; results are identical at any -j)")
		intraJobs   = flag.Int("intra-j", 1, "engine workers per run: same-cycle events of distinct cores execute concurrently (results are identical at any -intra-j; 1 = serial engine)")
		dirBanks    = flag.Int("dir-banks", 0, "address-interleaved directory banks, power of two (0/1 = one bank; results are identical at any count, >1 adds parallel coverage under -intra-j)")
		dumpConfig  = flag.Bool("dump-config", false, "print Table I and exit")
		dumpSystems = flag.Bool("dump-systems", false, "print Table II and exit")
		list        = flag.Bool("list", false, "list benchmarks and systems and exit")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	cfg := chats.DefaultConfig()
	cfg.Machine.Seed = *seed
	cfg.Machine.Cores = *cores
	cfg.Machine.WatchdogCycles = *wdCycles
	cfg.Machine.MaxAttempts = *maxAttempts
	cfg.Machine.IntraWorkers = *intraJobs
	cfg.Machine.DirBanks = *dirBanks
	if *faultSpec != "" {
		spec := *faultSpec
		if spec == "soak" {
			spec = faults.SoakSpec
		}
		plan, err := faults.Parse(spec)
		if err != nil {
			fatal(err)
		}
		cfg.Machine.Faults = &plan
	}
	if *fallbackFB != "" {
		fb, err := machine.ParseFallback(*fallbackFB)
		if err != nil {
			fatal(err)
		}
		cfg.Machine.Fallback = fb
	}
	if *cmSpec != "" {
		cm, err := htm.ParseCM(*cmSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Machine.CM = cm
	}
	if *backoffSpec != "" {
		bo, err := machine.ParseBackoff(*backoffSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Machine.Backoff = bo
	}

	if *dumpConfig {
		experiments.PrintTableI(os.Stdout, cfg.Machine)
		return
	}
	if *dumpSystems {
		if err := experiments.PrintTableII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		fmt.Println("benchmarks:", strings.Join(workloads.Names(), " "))
		fmt.Println("systems:   ", strings.Join(systemNames(), " "))
		return
	}

	// -j and -intra-j multiply; budget the cell pool around the engine
	// workers each cell will run so the host is not oversubscribed.
	cellJobs := sweep.Budget(*jobs, *intraJobs)

	var store *runstore.Store
	if *storeDir != "" {
		var err error
		store, err = runstore.Open(*storeDir, runstore.Options{})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	if *fuzzN > 0 {
		var record func(runstore.Record)
		if store != nil {
			record = store.Recorder(runstore.NowMeta(), "fuzz")
		}
		if err := runFuzz(cfg, *fuzzN, *fuzzSeed, *size, *sweepSys, cellJobs,
			*fuzzBudget, *minimize, *reproOut, *fuzzBreak, *jsonOut, record); err != nil {
			fatal(err)
		}
		return
	}
	if *repro != "" {
		if err := runRepro(cfg, *repro, *sweepSys); err != nil {
			fatal(err)
		}
		return
	}

	if *doSweep {
		if err := runSweep(cfg, *sweepSys, *sweepBench, *size, cellJobs, *retries, *vsb, *valInterval, *jsonOut, *invariants, store, *progress); err != nil {
			fatal(err)
		}
		return
	}

	k, err := chats.ParseSystem(*system)
	if err != nil {
		fatal(err)
	}
	cfg.System = k
	if *retries >= 0 || *vsb >= 0 || *valInterval >= 0 {
		t, err := chats.SystemTraits(k)
		if err != nil {
			fatal(err)
		}
		if *retries >= 0 {
			t.Retries = *retries
		}
		if *vsb >= 0 {
			t.VSBSize = *vsb
		}
		if *valInterval >= 0 {
			t.ValidationInterval = uint64(*valInterval)
		}
		cfg.Traits = &t
	}

	sz, err := workloads.ParseSize(*size)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.New(*bench, sz)
	if err != nil {
		fatal(err)
	}

	// Assemble the tracer stack: the line tracer and the telemetry
	// collector can be attached together through a MultiTracer.
	var col *telemetry.Collector
	if *traceJSON != "" || *traceChrome != "" || *hotLines > 0 || *chainRep || *metrics {
		col = telemetry.New(cfg.Machine.Cores, telemetry.Options{Window: *window})
	}
	var tracers chats.MultiTracer
	if *trace {
		tracers = append(tracers, chats.WriterTracer(os.Stderr))
	}
	if col != nil {
		tracers = append(tracers, col)
	}
	var chk *invariant.Checker
	if *invariants {
		chk = invariant.New()
		tracers = append(tracers, chk)
	}

	var st chats.Stats
	var wv chats.WaveInfo
	cost := beginCost()
	switch len(tracers) {
	case 0:
		st, err = chats.RunObserved(cfg, w, nil, &wv)
	case 1:
		st, err = chats.RunObserved(cfg, w, tracers[0], &wv)
	default:
		st, err = chats.RunObserved(cfg, w, tracers, &wv)
	}
	wallNS, allocs := cost.finish()
	if err != nil {
		fatal(err)
	}
	if store != nil {
		rec := runstore.FromStats(st, string(cfg.System), cfg.Machine.Seed, experiments.TraitsKey(cfg.Traits), *size, wallNS, allocs)
		rec.StampEngine(chats.EffectiveIntraWorkers(cfg, len(tracers) > 0))
		rec.StampDirBanks(cfg.Machine.DirBanks)
		rec.StampWaves(wv.Events, wv.Waves, wv.Serial)
		if col != nil {
			runstore.AttachTelemetry(&rec, col, 16)
		}
		store.Recorder(runstore.NowMeta(), "chatsim")(rec)
	}
	if chk != nil {
		if verr := chk.Err(); verr != nil {
			fatal(verr)
		}
		c := chk.Counts()
		fmt.Printf("invariants  ok (%d tx replayed, %d ops, %d edges, %d lines diffed)\n",
			c.TxReplays, c.TxOps, c.Edges, c.LinesDiffed)
	}

	if col != nil {
		if *traceJSON != "" {
			writeFile(*traceJSON, col.WriteJSONL)
		}
		if *traceChrome != "" {
			writeFile(*traceChrome, col.WriteChromeTrace)
		}
		if *hotLines > 0 {
			col.WriteHotLineReport(os.Stdout, *hotLines)
			if cfg.Machine.DirBanks > 1 {
				col.WriteBankOccupancyReport(os.Stdout, cfg.Machine.DirBanks)
			}
		}
		if *chainRep {
			col.Chain().Fprint(os.Stdout)
		}
		if *metrics {
			col.Reg.Fprint(os.Stdout)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
		return
	}
	printStats(st)
}

// runCost measures host wall clock and heap allocations around one
// simulation, mirroring experiments.cellBenchRec. Mallocs is
// process-wide, so at -j > 1 the per-cell delta includes allocations of
// concurrently running cells; at -j 1 it is exact.
type runCost struct {
	start   time.Time
	mallocs uint64
}

func beginCost() runCost {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runCost{start: time.Now(), mallocs: ms.Mallocs}
}

func (c runCost) finish() (wallNS int64, allocs uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return time.Since(c.start).Nanoseconds(), ms.Mallocs - c.mallocs
}

// runSweep fans a (systems × benches) grid out over -j goroutines. Each
// cell builds its own config and workload, so the printed statistics are
// bit-identical at any -j; only wall clock changes. Results print in
// grid order (system-major) regardless of completion order. With a
// store attached, every cell is persisted as one record.
func runSweep(base chats.Config, systems, benches, size string, jobs, retries, vsb, valInterval int, jsonOut, invariants bool, store *runstore.Store, progress bool) error {
	var kinds []chats.SystemKind
	if systems == "" {
		kinds = chats.Systems()
	} else {
		for _, s := range strings.Split(systems, ",") {
			k, err := chats.ParseSystem(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			kinds = append(kinds, k)
		}
	}
	var names []string
	if benches == "" {
		names = workloads.Names()
	} else {
		// Validate every name before any cell runs: a typo must fail the
		// whole sweep upfront, not cell N of a half-finished grid.
		for _, b := range strings.Split(benches, ",") {
			b = strings.TrimSpace(b)
			if !knownBench(b) {
				return fmt.Errorf("unknown benchmark %q (known: %v)", b, workloads.Names())
			}
			names = append(names, b)
		}
	}
	sz, err := workloads.ParseSize(size)
	if err != nil {
		return err
	}

	type cell struct {
		cfg   chats.Config
		bench string
	}
	var cells []cell
	for _, k := range kinds {
		cfg := base
		cfg.System = k
		cfg.Traits = nil
		if retries >= 0 || vsb >= 0 || valInterval >= 0 {
			t, err := chats.SystemTraits(k)
			if err != nil {
				return err
			}
			if retries >= 0 {
				t.Retries = retries
			}
			if vsb >= 0 {
				t.VSBSize = vsb
			}
			if valInterval >= 0 {
				t.ValidationInterval = uint64(valInterval)
			}
			cfg.Traits = &t
		}
		for _, b := range names {
			cells = append(cells, cell{cfg: cfg, bench: b})
		}
	}

	var record func(runstore.Record)
	if store != nil {
		record = store.Recorder(runstore.NowMeta(), "sweep")
	}
	var prog sweep.Progress
	if progress {
		prog = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcells: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	results := make([]chats.Stats, len(cells))
	err = sweep.Map(jobs, len(cells), prog, func(i int) error {
		w, err := workloads.New(cells[i].bench, sz)
		if err != nil {
			return err
		}
		var st chats.Stats
		var wv chats.WaveInfo
		cost := beginCost()
		if invariants {
			// One fresh checker per cell: a Checker is per-run state.
			chk := invariant.New()
			st, err = chats.RunObserved(cells[i].cfg, w, chk, &wv)
			if err == nil {
				err = chk.Err()
			}
		} else {
			st, err = chats.RunObserved(cells[i].cfg, w, nil, &wv)
		}
		wallNS, allocs := cost.finish()
		if err != nil {
			return fmt.Errorf("%s on %s: %w", cells[i].cfg.System, cells[i].bench, err)
		}
		if record != nil {
			rec := runstore.FromStats(st, string(cells[i].cfg.System), cells[i].cfg.Machine.Seed,
				experiments.TraitsKey(cells[i].cfg.Traits), size, wallNS, allocs)
			rec.StampEngine(chats.EffectiveIntraWorkers(cells[i].cfg, invariants))
			rec.StampDirBanks(cells[i].cfg.Machine.DirBanks)
			rec.StampWaves(wv.Events, wv.Waves, wv.Serial)
			record(rec)
		}
		results[i] = st
		return nil
	})
	if err != nil {
		return err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	fmt.Printf("%-12s %-10s %12s %9s %9s %10s\n", "system", "bench", "cycles", "commits", "aborts", "abort-rate")
	for _, st := range results {
		fmt.Printf("%-12s %-10s %12d %9d %9d %10.3f\n",
			st.System, st.Workload, st.Cycles, st.Commits, st.Aborts, st.AbortRate())
	}
	return nil
}

func knownBench(name string) bool {
	for _, b := range workloads.Names() {
		if b == name {
			return true
		}
	}
	return false
}

func systemNames() []string {
	var ns []string
	for _, k := range chats.Systems() {
		ns = append(ns, string(k))
	}
	return ns
}

func printStats(st chats.Stats) {
	fmt.Printf("system      %s\n", st.System)
	fmt.Printf("workload    %s\n", st.Workload)
	fmt.Printf("cycles      %d\n", st.Cycles)
	fmt.Printf("commits     %d\n", st.Commits)
	fmt.Printf("aborts      %d (rate %.3f)\n", st.Aborts, st.AbortRate())
	for c := 1; c < htm.NumCauses; c++ {
		if st.ByCause[c] > 0 {
			fmt.Printf("  %-10s %d\n", htm.AbortCause(c).String(), st.ByCause[c])
		}
	}
	fmt.Printf("fallbacks   %d   power-acqs %d\n", st.Fallbacks, st.PowerAcqs)
	fmt.Printf("forwarding  sent %d  consumed %d  validations %d  validated %d\n",
		st.SpecRespsSent, st.SpecRespsConsumed, st.Validations, st.ValidationsOK)
	fmt.Printf("network     %d messages, %d flits\n", st.Messages, st.Flits)
	if st.FaultsInjected > 0 {
		fmt.Printf("faults      %d injected\n", st.FaultsInjected)
	}
	fmt.Printf("L1          %d hits, %d misses\n", st.L1Hits, st.L1Misses)
	fmt.Printf("fig6        conflicted %d/%d (commit/abort)  forwarders %d/%d  consumers %d/%d\n",
		st.ConflictedCommitted, st.ConflictedAborted,
		st.ForwarderCommitted, st.ForwarderAborted,
		st.ConsumerCommitted, st.ConsumerAborted)
}

// writeFile creates path and streams one telemetry export into it.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chatsim:", err)
	os.Exit(1)
}
