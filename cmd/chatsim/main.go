// Command chatsim runs one benchmark on one HTM system and prints the
// collected statistics.
//
// Usage:
//
//	chatsim -system chats -bench kmeans-h -size medium
//	chatsim -dump-config     # Table I
//	chatsim -dump-systems    # Table II
//	chatsim -list            # available benchmarks and systems
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chats"
	"chats/internal/experiments"
	"chats/internal/htm"
	"chats/internal/workloads"
)

func main() {
	var (
		system      = flag.String("system", "chats", "HTM system: "+strings.Join(systemNames(), ", "))
		bench       = flag.String("bench", "kmeans-h", "benchmark: "+strings.Join(workloads.Names(), ", "))
		size        = flag.String("size", "small", "workload size: tiny, small, medium")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		cores       = flag.Int("cores", 16, "number of cores/threads")
		retries     = flag.Int("retries", -1, "override retry budget (-1 = Table II default)")
		vsb         = flag.Int("vsb", -1, "override VSB size (-1 = default)")
		valInterval = flag.Int("validation", -1, "override validation interval (-1 = default)")
		trace       = flag.Bool("trace", false, "print a per-event transactional trace to stderr")
		jsonOut     = flag.Bool("json", false, "print statistics as JSON")
		dumpConfig  = flag.Bool("dump-config", false, "print Table I and exit")
		dumpSystems = flag.Bool("dump-systems", false, "print Table II and exit")
		list        = flag.Bool("list", false, "list benchmarks and systems and exit")
	)
	flag.Parse()

	cfg := chats.DefaultConfig()
	cfg.Machine.Seed = *seed
	cfg.Machine.Cores = *cores

	if *dumpConfig {
		experiments.PrintTableI(os.Stdout, cfg.Machine)
		return
	}
	if *dumpSystems {
		if err := experiments.PrintTableII(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		fmt.Println("benchmarks:", strings.Join(workloads.Names(), " "))
		fmt.Println("systems:   ", strings.Join(systemNames(), " "))
		return
	}

	k, err := chats.ParseSystem(*system)
	if err != nil {
		fatal(err)
	}
	cfg.System = k
	if *retries >= 0 || *vsb >= 0 || *valInterval >= 0 {
		t, err := chats.SystemTraits(k)
		if err != nil {
			fatal(err)
		}
		if *retries >= 0 {
			t.Retries = *retries
		}
		if *vsb >= 0 {
			t.VSBSize = *vsb
		}
		if *valInterval >= 0 {
			t.ValidationInterval = uint64(*valInterval)
		}
		cfg.Traits = &t
	}

	sz, err := workloads.ParseSize(*size)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.New(*bench, sz)
	if err != nil {
		fatal(err)
	}

	var st chats.Stats
	if *trace {
		st, err = chats.RunTraced(cfg, w, os.Stderr)
	} else {
		st, err = chats.Run(cfg, w)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
		return
	}
	printStats(st)
}

func systemNames() []string {
	var ns []string
	for _, k := range chats.Systems() {
		ns = append(ns, string(k))
	}
	return ns
}

func printStats(st chats.Stats) {
	fmt.Printf("system      %s\n", st.System)
	fmt.Printf("workload    %s\n", st.Workload)
	fmt.Printf("cycles      %d\n", st.Cycles)
	fmt.Printf("commits     %d\n", st.Commits)
	fmt.Printf("aborts      %d (rate %.3f)\n", st.Aborts, st.AbortRate())
	for c := 1; c < htm.NumCauses; c++ {
		if st.ByCause[c] > 0 {
			fmt.Printf("  %-10s %d\n", htm.AbortCause(c).String(), st.ByCause[c])
		}
	}
	fmt.Printf("fallbacks   %d   power-acqs %d\n", st.Fallbacks, st.PowerAcqs)
	fmt.Printf("forwarding  sent %d  consumed %d  validations %d  validated %d\n",
		st.SpecRespsSent, st.SpecRespsConsumed, st.Validations, st.ValidationsOK)
	fmt.Printf("network     %d messages, %d flits\n", st.Messages, st.Flits)
	fmt.Printf("L1          %d hits, %d misses\n", st.L1Hits, st.L1Misses)
	fmt.Printf("fig6        conflicted %d/%d (commit/abort)  forwarders %d/%d  consumers %d/%d\n",
		st.ConflictedCommitted, st.ConflictedAborted,
		st.ForwarderCommitted, st.ForwarderAborted,
		st.ConsumerCommitted, st.ConsumerAborted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chatsim:", err)
	os.Exit(1)
}
