// Command chats-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	chats-experiments                 # everything at medium size
//	chats-experiments -fig 4 -size small
//	chats-experiments -fig 1,4,7 -v
//	chats-experiments -fig 4 -j 4 -bench-json bench.json
//	chats-experiments -faults-soak -size tiny -j 4   # fault soak + invariants
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"chats"
	"chats/internal/experiments"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/stats"
	"chats/internal/sweep"
	"chats/internal/telemetry"
	"chats/internal/workloads"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure list (1,4,5,6,7,8,9,10,11) or 'all'")
		size      = flag.String("size", "medium", "workload size: tiny, small, medium")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		seeds     = flag.Int("seeds", 1, "seeds to average each cell over")
		verbose   = flag.Bool("v", false, "print a line per simulation")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		profile   = flag.String("profile", "", "instead of figures, profile one benchmark under telemetry (hot lines, chain topology, metrics)")
		profSys   = flag.String("profile-system", "chats", "system to profile with -profile")
		jobs      = flag.Int("j", 0, "simulation cells to run in parallel (0 = host cores / intra-j; results are identical at any -j)")
		intraJobs = flag.Int("intra-j", 1, "engine workers inside each simulation: same-cycle events of distinct cores run concurrently (results are identical at any -intra-j; 1 = serial engine)")
		benchJSON = flag.String("bench-json", "", "write a machine-readable bench trajectory {cell, simcycles, wallclock_ns, allocs} to this file")
		storeDir  = flag.String("store", "", "record every simulation into the run database at this directory")
		progress  = flag.Bool("progress", false, "print a live done/total cell count to stderr while each grid runs")
		benchBig  = flag.Bool("bench-large", false, "instead of figures, run the large-machine (64-core) bench grid serially and write it with -bench-json — pair -intra-j 1 and -intra-j 4 runs to measure intra-run parallelism")
		benchScl  = flag.Bool("bench-scale", false, "instead of figures, run the directory-scaling grid (CHATS on kmeans/cadd at 64 and 256 cores) serially and write it with -bench-json — pair runs at different -dir-banks to measure bank-level parallel coverage")
		dirBanks  = flag.Int("dir-banks", 0, "address-interleaved directory banks for every simulation, power of two (0/1 = one bank; results are identical at any count)")
		soak      = flag.Bool("faults-soak", false, "instead of figures, run every system × micro bench under the fault plan with invariants and the watchdog on")
		faultSpec = flag.String("faults", "", "fault spec for -faults-soak (default: the canonical all-kinds soak plan)")
		fbMatrix  = flag.Bool("fallback-matrix", false, "instead of figures, sweep fallback path × system × micro bench under a lockburst plan (graceful-degradation check)")
		fallback  = flag.String("fallback", "", "fallback path for every simulation: lock (default), stm[:locks=N], elide[:budget=N,refill=N]")
		cmSpec    = flag.String("cm", "", "contention manager: fixed (default) or adaptive[:window=N,spec=F,wait=N,cap=N,fallbackafter=N,hotline=N]")
		backoff   = flag.String("backoff", "", "post-abort backoff variant: exp (default), linear, jitter, each with optional :cap=N")
		fuzzN     = flag.Int("fuzz-smoke", 0, "instead of figures, differentially fuzz N seeded random programs across all systems (0 = off)")
		fuzzSeed  = flag.Uint64("fuzz-seed", 1, "first generator seed for -fuzz-smoke")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	// Cell-level and intra-run parallelism multiply: budget the pool so
	// cells × engine workers roughly matches the host core count.
	cellJobs := sweep.Budget(*jobs, *intraJobs)

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	sz, err := workloads.ParseSize(*size)
	if err != nil {
		fatal(err)
	}

	// The -fallback/-cm/-backoff knobs apply to every simulation of the
	// chosen mode (figures, soak, fuzz-smoke). The fallback matrix sweeps
	// its own path axis, so it only honors -cm and -backoff.
	applyKnobs := func(cfg *machine.Config) {
		var err error
		cfg.DirBanks = *dirBanks
		if *fallback != "" {
			if cfg.Fallback, err = machine.ParseFallback(*fallback); err != nil {
				fatal(err)
			}
		}
		if *cmSpec != "" {
			if cfg.CM, err = htm.ParseCM(*cmSpec); err != nil {
				fatal(err)
			}
		}
		if *backoff != "" {
			if cfg.Backoff, err = machine.ParseBackoff(*backoff); err != nil {
				fatal(err)
			}
		}
	}

	// Open the run database before mode dispatch: the figures, soak,
	// fallback-matrix and fuzz-smoke modes all record through the same
	// seam, tagged with the mode as the record source.
	meta := runstore.NowMeta()
	var recorder func(runstore.Record)
	if *storeDir != "" {
		store, err := runstore.Open(*storeDir, runstore.Options{})
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		source := "experiments"
		switch {
		case *fuzzN > 0:
			source = "fuzz"
		case *soak:
			source = "soak"
		case *fbMatrix:
			source = "fallback-matrix"
		}
		recorder = store.Recorder(meta, source)
	}

	if *fuzzN > 0 {
		p := experiments.Params{Size: sz, Machine: machine.DefaultConfig(), Workers: cellJobs, Recorder: recorder}
		p.Machine.Seed = *seed
		p.Machine.IntraWorkers = *intraJobs
		applyKnobs(&p.Machine)
		rep := experiments.FuzzSmoke(p, *fuzzSeed, *fuzzN)
		experiments.WriteFuzzReport(os.Stdout, rep)
		if !rep.Ok() {
			os.Exit(1)
		}
		return
	}
	if *profile != "" {
		if err := runProfile(*profile, *profSys, sz, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *benchBig {
		if *benchJSON == "" {
			fatal(fmt.Errorf("-bench-large needs -bench-json FILE"))
		}
		if err := runLargeBench(sz, *seed, *intraJobs, *dirBanks, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *benchScl {
		if *benchJSON == "" {
			fatal(fmt.Errorf("-bench-scale needs -bench-json FILE"))
		}
		if err := runScaleBench(sz, *seed, *intraJobs, *dirBanks, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *soak || *fbMatrix {
		p := experiments.Params{
			Size:     sz,
			Machine:  machine.DefaultConfig(),
			Workers:  cellJobs,
			Recorder: recorder,
		}
		p.Machine.Seed = *seed
		p.Machine.IntraWorkers = *intraJobs
		applyKnobs(&p.Machine)
		if *soak {
			p.WatchdogCycles = 10_000_000
		}
		if *verbose {
			p.Verbose = os.Stderr
		}
		if *faultSpec != "" {
			plan, err := faults.Parse(*faultSpec)
			if err != nil {
				fatal(err)
			}
			p.Faults = &plan
		}
		if *soak {
			err = runSoak(p)
		} else {
			err = runFallbackMatrix(p)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	p := experiments.Params{Size: sz, Machine: machine.DefaultConfig(), Seeds: *seeds, Workers: cellJobs, Recorder: recorder}
	p.Machine.Seed = *seed
	p.Machine.IntraWorkers = *intraJobs
	applyKnobs(&p.Machine)
	if *verbose {
		p.Verbose = os.Stderr
	}
	if *progress {
		p.Progress = stderrProgress
	}
	suite := experiments.NewSuite(p)
	start := time.Now()

	validFigs := []string{"1", "4", "5", "6", "7", "8", "9", "10", "11"}
	want := map[string]bool{}
	if *figs == "all" {
		for _, f := range validFigs {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			known := false
			for _, v := range validFigs {
				if f == v {
					known = true
					break
				}
			}
			if !known {
				fatal(fmt.Errorf("unknown figure %q (known: %s, or 'all')", f, strings.Join(validFigs, ",")))
			}
			want[f] = true
		}
	}

	experiments.PrintTableI(os.Stdout, p.Machine)
	if err := experiments.PrintTableII(os.Stdout); err != nil {
		fatal(err)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	writeCSV := func(t *stats.Table) {
		if *csvDir == "" {
			return
		}
		name := slug(t.Title) + ".csv"
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	show := func(t *stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		t.Fprint(os.Stdout)
		writeCSV(t)
	}
	showAll := func(ts []*stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			t.Fprint(os.Stdout)
			writeCSV(t)
		}
	}

	// Order matters for cache reuse: Fig4 populates the main matrix used
	// by Figs 1, 5, 6 and 7.
	if want["4"] {
		show(suite.Fig4())
	}
	if want["1"] {
		show(suite.Fig1())
	}
	if want["5"] {
		showAll(suite.Fig5())
	}
	if want["6"] {
		showAll(suite.Fig6())
	}
	if want["7"] {
		show(suite.Fig7())
	}
	if want["8"] {
		show(suite.Fig8())
	}
	if want["9"] {
		showAll(suite.Fig9(nil))
	}
	if want["10"] {
		showAll(suite.Fig10())
	}
	if want["11"] {
		show(suite.Fig11())
	}
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fatal(err)
		}
		if err := suite.WriteBenchJSON(f, cellJobs, time.Since(start), meta); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total simulations: %d\n", suite.Runs)
}

// runLargeBench runs the 64-core bench grid one cell at a time (the
// wall-clock and alloc numbers are the point, so nothing else may run
// concurrently) and writes the trajectory. Diff an -intra-j 1 run
// against an -intra-j 4 run with benchdiff to see the intra-run
// speedup.
func runLargeBench(sz workloads.Size, seed uint64, intra, banks int, out string) error {
	p := experiments.Params{Size: sz, Machine: machine.DefaultConfig(), Workers: 1}
	p.Machine.Seed = seed
	p.Machine.Cores = experiments.LargeBenchCores
	p.Machine.IntraWorkers = intra
	p.Machine.DirBanks = banks
	suite := experiments.NewSuite(p)
	start := time.Now()
	if err := suite.RunLargeBench(); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := suite.WriteBenchJSON(f, 1, time.Since(start), runstore.NowMeta()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "large bench: %d cells at %d cores, intra-j %d -> %s\n",
		suite.Runs, experiments.LargeBenchCores, intra, out)
	return f.Close()
}

// runScaleBench runs the directory-scaling grid serially (like
// runLargeBench, the wall-clock and alloc numbers are the point) and
// writes the trajectory. Pair runs at different -dir-banks with
// benchdiff: cycles must match bit-for-bit, the events-per-wave row
// shows the parallel-coverage gain.
func runScaleBench(sz workloads.Size, seed uint64, intra, banks int, out string) error {
	p := experiments.Params{Size: sz, Machine: machine.DefaultConfig(), Workers: 1}
	p.Machine.Seed = seed
	p.Machine.IntraWorkers = intra
	p.Machine.DirBanks = banks
	start := time.Now()
	cells, runs, err := experiments.RunScaleBench(p)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := experiments.WriteBenchCells(f, cells, 1, sz.String(), runs, time.Since(start), runstore.NowMeta()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scale bench: %d cells, dir-banks %d, intra-j %d -> %s\n",
		runs, banks, intra, out)
	return f.Close()
}

// runSoak runs the fault soak: every system × micro bench under the
// fault plan with the invariant checker and livelock watchdog armed.
// Partial results are reported — a failing cell never hides the rest.
func runSoak(p experiments.Params) error {
	rep := experiments.FaultSoak(p, nil)
	rep.Write(os.Stdout)
	if n := len(rep.Failures()); n > 0 {
		return fmt.Errorf("%d soak cells failed", n)
	}
	return nil
}

// runFallbackMatrix sweeps fallback path × system × micro bench under a
// lockburst plan (-faults overrides it) and prints the per-cell fallback
// concurrency — the graceful-degradation check from the command line.
func runFallbackMatrix(p experiments.Params) error {
	rep := experiments.FallbackMatrix(p, nil)
	rep.Write(os.Stdout)
	if n := len(rep.Failures()); n > 0 {
		return fmt.Errorf("%d fallback-matrix cells failed", n)
	}
	return nil
}

// runProfile executes one (system, benchmark) cell with the telemetry
// collector attached and prints the attribution reports — the drill-down
// companion to the aggregate figure tables.
func runProfile(bench, system string, sz workloads.Size, seed uint64) error {
	k, err := chats.ParseSystem(system)
	if err != nil {
		return err
	}
	w, err := workloads.New(bench, sz)
	if err != nil {
		return err
	}
	cfg := chats.DefaultConfig()
	cfg.System = k
	cfg.Machine.Seed = seed
	col := telemetry.New(cfg.Machine.Cores, telemetry.Options{})
	st, err := chats.RunWithTracer(cfg, w, col)
	if err != nil {
		return err
	}
	fmt.Printf("profile: %s on %s (%s size, seed %d): %d cycles, %d commits, %d aborts\n\n",
		st.System, st.Workload, sz, seed, st.Cycles, st.Commits, st.Aborts)
	col.WriteHotLineReport(os.Stdout, 10)
	col.Chain().Fprint(os.Stdout)
	col.Reg.Fprint(os.Stdout)
	return nil
}

// stderrProgress redraws a done/total cell count in place, closing the
// line when the grid completes (the sweep pool serializes calls).
func stderrProgress(done, total int) {
	fmt.Fprintf(os.Stderr, "\rcells: %d/%d", done, total)
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chats-experiments:", err)
	os.Exit(1)
}

// slug converts a table title into a safe file name.
func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == ':', r == '/', r == '.':
			if n := b.Len(); n > 0 && b.String()[n-1] != '-' {
				b.WriteByte('-')
			}
		}
	}
	return strings.Trim(b.String(), "-")
}
