package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts CPU profiling and arms the heap-profile dump.
// The returned stop function must run before the process exits normally;
// fatal error paths (os.Exit) lose the profiles, which is fine — a run
// being profiled is expected to succeed.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			// Flush pending frees so the allocs profile reflects the run.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}, nil
}
