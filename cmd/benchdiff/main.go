// Command benchdiff compares two bench trajectories cell by cell: wall
// clock, heap allocations, and allocations per simulated cycle. Inputs
// are chats-bench/v1 or /v2 JSON files (written by `chats-experiments
// -bench-json`), or a baseline pulled straight from a run-store
// database by commit.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -max-alloc-regress 10 BENCH_j1.json new.json   # CI gate
//	benchdiff -store runs/ -baseline abc123def456 new.json   # store baseline
//
// Because the simulator is deterministic, a SimCycles mismatch between
// the two sides for the same cell means the runs were not bit-identical
// — benchdiff reports it and exits nonzero regardless of flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"chats/internal/experiments"
	"chats/internal/runstore"
)

func main() {
	maxRegress := flag.Float64("max-alloc-regress", 0,
		"fail (exit 1) if any common cell's allocs grew by more than this percentage (0 = report only)")
	allocSlack := flag.Uint64("alloc-slack", 5000,
		"absolute alloc headroom per cell before -max-alloc-regress applies (absorbs runtime noise on tiny cells)")
	minWaveRatio := flag.Float64("min-wave-ratio", 0,
		"fail (exit 1) if (new events/wave) / (old events/wave) over the common cells falls below this ratio (0 = report only; 1 = no regression allowed)")
	storeDir := flag.String("store", "",
		"run-store directory to read the baseline from (with -baseline, replaces OLD.json)")
	baseline := flag.String("baseline", "",
		"commit whose newest store records form the baseline (requires -store)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		fmt.Fprintf(os.Stderr, "       benchdiff [flags] -store DIR -baseline COMMIT NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if (*storeDir == "") != (*baseline == "") {
		fatal(fmt.Errorf("-store and -baseline must be used together"))
	}

	var (
		oldRep *experiments.BenchReport
		err    error
	)
	wantArgs := 2
	if *storeDir != "" {
		wantArgs = 1
		oldRep, err = loadStoreBaseline(*storeDir, *baseline)
	}
	if err != nil {
		fatal(err)
	}
	if flag.NArg() != wantArgs {
		flag.Usage()
		os.Exit(2)
	}
	if oldRep == nil {
		if oldRep, err = load(flag.Arg(0)); err != nil {
			fatal(err)
		}
	}
	newRep, err := load(flag.Arg(flag.NArg() - 1))
	if err != nil {
		fatal(err)
	}

	code := diff(os.Stdout, oldRep, newRep, *maxRegress, *allocSlack, *minWaveRatio)
	os.Exit(code)
}

func load(path string) (*experiments.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep experiments.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != "chats-bench/v1" && rep.Schema != experiments.BenchSchema {
		return nil, fmt.Errorf("%s: unsupported schema %q (want chats-bench/v1 or %s)",
			path, rep.Schema, experiments.BenchSchema)
	}
	return &rep, nil
}

// loadStoreBaseline synthesizes the OLD side from the run database: the
// newest record per cell among the given commit's runs.
func loadStoreBaseline(dir, commit string) (*experiments.BenchReport, error) {
	s, err := runstore.Open(dir, runstore.Options{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	recs := s.Runs(runstore.Query{Commit: commit})
	if len(recs) == 0 {
		known := s.Commits()
		return nil, fmt.Errorf("store %s has no records for commit %q (known commits: %v)", dir, commit, known)
	}
	latest := make(map[string]runstore.Record, len(recs))
	for _, r := range recs {
		latest[r.Cell()] = r // Runs is ID-ordered: later wins
	}
	rep := &experiments.BenchReport{
		Schema: experiments.BenchSchema,
		Commit: commit,
		Runs:   len(latest),
	}
	for cell, r := range latest {
		rep.Cells = append(rep.Cells, experiments.CellBench{
			Cell:         cell,
			SimCycles:    r.SimCycles,
			WallclockNS:  r.WallclockNS,
			Allocs:       r.Allocs,
			WaveEvents:   r.WaveEvents,
			Waves:        r.Waves,
			SerialEvents: r.SerialEvents,
		})
	}
	sort.Slice(rep.Cells, func(i, j int) bool { return rep.Cells[i].Cell < rep.Cells[j].Cell })
	return rep, nil
}

// diff prints the per-cell comparison and returns the process exit code.
func diff(w *os.File, oldRep, newRep *experiments.BenchReport, maxRegress float64, slack uint64, minWaveRatio float64) int {
	oldCells := byName(oldRep.Cells)
	newCells := byName(newRep.Cells)

	var names []string
	for n := range oldCells {
		if _, ok := newCells[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-34s %11s %11s %7s %12s %12s %7s %9s\n",
		"cell", "old-ms", "new-ms", "speedup", "old-allocs", "new-allocs", "ratio", "allocs/kc")
	var (
		wallRatios, allocRatios []float64
		mismatched, regressed   []string
	)
	for _, n := range names {
		o, nw := oldCells[n], newCells[n]
		wallR := ratio(float64(o.WallclockNS), float64(nw.WallclockNS))
		allocR := ratio(float64(o.Allocs), float64(nw.Allocs))
		perKC := 0.0
		if nw.SimCycles > 0 {
			perKC = float64(nw.Allocs) / float64(nw.SimCycles) * 1000
		}
		note := ""
		if o.SimCycles != nw.SimCycles {
			note = "  !! simcycles differ"
			mismatched = append(mismatched, n)
		}
		if maxRegress > 0 && float64(nw.Allocs) > float64(o.Allocs)*(1+maxRegress/100)+float64(slack) {
			note += "  !! alloc regression"
			regressed = append(regressed, n)
		}
		fmt.Fprintf(w, "%-34s %11.1f %11.1f %6.2fx %12d %12d %6.2fx %9.2f%s\n",
			n, float64(o.WallclockNS)/1e6, float64(nw.WallclockNS)/1e6, wallR,
			o.Allocs, nw.Allocs, allocR, perKC, note)
		if wallR > 0 {
			wallRatios = append(wallRatios, wallR)
		}
		if allocR > 0 {
			allocRatios = append(allocRatios, allocR)
		}
	}
	fmt.Fprintf(w, "%-34s %11s %11s %6.2fx %12s %12s %6.2fx %9s\n",
		"geomean", "", "", geomean(wallRatios), "", "", geomean(allocRatios), "")
	fmt.Fprintf(w, "\ngeomean over %d common cells (old/new, >1 = new is better)\n", len(names))
	oldWave, newWave := reportWaves(w, names, oldCells, newCells)
	fmt.Fprintf(w, "total wall clock: %.1fs -> %.1fs (old -j %d, new -j %d)\n",
		float64(oldRep.TotalWallclockNS)/1e9, float64(newRep.TotalWallclockNS)/1e9,
		oldRep.Workers, newRep.Workers)

	reportMissing(w, "only in old", oldCells, newCells)
	reportMissing(w, "only in new", newCells, oldCells)

	code := 0
	if len(mismatched) > 0 {
		fmt.Fprintf(w, "\nFAIL: %d cell(s) changed simcycles — runs are not bit-identical: %v\n",
			len(mismatched), mismatched)
		code = 1
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "\nFAIL: %d cell(s) exceed the +%.0f%% alloc budget: %v\n",
			len(regressed), maxRegress, regressed)
		code = 1
	}
	if minWaveRatio > 0 {
		switch {
		case oldWave == 0 || newWave == 0:
			fmt.Fprintf(w, "\nFAIL: -min-wave-ratio %.2f set but a side is missing wave counters (old %.2f, new %.2f)\n",
				minWaveRatio, oldWave, newWave)
			code = 1
		case newWave < oldWave*minWaveRatio:
			fmt.Fprintf(w, "\nFAIL: wave width regressed: %.2f -> %.2f events/wave (ratio %.3f < min %.2f)\n",
				oldWave, newWave, newWave/oldWave, minWaveRatio)
			code = 1
		}
	}
	return code
}

// reportWaves prints the average parallel batch width (events per
// wave) and the serial-event fraction on each side when both carry the
// wave counters, and returns the two widths so -min-wave-ratio can gate
// on them (0 when a side lacks the counters). Wave shape is an engine
// property, not a correctness one — without the flag it never affects
// the exit code.
func reportWaves(w *os.File, names []string, oldCells, newCells map[string]experiments.CellBench) (oldWave, newWave float64) {
	var oe, ow, os_, ne, nw, ns uint64
	for _, n := range names {
		o, nc := oldCells[n], newCells[n]
		oe += o.WaveEvents
		ow += o.Waves
		os_ += o.SerialEvents
		ne += nc.WaveEvents
		nw += nc.Waves
		ns += nc.SerialEvents
	}
	if ow == 0 || nw == 0 {
		return 0, 0
	}
	oldWave = float64(oe) / float64(ow)
	newWave = float64(ne) / float64(nw)
	fmt.Fprintf(w, "events/wave: %.2f -> %.2f (parallel batch width)\n", oldWave, newWave)
	if oe > 0 && ne > 0 && (os_ > 0 || ns > 0) {
		fmt.Fprintf(w, "serial fraction: %.1f%% -> %.1f%% (events run on the serial domain)\n",
			100*float64(os_)/float64(oe), 100*float64(ns)/float64(ne))
	}
	return oldWave, newWave
}

func byName(cells []experiments.CellBench) map[string]experiments.CellBench {
	m := make(map[string]experiments.CellBench, len(cells))
	for _, c := range cells {
		m[c.Cell] = c
	}
	return m
}

// ratio is old/new so that >1 means the new run improved.
func ratio(old, new float64) float64 {
	if new == 0 {
		return 0
	}
	return old / new
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func reportMissing(w *os.File, label string, a, b map[string]experiments.CellBench) {
	var only []string
	for n := range a {
		if _, ok := b[n]; !ok {
			only = append(only, n)
		}
	}
	if len(only) > 0 {
		sort.Strings(only)
		fmt.Fprintf(w, "%s: %v\n", label, only)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
