package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chats/internal/runstore"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	store, err := runstore.Open(t.TempDir(), runstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(store, 2)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.jobs.Wait()
		store.Close()
	})
	return s, ts
}

func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// TestServeEndToEnd is the demo path the dashboard promises: POST a tiny
// sweep, watch its live progress and per-run events arrive over SSE,
// then read the recorded cells back through /api/runs and the
// drill-down through /api/run.
func TestServeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	// Subscribe to SSE before launching so no event can be missed.
	resp, err := http.Get(ts.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}

	body := `{"systems":["baseline","chats"],"workloads":["cadd"],"size":"tiny","telemetry":true}`
	post, err := http.Post(ts.URL+"/api/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /api/sweep: status %d", post.StatusCode)
	}
	var j job
	if err := json.NewDecoder(post.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if j.Total != 2 || j.State != "running" {
		t.Fatalf("job = %+v, want total 2 running", j)
	}

	// Drain the stream until the job-done event; along the way we must
	// see hello, at least one progress tick and both run events.
	var sawHello, sawProgress bool
	runs := 0
	deadline := time.Now().Add(30 * time.Second)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	for !time.Now().After(deadline) && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "hello":
				sawHello = true
			case "progress":
				sawProgress = true
			case "run":
				runs++
			case "job":
				var ev job
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("job event %q: %v", data, err)
				}
				if ev.State == "failed" {
					t.Fatalf("job failed: %s", ev.Error)
				}
				if ev.State == "done" {
					goto done
				}
			}
		}
	}
	t.Fatal("SSE stream ended before the job-done event")
done:
	if !sawHello || !sawProgress || runs != 2 {
		t.Fatalf("SSE saw hello=%v progress=%v runs=%d, want true/true/2", sawHello, sawProgress, runs)
	}

	var summaries []runSummary
	get(t, ts.URL+"/api/runs", &summaries)
	if len(summaries) != 2 {
		t.Fatalf("/api/runs returned %d runs, want 2", len(summaries))
	}
	for _, r := range summaries {
		if r.Source != "serve" || r.SimCycles == 0 || r.Commits == 0 {
			t.Fatalf("bad run summary %+v", r)
		}
		if !r.HasTelemetry {
			t.Fatalf("run %d: telemetry sweep produced no drill-down payload", r.ID)
		}
	}

	// System filter.
	var chatsOnly []runSummary
	get(t, ts.URL+"/api/runs?system=chats", &chatsOnly)
	if len(chatsOnly) != 1 || chatsOnly[0].System != "chats" {
		t.Fatalf("system filter returned %+v", chatsOnly)
	}

	// Drill-down carries the full telemetry payload.
	var rec runstore.Record
	get(t, fmt.Sprintf("%s/api/run?id=%d", ts.URL, summaries[0].ID), &rec)
	if len(rec.Hists) == 0 || rec.Chain == nil {
		t.Fatalf("drill-down for run %d missing telemetry: %d hists, chain %v",
			summaries[0].ID, len(rec.Hists), rec.Chain)
	}

	var jobs []job
	get(t, ts.URL+"/api/jobs", &jobs)
	if len(jobs) != 1 || jobs[0].State != "done" || jobs[0].Done != 2 {
		t.Fatalf("/api/jobs = %+v", jobs)
	}
}

// TestServeTrendsFromImports exercises the cross-commit trend view over
// imported chats-bench history: the two committed baselines land under
// distinct commit labels, so every shared cell becomes a 2-point series.
func TestServeTrendsFromImports(t *testing.T) {
	s, ts := newTestServer(t)
	for _, f := range []string{"../../BENCH_j1.json", "../../BENCH_j4.json"} {
		if _, err := s.store.ImportBench(f); err != nil {
			t.Fatal(err)
		}
	}

	var commits []string
	get(t, ts.URL+"/api/commits", &commits)
	if len(commits) != 2 {
		t.Fatalf("commits = %v, want the two imported baselines", commits)
	}

	var trends []runstore.Trend
	get(t, ts.URL+"/api/trends", &trends)
	if len(trends) == 0 {
		t.Fatal("/api/trends returned no series")
	}
	twoPoint := 0
	for _, tr := range trends {
		if len(tr.Points) == 2 {
			twoPoint++
		}
	}
	if twoPoint == 0 {
		t.Fatalf("no trend series spans both imported commits: %+v", trends)
	}

	// Workload filter narrows the series set.
	var cadd []runstore.Trend
	get(t, ts.URL+"/api/trends?workload=cadd", &cadd)
	for _, tr := range cadd {
		if tr.Workload != "cadd" {
			t.Fatalf("workload filter leaked %+v", tr)
		}
	}
	if len(cadd) == 0 || len(cadd) >= len(trends) {
		t.Fatalf("workload filter returned %d series (total %d)", len(cadd), len(trends))
	}
}

// TestServeValidation pins the upfront-rejection contract: a bad sweep
// request must fail the POST with 400, not cell N of a running grid.
func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{"systems":["warp-drive"]}`,
		`{"workloads":["nope"]}`,
		`{"size":"galactic"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	var jobs []job
	get(t, ts.URL+"/api/jobs", &jobs)
	if len(jobs) != 0 {
		t.Fatalf("rejected sweeps must not create jobs: %+v", jobs)
	}

	resp, err := http.Get(ts.URL + "/api/run?id=42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/run?id=42: status %d, want 404", resp.StatusCode)
	}
}

// TestServeDashboard pins that the embedded page ships and references
// the API the JS drives.
func TestServeDashboard(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/api/events", "/api/sweep", "/api/trends", "/api/runs", "chats run database",
		"fallback &amp; contention", "fallback concurrency"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("dashboard.html does not mention %q", want)
		}
	}
	if resp, err := http.Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
		}
	}
}
