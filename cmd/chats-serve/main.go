// Command chats-serve is the live monitoring dashboard for the run
// database: a long-running HTTP server that executes sweep jobs through
// the shared worker pool, records every cell into the store, and serves
// a single-page dashboard with live per-cell progress (SSE), per-run
// telemetry drill-downs and cross-commit trend views.
//
// Usage:
//
//	chats-serve -store runs.db
//	chats-serve -store runs.db -addr :9090 -j 4
//	chats-serve -store runs.db -import BENCH_j1.json,BENCH_j4.json
//
// Endpoints: / (dashboard), /api/runs, /api/run?id=N, /api/trends,
// /api/commits, /api/meta, /api/jobs, POST /api/sweep, /api/events (SSE).
// SIGINT/SIGTERM shut the server down cleanly: in-flight jobs finish,
// SSE streams close, the store is sealed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"chats/internal/runstore"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8343", "HTTP listen address")
		storeDir = flag.String("store", "", "run database directory (required; created if missing)")
		imports  = flag.String("import", "", "comma-separated chats-bench JSON files to import on startup")
		jobs     = flag.Int("j", runtime.NumCPU(), "sweep cells to run in parallel per job")
	)
	flag.Parse()
	if *storeDir == "" {
		fatal(errors.New("-store <dir> is required"))
	}

	store, err := runstore.Open(*storeDir, runstore.Options{})
	if err != nil {
		fatal(err)
	}
	for _, path := range splitList(*imports) {
		n, err := store.ImportBench(path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chats-serve: imported %d cells from %s\n", n, path)
	}

	s := newServer(store, *jobs)
	srv := &http.Server{Addr: *addr, Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "chats-serve: %d runs in %s, listening on http://%s\n",
			store.Len(), store.Dir(), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Orderly shutdown: close the event broker first so SSE handlers
	// return and stop pinning connections, then drain HTTP, then let
	// running jobs finish (their appends must land before the store
	// seals).
	fmt.Fprintln(os.Stderr, "chats-serve: shutting down")
	s.broker.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "chats-serve:", err)
	}
	s.jobs.Wait()
	if err := store.Close(); err != nil {
		fatal(err)
	}
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chats-serve:", err)
	os.Exit(1)
}
