package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// event is one server-sent event: a name and a pre-marshaled JSON
// payload, formatted on the wire as "event: <name>\ndata: <json>\n\n".
type event struct {
	name string
	data []byte
}

// broker fans events out to every connected SSE subscriber. Publishing
// never blocks: a subscriber whose buffer is full (a stalled client)
// silently drops events — the dashboard re-syncs from the REST
// endpoints, so a dropped progress tick costs nothing but smoothness.
type broker struct {
	mu     sync.Mutex
	subs   map[chan event]struct{}
	closed bool
}

func newBroker() *broker {
	return &broker{subs: make(map[chan event]struct{})}
}

// Subscribe registers a new subscriber and returns its channel plus a
// cancel function. The channel is closed by cancel or by broker.Close;
// receivers must treat channel close as end-of-stream.
func (b *broker) Subscribe() (<-chan event, func()) {
	ch := make(chan event, 64)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
	return ch, cancel
}

// Publish marshals v and delivers it to every subscriber that has
// buffer room.
func (b *broker) Publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chats-serve: dropping %s event: %v\n", name, err)
		return
	}
	ev := event{name: name, data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow client: drop rather than stall the publisher
		}
	}
}

// Close ends every subscription; subsequent Subscribes get an
// already-closed channel. Used at shutdown so SSE handlers return and
// stop holding connections open.
func (b *broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}
