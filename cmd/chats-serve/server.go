package main

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"chats"
	"chats/internal/runstore"
	"chats/internal/workloads"
)

//go:embed dashboard.html
var dashboardHTML []byte

// server wires the run database, the job manager and the SSE broker
// behind one http.Handler. All state lives in those three; handlers are
// stateless translators.
type server struct {
	store  *runstore.Store
	jobs   *jobManager
	broker *broker
	mux    *http.ServeMux
}

func newServer(store *runstore.Store, workers int) *server {
	b := newBroker()
	s := &server{
		store:  store,
		jobs:   newJobManager(store, b, workers),
		broker: b,
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/runs", s.handleRuns)
	s.mux.HandleFunc("/api/run", s.handleRun)
	s.mux.HandleFunc("/api/trends", s.handleTrends)
	s.mux.HandleFunc("/api/commits", s.handleCommits)
	s.mux.HandleFunc("/api/meta", s.handleMeta)
	s.mux.HandleFunc("/api/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/sweep", s.handleSweep)
	s.mux.HandleFunc("/api/events", s.handleEvents)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}

// runSummary is the list-view projection of a Record: identity and cost
// plus headline counters, with the heavy telemetry payloads replaced by
// a has_telemetry flag — the drill-down fetches the full record by ID.
type runSummary struct {
	ID           uint64  `json:"id"`
	Commit       string  `json:"commit"`
	TimestampUTC string  `json:"timestamp_utc"`
	Seed         uint64  `json:"seed"`
	System       string  `json:"system"`
	Workload     string  `json:"workload"`
	Config       string  `json:"config,omitempty"`
	Size         string  `json:"size,omitempty"`
	Source       string  `json:"source,omitempty"`
	SimCycles    uint64  `json:"simcycles"`
	WallclockNS  int64   `json:"wallclock_ns"`
	Allocs       uint64  `json:"allocs"`
	Commits      uint64  `json:"commits"`
	Aborts       uint64  `json:"aborts"`
	AbortRate    float64 `json:"abort_rate"`
	HasTelemetry bool    `json:"has_telemetry"`
}

func summarize(r runstore.Record) runSummary {
	var commits, aborts uint64
	if r.Counters != nil {
		commits, aborts = r.Counters["commits"], r.Counters["aborts"]
	}
	return runSummary{
		ID:           r.ID,
		Commit:       r.Commit,
		TimestampUTC: r.TimestampUTC,
		Seed:         r.Seed,
		System:       r.System,
		Workload:     r.Workload,
		Config:       r.Config,
		Size:         r.Size,
		Source:       r.Source,
		SimCycles:    r.SimCycles,
		WallclockNS:  r.WallclockNS,
		Allocs:       r.Allocs,
		Commits:      commits,
		Aborts:       aborts,
		AbortRate:    r.AbortRate(),
		HasTelemetry: len(r.Hists) > 0 || len(r.HotLines) > 0 || r.Chain != nil,
	}
}

func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	q := runstore.Query{
		Commit:   r.URL.Query().Get("commit"),
		System:   r.URL.Query().Get("system"),
		Workload: r.URL.Query().Get("workload"),
		Source:   r.URL.Query().Get("source"),
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit %q", lim)
			return
		}
		q.Limit = n
	}
	recs := s.store.Runs(q)
	out := make([]runSummary, len(recs))
	for i, rec := range recs {
		out[i] = summarize(rec)
	}
	writeJSON(w, out)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad id %q", r.URL.Query().Get("id"))
		return
	}
	rec, ok := s.store.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %d", id)
		return
	}
	writeJSON(w, rec)
}

func (s *server) handleTrends(w http.ResponseWriter, r *http.Request) {
	q := runstore.Query{
		System:   r.URL.Query().Get("system"),
		Workload: r.URL.Query().Get("workload"),
		Source:   r.URL.Query().Get("source"),
	}
	writeJSON(w, s.store.Trends(q))
}

func (s *server) handleCommits(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.store.Commits())
}

// handleMeta serves the dashboard's form vocabulary: the canonical
// system order (also the fixed chart-color order), workload names and
// sizes.
func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	systems := make([]string, 0, len(chats.Systems()))
	for _, k := range chats.Systems() {
		systems = append(systems, string(k))
	}
	writeJSON(w, map[string]any{
		"systems":   systems,
		"workloads": workloads.Names(),
		"sizes":     []string{"tiny", "small", "medium"},
		"store":     s.store.Dir(),
	})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.jobs.Snapshot())
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.jobs.Start(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j)
}

// handleEvents is the SSE stream. Each connection gets a hello event
// with the current store/job snapshot (so a reconnecting dashboard
// re-syncs without racing the stream), then live progress/run/job
// events until the client goes away or the server shuts down.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, cancel := s.broker.Subscribe()
	defer cancel()

	hello, _ := json.Marshal(map[string]any{
		"runs":    s.store.Len(),
		"commits": s.store.Commits(),
		"jobs":    s.jobs.Snapshot(),
	})
	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", hello)
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // broker closed: server shutting down
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it server-side.
		fmt.Printf("chats-serve: encoding response: %v\n", err)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
