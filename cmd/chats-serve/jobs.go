package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"chats"
	"chats/internal/experiments"
	"chats/internal/runstore"
	"chats/internal/sweep"
	"chats/internal/telemetry"
	"chats/internal/workloads"
)

// sweepRequest is the POST /api/sweep body. Empty lists mean "all".
type sweepRequest struct {
	Systems   []string `json:"systems"`
	Workloads []string `json:"workloads"`
	Size      string   `json:"size"`
	Seed      uint64   `json:"seed"`
	// Telemetry attaches a collector to every cell so the stored records
	// carry histogram/hot-line/chain drill-downs (slower, bigger records).
	Telemetry bool `json:"telemetry"`
}

// job is the public view of one sweep execution. Done/State mutate
// while the grid runs; the jobManager's mutex guards them.
type job struct {
	ID         int      `json:"id"`
	State      string   `json:"state"` // "running", "done", "failed"
	Systems    []string `json:"systems"`
	Workloads  []string `json:"workloads"`
	Size       string   `json:"size"`
	Seed       uint64   `json:"seed"`
	Telemetry  bool     `json:"telemetry"`
	Done       int      `json:"done"`
	Total      int      `json:"total"`
	Error      string   `json:"error,omitempty"`
	StartedUTC string   `json:"started_utc"`
}

// jobManager validates, launches and tracks sweep jobs. Each job fans
// its (system × workload) grid over the shared sweep pool, appends one
// record per cell to the store, and publishes progress/run/job events
// to the SSE broker as the grid executes.
type jobManager struct {
	store   *runstore.Store
	broker  *broker
	workers int

	mu     sync.Mutex
	nextID int
	jobs   []*job
	wg     sync.WaitGroup
}

func newJobManager(store *runstore.Store, b *broker, workers int) *jobManager {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &jobManager{store: store, broker: b, workers: workers, nextID: 1}
}

// Start validates the request upfront — a typo must fail the POST, not
// cell N of a half-finished grid — then launches the grid on a
// background goroutine and returns the new job immediately.
func (m *jobManager) Start(req sweepRequest) (job, error) {
	if len(req.Systems) == 0 {
		for _, k := range chats.Systems() {
			req.Systems = append(req.Systems, string(k))
		}
	}
	kinds := make([]chats.SystemKind, 0, len(req.Systems))
	for _, s := range req.Systems {
		k, err := chats.ParseSystem(s)
		if err != nil {
			return job{}, err
		}
		kinds = append(kinds, k)
	}
	if len(req.Workloads) == 0 {
		req.Workloads = workloads.Names()
	}
	known := workloads.Names()
	for _, w := range req.Workloads {
		ok := false
		for _, n := range known {
			if n == w {
				ok = true
				break
			}
		}
		if !ok {
			return job{}, fmt.Errorf("unknown workload %q (known: %v)", w, known)
		}
	}
	if req.Size == "" {
		req.Size = "tiny"
	}
	sz, err := workloads.ParseSize(req.Size)
	if err != nil {
		return job{}, err
	}
	if req.Seed == 0 {
		req.Seed = 1
	}

	type cell struct {
		kind  chats.SystemKind
		bench string
	}
	var cells []cell
	for _, k := range kinds {
		for _, w := range req.Workloads {
			cells = append(cells, cell{kind: k, bench: w})
		}
	}

	m.mu.Lock()
	j := &job{
		ID:         m.nextID,
		State:      "running",
		Systems:    req.Systems,
		Workloads:  req.Workloads,
		Size:       req.Size,
		Seed:       req.Seed,
		Telemetry:  req.Telemetry,
		Total:      len(cells),
		StartedUTC: time.Now().UTC().Format(time.RFC3339),
	}
	m.nextID++
	m.jobs = append(m.jobs, j)
	snap := *j
	m.mu.Unlock()
	m.broker.Publish("job", snap)

	meta := runstore.NowMeta()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := sweep.Map(m.workers, len(cells), m.progress(j), func(i int) error {
			w, err := workloads.New(cells[i].bench, sz)
			if err != nil {
				return err
			}
			cfg := chats.DefaultConfig()
			cfg.System = cells[i].kind
			cfg.Machine.Seed = req.Seed

			var col *telemetry.Collector
			var tracer chats.Tracer
			if req.Telemetry {
				// Cap the raw event buffer: the drill-downs only need the
				// aggregates, which keep counting past the cap.
				col = telemetry.New(cfg.Machine.Cores, telemetry.Options{MaxEvents: 1})
				tracer = col
			}
			var wv chats.WaveInfo
			start := time.Now()
			st, err := chats.RunObserved(cfg, w, tracer, &wv)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", cells[i].kind, cells[i].bench, err)
			}
			rec := runstore.FromStats(st, string(cells[i].kind), req.Seed,
				experiments.TraitsKey(nil), req.Size, time.Since(start).Nanoseconds(), 0)
			rec.StampEngine(chats.EffectiveIntraWorkers(cfg, req.Telemetry))
			rec.StampDirBanks(cfg.Machine.DirBanks)
			rec.StampWaves(wv.Events, wv.Waves, wv.Serial)
			if col != nil {
				runstore.AttachTelemetry(&rec, col, 16)
			}
			rec.Meta = meta
			rec.Source = "serve"
			id, err := m.store.Append(rec)
			if err != nil {
				return err
			}
			rec.ID = id
			m.broker.Publish("run", summarize(rec))
			return nil
		})
		m.mu.Lock()
		if err != nil {
			j.State, j.Error = "failed", err.Error()
		} else {
			j.State = "done"
		}
		snap := *j
		m.mu.Unlock()
		m.broker.Publish("job", snap)
	}()
	return snap, nil
}

// progress returns the sweep.Progress hook for one job: bump the
// counter under the manager lock and publish the tick.
func (m *jobManager) progress(j *job) sweep.Progress {
	return func(done, total int) {
		m.mu.Lock()
		j.Done = done
		m.mu.Unlock()
		m.broker.Publish("progress", map[string]int{"job": j.ID, "done": done, "total": total})
	}
}

// Snapshot returns every job, newest first.
func (m *jobManager) Snapshot() []job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]job, len(m.jobs))
	for i, j := range m.jobs {
		out[i] = *j
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Wait blocks until every launched job has finished — shutdown calls it
// before sealing the store so no in-flight append is dropped.
func (m *jobManager) Wait() { m.wg.Wait() }
