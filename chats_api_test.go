package chats_test

import (
	"fmt"
	"testing"

	"chats"
)

// apiCounter is a minimal workload written purely against the public API.
type apiCounter struct {
	iters int
	addr  chats.Addr
}

func (c *apiCounter) Name() string { return "api-counter" }

func (c *apiCounter) Setup(w *chats.World, threads int) {
	c.addr = w.Alloc.LineAligned(1)
}

func (c *apiCounter) Thread(ctx chats.Ctx, tid int) {
	for i := 0; i < c.iters; i++ {
		ctx.Atomic(func(tx chats.Tx) {
			tx.Store(c.addr, tx.Load(c.addr)+1)
		})
	}
}

func (c *apiCounter) Check(w *chats.World) error {
	if got := w.Mem.ReadWord(c.addr); got != uint64(16*c.iters) {
		return fmt.Errorf("counter = %d, want %d", got, 16*c.iters)
	}
	return nil
}

func TestPublicAPIRun(t *testing.T) {
	for _, system := range chats.Systems() {
		cfg := chats.DefaultConfig()
		cfg.System = system
		stats, err := chats.Run(cfg, &apiCounter{iters: 10})
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		if stats.Commits == 0 {
			t.Fatalf("%s: no commits", system)
		}
		if stats.System == "" || stats.Workload != "api-counter" {
			t.Fatalf("%s: stats labels missing: %+v", system, stats)
		}
	}
}

func TestPublicAPITraitsOverride(t *testing.T) {
	traits, err := chats.SystemTraits(chats.CHATS)
	if err != nil {
		t.Fatal(err)
	}
	if traits.Retries != 32 || traits.VSBSize != 4 || traits.ValidationInterval != 50 {
		t.Fatalf("Table II CHATS defaults wrong: %+v", traits)
	}
	traits.VSBSize = 8
	cfg := chats.DefaultConfig()
	cfg.System = chats.CHATS
	cfg.Traits = &traits
	if _, err := chats.Run(cfg, &apiCounter{iters: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestParseSystem(t *testing.T) {
	k, err := chats.ParseSystem("chats")
	if err != nil || k != chats.CHATS {
		t.Fatalf("ParseSystem: %v %v", k, err)
	}
	if _, err := chats.ParseSystem("rtm"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestSystemsOrder(t *testing.T) {
	ss := chats.Systems()
	if len(ss) != 6 || ss[0] != chats.Baseline || ss[2] != chats.CHATS || ss[5] != chats.LEVC {
		t.Fatalf("Systems() = %v", ss)
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := chats.DefaultConfig()
	cfg.Machine.Cores = 0
	if _, err := chats.Run(cfg, &apiCounter{iters: 1}); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = chats.DefaultConfig()
	cfg.System = "bogus"
	if _, err := chats.Run(cfg, &apiCounter{iters: 1}); err == nil {
		t.Fatal("bogus system accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := chats.DefaultConfig()
	cfg.System = chats.CHATS
	a, err := chats.Run(cfg, &apiCounter{iters: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := chats.Run(cfg, &apiCounter{iters: 15})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("public API runs nondeterministic:\n%+v\n%+v", a, b)
	}
}
