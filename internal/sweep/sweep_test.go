package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryCell(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 37
		results := make([]int, n)
		err := Map(workers, n, nil, func(i int) error {
			results[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range results {
			if v != i+1 {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, v, i+1)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if err := Map(4, 0, nil, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	wantErr := errors.New("cell 3 broke")
	otherErr := errors.New("cell 11 broke")
	for _, workers := range []int{1, 4} {
		err := Map(workers, 20, nil, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 11:
				return otherErr
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestMapCancelsAfterError(t *testing.T) {
	var ran atomic.Int64
	err := Map(2, 1000, nil, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// Cells already claimed may finish, but the bulk must be skipped.
	if got := ran.Load(); got > 100 {
		t.Fatalf("ran %d cells after early error", got)
	}
}

func TestMapRecoversCellPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Map(workers, 8, nil, func(i int) error {
			if i == 5 {
				panic("cell exploded")
			}
			return nil
		})
		var cp *CellPanic
		if !errors.As(err, &cp) {
			t.Fatalf("workers=%d: err = %v, want *CellPanic", workers, err)
		}
		if cp.Index != 5 || cp.Value != "cell exploded" {
			t.Fatalf("workers=%d: panic attribution = %d/%v", workers, cp.Index, cp.Value)
		}
		if !strings.Contains(err.Error(), "cell 5 panicked") || len(cp.Stack) == 0 {
			t.Fatalf("workers=%d: diagnostic lost: %v", workers, err)
		}
	}
}

func TestMapAllRunsEverythingPastFailures(t *testing.T) {
	bad := errors.New("bad cell")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		errs := MapAll(workers, 30, nil, func(i int) error {
			ran.Add(1)
			switch {
			case i == 2:
				return bad
			case i == 17:
				panic("boom")
			}
			return nil
		})
		if got := ran.Load(); got != 30 {
			t.Fatalf("workers=%d: ran %d of 30 cells", workers, got)
		}
		for i, err := range errs {
			switch i {
			case 2:
				if !errors.Is(err, bad) {
					t.Fatalf("cell 2 err = %v", err)
				}
			case 17:
				var cp *CellPanic
				if !errors.As(err, &cp) || cp.Index != 17 {
					t.Fatalf("cell 17 err = %v", err)
				}
			default:
				if err != nil {
					t.Fatalf("cell %d err = %v", i, err)
				}
			}
		}
	}
}

func TestMapProgressIsMonotonicAndComplete(t *testing.T) {
	for _, workers := range []int{1, 5} {
		var calls []int
		n := 23
		err := Map(workers, n, func(done, total int) {
			if total != n {
				t.Fatalf("total = %d, want %d", total, n)
			}
			calls = append(calls, done) // Progress is never concurrent
		}, func(int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != n {
			t.Fatalf("workers=%d: %d progress calls, want %d", workers, len(calls), n)
		}
		for i := 1; i < len(calls); i++ {
			if calls[i] <= calls[i-1] {
				t.Fatalf("progress not monotonic: %v", calls)
			}
		}
	}
}
