// Package sweep runs grids of independent simulation cells in parallel.
//
// Every figure and sensitivity study in the evaluation is a (system ×
// workload × traits) grid whose cells share nothing: each cell builds
// its own sim.Engine, machine and workload, so cells are bit-reproducible
// regardless of the goroutine they run on. The pool therefore only has
// to solve scheduling and deterministic collection: callers index their
// results by cell position, workers pull cell indices from a shared
// counter, and the first error (lowest cell index among the failures
// observed) cancels the remaining cells.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Progress receives live completion updates: done cells out of total.
// It is called from worker goroutines but never concurrently.
type Progress func(done, total int)

// Budget resolves the cell-level parallelism for a grid whose cells each
// run intra engine workers (machine.Config.IntraWorkers). jobs > 0 is
// respected as-is — the caller asked for exactly that many cells in
// flight; jobs <= 0 auto-sizes to GOMAXPROCS(0)/intra so cells times
// engine workers roughly fill the host instead of oversubscribing it.
// The result is always at least 1.
func Budget(jobs, intra int) int {
	if jobs > 0 {
		return jobs
	}
	if intra < 1 {
		intra = 1
	}
	if w := runtime.GOMAXPROCS(0) / intra; w > 1 {
		return w
	}
	return 1
}

// CellPanic is the error a panicking cell is converted into: the pool
// must never let one cell's panic tear down the whole process (and, with
// it, the results of every other cell). Index is the cell, Value the
// recovered panic value and Stack the goroutine stack at recovery.
type CellPanic struct {
	Index int
	Value any
	Stack []byte
}

func (e *CellPanic) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// runCell invokes fn(i), converting a panic into a *CellPanic error.
func runCell(i int, fn func(i int) error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &CellPanic{Index: i, Value: rec, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects runtime.GOMAXPROCS(0)) and blocks until all
// cells finish or one fails. On failure the remaining unstarted cells
// are skipped and the error of the lowest-indexed failed cell is
// returned — the same error a serial left-to-right run would surface,
// as long as failures are deterministic per cell.
//
// fn must be safe to call concurrently for distinct i; writing to
// result[i] of a pre-sized slice needs no extra synchronization.
func Map(workers, n int, progress Progress, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := runCell(i, fn); err != nil {
				return err
			}
			if progress != nil {
				progress(i+1, n)
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next cell index to claim
		stop     atomic.Bool  // set once any cell fails
		mu       sync.Mutex   // guards done/firstIdx/firstErr and progress calls
		done     int
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := runCell(i, fn); err != nil {
					stop.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				done++
				if progress != nil {
					progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// MapAll is Map without early cancellation: every cell runs to the end
// whatever happens to its siblings, and the per-cell errors come back
// indexed by cell (all nil on full success). Soak runs use it so one bad
// cell cannot hide the results — or the failures — of the others.
func MapAll(workers, n int, progress Progress, fn func(i int) error) []error {
	errs := make([]error, n)
	if n <= 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = runCell(i, fn)
			if progress != nil {
				progress(i+1, n)
			}
		}
		return errs
	}

	var (
		next atomic.Int64
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := runCell(i, fn) // writing errs[i] needs no lock: one owner per index
				errs[i] = err
				mu.Lock()
				done++
				if progress != nil {
					progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errs
}
