// Package structures provides transactional data structures laid out in
// simulated memory: a sorted linked list, a hash set, a treap (randomized
// BST whose rotations create the parent-path write conflicts of a
// rebalancing tree) and a FIFO queue. Every access goes through the Mem
// interface, so the same code runs inside hardware transactions (via
// machine.Tx), non-transactionally (via machine.Ctx), or directly against
// the backing memory during workload setup.
package structures

import "chats/internal/mem"

// Mem is a word-addressed memory accessor. machine.Tx and machine.Ctx
// satisfy it; Direct adapts the raw backing store for setup code.
type Mem interface {
	Load(a mem.Addr) uint64
	Store(a mem.Addr, v uint64)
}

// Direct accesses the backing memory outside simulated time (setup and
// checking only).
type Direct struct {
	M *mem.Memory
}

// Load reads a committed word.
func (d Direct) Load(a mem.Addr) uint64 { return d.M.ReadWord(a) }

// Store writes a committed word.
func (d Direct) Store(a mem.Addr, v uint64) { d.M.WriteWord(a, v) }

// Pool is a per-thread free list of pre-allocated records, so structure
// code can "allocate" nodes inside transactions without a shared
// allocator (which would itself be a contention hotspot). Get may be
// re-executed by an aborted transaction; the skipped node leaks, which is
// how real transactional allocators behave between checkpoints.
type Pool struct {
	nodes []mem.Addr
	next  int
}

// NewPool carves n records of nWords each (line-aligned to avoid false
// sharing) out of the allocator.
func NewPool(al *mem.Allocator, n, nWords int) *Pool {
	p := &Pool{nodes: make([]mem.Addr, n)}
	for i := range p.nodes {
		p.nodes[i] = al.LineAligned(nWords)
	}
	return p
}

// Get returns the next free record. It panics if the pool is exhausted —
// size pools for the worst case; workloads are finite.
func (p *Pool) Get() mem.Addr {
	if p.next >= len(p.nodes) {
		panic("structures: node pool exhausted")
	}
	a := p.nodes[p.next]
	p.next++
	return a
}

// Remaining returns how many records are left.
func (p *Pool) Remaining() int { return len(p.nodes) - p.next }
