package structures

import "chats/internal/mem"

// Treap is a randomized binary search tree in simulated memory. Its
// rotations write along the access path the way red-black rebalancing
// does, reproducing the intruder/vacation tree-contention pattern with a
// much smaller correctness surface. Nodes are 5-word records
// {key, val, prio, left, right}.
type Treap struct {
	Root mem.Addr // one-word header holding the root pointer
}

// Treap node field offsets (in words).
const (
	tKey   = 0
	tVal   = 1
	tPrio  = 2
	tLeft  = 3
	tRight = 4
	// TreapNodeWords is the record size for Pool allocation.
	TreapNodeWords = 5
)

// NewTreap allocates an empty treap header.
func NewTreap(al *mem.Allocator) *Treap {
	return &Treap{Root: al.LineAligned(1)}
}

// Insert adds key→val with rotation priority prio; false on duplicate.
func (t *Treap) Insert(m Mem, node mem.Addr, key, val, prio uint64) bool {
	m.Store(node.Plus(tKey), key)
	m.Store(node.Plus(tVal), val)
	m.Store(node.Plus(tPrio), prio)
	m.Store(node.Plus(tLeft), 0)
	m.Store(node.Plus(tRight), 0)
	root := mem.Addr(m.Load(t.Root))
	newRoot, ok := insertRec(m, root, node)
	if newRoot != root {
		m.Store(t.Root, uint64(newRoot))
	}
	return ok
}

func insertRec(m Mem, cur, node mem.Addr) (mem.Addr, bool) {
	if cur == 0 {
		return node, true
	}
	ck := m.Load(cur.Plus(tKey))
	nk := m.Load(node.Plus(tKey))
	if nk == ck {
		return cur, false
	}
	if nk < ck {
		child := mem.Addr(m.Load(cur.Plus(tLeft)))
		newChild, ok := insertRec(m, child, node)
		if !ok {
			return cur, false
		}
		if newChild != child {
			m.Store(cur.Plus(tLeft), uint64(newChild))
		}
		if m.Load(newChild.Plus(tPrio)) > m.Load(cur.Plus(tPrio)) {
			return rotateRight(m, cur), true
		}
		return cur, true
	}
	child := mem.Addr(m.Load(cur.Plus(tRight)))
	newChild, ok := insertRec(m, child, node)
	if !ok {
		return cur, false
	}
	if newChild != child {
		m.Store(cur.Plus(tRight), uint64(newChild))
	}
	if m.Load(newChild.Plus(tPrio)) > m.Load(cur.Plus(tPrio)) {
		return rotateLeft(m, cur), true
	}
	return cur, true
}

// rotateRight lifts cur's left child above cur and returns it.
func rotateRight(m Mem, cur mem.Addr) mem.Addr {
	l := mem.Addr(m.Load(cur.Plus(tLeft)))
	m.Store(cur.Plus(tLeft), m.Load(l.Plus(tRight)))
	m.Store(l.Plus(tRight), uint64(cur))
	return l
}

// rotateLeft lifts cur's right child above cur and returns it.
func rotateLeft(m Mem, cur mem.Addr) mem.Addr {
	r := mem.Addr(m.Load(cur.Plus(tRight)))
	m.Store(cur.Plus(tRight), m.Load(r.Plus(tLeft)))
	m.Store(r.Plus(tLeft), uint64(cur))
	return r
}

// Find returns the value stored under key.
func (t *Treap) Find(m Mem, key uint64) (uint64, bool) {
	cur := mem.Addr(m.Load(t.Root))
	for cur != 0 {
		ck := m.Load(cur.Plus(tKey))
		switch {
		case key == ck:
			return m.Load(cur.Plus(tVal)), true
		case key < ck:
			cur = mem.Addr(m.Load(cur.Plus(tLeft)))
		default:
			cur = mem.Addr(m.Load(cur.Plus(tRight)))
		}
	}
	return 0, false
}

// Update overwrites the value of an existing key.
func (t *Treap) Update(m Mem, key, val uint64) bool {
	cur := mem.Addr(m.Load(t.Root))
	for cur != 0 {
		ck := m.Load(cur.Plus(tKey))
		switch {
		case key == ck:
			m.Store(cur.Plus(tVal), val)
			return true
		case key < ck:
			cur = mem.Addr(m.Load(cur.Plus(tLeft)))
		default:
			cur = mem.Addr(m.Load(cur.Plus(tRight)))
		}
	}
	return false
}

// Remove deletes key by rotating its node down to a leaf.
func (t *Treap) Remove(m Mem, key uint64) (uint64, bool) {
	root := mem.Addr(m.Load(t.Root))
	newRoot, val, ok := removeRec(m, root, key)
	if ok && newRoot != root {
		m.Store(t.Root, uint64(newRoot))
	}
	return val, ok
}

func removeRec(m Mem, cur mem.Addr, key uint64) (mem.Addr, uint64, bool) {
	if cur == 0 {
		return 0, 0, false
	}
	ck := m.Load(cur.Plus(tKey))
	switch {
	case key < ck:
		child := mem.Addr(m.Load(cur.Plus(tLeft)))
		newChild, v, ok := removeRec(m, child, key)
		if ok && newChild != child {
			m.Store(cur.Plus(tLeft), uint64(newChild))
		}
		return cur, v, ok
	case key > ck:
		child := mem.Addr(m.Load(cur.Plus(tRight)))
		newChild, v, ok := removeRec(m, child, key)
		if ok && newChild != child {
			m.Store(cur.Plus(tRight), uint64(newChild))
		}
		return cur, v, ok
	}
	// Found: rotate down until a child slot is free.
	val := m.Load(cur.Plus(tVal))
	l := mem.Addr(m.Load(cur.Plus(tLeft)))
	r := mem.Addr(m.Load(cur.Plus(tRight)))
	switch {
	case l == 0:
		return r, val, true
	case r == 0:
		return l, val, true
	case m.Load(l.Plus(tPrio)) > m.Load(r.Plus(tPrio)):
		top := rotateRight(m, cur)
		sub, v, _ := removeRec(m, mem.Addr(m.Load(top.Plus(tRight))), key)
		m.Store(top.Plus(tRight), uint64(sub))
		return top, v, true
	default:
		top := rotateLeft(m, cur)
		sub, v, _ := removeRec(m, mem.Addr(m.Load(top.Plus(tLeft))), key)
		m.Store(top.Plus(tLeft), uint64(sub))
		return top, v, true
	}
}

// Size counts nodes (setup/check use).
func (t *Treap) Size(m Mem) int {
	var count func(mem.Addr) int
	count = func(a mem.Addr) int {
		if a == 0 {
			return 0
		}
		return 1 + count(mem.Addr(m.Load(a.Plus(tLeft)))) + count(mem.Addr(m.Load(a.Plus(tRight))))
	}
	return count(mem.Addr(m.Load(t.Root)))
}

// checkOrder verifies BST key order and heap priority order; used by
// tests and workload Check functions.
func (t *Treap) CheckInvariants(m Mem) bool {
	var walk func(a mem.Addr, lo, hi uint64) bool
	walk = func(a mem.Addr, lo, hi uint64) bool {
		if a == 0 {
			return true
		}
		k := m.Load(a.Plus(tKey))
		if k < lo || k > hi {
			return false
		}
		p := m.Load(a.Plus(tPrio))
		for _, c := range []mem.Addr{mem.Addr(m.Load(a.Plus(tLeft))), mem.Addr(m.Load(a.Plus(tRight)))} {
			if c != 0 && m.Load(c.Plus(tPrio)) > p {
				return false
			}
		}
		var lok, rok bool
		if k == 0 {
			lok = mem.Addr(m.Load(a.Plus(tLeft))) == 0
		} else {
			lok = walk(mem.Addr(m.Load(a.Plus(tLeft))), lo, k-1)
		}
		rok = walk(mem.Addr(m.Load(a.Plus(tRight))), k+1, hi)
		return lok && rok
	}
	return walk(mem.Addr(m.Load(t.Root)), 0, ^uint64(0))
}
