package structures

import "chats/internal/mem"

// List is a sorted singly-linked list in simulated memory. The header
// (one word: head pointer) lives at Head; nodes are 3-word records
// {key, val, next}. A nil pointer is address 0.
type List struct {
	Head mem.Addr
}

// List node field offsets (in words).
const (
	lKey  = 0
	lVal  = 1
	lNext = 2
	// ListNodeWords is the record size for Pool allocation.
	ListNodeWords = 3
)

// NewList allocates an empty list header.
func NewList(al *mem.Allocator) *List {
	return &List{Head: al.LineAligned(1)}
}

// Insert adds key→val in sorted position. Duplicate keys are rejected
// (returns false, node unused). node must come from a Pool.
func (l *List) Insert(m Mem, node mem.Addr, key, val uint64) bool {
	m.Store(node.Plus(lKey), key)
	m.Store(node.Plus(lVal), val)
	prev := l.Head // header slot acts as "next" pointer
	cur := mem.Addr(m.Load(prev))
	for cur != 0 {
		k := m.Load(cur.Plus(lKey))
		if k == key {
			return false
		}
		if k > key {
			break
		}
		prev = cur.Plus(lNext)
		cur = mem.Addr(m.Load(prev))
	}
	m.Store(node.Plus(lNext), uint64(cur))
	m.Store(prev, uint64(node))
	return true
}

// Find returns the value for key.
func (l *List) Find(m Mem, key uint64) (uint64, bool) {
	cur := mem.Addr(m.Load(l.Head))
	for cur != 0 {
		k := m.Load(cur.Plus(lKey))
		if k == key {
			return m.Load(cur.Plus(lVal)), true
		}
		if k > key {
			return 0, false
		}
		cur = mem.Addr(m.Load(cur.Plus(lNext)))
	}
	return 0, false
}

// Update sets the value of an existing key, returning false if absent.
func (l *List) Update(m Mem, key, val uint64) bool {
	cur := mem.Addr(m.Load(l.Head))
	for cur != 0 {
		k := m.Load(cur.Plus(lKey))
		if k == key {
			m.Store(cur.Plus(lVal), val)
			return true
		}
		if k > key {
			return false
		}
		cur = mem.Addr(m.Load(cur.Plus(lNext)))
	}
	return false
}

// Remove unlinks key, returning its value.
func (l *List) Remove(m Mem, key uint64) (uint64, bool) {
	prev := l.Head
	cur := mem.Addr(m.Load(prev))
	for cur != 0 {
		k := m.Load(cur.Plus(lKey))
		if k == key {
			m.Store(prev, m.Load(cur.Plus(lNext)))
			return m.Load(cur.Plus(lVal)), true
		}
		if k > key {
			return 0, false
		}
		prev = cur.Plus(lNext)
		cur = mem.Addr(m.Load(prev))
	}
	return 0, false
}

// Len counts the nodes.
func (l *List) Len(m Mem) int {
	n := 0
	cur := mem.Addr(m.Load(l.Head))
	for cur != 0 {
		n++
		cur = mem.Addr(m.Load(cur.Plus(lNext)))
	}
	return n
}

// Keys returns the keys in order (setup/check use).
func (l *List) Keys(m Mem) []uint64 {
	var ks []uint64
	cur := mem.Addr(m.Load(l.Head))
	for cur != 0 {
		ks = append(ks, m.Load(cur.Plus(lKey)))
		cur = mem.Addr(m.Load(cur.Plus(lNext)))
	}
	return ks
}
