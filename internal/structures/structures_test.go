package structures

import (
	"sort"
	"testing"
	"testing/quick"

	"chats/internal/mem"
	"chats/internal/sim"
)

func testMem() (Direct, *mem.Allocator) {
	return Direct{M: mem.NewMemory()}, mem.NewAllocator(0x1000)
}

func TestListBasic(t *testing.T) {
	m, al := testMem()
	pool := NewPool(al, 16, ListNodeWords)
	l := NewList(al)
	for _, k := range []uint64{5, 1, 9, 3} {
		if !l.Insert(m, pool.Get(), k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if l.Insert(m, pool.Get(), 5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	ks := l.Keys(m)
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("keys = %v", ks)
		}
	}
	if v, ok := l.Find(m, 9); !ok || v != 90 {
		t.Fatalf("find 9 = %d %v", v, ok)
	}
	if _, ok := l.Find(m, 4); ok {
		t.Fatal("phantom find")
	}
	if !l.Update(m, 3, 99) {
		t.Fatal("update failed")
	}
	if v, _ := l.Find(m, 3); v != 99 {
		t.Fatal("update not visible")
	}
	if v, ok := l.Remove(m, 5); !ok || v != 50 {
		t.Fatalf("remove = %d %v", v, ok)
	}
	if _, ok := l.Remove(m, 5); ok {
		t.Fatal("double remove")
	}
	if l.Len(m) != 3 {
		t.Fatalf("len = %d", l.Len(m))
	}
}

// Property: the list agrees with a map model under random ops.
func TestListModel(t *testing.T) {
	f := func(ops []uint16) bool {
		m, al := testMem()
		pool := NewPool(al, len(ops)+1, ListNodeWords)
		l := NewList(al)
		model := map[uint64]uint64{}
		for i, op := range ops {
			key := uint64(op % 32)
			val := uint64(i)
			switch op % 3 {
			case 0:
				_, exists := model[key]
				if l.Insert(m, pool.Get(), key, val) == exists {
					return false
				}
				if !exists {
					model[key] = val
				}
			case 1:
				v, ok := l.Find(m, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				v, ok := l.Remove(m, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, key)
			}
		}
		if l.Len(m) != len(model) {
			return false
		}
		ks := l.Keys(m)
		return sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashSetBasic(t *testing.T) {
	m, al := testMem()
	pool := NewPool(al, 128, ListNodeWords)
	h := NewHashSet(al, 16)
	for i := uint64(0); i < 100; i++ {
		if !h.Insert(m, pool.Get(), i, i*2) {
			t.Fatalf("insert %d", i)
		}
	}
	if h.Insert(m, pool.Get(), 50, 0) {
		t.Fatal("duplicate accepted")
	}
	if h.Len(m) != 100 {
		t.Fatalf("len = %d", h.Len(m))
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := h.Find(m, i); !ok || v != i*2 {
			t.Fatalf("find %d = %d %v", i, v, ok)
		}
	}
	if _, ok := h.Find(m, 1000); ok {
		t.Fatal("phantom")
	}
	if v, ok := h.Remove(m, 42); !ok || v != 84 {
		t.Fatal("remove")
	}
	if h.Len(m) != 99 {
		t.Fatal("len after remove")
	}
	if !h.Update(m, 10, 7) {
		t.Fatal("update")
	}
	if v, _ := h.Find(m, 10); v != 7 {
		t.Fatal("update not visible")
	}
}

func TestHashSetBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, al := testMem()
	NewHashSet(al, 10)
}

func TestTreapBasic(t *testing.T) {
	m, al := testMem()
	pool := NewPool(al, 256, TreapNodeWords)
	tr := NewTreap(al)
	r := sim.NewRand(3)
	keys := r.Perm(200)
	for _, k := range keys {
		if !tr.Insert(m, pool.Get(), uint64(k)+1, uint64(k*3), r.Uint64()) {
			t.Fatalf("insert %d", k)
		}
	}
	if tr.Insert(m, pool.Get(), 5, 0, 1) {
		t.Fatal("duplicate accepted")
	}
	if tr.Size(m) != 200 {
		t.Fatalf("size = %d", tr.Size(m))
	}
	if !tr.CheckInvariants(m) {
		t.Fatal("treap invariants broken after inserts")
	}
	for _, k := range keys {
		if v, ok := tr.Find(m, uint64(k)+1); !ok || v != uint64(k*3) {
			t.Fatalf("find %d = %d %v", k, v, ok)
		}
	}
	// Remove half.
	for _, k := range keys[:100] {
		if v, ok := tr.Remove(m, uint64(k)+1); !ok || v != uint64(k*3) {
			t.Fatalf("remove %d = %d %v", k, v, ok)
		}
	}
	if tr.Size(m) != 100 {
		t.Fatalf("size after removes = %d", tr.Size(m))
	}
	if !tr.CheckInvariants(m) {
		t.Fatal("treap invariants broken after removes")
	}
	for _, k := range keys[:100] {
		if _, ok := tr.Find(m, uint64(k)+1); ok {
			t.Fatalf("removed key %d still present", k)
		}
	}
	for _, k := range keys[100:] {
		if _, ok := tr.Find(m, uint64(k)+1); !ok {
			t.Fatalf("surviving key %d lost", k)
		}
	}
}

// Property: treap matches a map model and keeps its invariants.
func TestTreapModel(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		m, al := testMem()
		pool := NewPool(al, len(ops)+1, TreapNodeWords)
		tr := NewTreap(al)
		r := sim.NewRand(seed)
		model := map[uint64]uint64{}
		for i, op := range ops {
			key := uint64(op%64) + 1
			val := uint64(i)
			switch op % 3 {
			case 0:
				_, exists := model[key]
				if tr.Insert(m, pool.Get(), key, val, r.Uint64()) == exists {
					return false
				}
				if !exists {
					model[key] = val
				}
			case 1:
				v, ok := tr.Find(m, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 2:
				v, ok := tr.Remove(m, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
				delete(model, key)
			}
		}
		return tr.Size(m) == len(model) && tr.CheckInvariants(m)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQueueBasic(t *testing.T) {
	m, al := testMem()
	q := NewQueue(al, 4)
	if _, ok := q.Pop(m); ok {
		t.Fatal("pop from empty")
	}
	for i := uint64(1); i <= 4; i++ {
		if !q.Push(m, i) {
			t.Fatalf("push %d", i)
		}
	}
	if q.Push(m, 5) {
		t.Fatal("push to full")
	}
	if q.Len(m) != 4 {
		t.Fatalf("len = %d", q.Len(m))
	}
	for i := uint64(1); i <= 4; i++ {
		v, ok := q.Pop(m)
		if !ok || v != i {
			t.Fatalf("pop = %d %v, want %d", v, ok, i)
		}
	}
	// Wrap-around.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 3; i++ {
			q.Push(m, i+uint64(round)*10)
		}
		for i := uint64(0); i < 3; i++ {
			v, ok := q.Pop(m)
			if !ok || v != i+uint64(round)*10 {
				t.Fatalf("wrap pop = %d %v", v, ok)
			}
		}
	}
}

func TestQueuePopGap(t *testing.T) {
	m, al := testMem()
	q := NewQueue(al, 8)
	q.Push(m, 42)
	called := false
	v, ok := q.PopGap(m, func() { called = true })
	if !ok || v != 42 || !called {
		t.Fatal("PopGap broken")
	}
	if _, ok := q.PopGap(m, nil); ok {
		t.Fatal("PopGap from empty")
	}
}

func TestPool(t *testing.T) {
	_, al := testMem()
	p := NewPool(al, 3, 5)
	a := p.Get()
	b := p.Get()
	if a == b || a == 0 || uint64(a)%mem.LineSize != 0 {
		t.Fatal("pool records wrong")
	}
	if p.Remaining() != 1 {
		t.Fatal("remaining wrong")
	}
	p.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	p.Get()
}
