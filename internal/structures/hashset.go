package structures

import "chats/internal/mem"

// HashSet is a fixed-size chained hash table in simulated memory, built
// from per-bucket sorted lists. It is the genome/intruder-style shared
// dictionary: conflicts concentrate on hot buckets.
type HashSet struct {
	buckets []List
	mask    uint64
}

// NewHashSet allocates nBuckets (a power of two) empty buckets, each
// header on its own line to keep bucket conflicts independent.
func NewHashSet(al *mem.Allocator, nBuckets int) *HashSet {
	if nBuckets <= 0 || nBuckets&(nBuckets-1) != 0 {
		panic("structures: bucket count must be a power of two")
	}
	h := &HashSet{mask: uint64(nBuckets - 1)}
	for i := 0; i < nBuckets; i++ {
		h.buckets = append(h.buckets, List{Head: al.LineAligned(1)})
	}
	return h
}

func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (h *HashSet) bucket(key uint64) *List {
	return &h.buckets[mix(key)&h.mask]
}

// Insert adds key→val; false if already present (node unused).
func (h *HashSet) Insert(m Mem, node mem.Addr, key, val uint64) bool {
	return h.bucket(key).Insert(m, node, key, val)
}

// Find looks key up.
func (h *HashSet) Find(m Mem, key uint64) (uint64, bool) {
	return h.bucket(key).Find(m, key)
}

// Update overwrites an existing key's value.
func (h *HashSet) Update(m Mem, key, val uint64) bool {
	return h.bucket(key).Update(m, key, val)
}

// Remove deletes key.
func (h *HashSet) Remove(m Mem, key uint64) (uint64, bool) {
	return h.bucket(key).Remove(m, key)
}

// Len counts all entries (setup/check use).
func (h *HashSet) Len(m Mem) int {
	n := 0
	for i := range h.buckets {
		n += h.buckets[i].Len(m)
	}
	return n
}
