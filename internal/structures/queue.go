package structures

import "chats/internal/mem"

// Queue is a bounded FIFO ring buffer in simulated memory — the intruder
// packet queue. Head and tail live on separate lines (the paper's
// "capture" phase contends on the head pointer: a time gap between
// reading and modifying it lets multiple transactions read it
// simultaneously, the starving-writer pathology of Section VII).
type Queue struct {
	head    mem.Addr // consumer cursor
	tail    mem.Addr // producer cursor
	storage mem.Addr
	cap     uint64
}

// NewQueue allocates a queue with capacity entries.
func NewQueue(al *mem.Allocator, capacity int) *Queue {
	if capacity <= 0 {
		panic("structures: queue capacity must be positive")
	}
	q := &Queue{
		head: al.LineAligned(1),
		tail: al.LineAligned(1),
		cap:  uint64(capacity),
	}
	words := (capacity*mem.WordSize + mem.LineSize - 1) / mem.LineSize * mem.WordsPerLine
	q.storage = al.LineAligned(words)
	return q
}

func (q *Queue) slot(i uint64) mem.Addr {
	return q.storage.Plus(int(i % q.cap))
}

// Push appends v; false when full.
func (q *Queue) Push(m Mem, v uint64) bool {
	t := m.Load(q.tail)
	h := m.Load(q.head)
	if t-h >= q.cap {
		return false
	}
	m.Store(q.slot(t), v)
	m.Store(q.tail, t+1)
	return true
}

// Pop removes the oldest element; false when empty.
func (q *Queue) Pop(m Mem) (uint64, bool) {
	h := m.Load(q.head)
	t := m.Load(q.tail)
	if h == t {
		return 0, false
	}
	v := m.Load(q.slot(h))
	m.Store(q.head, h+1)
	return v, true
}

// PopGap is Pop with a compute gap between reading the element and
// advancing the head — the intruder "capture" access pattern where the
// pointer is read by several transactions before any of them commits the
// update.
func (q *Queue) PopGap(m Mem, gap func()) (uint64, bool) {
	h := m.Load(q.head)
	t := m.Load(q.tail)
	if h == t {
		return 0, false
	}
	v := m.Load(q.slot(h))
	if gap != nil {
		gap()
	}
	m.Store(q.head, h+1)
	return v, true
}

// Len returns the number of queued elements.
func (q *Queue) Len(m Mem) int {
	return int(m.Load(q.tail) - m.Load(q.head))
}

// HeadAddr exposes the head-cursor address (tests and diagnostics).
func (q *Queue) HeadAddr() mem.Addr { return q.head }

// TailAddr exposes the tail-cursor address (tests and diagnostics).
func (q *Queue) TailAddr() mem.Addr { return q.tail }
