package network_test

import (
	"testing"

	"chats/internal/network"
	"chats/internal/sim"
)

// arrival records its delivery cycle; the payload type every test uses.
type arrival struct {
	eng *sim.Engine
	log *[]uint64
}

func (a *arrival) Run() { *a.log = append(*a.log, a.eng.Now()) }

// TestEndpointFlitAccounting pins the per-class cost model on the
// endpoint path: a control message is ControlFlits flits delivered
// after linkLatency+ControlFlits cycles, a data message DataFlits flits
// after linkLatency+DataFlits, and the shard counts every class and
// flit exactly.
func TestEndpointFlitAccounting(t *testing.T) {
	var eng sim.Engine
	const linkLatency = 3
	net := network.New(&eng, linkLatency)
	ep := net.NewEndpoint(eng.NewSched(sim.DomainSerial))

	var log []uint64
	a := &arrival{eng: &eng, log: &log}
	ep.SendControlMsg(sim.DomainSerial, a)
	ep.SendDataMsg(sim.DomainSerial, a)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []uint64{linkLatency + network.ControlFlits, linkLatency + network.DataFlits}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("delivery cycles = %v, want %v", log, want)
	}
	st := ep.Stats
	if st.ControlMsgs != 1 || st.DataMsgs != 1 || st.Messages != 2 {
		t.Fatalf("shard counts = %+v, want 1 control + 1 data", st)
	}
	if want := uint64(network.ControlFlits + network.DataFlits); st.Flits != want {
		t.Fatalf("shard flits = %d, want %d", st.Flits, want)
	}
}

// TestEndpointShardFolding sends a known mix through several endpoints
// plus the network's own send path and checks AddShard reproduces the
// exact totals: per-shard counters plus the network's own must fold
// without loss or double counting — the machine relies on this when it
// merges per-node shards into RunStats after a run.
func TestEndpointShardFolding(t *testing.T) {
	var eng sim.Engine
	net := network.New(&eng, 1)

	nop := &arrival{eng: &eng, log: new([]uint64)}
	const owners = 3
	eps := make([]network.Endpoint, owners)
	// Per-owner mix: owner i sends i+1 control and 2i data messages.
	for i := range eps {
		eps[i] = net.NewEndpoint(eng.NewSched(sim.Domain(1 + i)))
		for k := 0; k < i+1; k++ {
			eps[i].SendControlMsg(sim.DomainSerial, nop)
		}
		for k := 0; k < 2*i; k++ {
			eps[i].SendDataMsg(sim.DomainSerial, nop)
		}
	}
	// Plus traffic on the network's own (serial) path.
	net.SendControl(func() {})
	net.SendData(func() {})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}

	wantCtl := uint64(1 + (1 + 2 + 3)) // network's own + sum over owners
	wantData := uint64(1 + (0 + 2 + 4))
	for i := range eps {
		sh := eps[i].Stats
		if sh.ControlMsgs != uint64(i+1) || sh.DataMsgs != uint64(2*i) {
			t.Fatalf("owner %d shard = %+v, want %d control %d data", i, sh, i+1, 2*i)
		}
		if sh.Messages != sh.ControlMsgs+sh.DataMsgs {
			t.Fatalf("owner %d shard messages %d != control+data %d", i, sh.Messages, sh.ControlMsgs+sh.DataMsgs)
		}
		net.AddShard(&eps[i].Stats)
	}
	st := net.Stats
	if st.ControlMsgs != wantCtl || st.DataMsgs != wantData {
		t.Fatalf("folded totals = %+v, want %d control %d data", st, wantCtl, wantData)
	}
	if st.Messages != wantCtl+wantData {
		t.Fatalf("folded messages = %d, want %d", st.Messages, wantCtl+wantData)
	}
	if want := wantCtl*network.ControlFlits + wantData*network.DataFlits; st.Flits != want {
		t.Fatalf("folded flits = %d, want %d", st.Flits, want)
	}
}

// TestEndpointJitterInOrderClamp pins the Jitter contract on the
// endpoint path: a jittered message holds up everything sent after it
// (the lastDelivery clamp models backpressure — the coherence protocol
// needs point-to-point order), so a later un-jittered send may not
// overtake it. Jitter only exists under fault injection, which forces
// the engine serial; the endpoints here are therefore driven from
// serial context, matching the only legal configuration.
func TestEndpointJitterInOrderClamp(t *testing.T) {
	var eng sim.Engine
	const linkLatency = 1
	net := network.New(&eng, linkLatency)
	jitters := []uint64{20, 0} // first send stalled, second nominally fast
	net.Jitter = func() uint64 {
		j := jitters[0]
		jitters = jitters[1:]
		return j
	}
	ep := net.NewEndpoint(eng.NewSched(sim.DomainSerial))

	var log []uint64
	a := &arrival{eng: &eng, log: &log}
	first := linkLatency + uint64(network.ControlFlits) + 20
	ep.SendControlMsg(sim.DomainSerial, a) // delivers at first
	ep.SendControlMsg(sim.DomainSerial, a) // would deliver at 2 unclamped
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(log))
	}
	if log[0] != first {
		t.Fatalf("jittered message delivered at %d, want %d", log[0], first)
	}
	if log[1] < log[0] {
		t.Fatalf("later send overtook earlier: delivered at %d before %d", log[1], log[0])
	}
	if log[1] != first {
		t.Fatalf("clamped message delivered at %d, want clamp to %d", log[1], first)
	}
}

// TestEndpointDeliversIntoTargetDomain checks the destination-domain
// routing under the parallel engine: a payload sent into a domain runs
// as that domain's event (observable through the wave accounting — a
// non-serial delivery joins a wave instead of forcing a serial frame),
// and a DomainSerial delivery is counted against the serial residue.
func TestEndpointDeliversIntoTargetDomain(t *testing.T) {
	var eng sim.Engine
	eng.SetWorkers(2)
	net := network.New(&eng, 1)
	ep := net.NewEndpoint(eng.NewSched(sim.Domain(1)))
	// The destination domain's owner registers its handle at build time
	// (domains are sized before Run); the endpoint then only names it.
	eng.NewSched(sim.Domain(2))

	var log []uint64
	a := &arrival{eng: &eng, log: &log}
	ep.SendControlMsg(sim.Domain(2), a)    // cross-domain delivery
	ep.SendControlMsg(sim.DomainSerial, a) // serial delivery
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	events, waves, serial := eng.WaveStats()
	if events != 2 || waves == 0 {
		t.Fatalf("WaveStats events=%d waves=%d, want 2 events in >=1 wave", events, waves)
	}
	if serial != 1 {
		t.Fatalf("WaveStats serial=%d, want exactly the DomainSerial delivery", serial)
	}
}
