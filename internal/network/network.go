// Package network models the on-chip interconnect from Table I: a
// crossbar with 1-cycle links, 16-byte flits, 1 flit/cycle of link
// bandwidth, 1-flit control messages and 5-flit data messages. The model
// charges each message its serialization latency and counts flits, which
// is what Fig. 7 (normalized network usage in flits) needs; crossbars are
// non-blocking, so port contention is not modelled.
package network

import "chats/internal/sim"

// Flit sizes per message class (Table I).
const (
	ControlFlits = 1
	DataFlits    = 5
)

// Stats aggregates interconnect usage.
type Stats struct {
	Messages    uint64
	Flits       uint64
	ControlMsgs uint64
	DataMsgs    uint64
}

// Network delivers messages between nodes after a latency of
// linkLatency + flits cycles (one cycle per flit of serialization).
type Network struct {
	eng         *sim.Engine
	linkLatency uint64
	Stats       Stats

	// Jitter, when non-nil, returns extra delivery latency (in cycles)
	// charged to the message being sent. The fault injector uses it to
	// model a congested interconnect; it must be deterministic (seeded
	// from sim.Rand) to keep runs reproducible.
	//
	// While Jitter is attached the network delivers in strict send order
	// (lastDelivery below): a delayed message holds up everything sent
	// after it, like backpressure in a congested fabric. Stretching
	// latency without that clamp would let messages overtake each other,
	// which the coherence protocol — like the real point-to-point
	// ordered interconnects it models — does not tolerate.
	Jitter func() uint64

	lastDelivery uint64
}

// New builds a crossbar attached to the engine.
func New(eng *sim.Engine, linkLatency uint64) *Network {
	return &Network{eng: eng, linkLatency: linkLatency}
}

// SendControl delivers a 1-flit message (requests, acks, nacks,
// cancellations) and invokes deliver at the destination.
func (n *Network) SendControl(deliver func()) {
	n.eng.Schedule(n.delay(ControlFlits), deliver)
	n.Stats.ControlMsgs++
}

// SendData delivers a 5-flit message (any message carrying a cache line:
// data responses, SpecResp, writebacks).
func (n *Network) SendData(deliver func()) {
	n.eng.Schedule(n.delay(DataFlits), deliver)
	n.Stats.DataMsgs++
}

// SendControlMsg is SendControl with a typed payload: the hot paths use
// pooled message structs instead of per-hop closures so sending does not
// allocate.
func (n *Network) SendControlMsg(r sim.Runner) {
	n.eng.ScheduleRunner(n.delay(ControlFlits), r)
	n.Stats.ControlMsgs++
}

// SendDataMsg is SendData with a typed payload.
func (n *Network) SendDataMsg(r sim.Runner) {
	n.eng.ScheduleRunner(n.delay(DataFlits), r)
	n.Stats.DataMsgs++
}

// delay accounts the message and computes its delivery latency,
// including fault-injected jitter and the in-order delivery clamp.
func (n *Network) delay(flits uint64) uint64 {
	return n.delayInto(&n.Stats, flits)
}

func (n *Network) delayInto(st *Stats, flits uint64) uint64 {
	st.Messages++
	st.Flits += flits
	delay := n.linkLatency + flits
	if n.Jitter != nil {
		// Jitter only exists under fault injection, which forces the
		// engine serial, so touching the shared clamp state here is safe
		// even from an Endpoint.
		delay += n.Jitter()
		now := n.eng.Now()
		if now+delay < n.lastDelivery {
			delay = n.lastDelivery - now
		}
		n.lastDelivery = now + delay
	}
	return delay
}

// Endpoint is one owner's private interface to the crossbar: it owns a
// Stats shard and the owner's scheduling handle, so concurrently
// executing domains can send without sharing counters or touching the
// engine directly. Sends name the destination's domain: core→directory
// messages (requests, unblocks, writeback data, probe replies returning
// to their flow) target the owning bank's domain, directory→core
// deliveries (responses, probes) target the core's own domain, and
// DomainSerial is reserved for the few flows that must still observe
// global order (the begin flow's timestamp draw, eviction writebacks in
// their cancellation window). An Endpoint may only be used from its own
// domain's executing context or from serial execution; the payload then
// runs as an ordinary event of the destination domain, joining its wave
// instead of forcing a serial frame. Fold the shards into the Network's
// totals with AddShard after the run.
type Endpoint struct {
	net   *Network
	sched sim.Sched
	Stats Stats
}

// NewEndpoint builds a per-owner endpoint around the owner's scheduling
// handle.
func (n *Network) NewEndpoint(sched sim.Sched) Endpoint {
	return Endpoint{net: n, sched: sched}
}

// SendControlMsg delivers a 1-flit typed message into target.
func (ep *Endpoint) SendControlMsg(target sim.Domain, r sim.Runner) {
	ep.sched.ScheduleRunnerIn(target, ep.net.delayInto(&ep.Stats, ControlFlits), r)
	ep.Stats.ControlMsgs++
}

// SendDataMsg delivers a 5-flit typed message into target.
func (ep *Endpoint) SendDataMsg(target sim.Domain, r sim.Runner) {
	ep.sched.ScheduleRunnerIn(target, ep.net.delayInto(&ep.Stats, DataFlits), r)
	ep.Stats.DataMsgs++
}

// AddShard folds an endpoint's counters into the network totals.
func (n *Network) AddShard(st *Stats) {
	n.Stats.Messages += st.Messages
	n.Stats.Flits += st.Flits
	n.Stats.ControlMsgs += st.ControlMsgs
	n.Stats.DataMsgs += st.DataMsgs
}
