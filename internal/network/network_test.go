package network

import (
	"testing"

	"chats/internal/sim"
)

func TestLatencies(t *testing.T) {
	var e sim.Engine
	n := New(&e, 1)
	var ctrlAt, dataAt uint64
	n.SendControl(func() { ctrlAt = e.Now() })
	n.SendData(func() { dataAt = e.Now() })
	e.Run(0)
	if ctrlAt != 1+ControlFlits {
		t.Fatalf("control delivered at %d, want %d", ctrlAt, 1+ControlFlits)
	}
	if dataAt != 1+DataFlits {
		t.Fatalf("data delivered at %d, want %d", dataAt, 1+DataFlits)
	}
}

func TestFlitAccounting(t *testing.T) {
	var e sim.Engine
	n := New(&e, 1)
	for i := 0; i < 3; i++ {
		n.SendControl(func() {})
	}
	for i := 0; i < 2; i++ {
		n.SendData(func() {})
	}
	e.Run(0)
	if n.Stats.Messages != 5 {
		t.Fatalf("messages = %d", n.Stats.Messages)
	}
	if want := uint64(3*ControlFlits + 2*DataFlits); n.Stats.Flits != want {
		t.Fatalf("flits = %d, want %d", n.Stats.Flits, want)
	}
	if n.Stats.ControlMsgs != 3 || n.Stats.DataMsgs != 2 {
		t.Fatalf("msg split = %d/%d", n.Stats.ControlMsgs, n.Stats.DataMsgs)
	}
}

func TestOrderingSameSource(t *testing.T) {
	// Two control messages sent back to back arrive in send order.
	var e sim.Engine
	n := New(&e, 1)
	var got []int
	n.SendControl(func() { got = append(got, 1) })
	n.SendControl(func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("order = %v", got)
	}
}
