package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
)

// Labyrinth models the maze router: each very long transaction reads an
// entire candidate path through the shared grid and, if free, claims all
// of its cells. Parallelism is scarce because transactions are huge and
// the grid is shared wholesale (Section VII: no improvement without
// early release), so all systems perform comparably.
type Labyrinth struct {
	// Grid is the square grid side (cells = Grid²).
	Grid int
	// RoutesPerThread is the number of routing attempts per thread.
	RoutesPerThread int

	threads int
	cells   mem.Addr
	claims  mem.Addr // per-thread success counters
}

// NewLabyrinth builds the kernel.
func NewLabyrinth(grid, routes int) *Labyrinth {
	return &Labyrinth{Grid: grid, RoutesPerThread: routes}
}

func (l *Labyrinth) Name() string { return "labyrinth" }

func (l *Labyrinth) cell(x, y int) mem.Addr {
	return l.cells.Plus(y*l.Grid + x)
}

func (l *Labyrinth) slot(tid int) mem.Addr { return l.claims + mem.Addr(tid*mem.LineSize) }

func (l *Labyrinth) Setup(w *machine.World, threads int) {
	l.threads = threads
	words := l.Grid * l.Grid
	l.cells = w.Alloc.Lines((words*mem.WordSize + mem.LineSize - 1) / mem.LineSize)
	l.claims = w.Alloc.Lines(threads)
}

// path builds an L-shaped route between a random point and a nearby
// destination (real routes are local; whole-grid spans would make every
// pair of routes collide).
func (l *Labyrinth) path(r *sim.Rand) []mem.Addr {
	x0, y0 := r.Intn(l.Grid), r.Intn(l.Grid)
	hop := l.Grid / 6
	if hop < 2 {
		hop = 2
	}
	x1 := (x0 + 1 + r.Intn(hop)) % l.Grid
	y1 := (y0 + 1 + r.Intn(hop)) % l.Grid
	var p []mem.Addr
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	for x := x0; x != x1; x += step(x0, x1) {
		p = append(p, l.cell(x, y0))
	}
	for y := y0; y != y1; y += step(y0, y1) {
		p = append(p, l.cell(x1, y))
	}
	p = append(p, l.cell(x1, y1))
	return p
}

func (l *Labyrinth) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*3571 + 41)
	routed := uint64(0)
	for i := 0; i < l.RoutesPerThread; i++ {
		p := l.path(r)
		ctx.Work(uint64(20 * len(p))) // private expansion (Lee's algorithm)
		claimed := false
		ctx.Atomic(func(tx machine.Tx) {
			claimed = false // the body may re-execute after an abort
			for _, c := range p {
				if tx.Load(c) != 0 {
					return // blocked route: give up (grid stays read-only)
				}
			}
			for _, c := range p {
				tx.Store(c, uint64(tid)+1)
			}
			claimed = true
		})
		if claimed {
			routed++
		}
	}
	ctx.Store(l.slot(tid), routed)
}

func (l *Labyrinth) Check(w *machine.World) error {
	owners := map[uint64]bool{}
	for y := 0; y < l.Grid; y++ {
		for x := 0; x < l.Grid; x++ {
			v := w.Mem.ReadWord(l.cell(x, y))
			if v > uint64(l.threads) {
				return fmt.Errorf("labyrinth: cell (%d,%d) has impossible owner %d", x, y, v)
			}
			if v != 0 {
				owners[v] = true
			}
		}
	}
	var routed uint64
	for t := 0; t < l.threads; t++ {
		routed += w.Mem.ReadWord(l.slot(t))
	}
	if routed == 0 {
		return fmt.Errorf("labyrinth: no routes claimed")
	}
	if len(owners) == 0 {
		return fmt.Errorf("labyrinth: routes counted but grid empty")
	}
	return nil
}
