package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
	"chats/internal/structures"
)

// Vacation models the travel-reservation system: four shared tables
// (cars, flights, rooms, customers) held in treaps; client transactions
// run a handful of queries plus an occasional reservation (decrement of
// an availability counter). Contention is low — reads dominate — so all
// systems tie (Section VII).
type Vacation struct {
	// Relations is the number of rows per table.
	Relations int
	// TasksPerThread is the number of client sessions per thread.
	TasksPerThread int
	// Queries is the number of lookups per session.
	Queries int

	threads  int
	tables   [4]*structures.Treap
	reserved mem.Addr // per-thread success counters (one line each)
	initial  uint64
}

// NewVacation builds the kernel.
func NewVacation(relations, tasks int) *Vacation {
	return &Vacation{Relations: relations, TasksPerThread: tasks, Queries: 4}
}

func (v *Vacation) Name() string { return "vacation" }

func (v *Vacation) Setup(w *machine.World, threads int) {
	v.threads = threads
	d := structures.Direct{M: w.Mem}
	r := sim.NewRand(12345)
	for t := range v.tables {
		v.tables[t] = structures.NewTreap(w.Alloc)
		pool := structures.NewPool(w.Alloc, v.Relations, structures.TreapNodeWords)
		for k := 1; k <= v.Relations; k++ {
			v.tables[t].Insert(d, pool.Get(), uint64(k), 100, r.Uint64())
		}
	}
	v.initial = uint64(4 * v.Relations * 100)
	v.reserved = w.Alloc.Lines(threads)
}

func (v *Vacation) slot(tid int) mem.Addr { return v.reserved + mem.Addr(tid*mem.LineSize) }

func (v *Vacation) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*9973 + 29)
	success := uint64(0)
	for i := 0; i < v.TasksPerThread; i++ {
		table := v.tables[r.Intn(4)]
		resKey := r.Uint64n(uint64(v.Relations)) + 1
		var qk [8]uint64
		for q := 0; q < v.Queries; q++ {
			qk[q] = r.Uint64n(uint64(v.Relations)) + 1
		}
		ctx.Work(80) // session planning (private)
		booked := false
		ctx.Atomic(func(tx machine.Tx) {
			booked = false
			for q := 0; q < v.Queries; q++ {
				table := v.tables[(int(qk[q])+q)%4]
				table.Find(tx, qk[q])
			}
			if avail, ok := table.Find(tx, resKey); ok && avail > 0 {
				table.Update(tx, resKey, avail-1)
				booked = true
			}
		})
		if booked {
			success++
		}
	}
	ctx.Store(v.slot(tid), success)
}

func (v *Vacation) Check(w *machine.World) error {
	d := structures.Direct{M: w.Mem}
	var remaining uint64
	for t := range v.tables {
		if !v.tables[t].CheckInvariants(d) {
			return fmt.Errorf("vacation: table %d invariants violated", t)
		}
		for k := 1; k <= v.Relations; k++ {
			val, ok := v.tables[t].Find(d, uint64(k))
			if !ok {
				return fmt.Errorf("vacation: table %d row %d missing", t, k)
			}
			remaining += val
		}
	}
	var booked uint64
	for t := 0; t < v.threads; t++ {
		booked += w.Mem.ReadWord(v.slot(t))
	}
	if remaining+booked != v.initial {
		return fmt.Errorf("vacation: %d remaining + %d booked != %d initial",
			remaining, booked, v.initial)
	}
	return nil
}
