package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
)

// Yada models Delaunay mesh refinement: long transactions that read a
// cavity of neighboring triangle records and retriangulate, writing each
// touched record exactly once — the migratory write-once pattern
// Section VII credits for yada's large CHATS gains ("whenever a
// transaction modifies a memory location, it would not modify it
// again").
type Yada struct {
	// Triangles is the mesh size (one line-aligned record each).
	Triangles int
	// RefinesPerThread is the number of cavity retriangulations.
	RefinesPerThread int
	// Cavity is how many neighbor records a refinement reads.
	Cavity int
	// Updates is how many of them it rewrites (once each).
	Updates int

	threads int
	tris    mem.Addr
}

// NewYada builds the kernel.
func NewYada(triangles, refines int) *Yada {
	return &Yada{Triangles: triangles, RefinesPerThread: refines, Cavity: 12, Updates: 4}
}

func (y *Yada) Name() string { return "yada" }

func (y *Yada) tri(i int) mem.Addr { return y.tris + mem.Addr(i*mem.LineSize) }

func (y *Yada) Setup(w *machine.World, threads int) {
	y.threads = threads
	y.tris = w.Alloc.Lines(y.Triangles)
}

func (y *Yada) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*2879 + 53)
	for i := 0; i < y.RefinesPerThread; i++ {
		seed := r.Intn(y.Triangles)
		// The cavity is a deterministic neighborhood of the seed, so two
		// threads refining nearby triangles overlap on some records.
		cav := make([]int, y.Cavity)
		for c := range cav {
			cav[c] = (seed + c*7) % y.Triangles
		}
		ctx.Atomic(func(tx machine.Tx) {
			var acc uint64
			for _, c := range cav {
				acc += tx.Load(y.tri(c))
				tx.Work(20) // in-cavity geometric checks
			}
			tx.Work(150) // compute the retriangulation
			// Retriangulate: write the first Updates records once each.
			for u := 0; u < y.Updates; u++ {
				a := y.tri(cav[u])
				tx.Store(a.Plus(1), acc+uint64(u)) // new geometry
				tx.Store(a, tx.Load(a)+1)          // refinement counter
			}
		})
		ctx.Work(100) // enqueue new bad triangles (private)
	}
}

func (y *Yada) Check(w *machine.World) error {
	var total uint64
	for i := 0; i < y.Triangles; i++ {
		total += w.Mem.ReadWord(y.tri(i))
	}
	want := uint64(y.threads * y.RefinesPerThread * y.Updates)
	if total != want {
		return fmt.Errorf("yada: refinement count %d, want %d", total, want)
	}
	return nil
}
