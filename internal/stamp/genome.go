package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
	"chats/internal/structures"
)

// Genome models the two transactional phases of gene sequencing:
// deduplicating segments through a shared hash set, then overlap
// matching, where threads claim segments with write-once flags — the
// producer-consumer pattern Section VII credits for genome's 75%
// conflict reduction under CHATS.
type Genome struct {
	// Segments is the number of distinct segment keys.
	Segments int
	// InsertsPerThread is phase-1 work (duplicates included).
	InsertsPerThread int
	// MatchesPerThread is phase-2 work.
	MatchesPerThread int
	// Window is the claim-scan window width in phase 2.
	Window int

	threads int
	table   *structures.HashSet
	pools   []*structures.Pool
	claims  mem.Addr // one line-aligned flag per segment
	links   mem.Addr // matched successor per segment
}

// NewGenome builds the kernel.
func NewGenome(segments, inserts, matches int) *Genome {
	return &Genome{
		Segments:         segments,
		InsertsPerThread: inserts,
		MatchesPerThread: matches,
		Window:           8,
	}
}

func (g *Genome) Name() string { return "genome" }

func (g *Genome) claim(i int) mem.Addr { return g.claims + mem.Addr(i*mem.LineSize) }
func (g *Genome) link(i int) mem.Addr  { return g.links + mem.Addr(i*mem.WordSize) }

func (g *Genome) Setup(w *machine.World, threads int) {
	g.threads = threads
	g.table = structures.NewHashSet(w.Alloc, 64)
	g.pools = make([]*structures.Pool, threads)
	for t := range g.pools {
		g.pools[t] = structures.NewPool(w.Alloc, g.InsertsPerThread+1, structures.ListNodeWords)
	}
	g.claims = w.Alloc.Lines(g.Segments)
	g.links = w.Alloc.Lines((g.Segments*mem.WordSize + mem.LineSize - 1) / mem.LineSize)
}

func (g *Genome) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*7817 + 13)
	pool := g.pools[tid]

	// Phase 1: segment deduplication. Keys are drawn from a space half
	// the insert count, so duplicates are common and the insert path is
	// read-mostly after warm-up.
	for i := 0; i < g.InsertsPerThread; i++ {
		key := r.Uint64n(uint64(g.Segments))
		node := pool.Get() // pre-allocate outside the transaction
		ctx.Work(40)       // hashing the segment contents (private)
		ctx.Atomic(func(tx machine.Tx) {
			if _, found := g.table.Find(tx, key); !found {
				g.table.Insert(tx, node, key, key)
			}
		})
	}

	// Phase 2: overlap matching. A thread scans a window of segments and
	// claims the first unclaimed one (write-once flag). Competing threads
	// read freshly claimed flags — speculative forwarding of the claimed
	// value lets them skip ahead without aborting the claimer.
	for i := 0; i < g.MatchesPerThread; i++ {
		start := r.Intn(g.Segments)
		succ := r.Uint64n(uint64(g.Segments)) + 1
		ctx.Atomic(func(tx machine.Tx) {
			for o := 0; o < g.Window; o++ {
				idx := (start + o) % g.Segments
				if tx.Load(g.claim(idx)) == 0 {
					tx.Store(g.claim(idx), uint64(tid)+1)
					tx.Work(150) // compute the overlap extension
					tx.Store(g.link(idx), succ)
					return
				}
			}
		})
	}
}

func (g *Genome) Check(w *machine.World) error {
	if got := g.table.Len(structures.Direct{M: w.Mem}); got > g.Segments {
		return fmt.Errorf("genome: %d table entries exceed %d distinct keys", got, g.Segments)
	}
	claimed := 0
	for i := 0; i < g.Segments; i++ {
		v := w.Mem.ReadWord(g.claim(i))
		if v > uint64(g.threads) {
			return fmt.Errorf("genome: claim %d has impossible owner %d", i, v)
		}
		if v != 0 {
			claimed++
			if w.Mem.ReadWord(g.link(i)) == 0 {
				return fmt.Errorf("genome: segment %d claimed but not linked", i)
			}
		} else if w.Mem.ReadWord(g.link(i)) != 0 {
			return fmt.Errorf("genome: segment %d linked but not claimed", i)
		}
	}
	if claimed == 0 {
		return fmt.Errorf("genome: no segments were claimed")
	}
	return nil
}
