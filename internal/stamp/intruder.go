package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/sim"
	"chats/internal/structures"
)

// Intruder models the two transactional phases of STAMP's network
// intrusion detector: "capture" pops a packet from a shared FIFO with a
// time gap between reading and advancing the head pointer (the
// starving-writer pathology of Section VII), and "reassembly" inserts
// the fragment into a shared tree whose rotations occasionally shake the
// whole access path. A third transaction pushes completed flows to a
// result queue.
type Intruder struct {
	// Packets is the total number of packets to process.
	Packets int
	// GapCycles is the capture-phase read-to-write gap.
	GapCycles uint64

	threads int
	inQ     *structures.Queue
	outQ    *structures.Queue
	tree    *structures.Treap
	pools   []*structures.Pool
}

// NewIntruder builds the kernel.
func NewIntruder(packets int) *Intruder {
	return &Intruder{Packets: packets, GapCycles: 40}
}

func (in *Intruder) Name() string { return "intruder" }

func (in *Intruder) Setup(w *machine.World, threads int) {
	in.threads = threads
	in.inQ = structures.NewQueue(w.Alloc, in.Packets+1)
	in.outQ = structures.NewQueue(w.Alloc, in.Packets+1)
	in.tree = structures.NewTreap(w.Alloc)
	in.pools = make([]*structures.Pool, threads)
	for t := range in.pools {
		in.pools[t] = structures.NewPool(w.Alloc, in.Packets+1, structures.TreapNodeWords)
	}
	d := structures.Direct{M: w.Mem}
	for p := 0; p < in.Packets; p++ {
		if !in.inQ.Push(d, uint64(p)+1) {
			panic("intruder: input queue overflow during setup")
		}
	}
}

func (in *Intruder) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*6151 + 17)
	pool := in.pools[tid]
	for {
		var pkt uint64
		var ok bool
		// Capture: pop with a decode gap inside the transaction.
		ctx.Atomic(func(tx machine.Tx) {
			pkt, ok = in.inQ.PopGap(tx, func() { tx.Work(in.GapCycles) })
		})
		if !ok {
			return
		}
		ctx.Work(120) // fragment decoding (private)

		// Reassembly: insert into the shared tree; the randomized
		// priority occasionally rotates high up the tree, invalidating
		// other traversals — the paper's rebalance-induced aborts.
		key := pkt * 2654435761 % 1000003
		prio := r.Uint64()
		node := pool.Get() // pre-allocate outside the transaction
		ctx.Atomic(func(tx machine.Tx) {
			in.tree.Insert(tx, node, key, pkt, prio)
		})
		ctx.Work(80) // detection over the reassembled flow (private)

		// Deliver the verdict.
		ctx.Atomic(func(tx machine.Tx) {
			if !in.outQ.Push(tx, pkt) {
				panic("intruder: result queue overflow")
			}
		})
	}
}

func (in *Intruder) Check(w *machine.World) error {
	d := structures.Direct{M: w.Mem}
	if got := in.inQ.Len(d); got != 0 {
		return fmt.Errorf("intruder: %d packets left in input queue", got)
	}
	if got := in.outQ.Len(d); got != in.Packets {
		return fmt.Errorf("intruder: %d results, want %d", got, in.Packets)
	}
	if got := in.tree.Size(d); got != in.Packets {
		return fmt.Errorf("intruder: tree holds %d fragments, want %d", got, in.Packets)
	}
	if !in.tree.CheckInvariants(d) {
		return fmt.Errorf("intruder: tree invariants violated")
	}
	// Every packet id delivered exactly once.
	seen := make([]bool, in.Packets+1)
	for i := 0; i < in.Packets; i++ {
		v, ok := in.outQ.Pop(d)
		if !ok || v == 0 || v > uint64(in.Packets) || seen[v] {
			return fmt.Errorf("intruder: bad or duplicate result %d", v)
		}
		seen[v] = true
	}
	return nil
}
