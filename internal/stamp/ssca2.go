package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
)

// SSCA2 models kernel 1 of STAMP's ssca2 (graph construction): tiny
// transactions appending edges to adjacency counters spread over a large
// array — almost no contention (Section VII: 0–10 aborts total), so all
// systems perform identically.
type SSCA2 struct {
	// Nodes is the size of the adjacency array (one line per node).
	Nodes int
	// EdgesPerThread is the number of edge insertions per thread.
	EdgesPerThread int

	threads int
	adj     mem.Addr
}

// NewSSCA2 builds the kernel.
func NewSSCA2(nodes, edges int) *SSCA2 {
	return &SSCA2{Nodes: nodes, EdgesPerThread: edges}
}

func (s *SSCA2) Name() string { return "ssca2" }

func (s *SSCA2) node(i int) mem.Addr { return s.adj + mem.Addr(i*mem.LineSize) }

func (s *SSCA2) Setup(w *machine.World, threads int) {
	s.threads = threads
	s.adj = w.Alloc.Lines(s.Nodes)
}

func (s *SSCA2) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*4241 + 3)
	for i := 0; i < s.EdgesPerThread; i++ {
		u := r.Intn(s.Nodes)
		v := r.Intn(s.Nodes)
		ctx.Work(30) // pick the edge from the generator (private)
		ctx.Atomic(func(tx machine.Tx) {
			au, av := s.node(u), s.node(v)
			tx.Store(au, tx.Load(au)+1)
			tx.Store(av, tx.Load(av)+1)
		})
	}
}

func (s *SSCA2) Check(w *machine.World) error {
	var total uint64
	for i := 0; i < s.Nodes; i++ {
		total += w.Mem.ReadWord(s.node(i))
	}
	want := uint64(2 * s.threads * s.EdgesPerThread)
	if total != want {
		return fmt.Errorf("ssca2: degree sum %d, want %d", total, want)
	}
	return nil
}
