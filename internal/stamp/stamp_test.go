package stamp

import (
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/mem"
)

// run executes a workload on a small CHATS machine and returns the world
// for post-mortem inspection.
func run(t *testing.T, w machine.Workload) (*machine.World, machine.RunStats) {
	t.Helper()
	policy, err := core.New(core.KindCHATS)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	cfg.CycleLimit = 100_000_000
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return m.World(), stats
}

func TestKMeansCheckDetectsLostUpdate(t *testing.T) {
	w := NewKMeans(8, 10, true)
	world, _ := run(t, w)
	// Corrupt a center count: Check must notice.
	a := w.center(0)
	world.Mem.WriteWord(a, world.Mem.ReadWord(a)+1)
	if err := w.Check(world); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("Check missed the corruption: %v", err)
	}
}

func TestGenomeCheckDetectsOrphanLink(t *testing.T) {
	w := NewGenome(32, 4, 8)
	world, _ := run(t, w)
	// Find an unclaimed segment and forge a link for it.
	for i := 0; i < w.Segments; i++ {
		if world.Mem.ReadWord(w.claim(i)) == 0 {
			world.Mem.WriteWord(w.link(i), 5)
			if err := w.Check(world); err == nil {
				t.Fatal("Check missed the orphan link")
			}
			return
		}
	}
	t.Skip("every segment claimed; cannot forge an orphan")
}

func TestIntruderCheckDetectsLoss(t *testing.T) {
	w := NewIntruder(24)
	world, _ := run(t, w)
	// Steal a result: Check must notice the count mismatch.
	world.Mem.WriteWord(w.outQ.HeadAddr(), world.Mem.ReadWord(w.outQ.HeadAddr())+1)
	if err := w.Check(world); err == nil {
		t.Fatal("Check missed the stolen result")
	}
}

func TestSSCA2DegreeConservation(t *testing.T) {
	w := NewSSCA2(128, 8)
	world, stats := run(t, w)
	if stats.Aborts > stats.Commits/2 {
		t.Fatalf("ssca2 should be low contention: %d aborts / %d commits", stats.Aborts, stats.Commits)
	}
	world.Mem.WriteWord(w.node(0), world.Mem.ReadWord(w.node(0))+1)
	if err := w.Check(world); err == nil {
		t.Fatal("Check missed the degree corruption")
	}
}

func TestVacationConservation(t *testing.T) {
	w := NewVacation(128, 3)
	world, _ := run(t, w)
	world.Mem.WriteWord(w.slot(0), world.Mem.ReadWord(w.slot(0))+1)
	if err := w.Check(world); err == nil {
		t.Fatal("Check missed the booking corruption")
	}
}

func TestLabyrinthPathsAreConnected(t *testing.T) {
	w := NewLabyrinth(16, 2)
	world, _ := run(t, w)
	if err := w.Check(world); err != nil {
		t.Fatal(err)
	}
	// An impossible owner id must be rejected.
	world.Mem.WriteWord(w.cell(0, 0), 99)
	if err := w.Check(world); err == nil {
		t.Fatal("Check missed the impossible owner")
	}
}

func TestYadaRefinementConservation(t *testing.T) {
	w := NewYada(64, 3)
	world, _ := run(t, w)
	world.Mem.WriteWord(w.tri(0), world.Mem.ReadWord(w.tri(0))+1)
	if err := w.Check(world); err == nil {
		t.Fatal("Check missed the refinement corruption")
	}
}

func TestKMeansCenterAddressing(t *testing.T) {
	w := NewKMeans(4, 1, false)
	var world machine.World
	world.Mem = mem.NewMemory()
	world.Alloc = mem.NewAllocator(0x100)
	w.Setup(&world, 4)
	// Centers must not share lines (count word + dims fit the stride).
	for c := 0; c < 4; c++ {
		a := w.center(c)
		if uint64(a)%mem.LineSize != 0 {
			t.Fatalf("center %d not line aligned: %v", c, a)
		}
		if c > 0 && a == w.center(c-1) {
			t.Fatal("centers overlap")
		}
	}
}
