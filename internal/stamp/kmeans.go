// Package stamp re-implements the transactional kernels of the STAMP
// benchmarks the paper evaluates (Section VI-C), scaled to the simulator
// and preserving each benchmark's sharing pattern as described in
// Section VII: kmeans' migratory center updates, genome's hash dedup and
// producer-consumer matching, intruder's queue-pop/tree-rebalance,
// labyrinth's long grid transactions, ssca2's tiny sparse updates,
// vacation's read-mostly table lookups, and yada's long write-once
// retriangulation transactions.
package stamp

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
)

// KMeans models the contended center-update kernel: each transaction
// folds one point into one cluster center (read-modify-write of the
// center's accumulators, written once per transaction — the migratory
// pattern CHATS exploits, Section VII). Two global counters mirror
// STAMP's global-delta transactions.
type KMeans struct {
	// Clusters is the number of centers: few centers = high contention
	// (kmeans-h), many = low (kmeans-l).
	Clusters int
	// PointsPerThread is the number of points each thread classifies.
	PointsPerThread int
	// Dims is the number of accumulated dimensions per center.
	Dims int
	// ComputeCycles models the per-point distance computation.
	ComputeCycles uint64

	name    string
	centers mem.Addr // per center: line-aligned {count, dim0..dimN}
	globals mem.Addr // {totalPoints, totalDelta}
	stride  int
	threads int
}

// NewKMeans builds the kernel; high selects the contended variant name.
func NewKMeans(clusters, pointsPerThread int, high bool) *KMeans {
	name := "kmeans-l"
	if high {
		name = "kmeans-h"
	}
	return &KMeans{
		Clusters:        clusters,
		PointsPerThread: pointsPerThread,
		Dims:            16,
		ComputeCycles:   200,
		name:            name,
	}
}

func (k *KMeans) Name() string { return k.name }

func (k *KMeans) center(c int) mem.Addr {
	return k.centers + mem.Addr(c*k.stride)
}

func (k *KMeans) Setup(w *machine.World, threads int) {
	k.threads = threads
	k.stride = ((1+k.Dims)*mem.WordSize + mem.LineSize - 1) / mem.LineSize * mem.LineSize
	k.centers = w.Alloc.Lines(k.Clusters * k.stride / mem.LineSize)
	k.globals = w.Alloc.LineAligned(2)
}

func (k *KMeans) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*99991 + 7)
	for i := 0; i < k.PointsPerThread; i++ {
		c := r.Intn(k.Clusters)
		var deltas [8]uint64
		for d := range deltas {
			deltas[d] = r.Uint64n(100)
		}
		ctx.Work(k.ComputeCycles) // nearest-center search (private data)
		ctx.Atomic(func(tx machine.Tx) {
			base := k.center(c)
			cnt := tx.Load(base)
			tx.Store(base, cnt+1)
			for d := 0; d < k.Dims; d++ {
				a := base.Plus(1 + d)
				tx.Store(a, tx.Load(a)+deltas[d%len(deltas)])
				tx.Work(3) // the floating-point accumulate
			}
		})
		// The two small global-variable transactions of the STAMP kernel.
		if i%8 == 7 {
			ctx.Atomic(func(tx machine.Tx) {
				tx.Store(k.globals, tx.Load(k.globals)+8)
			})
			ctx.Atomic(func(tx machine.Tx) {
				a := k.globals.Plus(1)
				tx.Store(a, tx.Load(a)+1)
			})
		}
	}
}

func (k *KMeans) Check(w *machine.World) error {
	total := uint64(0)
	for c := 0; c < k.Clusters; c++ {
		total += w.Mem.ReadWord(k.center(c))
	}
	want := uint64(k.threads * k.PointsPerThread)
	if total != want {
		return fmt.Errorf("kmeans: center counts sum to %d, want %d", total, want)
	}
	return nil
}
