package machine_test

import (
	"errors"
	"testing"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/testutil"
)

// ---------- spec round-trips and validation (satellite: knob coverage) ----------

func TestFallbackSpecRoundTrip(t *testing.T) {
	good := []string{"lock", "stm", "stm:locks=128", "elide", "elide:budget=8,refill=2", "elide:budget=8"}
	for _, spec := range good {
		c, err := machine.ParseFallback(spec)
		if err != nil {
			t.Fatalf("ParseFallback(%q): %v", spec, err)
		}
		back, err := machine.ParseFallback(c.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", c.String(), spec, err)
		}
		if back != c {
			t.Errorf("round trip %q: %+v -> %q -> %+v", spec, c, c.String(), back)
		}
	}
	bad := []string{"bogus", "lock:x=1", "stm:budget=2", "elide:locks=4", "stm:locks=abc", "stm:locks"}
	for _, spec := range bad {
		if _, err := machine.ParseFallback(spec); err == nil {
			t.Errorf("ParseFallback(%q) accepted", spec)
		}
	}
	if c, _ := machine.ParseFallback("lock"); c != (machine.FallbackConfig{}) {
		t.Errorf("lock spec is not the zero config: %+v", c)
	}
}

func TestBackoffSpecRoundTrip(t *testing.T) {
	good := []string{"exp", "linear", "linear:cap=4096", "jitter", "jitter:cap=1024", "exp:cap=65536"}
	for _, spec := range good {
		c, err := machine.ParseBackoff(spec)
		if err != nil {
			t.Fatalf("ParseBackoff(%q): %v", spec, err)
		}
		back, err := machine.ParseBackoff(c.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", c.String(), err)
		}
		if back != c {
			t.Errorf("round trip %q: %+v -> %q -> %+v", spec, c, c.String(), back)
		}
	}
	for _, spec := range []string{"bogus", "exp:x=1", "linear:cap=zz"} {
		if _, err := machine.ParseBackoff(spec); err == nil {
			t.Errorf("ParseBackoff(%q) accepted", spec)
		}
	}
}

func TestCMSpecRoundTrip(t *testing.T) {
	good := []string{"fixed", "adaptive", "adaptive:window=8,spec=0.5,wait=128,cap=4096,fallbackafter=4,hotline=3"}
	for _, spec := range good {
		c, err := htm.ParseCM(spec)
		if err != nil {
			t.Fatalf("ParseCM(%q): %v", spec, err)
		}
		back, err := htm.ParseCM(c.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", c.String(), err)
		}
		if back != c {
			t.Errorf("round trip %q: %+v -> %q -> %+v", spec, c, c.String(), back)
		}
	}
	bad := []string{"bogus", "fixed:window=2", "adaptive:spec=1.5", "adaptive:window=100", "adaptive:zzz=1"}
	for _, spec := range bad {
		if _, err := htm.ParseCM(spec); err == nil {
			t.Errorf("ParseCM(%q) accepted", spec)
		}
	}
}

func TestConfigValidateKnobs(t *testing.T) {
	base := testutil.Config()
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*machine.Config)
	}{
		{"negative stm locks", func(c *machine.Config) { c.Fallback.Locks = -1 }},
		{"huge stm locks", func(c *machine.Config) { c.Fallback.Locks = 1 << 20 }},
		{"negative elide budget", func(c *machine.Config) { c.Fallback.Budget = -2 }},
		{"bad fallback kind", func(c *machine.Config) { c.Fallback.Kind = machine.FallbackKind(9) }},
		{"bad backoff kind", func(c *machine.Config) { c.Backoff.Kind = machine.BackoffKind(7) }},
		{"bad cm kind", func(c *machine.Config) { c.CM.Kind = htm.CMKind(5) }},
		{"cm spec frac out of range", func(c *machine.Config) { c.CM.Kind = htm.CMAdaptive; c.CM.SpecFrac = 1.5 }},
		{"cm window too wide", func(c *machine.Config) { c.CM.Kind = htm.CMAdaptive; c.CM.Window = 65 }},
		{"cm cap below base", func(c *machine.Config) { c.CM.Kind = htm.CMAdaptive; c.CM.WaitBase = 100; c.CM.WaitCap = 10 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}

// ---------- fallback paths under load and faults ----------

// contendedPolicy builds a CHATS policy with a tiny retry budget so
// most blocks of a contended workload reach the fallback path.
func contendedPolicy() htm.Policy {
	return core.NewCHATSWith(htm.Traits{Retries: 1})
}

// runCounterFallback runs the maximal-contention counter workload on
// every core with the given fallback path and optional fault plan,
// with the invariant checker attached, and returns the stats.
func runCounterFallback(t *testing.T, fb string, plan string) machine.RunStats {
	t.Helper()
	cfg := testutil.Config()
	cfg.Cores = 8
	var err error
	cfg.Fallback, err = machine.ParseFallback(fb)
	if err != nil {
		t.Fatal(err)
	}
	if plan != "" {
		p, err := faults.Parse(plan)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = &p
	}
	m := testutil.Machine(t, cfg, contendedPolicy())
	w := &testutil.Counter{Iters: 25}
	st, err := m.Run(w)
	if err != nil {
		t.Fatalf("fallback=%s faults=%q: %v", fb, plan, err)
	}
	blocks := uint64(8 * 25)
	if st.Commits+st.Fallbacks != blocks {
		t.Errorf("fallback=%s: commits %d + fallbacks %d != blocks %d",
			fb, st.Commits, st.Fallbacks, blocks)
	}
	return st
}

func TestFallbackPathsCounter(t *testing.T) {
	for _, fb := range []string{"lock", "stm", "elide:budget=2"} {
		fb := fb
		t.Run(fb, func(t *testing.T) {
			st := runCounterFallback(t, fb, "")
			if st.Fallbacks == 0 {
				t.Errorf("%s: no fallbacks on a contended counter with Retries=1", fb)
			}
			switch {
			case fb == "stm" && st.FallbackSTMCommits == 0:
				t.Errorf("stm: no optimistic STM commits (fallbacks=%d)", st.Fallbacks)
			case fb != "stm" && st.FallbackSTMCommits != 0:
				t.Errorf("%s: unexpected STM commits %d", fb, st.FallbackSTMCommits)
			}
			if fb == "elide:budget=2" && st.FallbackElideExtends == 0 {
				t.Error("elide: budget never spent on a contended counter")
			}
			if st.Fallbacks > 0 && st.FallbackBodyCycles == 0 {
				t.Errorf("%s: fallbacks happened but FallbackBodyCycles is zero", fb)
			}
		})
	}
}

// The lockburst fault stalls the global-lock holder inside the critical
// section; every fallback path must survive it with the workload and
// accounting intact (satellite: lockburst × fallback coverage).
func TestFallbackPathsLockburst(t *testing.T) {
	const plan = "lockburst:p=0.5,cycles=300"
	for _, fb := range []string{"lock", "stm", "elide"} {
		fb := fb
		t.Run(fb, func(t *testing.T) {
			st := runCounterFallback(t, fb, plan)
			if st.Fallbacks == 0 {
				t.Fatalf("%s: no fallbacks, lockburst never exercised", fb)
			}
			if st.FaultsInjected == 0 {
				t.Errorf("%s: lockburst plan injected nothing", fb)
			}
		})
	}
}

// The STM path must overlap non-conflicting fallback bodies where the
// global lock serializes them. Bank transfers touch distinct accounts
// most of the time, so with every block forced onto the fallback path
// the STM occupancy integral must beat the lock path's.
func TestSTMFallbackOverlapsBank(t *testing.T) {
	run := func(fb string) machine.RunStats {
		cfg := testutil.Config()
		cfg.Cores = 8
		var err error
		cfg.Fallback, err = machine.ParseFallback(fb)
		if err != nil {
			t.Fatal(err)
		}
		m := testutil.Machine(t, cfg, core.NewCHATSWith(htm.Traits{Retries: 0}))
		st, err := m.Run(&testutil.Bank{Accounts: 64, Iters: 30})
		if err != nil {
			t.Fatalf("fallback=%s: %v", fb, err)
		}
		return st
	}
	lock := run("lock")
	stm := run("stm:locks=256")
	lockCC := float64(lock.FallbackBodyCycles) / float64(lock.Cycles)
	stmCC := float64(stm.FallbackBodyCycles) / float64(stm.Cycles)
	if stmCC <= lockCC {
		t.Errorf("stm fallback concurrency %.2f not above lock path %.2f", stmCC, lockCC)
	}
	if lockCC > 1.01 {
		t.Errorf("lock path fallback concurrency %.2f > 1: global lock cannot overlap", lockCC)
	}
}

// ---------- adaptive contention manager ----------

func TestAdaptiveCMDecidesOnCounter(t *testing.T) {
	cfg := testutil.Config()
	cfg.Cores = 8
	var err error
	cfg.CM, err = htm.ParseCM("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	m := testutil.Machine(t, cfg, testutil.Policy(t, core.KindCHATS))
	st, err := m.Run(&testutil.Counter{Iters: 25})
	if err != nil {
		t.Fatal(err)
	}
	if st.CMWaits+st.CMSpecs+st.CMFallbacks == 0 {
		t.Error("adaptive CM made no decisions on a contended counter")
	}
	if st.CMSpecs == 0 {
		t.Error("adaptive CM never speculated")
	}
	blocks := uint64(8 * 25)
	if st.Commits+st.Fallbacks != blocks {
		t.Errorf("commits %d + fallbacks %d != blocks %d", st.Commits, st.Fallbacks, blocks)
	}
}

// A mis-tuned adaptive CM that answers almost every abort with an
// astronomically long wait must trip the livelock watchdog instead of
// spinning to the cycle limit (satellite: watchdog under mis-tuned CM).
func TestAdaptiveCMMisTunedTripsWatchdog(t *testing.T) {
	cfg := testutil.Config()
	cfg.Cores = 8
	cfg.WatchdogCycles = 200_000
	cfg.CM = htm.CMConfig{
		Kind:          htm.CMAdaptive,
		Window:        1,       // one abort -> 100% abort rate -> wait
		WaitBase:      1 << 30, // ... for ~2^30 cycles
		WaitCap:       1 << 31,
		FallbackAfter: 1 << 30, // never rescue via fallback
	}
	m := testutil.Machine(t, cfg, testutil.Policy(t, core.KindCHATS))
	_, err := m.Run(&testutil.Counter{Iters: 25})
	var ll *machine.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want *LivelockError", err)
	}
	if ll.Core >= 0 {
		t.Errorf("got starvation diagnosis for core %d, want whole-machine livelock", ll.Core)
	}
}

// A mis-tuned adaptive CM that always speculates (and never falls
// back) must trip the per-block starvation budget, naming the core.
func TestAdaptiveCMStarvationTripsMaxAttempts(t *testing.T) {
	cfg := testutil.Config()
	cfg.Cores = 8
	cfg.MaxAttempts = 40
	cfg.CM = htm.CMConfig{
		Kind:          htm.CMAdaptive,
		SpecFrac:      1,       // retry immediately forever
		FallbackAfter: 1 << 30, // never rescue via fallback
	}
	m := testutil.Machine(t, cfg, testutil.Policy(t, core.KindCHATS))
	_, err := m.Run(&testutil.Counter{Iters: 50})
	var ll *machine.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want *LivelockError", err)
	}
	if ll.Core < 0 {
		t.Error("got whole-machine livelock, want a starvation diagnosis naming a core")
	}
	if ll.Attempt <= cfg.MaxAttempts {
		t.Errorf("starved at attempt %d, budget %d", ll.Attempt, cfg.MaxAttempts)
	}
}

// ---------- determinism ----------

// The new fallback paths and backoff variants are thread-side code over
// the ordinary rendezvous, so runs must stay bit-identical at any
// intra-run worker count.
func TestFallbackIntraDeterminism(t *testing.T) {
	configs := []struct {
		name string
		fb   string
		bo   string
	}{
		{"stm", "stm", "exp"},
		{"elide", "elide:budget=2", "exp"},
		{"lock-linear", "lock", "linear:cap=4096"},
		{"stm-jitter", "stm:locks=32", "jitter"},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) machine.RunStats {
				cfg := testutil.Config()
				cfg.Cores = 8
				cfg.IntraWorkers = workers
				var err error
				if cfg.Fallback, err = machine.ParseFallback(tc.fb); err != nil {
					t.Fatal(err)
				}
				if cfg.Backoff, err = machine.ParseBackoff(tc.bo); err != nil {
					t.Fatal(err)
				}
				m := testutil.Machine(t, cfg, contendedPolicy())
				st, err := m.Run(&testutil.Bank{Accounts: 32, Iters: 20})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := m.IntraWorkers(); got != workers {
					t.Fatalf("run used %d workers, configured %d", got, workers)
				}
				return st
			}
			ref := run(1)
			for _, workers := range []int{2, 8} {
				if st := run(workers); st != ref {
					t.Errorf("IntraWorkers=%d stats diverged:\nserial:   %+v\nparallel: %+v",
						workers, ref, st)
				}
			}
		})
	}
}
