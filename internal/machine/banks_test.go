package machine

import (
	"fmt"
	"testing"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

// pinnedWL is counterWL with the counter placed on a line owned by a
// chosen directory bank: every thread hammers one word, so the whole
// coherence storm — forwards, chains, invalidations — lands on that
// bank.
type pinnedWL struct {
	iters   int
	bank    int
	banks   int
	threads int
	addr    mem.Addr
}

func (w *pinnedWL) Name() string { return "pinned-counter" }
func (w *pinnedWL) Setup(wd *World, threads int) {
	w.threads = threads
	w.addr = wd.Alloc.LineAligned(1)
	for coherence.BankOf(w.addr.Line(), w.banks) != w.bank {
		w.addr = wd.Alloc.LineAligned(1)
	}
	wd.Mem.WriteWord(w.addr, 0)
}
func (w *pinnedWL) Thread(ctx Ctx, tid int) {
	for i := 0; i < w.iters; i++ {
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(w.addr)
			tx.Store(w.addr, v+1)
			// Keep the line in the write set for a while: probes that
			// land in this window are forwardable, so chains build up.
			tx.Work(40)
		})
		ctx.Work(5)
	}
}
func (w *pinnedWL) Check(wd *World) error {
	got := wd.Mem.ReadWord(w.addr)
	want := uint64(w.threads * w.iters)
	if got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// TestHotLinePinnedBankSaturation drives 64 cores into one line pinned
// to bank 3 of a 4-bank directory: deep CHATS chains push the 5-bit PiC
// toward its ceiling, the counter must still be exact, the storm must
// be accounted to the pinned bank, and the run must be bit-identical to
// the single-bank directory.
func TestHotLinePinnedBankSaturation(t *testing.T) {
	run := func(banks int) (RunStats, []DirBankLoad) {
		policy, err := core.New(core.KindCHATS)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		cfg.Cores = 64
		cfg.DirBanks = banks
		m, err := New(cfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		// The workload pins by the real bank geometry, never by the
		// machine under test, so both runs hammer the same address.
		w := &pinnedWL{iters: 6, bank: 3, banks: 4}
		st, err := m.Run(w)
		if err != nil {
			t.Fatalf("banks=%d: %v", banks, err)
		}
		if err := w.Check(m.World()); err != nil {
			t.Fatalf("banks=%d: %v", banks, err)
		}
		return st, m.DirBankLoads()
	}

	st4, loads := run(4)
	if done := st4.Commits + st4.Fallbacks; done != 64*6 {
		t.Fatalf("commits+fallbacks = %d, want %d", done, 64*6)
	}
	if st4.Aborts == 0 {
		t.Fatal("64 cores on one line should abort at least once")
	}
	if len(loads) != 4 {
		t.Fatalf("got %d bank loads", len(loads))
	}
	var total, hot uint64
	for _, l := range loads {
		total += l.Requests
		if l.Bank == 3 {
			hot = l.Requests
		}
	}
	if hot*2 < total {
		t.Fatalf("pinned bank served %d of %d directory requests: storm not concentrated", hot, total)
	}

	st1, _ := run(1)
	if st1 != st4 {
		t.Fatalf("bank count changed the run:\nbanks=1: %+v\nbanks=4: %+v", st1, st4)
	}
}

// picWatcher records every PiC the coherence layer hands out on the
// forward and consume edges.
type picWatcher struct {
	max      coherence.PiC
	forwards int
	invalid  int
}

func (w *picWatcher) TxBegin(uint64, int, int, bool)      {}
func (w *picWatcher) TxCommit(uint64, int, int)           {}
func (w *picWatcher) TxAbort(uint64, int, htm.AbortCause) {}
func (w *picWatcher) Forward(_ uint64, _, _ int, _ mem.Addr, pic coherence.PiC) {
	w.forwards++
	w.note(pic)
}
func (w *picWatcher) Consume(_ uint64, _ int, _ mem.Addr, pic coherence.PiC) { w.note(pic) }
func (w *picWatcher) Validate(uint64, int, mem.Addr, bool)                   {}
func (w *picWatcher) Fallback(uint64, int)                                   {}
func (w *picWatcher) note(pic coherence.PiC) {
	if !pic.Valid() {
		w.invalid++
	}
	if pic > w.max {
		w.max = pic
	}
}

// TestPiCStaysEncodableOnPinnedLine checks the 5-bit ceiling end to
// end: 64 contenders — more than the PiCMax+1 encodable chain
// positions — hammer a line pinned to bank 3, and every PiC the
// directory forwards or a consumer accepts must stay in the valid
// 0..PiCMax range. Saturation has to resolve by aborting (requester
// wins), never by minting an out-of-range position.
func TestPiCStaysEncodableOnPinnedLine(t *testing.T) {
	policy, err := core.New(core.KindCHATS)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.Cores = 64
	cfg.DirBanks = 4
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	watch := &picWatcher{}
	m.SetTracer(watch)
	w := &pinnedWL{iters: 10, bank: 3, banks: 4}
	st, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Check(m.World()); err != nil {
		t.Fatal(err)
	}
	if watch.forwards == 0 {
		t.Fatal("no spec forwards: the hot line never chained")
	}
	if watch.invalid != 0 {
		t.Fatalf("%d out-of-range PiCs escaped the directory (max %d)", watch.invalid, watch.max)
	}
	if watch.max > coherence.PiCMax {
		t.Fatalf("PiC reached %d, past the 5-bit ceiling %d", watch.max, coherence.PiCMax)
	}
	if st.Aborts == 0 {
		t.Fatal("64-way contention should abort at least once")
	}
}
