package machine

import (
	"errors"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/mem"
)

// starveWL wedges thread 0 in an endless retry loop: a non-transactional
// writer keeps invalidating its read set mid-transaction, and the policy
// under test never falls back. Only the watchdog can end the run.
type starveWL struct {
	target mem.Addr
}

func (w *starveWL) Name() string { return "starve" }
func (w *starveWL) Setup(wd *World, threads int) {
	w.target = wd.Alloc.LineAligned(1)
}
func (w *starveWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0:
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(w.target)
			tx.Work(400) // wide window for the killer
			tx.Store(w.target, v+1)
		})
	case 1:
		for i := 0; i < 5000; i++ {
			ctx.Store(w.target, 0)
			ctx.Work(150)
		}
	}
}
func (w *starveWL) Check(wd *World) error { return nil }

// A transaction that can never win must trip the per-block attempt bound
// with a starvation LivelockError naming the core and carrying a usable
// diagnostic dump.
func TestWatchdogCatchesStarvation(t *testing.T) {
	// Retries high enough that the policy itself never falls back; the
	// watchdog must be what ends the run.
	policy := core.NewBaselineWith(htm.Traits{Retries: 1 << 30})
	cfg := testCfg()
	cfg.Cores = 2
	cfg.MaxAttempts = 15
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(&starveWL{})
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want *LivelockError", err)
	}
	if ll.Core != 0 {
		t.Fatalf("starving core = %d, want 0", ll.Core)
	}
	if ll.Attempt != cfg.MaxAttempts+1 {
		t.Fatalf("attempt = %d, want %d", ll.Attempt, cfg.MaxAttempts+1)
	}
	for _, want := range []string{"attempt 16 of one atomic block", "state at cycle", "core 0", "last"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dump lacks %q:\n%s", want, err.Error())
		}
	}
}

// With every transactional directory request force-nacked and a policy
// that never falls back, the machine makes no global progress at all;
// the cycle-window watchdog must kill the run with a diagnostic dump
// instead of spinning to the cycle limit.
func TestWatchdogCatchesLivelock(t *testing.T) {
	policy := core.NewBaselineWith(htm.Traits{Retries: 1 << 30})
	cfg := testCfg()
	cfg.Cores = 4
	cfg.CycleLimit = 2_000_000_000 // far beyond the watchdog window
	cfg.WatchdogCycles = 300_000
	cfg.Faults = &faults.Plan{Nack: 1} // nack every transactional request
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(&counterWL{iters: 10})
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("err = %v, want *LivelockError", err)
	}
	if ll.Core != -1 {
		t.Fatalf("window livelock should report Core=-1, got %d", ll.Core)
	}
	if ll.Window != cfg.WatchdogCycles {
		t.Fatalf("window = %d, want %d", ll.Window, cfg.WatchdogCycles)
	}
	// The run must die shortly after one quiet window, not at CycleLimit.
	if ll.Cycle > 10*cfg.WatchdogCycles {
		t.Fatalf("watchdog fired too late: cycle %d", ll.Cycle)
	}
	for _, want := range []string{"no commit or fallback", "state at cycle", "events pending", "last"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("dump lacks %q:\n%s", want, err.Error())
		}
	}
}

// A healthy run with the watchdog armed must be unaffected: same stats
// as the unwatched run, no spurious kill.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	plain := runWL(t, core.KindCHATS, &counterWL{iters: 30}, testCfg())
	cfg := testCfg()
	cfg.WatchdogCycles = 100_000
	cfg.MaxAttempts = 1_000_000
	watched := runWL(t, core.KindCHATS, &counterWL{iters: 30}, cfg)
	if plain != watched {
		t.Fatalf("watchdog perturbed the run:\nplain   %+v\nwatched %+v", plain, watched)
	}
}
