// Package machine assembles the full simulated multicore: cores with
// private L1s and HTM state, the MESI directory, the crossbar network,
// the PowerTM token runtime and the software fallback lock — and runs
// transactional workloads on it with a deterministic thread runner.
package machine

import (
	"fmt"
	"strings"

	"chats/internal/coherence"
	"chats/internal/faults"
	"chats/internal/htm"
)

// Config carries the Table I system parameters plus the simulator knobs
// that gem5 would take on its command line.
type Config struct {
	// Cores is the number of simulated cores/threads (Table I: 16).
	Cores int

	// L1Size and L1Ways describe the private L1 data cache
	// (Table I: 48 KiB, 12-way).
	L1Size int
	L1Ways int

	// L1Latency is the L1 hit latency in cycles (Table I: 1).
	L1Latency uint64
	// L2Latency is the private L2 lookup charged on every L1 miss
	// (Table I: 4-cycle minimum roundtrip).
	L2Latency uint64
	// LLCLatency is the shared L3/directory access latency
	// (Table I: 30-cycle minimum roundtrip, minus the network legs).
	LLCLatency uint64
	// DRAMLatency is charged on first touch of a line.
	DRAMLatency uint64
	// LinkLatency is the per-hop crossbar latency (Table I: 1 cycle).
	LinkLatency uint64

	// BeginLatency/CommitLatency/AbortLatency are the fixed costs of the
	// HTM primitives (xbegin/xend/rollback).
	BeginLatency  uint64
	CommitLatency uint64
	AbortLatency  uint64

	// BackoffBase scales the randomized retry backoff after an abort.
	BackoffBase uint64

	// Backoff selects the randomized backoff variant (exponential,
	// capped-linear, full-jitter) applied on top of BackoffBase. The
	// zero value is the historical exponential formula, bit-identical
	// to before the knob existed.
	Backoff BackoffConfig

	// Fallback selects the software fallback path taken when a thread
	// gives up on hardware speculation: the global lock (zero-value
	// default), the word-granular STM path, or lock elision with
	// per-core retry budgets.
	Fallback FallbackConfig

	// CM selects the contention manager making the post-abort
	// speculate/wait/fallback decision. The zero value is the fixed
	// manager (wait with backoff, fall back past the policy's retry
	// budget); the adaptive manager decides online per core and per
	// hot line, and forces the serial engine like tracers do.
	CM htm.CMConfig

	// NackRetryDelay is the requester-stall retry period; NackRetryLimit
	// bounds retries before the transaction gives up (escape from
	// pathological stalls).
	NackRetryDelay uint64
	NackRetryLimit int

	// VSBRetryDelay/VSBRetryLimit govern re-requesting a line whose
	// SpecResp arrived while the VSB was full.
	VSBRetryDelay uint64
	VSBRetryLimit int

	// PowerAttemptLimit is how many times a power transaction retries
	// before falling back to the global lock.
	PowerAttemptLimit int

	// CycleLimit aborts the simulation if the clock passes it (live-lock
	// backstop); 0 means unlimited.
	CycleLimit uint64

	// Seed drives every pseudo-random choice in the run.
	Seed uint64

	// Faults, when non-nil, enables deterministic fault injection per the
	// plan (see package faults). The injector draws from its own PRNG
	// seeded from Seed, so a faulted run stays bit-reproducible.
	Faults *faults.Plan

	// WatchdogCycles, when non-zero, arms the livelock watchdog: if no
	// transaction commits and no fallback section starts for this many
	// cycles while threads are still running, the run is killed with a
	// LivelockError carrying a diagnostic dump instead of spinning to the
	// cycle limit.
	WatchdogCycles uint64

	// MaxAttempts, when non-zero, bounds the attempts of a single atomic
	// block; a transaction beginning attempt MaxAttempts+1 trips the
	// watchdog with a starvation diagnostic. Zero means unlimited.
	MaxAttempts int

	// IntraWorkers selects the simulation engine's intra-run parallelism:
	// same-cycle events of distinct cores execute concurrently on this
	// many goroutines, with results bit-identical to the serial engine.
	// 0 or 1 means the serial engine (the zero-overhead default). Runs
	// that need global observation or control — tracers, the event ring
	// (watchdog/starvation diagnostics), fault injection, PowerTM — are
	// forced serial regardless.
	IntraWorkers int

	// DirBanks is the number of address-interleaved directory banks
	// (power of two in 1..coherence.MaxBanks; 0 means 1). Each bank owns
	// its lines' MESI state, blocking queues and in-flight flows, and
	// gets its own scheduling domain, so directory actions for distinct
	// banks execute in parallel under IntraWorkers instead of
	// serializing. Results are bit-identical at any bank count.
	DirBanks int
}

// DefaultConfig returns the Table I machine.
func DefaultConfig() Config {
	return Config{
		Cores:             16,
		L1Size:            48 * 1024,
		L1Ways:            12,
		L1Latency:         1,
		L2Latency:         4,
		LLCLatency:        24,
		DRAMLatency:       120,
		LinkLatency:       1,
		BeginLatency:      5,
		CommitLatency:     5,
		AbortLatency:      20,
		BackoffBase:       32,
		NackRetryDelay:    20,
		NackRetryLimit:    512,
		VSBRetryDelay:     50,
		VSBRetryLimit:     16,
		PowerAttemptLimit: 8,
		CycleLimit:        400_000_000,
		Seed:              1,
	}
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > coherence.MaxCores {
		return fmt.Errorf("machine: cores must be in 1..%d, got %d", coherence.MaxCores, c.Cores)
	}
	if b := c.DirBanks; b != 0 && (b < 0 || b > coherence.MaxBanks || b&(b-1) != 0) {
		return fmt.Errorf("machine: DirBanks must be a power of two in 1..%d, got %d", coherence.MaxBanks, b)
	}
	if c.L1Size <= 0 || c.L1Ways <= 0 {
		return fmt.Errorf("machine: bad L1 geometry %d/%d", c.L1Size, c.L1Ways)
	}
	if c.NackRetryLimit <= 0 || c.VSBRetryLimit <= 0 || c.PowerAttemptLimit <= 0 {
		return fmt.Errorf("machine: retry limits must be positive")
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("machine: MaxAttempts must be non-negative, got %d", c.MaxAttempts)
	}
	if c.IntraWorkers < 0 {
		return fmt.Errorf("machine: IntraWorkers must be non-negative, got %d", c.IntraWorkers)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if err := c.Backoff.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := c.Fallback.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if err := c.CM.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	return nil
}

// KnobsKey renders the non-default fallback/CM/backoff knobs as a
// short spec fragment for record keys and cell labels; empty for a
// default config, so existing keys are unchanged.
func (c Config) KnobsKey() string {
	var parts []string
	if c.Fallback.Kind != FallbackLock || c.Fallback != (FallbackConfig{}) {
		parts = append(parts, "fb="+c.Fallback.String())
	}
	if c.CM.Kind != htm.CMFixed {
		parts = append(parts, "cm="+c.CM.String())
	}
	if c.Backoff != (BackoffConfig{}) {
		parts = append(parts, "bo="+c.Backoff.String())
	}
	if c.DirBanks > 1 {
		parts = append(parts, fmt.Sprintf("db=%d", c.DirBanks))
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, " ")
}
