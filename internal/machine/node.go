package machine

import (
	"chats/internal/cache"
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// Completion interfaces for the node's asynchronous operations. The
// runner's thread contexts and the begin state machine implement them;
// using interfaces instead of func values keeps the request path free of
// per-operation closure allocations (interface values over pooled
// structs don't allocate).
type (
	loadDone  interface{ onLoadDone(v uint64, aborted bool) }
	storeDone interface{ onStoreDone(aborted bool) }
	casDone   interface {
		onCASDone(prev uint64, swapped bool)
	}
	beginDone  interface{ onBeginDone(ok bool) }
	commitDone interface{ onCommitDone(committed bool) }
)

// pendingWB is a writeback in flight; a probe served from it cancels the
// in-flight message. It is its own delivery event payload.
type pendingWB struct {
	n         *Node
	tag       mem.Addr
	data      mem.Line
	cancelled bool
}

// Run delivers the writeback at the directory.
func (wb *pendingWB) Run() {
	n, tag := wb.n, wb.tag
	if n.wbPending[tag] == wb {
		delete(n.wbPending, tag)
	}
	n.m.dir.WriteBack(tag, wb.data, n.id, &wb.cancelled)
	// The delivery message runs exactly once per writeback and is
	// the last reference (probe service and reinstall both remove
	// the entry from wbPending but copy the data out), so this is
	// the one safe recycling point.
	n.freeWB(wb)
}

// Node is one core: private L1, HTM state, the VSB validation controller
// and the probe handler. All methods run at engine time; completion
// callbacks are invoked at engine time too. Under intra-run parallelism
// the node's core-side events (demand accesses, thread timers, commit
// replies, and now inbound deliveries: responses via RespSlot and
// probes) run in the node's own domain, while directory-side events
// (requests, unblocks, writeback data, probe replies returning to their
// flow) run in the owning bank's domain. Node state is therefore only
// ever touched by the node's own domain or by serial events (which run
// alone); the only remaining serial hops are the begin flow (global
// timestamp order) and eviction writebacks (see handleVictim).
type Node struct {
	id     int
	m      *Machine
	l1     *cache.Cache
	tx     *htm.TxState
	policy htm.Policy
	rng    *sim.Rand

	// sched stamps core-side events with the node's domain (1 + core id);
	// ep is the node's private network endpoint with its own flit/message
	// counters. stats is the node's RunStats shard: counters incremented
	// from node-domain or serial events land here and are folded into the
	// machine totals by collectStats.
	sched sim.Sched
	ep    network.Endpoint
	stats RunStats

	wbPending map[mem.Addr]*pendingWB
	// wbFree recycles pendingWB objects once their delivery message has
	// run; dirty evictions are frequent enough in the capacity-bound
	// workloads that the per-eviction allocation showed up in profiles.
	wbFree []*pendingWB

	// Reusable event payloads. The thread rendezvous guarantees at most
	// one demand access, one begin and one commit reply in flight per
	// core, and valInFlight/valTimer guard the validation pair, so a
	// single embedded instance of each replaces the per-stage closures
	// the hot path used to allocate.
	acc     access
	beg     beginOp
	crep    commitReply
	val     valOp
	valTick valTimerOp

	// pendingStore is the line of the in-flight demand GetX, if any — the
	// Rrestrict/W heuristic's "currently in-flight write from the local
	// core" signal (Section VI-D).
	pendingStore    mem.Addr
	hasPendingStore bool

	valTimer    *sim.Event
	valInFlight bool
	commitDone  commitDone

	// validatedThisTx counts VSB entries validated by the current
	// transaction (reported through the tracer at commit).
	validatedThisTx int

	// Fallback-occupancy clock: fbStart is when this core's current
	// fallback section opened (the STM body start, or the lock-path
	// EnterFallback); the close at ExitFallback adds the interval to
	// the FallbackBodyCycles shard. Engine-side only.
	fbStart  uint64
	fbTiming bool
}

func newNode(id int, m *Machine, policy htm.Policy) *Node {
	traits := policy.Traits()
	vsb := traits.VSBSize
	if vsb <= 0 {
		vsb = 1
	}
	n := &Node{
		id:        id,
		m:         m,
		l1:        cache.New(m.cfg.L1Size, m.cfg.L1Ways),
		tx:        htm.NewTxState(vsb),
		policy:    policy,
		rng:       sim.NewRand(m.cfg.Seed*1000003 + uint64(id) + 1),
		wbPending: make(map[mem.Addr]*pendingWB),
	}
	n.sched = m.eng.NewSched(sim.Domain(1 + id))
	n.ep = m.net.NewEndpoint(n.sched)
	n.acc.n = n
	n.beg.n = n
	n.val.n = n
	n.valTick.n = n
	return n
}

func (n *Node) reqInfo(inTx, isValidation bool) coherence.ReqInfo {
	ri := coherence.ReqInfo{ID: n.id, IsTx: inTx && n.tx.InTx(), IsValidation: isValidation}
	if ri.IsTx {
		ri.PiC = n.tx.PiC
		ri.Power = n.tx.Power
		ri.TS = n.tx.TS
	}
	return ri
}

// install puts a line in L1, handling the victim. It returns false when
// the set is full of write-set lines (transactional overflow).
func (n *Node) install(line mem.Addr, st cache.State, data mem.Line, sm, spec bool) bool {
	v, evicted, ok := n.l1.Insert(line, st, data)
	if !ok {
		return false
	}
	e := n.l1.Peek(line)
	e.SM = sm
	e.Spec = spec
	e.Dirty = false
	if evicted {
		n.handleVictim(v)
	}
	return true
}

func (n *Node) handleVictim(v *cache.Victim) {
	if v.SM {
		panic("machine: replacement evicted an SM line")
	}
	if v.State == cache.Modified && v.Dirty {
		wb := n.allocWB()
		wb.tag = v.Tag
		wb.data = v.Data
		n.wbPending[v.Tag] = wb
		// Eviction writebacks stay in the serial domain: while the message
		// is in flight, a probe served from wbPending (core domain) or a
		// reinstall can cancel it, and the delivery must observe that
		// cancellation coherently. Routing the delivery into the bank
		// domain would let it race with the same-cycle core-side cancel;
		// the serial hop closes that window. Evictions are rare enough
		// that this is not a wave-width bottleneck.
		n.ep.SendDataMsg(sim.DomainSerial, wb)
	}
	// Clean lines (E, M-clean, S) drop silently; the directory tolerates
	// it because the memory image holds their committed value.
}

// allocWB takes a writeback-buffer entry from the free list (or the
// heap on first use), reset for a fresh writeback.
func (n *Node) allocWB() *pendingWB {
	if l := len(n.wbFree); l > 0 {
		wb := n.wbFree[l-1]
		n.wbFree[l-1] = nil
		n.wbFree = n.wbFree[:l-1]
		wb.cancelled = false
		return wb
	}
	return &pendingWB{n: n}
}

// freeWB recycles an entry whose delivery message has run.
func (n *Node) freeWB(wb *pendingWB) {
	n.wbFree = append(n.wbFree, wb)
}

// reinstall recovers a line whose writeback is still in flight (a hit in
// the writeback buffer). Returns the entry, or nil if it could not be
// re-inserted (set full of SM lines).
func (n *Node) reinstall(line mem.Addr) *cache.Entry {
	wb, ok := n.wbPending[line]
	if !ok {
		return nil
	}
	wb.cancelled = true
	delete(n.wbPending, line)
	if !n.install(line, cache.Modified, wb.data, false, false) {
		return nil
	}
	e := n.l1.Peek(line)
	e.Dirty = true
	return e
}

// ---------- demand access state machine ----------

// access kinds.
const (
	accLoad uint8 = iota
	accStore
	accCAS
)

// access stages. Each stage is one scheduled event in the original
// closure chain: L1 lookup, L2 traversal, network hop to the directory,
// retry timers, and the lazy-versioning writeback round trip.
const (
	stStart     uint8 = iota // L1 latency charged: run the access
	stIssue                  // L2 latency charged: send the request
	stReq                    // request delivered at the directory
	stNackRetry              // nack retry delay elapsed
	stVSBRetry               // VSB retry delay elapsed
	stWBData                 // lazy-versioning writeback delivered
	stWBAck                  // writeback acknowledged back at the core
)

// access is the node's demand-access (load/store/CAS) flow. The thread
// rendezvous guarantees one in flight per core, so a single embedded
// instance carries the whole chain with zero allocations.
type access struct {
	n    *Node
	kind uint8
	// dom is the domain the core-side stages run in: the node's own
	// domain normally, DomainSerial for the begin flow (whose completion
	// draws the global begin timestamp).
	dom       sim.Domain
	stage     uint8
	a         mem.Addr
	v         uint64 // store value
	old, new  uint64 // CAS operands
	inTx      bool
	epoch     uint64
	nackTries int
	vsbTries  int
	// ri is the request metadata, sampled at send time (stIssue) in the
	// core's own domain: the directory consumes it from a bank domain,
	// where reading live transaction state would race with serial events
	// mutating it (e.g. Commit flipping tx.Status).
	ri coherence.ReqInfo
	// slot is the flow's response mailbox: bound to this access and its
	// domain at issue time, filled at the directory, delivered straight
	// into c.dom so responses execute in the requester's own domain
	// instead of serializing the frame. Its embedded unblock message
	// carries the core→bank Unblock for the same request.
	slot   coherence.RespSlot
	wbData mem.Line // lazy-versioning writeback payload
	ld     loadDone
	sd     storeDone
	cd     casDone
}

// Run advances the access to its next stage.
func (c *access) Run() {
	n := c.n
	switch c.stage {
	case stStart, stNackRetry, stVSBRetry:
		switch c.kind {
		case accLoad:
			n.load1(c)
		case accStore:
			n.store1(c)
		case accCAS:
			n.cas1(c)
		}
	case stIssue:
		c.stage = stReq
		if c.kind == accCAS {
			c.ri = n.reqInfo(false, false)
		} else {
			c.ri = n.reqInfo(c.inTx, false)
		}
		n.ep.SendControlMsg(n.m.dir.BankDomain(c.a.Line()), c)
	case stReq:
		switch c.kind {
		case accLoad:
			n.m.dir.GetS(c.a.Line(), c.ri, &c.slot)
		case accStore:
			n.m.dir.GetX(c.a.Line(), c.ri, &c.slot)
		case accCAS:
			n.m.dir.GetX(c.a.Line(), c.ri, &c.slot)
		}
	case stWBData:
		// Executing in the owning bank's domain: apply the writeback
		// there and let the bank send the ack back into c.dom.
		c.stage = stWBAck
		n.m.dir.WriteBackDataAck(c.a.Line(), c.wbData, c.dom, c)
	case stWBAck:
		if cur := n.l1.Peek(c.a.Line()); cur != nil {
			cur.Dirty = false
		}
		n.store1(c)
	default:
		panic("machine: bad access stage")
	}
}

// HandleResp receives the directory's response.
func (c *access) HandleResp(resp coherence.Resp) {
	n := c.n
	switch c.kind {
	case accLoad:
		n.onLoadResp(c, resp)
	case accStore:
		if c.inTx {
			n.hasPendingStore = false
		}
		n.onStoreResp(c, resp)
	case accCAS:
		n.onCASResp(c, resp)
	}
}

// issueL2 charges the L2 traversal and sends the request to the
// directory over the interconnect. The response mailbox is bound here,
// before the request can leave the core: the directory fills it from a
// bank domain and delivers it back into c.dom.
func (c *access) issueL2() {
	c.stage = stIssue
	c.slot.Bind(c, c.dom)
	c.n.sched.ScheduleRunnerIn(c.dom, c.n.m.cfg.L2Latency, c)
}

// ---------- Load ----------

// Load performs a (transactional or plain) word load; done receives the
// value, or aborted=true if the surrounding transaction died.
func (n *Node) Load(a mem.Addr, inTx bool, done loadDone) {
	c := &n.acc
	c.kind = accLoad
	c.stage = stStart
	c.dom = n.sched.Domain()
	if _, ok := done.(*beginOp); ok {
		// The begin flow's completion draws the machine-wide begin
		// timestamp, so its accesses run serially.
		c.dom = sim.DomainSerial
	}
	c.a = a
	c.inTx = inTx
	c.nackTries = 0
	c.vsbTries = 0
	c.ld = done
	n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.L1Latency, c)
}

func (n *Node) load1(c *access) {
	a, inTx := c.a, c.inTx
	if inTx && !n.tx.InTx() {
		c.ld.onLoadDone(0, true)
		return
	}
	if inTx && n.m.inj != nil && n.m.inj.SpuriousAbort() {
		// Best-effort HTM: a transaction may abort at any access boundary
		// for no architectural reason.
		n.m.countFault(n.id, "spurious")
		n.abortTx(htm.CauseSpurious)
		c.ld.onLoadDone(0, true)
		return
	}
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil {
		if inTx {
			n.tx.AddRead(line)
		}
		c.ld.onLoadDone(e.Data[a.WordIndex()], false)
		return
	}
	c.epoch = n.tx.Epoch
	c.issueL2()
}

func (n *Node) onLoadResp(c *access, resp coherence.Resp) {
	a, inTx := c.a, c.inTx
	done := c.ld
	line := a.Line()
	stale := inTx && n.tx.Epoch != c.epoch
	switch resp.Kind {
	case coherence.RespData:
		st := cache.Shared
		if resp.Excl {
			st = cache.Exclusive
		}
		ok := n.install(line, st, resp.Data, false, false)
		n.m.dir.SendUnblockVia(&n.ep, &c.slot, line)
		if stale {
			done.onLoadDone(0, true)
			return
		}
		if !ok {
			if inTx {
				n.abortTx(htm.CauseCapacity)
				done.onLoadDone(0, true)
				return
			}
			panic("machine: non-transactional install failed")
		}
		if inTx {
			n.tx.AddRead(line)
		}
		done.onLoadDone(resp.Data[a.WordIndex()], false)
	case coherence.RespSpec:
		if !inTx {
			panic("machine: SpecResp delivered to a non-transactional load")
		}
		if stale {
			n.stats.SpecDropStale++
			done.onLoadDone(0, true)
			return
		}
		switch n.consumeSpec(line, resp, c.vsbTries) {
		case specAborted:
			done.onLoadDone(0, true)
		case specRetry:
			c.vsbTries++
			c.stage = stVSBRetry
			n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.VSBRetryDelay, c)
		case specOK:
			n.tx.AddRead(line)
			e := n.l1.Peek(line)
			done.onLoadDone(e.Data[a.WordIndex()], false)
		}
	case coherence.RespNack:
		if stale {
			done.onLoadDone(0, true)
			return
		}
		if inTx && c.nackTries+1 >= n.m.cfg.NackRetryLimit {
			n.abortTx(htm.CauseStall)
			done.onLoadDone(0, true)
			return
		}
		n.stats.NackRetries++
		n.m.emitNackRetry(n.id, line)
		c.nackTries++
		c.stage = stNackRetry
		n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.NackRetryDelay, c)
	}
}

// specOutcome is consumeSpec's verdict on a demand-path SpecResp.
type specOutcome uint8

const (
	specOK      specOutcome = iota // fiction installed; continue the access
	specRetry                      // re-issue the access after VSBRetryDelay
	specAborted                    // the consumer transaction died
)

// consumeSpec handles a demand-path SpecResp: VSB capacity, the policy's
// consumer-side rules, and installation of the fiction line (SM + Spec,
// added to the write set per Section V-A).
func (n *Node) consumeSpec(line mem.Addr, resp coherence.Resp, vsbTries int) specOutcome {
	vsbFull := n.tx.VSB.Full()
	if !vsbFull && n.m.inj != nil && n.m.inj.VSBFull() {
		// Forced capacity pressure: treat the VSB as full for this
		// delivery, exercising the retry/abort path.
		n.m.countFault(n.id, "vsbfull")
		vsbFull = true
	}
	if vsbFull {
		if _, have := n.tx.VSB.Lookup(line); !have {
			n.stats.SpecDropVSB++
			if vsbTries+1 >= n.m.cfg.VSBRetryLimit {
				n.abortTx(htm.CauseCapacity)
				return specAborted
			}
			return specRetry
		}
	}
	out := n.policy.AcceptSpec(n.tx, resp.PiC)
	switch {
	case out.Cause != htm.CauseNone:
		n.stats.SpecDropReject++
		n.abortTx(out.Cause)
		return specAborted
	case out.Retry:
		if vsbTries+1 >= n.m.cfg.VSBRetryLimit {
			n.abortTx(htm.CauseStall)
			return specAborted
		}
		return specRetry
	case out.Accept:
		if !n.tx.VSB.Add(line, resp.Data) {
			panic("machine: VSB add failed after capacity check")
		}
		if !n.install(line, cache.Modified, resp.Data, true, true) {
			n.abortTx(htm.CauseCapacity)
			return specAborted
		}
		n.tx.AddWrite(line)
		n.tx.Consumed = true
		n.stats.SpecRespsConsumed++
		n.m.emitConsume(n.id, line, resp.PiC)
		n.armValidationTimer()
		return specOK
	default:
		panic("machine: empty SpecOutcome")
	}
}

// ---------- Store ----------

// Store performs a (transactional or plain) word store.
func (n *Node) Store(a mem.Addr, v uint64, inTx bool, done storeDone) {
	c := &n.acc
	c.kind = accStore
	c.stage = stStart
	c.dom = n.sched.Domain()
	c.a = a
	c.v = v
	c.inTx = inTx
	c.nackTries = 0
	c.vsbTries = 0
	c.sd = done
	n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.L1Latency, c)
}

func (n *Node) store1(c *access) {
	a, v, inTx := c.a, c.v, c.inTx
	if inTx && !n.tx.InTx() {
		c.sd.onStoreDone(true)
		return
	}
	if inTx && n.m.inj != nil && n.m.inj.SpuriousAbort() {
		n.m.countFault(n.id, "spurious")
		n.abortTx(htm.CauseSpurious)
		c.sd.onStoreDone(true)
		return
	}
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil {
		switch {
		case e.SM:
			// Already in the write set (possibly a spec-received fiction).
			e.Data[a.WordIndex()] = v
			c.sd.onStoreDone(false)
			return
		case e.State == cache.Modified || e.State == cache.Exclusive:
			if inTx {
				if e.Dirty {
					// Lazy versioning: the committed value must reach the
					// LLC before the first speculative write, so a later
					// silent gang-invalidation cannot lose it. The store
					// stalls until the writeback lands — delivered at the
					// owning bank's domain, which acks back into c.dom.
					c.wbData = e.Data
					c.stage = stWBData
					n.ep.SendDataMsg(n.m.dir.BankDomain(line), c)
					return
				}
				e.SM = true
				n.tx.AddWrite(line)
				e.Data[a.WordIndex()] = v
			} else {
				e.State = cache.Modified
				e.Dirty = true
				e.Data[a.WordIndex()] = v
			}
			c.sd.onStoreDone(false)
			return
		}
		// Shared: fall through to the upgrade request.
	}
	c.epoch = n.tx.Epoch
	if inTx {
		n.pendingStore = line
		n.hasPendingStore = true
	}
	c.issueL2()
}

func (n *Node) onStoreResp(c *access, resp coherence.Resp) {
	a, v, inTx := c.a, c.v, c.inTx
	done := c.sd
	line := a.Line()
	stale := inTx && n.tx.Epoch != c.epoch
	switch resp.Kind {
	case coherence.RespData:
		ok := n.install(line, cache.Modified, resp.Data, false, false)
		n.m.dir.SendUnblockVia(&n.ep, &c.slot, line)
		if stale {
			done.onStoreDone(true)
			return
		}
		if !ok {
			if inTx {
				n.abortTx(htm.CauseCapacity)
				done.onStoreDone(true)
				return
			}
			panic("machine: non-transactional install failed")
		}
		e := n.l1.Peek(line)
		if inTx {
			e.SM = true
			n.tx.AddWrite(line)
		} else {
			e.Dirty = true
		}
		e.Data[a.WordIndex()] = v
		done.onStoreDone(false)
	case coherence.RespSpec:
		if !inTx {
			panic("machine: SpecResp delivered to a non-transactional store")
		}
		if stale {
			n.stats.SpecDropStale++
			done.onStoreDone(true)
			return
		}
		switch n.consumeSpec(line, resp, c.vsbTries) {
		case specAborted:
			done.onStoreDone(true)
		case specRetry:
			c.vsbTries++
			c.stage = stVSBRetry
			n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.VSBRetryDelay, c)
		case specOK:
			e := n.l1.Peek(line)
			e.Data[a.WordIndex()] = v
			done.onStoreDone(false)
		}
	case coherence.RespNack:
		if stale {
			done.onStoreDone(true)
			return
		}
		if inTx && c.nackTries+1 >= n.m.cfg.NackRetryLimit {
			n.abortTx(htm.CauseStall)
			done.onStoreDone(true)
			return
		}
		n.stats.NackRetries++
		n.m.emitNackRetry(n.id, line)
		c.nackTries++
		c.stage = stNackRetry
		n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.NackRetryDelay, c)
	}
}

// predicted reports whether the Rrestrict/W heuristic should refuse to
// forward this (read-set) line: the local core has a write for it in
// flight, so a forwarded copy would be invalidated almost immediately.
func (n *Node) predicted(line mem.Addr) bool {
	return n.hasPendingStore && n.pendingStore == line.Line()
}

// ---------- CAS ----------

// CAS performs a non-transactional compare-and-swap (used by the
// fallback lock). done receives the previous value and whether the swap
// happened.
func (n *Node) CAS(a mem.Addr, old, new uint64, done casDone) {
	c := &n.acc
	c.kind = accCAS
	c.stage = stStart
	c.dom = n.sched.Domain()
	c.a = a
	c.old = old
	c.new = new
	c.inTx = false
	c.cd = done
	n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.L1Latency, c)
}

func (n *Node) cas1(c *access) {
	a, old, new := c.a, c.old, c.new
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil && (e.State == cache.Modified || e.State == cache.Exclusive) && !e.SM {
		prev := e.Data[a.WordIndex()]
		if prev == old {
			e.State = cache.Modified
			e.Dirty = true
			e.Data[a.WordIndex()] = new
			c.cd.onCASDone(prev, true)
		} else {
			c.cd.onCASDone(prev, false)
		}
		return
	}
	c.issueL2()
}

func (n *Node) onCASResp(c *access, resp coherence.Resp) {
	a, old, new := c.a, c.old, c.new
	done := c.cd
	line := a.Line()
	switch resp.Kind {
	case coherence.RespData:
		if !n.install(line, cache.Modified, resp.Data, false, false) {
			panic("machine: CAS install failed")
		}
		n.m.dir.SendUnblockVia(&n.ep, &c.slot, line)
		e := n.l1.Peek(line)
		prev := e.Data[a.WordIndex()]
		if prev == old {
			e.Dirty = true
			e.Data[a.WordIndex()] = new
			done.onCASDone(prev, true)
		} else {
			done.onCASDone(prev, false)
		}
	case coherence.RespSpec:
		panic("machine: SpecResp delivered to CAS")
	case coherence.RespNack:
		c.stage = stNackRetry
		n.sched.ScheduleRunnerIn(c.dom, n.m.cfg.NackRetryDelay, c)
	}
}
