package machine

import (
	"chats/internal/cache"
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/sim"
)

// pendingWB is a writeback in flight; a probe served from it cancels the
// in-flight message.
type pendingWB struct {
	data      mem.Line
	cancelled bool
}

// Node is one core: private L1, HTM state, the VSB validation controller
// and the probe handler. All methods run at engine time (single
// goroutine); completion callbacks are invoked at engine time too.
type Node struct {
	id     int
	m      *Machine
	l1     *cache.Cache
	tx     *htm.TxState
	policy htm.Policy
	rng    *sim.Rand

	wbPending map[mem.Addr]*pendingWB
	// wbFree recycles pendingWB objects once their delivery message has
	// run; dirty evictions are frequent enough in the capacity-bound
	// workloads that the per-eviction allocation showed up in profiles.
	wbFree []*pendingWB

	// pendingStore is the line of the in-flight demand GetX, if any — the
	// Rrestrict/W heuristic's "currently in-flight write from the local
	// core" signal (Section VI-D).
	pendingStore    mem.Addr
	hasPendingStore bool

	valTimer    *sim.Event
	valInFlight bool
	commitDone  func(committed bool)

	// validatedThisTx counts VSB entries validated by the current
	// transaction (reported through the tracer at commit).
	validatedThisTx int
}

func newNode(id int, m *Machine, policy htm.Policy) *Node {
	traits := policy.Traits()
	vsb := traits.VSBSize
	if vsb <= 0 {
		vsb = 1
	}
	return &Node{
		id:        id,
		m:         m,
		l1:        cache.New(m.cfg.L1Size, m.cfg.L1Ways),
		tx:        htm.NewTxState(vsb),
		policy:    policy,
		rng:       sim.NewRand(m.cfg.Seed*1000003 + uint64(id) + 1),
		wbPending: make(map[mem.Addr]*pendingWB),
	}
}

func (n *Node) reqInfo(inTx, isValidation bool) coherence.ReqInfo {
	ri := coherence.ReqInfo{ID: n.id, IsTx: inTx && n.tx.InTx(), IsValidation: isValidation}
	if ri.IsTx {
		ri.PiC = n.tx.PiC
		ri.Power = n.tx.Power
		ri.TS = n.tx.TS
	}
	return ri
}

// install puts a line in L1, handling the victim. It returns false when
// the set is full of write-set lines (transactional overflow).
func (n *Node) install(line mem.Addr, st cache.State, data mem.Line, sm, spec bool) bool {
	v, evicted, ok := n.l1.Insert(line, st, data)
	if !ok {
		return false
	}
	e := n.l1.Peek(line)
	e.SM = sm
	e.Spec = spec
	e.Dirty = false
	if evicted {
		n.handleVictim(v)
	}
	return true
}

func (n *Node) handleVictim(v *cache.Victim) {
	if v.SM {
		panic("machine: replacement evicted an SM line")
	}
	if v.State == cache.Modified && v.Dirty {
		wb := n.allocWB()
		wb.data = v.Data
		n.wbPending[v.Tag] = wb
		tag := v.Tag
		n.m.net.SendData(func() {
			if n.wbPending[tag] == wb {
				delete(n.wbPending, tag)
			}
			n.m.dir.WriteBack(tag, wb.data, n.id, &wb.cancelled)
			// The delivery message runs exactly once per writeback and is
			// the last reference (probe service and reinstall both remove
			// the entry from wbPending but copy the data out), so this is
			// the one safe recycling point.
			n.freeWB(wb)
		})
	}
	// Clean lines (E, M-clean, S) drop silently; the directory tolerates
	// it because the memory image holds their committed value.
}

// allocWB takes a writeback-buffer entry from the free list (or the
// heap on first use), reset for a fresh writeback.
func (n *Node) allocWB() *pendingWB {
	if l := len(n.wbFree); l > 0 {
		wb := n.wbFree[l-1]
		n.wbFree[l-1] = nil
		n.wbFree = n.wbFree[:l-1]
		wb.cancelled = false
		return wb
	}
	return &pendingWB{}
}

// freeWB recycles an entry whose delivery message has run.
func (n *Node) freeWB(wb *pendingWB) {
	n.wbFree = append(n.wbFree, wb)
}

// reinstall recovers a line whose writeback is still in flight (a hit in
// the writeback buffer). Returns the entry, or nil if it could not be
// re-inserted (set full of SM lines).
func (n *Node) reinstall(line mem.Addr) *cache.Entry {
	wb, ok := n.wbPending[line]
	if !ok {
		return nil
	}
	wb.cancelled = true
	delete(n.wbPending, line)
	if !n.install(line, cache.Modified, wb.data, false, false) {
		return nil
	}
	e := n.l1.Peek(line)
	e.Dirty = true
	return e
}

// ---------- Load ----------

// Load performs a (transactional or plain) word load; done receives the
// value, or aborted=true if the surrounding transaction died.
func (n *Node) Load(a mem.Addr, inTx bool, done func(val uint64, aborted bool)) {
	n.m.eng.Schedule(n.m.cfg.L1Latency, func() { n.load1(a, inTx, done, 0, 0) })
}

func (n *Node) load1(a mem.Addr, inTx bool, done func(uint64, bool), nackTries, vsbTries int) {
	if inTx && !n.tx.InTx() {
		done(0, true)
		return
	}
	if inTx && n.m.inj != nil && n.m.inj.SpuriousAbort() {
		// Best-effort HTM: a transaction may abort at any access boundary
		// for no architectural reason.
		n.m.countFault(n.id, "spurious")
		n.abortTx(htm.CauseSpurious)
		done(0, true)
		return
	}
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil {
		if inTx {
			n.tx.AddRead(line)
		}
		done(e.Data[a.WordIndex()], false)
		return
	}
	epoch := n.tx.Epoch
	n.m.eng.Schedule(n.m.cfg.L2Latency, func() {
		n.m.net.SendControl(func() {
			n.m.dir.GetS(line, n.reqInfo(inTx, false), func(resp coherence.Resp) {
				n.onLoadResp(a, inTx, epoch, resp, done, nackTries, vsbTries)
			})
		})
	})
}

func (n *Node) onLoadResp(a mem.Addr, inTx bool, epoch uint64, resp coherence.Resp,
	done func(uint64, bool), nackTries, vsbTries int) {
	line := a.Line()
	stale := inTx && n.tx.Epoch != epoch
	switch resp.Kind {
	case coherence.RespData:
		st := cache.Shared
		if resp.Excl {
			st = cache.Exclusive
		}
		ok := n.install(line, st, resp.Data, false, false)
		n.m.net.SendControl(func() { n.m.dir.Unblock(line) })
		if stale {
			done(0, true)
			return
		}
		if !ok {
			if inTx {
				n.abortTx(htm.CauseCapacity)
				done(0, true)
				return
			}
			panic("machine: non-transactional install failed")
		}
		if inTx {
			n.tx.AddRead(line)
		}
		done(resp.Data[a.WordIndex()], false)
	case coherence.RespSpec:
		if !inTx {
			panic("machine: SpecResp delivered to a non-transactional load")
		}
		if stale {
			n.m.stats.SpecDropStale++
			done(0, true)
			return
		}
		n.consumeSpec(line, resp, vsbTries,
			func() { // retry the whole access
				n.m.eng.Schedule(n.m.cfg.VSBRetryDelay, func() {
					n.load1(a, inTx, done, nackTries, vsbTries+1)
				})
			},
			func(aborted bool) {
				if aborted {
					done(0, true)
					return
				}
				n.tx.AddRead(line)
				e := n.l1.Peek(line)
				done(e.Data[a.WordIndex()], false)
			})
	case coherence.RespNack:
		if stale {
			done(0, true)
			return
		}
		if inTx && nackTries+1 >= n.m.cfg.NackRetryLimit {
			n.abortTx(htm.CauseStall)
			done(0, true)
			return
		}
		n.m.stats.NackRetries++
		n.m.emitNackRetry(n.id, line)
		n.m.eng.Schedule(n.m.cfg.NackRetryDelay, func() {
			n.load1(a, inTx, done, nackTries+1, vsbTries)
		})
	}
}

// consumeSpec handles a demand-path SpecResp: VSB capacity, the policy's
// consumer-side rules, and installation of the fiction line (SM + Spec,
// added to the write set per Section V-A). retry re-issues the request;
// cont continues the access (aborted=true when the consumer must die).
func (n *Node) consumeSpec(line mem.Addr, resp coherence.Resp, vsbTries int,
	retry func(), cont func(aborted bool)) {
	vsbFull := n.tx.VSB.Full()
	if !vsbFull && n.m.inj != nil && n.m.inj.VSBFull() {
		// Forced capacity pressure: treat the VSB as full for this
		// delivery, exercising the retry/abort path.
		n.m.countFault(n.id, "vsbfull")
		vsbFull = true
	}
	if vsbFull {
		if _, have := n.tx.VSB.Lookup(line); !have {
			n.m.stats.SpecDropVSB++
			if vsbTries+1 >= n.m.cfg.VSBRetryLimit {
				n.abortTx(htm.CauseCapacity)
				cont(true)
				return
			}
			retry()
			return
		}
	}
	out := n.policy.AcceptSpec(n.tx, resp.PiC)
	switch {
	case out.Cause != htm.CauseNone:
		n.m.stats.SpecDropReject++
		n.abortTx(out.Cause)
		cont(true)
	case out.Retry:
		if vsbTries+1 >= n.m.cfg.VSBRetryLimit {
			n.abortTx(htm.CauseStall)
			cont(true)
			return
		}
		retry()
	case out.Accept:
		if !n.tx.VSB.Add(line, resp.Data) {
			panic("machine: VSB add failed after capacity check")
		}
		if !n.install(line, cache.Modified, resp.Data, true, true) {
			n.abortTx(htm.CauseCapacity)
			cont(true)
			return
		}
		n.tx.AddWrite(line)
		n.tx.Consumed = true
		n.m.stats.SpecRespsConsumed++
		n.m.emitConsume(n.id, line, resp.PiC)
		n.armValidationTimer()
		cont(false)
	default:
		panic("machine: empty SpecOutcome")
	}
}

// ---------- Store ----------

// Store performs a (transactional or plain) word store.
func (n *Node) Store(a mem.Addr, v uint64, inTx bool, done func(aborted bool)) {
	n.m.eng.Schedule(n.m.cfg.L1Latency, func() { n.store1(a, v, inTx, done, 0, 0) })
}

func (n *Node) store1(a mem.Addr, v uint64, inTx bool, done func(bool), nackTries, vsbTries int) {
	if inTx && !n.tx.InTx() {
		done(true)
		return
	}
	if inTx && n.m.inj != nil && n.m.inj.SpuriousAbort() {
		n.m.countFault(n.id, "spurious")
		n.abortTx(htm.CauseSpurious)
		done(true)
		return
	}
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil {
		switch {
		case e.SM:
			// Already in the write set (possibly a spec-received fiction).
			e.Data[a.WordIndex()] = v
			done(false)
			return
		case e.State == cache.Modified || e.State == cache.Exclusive:
			if inTx {
				if e.Dirty {
					// Lazy versioning: the committed value must reach the
					// LLC before the first speculative write, so a later
					// silent gang-invalidation cannot lose it. The store
					// stalls until the writeback lands.
					data := e.Data
					n.m.net.SendData(func() {
						n.m.dir.WriteBackData(line, data)
						n.m.net.SendControl(func() {
							if cur := n.l1.Peek(line); cur != nil {
								cur.Dirty = false
							}
							n.store1(a, v, inTx, done, nackTries, vsbTries)
						})
					})
					return
				}
				e.SM = true
				n.tx.AddWrite(line)
				e.Data[a.WordIndex()] = v
			} else {
				e.State = cache.Modified
				e.Dirty = true
				e.Data[a.WordIndex()] = v
			}
			done(false)
			return
		}
		// Shared: fall through to the upgrade request.
	}
	epoch := n.tx.Epoch
	if inTx {
		n.pendingStore = line
		n.hasPendingStore = true
	}
	n.m.eng.Schedule(n.m.cfg.L2Latency, func() {
		n.m.net.SendControl(func() {
			n.m.dir.GetX(line, n.reqInfo(inTx, false), func(resp coherence.Resp) {
				if inTx {
					n.hasPendingStore = false
				}
				n.onStoreResp(a, v, inTx, epoch, resp, done, nackTries, vsbTries)
			})
		})
	})
}

func (n *Node) onStoreResp(a mem.Addr, v uint64, inTx bool, epoch uint64, resp coherence.Resp,
	done func(bool), nackTries, vsbTries int) {
	line := a.Line()
	stale := inTx && n.tx.Epoch != epoch
	switch resp.Kind {
	case coherence.RespData:
		ok := n.install(line, cache.Modified, resp.Data, false, false)
		n.m.net.SendControl(func() { n.m.dir.Unblock(line) })
		if stale {
			done(true)
			return
		}
		if !ok {
			if inTx {
				n.abortTx(htm.CauseCapacity)
				done(true)
				return
			}
			panic("machine: non-transactional install failed")
		}
		e := n.l1.Peek(line)
		if inTx {
			e.SM = true
			n.tx.AddWrite(line)
		} else {
			e.Dirty = true
		}
		e.Data[a.WordIndex()] = v
		done(false)
	case coherence.RespSpec:
		if !inTx {
			panic("machine: SpecResp delivered to a non-transactional store")
		}
		if stale {
			n.m.stats.SpecDropStale++
			done(true)
			return
		}
		n.consumeSpec(line, resp, vsbTries,
			func() {
				n.m.eng.Schedule(n.m.cfg.VSBRetryDelay, func() {
					n.store1(a, v, inTx, done, nackTries, vsbTries+1)
				})
			},
			func(aborted bool) {
				if aborted {
					done(true)
					return
				}
				e := n.l1.Peek(line)
				e.Data[a.WordIndex()] = v
				done(false)
			})
	case coherence.RespNack:
		if stale {
			done(true)
			return
		}
		if inTx && nackTries+1 >= n.m.cfg.NackRetryLimit {
			n.abortTx(htm.CauseStall)
			done(true)
			return
		}
		n.m.stats.NackRetries++
		n.m.emitNackRetry(n.id, line)
		n.m.eng.Schedule(n.m.cfg.NackRetryDelay, func() {
			n.store1(a, v, inTx, done, nackTries+1, vsbTries)
		})
	}
}

// predicted reports whether the Rrestrict/W heuristic should refuse to
// forward this (read-set) line: the local core has a write for it in
// flight, so a forwarded copy would be invalidated almost immediately.
func (n *Node) predicted(line mem.Addr) bool {
	return n.hasPendingStore && n.pendingStore == line.Line()
}

// CAS performs a non-transactional compare-and-swap (used by the
// fallback lock). done receives the previous value and whether the swap
// happened.
func (n *Node) CAS(a mem.Addr, old, new uint64, done func(prev uint64, swapped bool)) {
	n.m.eng.Schedule(n.m.cfg.L1Latency, func() { n.cas1(a, old, new, done) })
}

func (n *Node) cas1(a mem.Addr, old, new uint64, done func(uint64, bool)) {
	line := a.Line()
	e := n.l1.Lookup(line)
	if e == nil {
		if re := n.reinstall(line); re != nil {
			e = re
		}
	}
	if e != nil && (e.State == cache.Modified || e.State == cache.Exclusive) && !e.SM {
		prev := e.Data[a.WordIndex()]
		if prev == old {
			e.State = cache.Modified
			e.Dirty = true
			e.Data[a.WordIndex()] = new
			done(prev, true)
		} else {
			done(prev, false)
		}
		return
	}
	n.m.eng.Schedule(n.m.cfg.L2Latency, func() {
		n.m.net.SendControl(func() {
			n.m.dir.GetX(line, n.reqInfo(false, false), func(resp coherence.Resp) {
				switch resp.Kind {
				case coherence.RespData:
					if !n.install(line, cache.Modified, resp.Data, false, false) {
						panic("machine: CAS install failed")
					}
					n.m.net.SendControl(func() { n.m.dir.Unblock(line) })
					e := n.l1.Peek(line)
					prev := e.Data[a.WordIndex()]
					if prev == old {
						e.Dirty = true
						e.Data[a.WordIndex()] = new
						done(prev, true)
					} else {
						done(prev, false)
					}
				case coherence.RespSpec:
					panic("machine: SpecResp delivered to CAS")
				case coherence.RespNack:
					n.m.eng.Schedule(n.m.cfg.NackRetryDelay, func() { n.cas1(a, old, new, done) })
				}
			})
		})
	})
}
