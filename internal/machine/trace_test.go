package machine

import (
	"bytes"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

func TestWriterTracerEmitsEvents(t *testing.T) {
	policy, _ := core.New(core.KindCHATS)
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.SetTracer(WriterTracer{W: &buf})
	if _, err := m.Run(&migratoryWL{slots: 4, iters: 20}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"begin attempt=", "commit", "abort cause=", "forward", "consume", "validated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q event; head of trace:\n%.600s", want, out)
		}
	}
}

func TestChainTracerRecordsEdges(t *testing.T) {
	policy, _ := core.New(core.KindCHATS)
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	ct := &ChainTracer{}
	m.SetTracer(ct)
	if _, err := m.Run(&migratoryWL{slots: 4, iters: 20}); err != nil {
		t.Fatal(err)
	}
	if len(ct.Edges) == 0 {
		t.Fatal("no forwarding edges recorded")
	}
	for _, e := range ct.Edges {
		if e.Producer == e.Consumer {
			t.Fatal("self edge recorded")
		}
		if !e.PiC.Valid() && e.PiC != -2 {
			t.Fatalf("edge with invalid PiC: %+v", e)
		}
	}
	if d := ct.MaxChainDepth(); d < 1 {
		t.Fatalf("MaxChainDepth = %d", d)
	}
}

// spinWL reproduces Section III-A's endless-loop hazard: the consumer
// spins on a flag it received speculatively as 0 while the producer has
// already (speculatively) set it to 1 and then overwritten it — wrong
// speculative values must be killed by periodic validation rather than
// spin forever.
type spinWL struct {
	flag mem.Addr
	data mem.Addr
}

func (w *spinWL) Name() string { return "spin" }
func (w *spinWL) Setup(wd *World, threads int) {
	w.flag = wd.Alloc.LineAligned(1)
	w.data = wd.Alloc.LineAligned(1)
}
func (w *spinWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0: // producer: holds flag=1 speculatively, then changes its mind
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.flag, 1)
			tx.Work(2000)
			tx.Store(w.flag, 2) // consumer's forwarded value 1 is now stale
			tx.Work(2000)
		})
	case 1: // consumer: under committed values the flag is never 1 here
		ctx.Work(300)
		ctx.Atomic(func(tx Tx) {
			if tx.Load(w.flag) != 1 {
				return // correct execution: nothing to wait for
			}
			// Only a consumer of the wrong (intermediate) speculative
			// value reaches this loop; periodic validation must kill it.
			for i := 0; tx.Load(w.flag) == 1; i++ {
				tx.Work(25)
				if i > 100_000 {
					panic("spin never broken")
				}
			}
		})
	}
}
func (w *spinWL) Check(wd *World) error { return nil }

func TestPeriodicValidationBreaksEndlessLoop(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &spinWL{}, testCfg())
	if stats.SpecRespsConsumed == 0 {
		t.Skip("no forwarding happened; scenario inconclusive")
	}
	// The consumer's spin can only be broken by an abort (validation
	// mismatch on the stale value) followed by a re-execution that reads
	// the committed value.
	if stats.ByCause[htm.CauseValidation] == 0 && stats.ByCause[htm.CauseCycle] == 0 {
		t.Fatalf("spin was not broken by validation; causes = %v", stats.ByCause)
	}
}
