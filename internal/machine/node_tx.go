package machine

import (
	"chats/internal/cache"
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/sim"
)

// HandleProbe processes a directory probe: normal coherence service when
// there is no conflict, otherwise the system's conflict-resolution
// policy decides between requester-wins, requester-speculates and
// requester-stalls (Section IV-A).
func (n *Node) HandleProbe(p coherence.Probe) {
	line := p.Line
	if wb, ok := n.wbPending[line]; ok {
		// Serve from the writeback buffer; the in-flight WB is withdrawn.
		wb.cancelled = true
		delete(n.wbPending, line)
		p.ReplyDataVia(&n.ep, wb.data)
		return
	}
	e := n.l1.Peek(line)

	conflict := false
	inWS := false
	if n.tx.InTx() {
		inWS = n.tx.Writes(line)
		if p.Kind == coherence.FwdGetS {
			conflict = inWS // read-read is not a conflict
		} else {
			conflict = inWS || n.tx.Reads(line)
		}
	}
	if !conflict {
		n.replyNormal(p, e)
		return
	}

	n.tx.Conflicted = true
	n.stats.ProbeConflicts++
	dec, pic := htm.DecideAbort, coherence.PiCNone
	if p.Req.IsTx && p.Kind != coherence.InvProbe &&
		n.m.cm != nil && n.m.cm.OverrideNack(line) {
		// Adaptive hot-line override, checked before the policy runs so
		// its PiC bookkeeping is never corrupted by a bypassed verdict:
		// on a line with heavy recent abort traffic, stall the requester
		// instead of killing the current owner.
		n.stats.CMHotNacks++
		dec = htm.DecideNack
	} else if p.Req.IsTx {
		pc := htm.ProbeContext{
			Line:           line,
			Kind:           p.Kind,
			Req:            p.Req,
			InWriteSet:     inWS,
			PredictedWrite: !inWS && n.predicted(line),
			Forwardable:    p.Kind != coherence.InvProbe && e != nil,
		}
		dec, pic = n.policy.DecideProbe(n.tx, pc)
	}
	if dec == htm.DecideSpec && !(p.Kind != coherence.InvProbe && e != nil) {
		panic("machine: policy forwarded an unforwardable probe")
	}
	n.m.emitConflict(n.id, p.Req.ID, line, p.Kind, dec)

	switch dec {
	case htm.DecideSpec:
		n.stats.DecSpec++
		n.tx.Forwarded = true
		n.tx.ForwardedTo++
		n.stats.SpecRespsSent++
		n.m.emitForward(n.id, p.Req.ID, line, pic)
		var data mem.Line
		if e != nil {
			data = e.Data
		}
		p.ReplySpecVia(&n.ep, data, pic)
	case htm.DecideNack:
		n.stats.DecNack++
		p.ReplyNackVia(&n.ep)
	case htm.DecideAbort:
		n.stats.DecAbort++
		cause := htm.CauseConflict
		if !p.Req.IsTx && line == n.m.lockLine {
			cause = htm.CauseLock
		}
		if n.m.cm != nil && cause == htm.CauseConflict {
			n.m.cm.NoteLineAbort(line)
		}
		n.abortTx(cause)
		n.replyNormal(p, n.l1.Peek(line)) // SM lines are gone now
	}
}

// replyNormal services a probe with plain MESI behavior.
func (n *Node) replyNormal(p coherence.Probe, e *cache.Entry) {
	if e == nil {
		if p.Kind == coherence.InvProbe {
			p.ReplyDataVia(&n.ep, mem.Line{}) // nothing to invalidate
		} else {
			p.ReplyNoDataVia(&n.ep) // silently dropped; directory serves memory
		}
		return
	}
	if e.SM {
		panic("machine: normal reply would leak speculative data")
	}
	switch p.Kind {
	case coherence.FwdGetS:
		data := e.Data
		e.State = cache.Shared
		e.Dirty = false // the transfer refreshes the memory image
		p.ReplyDataVia(&n.ep, data)
	case coherence.FwdGetX:
		data := e.Data
		n.l1.Invalidate(p.Line)
		p.ReplyDataVia(&n.ep, data)
	case coherence.InvProbe:
		n.l1.Invalidate(p.Line)
		p.ReplyDataVia(&n.ep, mem.Line{})
	}
}

// commitReply delivers a Commit/abort outcome to the waiting thread
// after the commit/abort latency.
type commitReply struct {
	done      commitDone
	committed bool
}

// Run wakes the thread.
func (c *commitReply) Run() {
	d := c.done
	c.done = nil
	d.onCommitDone(c.committed)
}

// scheduleCommitReply arms the node's reply event (in the node's own
// domain: it wakes the waiting thread).
func (n *Node) scheduleCommitReply(delay uint64, done commitDone, committed bool) {
	n.crep.done = done
	n.crep.committed = committed
	n.sched.ScheduleRunner(delay, &n.crep)
}

// abortTx kills the running transaction: stats, gang invalidation of the
// write set, and — if the thread was blocked in commit — its wakeup. The
// thread otherwise discovers the abort at its next operation.
func (n *Node) abortTx(cause htm.AbortCause) {
	if !n.tx.InTx() {
		return
	}
	wasCommitting := n.tx.Status == htm.Committing
	n.stats.Aborts++
	n.stats.ByCause[cause]++
	if n.tx.Conflicted {
		n.stats.ConflictedAborted++
	}
	if n.tx.Forwarded {
		n.stats.ForwarderAborted++
	}
	if n.tx.Consumed {
		n.stats.ConsumerAborted++
	}
	n.tx.MarkAborted(cause)
	n.l1.GangInvalidateSM()
	n.stopValidationTimer()
	n.m.emitAbort(n.id, cause)
	if wasCommitting && n.commitDone != nil {
		done := n.commitDone
		n.commitDone = nil
		n.scheduleCommitReply(n.m.cfg.AbortLatency, done, false)
	}
}

// beginOp is the BeginTx state machine: begin latency, the non-
// transactional lock read (with randomized backoff while the lock is
// held) and the eager transactional lock subscription.
type beginOp struct {
	n       *Node
	attempt int
	power   bool
	phase   uint8
	done    beginDone
}

const (
	bpLockFree  uint8 = iota // outer (non-transactional) lock read completed
	bpSubscribe              // transactional lock subscription completed
)

// Run fires after the begin latency or a backoff wait: (re-)read the
// fallback lock.
func (b *beginOp) Run() { b.n.begin1(b) }

func (b *beginOp) onLoadDone(v uint64, aborted bool) {
	n := b.n
	switch b.phase {
	case bpLockFree:
		if v != 0 {
			n.sched.ScheduleRunnerIn(sim.DomainSerial,
				n.m.cfg.BackoffBase+n.rng.Uint64n(n.m.cfg.BackoffBase), b)
			return
		}
		n.tx.Begin(b.attempt, n.policy.Traits().NaiveBudget)
		n.tx.Power = b.power
		n.tx.TS = n.m.nextTS()
		b.phase = bpSubscribe
		n.Load(n.m.lockAddr, true, b)
	case bpSubscribe:
		if aborted {
			b.done.onBeginDone(false)
			return
		}
		if v != 0 {
			n.abortTx(htm.CauseLock)
			n.tx.Finish()
			b.done.onBeginDone(false)
			return
		}
		n.validatedThisTx = 0
		n.m.emitBegin(n.id, b.attempt, b.power)
		b.done.onBeginDone(true)
	default:
		panic("machine: bad beginOp phase")
	}
}

// BeginTx starts a speculative attempt: it waits for the fallback lock
// to be free, begins, and eagerly subscribes to the lock (reads it into
// the read signature). done(false) means the begin raced with a lock
// acquisition and should simply be retried.
func (n *Node) BeginTx(attempt int, power bool, done beginDone) {
	b := &n.beg
	b.attempt = attempt
	b.power = power
	b.done = done
	// Serial domain: the begin flow draws the machine-wide timestamp.
	n.sched.ScheduleRunnerIn(sim.DomainSerial, n.m.cfg.BeginLatency, b)
}

func (n *Node) begin1(b *beginOp) {
	b.phase = bpLockFree
	n.Load(n.m.lockAddr, false, b)
}

// Commit attempts to commit: the VSB must drain first (validation of all
// speculatively received lines), then the write set atomically becomes
// architectural.
func (n *Node) Commit(done commitDone) {
	if !n.tx.InTx() {
		n.scheduleCommitReply(n.m.cfg.AbortLatency, done, false)
		return
	}
	if !n.tx.VSB.Empty() {
		n.tx.Status = htm.Committing
		n.commitDone = done
		n.kickValidation()
		return
	}
	n.finalizeCommit(done)
}

func (n *Node) finalizeCommit(done commitDone) {
	n.m.emitCommit(n.id, n.validatedThisTx)
	n.l1.CommitSM(nil)
	n.stats.Commits++
	if n.tx.Conflicted {
		n.stats.ConflictedCommitted++
	}
	if n.tx.Forwarded {
		n.stats.ForwarderCommitted++
	}
	if n.tx.Consumed {
		n.stats.ConsumerCommitted++
	}
	if n.tx.Power {
		n.m.releasePower(n.id)
	}
	n.tx.Finish()
	n.stopValidationTimer()
	n.scheduleCommitReply(n.m.cfg.CommitLatency, done, true)
}

// FinishAbort acknowledges a delivered abort: the thread has unwound and
// the state returns to Idle. Returns the recorded cause.
func (n *Node) FinishAbort() htm.AbortCause {
	cause := n.tx.Cause
	if n.tx.Status == htm.Aborted {
		n.tx.Finish()
	}
	return cause
}

// EnterFallback marks the core as executing the software fallback path.
func (n *Node) EnterFallback() {
	n.tx.Status = htm.Fallback
	n.stats.Fallbacks++
	n.m.emitFallback(n.id)
}

// ExitFallback returns the core to Idle.
func (n *Node) ExitFallback() {
	if n.tx.Status != htm.Fallback {
		panic("machine: ExitFallback outside fallback")
	}
	n.tx.Status = htm.Idle
}

// ---------- VSB validation controller (Section IV-B) ----------

// valTimerOp is the periodic validation timer's payload.
type valTimerOp struct{ n *Node }

// Run fires the timer: clear the handle and issue the validation.
func (v *valTimerOp) Run() {
	v.n.valTimer = nil
	v.n.issueValidation()
}

// valOp is one in-flight validation request: the network hop carrying
// the re-issued GetX, and the response handler. valInFlight guarantees a
// single instance suffices.
type valOp struct {
	n     *Node
	ent   htm.VSBEntry
	epoch uint64
	// ri is sampled at issue time, before the hop to the directory: the
	// request may be consumed from a bank domain, where reading live
	// transaction state would race with serial events mutating it.
	ri coherence.ReqInfo
	// slot is the validation lane's response mailbox: bound to the node's
	// domain at issue time, it lets the directory deliver the response
	// (and carry the follow-up Unblock) without a serial-domain hop.
	slot coherence.RespSlot
}

// Run delivers the validation request at the directory (bank domain).
func (v *valOp) Run() {
	n := v.n
	n.m.dir.GetX(v.ent.Line, v.ri, &v.slot)
}

// HandleResp receives the validation response.
func (v *valOp) HandleResp(resp coherence.Resp) {
	v.n.onValidationResp(v.ent, v.epoch, resp)
}

func (n *Node) stopValidationTimer() {
	if n.valTimer != nil {
		n.sched.Cancel(n.valTimer)
		n.valTimer = nil
	}
}

// armValidationTimer schedules the next periodic validation if the VSB
// holds unvalidated data.
func (n *Node) armValidationTimer() {
	if n.valTimer != nil || n.valInFlight || !n.tx.InTx() || n.tx.VSB.Empty() {
		return
	}
	interval := n.policy.Traits().ValidationInterval
	if interval == 0 || n.tx.Status == htm.Committing {
		interval = 1 // back-to-back validation
	}
	n.valTimer = n.sched.ScheduleRunner(interval, &n.valTick)
}

// kickValidation validates immediately (commit is waiting).
func (n *Node) kickValidation() {
	n.stopValidationTimer()
	if !n.valInFlight {
		n.issueValidation()
	}
}

func (n *Node) issueValidation() {
	if n.valInFlight || !n.tx.InTx() || n.tx.VSB.Empty() {
		return
	}
	ent, ok := n.tx.VSB.NextToValidate()
	if !ok {
		return
	}
	n.val.ent = ent
	n.val.epoch = n.tx.Epoch
	n.val.ri = n.reqInfo(true, true)
	n.val.slot.Bind(&n.val, n.sched.Domain())
	n.valInFlight = true
	n.stats.Validations++
	n.ep.SendControlMsg(n.m.dir.BankDomain(ent.Line), &n.val)
}

func (n *Node) onValidationResp(ent htm.VSBEntry, epoch uint64, resp coherence.Resp) {
	n.valInFlight = false
	stale := n.tx.Epoch != epoch
	switch resp.Kind {
	case coherence.RespData:
		n.m.dir.SendUnblockVia(&n.ep, &n.val.slot, ent.Line)
		if stale {
			// Ownership granted to a dead transaction: adopt the line as a
			// plain clean copy so the directory's view stays consistent.
			if n.l1.Peek(ent.Line) == nil {
				n.install(ent.Line, cache.Modified, resp.Data, false, false)
			}
			return
		}
		match := resp.Data == ent.Data
		if match && n.m.inj != nil && n.m.inj.ValFail() {
			// Forced validation failure: the consumed line is treated as
			// stale, driving the policy's mismatch path (an abort — never
			// an unsound commit).
			n.m.countFault(n.id, "valfail")
			match = false
		}
		out, cause := n.policy.ValidationCheck(n.tx, false, resp.PiC, match)
		switch out {
		case htm.ValidationDone:
			n.tx.VSB.Remove(ent.Line)
			n.stats.ValidationsOK++
			n.validatedThisTx++
			n.m.emitValidate(n.id, ent.Line, true)
			if e := n.l1.Peek(ent.Line); e != nil {
				e.Spec = false // the fiction is now real ownership
			}
			if n.tx.VSB.Empty() {
				n.tx.Cons = false
				if n.tx.Status == htm.Committing && n.commitDone != nil {
					done := n.commitDone
					n.commitDone = nil
					n.finalizeCommit(done)
					return
				}
			}
			n.armValidationTimer()
		case htm.ValidationAbort:
			n.abortTx(cause)
		case htm.ValidationPending:
			n.armValidationTimer()
		}
	case coherence.RespSpec:
		if stale {
			return
		}
		match := resp.Data == ent.Data
		if match && n.m.inj != nil && n.m.inj.ValFail() {
			n.m.countFault(n.id, "valfail")
			match = false
		}
		out, cause := n.policy.ValidationCheck(n.tx, true, resp.PiC, match)
		if out == htm.ValidationAbort {
			n.abortTx(cause)
			return
		}
		n.m.emitValidate(n.id, ent.Line, false)
		n.armValidationTimer()
	case coherence.RespNack:
		if stale {
			return
		}
		n.armValidationTimer()
	}
}
