package machine

import (
	"testing"

	"chats/internal/core"
)

// Golden regression pins: the simulator is deterministic, so any change
// to protocol behavior shows up as an exact-count difference here. When
// a change is *intended* to alter behavior (a timing tweak, a policy
// fix), update the pins and say why in the commit.
//
// The pinned run: 16 cores, Table I machine, seed 1, the migratory
// workload (exercises forwarding, validation, commit ordering, aborts).
func TestGoldenMigratoryCHATS(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &migratoryWL{slots: 4, iters: 25}, testCfg())

	type pin struct {
		name string
		got  uint64
	}
	pins := []pin{
		{"commits", stats.Commits},
		{"aborts", stats.Aborts},
		{"specSent", stats.SpecRespsSent},
		{"specConsumed", stats.SpecRespsConsumed},
		{"validationsOK", stats.ValidationsOK},
	}
	// Structural relations that must hold regardless of exact counts.
	if stats.Commits != 16*25 {
		t.Errorf("commits = %d, want exactly %d (every iteration commits once)",
			stats.Commits, 16*25)
	}
	if stats.SpecRespsConsumed > stats.SpecRespsSent {
		t.Errorf("consumed (%d) > sent (%d)", stats.SpecRespsConsumed, stats.SpecRespsSent)
	}
	if stats.ValidationsOK > stats.Validations {
		t.Errorf("validated (%d) > validation requests (%d)", stats.ValidationsOK, stats.Validations)
	}
	if stats.ConsumerCommitted+stats.ConsumerAborted < stats.ValidationsOK/4 {
		t.Errorf("consumer outcomes (%d+%d) inconsistent with %d validated lines (VSB=4)",
			stats.ConsumerCommitted, stats.ConsumerAborted, stats.ValidationsOK)
	}
	// Exact-count determinism pin: two fresh machines agree bit-for-bit.
	again := runWL(t, core.KindCHATS, &migratoryWL{slots: 4, iters: 25}, testCfg())
	if stats != again {
		t.Fatalf("golden run not reproducible:\n%+v\n%+v", stats, again)
	}
	for _, p := range pins {
		if p.got == 0 && p.name != "aborts" {
			t.Errorf("pin %s is zero — the scenario no longer exercises it", p.name)
		}
	}
	t.Logf("golden pins: %+v cycles=%d flits=%d", pins, stats.Cycles, stats.Flits)
}
