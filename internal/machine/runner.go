package machine

import (
	"sync"
	"sync/atomic"

	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/sim"
)

// Ctx is the API a workload thread programs against. All memory methods
// act on simulated memory and advance simulated time; Atomic runs its
// body as a hardware transaction with the configured retry and fallback
// behavior.
type Ctx interface {
	// TID is this thread's id (0-based).
	TID() int
	// Threads is the number of threads in the run.
	Threads() int
	// Rand is this thread's deterministic PRNG.
	Rand() *sim.Rand
	// Atomic executes body atomically: as a hardware transaction with
	// retries, escalating to the power token or the global fallback lock
	// per the system's configuration. The body may run multiple times and
	// must keep mutable state in simulated memory or in per-attempt
	// locals.
	Atomic(body func(tx Tx))
	// Load reads a word non-transactionally.
	Load(a mem.Addr) uint64
	// Store writes a word non-transactionally.
	Store(a mem.Addr, v uint64)
	// Work consumes n cycles of computation.
	Work(n uint64)
}

// Tx is the handle the Atomic body uses. Inside a hardware transaction
// the accesses are speculative; on the fallback path they are plain
// accesses protected by the global lock.
type Tx interface {
	Load(a mem.Addr) uint64
	Store(a mem.Addr, v uint64)
	Work(n uint64)
	TID() int
	Rand() *sim.Rand
	// Fallback reports whether this execution runs on the software
	// fallback path rather than speculatively.
	Fallback() bool
}

// txAbort unwinds the Atomic body when the transaction dies.
type txAbort struct{}

// killedSignal unwinds a thread when the simulation is torn down.
type killedSignal struct{}

type opKind uint8

const (
	opLoad opKind = iota
	opStore
	opCAS
	opWork
	opBegin
	opCommit
	opAbortAck
	opEnterFallback
	opExitFallback
	opAcquirePower
	opReleasePower
	opFallbackBodyStart
)

type opReq struct {
	kind    opKind
	addr    mem.Addr
	val     uint64
	val2    uint64
	inTx    bool
	power   bool
	attempt int
}

type opReply struct {
	val     uint64
	aborted bool
	ok      bool
	swapped bool
	cause   htm.AbortCause
	fatal   bool
}

// tctxTimer is the payload for the thread ops that are pure delays
// (work, abort ack, fallback transitions, power handoff). One per
// thread: the rendezvous guarantees a single pending op.
type tctxTimer struct {
	t     *tctx
	op    opKind
	ok    bool
	cause htm.AbortCause
}

// Run completes the delayed op and wakes the thread.
func (tt *tctxTimer) Run() {
	t := tt.t
	switch tt.op {
	case opWork:
		// A transaction may have died while the work was in progress;
		// report it at completion, like the original deferred check.
		t.finish(opReply{aborted: t.req.inTx && !t.node.tx.InTx()})
	case opAbortAck:
		t.finish(opReply{cause: tt.cause})
	default:
		t.finish(opReply{ok: tt.ok})
	}
}

// tctx is one simulated thread: the goroutine side talks to the engine
// through a strict rendezvous, so exactly one of {engine, some thread}
// runs at any instant and the simulation stays deterministic.
type tctx struct {
	r       *runner
	node    *Node
	tid     int
	rng     *sim.Rand
	reqCh   chan opReq
	replyCh chan opReply

	// engine-side bookkeeping
	pendingOp bool
	done      bool
	req       opReq // the op in flight (valid while pendingOp)
	timer     tctxTimer

	// Fallback-path state (thread-side): the reusable STM descriptor
	// (lazily built on first software fallback) and the elide path's
	// remaining retry budget.
	stm   *stmTx
	elide int
}

// finish completes the pending op: reply to the thread and block for its
// next request.
func (t *tctx) finish(rep opReply) {
	t.pendingOp = false
	t.replyCh <- rep
	t.r.pump(t)
}

// Completion handlers for the node's asynchronous operations; they
// mirror the per-op closures dispatch used to allocate.

func (t *tctx) onLoadDone(v uint64, aborted bool) {
	if !aborted {
		t.r.m.emitOp(t.node.id, OpLoad, t.req.inTx, t.req.addr, v, 0, true)
	}
	t.finish(opReply{val: v, aborted: aborted})
}

func (t *tctx) onStoreDone(aborted bool) {
	if !aborted {
		t.r.m.emitOp(t.node.id, OpStore, t.req.inTx, t.req.addr, t.req.val, 0, true)
	}
	t.finish(opReply{aborted: aborted})
}

func (t *tctx) onCASDone(prev uint64, swapped bool) {
	t.r.m.emitOp(t.node.id, OpCAS, false, t.req.addr, prev, t.req.val2, swapped)
	t.finish(opReply{val: prev, swapped: swapped})
}

func (t *tctx) onBeginDone(ok bool) { t.finish(opReply{ok: ok}) }

func (t *tctx) onCommitDone(committed bool) {
	if committed {
		t.finish(opReply{ok: true})
	} else {
		t.finish(opReply{aborted: true, cause: t.node.FinishAbort()})
	}
}

// wdTick is the livelock watchdog's event payload.
type wdTick struct{ r *runner }

// Run checks for progress since the last tick.
func (w *wdTick) Run() {
	r := w.r
	r.wd = nil
	if r.active.Load() == 0 {
		return
	}
	progress := r.m.progress()
	if progress == r.wdLast {
		r.m.eng.Halt(r.m.livelockError(r.m.cfg.WatchdogCycles))
		return
	}
	r.wdLast = progress
	r.armWatchdog()
}

type runner struct {
	m       *Machine
	threads []*tctx
	// active is decremented from pump, which under intra-run parallelism
	// runs inside node-domain events — hence the atomic.
	active atomic.Int32

	// Livelock watchdog (armed when cfg.WatchdogCycles > 0): wd is the
	// pending tick event, wdLast the Commits+Fallbacks count at the last
	// tick. A tick observing no progress since the previous one halts the
	// run with a diagnostic dump.
	wd     *sim.Event
	wdLast uint64
	tick   wdTick
}

func newRunner(m *Machine) *runner {
	r := &runner{m: m}
	r.tick.r = r
	return r
}

// armWatchdog schedules the next progress check.
func (r *runner) armWatchdog() {
	r.wd = r.m.eng.ScheduleRunner(r.m.cfg.WatchdogCycles, &r.tick)
}

func (r *runner) run(w Workload) error {
	// Build the full thread list before spawning any goroutine: threads
	// call Ctx.Threads() (len(r.threads)) as soon as they start, so the
	// slice must not grow concurrently.
	for i := range r.m.nodes {
		t := &tctx{
			r:       r,
			node:    r.m.nodes[i],
			tid:     i,
			rng:     sim.NewRand(r.m.cfg.Seed*7919 + uint64(i) + 101),
			reqCh:   make(chan opReq),
			replyCh: make(chan opReply),
		}
		t.timer.t = t
		if r.m.cfg.Fallback.Kind == FallbackElide {
			t.elide = r.m.cfg.Fallback.elideBudget()
		}
		r.threads = append(r.threads, t)
	}
	var wg sync.WaitGroup
	for _, t := range r.threads {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(t.reqCh)
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(killedSignal); ok {
						return
					}
					panic(rec)
				}
			}()
			w.Thread(t, t.tid)
		}()
	}
	r.active.Store(int32(len(r.threads)))
	for _, t := range r.threads {
		t := t
		t.node.sched.Schedule(0, func() { r.pump(t) })
	}
	if r.m.cfg.WatchdogCycles > 0 {
		r.wdLast = r.m.progress()
		r.armWatchdog()
	}
	_, err := r.m.eng.Run(r.m.cfg.CycleLimit)
	if err != nil {
		r.kill()
	}
	wg.Wait()
	return err
}

// kill unblocks every remaining thread after a cycle-limit error so the
// goroutines exit cleanly.
func (r *runner) kill() {
	for _, t := range r.threads {
		if t.done {
			continue
		}
		if t.pendingOp {
			t.replyCh <- opReply{fatal: true}
		} else {
			if _, ok := <-t.reqCh; !ok {
				continue
			}
			t.replyCh <- opReply{fatal: true}
		}
		for range t.reqCh { // drain until the deferred close
		}
	}
}

// pump blocks until the thread issues its next operation (or finishes)
// and dispatches it. It runs inside engine events; blocking here is what
// hands the CPU to the thread goroutine.
func (r *runner) pump(t *tctx) {
	req, ok := <-t.reqCh
	if !ok {
		t.done = true
		if r.active.Add(-1) == 0 && r.wd != nil {
			// Keeping the tick pending would hold the event queue open and
			// inflate the Cycles stat past the last real event.
			r.m.eng.Cancel(r.wd)
			r.wd = nil
		}
		return
	}
	r.dispatch(t, req)
}

func (r *runner) dispatch(t *tctx, req opReq) {
	m := r.m
	n := t.node
	t.pendingOp = true
	t.req = req
	switch req.kind {
	case opLoad:
		n.Load(req.addr, req.inTx, t)
	case opStore:
		n.Store(req.addr, req.val, req.inTx, t)
	case opCAS:
		n.CAS(req.addr, req.val, req.val2, t)
	case opWork:
		cycles := req.val
		if cycles == 0 {
			cycles = 1
		}
		t.timer.op = opWork
		n.sched.ScheduleRunner(cycles, &t.timer)
	case opBegin:
		if m.cfg.MaxAttempts > 0 && req.attempt > m.cfg.MaxAttempts {
			// Starvation budget exceeded: halt the engine with the dump.
			// No reply is sent (pendingOp stays set), so the kill() path
			// unwinds this thread once Run returns the error.
			m.eng.Halt(m.starvationError(n.id, req.attempt))
			return
		}
		n.BeginTx(req.attempt, req.power, t)
	case opCommit:
		n.Commit(t)
	case opAbortAck:
		t.timer.op = opAbortAck
		t.timer.cause = n.FinishAbort()
		n.sched.ScheduleRunner(m.cfg.AbortLatency, &t.timer)
	case opEnterFallback:
		n.EnterFallback()
		if !n.fbTiming {
			n.fbTiming = true
			n.fbStart = m.eng.Now()
		}
		delay := uint64(1)
		if m.inj != nil && m.lockBurstArmed() {
			if d := m.inj.LockBurstDelay(); d > 0 {
				// Contention burst: the lock holder stalls inside the
				// critical section, stressing subscribed transactions.
				m.countFault(n.id, "lockburst")
				delay += d
			}
		}
		t.timer.op = opEnterFallback
		t.timer.ok = true
		n.sched.ScheduleRunner(delay, &t.timer)
	case opExitFallback:
		n.ExitFallback()
		if n.fbTiming {
			n.stats.FallbackBodyCycles += m.eng.Now() - n.fbStart
			n.fbTiming = false
		}
		t.timer.op = opExitFallback
		t.timer.ok = true
		n.sched.ScheduleRunner(1, &t.timer)
	case opFallbackBodyStart:
		// The STM path opens its occupancy window at body start, so
		// overlapping software fallbacks measure as concurrency; the
		// lock path opens it at opEnterFallback instead.
		if !n.fbTiming {
			n.fbTiming = true
			n.fbStart = m.eng.Now()
		}
		t.timer.op = opFallbackBodyStart
		t.timer.ok = true
		n.sched.ScheduleRunner(1, &t.timer)
	case opAcquirePower:
		t.timer.op = opAcquirePower
		t.timer.ok = m.tryAcquirePower(n.id)
		n.sched.ScheduleRunner(1, &t.timer)
	case opReleasePower:
		m.releasePower(n.id)
		t.timer.op = opReleasePower
		t.timer.ok = true
		n.sched.ScheduleRunner(1, &t.timer)
	default:
		panic("machine: unknown op")
	}
}

// ---------- thread-side API ----------

func (t *tctx) do(req opReq) opReply {
	t.reqCh <- req
	rep := <-t.replyCh
	if rep.fatal {
		panic(killedSignal{})
	}
	return rep
}

func (t *tctx) TID() int        { return t.tid }
func (t *tctx) Threads() int    { return len(t.r.threads) }
func (t *tctx) Rand() *sim.Rand { return t.rng }

func (t *tctx) Load(a mem.Addr) uint64 {
	return t.do(opReq{kind: opLoad, addr: a}).val
}

func (t *tctx) Store(a mem.Addr, v uint64) {
	t.do(opReq{kind: opStore, addr: a, val: v})
}

func (t *tctx) Work(n uint64) {
	t.do(opReq{kind: opWork, val: n})
}

// maxBackoffDelay caps one backoff wait. Without the cap a huge
// BackoffBase (or base == MaxUint64, where base+1 wraps to zero) would
// overflow the shift/add below into a tiny or bogus delay.
const maxBackoffDelay = 1 << 32

// backoff computes the randomized retry delay after the given number of
// aborts, per the configured backoff variant. Every variant draws
// exactly once from the thread PRNG so the random stream — and with it
// run determinism — is independent of both the clamping and the
// variant. The default (exponential, Cap 0) is bit-identical to the
// historical formula.
func (t *tctx) backoff(aborts int) uint64 {
	shift := aborts
	if shift > 5 {
		shift = 5
	}
	base := t.r.m.cfg.BackoffBase
	if base > maxBackoffDelay {
		base = maxBackoffDelay
	}
	bc := t.r.m.cfg.Backoff
	cap := bc.Cap
	if cap == 0 || cap > maxBackoffDelay {
		cap = maxBackoffDelay
	}
	switch bc.Kind {
	case BackoffLinear:
		n := uint64(aborts)
		if n > 64 {
			n = 64
		}
		d := base * n
		if d > cap {
			d = cap
		}
		return d + t.rng.Uint64n(base+1)
	case BackoffJitter:
		d := base << uint(shift)
		if d > cap {
			d = cap
		}
		return t.rng.Uint64n(d + 1)
	default:
		d := base << uint(shift)
		if d > cap {
			d = cap
		}
		return d + t.rng.Uint64n(base+1)
	}
}

// Atomic implements the retry / power-token / fallback state machine
// of Section VI-D around the hardware transaction. The fixed
// contention manager reproduces the paper's loop exactly (wait with
// randomized backoff after every abort, fall back past the policy's
// retry budget); the adaptive manager replaces the fixed retry budget
// with its online speculate/wait/fallback verdict. Which software path
// the fallback takes — global lock, STM, or elision — is the machine's
// Fallback config.
func (t *tctx) Atomic(body func(tx Tx)) {
	traits := t.node.policy.Traits()
	m := t.r.m
	totalAborts := 0
	contentionAborts := 0
	powerMode := false
	powerAttempts := 0
	attempt := 0
	earlyFallback := false
	for {
		if traits.UsesPower && !powerMode &&
			(contentionAborts >= traits.PowerAfterAborts || totalAborts >= traits.Retries) {
			// Elevate if the token is free; otherwise keep executing
			// normally and try again after the next abort.
			powerMode = t.do(opReq{kind: opAcquirePower}).ok
		}
		useLock := earlyFallback
		if !useLock {
			if powerMode {
				useLock = powerAttempts >= m.cfg.PowerAttemptLimit
			} else if !traits.UsesPower && m.cm == nil {
				useLock = totalAborts > traits.Retries
			}
			if useLock && t.elideExtend() {
				useLock = false // spent elide budget on one more attempt
			}
		}
		if useLock {
			t.runFallback(body)
			if powerMode {
				t.do(opReq{kind: opReleasePower})
			}
			return
		}
		attempt++
		if !t.do(opReq{kind: opBegin, attempt: attempt, power: powerMode}).ok {
			continue // raced with a lock acquisition; just re-begin
		}
		if powerMode {
			powerAttempts++
		}
		committed, cause := t.runSpec(body)
		if committed {
			t.noteCommitBudget()
			return // a power commit released the token engine-side
		}
		if cause != htm.CauseLock {
			totalAborts++
			switch cause {
			case htm.CauseConflict, htm.CauseValidation, htm.CauseCycle, htm.CauseStall:
				contentionAborts++
			}
			act := htm.CMWait
			if m.cm != nil {
				act = m.cm.Decide(t.tid)
			}
			m.emitCMDecision(t.node.id, act)
			switch act {
			case htm.CMSpeculate:
				t.node.stats.CMSpecs++
			case htm.CMFallback:
				t.node.stats.CMFallbacks++
				earlyFallback = true
			default:
				t.node.stats.CMWaits++
				d := t.backoff(totalAborts)
				if m.cm != nil {
					// The adaptive wait draws from the manager's
					// dedicated stream, not the thread PRNG.
					d = m.cm.WaitDelay(t.tid)
				}
				t.do(opReq{kind: opWork, val: d})
			}
		}
	}
}

// runSpec executes the body speculatively once, converting the abort
// panic back into a (committed=false, cause) result.
func (t *tctx) runSpec(body func(Tx)) (committed bool, cause htm.AbortCause) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(txAbort); !ok {
				panic(rec)
			}
			rep := t.do(opReq{kind: opAbortAck})
			committed = false
			cause = rep.cause
		}
	}()
	body(txHandle{t: t})
	rep := t.do(opReq{kind: opCommit})
	if rep.aborted {
		return false, rep.cause
	}
	return true, htm.CauseNone
}

// fallbackLock serializes through the global lock: test-test-and-set
// acquire, non-speculative body, release. Running transactions abort via
// their eager lock subscription when the CAS takes the line.
func (t *tctx) fallbackLock(body func(Tx)) {
	la := t.r.m.lockAddr
	for {
		for t.do(opReq{kind: opLoad, addr: la}).val != 0 {
			t.do(opReq{kind: opWork, val: 64 + t.rng.Uint64n(64)})
		}
		if t.do(opReq{kind: opCAS, addr: la, val: 0, val2: 1}).swapped {
			break
		}
		t.do(opReq{kind: opWork, val: 64 + t.rng.Uint64n(64)})
	}
	t.do(opReq{kind: opEnterFallback})
	body(txHandle{t: t, fallback: true})
	t.do(opReq{kind: opExitFallback})
	t.do(opReq{kind: opStore, addr: la, val: 0})
}

// txHandle implements Tx. With fallback unset the operations are
// transactional and panic on abort; on the fallback path they are plain.
type txHandle struct {
	t        *tctx
	fallback bool
}

func (h txHandle) TID() int        { return h.t.tid }
func (h txHandle) Rand() *sim.Rand { return h.t.rng }
func (h txHandle) Fallback() bool  { return h.fallback }

func (h txHandle) Load(a mem.Addr) uint64 {
	rep := h.t.do(opReq{kind: opLoad, addr: a, inTx: !h.fallback})
	if rep.aborted {
		panic(txAbort{})
	}
	return rep.val
}

func (h txHandle) Store(a mem.Addr, v uint64) {
	rep := h.t.do(opReq{kind: opStore, addr: a, val: v, inTx: !h.fallback})
	if rep.aborted {
		panic(txAbort{})
	}
}

func (h txHandle) Work(n uint64) {
	rep := h.t.do(opReq{kind: opWork, val: n, inTx: !h.fallback})
	if rep.aborted {
		panic(txAbort{})
	}
}
