package machine

import (
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// MultiTracer fans every event out to each attached tracer in order, so a
// WriterTracer, a ChainTracer and a telemetry collector can observe the
// same run simultaneously (SetTracer holds exactly one tracer). It
// implements XTracer; the extended events reach only the members that
// implement XTracer themselves.
type MultiTracer []Tracer

func (ts MultiTracer) TxBegin(cycle uint64, core, attempt int, power bool) {
	for _, t := range ts {
		t.TxBegin(cycle, core, attempt, power)
	}
}

func (ts MultiTracer) TxCommit(cycle uint64, core int, consumed int) {
	for _, t := range ts {
		t.TxCommit(cycle, core, consumed)
	}
}

func (ts MultiTracer) TxAbort(cycle uint64, core int, cause htm.AbortCause) {
	for _, t := range ts {
		t.TxAbort(cycle, core, cause)
	}
}

func (ts MultiTracer) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	for _, t := range ts {
		t.Forward(cycle, producer, requester, line, pic)
	}
}

func (ts MultiTracer) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC) {
	for _, t := range ts {
		t.Consume(cycle, core, line, pic)
	}
}

func (ts MultiTracer) Validate(cycle uint64, core int, line mem.Addr, ok bool) {
	for _, t := range ts {
		t.Validate(cycle, core, line, ok)
	}
}

func (ts MultiTracer) Fallback(cycle uint64, core int) {
	for _, t := range ts {
		t.Fallback(cycle, core)
	}
}

func (ts MultiTracer) Conflict(cycle uint64, holder, requester int, line mem.Addr, kind coherence.ProbeKind, dec htm.ProbeDecision) {
	for _, t := range ts {
		if x, ok := t.(XTracer); ok {
			x.Conflict(cycle, holder, requester, line, kind, dec)
		}
	}
}

func (ts MultiTracer) NackRetry(cycle uint64, core int, line mem.Addr) {
	for _, t := range ts {
		if x, ok := t.(XTracer); ok {
			x.NackRetry(cycle, core, line)
		}
	}
}

func (ts MultiTracer) VSBOccupancy(cycle uint64, core, occ int) {
	for _, t := range ts {
		if x, ok := t.(XTracer); ok {
			x.VSBOccupancy(cycle, core, occ)
		}
	}
}

func (ts MultiTracer) Op(cycle uint64, core int, op OpKind, inTx bool, addr mem.Addr, val, val2 uint64, ok bool) {
	for _, t := range ts {
		if o, k := t.(OpTracer); k {
			o.Op(cycle, core, op, inTx, addr, val, val2, ok)
		}
	}
}

func (ts MultiTracer) FaultInjected(cycle uint64, core int, kind string) {
	for _, t := range ts {
		if f, ok := t.(FaultTracer); ok {
			f.FaultInjected(cycle, core, kind)
		}
	}
}

func (ts MultiTracer) BeginRun(m *Machine) {
	for _, t := range ts {
		if c, ok := t.(RunChecker); ok {
			c.BeginRun(m)
		}
	}
}

// EndRun runs every member checker and returns the first error.
func (ts MultiTracer) EndRun(m *Machine) error {
	var first error
	for _, t := range ts {
		if c, ok := t.(RunChecker); ok {
			if err := c.EndRun(m); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
