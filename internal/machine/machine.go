package machine

import (
	"fmt"

	"chats/internal/cache"
	"chats/internal/coherence"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// World exposes the simulated memory to workload setup and checking code
// (direct access, outside simulated time).
type World struct {
	Mem   *mem.Memory
	Alloc *mem.Allocator
}

// Workload is a transactional program the machine can run: Setup lays
// out data structures in simulated memory, Thread is the per-thread
// body, and Check verifies the final memory state (the simulator flushes
// caches before calling it).
type Workload interface {
	Name() string
	Setup(w *World, threads int)
	Thread(ctx Ctx, tid int)
	Check(w *World) error
}

// Machine is the assembled simulated multicore.
type Machine struct {
	cfg    Config
	policy htm.Policy

	eng    *sim.Engine
	net    *network.Network
	memory *mem.Memory
	dir    *coherence.Directory
	nodes  []*Node
	world  *World

	lockAddr mem.Addr
	lockLine mem.Addr

	powerHolder int
	tsCounter   uint64
	tracer      Tracer
	xtracer     XTracer     // tracer's XTracer view, resolved once at SetTracer
	optracer    OpTracer    // ditto for the op-level stream
	ftracer     FaultTracer // ditto for injected-fault events
	checker     RunChecker  // ditto for the run-lifecycle hooks
	cmtracer    CMTracer    // ditto for contention-manager decisions

	inj  *faults.Injector
	ring *eventRing // recent-event buffer for watchdog diagnostics

	// cm is the adaptive contention manager (nil under the fixed
	// manager). Its shared per-core/per-line state is only safe on the
	// serial engine, which EffectiveIntraWorkers forces.
	cm *htm.AdaptiveCM
	// stmLock is the STM fallback path's version-lock table: one word
	// per entry, each on its own line, hashed by data word address.
	// Allocated only when Fallback.Kind == FallbackSTM so other
	// layouts are byte-identical to before.
	stmLock []mem.Addr

	stats RunStats
}

// New assembles a machine running the given HTM system.
func New(cfg Config, policy htm.Policy) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:         cfg,
		policy:      policy,
		eng:         new(sim.Engine),
		memory:      mem.NewMemory(),
		powerHolder: -1,
	}
	m.net = network.New(m.eng, cfg.LinkLatency)
	// Bank domains sit above the node domains (1..Cores): bank i runs in
	// domain Cores+1+i, so directory actions for distinct banks — and for
	// banks vs. nodes — execute concurrently under the parallel engine.
	m.dir = coherence.NewDirectory(m.eng, m.net, m.memory, coherence.Config{
		LLCLatency:  cfg.LLCLatency,
		DRAMLatency: cfg.DRAMLatency,
		Banks:       cfg.DirBanks,
		FirstDomain: sim.Domain(cfg.Cores + 1),
		CoreDomain:  func(core int) sim.Domain { return sim.Domain(1 + core) },
	})
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		// The injector owns a dedicated PRNG stream: sharing one with the
		// nodes would make the fault schedule depend on unrelated draws.
		m.inj = faults.NewInjector(*cfg.Faults, sim.NewRand(cfg.Seed*2654435761+12345))
		if cfg.Faults.Jitter > 0 {
			m.net.Jitter = func() uint64 {
				d := m.inj.JitterDelay()
				if d > 0 {
					m.countFault(-1, "jitter")
				}
				return d
			}
		}
		if cfg.Faults.Nack > 0 {
			fn := func(req coherence.ReqInfo) bool {
				if m.inj.ForceNack() {
					m.countFault(req.ID, "nack")
					return true
				}
				return false
			}
			if b := cfg.Faults.NackBank; b >= 0 && m.dir.NumBanks() > 1 {
				// The plan names one bank: arm only its seam (modulo the
				// actual bank count, so a plan written for 16 banks still
				// targets a bank on a 4-bank machine).
				m.dir.SetBankForceNack(b%m.dir.NumBanks(), fn)
			} else {
				m.dir.ForceNack = fn
			}
		}
	}
	if cfg.WatchdogCycles > 0 || cfg.MaxAttempts > 0 {
		m.ring = newEventRing(ringCapacity)
	}
	alloc := mem.NewAllocator(0)
	m.lockAddr = alloc.LineAligned(1) // fallback lock on its own line
	m.lockLine = m.lockAddr.Line()
	if cfg.Fallback.Kind == FallbackSTM {
		n := cfg.Fallback.stmLocks()
		m.stmLock = make([]mem.Addr, n)
		for i := range m.stmLock {
			m.stmLock[i] = alloc.LineAligned(1)
		}
	}
	if cfg.CM.Kind != htm.CMFixed {
		// Dedicated PRNG stream, like the fault injector: the adaptive
		// waits must never reshuffle workload or fault draws.
		m.cm = htm.NewAdaptiveCM(cfg.CM, cfg.Cores, sim.NewRand(cfg.Seed*9176156071+77))
	}
	m.world = &World{Mem: m.memory, Alloc: alloc}

	cores := make([]coherence.Core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		n := newNode(i, m, policy)
		m.nodes = append(m.nodes, n)
		cores[i] = n
	}
	m.dir.AttachCores(cores)
	m.stats.System = policy.Name()
	return m, nil
}

// World returns the simulated memory handles for setup and checking.
func (m *Machine) World() *World { return m.world }

// lockBurstArmed reports whether lockburst injection applies to this
// machine: when the plan names a bank, bursts only fire on machines
// whose fallback-lock line is owned by that bank (modulo the actual
// bank count). The PRNG is not consumed on ineligible machines, like
// any other disabled fault kind.
func (m *Machine) lockBurstArmed() bool {
	b := m.cfg.Faults.LockBurstBank
	if b < 0 || m.dir.NumBanks() <= 1 {
		return true
	}
	return coherence.BankOf(m.lockLine, m.dir.NumBanks()) == b%m.dir.NumBanks()
}

func (m *Machine) nextTS() uint64 {
	m.tsCounter++
	return m.tsCounter
}

// tryAcquirePower hands the unique PowerTM token to core id if it is
// free (the paper's runtime guarantees at most one power transaction; a
// thread that cannot elevate keeps executing normally rather than
// blocking).
func (m *Machine) tryAcquirePower(id int) bool {
	if m.powerHolder != -1 {
		return false
	}
	if m.inj != nil && m.inj.DenyPower() {
		m.countFault(id, "powerdeny")
		return false
	}
	m.powerHolder = id
	m.stats.PowerAcqs++
	return true
}

func (m *Machine) releasePower(id int) {
	if m.powerHolder != id {
		panic(fmt.Sprintf("machine: core %d released power held by %d", id, m.powerHolder))
	}
	m.powerHolder = -1
}

// EffectiveIntraWorkers reports the engine worker count a Run with this
// configuration will use: cfg.IntraWorkers, clamped to 1 (the serial
// engine) whenever the run needs the strict serial total order and
// direct machine access from every event — a tracer or checker attached
// (traced), fault injection, the diagnostic event ring (watchdog or
// starvation bounds), or a PowerTM-token system (usesPower). Exported so
// record producers can stamp the engine mode without holding a Machine.
func EffectiveIntraWorkers(cfg Config, traced, usesPower bool) int {
	if cfg.IntraWorkers <= 1 {
		return 1
	}
	if traced || usesPower ||
		(cfg.Faults != nil && cfg.Faults.Enabled()) ||
		cfg.WatchdogCycles > 0 || cfg.MaxAttempts > 0 ||
		cfg.CM.Kind != htm.CMFixed {
		return 1
	}
	return cfg.IntraWorkers
}

// stmVerAddr maps a data word address onto its STM version lock
// (multiplicative hash; collisions just share a lock).
func (m *Machine) stmVerAddr(a mem.Addr) mem.Addr {
	h := (uint64(a) >> 3) * 0x9E3779B97F4A7C15
	return m.stmLock[(h>>32)%uint64(len(m.stmLock))]
}

// forceSerial reports whether this run must use the serial engine even
// when cfg.IntraWorkers > 1.
func (m *Machine) forceSerial() bool {
	traced := m.tracer != nil || m.xtracer != nil || m.optracer != nil ||
		m.ftracer != nil || m.checker != nil || m.cmtracer != nil
	return EffectiveIntraWorkers(m.cfg, traced, m.policy.Traits().UsesPower) == 1
}

// progress sums the commit/fallback counters across the node shards;
// the livelock watchdog uses it as its forward-progress measure.
func (m *Machine) progress() uint64 {
	var p uint64
	for _, n := range m.nodes {
		p += n.stats.Commits + n.stats.Fallbacks
	}
	return p
}

// Run executes the workload to completion and returns the collected
// statistics. Threads min(cfg.Cores, requested) are spawned — one per
// core.
func (m *Machine) Run(w Workload) (RunStats, error) {
	m.stats.Workload = w.Name()
	workers := m.cfg.IntraWorkers
	if workers > 1 && m.forceSerial() {
		workers = 1
	}
	m.eng.SetWorkers(workers)
	w.Setup(m.world, m.cfg.Cores)
	if m.checker != nil {
		m.checker.BeginRun(m)
	}

	r := newRunner(m)
	runErr := r.run(w)

	m.collectStats()
	if runErr != nil {
		return m.stats, fmt.Errorf("machine: %s on %s: %w", m.policy.Name(), w.Name(), runErr)
	}
	m.flushCaches()
	if m.checker != nil {
		if err := m.checker.EndRun(m); err != nil {
			return m.stats, fmt.Errorf("machine: %s on %s failed invariant check: %w",
				m.policy.Name(), w.Name(), err)
		}
	}
	if err := w.Check(m.world); err != nil {
		return m.stats, fmt.Errorf("machine: %s on %s failed validation: %w",
			m.policy.Name(), w.Name(), err)
	}
	return m.stats, nil
}

func (m *Machine) collectStats() {
	m.stats.Cycles = m.eng.Now()
	for _, n := range m.nodes {
		m.stats.addShard(&n.stats)
		m.net.AddShard(&n.ep.Stats)
		m.stats.L1Hits += n.l1.Stats.Hits
		m.stats.L1Misses += n.l1.Stats.Misses
	}
	m.dir.NetShards()
	m.stats.Flits = m.net.Stats.Flits
	m.stats.Messages = m.net.Stats.Messages
	ds := m.dir.TotalStats()
	m.stats.DirFwds = ds.Forwards
	m.stats.DirInvs = ds.Invs
}

// flushCaches writes every dirty line back to the memory image so
// Workload.Check sees the final architectural state. No speculative
// state may remain.
func (m *Machine) flushCaches() {
	for _, n := range m.nodes {
		if n.tx.InTx() {
			panic("machine: transaction still active after run")
		}
		n.l1.ForEach(func(e *cache.Entry) {
			if e.SM {
				panic("machine: speculative line survived the run")
			}
			if e.Dirty {
				m.memory.WriteLine(e.Tag, e.Data)
			}
		})
		for tag, wb := range n.wbPending {
			if !wb.cancelled {
				m.memory.WriteLine(tag, wb.data)
			}
		}
	}
}

// Stats returns the statistics collected so far.
func (m *Machine) Stats() RunStats { return m.stats }

// IntraWorkers returns the engine worker count the last Run used
// (1 = serial). Kept out of RunStats so serial and parallel runs stay
// bit-comparable; runstore stamps it into record metadata instead.
func (m *Machine) IntraWorkers() int { return m.eng.Workers() }

// WaveStats returns the engine's parallel-coverage counters (events fed
// to the wave automaton, the waves they formed, and how many ran on
// DomainSerial); events/waves is the events-per-wave figure bench
// reports quote, serial/events the residual barrier fraction. Like
// IntraWorkers it is kept out of RunStats: it measures scheduling
// structure, not simulated behavior, and must never enter the
// bit-equality oracles.
func (m *Machine) WaveStats() (events, waves, serial uint64) { return m.eng.WaveStats() }

// DirBanks returns the directory bank count of the assembled machine.
func (m *Machine) DirBanks() int { return m.dir.NumBanks() }

// DirBankLoad reports per-bank directory occupancy after a run: how
// many distinct lines each bank tracked and each bank's share of
// directory requests (GetS+GetX). The hot-line and CM reports use it to
// show whether contention concentrated on one bank.
type DirBankLoad struct {
	Bank     int
	Lines    int
	Requests uint64
}

// DirBankLoads returns one DirBankLoad per bank, in bank order.
func (m *Machine) DirBankLoads() []DirBankLoad {
	loads := make([]DirBankLoad, m.dir.NumBanks())
	for i := range loads {
		st := m.dir.BankStats(i)
		loads[i] = DirBankLoad{Bank: i, Lines: m.dir.BankLines(i), Requests: st.GetS + st.GetX}
	}
	return loads
}
