package machine

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

// Scenario tests pin down the paper's Section III behaviors with
// two/three-thread choreography controlled by Work delays.

// mismatchWL: the producer overwrites a forwarded line before commit;
// the consumer must fail value-based validation (Section III-A scenario
// i: "the consumed data was an intermediate version").
type mismatchWL struct {
	a mem.Addr
}

func (w *mismatchWL) Name() string { return "mismatch" }
func (w *mismatchWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(1)
}
func (w *mismatchWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0: // producer: write, linger (forwarding happens here), overwrite
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.a, 1)
			tx.Work(3000)
			tx.Store(w.a, 2)
			tx.Work(1000)
		})
	case 1: // consumer: arrives mid-linger, consumes the intermediate 1
		ctx.Work(500)
		ctx.Atomic(func(tx Tx) {
			_ = tx.Load(w.a)
			tx.Work(200)
		})
	}
}
func (w *mismatchWL) Check(wd *World) error {
	if v := wd.Mem.ReadWord(w.a); v != 2 {
		return fmt.Errorf("final value %d, want 2", v)
	}
	return nil
}

func TestValidationMismatchAborts(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &mismatchWL{}, testCfg())
	if stats.SpecRespsConsumed == 0 {
		t.Fatal("scenario did not forward (timing broke); adjust delays")
	}
	if stats.ByCause[htm.CauseValidation] == 0 {
		t.Fatalf("expected a validation-mismatch abort; causes = %v", stats.ByCause)
	}
}

// cascadeWL: T0 forwards to T1, T1's producer then aborts (killed by a
// non-transactional access); the abort must propagate to T1 through
// validation without any explicit message (Section III-A "cascading
// aborts").
type cascadeWL struct {
	a, b mem.Addr
}

func (w *cascadeWL) Name() string { return "cascade" }
func (w *cascadeWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(1)
	w.b = wd.Alloc.LineAligned(1)
}
func (w *cascadeWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0: // producer: writes a, lingers long enough to be killed
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.a, tx.Load(w.a)+1)
			tx.Work(6000)
		})
	case 1: // consumer of a
		ctx.Work(500)
		ctx.Atomic(func(tx Tx) {
			_ = tx.Load(w.a)
			tx.Work(6000)
		})
	case 2: // killer: non-transactional write to a kills the producer
		ctx.Work(2500)
		ctx.Store(w.a, 100)
	}
}
func (w *cascadeWL) Check(wd *World) error { return nil }

func TestCascadingAbortViaValidation(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &cascadeWL{}, testCfg())
	if stats.SpecRespsConsumed == 0 {
		t.Fatal("scenario did not forward")
	}
	// Producer dies from the non-tx conflict; consumer dies from value
	// mismatch during validation.
	if stats.ByCause[htm.CauseConflict] == 0 {
		t.Fatalf("producer was not killed; causes = %v", stats.ByCause)
	}
	if stats.ByCause[htm.CauseValidation] == 0 {
		t.Fatalf("consumer did not cascade-abort; causes = %v", stats.ByCause)
	}
}

// abaWL: the producer aborts after forwarding, but the forwarded value
// equals the committed value (a clean read-set forward) — validation
// must succeed and the consumer commit (Section III-C: correctness is
// value-based, not identity-based).
type abaWL struct {
	a mem.Addr
}

func (w *abaWL) Name() string { return "aba" }
func (w *abaWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(1)
	wd.Mem.WriteWord(w.a, 7)
}
func (w *abaWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0: // reader transaction that will forward its read set and abort
		ctx.Atomic(func(tx Tx) {
			if tx.Load(w.a) == 7 && !tx.Fallback() {
				tx.Work(4000) // window for the consumer + killer
			}
		})
	case 1: // writer: conflicts with the reader's read set, consumes
		ctx.Work(300)
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(w.a)
			tx.Store(w.a, v+1)
			tx.Work(500)
		})
	}
}
func (w *abaWL) Check(wd *World) error {
	if v := wd.Mem.ReadWord(w.a); v != 8 {
		return fmt.Errorf("final value %d, want 8", v)
	}
	return nil
}

func TestCleanForwardSurvivesProducerLifetime(t *testing.T) {
	// Use R/W forwarding so the reader's clean block is forwarded.
	policy := core.NewCHATSWith(htm.Traits{
		Retries: 32, VSBSize: 4, ValidationInterval: 50, ForwardMode: htm.ForwardRW,
	})
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(&abaWL{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpecRespsConsumed == 0 {
		t.Skip("timing did not produce a forwarding; scenario inconclusive")
	}
	if stats.ValidationsOK == 0 {
		t.Fatalf("clean forward failed validation; stats = %+v", stats)
	}
}

// chainWL builds a chain of three transactions on three different lines:
// T0 produces a to T1; T1 produces b to T2. CHATS must allow the length-2
// chain (LEVC must not) and commits must respect the order.
type chainWL struct {
	a, b  mem.Addr
	order mem.Addr // records commit order via post-commit stores
}

func (w *chainWL) Name() string { return "chain" }
func (w *chainWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(1)
	w.b = wd.Alloc.LineAligned(1)
	w.order = wd.Alloc.LineAligned(2)
}
func (w *chainWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0: // head producer: owns a
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.a, 10)
			tx.Work(4000)
		})
	case 1: // middle: consumes a, produces b
		ctx.Work(400)
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.b, tx.Load(w.a)+1)
			tx.Work(4000)
		})
	case 2: // tail: consumes b
		ctx.Work(900)
		ctx.Atomic(func(tx Tx) {
			_ = tx.Load(w.b)
			tx.Work(500)
		})
	}
}
func (w *chainWL) Check(wd *World) error {
	if got := wd.Mem.ReadWord(w.b); got != 11 {
		return fmt.Errorf("b = %d, want 11", got)
	}
	return nil
}

func TestChainOfThree(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &chainWL{}, testCfg())
	if stats.SpecRespsConsumed < 2 {
		t.Skipf("chain did not form (consumed=%d); scenario inconclusive", stats.SpecRespsConsumed)
	}
	if stats.Aborts != 0 {
		t.Logf("note: %d aborts in chain scenario (causes %v)", stats.Aborts, stats.ByCause)
	}
	if stats.ValidationsOK < 2 {
		t.Fatalf("chain did not validate through: %+v", stats)
	}
}

// LEVC restricts chains to length 1: the same scenario must not form a
// two-hop chain (the middle transaction never forwards while consuming).
func TestLEVCLimitsChainLength(t *testing.T) {
	stats := runWL(t, core.KindLEVC, &chainWL{}, testCfg())
	// The middle transaction consumed a; its conflicting probe for b must
	// have been resolved by stall/abort rather than forwarding twice.
	if stats.SpecRespsConsumed >= 2 && stats.Aborts == 0 && stats.DecNack == 0 {
		t.Fatalf("LEVC formed an unrestricted chain: %+v", stats)
	}
}

// multiConsumerWL: two transactions consume the same line from one
// producer; commits serialize through the usual coherence protocol
// (Section III-A "multiple consumers").
type multiConsumerWL struct {
	a mem.Addr
}

func (w *multiConsumerWL) Name() string { return "multi-consumer" }
func (w *multiConsumerWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(1)
}
func (w *multiConsumerWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0:
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.a, 5)
			tx.Work(3000)
		})
	case 1, 2:
		ctx.Work(uint64(300 * tid))
		ctx.Atomic(func(tx Tx) {
			_ = tx.Load(w.a)
			tx.Work(800)
		})
	}
}
func (w *multiConsumerWL) Check(wd *World) error {
	if v := wd.Mem.ReadWord(w.a); v != 5 {
		return fmt.Errorf("a = %d, want 5", v)
	}
	return nil
}

func TestMultipleConsumers(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &multiConsumerWL{}, testCfg())
	if stats.SpecRespsConsumed < 2 {
		t.Skipf("only %d consumers formed; scenario inconclusive", stats.SpecRespsConsumed)
	}
	if stats.Commits != 3 && stats.Aborts == 0 {
		t.Fatalf("unexpected outcome: %+v", stats)
	}
}
