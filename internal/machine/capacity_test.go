package machine

import (
	"fmt"
	"testing"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

// setStride is the distance between two addresses that map to the same
// L1 set (64 sets × 64-byte lines for the Table I cache).
const setStride = 64 * mem.LineSize

// overflowWL writes more lines into one cache set than its associativity
// allows: the transaction must take a capacity abort and complete
// through the fallback lock.
type overflowWL struct {
	base  mem.Addr
	lines int
}

func (w *overflowWL) Name() string { return "overflow" }
func (w *overflowWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(1)
	// Reserve the whole conflict range so nothing else lands in it.
	wd.Alloc.Lines(w.lines * 64)
}
func (w *overflowWL) Thread(ctx Ctx, tid int) {
	if tid != 0 {
		return
	}
	ctx.Atomic(func(tx Tx) {
		for i := 0; i < w.lines; i++ {
			tx.Store(w.base+mem.Addr(i*setStride), uint64(i))
		}
	})
}
func (w *overflowWL) Check(wd *World) error {
	for i := 0; i < w.lines; i++ {
		if wd.Mem.ReadWord(w.base+mem.Addr(i*setStride)) != uint64(i) {
			return fmt.Errorf("line %d lost", i)
		}
	}
	return nil
}

func TestWriteSetOverflowFallsBack(t *testing.T) {
	stats := runWL(t, core.KindBaseline, &overflowWL{lines: 14}, testCfg()) // 12-way set
	if stats.ByCause[htm.CauseCapacity] == 0 {
		t.Fatalf("expected capacity aborts; causes = %v", stats.ByCause)
	}
	if stats.Fallbacks == 0 {
		t.Fatal("oversized transaction must complete via the fallback lock")
	}
}

// churnWL touches far more lines than L1 holds, forcing evictions and
// dirty writebacks (and exercising the writeback-buffer reinstall path).
type churnWL struct {
	base  mem.Addr
	lines int
}

func (w *churnWL) Name() string { return "churn" }
func (w *churnWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(w.lines)
}
func (w *churnWL) Thread(ctx Ctx, tid int) {
	if tid != 0 {
		return
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < w.lines; i++ {
			a := w.base + mem.Addr(i*mem.LineSize)
			ctx.Store(a, ctx.Load(a)+1)
		}
	}
}
func (w *churnWL) Check(wd *World) error {
	for i := 0; i < w.lines; i++ {
		if got := wd.Mem.ReadWord(w.base + mem.Addr(i*mem.LineSize)); got != 3 {
			return fmt.Errorf("line %d = %d, want 3", i, got)
		}
	}
	return nil
}

func TestEvictionWritebackRoundTrip(t *testing.T) {
	// 2000 dirty lines >> 768 L1 lines: every pass after the first evicts
	// and reloads, exercising writebacks and the writeback buffer.
	stats := runWL(t, core.KindBaseline, &churnWL{lines: 2000}, testCfg())
	if stats.L1Misses == 0 {
		t.Fatal("churn produced no misses")
	}
}

// wideConsumeWL makes one consumer read more forwarded lines than the
// VSB holds, driving the VSB-full retry path.
type wideConsumeWL struct {
	base mem.Addr
	n    int
}

func (w *wideConsumeWL) Name() string { return "wide-consume" }
func (w *wideConsumeWL) Setup(wd *World, threads int) {
	w.n = 8
	w.base = wd.Alloc.Lines(w.n)
}
func (w *wideConsumeWL) line(i int) mem.Addr { return w.base + mem.Addr(i*mem.LineSize) }
func (w *wideConsumeWL) Thread(ctx Ctx, tid int) {
	switch {
	case tid < w.n: // producers: each owns one line, lingers
		ctx.Atomic(func(tx Tx) {
			tx.Store(w.line(tid), uint64(tid)+1)
			tx.Work(4000)
		})
	case tid == w.n: // consumer: reads all producer lines
		ctx.Work(500)
		ctx.Atomic(func(tx Tx) {
			var sum uint64
			for i := 0; i < w.n; i++ {
				sum += tx.Load(w.line(i))
			}
			_ = sum
		})
	}
}
func (w *wideConsumeWL) Check(wd *World) error { return nil }

func TestVSBCapacityLimitsConsumption(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &wideConsumeWL{}, testCfg())
	if stats.SpecRespsConsumed == 0 {
		t.Skip("timing produced no forwarding; inconclusive")
	}
	if stats.SpecDropVSB == 0 && stats.SpecRespsConsumed > 4 {
		t.Fatalf("consumer took %d spec lines with a 4-entry VSB and no drops",
			stats.SpecRespsConsumed)
	}
}

// ctxAPIWL exercises the non-transactional Ctx surface.
type ctxAPIWL struct {
	base mem.Addr
}

func (w *ctxAPIWL) Name() string { return "ctx-api" }
func (w *ctxAPIWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(threads)
}
func (w *ctxAPIWL) Thread(ctx Ctx, tid int) {
	if ctx.TID() != tid || ctx.Threads() != 16 {
		panic("ctx identity wrong")
	}
	a := w.base + mem.Addr(tid*mem.LineSize)
	ctx.Store(a, uint64(ctx.Rand().Intn(100))+1)
	ctx.Work(0) // zero-cycle work must still cost at least a cycle
	if ctx.Load(a) == 0 {
		panic("non-transactional store lost")
	}
}
func (w *ctxAPIWL) Check(wd *World) error {
	for i := 0; i < 16; i++ {
		if wd.Mem.ReadWord(w.base+mem.Addr(i*mem.LineSize)) == 0 {
			return fmt.Errorf("slot %d empty", i)
		}
	}
	return nil
}

func TestCtxNonTransactionalAPI(t *testing.T) {
	runWL(t, core.KindBaseline, &ctxAPIWL{}, testCfg())
}

func TestAbortRateMetric(t *testing.T) {
	s := RunStats{Commits: 3, Aborts: 1}
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate = %g", got)
	}
	if (RunStats{}).AbortRate() != 0 {
		t.Fatal("empty AbortRate should be 0")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = coherence.MaxCores + 1 },
		func(c *Config) { c.L1Size = 0 },
		func(c *Config) { c.DirBanks = 3 },
		func(c *Config) { c.DirBanks = -4 },
		func(c *Config) { c.DirBanks = 2 * coherence.MaxBanks },
		func(c *Config) { c.NackRetryLimit = 0 },
		func(c *Config) { c.VSBRetryLimit = 0 },
		func(c *Config) { c.PowerAttemptLimit = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
