package machine_test

import (
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/testutil"
)

func TestCounterAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			stats := testutil.Run(t, kind, &testutil.Counter{Iters: 30}, testutil.Config())
			if stats.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if stats.Cycles == 0 {
				t.Fatal("no cycles recorded")
			}
		})
	}
}

func TestBankAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			testutil.Run(t, kind, &testutil.Bank{Accounts: 24, Iters: 40}, testutil.Config())
		})
	}
}

func TestMigratoryAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			stats := testutil.Run(t, kind, &testutil.Migratory{Slots: 8, Iters: 25}, testutil.Config())
			switch kind {
			case core.KindCHATS, core.KindPCHATS, core.KindNaiveRS:
				if stats.SpecRespsSent == 0 {
					t.Errorf("%s forwarded nothing on a migratory workload", kind)
				}
			case core.KindBaseline, core.KindPower:
				if stats.SpecRespsSent != 0 {
					t.Errorf("%s must never forward", kind)
				}
			}
		})
	}
}

func TestCHATSForwardingReducesAborts(t *testing.T) {
	w := func() machine.Workload { return &testutil.Migratory{Slots: 4, Iters: 30} }
	base := testutil.Run(t, core.KindBaseline, w(), testutil.Config())
	chats := testutil.Run(t, core.KindCHATS, w(), testutil.Config())
	if chats.SpecRespsConsumed == 0 {
		t.Fatal("CHATS consumed no speculative data")
	}
	if chats.ValidationsOK == 0 {
		t.Fatal("no successful validations")
	}
	t.Logf("baseline: %d cycles %d aborts; CHATS: %d cycles %d aborts",
		base.Cycles, base.Aborts, chats.Cycles, chats.Aborts)
	if chats.Aborts >= base.Aborts*2+10 {
		t.Errorf("CHATS aborts (%d) wildly exceed baseline (%d)", chats.Aborts, base.Aborts)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testutil.Config()
	cfg.Seed = 42
	a := testutil.Run(t, core.KindCHATS, &testutil.Bank{Accounts: 16, Iters: 30}, cfg)
	b := testutil.Run(t, core.KindCHATS, &testutil.Bank{Accounts: 16, Iters: 30}, cfg)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c := testutil.Run(t, core.KindCHATS, &testutil.Bank{Accounts: 16, Iters: 30}, cfg)
	if a.Cycles == c.Cycles && a.Aborts == c.Aborts && a.Flits == c.Flits {
		t.Log("warning: different seeds produced identical stats (possible but suspicious)")
	}
}

func TestFallbackLockEngages(t *testing.T) {
	// One retry only: heavy contention must hit the fallback path, and
	// the result must still be correct.
	policy := core.NewBaselineWith(htm.Traits{Retries: 1})
	stats, err := testutil.RunPolicy(policy, &testutil.Counter{Iters: 25}, testutil.Config())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks == 0 {
		t.Fatal("expected fallback-lock acquisitions under contention with 1 retry")
	}
	if stats.ByCause[htm.CauseLock] == 0 {
		t.Log("note: no lock-subscription aborts (possible if lock acquisitions never overlapped transactions)")
	}
}

func TestPowerTokenEngages(t *testing.T) {
	stats := testutil.Run(t, core.KindPower, &testutil.Counter{Iters: 25}, testutil.Config())
	if stats.PowerAcqs == 0 {
		t.Fatal("power token never acquired under contention")
	}
}

func TestAbortCausesRecorded(t *testing.T) {
	stats := testutil.Run(t, core.KindBaseline, &testutil.Counter{Iters: 25}, testutil.Config())
	if stats.Aborts == 0 {
		t.Fatal("contended counter produced no aborts")
	}
	var sum uint64
	for _, c := range stats.ByCause {
		sum += c
	}
	if sum != stats.Aborts {
		t.Fatalf("cause split (%d) != total aborts (%d)", sum, stats.Aborts)
	}
}

func TestFig6Accounting(t *testing.T) {
	stats := testutil.Run(t, core.KindCHATS, &testutil.Migratory{Slots: 4, Iters: 25}, testutil.Config())
	executed := stats.Commits + stats.Aborts
	if stats.ConflictedCommitted+stats.ConflictedAborted > executed {
		t.Fatal("conflicted counts exceed executed transactions")
	}
	if stats.ForwarderCommitted+stats.ForwarderAborted > stats.ConflictedCommitted+stats.ConflictedAborted {
		t.Fatal("forwarders exceed conflicted transactions")
	}
}

// Single-threaded sanity: a run with zero contention must never abort.
type soloWL struct {
	addr mem.Addr
}

func (w *soloWL) Name() string { return "solo" }
func (w *soloWL) Setup(wd *machine.World, threads int) {
	w.addr = wd.Alloc.Lines(64)
}
func (w *soloWL) Thread(ctx machine.Ctx, tid int) {
	if tid != 0 {
		return // only thread 0 works
	}
	for i := 0; i < 50; i++ {
		ctx.Atomic(func(tx machine.Tx) {
			a := w.addr + mem.Addr((i%64)*mem.LineSize)
			tx.Store(a, tx.Load(a)+uint64(i))
		})
	}
}
func (w *soloWL) Check(wd *machine.World) error { return nil }

func TestSoloNoAborts(t *testing.T) {
	for _, kind := range core.Kinds() {
		stats := testutil.Run(t, kind, &soloWL{}, testutil.Config())
		if stats.Aborts != 0 {
			t.Errorf("%s: %d aborts with a single thread", kind, stats.Aborts)
		}
		if stats.Commits != 50 {
			t.Errorf("%s: commits = %d, want 50", kind, stats.Commits)
		}
	}
}

func TestCycleLimitErrors(t *testing.T) {
	cfg := testutil.Config()
	cfg.CycleLimit = 2000 // absurdly small
	policy := testutil.Policy(t, core.KindCHATS)
	if _, err := testutil.RunPolicy(policy, &testutil.Counter{Iters: 100}, cfg); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}
