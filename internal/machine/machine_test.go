package machine

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

// counterWL: every thread atomically increments one shared counter iters
// times — maximal write-write contention.
type counterWL struct {
	iters int
	addr  mem.Addr
}

func (w *counterWL) Name() string { return "counter" }
func (w *counterWL) Setup(wd *World, threads int) {
	w.addr = wd.Alloc.LineAligned(1)
	wd.Mem.WriteWord(w.addr, 0)
}
func (w *counterWL) Thread(ctx Ctx, tid int) {
	for i := 0; i < w.iters; i++ {
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(w.addr)
			tx.Store(w.addr, v+1)
		})
		ctx.Work(20)
	}
}
func (w *counterWL) Check(wd *World) error {
	got := wd.Mem.ReadWord(w.addr)
	want := uint64(16 * w.iters)
	if got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// bankWL: random transfers between accounts; the total must be conserved
// (atomicity + isolation witness).
type bankWL struct {
	accounts int
	iters    int
	base     mem.Addr
	total    uint64
}

func (w *bankWL) Name() string { return "bank" }
func (w *bankWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(w.accounts)
	for i := 0; i < w.accounts; i++ {
		wd.Mem.WriteWord(w.base+mem.Addr(i*mem.LineSize), 100)
	}
	w.total = uint64(100 * w.accounts)
}
func (w *bankWL) acct(i int) mem.Addr { return w.base + mem.Addr(i*mem.LineSize) }
func (w *bankWL) Thread(ctx Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.iters; i++ {
		from, to := r.Intn(w.accounts), r.Intn(w.accounts)
		if from == to {
			continue
		}
		ctx.Atomic(func(tx Tx) {
			fv := tx.Load(w.acct(from))
			tv := tx.Load(w.acct(to))
			if fv == 0 {
				return
			}
			tx.Store(w.acct(from), fv-1)
			tx.Store(w.acct(to), tv+1)
		})
	}
}
func (w *bankWL) Check(wd *World) error {
	var sum uint64
	for i := 0; i < w.accounts; i++ {
		sum += wd.Mem.ReadWord(w.acct(i))
	}
	if sum != w.total {
		return fmt.Errorf("bank total = %d, want %d", sum, w.total)
	}
	return nil
}

// migratoryWL: each transaction reads-modifies-writes a private slot and
// then a migrating shared slot once — the pattern CHATS exploits
// (write-once migration, Section VII's kmeans/yada discussion).
type migratoryWL struct {
	slots int
	iters int
	base  mem.Addr
}

func (w *migratoryWL) Name() string { return "migratory" }
func (w *migratoryWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(w.slots)
}
func (w *migratoryWL) Thread(ctx Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.iters; i++ {
		slot := w.base + mem.Addr(r.Intn(w.slots)*mem.LineSize)
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(slot)
			tx.Store(slot, v+1)
			tx.Work(80) // post-write window: the block migrates by forwarding
		})
	}
}
func (w *migratoryWL) Check(wd *World) error {
	var sum uint64
	for i := 0; i < w.slots; i++ {
		sum += wd.Mem.ReadWord(w.base + mem.Addr(i*mem.LineSize))
	}
	if sum != uint64(16*w.iters) {
		return fmt.Errorf("sum = %d, want %d", sum, 16*w.iters)
	}
	return nil
}

func runWL(t *testing.T, kind core.Kind, w Workload, cfg Config) RunStats {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return stats
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.CycleLimit = 50_000_000
	return cfg
}

func TestCounterAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			stats := runWL(t, kind, &counterWL{iters: 30}, testCfg())
			if stats.Commits == 0 {
				t.Fatal("no commits recorded")
			}
			if stats.Cycles == 0 {
				t.Fatal("no cycles recorded")
			}
		})
	}
}

func TestBankAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runWL(t, kind, &bankWL{accounts: 24, iters: 40}, testCfg())
		})
	}
}

func TestMigratoryAllSystems(t *testing.T) {
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			stats := runWL(t, kind, &migratoryWL{slots: 8, iters: 25}, testCfg())
			switch kind {
			case core.KindCHATS, core.KindPCHATS, core.KindNaiveRS:
				if stats.SpecRespsSent == 0 {
					t.Errorf("%s forwarded nothing on a migratory workload", kind)
				}
			case core.KindBaseline, core.KindPower:
				if stats.SpecRespsSent != 0 {
					t.Errorf("%s must never forward", kind)
				}
			}
		})
	}
}

func TestCHATSForwardingReducesAborts(t *testing.T) {
	w := func() Workload { return &migratoryWL{slots: 4, iters: 30} }
	base := runWL(t, core.KindBaseline, w(), testCfg())
	chats := runWL(t, core.KindCHATS, w(), testCfg())
	if chats.SpecRespsConsumed == 0 {
		t.Fatal("CHATS consumed no speculative data")
	}
	if chats.ValidationsOK == 0 {
		t.Fatal("no successful validations")
	}
	t.Logf("baseline: %d cycles %d aborts; CHATS: %d cycles %d aborts",
		base.Cycles, base.Aborts, chats.Cycles, chats.Aborts)
	if chats.Aborts >= base.Aborts*2+10 {
		t.Errorf("CHATS aborts (%d) wildly exceed baseline (%d)", chats.Aborts, base.Aborts)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testCfg()
	cfg.Seed = 42
	a := runWL(t, core.KindCHATS, &bankWL{accounts: 16, iters: 30}, cfg)
	b := runWL(t, core.KindCHATS, &bankWL{accounts: 16, iters: 30}, cfg)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c := runWL(t, core.KindCHATS, &bankWL{accounts: 16, iters: 30}, cfg)
	if a.Cycles == c.Cycles && a.Aborts == c.Aborts && a.Flits == c.Flits {
		t.Log("warning: different seeds produced identical stats (possible but suspicious)")
	}
}

func TestFallbackLockEngages(t *testing.T) {
	// One retry only: heavy contention must hit the fallback path, and
	// the result must still be correct.
	policy := core.NewBaselineWith(htm.Traits{Retries: 1})
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	w := &counterWL{iters: 25}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks == 0 {
		t.Fatal("expected fallback-lock acquisitions under contention with 1 retry")
	}
	if stats.ByCause[htm.CauseLock] == 0 {
		t.Log("note: no lock-subscription aborts (possible if lock acquisitions never overlapped transactions)")
	}
}

func TestPowerTokenEngages(t *testing.T) {
	stats := runWL(t, core.KindPower, &counterWL{iters: 25}, testCfg())
	if stats.PowerAcqs == 0 {
		t.Fatal("power token never acquired under contention")
	}
}

func TestAbortCausesRecorded(t *testing.T) {
	stats := runWL(t, core.KindBaseline, &counterWL{iters: 25}, testCfg())
	if stats.Aborts == 0 {
		t.Fatal("contended counter produced no aborts")
	}
	var sum uint64
	for _, c := range stats.ByCause {
		sum += c
	}
	if sum != stats.Aborts {
		t.Fatalf("cause split (%d) != total aborts (%d)", sum, stats.Aborts)
	}
}

func TestFig6Accounting(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &migratoryWL{slots: 4, iters: 25}, testCfg())
	executed := stats.Commits + stats.Aborts
	if stats.ConflictedCommitted+stats.ConflictedAborted > executed {
		t.Fatal("conflicted counts exceed executed transactions")
	}
	if stats.ForwarderCommitted+stats.ForwarderAborted > stats.ConflictedCommitted+stats.ConflictedAborted {
		t.Fatal("forwarders exceed conflicted transactions")
	}
}

// Single-threaded sanity: a run with zero contention must never abort.
type soloWL struct {
	addr mem.Addr
	tid0 int
}

func (w *soloWL) Name() string { return "solo" }
func (w *soloWL) Setup(wd *World, threads int) {
	w.addr = wd.Alloc.Lines(64)
}
func (w *soloWL) Thread(ctx Ctx, tid int) {
	if tid != 0 {
		return // only thread 0 works
	}
	for i := 0; i < 50; i++ {
		ctx.Atomic(func(tx Tx) {
			a := w.addr + mem.Addr((i%64)*mem.LineSize)
			tx.Store(a, tx.Load(a)+uint64(i))
		})
	}
}
func (w *soloWL) Check(wd *World) error { return nil }

func TestSoloNoAborts(t *testing.T) {
	for _, kind := range core.Kinds() {
		stats := runWL(t, kind, &soloWL{}, testCfg())
		if stats.Aborts != 0 {
			t.Errorf("%s: %d aborts with a single thread", kind, stats.Aborts)
		}
		if stats.Commits != 50 {
			t.Errorf("%s: commits = %d, want 50", kind, stats.Commits)
		}
	}
}

func TestCycleLimitErrors(t *testing.T) {
	cfg := testCfg()
	cfg.CycleLimit = 2000 // absurdly small
	policy, _ := core.New(core.KindCHATS)
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(&counterWL{iters: 100})
	if err == nil {
		t.Fatal("expected cycle-limit error")
	}
}
