package machine_test

import (
	"testing"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/testutil"
)

// chatsWith builds a CHATS variant with explicit traits on top of the
// Table II defaults.
func chatsTraits() htm.Traits {
	return core.NewCHATS().Traits()
}

// A one-entry VSB under a multi-line transactional mix must hit the
// buffer-full path: SpecResps get dropped (SpecDropVSB) and the access
// retries non-speculatively, but the run stays correct (workload Check)
// and the machine still forwards what fits.
func TestVSBFullForcesDrops(t *testing.T) {
	tr := chatsTraits()
	tr.VSBSize = 1
	stats, err := testutil.RunPolicy(core.NewCHATSWith(tr),
		&testutil.Bank{Accounts: 8, Iters: 50}, testutil.Config())
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpecRespsConsumed == 0 {
		t.Fatal("one-entry VSB consumed nothing — pressure test is vacuous")
	}
	if stats.SpecDropVSB == 0 {
		t.Fatal("no SpecResp was ever dropped with a one-entry VSB under a two-line workload")
	}
	// The drops must be real capacity rejections, not consumer deaths.
	t.Logf("consumed %d, dropped (VSB full) %d, dropped (stale) %d",
		stats.SpecRespsConsumed, stats.SpecDropVSB, stats.SpecDropStale)
}

// With the default four-entry VSB the same workload fits: capacity
// drops should vanish (or nearly so) while consumption persists —
// the paired observation that makes TestVSBFullForcesDrops meaningful.
func TestVSBDefaultAbsorbsSameLoad(t *testing.T) {
	small := chatsTraits()
	small.VSBSize = 1
	tiny, err := testutil.RunPolicy(core.NewCHATSWith(small),
		&testutil.Bank{Accounts: 8, Iters: 50}, testutil.Config())
	if err != nil {
		t.Fatal(err)
	}
	full, err := testutil.RunPolicy(core.NewCHATS(),
		&testutil.Bank{Accounts: 8, Iters: 50}, testutil.Config())
	if err != nil {
		t.Fatal(err)
	}
	if full.SpecDropVSB >= tiny.SpecDropVSB && tiny.SpecDropVSB > 0 {
		t.Fatalf("default VSB dropped as much as the one-entry VSB (%d vs %d)",
			full.SpecDropVSB, tiny.SpecDropVSB)
	}
}

// Commit is blocked until every fiction resolves: a consuming
// transaction must validate each buffered line with real permissions
// before committing. With the invariant checker attached (it replays
// every commit against coherent memory), a clean forwarding-heavy run
// proves validations happened and none were skipped.
func TestCommitWaitsForValidation(t *testing.T) {
	stats, counts := testutil.RunChecked(t, core.KindCHATS,
		&testutil.Migratory{Slots: 4, Iters: 40}, testutil.Config())
	if stats.SpecRespsConsumed == 0 {
		t.Fatal("nothing was forwarded — validation path not exercised")
	}
	if stats.Validations == 0 || stats.ValidationsOK == 0 {
		t.Fatalf("consumed %d speculative lines with %d validations (%d ok)",
			stats.SpecRespsConsumed, stats.Validations, stats.ValidationsOK)
	}
	if stats.ValidationsOK > stats.Validations {
		t.Fatalf("validation accounting inverted: %d ok > %d total",
			stats.ValidationsOK, stats.Validations)
	}
	if counts.TxReplays == 0 || counts.LinesDiffed == 0 {
		t.Fatalf("invariant checker did no work: %+v", counts)
	}
}

// Forwarded-then-modified: spurious producer aborts strand stale copies
// in consumer VSBs, so value-based validation must fail and abort the
// consumer (CauseValidation) rather than let it commit fictions. The
// invariant checker confirms every surviving commit was serializable.
func TestForwardedThenModifiedFailsValidation(t *testing.T) {
	plan, err := faults.Parse("spurious:p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.Config()
	cfg.Faults = &plan
	stats, _ := testutil.RunChecked(t, core.KindCHATS,
		&testutil.Migratory{Slots: 4, Iters: 40}, cfg)
	if stats.FaultsInjected == 0 {
		t.Fatal("no spurious aborts injected")
	}
	if stats.ByCause[htm.CauseValidation] == 0 {
		t.Fatal("stale forwarded data never failed validation under spurious producer aborts")
	}
}
