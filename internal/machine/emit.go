package machine

import (
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// Event-emission helpers. Every site in the protocol code funnels through
// these so the no-tracer fast path is exactly one pointer check and zero
// allocations (pinned by TestNilTracerEmitsNoAllocations), and so the
// telemetry layer sees every event from one place.

func (m *Machine) emitBegin(core, attempt int, power bool) {
	if m.tracer != nil {
		m.tracer.TxBegin(m.eng.Now(), core, attempt, power)
	}
}

func (m *Machine) emitCommit(core, consumed int) {
	if m.tracer != nil {
		m.tracer.TxCommit(m.eng.Now(), core, consumed)
	}
}

func (m *Machine) emitAbort(core int, cause htm.AbortCause) {
	if m.tracer != nil {
		m.tracer.TxAbort(m.eng.Now(), core, cause)
	}
}

func (m *Machine) emitForward(producer, requester int, line mem.Addr, pic coherence.PiC) {
	if m.tracer != nil {
		m.tracer.Forward(m.eng.Now(), producer, requester, line, pic)
	}
}

func (m *Machine) emitConsume(core int, line mem.Addr, pic coherence.PiC) {
	if m.tracer != nil {
		m.tracer.Consume(m.eng.Now(), core, line, pic)
	}
}

func (m *Machine) emitValidate(core int, line mem.Addr, ok bool) {
	if m.tracer != nil {
		m.tracer.Validate(m.eng.Now(), core, line, ok)
	}
}

func (m *Machine) emitFallback(core int) {
	if m.tracer != nil {
		m.tracer.Fallback(m.eng.Now(), core)
	}
}

func (m *Machine) emitConflict(holder, requester int, line mem.Addr, kind coherence.ProbeKind, dec htm.ProbeDecision) {
	if m.xtracer != nil {
		m.xtracer.Conflict(m.eng.Now(), holder, requester, line, kind, dec)
	}
}

func (m *Machine) emitNackRetry(core int, line mem.Addr) {
	if m.xtracer != nil {
		m.xtracer.NackRetry(m.eng.Now(), core, line)
	}
}
