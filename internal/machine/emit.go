package machine

import (
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// Event-emission helpers. Every site in the protocol code funnels through
// these so the no-tracer fast path is exactly one pointer check and zero
// allocations (pinned by TestNilTracerEmitsNoAllocations), and so the
// telemetry layer sees every event from one place. When the watchdog is
// armed (Config.WatchdogCycles > 0) the same helpers also record into
// the fixed-size diagnostic ring; its slots are plain values, so that
// path allocates nothing either.

func (m *Machine) emitBegin(core, attempt int, power bool) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringBegin, core: core, a: uint64(attempt)})
	}
	if m.tracer != nil {
		m.tracer.TxBegin(m.eng.Now(), core, attempt, power)
	}
}

func (m *Machine) emitCommit(core, consumed int) {
	if m.cm != nil {
		m.cm.NoteCommit(core)
	}
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringCommit, core: core})
	}
	if m.tracer != nil {
		m.tracer.TxCommit(m.eng.Now(), core, consumed)
	}
}

func (m *Machine) emitAbort(core int, cause htm.AbortCause) {
	if m.cm != nil {
		m.cm.NoteAbort(core)
	}
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringAbort, core: core, s: cause.String()})
	}
	if m.tracer != nil {
		m.tracer.TxAbort(m.eng.Now(), core, cause)
	}
}

// emitCMDecision records one post-abort contention-manager verdict.
// It is called from thread-side code, which is safe: the ring and any
// tracer force the serial engine, and the engine worker is blocked in
// this thread's rendezvous while it runs.
func (m *Machine) emitCMDecision(core int, act htm.CMAction) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringCM, core: core, s: act.String()})
	}
	if m.cmtracer != nil {
		m.cmtracer.CMDecision(m.eng.Now(), core, act)
	}
}

func (m *Machine) emitForward(producer, requester int, line mem.Addr, pic coherence.PiC) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringForward, core: producer, peer: requester,
			line: line, a: uint64(pic)})
	}
	if m.tracer != nil {
		m.tracer.Forward(m.eng.Now(), producer, requester, line, pic)
	}
}

func (m *Machine) emitConsume(core int, line mem.Addr, pic coherence.PiC) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringConsume, core: core, line: line, a: uint64(pic)})
	}
	if m.tracer != nil {
		m.tracer.Consume(m.eng.Now(), core, line, pic)
	}
}

func (m *Machine) emitValidate(core int, line mem.Addr, ok bool) {
	if m.ring != nil {
		var okBit uint64
		if ok {
			okBit = 1
		}
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringValidate, core: core, line: line, a: okBit})
	}
	if m.tracer != nil {
		m.tracer.Validate(m.eng.Now(), core, line, ok)
	}
}

func (m *Machine) emitFallback(core int) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringFallback, core: core})
	}
	if m.tracer != nil {
		m.tracer.Fallback(m.eng.Now(), core)
	}
}

func (m *Machine) emitConflict(holder, requester int, line mem.Addr, kind coherence.ProbeKind, dec htm.ProbeDecision) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringConflict, core: holder, peer: requester,
			line: line, s: dec.String()})
	}
	if m.xtracer != nil {
		m.xtracer.Conflict(m.eng.Now(), holder, requester, line, kind, dec)
	}
}

func (m *Machine) emitNackRetry(core int, line mem.Addr) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringNack, core: core, line: line})
	}
	if m.xtracer != nil {
		m.xtracer.NackRetry(m.eng.Now(), core, line)
	}
}

func (m *Machine) emitOp(core int, op OpKind, inTx bool, addr mem.Addr, val, val2 uint64, ok bool) {
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringOp, core: core, line: addr, a: val, s: op.String()})
	}
	if m.optracer != nil {
		m.optracer.Op(m.eng.Now(), core, op, inTx, addr, val, val2, ok)
	}
}

// countFault records one injected fault: the aggregate stat, the
// diagnostic ring, and the FaultTracer (if attached). kind is a static
// string from the fault-spec grammar.
func (m *Machine) countFault(core int, kind string) {
	m.stats.FaultsInjected++
	if m.ring != nil {
		m.ring.add(ringEvent{cycle: m.eng.Now(), kind: ringFault, core: core, s: kind})
	}
	if m.ftracer != nil {
		m.ftracer.FaultInjected(m.eng.Now(), core, kind)
	}
}
