package machine

import (
	"fmt"
	"math"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/sim"
)

// fallbackProbeWL forces thread 0's transaction to exhaust its retries
// (a non-transactional writer keeps killing it) so the atomic block must
// complete on the fallback path exactly once, with Fallback() == true.
type fallbackProbeWL struct {
	target   mem.Addr
	sawSpec  int
	sawFall  int
	fellback bool
}

func (w *fallbackProbeWL) Name() string { return "fallback-probe" }
func (w *fallbackProbeWL) Setup(wd *World, threads int) {
	w.target = wd.Alloc.LineAligned(1)
}
func (w *fallbackProbeWL) Thread(ctx Ctx, tid int) {
	switch tid {
	case 0:
		ctx.Atomic(func(tx Tx) {
			if tx.Fallback() {
				w.sawFall++
			} else {
				w.sawSpec++
			}
			v := tx.Load(w.target)
			tx.Work(400) // wide window for the killer
			tx.Store(w.target, v+1)
		})
		w.fellback = true
	case 1: // killer: repeated non-transactional writes
		for i := 0; i < 40; i++ {
			ctx.Store(w.target, 0)
			ctx.Work(150)
		}
	}
}
func (w *fallbackProbeWL) Check(wd *World) error {
	if w.sawFall != 1 {
		return fmt.Errorf("fallback body ran %d times, want 1", w.sawFall)
	}
	if w.sawSpec == 0 {
		return fmt.Errorf("speculative attempts never ran")
	}
	return nil
}

func TestFallbackBodyRunsOnce(t *testing.T) {
	// Single retry so the fallback path engages quickly.
	policy := core.NewBaselineWith(htm.Traits{Retries: 1})
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	w := &fallbackProbeWL{}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", stats.Fallbacks)
	}
	if stats.ByCause[htm.CauseConflict] == 0 {
		t.Fatal("no conflict aborts recorded before fallback")
	}
}

// emptyTxWL commits transactions that touch nothing.
type emptyTxWL struct{ ran [16]bool }

func (w *emptyTxWL) Name() string          { return "empty-tx" }
func (w *emptyTxWL) Setup(*World, int)     {}
func (w *emptyTxWL) Thread(ctx Ctx, t int) { ctx.Atomic(func(Tx) {}); w.ran[t] = true }
func (w *emptyTxWL) Check(wd *World) error {
	for i, r := range w.ran {
		if !r {
			return fmt.Errorf("thread %d never ran", i)
		}
	}
	return nil
}

func TestEmptyTransactionCommits(t *testing.T) {
	stats := runWL(t, core.KindCHATS, &emptyTxWL{}, testCfg())
	if stats.Commits != 16 || stats.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d", stats.Commits, stats.Aborts)
	}
}

// nestedUseWL ensures values written earlier in a transaction are
// visible to its own later reads (read-own-writes).
type nestedUseWL struct {
	a    mem.Addr
	fail bool
}

func (w *nestedUseWL) Name() string { return "read-own-writes" }
func (w *nestedUseWL) Setup(wd *World, threads int) {
	w.a = wd.Alloc.LineAligned(2)
}
func (w *nestedUseWL) Thread(ctx Ctx, tid int) {
	if tid != 0 {
		return
	}
	ctx.Atomic(func(tx Tx) {
		tx.Store(w.a, 41)
		if tx.Load(w.a) != 41 {
			w.fail = true
		}
		tx.Store(w.a, tx.Load(w.a)+1)
		tx.Store(w.a.Plus(1), tx.Load(w.a)*2)
	})
}
func (w *nestedUseWL) Check(wd *World) error {
	if w.fail {
		return fmt.Errorf("read-own-writes violated")
	}
	if wd.Mem.ReadWord(w.a) != 42 || wd.Mem.ReadWord(w.a.Plus(1)) != 84 {
		return fmt.Errorf("final state %d/%d, want 42/84",
			wd.Mem.ReadWord(w.a), wd.Mem.ReadWord(w.a.Plus(1)))
	}
	return nil
}

func TestReadOwnWrites(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBaseline, core.KindCHATS} {
		runWL(t, kind, &nestedUseWL{}, testCfg())
	}
}

func TestThreadRandsDiffer(t *testing.T) {
	cfg := testCfg()
	policy, _ := core.New(core.KindBaseline)
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(m)
	seen := map[uint64]bool{}
	for i := range m.nodes {
		t1 := &tctx{r: r, node: m.nodes[i], tid: i,
			rng: nil, reqCh: make(chan opReq), replyCh: make(chan opReply)}
		_ = t1
	}
	// The per-thread seeds must differ (different streams).
	for i := 0; i < cfg.Cores; i++ {
		seed := cfg.Seed*7919 + uint64(i) + 101
		if seen[seed] {
			t.Fatal("duplicate thread seed")
		}
		seen[seed] = true
	}
}

// The backoff clamp must keep pathological BackoffBase values sane (a
// MaxUint64 base once wrapped base+1 to zero and shifted into garbage)
// while staying bit-identical to the plain formula for the default base.
func TestBackoffClampsOverflow(t *testing.T) {
	mk := func(base uint64) *tctx {
		return &tctx{r: &runner{m: &Machine{cfg: Config{BackoffBase: base}}}, rng: sim.NewRand(7)}
	}

	tc := mk(math.MaxUint64)
	for _, aborts := range []int{1, 2, 5, 6, 40} {
		d := tc.backoff(aborts)
		if d < maxBackoffDelay || d > 2*maxBackoffDelay {
			t.Fatalf("base=MaxUint64 aborts=%d: delay %d outside [%d, %d]",
				aborts, d, uint64(maxBackoffDelay), uint64(2*maxBackoffDelay))
		}
	}

	// A base below the cap whose shifted value overflows the cap.
	tc = mk(maxBackoffDelay - 1)
	if d := tc.backoff(40); d < maxBackoffDelay || d > 2*maxBackoffDelay {
		t.Fatalf("base=cap-1 aborts=40: delay %d outside [%d, %d]",
			d, uint64(maxBackoffDelay), uint64(2*maxBackoffDelay))
	}

	// Default base: clamp is a no-op, including the PRNG stream.
	base := DefaultConfig().BackoffBase
	tc = mk(base)
	ref := sim.NewRand(7)
	for aborts := 1; aborts <= 8; aborts++ {
		shift := aborts
		if shift > 5 {
			shift = 5
		}
		want := base<<uint(shift) + ref.Uint64n(base+1)
		if got := tc.backoff(aborts); got != want {
			t.Fatalf("aborts=%d: backoff %d, want unclamped %d", aborts, got, want)
		}
	}
}
