package machine

import (
	"testing"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
)

// orderOracle is a Tracer that checks the paper's commit-ordering
// guarantee end to end: a transaction that consumed speculative data
// commits only after the producer it consumed from (Section III:
// "a transaction that has received speculative data from another can
// never commit before the producer"). It tracks per-core transaction
// incarnations through begin/commit/abort events and the forwarding
// edges between them.
type orderOracle struct {
	t *testing.T
	// current transaction incarnation per core (0 = none).
	cur     [64]int
	nextTx  int
	commits map[int]uint64 // tx id -> commit cycle
	aborted map[int]bool
	// edges consumer-tx -> producer-tx (recorded at Consume time, using
	// the producing core's current incarnation captured at Forward time).
	lastForward map[mem.Addr]int // line -> producer tx of latest forward
	edges       [][2]int         // [consumerTx, producerTx]
	forwards    int
}

func newOrderOracle(t *testing.T) *orderOracle {
	return &orderOracle{
		t:           t,
		commits:     map[int]uint64{},
		aborted:     map[int]bool{},
		lastForward: map[mem.Addr]int{},
	}
}

func (o *orderOracle) TxBegin(cycle uint64, core, attempt int, power bool) {
	o.nextTx++
	o.cur[core] = o.nextTx
}

func (o *orderOracle) TxCommit(cycle uint64, core int, consumed int) {
	if tx := o.cur[core]; tx != 0 {
		o.commits[tx] = cycle
		o.cur[core] = 0
	}
}

func (o *orderOracle) TxAbort(cycle uint64, core int, cause htm.AbortCause) {
	if tx := o.cur[core]; tx != 0 {
		o.aborted[tx] = true
		o.cur[core] = 0
	}
}

func (o *orderOracle) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	o.forwards++
	if tx := o.cur[producer]; tx != 0 {
		o.lastForward[line] = tx
	}
}

func (o *orderOracle) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC) {
	consumer := o.cur[core]
	producer := o.lastForward[line]
	if consumer != 0 && producer != 0 && consumer != producer {
		o.edges = append(o.edges, [2]int{consumer, producer})
	}
}

func (o *orderOracle) Validate(uint64, int, mem.Addr, bool) {}
func (o *orderOracle) Fallback(uint64, int)                 {}

// check asserts the ordering property over all recorded edges.
func (o *orderOracle) check() (checked int) {
	for _, e := range o.edges {
		consumer, producer := e[0], e[1]
		cc, consumerCommitted := o.commits[consumer]
		pc, producerCommitted := o.commits[producer]
		if !consumerCommitted {
			continue // aborted consumers have no ordering obligation
		}
		if !producerCommitted {
			// The producer aborted but the consumer committed: legal only
			// through value-based validation (the value happened to match
			// the committed state). Rare but allowed; skip ordering.
			continue
		}
		checked++
		if pc > cc {
			o.t.Errorf("commit order violated: consumer tx%d committed at %d before producer tx%d at %d",
				consumer, cc, producer, pc)
		}
	}
	return checked
}

func TestCommitOrderRespectsForwarding(t *testing.T) {
	for _, kind := range []core.Kind{core.KindCHATS, core.KindPCHATS, core.KindNaiveRS, core.KindLEVC} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			policy, err := core.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(testCfg(), policy)
			if err != nil {
				t.Fatal(err)
			}
			oracle := newOrderOracle(t)
			m.SetTracer(oracle)
			if _, err := m.Run(&migratoryWL{slots: 4, iters: 30}); err != nil {
				t.Fatal(err)
			}
			checked := oracle.check()
			if oracle.forwards == 0 {
				t.Skip("no forwardings; ordering not exercised")
			}
			if checked == 0 {
				t.Log("note: no committed producer/consumer pairs to order-check")
			}
			t.Logf("%s: %d forwardings, %d ordered pairs verified", kind, oracle.forwards, checked)
		})
	}
}

// The same oracle over the contended counter (pure RMW chains) and the
// bank (multi-line transactions).
func TestCommitOrderOnChains(t *testing.T) {
	for _, mk := range []func() Workload{
		func() Workload { return &counterWL{iters: 25} },
		func() Workload { return &bankWL{accounts: 16, iters: 40} },
	} {
		policy, err := core.New(core.KindCHATS)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(testCfg(), policy)
		if err != nil {
			t.Fatal(err)
		}
		oracle := newOrderOracle(t)
		m.SetTracer(oracle)
		w := mk()
		if _, err := m.Run(w); err != nil {
			t.Fatal(err)
		}
		checked := oracle.check()
		t.Logf("%s: %d forwardings, %d ordered pairs verified", w.Name(), oracle.forwards, checked)
	}
}
