package machine

import "chats/internal/htm"

// RunStats aggregates everything the paper's figures report about one
// simulation run.
type RunStats struct {
	System    string
	Workload  string
	Cycles    uint64 // execution time (Figs. 1, 4, 8, 9, 10, 11)
	Commits   uint64 // committed transactions
	Aborts    uint64 // aborted transaction attempts (Fig. 5)
	ByCause   [htm.NumCauses]uint64
	Fallbacks uint64 // global-lock acquisitions
	PowerAcqs uint64 // power-token acquisitions

	// Fig. 6: executed transactions that conflicted / forwarded data,
	// split by how the attempt finished.
	ConflictedCommitted uint64
	ConflictedAborted   uint64
	ForwarderCommitted  uint64
	ForwarderAborted    uint64
	ConsumerCommitted   uint64
	ConsumerAborted     uint64

	// Forwarding machinery.
	SpecRespsSent     uint64 // producer-side forwardings
	SpecRespsConsumed uint64 // accepted into a VSB
	Validations       uint64 // validation requests issued
	ValidationsOK     uint64 // entries validated (real permissions, match)

	// Fig. 7: interconnect usage.
	Flits    uint64
	Messages uint64

	// Memory system.
	L1Hits   uint64
	L1Misses uint64
	DirFwds  uint64
	DirInvs  uint64

	// Conflict-resolution breakdown (diagnostics).
	ProbeConflicts uint64 // conflicting probes seen at responders
	DecAbort       uint64
	DecSpec        uint64
	DecNack        uint64
	SpecDropStale  uint64 // SpecResp arrived after the consumer died
	SpecDropVSB    uint64 // SpecResp dropped: VSB full, access retried
	SpecDropReject uint64 // consumer-side policy rejection (cycle race)
	NackRetries    uint64

	// Fallback-path breakdown. FallbackBodyCycles sums, over all
	// cores, the cycles each core spent inside an open fallback
	// section (STM body start / lock acquisition through exit), so
	// FallbackBodyCycles/Cycles is the average fallback concurrency:
	// ≤ 1 when fallbacks serialize behind the global lock, > 1 when
	// the STM path overlaps non-conflicting software transactions.
	FallbackSTMCommits   uint64 // STM fallbacks committed optimistically
	FallbackSTMRetries   uint64 // STM body re-executions (validation/budget)
	FallbackElideExtends uint64 // lock acquisitions converted to extra attempts
	FallbackBodyCycles   uint64

	// Contention-manager decision counts (the fixed manager always
	// waits; the adaptive manager splits across all three).
	CMWaits     uint64
	CMSpecs     uint64
	CMFallbacks uint64
	CMHotNacks  uint64 // probes NACKed by the hot-line override

	// FaultsInjected counts every injected fault across all kinds (zero
	// without a fault plan). Its presence in the comparable struct makes
	// the -j1/-jN determinism tests cover the fault schedule too.
	FaultsInjected uint64
}

// addShard folds a node's RunStats shard into the machine totals. Only
// the counters nodes increment locally are folded; everything else
// (Cycles, network, memory-system, fault and power counters) is owned
// by the machine and collected separately.
func (s *RunStats) addShard(o *RunStats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	for i := range s.ByCause {
		s.ByCause[i] += o.ByCause[i]
	}
	s.Fallbacks += o.Fallbacks
	s.ConflictedCommitted += o.ConflictedCommitted
	s.ConflictedAborted += o.ConflictedAborted
	s.ForwarderCommitted += o.ForwarderCommitted
	s.ForwarderAborted += o.ForwarderAborted
	s.ConsumerCommitted += o.ConsumerCommitted
	s.ConsumerAborted += o.ConsumerAborted
	s.SpecRespsSent += o.SpecRespsSent
	s.SpecRespsConsumed += o.SpecRespsConsumed
	s.Validations += o.Validations
	s.ValidationsOK += o.ValidationsOK
	s.ProbeConflicts += o.ProbeConflicts
	s.DecAbort += o.DecAbort
	s.DecSpec += o.DecSpec
	s.DecNack += o.DecNack
	s.SpecDropStale += o.SpecDropStale
	s.SpecDropVSB += o.SpecDropVSB
	s.SpecDropReject += o.SpecDropReject
	s.NackRetries += o.NackRetries
	s.FallbackSTMCommits += o.FallbackSTMCommits
	s.FallbackSTMRetries += o.FallbackSTMRetries
	s.FallbackElideExtends += o.FallbackElideExtends
	s.FallbackBodyCycles += o.FallbackBodyCycles
	s.CMWaits += o.CMWaits
	s.CMSpecs += o.CMSpecs
	s.CMFallbacks += o.CMFallbacks
	s.CMHotNacks += o.CMHotNacks
}

// AbortRate returns aborts per executed transaction attempt.
func (s RunStats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}
