package machine

import (
	"fmt"
	"io"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// Tracer receives the interesting transactional events of a run. Attach
// one with Machine.SetTracer before Run to debug a workload or to study
// how chains form; the zero cost path (no tracer) is a nil check.
type Tracer interface {
	// TxBegin: core starts attempt n (power = holds the PowerTM token).
	TxBegin(cycle uint64, core, attempt int, power bool)
	// TxCommit: core commits (consumed = lines validated through the VSB).
	TxCommit(cycle uint64, core int, consumed int)
	// TxAbort: core rolls back.
	TxAbort(cycle uint64, core int, cause htm.AbortCause)
	// Forward: producer answers requester with speculative data for line,
	// placing itself at PiC pic.
	Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC)
	// Consume: core accepts a speculative line into its VSB at PiC pic.
	Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC)
	// Validate: a validation response for line (ok = entry left the VSB).
	Validate(cycle uint64, core int, line mem.Addr, ok bool)
	// Fallback: core takes the global-lock path.
	Fallback(cycle uint64, core int)
}

// XTracer extends Tracer with the attribution events the telemetry layer
// consumes. A plain Tracer keeps working unchanged; the machine detects
// an XTracer once at SetTracer time so the per-event fast path stays a
// single pointer check.
type XTracer interface {
	Tracer
	// Conflict: a probe hit holder's read/write set and the policy chose
	// dec (the line is the contended address; requester is the other
	// side). Emitted for every conflicting probe, whatever the outcome.
	Conflict(cycle uint64, holder, requester int, line mem.Addr, kind coherence.ProbeKind, dec htm.ProbeDecision)
	// NackRetry: core re-issues a nacked demand access for line.
	NackRetry(cycle uint64, core int, line mem.Addr)
	// VSBOccupancy: core's VSB occupancy changed to occ.
	VSBOccupancy(cycle uint64, core, occ int)
}

// OpKind classifies a workload-level memory operation in the OpTracer
// stream.
type OpKind uint8

const (
	OpLoad OpKind = iota
	OpStore
	OpCAS
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCAS:
		return "cas"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// OpTracer is an optional Tracer extension receiving every completed
// workload-level memory operation (the Ctx/Tx API surface — internal
// protocol traffic such as lock subscriptions and validation requests is
// not reported). The invariant checker's serializability oracle consumes
// this stream. Resolved once at SetTracer, like XTracer.
type OpTracer interface {
	// Op: core completed a memory operation. For OpLoad val is the value
	// read; for OpStore the value written; for OpCAS val is the previous
	// value, val2 the attempted new value and ok whether it swapped.
	// inTx marks speculative (transactional) operations; fallback-path
	// and plain operations report inTx=false. An operation that itself
	// dies with its transaction is not reported; completed speculative
	// operations of a transaction that aborts later ARE reported, and a
	// consumer must discard them on the TxAbort event.
	Op(cycle uint64, core int, op OpKind, inTx bool, addr mem.Addr, val, val2 uint64, ok bool)
}

// FaultTracer is an optional Tracer extension receiving every injected
// fault. kind is the fault's spec-grammar name ("spurious", "jitter",
// ...); core is -1 for faults not attributable to a core (jitter).
type FaultTracer interface {
	FaultInjected(cycle uint64, core int, kind string)
}

// CMTracer is an optional Tracer extension receiving every post-abort
// contention-manager decision (wait, speculate, or fallback) — the
// fixed manager reports waits only. Resolved once at SetTracer, like
// XTracer.
type CMTracer interface {
	CMDecision(cycle uint64, core int, act htm.CMAction)
}

// RunChecker is an optional Tracer extension hooked into the run
// lifecycle: BeginRun fires after Workload.Setup (simulated memory laid
// out, no thread started), EndRun after the caches are flushed back to
// memory. A non-nil EndRun error fails the run. The invariant checker
// seeds and verifies its re-execution oracle through these.
type RunChecker interface {
	BeginRun(m *Machine)
	EndRun(m *Machine) error
}

// SetTracer attaches a tracer (nil detaches). Call before Run. When the
// tracer also implements XTracer, the extended events (conflict
// attribution, nack retries, VSB occupancy) are delivered too; the same
// applies to the OpTracer, FaultTracer and RunChecker extensions.
func (m *Machine) SetTracer(t Tracer) {
	m.tracer = t
	m.xtracer = nil
	m.optracer = nil
	m.ftracer = nil
	m.checker = nil
	m.cmtracer = nil
	if t != nil {
		if x, ok := t.(XTracer); ok {
			m.xtracer = x
		}
		if o, ok := t.(OpTracer); ok {
			m.optracer = o
		}
		if f, ok := t.(FaultTracer); ok {
			m.ftracer = f
		}
		if c, ok := t.(RunChecker); ok {
			m.checker = c
		}
		if c, ok := t.(CMTracer); ok {
			m.cmtracer = c
		}
	}
	for _, n := range m.nodes {
		n.tx.VSB.Observer = nil
		if m.xtracer != nil {
			n := n
			n.tx.VSB.Observer = func(occ int) {
				m.xtracer.VSBOccupancy(m.eng.Now(), n.id, occ)
			}
		}
	}
}

// WriterTracer formats events as one line each, prefixed with the cycle
// — handy with chatsim -trace.
type WriterTracer struct {
	W io.Writer
}

func (t WriterTracer) TxBegin(cycle uint64, core, attempt int, power bool) {
	suffix := ""
	if power {
		suffix = " [power]"
	}
	fmt.Fprintf(t.W, "%10d core%-2d begin attempt=%d%s\n", cycle, core, attempt, suffix)
}

func (t WriterTracer) TxCommit(cycle uint64, core int, consumed int) {
	if consumed > 0 {
		fmt.Fprintf(t.W, "%10d core%-2d commit (validated %d forwarded lines)\n", cycle, core, consumed)
		return
	}
	fmt.Fprintf(t.W, "%10d core%-2d commit\n", cycle, core)
}

func (t WriterTracer) TxAbort(cycle uint64, core int, cause htm.AbortCause) {
	fmt.Fprintf(t.W, "%10d core%-2d abort cause=%s\n", cycle, core, cause)
}

func (t WriterTracer) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	fmt.Fprintf(t.W, "%10d core%-2d forward %v to core%d (PiC=%d)\n", cycle, producer, line, requester, pic)
}

func (t WriterTracer) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC) {
	fmt.Fprintf(t.W, "%10d core%-2d consume %v (PiC=%d)\n", cycle, core, line, pic)
}

func (t WriterTracer) Validate(cycle uint64, core int, line mem.Addr, ok bool) {
	state := "pending"
	if ok {
		state = "validated"
	}
	fmt.Fprintf(t.W, "%10d core%-2d validate %v: %s\n", cycle, core, line, state)
}

func (t WriterTracer) Fallback(cycle uint64, core int) {
	fmt.Fprintf(t.W, "%10d core%-2d fallback lock\n", cycle, core)
}

// ChainTracer is a Tracer that records the forwarding graph of a run:
// every producer→consumer edge with its cycle, usable to reconstruct the
// chains CHATS built (and to assert acyclicity in tests).
type ChainTracer struct {
	Edges []ChainEdge
}

// ChainEdge is one forwarding: Consumer must commit after Producer.
type ChainEdge struct {
	Cycle    uint64
	Producer int
	Consumer int
	Line     mem.Addr
	PiC      coherence.PiC
}

func (t *ChainTracer) TxBegin(uint64, int, int, bool)               {}
func (t *ChainTracer) TxCommit(uint64, int, int)                    {}
func (t *ChainTracer) TxAbort(uint64, int, htm.AbortCause)          {}
func (t *ChainTracer) Validate(uint64, int, mem.Addr, bool)         {}
func (t *ChainTracer) Fallback(uint64, int)                         {}
func (t *ChainTracer) Consume(uint64, int, mem.Addr, coherence.PiC) {}

func (t *ChainTracer) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	t.Edges = append(t.Edges, ChainEdge{
		Cycle: cycle, Producer: producer, Consumer: requester, Line: line, PiC: pic,
	})
}

// MaxChainDepth estimates the longest producer chain observed: the
// maximum number of distinct producers transitively upstream of any
// consumer within a sliding window of edges. It is approximate (cores
// recycle across transactions) but good enough to see chains form.
func (t *ChainTracer) MaxChainDepth() int {
	depth := map[int]int{}
	max := 0
	for _, e := range t.Edges {
		d := depth[e.Producer] + 1
		if d > depth[e.Consumer] {
			depth[e.Consumer] = d
		}
		if depth[e.Consumer] > max {
			max = depth[e.Consumer]
		}
	}
	return max
}
