package machine

// Fallback paths: what a thread does when it gives up on hardware
// speculation. The historical behavior — and the zero-value default —
// is the single global test-test-and-set lock, which serializes every
// fallback section and (via the eager lock subscription) kills all
// running hardware transactions. Two alternatives trade progress
// guarantees against concurrency, per Brown & Ravi's hybrid-TM cost
// analysis:
//
//   - stm: a word-granular software transactional path. The body runs
//     against a buffered write set with per-word versioned locks, so
//     non-conflicting fallback transactions commit concurrently; only
//     the short validate+writeback window holds the global lock (the
//     hardware-safety net — hardware commits do not bump versions, so
//     the read set is re-validated by value while every hardware
//     transaction is provably dead).
//   - elide: the global lock path with a per-core retry budget. Each
//     time a thread is about to take the lock it may instead spend
//     budget on more speculative attempts, earning budget back on
//     commits — lock acquisitions smooth into extra retries.
//
// All paths are thread-side code over the ordinary rendezvous ops, so
// they stay bit-deterministic at any -j / -intra-j; randomized delays
// draw from the per-thread PRNG stream exactly like the lock path.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"chats/internal/mem"
	"chats/internal/sim"
)

// FallbackKind selects the fallback path.
type FallbackKind uint8

const (
	// FallbackLock is the single global lock (the zero-value default).
	FallbackLock FallbackKind = iota
	// FallbackSTM is the software path with word-granular versioned
	// locks.
	FallbackSTM
	// FallbackElide is the global lock with per-core retry budgets.
	FallbackElide
)

func (k FallbackKind) String() string {
	switch k {
	case FallbackLock:
		return "lock"
	case FallbackSTM:
		return "stm"
	case FallbackElide:
		return "elide"
	default:
		return fmt.Sprintf("fallbackkind(%d)", uint8(k))
	}
}

// FallbackConfig configures the fallback path. The zero value is the
// historical global lock; defaults below are filled in at use.
type FallbackConfig struct {
	Kind FallbackKind

	// Locks is the STM version-lock table size in words (each on its
	// own cache line; write words hash onto them). Default 64.
	Locks int
	// Budget is the elide path's per-core retry budget: how many
	// would-be lock acquisitions a core may convert into one more
	// speculative attempt before the lock becomes mandatory.
	// Default 4.
	Budget int
	// Refill is how much elide budget a commit earns back (saturating
	// at Budget). Default 1.
	Refill int
}

const (
	fbDefaultLocks  = 64
	fbMaxLocks      = 1 << 16
	fbDefaultBudget = 4
	fbDefaultRefill = 1
)

func (c FallbackConfig) stmLocks() int {
	if c.Locks == 0 {
		return fbDefaultLocks
	}
	return c.Locks
}

func (c FallbackConfig) elideBudget() int {
	if c.Budget == 0 {
		return fbDefaultBudget
	}
	return c.Budget
}

func (c FallbackConfig) elideRefill() int {
	if c.Refill == 0 {
		return fbDefaultRefill
	}
	return c.Refill
}

// Validate checks the configuration.
func (c FallbackConfig) Validate() error {
	switch c.Kind {
	case FallbackLock, FallbackSTM, FallbackElide:
	default:
		return fmt.Errorf("fallback: unknown kind %d", c.Kind)
	}
	if c.Locks < 0 || c.Locks > fbMaxLocks {
		return fmt.Errorf("fallback: locks %d out of range [0, %d]", c.Locks, fbMaxLocks)
	}
	if c.Budget < 0 {
		return fmt.Errorf("fallback: budget %d must be >= 0", c.Budget)
	}
	if c.Refill < 0 {
		return fmt.Errorf("fallback: refill %d must be >= 0", c.Refill)
	}
	return nil
}

// ParseFallback parses a fallback-path spec string:
//
//	lock
//	stm              stm:locks=64
//	elide            elide:budget=4,refill=1
//
// Omitted keys keep their defaults; the grammar mirrors the fault-plan
// spec strings.
func ParseFallback(spec string) (FallbackConfig, error) {
	var c FallbackConfig
	name, opts, _ := strings.Cut(strings.TrimSpace(spec), ":")
	switch name {
	case "lock", "":
		c.Kind = FallbackLock
		if opts != "" {
			return c, fmt.Errorf("fallback: lock takes no options, got %q", opts)
		}
		return c, nil
	case "stm":
		c.Kind = FallbackSTM
	case "elide":
		c.Kind = FallbackElide
	default:
		return c, fmt.Errorf("fallback: unknown kind %q (valid: lock, stm, elide)", name)
	}
	if opts == "" {
		return c, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("fallback: option %q is not key=value", kv)
		}
		var err error
		switch {
		case key == "locks" && c.Kind == FallbackSTM:
			c.Locks, err = strconv.Atoi(val)
		case key == "budget" && c.Kind == FallbackElide:
			c.Budget, err = strconv.Atoi(val)
		case key == "refill" && c.Kind == FallbackElide:
			c.Refill, err = strconv.Atoi(val)
		default:
			return c, fmt.Errorf("fallback: unknown option %q for %s (stm: locks; elide: budget, refill)", key, c.Kind)
		}
		if err != nil {
			return c, fmt.Errorf("fallback: option %s: %v", key, err)
		}
	}
	return c, c.Validate()
}

// String renders the canonical spec for the configuration; parsing it
// back yields an equal FallbackConfig. Defaulted knobs are omitted.
func (c FallbackConfig) String() string {
	var opts []string
	switch c.Kind {
	case FallbackSTM:
		if c.Locks != 0 {
			opts = append(opts, fmt.Sprintf("locks=%d", c.Locks))
		}
	case FallbackElide:
		if c.Budget != 0 {
			opts = append(opts, fmt.Sprintf("budget=%d", c.Budget))
		}
		if c.Refill != 0 {
			opts = append(opts, fmt.Sprintf("refill=%d", c.Refill))
		}
	}
	if len(opts) == 0 {
		return c.Kind.String()
	}
	return c.Kind.String() + ":" + strings.Join(opts, ",")
}

// BackoffKind selects the randomized post-abort backoff formula.
type BackoffKind uint8

const (
	// BackoffExp is the historical randomized exponential backoff
	// (the zero-value default): BackoffBase << min(aborts, 5), plus
	// jitter in [0, BackoffBase].
	BackoffExp BackoffKind = iota
	// BackoffLinear grows the delay linearly in the abort count,
	// capped: min(BackoffBase*aborts, cap) plus the same jitter.
	BackoffLinear
	// BackoffJitter is full jitter: uniform in [0, min(cap,
	// BackoffBase << min(aborts, 5))].
	BackoffJitter
)

func (k BackoffKind) String() string {
	switch k {
	case BackoffExp:
		return "exp"
	case BackoffLinear:
		return "linear"
	case BackoffJitter:
		return "jitter"
	default:
		return fmt.Sprintf("backoffkind(%d)", uint8(k))
	}
}

// BackoffConfig selects the backoff variant. The zero value is the
// historical exponential formula, bit-identical to before the knob
// existed. Every variant draws exactly once from the thread PRNG per
// backoff, so switching variants never desynchronizes the workload
// random streams.
type BackoffConfig struct {
	Kind BackoffKind
	// Cap bounds one backoff delay in cycles; 0 means the built-in
	// overflow clamp (1 << 32).
	Cap uint64
}

// Validate checks the configuration.
func (c BackoffConfig) Validate() error {
	switch c.Kind {
	case BackoffExp, BackoffLinear, BackoffJitter:
	default:
		return fmt.Errorf("backoff: unknown kind %d", c.Kind)
	}
	return nil
}

// ParseBackoff parses a backoff spec string: "exp", "linear",
// "jitter", each optionally with ":cap=N".
func ParseBackoff(spec string) (BackoffConfig, error) {
	var c BackoffConfig
	name, opts, _ := strings.Cut(strings.TrimSpace(spec), ":")
	switch name {
	case "exp", "":
		c.Kind = BackoffExp
	case "linear":
		c.Kind = BackoffLinear
	case "jitter":
		c.Kind = BackoffJitter
	default:
		return c, fmt.Errorf("backoff: unknown kind %q (valid: exp, linear, jitter)", name)
	}
	if opts == "" {
		return c, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("backoff: option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "cap":
			c.Cap, err = strconv.ParseUint(val, 10, 64)
		default:
			return c, fmt.Errorf("backoff: unknown option %q (valid: cap)", key)
		}
		if err != nil {
			return c, fmt.Errorf("backoff: option %s: %v", key, err)
		}
	}
	return c, c.Validate()
}

// String renders the canonical spec; parsing it back yields an equal
// BackoffConfig.
func (c BackoffConfig) String() string {
	if c.Cap == 0 {
		return c.Kind.String()
	}
	return fmt.Sprintf("%s:cap=%d", c.Kind, c.Cap)
}

// ---------- STM fallback path ----------

const (
	// stmOpsBudget bounds the simulated operations of one STM body
	// execution. An inconsistent snapshot can send a data-dependent
	// body into a loop; the budget converts that into a retry with a
	// fresh snapshot (and doubles, so large legitimate bodies always
	// fit eventually).
	stmOpsBudget = 4096
	// stmMaxRetries bounds STM re-executions before the thread gives
	// up on optimism and runs the body under the global lock — the
	// same progress guarantee as the lock path.
	stmMaxRetries = 8
)

// stmTx is a thread's reusable STM descriptor: the read set (address,
// snapshot value, version observed at first read), the buffered write
// set in first-write order, and the sorted version locks the commit
// protocol acquires. Maps are only used for membership; every ordered
// walk runs over the slices, so iteration order never leaks in.
type stmTx struct {
	readAddrs   []mem.Addr
	readVals    []uint64
	readVers    []uint64
	readVerAddr []mem.Addr
	readIdx     map[mem.Addr]int

	writeAddrs []mem.Addr
	writeVals  map[mem.Addr]uint64

	lockAddrs []mem.Addr
	lockOrig  []uint64

	ops    int
	budget int
}

func newSTMTx() *stmTx {
	return &stmTx{
		readIdx:   make(map[mem.Addr]int),
		writeVals: make(map[mem.Addr]uint64),
	}
}

func (s *stmTx) reset() {
	s.readAddrs = s.readAddrs[:0]
	s.readVals = s.readVals[:0]
	s.readVers = s.readVers[:0]
	s.readVerAddr = s.readVerAddr[:0]
	clear(s.readIdx)
	s.writeAddrs = s.writeAddrs[:0]
	clear(s.writeVals)
	s.lockAddrs = s.lockAddrs[:0]
	s.lockOrig = s.lockOrig[:0]
	s.ops = 0
}

// bump charges one instrumented operation against the body budget.
func (s *stmTx) bump() {
	s.ops++
	if s.ops > s.budget {
		panic(txAbort{})
	}
}

// holdsLock reports whether va is one of the version locks this commit
// already holds (lockAddrs is sorted).
func (s *stmTx) holdsLock(va mem.Addr) bool {
	i := sort.Search(len(s.lockAddrs), func(i int) bool { return s.lockAddrs[i] >= va })
	return i < len(s.lockAddrs) && s.lockAddrs[i] == va
}

// stmHandle is the Tx the body sees on the STM path: loads snapshot
// word versions and values, stores buffer into the write set. All
// simulated accesses are plain (non-transactional) ops.
type stmHandle struct {
	t *tctx
	s *stmTx
}

func (h stmHandle) TID() int        { return h.t.tid }
func (h stmHandle) Rand() *sim.Rand { return h.t.rng }
func (h stmHandle) Fallback() bool  { return true }

func (h stmHandle) Load(a mem.Addr) uint64 {
	s := h.s
	s.bump()
	if v, ok := s.writeVals[a]; ok {
		// Read-own-write: served from the buffer, one cycle.
		h.t.do(opReq{kind: opWork, val: 1})
		return v
	}
	if _, ok := s.readIdx[a]; ok {
		// Re-read: pay for the access, return the recorded snapshot so
		// the body always sees a stable value per location.
		h.t.do(opReq{kind: opLoad, addr: a})
		return s.readVals[s.readIdx[a]]
	}
	va := h.t.r.m.stmVerAddr(a)
	ver := h.t.do(opReq{kind: opLoad, addr: va}).val
	v := h.t.do(opReq{kind: opLoad, addr: a}).val
	s.readIdx[a] = len(s.readAddrs)
	s.readAddrs = append(s.readAddrs, a)
	s.readVals = append(s.readVals, v)
	s.readVers = append(s.readVers, ver)
	s.readVerAddr = append(s.readVerAddr, va)
	return v
}

func (h stmHandle) Store(a mem.Addr, v uint64) {
	s := h.s
	s.bump()
	if _, ok := s.writeVals[a]; !ok {
		s.writeAddrs = append(s.writeAddrs, a)
	}
	s.writeVals[a] = v
	h.t.do(opReq{kind: opWork, val: 1}) // buffered: one cycle, no traffic
}

func (h stmHandle) Work(n uint64) {
	h.t.do(opReq{kind: opWork, val: n})
}

// fallbackSTM runs body on the software path: optimistic execution
// against a buffered write set, then a versioned-lock + value-validated
// commit that holds the global lock only for the writeback window.
func (t *tctx) fallbackSTM(body func(Tx)) {
	if t.stm == nil {
		t.stm = newSTMTx()
	}
	t.stm.budget = stmOpsBudget
	// Start the fallback-occupancy clock: the engine measures from here
	// to the final ExitFallback, so overlapping STM bodies show up as
	// concurrency in FallbackBodyCycles.
	t.do(opReq{kind: opFallbackBodyStart})
	for fails := 0; ; fails++ {
		if fails >= stmMaxRetries {
			// Too much churn to commit optimistically (e.g. a hardware
			// storm rewriting the read set): run under the global lock,
			// which guarantees progress exactly like the lock path.
			t.fallbackLock(body)
			return
		}
		if t.stmAttempt(body) {
			return
		}
		t.node.stats.FallbackSTMRetries++
		t.do(opReq{kind: opWork, val: 16 + t.rng.Uint64n(16)})
	}
}

// runSTMBody executes the body once against a fresh descriptor,
// converting a budget abort back into a retry signal.
func (t *tctx) runSTMBody(body func(Tx)) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, isAbort := rec.(txAbort); !isAbort {
				panic(rec)
			}
			ok = false
		}
	}()
	body(stmHandle{t: t, s: t.stm})
	return true
}

// stmAttempt is one optimistic execute-validate-commit round. It
// returns false if the body overran its budget or validation failed;
// the caller retries with a fresh snapshot.
func (t *tctx) stmAttempt(body func(Tx)) bool {
	m := t.r.m
	s := t.stm
	s.reset()
	if !t.runSTMBody(body) {
		s.budget *= 2
		return false
	}
	if len(s.writeAddrs) == 0 {
		// Read-only body: still serialize through the global lock so the
		// value validation below is race-free and the Fallback event
		// gives the replay oracle a serialization point.
		return t.stmCommitUnderLock(s)
	}
	// Collect the version locks guarding the write set, sorted and
	// deduplicated: a single global acquisition order makes STM-vs-STM
	// locking deadlock-free, and collisions collapse onto one lock.
	for _, wa := range s.writeAddrs {
		s.lockAddrs = append(s.lockAddrs, m.stmVerAddr(wa))
	}
	sort.Slice(s.lockAddrs, func(i, j int) bool { return s.lockAddrs[i] < s.lockAddrs[j] })
	dst := 0
	for i, la := range s.lockAddrs {
		if i == 0 || la != s.lockAddrs[dst-1] {
			s.lockAddrs[dst] = la
			dst++
		}
	}
	s.lockAddrs = s.lockAddrs[:dst]
	// Acquire each write lock: CAS even version v -> v+1 (odd = held).
	for _, la := range s.lockAddrs {
		for {
			v := t.do(opReq{kind: opLoad, addr: la}).val
			if v&1 == 0 && t.do(opReq{kind: opCAS, addr: la, val: v, val2: v + 1}).swapped {
				s.lockOrig = append(s.lockOrig, v)
				break
			}
			t.do(opReq{kind: opWork, val: 8 + t.rng.Uint64n(8)})
		}
	}
	// Pre-validate read versions outside the global lock: cheap early
	// failure against concurrent STM writers. Versions alone cannot
	// prove safety (hardware commits do not bump them) — the value
	// check under the lock below is the safety net.
	for i := range s.readAddrs {
		va := s.readVerAddr[i]
		if s.holdsLock(va) {
			continue // own write lock: nobody else can move it now
		}
		if t.do(opReq{kind: opLoad, addr: va}).val != s.readVers[i] {
			t.stmReleaseLocks(false)
			return false
		}
	}
	return t.stmCommitUnderLock(s)
}

// stmCommitUnderLock finishes the commit inside the global lock:
// acquiring it aborts every running hardware transaction (eager lock
// subscription) and blocks new begins, so re-validating the read set
// by value is race-free; then the buffered writes go back in program
// order and the version locks release with a bump.
func (t *tctx) stmCommitUnderLock(s *stmTx) bool {
	la := t.r.m.lockAddr
	for {
		for t.do(opReq{kind: opLoad, addr: la}).val != 0 {
			t.do(opReq{kind: opWork, val: 64 + t.rng.Uint64n(64)})
		}
		if t.do(opReq{kind: opCAS, addr: la, val: 0, val2: 1}).swapped {
			break
		}
		t.do(opReq{kind: opWork, val: 64 + t.rng.Uint64n(64)})
	}
	for i, ra := range s.readAddrs {
		if t.do(opReq{kind: opLoad, addr: ra}).val != s.readVals[i] {
			t.do(opReq{kind: opStore, addr: la, val: 0})
			t.stmReleaseLocks(false)
			return false
		}
	}
	// Serialization point: the Fallback event is where the difftest
	// replay oracle orders this block (and where lockburst faults
	// stall the holder).
	t.do(opReq{kind: opEnterFallback})
	for _, wa := range s.writeAddrs {
		t.do(opReq{kind: opStore, addr: wa, val: s.writeVals[wa]})
	}
	t.stmReleaseLocks(true)
	t.do(opReq{kind: opExitFallback})
	t.do(opReq{kind: opStore, addr: la, val: 0})
	t.node.stats.FallbackSTMCommits++
	return true
}

// stmReleaseLocks releases the held version locks: bumped past the
// held value after a writeback, restored untouched on a failed commit.
func (t *tctx) stmReleaseLocks(bump bool) {
	s := t.stm
	for i, la := range s.lockAddrs {
		v := s.lockOrig[i]
		if bump {
			v += 2
		}
		t.do(opReq{kind: opStore, addr: la, val: v})
	}
	s.lockAddrs = s.lockAddrs[:0]
	s.lockOrig = s.lockOrig[:0]
}

// ---------- elide fallback path ----------

// elideExtend converts one would-be lock acquisition into another
// speculative attempt if the core has budget left.
func (t *tctx) elideExtend() bool {
	if t.r.m.cfg.Fallback.Kind != FallbackElide || t.elide <= 0 {
		return false
	}
	t.elide--
	t.node.stats.FallbackElideExtends++
	return true
}

// noteCommitBudget refills the elide budget after a hardware commit.
func (t *tctx) noteCommitBudget() {
	fb := &t.r.m.cfg.Fallback
	if fb.Kind != FallbackElide {
		return
	}
	max := fb.elideBudget()
	t.elide += fb.elideRefill()
	if t.elide > max {
		t.elide = max
	}
}

// runFallback dispatches to the configured fallback path.
func (t *tctx) runFallback(body func(Tx)) {
	if t.r.m.cfg.Fallback.Kind == FallbackSTM {
		t.fallbackSTM(body)
		return
	}
	t.fallbackLock(body)
}
