package machine

import (
	"runtime"
	"testing"

	"chats/internal/core"
)

// Whole-machine allocation benchmarks: the event path from thread op
// through network, directory and back must be allocation-free in steady
// state (pooled message structs + the engine's event free list), so
// allocs per simulated cycle is the end-to-end regression signal for
// the dispatch layer. Run as:
//
//	go test -bench WholeMachine -benchmem ./internal/machine
func benchMachine(b *testing.B, kind core.Kind) {
	b.Helper()
	policy, err := core.New(kind)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CycleLimit = 50_000_000
	b.ReportAllocs()
	var cycles, mallocs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := New(cfg, policy)
		if err != nil {
			b.Fatal(err)
		}
		w := &counterWL{iters: 50}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.StartTimer()
		stats, err := m.Run(w)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&ms1)
		cycles += stats.Cycles
		mallocs += ms1.Mallocs - ms0.Mallocs
		b.StartTimer()
	}
	b.ReportMetric(float64(mallocs)/float64(cycles), "allocs/simcycle")
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/run")
}

// BenchmarkWholeMachineCHATS runs the contended-counter workload on the
// CHATS system: forwarding, validation and chain bookkeeping all active.
func BenchmarkWholeMachineCHATS(b *testing.B) { benchMachine(b, core.KindCHATS) }

// BenchmarkWholeMachineBaseline runs the same workload on the baseline
// requester-wins system.
func BenchmarkWholeMachineBaseline(b *testing.B) { benchMachine(b, core.KindBaseline) }
