package machine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the telemetry golden files")

// runCollected is runWL with a telemetry Collector attached.
func runCollected(t *testing.T, kind core.Kind, w Workload, cfg Config, opts telemetry.Options) (RunStats, *telemetry.Collector) {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(cfg.Cores, opts)
	m.SetTracer(col)
	stats, err := m.Run(w)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return stats, col
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (rerun with -update if the change is intended)\ngot %d bytes, want %d",
			name, len(got), len(want))
	}
}

// TestTelemetryGoldenTrace pins the full structured export of a small
// deterministic CHATS run: the JSONL event stream and the hot-line
// report must match the checked-in files byte for byte. Any protocol or
// telemetry change that alters the event stream shows up here; update
// the goldens (go test -run Golden -update) and explain why in the
// commit, exactly as with golden_test.go.
func TestTelemetryGoldenTrace(t *testing.T) {
	run := func() ([]byte, []byte) {
		_, col := runCollected(t, core.KindCHATS,
			&migratoryWL{slots: 2, iters: 3}, testCfg(), telemetry.Options{Window: 1000})
		var trace, hot bytes.Buffer
		if err := col.WriteJSONL(&trace); err != nil {
			t.Fatal(err)
		}
		col.WriteHotLineReport(&hot, 4)
		return trace.Bytes(), hot.Bytes()
	}
	trace, hot := run()
	checkGolden(t, "migratory_chats_trace.jsonl", trace)
	checkGolden(t, "migratory_chats_hotlines.txt", hot)

	// The export must be deterministic: a fresh machine reproduces it.
	trace2, hot2 := run()
	if !bytes.Equal(trace, trace2) || !bytes.Equal(hot, hot2) {
		t.Fatal("telemetry export not reproducible across identical runs")
	}
}

// TestHotLinesNameContendedAccounts runs the bank microbenchmark and
// checks the profiler's answer is *correct*, not just stable: every
// top-ranked hot line must be one of the account lines the workload
// allocated, and the hottest lines must have seen real conflict traffic.
func TestHotLinesNameContendedAccounts(t *testing.T) {
	w := &bankWL{accounts: 4, iters: 40}
	stats, col := runCollected(t, core.KindCHATS, w, testCfg(), telemetry.Options{})
	if stats.Aborts == 0 && stats.SpecRespsSent == 0 {
		t.Fatal("bank run saw no contention at all; scenario too weak")
	}
	lo := w.base
	hi := w.base + mem.Addr(w.accounts*mem.LineSize)
	top := col.HotLines(w.accounts)
	if len(top) == 0 {
		t.Fatal("profiler tracked no lines")
	}
	for _, h := range top {
		if h.Line < lo || h.Line >= hi {
			t.Errorf("hot line %s outside the account range [%s, %s)",
				h.Line.String(), lo.String(), hi.String())
		}
	}
	if top[0].Conflicts == 0 {
		t.Errorf("hottest line %s has zero conflicts: %+v", top[0].Line.String(), top[0].LineCounters)
	}
}

// TestNilTracerEmitsNoAllocations pins the no-tracer fast path: with no
// tracer attached, every emit helper must be a single nil check — zero
// allocations per event.
func TestNilTracerEmitsNoAllocations(t *testing.T) {
	policy, err := core.New(core.KindCHATS)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(testCfg(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if m.tracer != nil || m.xtracer != nil {
		t.Fatal("fresh machine has a tracer attached")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.emitBegin(0, 1, false)
		m.emitCommit(0, 0)
		m.emitAbort(0, htm.CauseConflict)
		m.emitForward(0, 1, 0x80, 15)
		m.emitConsume(1, 0x80, 15)
		m.emitValidate(1, 0x80, true)
		m.emitFallback(0)
		m.emitConflict(0, 1, 0x80, 0, htm.DecideSpec)
		m.emitNackRetry(0, 0x80)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emission allocates %.1f times per event batch, want 0", allocs)
	}
}
