package machine

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/mem"
)

// Shared fixtures for the machine package's *internal* tests (those
// that reach unexported state). External test packages use the same
// harness from chats/internal/testutil, which cannot be imported here
// (it imports machine — test import cycle).

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.CycleLimit = 50_000_000
	return cfg
}

func runWL(t *testing.T, kind core.Kind, w Workload, cfg Config) RunStats {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return stats
}

// counterWL: every thread atomically increments one shared counter iters
// times — maximal write-write contention.
type counterWL struct {
	iters int
	addr  mem.Addr
}

func (w *counterWL) Name() string { return "counter" }
func (w *counterWL) Setup(wd *World, threads int) {
	w.addr = wd.Alloc.LineAligned(1)
	wd.Mem.WriteWord(w.addr, 0)
}
func (w *counterWL) Thread(ctx Ctx, tid int) {
	for i := 0; i < w.iters; i++ {
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(w.addr)
			tx.Store(w.addr, v+1)
		})
		ctx.Work(20)
	}
}
func (w *counterWL) Check(wd *World) error {
	got := wd.Mem.ReadWord(w.addr)
	want := uint64(16 * w.iters)
	if got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// bankWL: random transfers between accounts; the total must be conserved
// (atomicity + isolation witness).
type bankWL struct {
	accounts int
	iters    int
	base     mem.Addr
	total    uint64
}

func (w *bankWL) Name() string { return "bank" }
func (w *bankWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(w.accounts)
	for i := 0; i < w.accounts; i++ {
		wd.Mem.WriteWord(w.base+mem.Addr(i*mem.LineSize), 100)
	}
	w.total = uint64(100 * w.accounts)
}
func (w *bankWL) acct(i int) mem.Addr { return w.base + mem.Addr(i*mem.LineSize) }
func (w *bankWL) Thread(ctx Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.iters; i++ {
		from, to := r.Intn(w.accounts), r.Intn(w.accounts)
		if from == to {
			continue
		}
		ctx.Atomic(func(tx Tx) {
			fv := tx.Load(w.acct(from))
			tv := tx.Load(w.acct(to))
			if fv == 0 {
				return
			}
			tx.Store(w.acct(from), fv-1)
			tx.Store(w.acct(to), tv+1)
		})
	}
}
func (w *bankWL) Check(wd *World) error {
	var sum uint64
	for i := 0; i < w.accounts; i++ {
		sum += wd.Mem.ReadWord(w.acct(i))
	}
	if sum != w.total {
		return fmt.Errorf("bank total = %d, want %d", sum, w.total)
	}
	return nil
}

// migratoryWL: each transaction reads-modifies-writes a private slot and
// then a migrating shared slot once — the pattern CHATS exploits
// (write-once migration, Section VII's kmeans/yada discussion).
type migratoryWL struct {
	slots int
	iters int
	base  mem.Addr
}

func (w *migratoryWL) Name() string { return "migratory" }
func (w *migratoryWL) Setup(wd *World, threads int) {
	w.base = wd.Alloc.Lines(w.slots)
}
func (w *migratoryWL) Thread(ctx Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.iters; i++ {
		slot := w.base + mem.Addr(r.Intn(w.slots)*mem.LineSize)
		ctx.Atomic(func(tx Tx) {
			v := tx.Load(slot)
			tx.Store(slot, v+1)
			tx.Work(80) // post-write window: the block migrates by forwarding
		})
	}
}
func (w *migratoryWL) Check(wd *World) error {
	var sum uint64
	for i := 0; i < w.slots; i++ {
		sum += wd.Mem.ReadWord(w.base + mem.Addr(i*mem.LineSize))
	}
	if sum != uint64(16*w.iters) {
		return fmt.Errorf("sum = %d, want %d", sum, 16*w.iters)
	}
	return nil
}
