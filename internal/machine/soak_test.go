package machine_test

import (
	"testing"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/machine"
	"chats/internal/testutil"
)

// TestSoakAllSystems runs the contended bank workload across several
// seeds and every system: every run must terminate, conserve money (the
// workload's Check), and leave no speculative state behind (the machine
// panics otherwise). This is the broad-spectrum race hunt.
func TestSoakAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for _, kind := range core.Kinds() {
			seed, kind := seed, kind
			t.Run(string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := testutil.Config()
				cfg.Seed = seed
				testutil.Run(t, kind, &testutil.Bank{Accounts: 12, Iters: 60}, cfg)
			})
		}
	}
}

// TestSoakMixedPatterns drives each system through the three conflict
// archetypes back to back (RMW hotspot, migratory write-once, long
// reader/writer mix) with tight cache pressure.
func TestSoakMixedPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	mks := []func() machine.Workload{
		func() machine.Workload { return &testutil.Counter{Iters: 40} },
		func() machine.Workload { return &testutil.Migratory{Slots: 6, Iters: 40} },
		func() machine.Workload { return &testutil.Bank{Accounts: 48, Iters: 50} },
	}
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for _, mk := range mks {
				testutil.Run(t, kind, mk(), testutil.Config())
			}
		})
	}
}

// TestSoakSmallCache repeats the mix with a tiny L1 so evictions,
// writeback races and capacity aborts interleave with forwarding.
func TestSoakSmallCache(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := testutil.Config()
			cfg.L1Size = 4 * 1024 // 4 KiB, 64 lines
			cfg.L1Ways = 4
			testutil.Run(t, kind, &testutil.Bank{Accounts: 64, Iters: 50}, cfg)
			testutil.Run(t, kind, &testutil.Migratory{Slots: 8, Iters: 30}, cfg)
		})
	}
}

// TestSoakUnderFaults repeats the mixed-pattern soak with the canonical
// all-kinds fault plan and the watchdog armed: every system must still
// terminate with the workload's money/state checks intact while
// spurious aborts, forced validation failures, VSB pressure, jitter,
// directory nacks, power denial and lock bursts all fire. (The
// invariants-on version of this soak lives in internal/invariant and
// internal/experiments, which may import both packages.)
func TestSoakUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	plan := faults.SoakPlan()
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := testutil.Config()
				cfg.Seed = seed
				cfg.Faults = &plan
				cfg.WatchdogCycles = 5_000_000
				st := testutil.Run(t, kind, &testutil.Bank{Accounts: 12, Iters: 40}, cfg)
				if st.FaultsInjected == 0 {
					t.Fatalf("seed %d: no faults injected", seed)
				}
				testutil.Run(t, kind, &testutil.Migratory{Slots: 6, Iters: 30}, cfg)
			}
		})
	}
}
