package machine

import (
	"testing"

	"chats/internal/core"
)

// TestSoakAllSystems runs the contended bank workload across several
// seeds and every system: every run must terminate, conserve money (the
// workload's Check), and leave no speculative state behind (the machine
// panics otherwise). This is the broad-spectrum race hunt.
func TestSoakAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for _, kind := range core.Kinds() {
			seed, kind := seed, kind
			t.Run(string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := testCfg()
				cfg.Seed = seed
				runWL(t, kind, &bankWL{accounts: 12, iters: 60}, cfg)
			})
		}
	}
}

// TestSoakMixedPatterns drives each system through the three conflict
// archetypes back to back (RMW hotspot, migratory write-once, long
// reader/writer mix) with tight cache pressure.
func TestSoakMixedPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	mks := []func() Workload{
		func() Workload { return &counterWL{iters: 40} },
		func() Workload { return &migratoryWL{slots: 6, iters: 40} },
		func() Workload { return &bankWL{accounts: 48, iters: 50} },
	}
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			for _, mk := range mks {
				runWL(t, kind, mk(), testCfg())
			}
		})
	}
}

// TestSoakSmallCache repeats the mix with a tiny L1 so evictions,
// writeback races and capacity aborts interleave with forwarding.
func TestSoakSmallCache(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := testCfg()
			cfg.L1Size = 4 * 1024 // 4 KiB, 64 lines
			cfg.L1Ways = 4
			runWL(t, kind, &bankWL{accounts: 64, iters: 50}, cfg)
			runWL(t, kind, &migratoryWL{slots: 8, iters: 30}, cfg)
		})
	}
}
