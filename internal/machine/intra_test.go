package machine

import (
	"testing"

	"chats/internal/core"
)

// Serial-vs-parallel bit-equivalence oracle at the machine level: the
// same workload run with IntraWorkers ∈ {1, 2, 8} must produce exactly
// the same RunStats (the comparable struct covers commit/abort counts,
// every decision counter, cycles, flits and messages). Run under -race
// in CI this also exercises the engine's worker-pool memory discipline.

func runIntra(t *testing.T, kind core.Kind, mk func() Workload, workers int) RunStats {
	t.Helper()
	cfg := testCfg()
	cfg.IntraWorkers = workers
	return runWL(t, kind, mk(), cfg)
}

func TestIntraParallelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		kind core.Kind
		mk   func() Workload
	}{
		{"counter-chats", core.KindCHATS, func() Workload { return &counterWL{iters: 30} }},
		{"counter-baseline", core.KindBaseline, func() Workload { return &counterWL{iters: 30} }},
		{"bank-chats", core.KindCHATS, func() Workload { return &bankWL{accounts: 64, iters: 40} }},
		{"migratory-chats", core.KindCHATS, func() Workload { return &migratoryWL{slots: 4, iters: 25} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := runIntra(t, tc.kind, tc.mk, 1)
			for _, workers := range []int{2, 8} {
				got := runIntra(t, tc.kind, tc.mk, workers)
				if got != ref {
					t.Errorf("IntraWorkers=%d diverged from serial:\nserial:   %+v\nparallel: %+v",
						workers, ref, got)
				}
			}
		})
	}
}

// TestIntraForcedSerial pins the gating rule: configurations that need
// the strict serial order (here PowerTM, which arbitrates a global
// token) silently fall back to one worker.
func TestIntraForcedSerial(t *testing.T) {
	policy, err := core.New(core.KindPower)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.IntraWorkers = 4
	m, err := New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(&counterWL{iters: 10}); err != nil {
		t.Fatal(err)
	}
	if got := m.IntraWorkers(); got != 1 {
		t.Errorf("PowerTM run used %d workers, want forced serial", got)
	}

	// A plain CHATS run keeps the requested worker count.
	policy2, err := core.New(core.KindCHATS)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg, policy2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(&counterWL{iters: 10}); err != nil {
		t.Fatal(err)
	}
	if got := m2.IntraWorkers(); got != 4 {
		t.Errorf("CHATS run used %d workers, want 4", got)
	}
}

// TestWaveSerialFraction pins the delivery routing at the machine
// level: with responses, probes, unblocks and writeback data running in
// their destination's domain, the serial residue of a run is only the
// begin flow's timestamp draws and in-flight eviction writebacks —
// well under half of all events even on a maximally contended counter.
// The counters themselves must also be deterministic: the wave
// accounting is engine bookkeeping, identical at every worker count.
func TestWaveSerialFraction(t *testing.T) {
	measure := func(workers, banks int) (events, waves, serial uint64) {
		policy, err := core.New(core.KindCHATS)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		cfg.IntraWorkers = workers
		cfg.DirBanks = banks
		m, err := New(cfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(&counterWL{iters: 30}); err != nil {
			t.Fatal(err)
		}
		return m.WaveStats()
	}
	events, waves, serial := measure(1, 4)
	if events == 0 || waves == 0 || waves > events {
		t.Fatalf("WaveStats = (%d, %d, %d): not a plausible accounting", events, waves, serial)
	}
	if serial == 0 {
		t.Fatalf("serial residue is zero: the begin flow must still draw timestamps serially")
	}
	if frac := float64(serial) / float64(events); frac >= 0.5 {
		t.Errorf("serial fraction = %.2f (%d of %d events): deliveries are not reaching their destination domains",
			frac, serial, events)
	}
	for _, workers := range []int{2, 8} {
		e, w, s := measure(workers, 4)
		if e != events || w != waves || s != serial {
			t.Errorf("IntraWorkers=%d: WaveStats (%d,%d,%d) diverged from serial (%d,%d,%d)",
				workers, e, w, s, events, waves, serial)
		}
	}
}
