package machine

import (
	"fmt"
	"sort"
	"strings"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// ringCapacity is how many recent events the watchdog diagnostic keeps.
const ringCapacity = 64

// ring event kinds (a compact mirror of the tracer events; the ring is
// populated even without a tracer attached so a livelock dump always has
// recent history).
const (
	ringBegin uint8 = iota
	ringCommit
	ringAbort
	ringForward
	ringConsume
	ringValidate
	ringFallback
	ringConflict
	ringNack
	ringFault
	ringOp
	ringCM
)

// ringEvent is one fixed-size slot; all fields are values so recording
// never allocates (the strings stored are static names).
type ringEvent struct {
	cycle uint64
	kind  uint8
	core  int
	peer  int
	line  mem.Addr
	a, b  uint64
	s     string
}

func (e ringEvent) String() string {
	switch e.kind {
	case ringBegin:
		return fmt.Sprintf("%d core%d begin attempt=%d", e.cycle, e.core, e.a)
	case ringCommit:
		return fmt.Sprintf("%d core%d commit", e.cycle, e.core)
	case ringAbort:
		return fmt.Sprintf("%d core%d abort cause=%s", e.cycle, e.core, e.s)
	case ringForward:
		return fmt.Sprintf("%d core%d forward %v to core%d (PiC=%d)", e.cycle, e.core, e.line, e.peer, int64(e.a))
	case ringConsume:
		return fmt.Sprintf("%d core%d consume %v (PiC=%d)", e.cycle, e.core, e.line, int64(e.a))
	case ringValidate:
		return fmt.Sprintf("%d core%d validate %v ok=%v", e.cycle, e.core, e.line, e.a != 0)
	case ringFallback:
		return fmt.Sprintf("%d core%d fallback", e.cycle, e.core)
	case ringConflict:
		return fmt.Sprintf("%d core%d conflict with core%d on %v -> %s", e.cycle, e.core, e.peer, e.line, e.s)
	case ringNack:
		return fmt.Sprintf("%d core%d nack-retry %v", e.cycle, e.core, e.line)
	case ringFault:
		return fmt.Sprintf("%d core%d fault %s", e.cycle, e.core, e.s)
	case ringOp:
		return fmt.Sprintf("%d core%d %s %v", e.cycle, e.core, e.s, e.line)
	case ringCM:
		return fmt.Sprintf("%d core%d cm-decision %s", e.cycle, e.core, e.s)
	}
	return fmt.Sprintf("%d ringEvent(%d)", e.cycle, e.kind)
}

// eventRing is a fixed-capacity overwrite-oldest buffer.
type eventRing struct {
	buf  []ringEvent
	next int
	full bool
}

func newEventRing(capacity int) *eventRing {
	return &eventRing{buf: make([]ringEvent, capacity)}
}

func (r *eventRing) add(e ringEvent) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// events returns the retained events, oldest first.
func (r *eventRing) events() []ringEvent {
	if !r.full {
		return r.buf[:r.next]
	}
	out := make([]ringEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// CoreSnapshot is a point-in-time view of one core's transactional
// state, used by the watchdog dump and the invariant checker.
type CoreSnapshot struct {
	Core    int
	Status  htm.Status
	Attempt int
	Power   bool
	PiC     coherence.PiC
	Cons    bool
	VSBLen  int
	Cause   htm.AbortCause
	// ReadSet and WriteSet are the line addresses in the read signature
	// and write set, sorted for determinism. VSBLines are the lines held
	// as unvalidated speculative fictions, sorted too.
	ReadSet  []mem.Addr
	WriteSet []mem.Addr
	VSBLines []mem.Addr
}

// NumCores returns the number of simulated cores.
func (m *Machine) NumCores() int { return len(m.nodes) }

// PowerHolder returns the core holding the PowerTM token, or -1.
func (m *Machine) PowerHolder() int { return m.powerHolder }

// Now returns the current simulation cycle.
func (m *Machine) Now() uint64 { return m.eng.Now() }

// Halt stops the simulation before the next event fires, making Run
// return err. Safe to call from tracer callbacks (the invariant checker
// uses it to stop on the first violation).
func (m *Machine) Halt(err error) { m.eng.Halt(err) }

func sortedAddrs(set map[mem.Addr]struct{}) []mem.Addr {
	if len(set) == 0 {
		return nil
	}
	out := make([]mem.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoreSnapshot captures core i's current transactional state.
func (m *Machine) CoreSnapshot(i int) CoreSnapshot {
	tx := m.nodes[i].tx
	vsbLines := tx.VSB.Lines()
	sort.Slice(vsbLines, func(a, b int) bool { return vsbLines[a] < vsbLines[b] })
	return CoreSnapshot{
		Core:     i,
		Status:   tx.Status,
		Attempt:  tx.Attempt,
		Power:    tx.Power,
		PiC:      tx.PiC,
		Cons:     tx.Cons,
		VSBLen:   tx.VSB.Len(),
		Cause:    tx.Cause,
		ReadSet:  sortedAddrs(tx.ReadSig),
		WriteSet: sortedAddrs(tx.WriteSet),
		VSBLines: vsbLines,
	}
}

// LivelockError is returned by Run when the watchdog kills a run: either
// no forward progress for Window cycles (Core == -1) or a single atomic
// block exceeding the per-transaction attempt budget (Core >= 0). Dump
// holds the diagnostic: per-core state, chain registers and the last few
// trace events.
type LivelockError struct {
	Cycle   uint64
	Window  uint64
	Core    int
	Attempt int
	Dump    string
}

func (e *LivelockError) Error() string {
	head := fmt.Sprintf("livelock watchdog: no commit or fallback in %d cycles (cycle %d)", e.Window, e.Cycle)
	if e.Core >= 0 {
		head = fmt.Sprintf("livelock watchdog: core %d reached attempt %d of one atomic block (cycle %d)",
			e.Core, e.Attempt, e.Cycle)
	}
	return head + "\n" + e.Dump
}

const dumpAddrCap = 8 // addresses of a set shown before eliding

func fmtAddrs(as []mem.Addr) string {
	if len(as) == 0 {
		return "[]"
	}
	shown := as
	suffix := ""
	if len(shown) > dumpAddrCap {
		shown = shown[:dumpAddrCap]
		suffix = fmt.Sprintf(" +%d more", len(as)-dumpAddrCap)
	}
	parts := make([]string, len(shown))
	for i, a := range shown {
		parts[i] = a.String()
	}
	return "[" + strings.Join(parts, " ") + suffix + "]"
}

// diagnosticDump renders the machine state for a LivelockError: per-core
// transactional state (the chain topology is readable off the PiC/Cons
// columns and the recent forward events), the power holder, and the last
// ringCapacity trace events.
func (m *Machine) diagnosticDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  state at cycle %d: %d events pending, power holder %d\n",
		m.eng.Now(), m.eng.Pending(), m.powerHolder)
	for i := range m.nodes {
		s := m.CoreSnapshot(i)
		fmt.Fprintf(&b, "  core %-2d %-10s attempt=%-3d power=%-5v PiC=%-3d cons=%-5v vsb=%d ws=%s rs=%s\n",
			i, s.Status, s.Attempt, s.Power, int64(s.PiC), s.Cons, s.VSBLen,
			fmtAddrs(s.WriteSet), fmtAddrs(s.ReadSet))
	}
	if m.ring != nil {
		evs := m.ring.events()
		fmt.Fprintf(&b, "  last %d events:\n", len(evs))
		for _, e := range evs {
			fmt.Fprintf(&b, "    %s\n", e.String())
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

func (m *Machine) livelockError(window uint64) error {
	return &LivelockError{Cycle: m.eng.Now(), Window: window, Core: -1, Dump: m.diagnosticDump()}
}

func (m *Machine) starvationError(core, attempt int) error {
	return &LivelockError{Cycle: m.eng.Now(), Core: core, Attempt: attempt, Dump: m.diagnosticDump()}
}
