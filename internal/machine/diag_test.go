package machine

import (
	"testing"

	"chats/internal/core"
)

func TestDiagCauses(t *testing.T) {
	for _, kind := range []core.Kind{core.KindBaseline, core.KindCHATS, core.KindNaiveRS} {
		for _, mk := range []func() Workload{
			func() Workload { return &counterWL{iters: 30} },
			func() Workload { return &migratoryWL{slots: 4, iters: 30} },
		} {
			w := mk()
			s := runWL(t, kind, w, testCfg())
			t.Logf("%-9s %-9s cyc=%-8d com=%-5d ab=%-5d causes=%v fb=%d sent=%d cons=%d valOK=%d val=%d pc=%d dA=%d dS=%d dN=%d dropStale=%d dropVSB=%d dropRej=%d",
				kind, w.Name(), s.Cycles, s.Commits, s.Aborts, s.ByCause, s.Fallbacks, s.SpecRespsSent, s.SpecRespsConsumed, s.ValidationsOK, s.Validations, s.ProbeConflicts, s.DecAbort, s.DecSpec, s.DecNack, s.SpecDropStale, s.SpecDropVSB, s.SpecDropReject)
		}
	}
}
