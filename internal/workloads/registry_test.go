package workloads

import (
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
)

// Every workload must run to completion and pass its own Check on every
// system at Tiny size — the end-to-end correctness matrix.
func TestAllWorkloadsAllSystems(t *testing.T) {
	for _, name := range AllNames() {
		for _, kind := range core.Kinds() {
			name, kind := name, kind
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				w, err := New(name, Tiny)
				if err != nil {
					t.Fatal(err)
				}
				policy, err := core.New(kind)
				if err != nil {
					t.Fatal(err)
				}
				cfg := machine.DefaultConfig()
				cfg.CycleLimit = 200_000_000
				m, err := machine.New(cfg, policy)
				if err != nil {
					t.Fatal(err)
				}
				stats, err := m.Run(w)
				if err != nil {
					t.Fatal(err)
				}
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

func TestRegistryNames(t *testing.T) {
	if len(AllNames()) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(AllNames()))
	}
	for _, n := range AllNames() {
		if _, err := New(n, Tiny); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := New("nope", Tiny); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(Names()) != 11 {
		t.Fatal("Names() size mismatch")
	}
	for _, s := range []string{"tiny", "small", "medium"} {
		sz, err := ParseSize(s)
		if err != nil || sz.String() != s {
			t.Fatalf("ParseSize(%q) = %v, %v", s, sz, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("bad size accepted")
	}
}

// Workload results must be deterministic across runs for a fixed seed.
func TestWorkloadDeterminism(t *testing.T) {
	run := func() machine.RunStats {
		w, _ := New("intruder", Tiny)
		policy, _ := core.New(core.KindCHATS)
		cfg := machine.DefaultConfig()
		cfg.CycleLimit = 200_000_000
		m, _ := machine.New(cfg, policy)
		stats, err := m.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic run:\n%+v\n%+v", a, b)
	}
}
