package workloads_test

import (
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/testutil"
	"chats/internal/workloads"
)

// tinyCfg gives the Tiny benchmarks more cycle headroom than the
// testutil default.
func tinyCfg() machine.Config {
	cfg := testutil.Config()
	cfg.CycleLimit = 200_000_000
	return cfg
}

// Every workload must run to completion and pass its own Check on every
// system at Tiny size — the end-to-end correctness matrix. The random
// families ride along: their presets are commutative, so Check verifies
// the full final memory image on every system.
func TestAllWorkloadsAllSystems(t *testing.T) {
	names := append(workloads.AllNames(), workloads.RandNames()...)
	for _, name := range names {
		for _, kind := range core.Kinds() {
			name, kind := name, kind
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				w, err := workloads.New(name, workloads.Tiny)
				if err != nil {
					t.Fatal(err)
				}
				stats := testutil.Run(t, kind, w, tinyCfg())
				if stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

func TestRegistryNames(t *testing.T) {
	if len(workloads.AllNames()) != 11 {
		t.Fatalf("expected 11 figure benchmarks, got %d", len(workloads.AllNames()))
	}
	if len(workloads.RandNames()) != 2 {
		t.Fatalf("expected 2 random families, got %d", len(workloads.RandNames()))
	}
	all := append(workloads.AllNames(), workloads.RandNames()...)
	for _, n := range all {
		if _, err := workloads.New(n, workloads.Tiny); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := workloads.New("nope", workloads.Tiny); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(workloads.Names()) != len(all) {
		t.Fatalf("Names() size mismatch: %d registered, %d named", len(workloads.Names()), len(all))
	}
	for _, s := range []string{"tiny", "small", "medium"} {
		sz, err := workloads.ParseSize(s)
		if err != nil || sz.String() != s {
			t.Fatalf("ParseSize(%q) = %v, %v", s, sz, err)
		}
	}
	if _, err := workloads.ParseSize("huge"); err == nil {
		t.Fatal("bad size accepted")
	}
}

// Workload results must be deterministic across runs for a fixed seed.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"intruder", "randprog"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() machine.RunStats {
				w, err := workloads.New(name, workloads.Tiny)
				if err != nil {
					t.Fatal(err)
				}
				return testutil.Run(t, core.KindCHATS, w, tinyCfg())
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("nondeterministic run:\n%+v\n%+v", a, b)
			}
		})
	}
}
