// Package workloads registers the paper's benchmark suite (Section VI-C:
// seven STAMP kernels plus the llb and cadd microbenchmarks) under the
// names used in the figures, with three size presets.
package workloads

import (
	"fmt"
	"sort"

	"chats/internal/machine"
	"chats/internal/micro"
	"chats/internal/randprog"
	"chats/internal/stamp"
)

// Size scales a workload: Tiny for unit tests, Small for Go benchmarks,
// Medium for regenerating the paper's figures.
type Size int

const (
	Tiny Size = iota
	Small
	Medium
)

// ParseSize converts a CLI string.
func ParseSize(s string) (Size, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	}
	return 0, fmt.Errorf("workloads: unknown size %q (tiny, small, medium)", s)
}

func (s Size) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// pick indexes by size.
func pick(s Size, tiny, small, medium int) int {
	switch s {
	case Tiny:
		return tiny
	case Small:
		return small
	default:
		return medium
	}
}

// factories maps workload name to a sized constructor.
var factories = map[string]func(s Size) machine.Workload{
	"genome": func(s Size) machine.Workload {
		return stamp.NewGenome(pick(s, 32, 64, 160), pick(s, 4, 12, 32), pick(s, 8, 32, 80))
	},
	"intruder": func(s Size) machine.Workload {
		return stamp.NewIntruder(pick(s, 48, 160, 480))
	},
	"kmeans-l": func(s Size) machine.Workload {
		return stamp.NewKMeans(32, pick(s, 6, 24, 64), false)
	},
	"kmeans-h": func(s Size) machine.Workload {
		return stamp.NewKMeans(8, pick(s, 6, 24, 64), true)
	},
	"labyrinth": func(s Size) machine.Workload {
		return stamp.NewLabyrinth(pick(s, 16, 32, 48), pick(s, 2, 4, 8))
	},
	"ssca2": func(s Size) machine.Workload {
		return stamp.NewSSCA2(pick(s, 256, 1024, 4096), pick(s, 8, 32, 96))
	},
	"vacation": func(s Size) machine.Workload {
		return stamp.NewVacation(pick(s, 512, 2048, 8192), pick(s, 4, 12, 24))
	},
	"yada": func(s Size) machine.Workload {
		return stamp.NewYada(pick(s, 64, 192, 512), pick(s, 4, 12, 32))
	},
	"llb-l": func(s Size) machine.Workload {
		return micro.NewLLB(pick(s, 128, 256, 512), pick(s, 8, 32, 96), false)
	},
	"llb-h": func(s Size) machine.Workload {
		return micro.NewLLB(pick(s, 128, 256, 512), pick(s, 8, 32, 96), true)
	},
	"cadd": func(s Size) machine.Workload {
		return micro.NewCAdd(pick(s, 32, 128, 512), pick(s, 16, 32, 64), pick(s, 4, 12, 32))
	},
	// Seeded random transactional programs (the differential-fuzzing
	// generator, internal/randprog). The presets are commutative
	// (adds only), so Workload.Check self-verifies the final memory on
	// any system regardless of commit order. Fixed seeds keep runs
	// reproducible; the program is generated at Setup with its core
	// count clamped to the machine's.
	"randprog": func(s Size) machine.Workload {
		return randprog.Family("randprog", 1, randprog.Preset(int(s)))
	},
	"randprog-chain": func(s Size) machine.Workload {
		g := randprog.Preset(int(s))
		g.ChainFrac = 0.6
		g.HotFrac = 0.8
		return randprog.Family("randprog-chain", 2, g)
	},
}

// STAMPNames are the paper's Fig. 4 benchmarks in presentation order
// (bayes excluded, Section VI-C).
func STAMPNames() []string {
	return []string{"genome", "intruder", "kmeans-l", "kmeans-h", "labyrinth", "ssca2", "vacation", "yada"}
}

// MicroNames are the synthetic microbenchmarks (excluded from the means,
// Section VI-C).
func MicroNames() []string { return []string{"llb-l", "llb-h", "cadd"} }

// RandNames are the seeded random-program families from the
// differential-fuzzing generator (not part of the paper's figures).
func RandNames() []string { return []string{"randprog", "randprog-chain"} }

// AllNames returns every benchmark in figure order.
func AllNames() []string { return append(STAMPNames(), MicroNames()...) }

// Names returns the registry keys sorted (CLI help).
func Names() []string {
	var ns []string
	for n := range factories {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// New builds a fresh instance of the named workload at the given size.
// Instances are single-use: Run mutates their setup state.
func New(name string, s Size) (machine.Workload, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (known: %v)", name, Names())
	}
	return f(s), nil
}
