// Package cache models a private set-associative L1 data cache with the
// hardware transactional memory extensions the paper's baseline assumes:
// a speculatively-modified (SM) bit per line for lazy versioning, a
// spec-received bit marking lines obtained through a SpecResp, gang
// invalidation of SM lines on abort, and a replacement policy that
// deprioritizes write-set blocks (Section V-A: "the replacement algorithm
// favors write-set blocks").
package cache

import (
	"fmt"

	"chats/internal/mem"
)

// State is a MESI coherence state as seen by the local cache.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is one cache line's worth of state.
type Entry struct {
	Tag   mem.Addr // line address; meaningful only when State != Invalid
	State State
	Dirty bool // holds data newer than the LLC image (non-speculative)
	SM    bool // speculatively modified: part of the transaction write set
	Spec  bool // received via SpecResp; ownership is a fiction until validated
	Data  mem.Line
	lru   uint64
}

// Stats counts cache events.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	SMEvictTries uint64 // times the victim search had only SM candidates
}

// Cache is a private set-associative cache.
type Cache struct {
	sets    [][]Entry
	setMask uint64
	tick    uint64
	Stats   Stats
}

// New builds a cache of sizeBytes capacity and the given associativity.
// The number of sets must come out a power of two.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	nSets := sizeBytes / (ways * mem.LineSize)
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets is not a power of two (size %d, ways %d)", nSets, sizeBytes, ways))
	}
	c := &Cache{setMask: uint64(nSets - 1)}
	c.sets = make([][]Entry, nSets)
	for i := range c.sets {
		c.sets[i] = make([]Entry, ways)
	}
	return c
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return len(c.sets[0]) }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

func (c *Cache) set(line mem.Addr) []Entry {
	return c.sets[(uint64(line)>>mem.LineShift)&c.setMask]
}

// Lookup returns the entry holding line, or nil. It counts a hit or miss
// and refreshes LRU state on hit.
func (c *Cache) Lookup(line mem.Addr) *Entry {
	line = line.Line()
	set := c.set(line)
	for i := range set {
		e := &set[i]
		if e.State != Invalid && e.Tag == line {
			c.tick++
			e.lru = c.tick
			c.Stats.Hits++
			return e
		}
	}
	c.Stats.Misses++
	return nil
}

// Peek returns the entry holding line without touching LRU or stats.
func (c *Cache) Peek(line mem.Addr) *Entry {
	line = line.Line()
	set := c.set(line)
	for i := range set {
		e := &set[i]
		if e.State != Invalid && e.Tag == line {
			return e
		}
	}
	return nil
}

// Victim describes a line pushed out by Insert.
type Victim struct {
	Tag   mem.Addr
	State State
	Dirty bool
	SM    bool
	Spec  bool
	Data  mem.Line
}

// Insert places line into the cache in the given state, returning the
// evicted victim if a valid line had to be displaced, and ok=false if the
// set is entirely occupied by SM (write-set) lines — which forces a
// capacity abort in a running transaction, matching hardware behavior.
// Victim preference: invalid way, then least-recently-used non-SM line,
// then least-recently-used SM line (only taken when the caller permits it
// by not being in a transaction; the caller decides what an SM eviction
// means).
func (c *Cache) Insert(line mem.Addr, st State, data mem.Line) (victim *Victim, evicted bool, ok bool) {
	line = line.Line()
	set := c.set(line)
	c.tick++
	// Already present: update in place.
	for i := range set {
		e := &set[i]
		if e.State != Invalid && e.Tag == line {
			e.State = st
			e.Data = data
			e.lru = c.tick
			return nil, false, true
		}
	}
	// Invalid way.
	for i := range set {
		if set[i].State == Invalid {
			set[i] = Entry{Tag: line, State: st, Data: data, lru: c.tick}
			return nil, false, true
		}
	}
	// LRU among non-SM lines.
	best := -1
	for i := range set {
		if set[i].SM {
			continue
		}
		if best == -1 || set[i].lru < set[best].lru {
			best = i
		}
	}
	if best == -1 {
		// Every way holds a write-set line: transactional overflow.
		c.Stats.SMEvictTries++
		return nil, false, false
	}
	v := &Victim{Tag: set[best].Tag, State: set[best].State, Dirty: set[best].Dirty,
		SM: set[best].SM, Spec: set[best].Spec, Data: set[best].Data}
	set[best] = Entry{Tag: line, State: st, Data: data, lru: c.tick}
	c.Stats.Evictions++
	return v, true, true
}

// Invalidate removes line from the cache, returning the entry it held.
func (c *Cache) Invalidate(line mem.Addr) (Entry, bool) {
	line = line.Line()
	set := c.set(line)
	for i := range set {
		e := &set[i]
		if e.State != Invalid && e.Tag == line {
			old := *e
			*e = Entry{}
			return old, true
		}
	}
	return Entry{}, false
}

// GangInvalidateSM drops every SM line in one shot (the conditional gang
// invalidation an aborting best-effort transaction performs) and returns
// how many lines were dropped.
func (c *Cache) GangInvalidateSM() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			e := &c.sets[si][wi]
			if e.State != Invalid && e.SM {
				*e = Entry{}
				n++
			}
		}
	}
	return n
}

// CommitSM clears the SM and Spec bits on every write-set line at commit:
// the speculative values become the architectural ones, held dirty in M.
// It calls fn for each committed line so the caller can propagate the
// committed value to the backing image.
func (c *Cache) CommitSM(fn func(line mem.Addr, data mem.Line)) int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			e := &c.sets[si][wi]
			if e.State != Invalid && e.SM {
				e.SM = false
				e.Spec = false
				e.State = Modified
				e.Dirty = true
				n++
				if fn != nil {
					fn(e.Tag, e.Data)
				}
			}
		}
	}
	return n
}

// ForEach visits every valid entry. The callback must not insert or
// invalidate lines.
func (c *Cache) ForEach(fn func(e *Entry)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].State != Invalid {
				fn(&c.sets[si][wi])
			}
		}
	}
}

// CountSM returns the number of SM lines currently held.
func (c *Cache) CountSM() int {
	n := 0
	c.ForEach(func(e *Entry) {
		if e.SM {
			n++
		}
	})
	return n
}
