package cache

import (
	"testing"
	"testing/quick"

	"chats/internal/mem"
)

func lineAddr(i int) mem.Addr { return mem.Addr(i * mem.LineSize) }

func TestNewGeometry(t *testing.T) {
	c := New(48*1024, 12) // paper L1D: 48KiB 12-way -> 64 sets
	if c.Sets() != 64 || c.Ways() != 12 {
		t.Fatalf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(48*1024, 10) // 76.8 sets: invalid
}

func TestInsertLookup(t *testing.T) {
	c := New(4*1024, 4)
	d := mem.Line{1, 2, 3}
	if _, _, ok := c.Insert(lineAddr(1), Shared, d); !ok {
		t.Fatal("insert failed")
	}
	e := c.Lookup(lineAddr(1))
	if e == nil || e.State != Shared || e.Data != d {
		t.Fatalf("lookup = %+v", e)
	}
	if c.Lookup(lineAddr(2)) != nil {
		t.Fatal("phantom hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := New(4*1024, 4)
	c.Insert(lineAddr(1), Shared, mem.Line{1})
	c.Insert(lineAddr(1), Modified, mem.Line{2})
	e := c.Peek(lineAddr(1))
	if e.State != Modified || e.Data[0] != 2 {
		t.Fatalf("update in place failed: %+v", e)
	}
	n := 0
	c.ForEach(func(*Entry) { n++ })
	if n != 1 {
		t.Fatalf("duplicate entries: %d", n)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2*mem.LineSize*2, 2) // 2 sets, 2 ways
	// Lines 0, 2, 4 all map to set 0.
	c.Insert(lineAddr(0), Shared, mem.Line{})
	c.Insert(lineAddr(2), Shared, mem.Line{})
	c.Lookup(lineAddr(0)) // make line 0 most recent
	v, evicted, ok := c.Insert(lineAddr(4), Shared, mem.Line{})
	if !ok || !evicted || v.Tag != lineAddr(2) {
		t.Fatalf("victim = %+v, want line 2", v)
	}
	if c.Peek(lineAddr(0)) == nil || c.Peek(lineAddr(4)) == nil {
		t.Fatal("survivors wrong")
	}
}

func TestSMLinesResistEviction(t *testing.T) {
	c := New(2*mem.LineSize*2, 2)
	c.Insert(lineAddr(0), Modified, mem.Line{})
	c.Peek(lineAddr(0)).SM = true
	c.Insert(lineAddr(2), Shared, mem.Line{})
	// Line 0 is older but SM: line 2 must be the victim.
	v, evicted, ok := c.Insert(lineAddr(4), Shared, mem.Line{})
	if !ok || !evicted || v.Tag != lineAddr(2) {
		t.Fatalf("victim = %+v, want line 2", v)
	}
}

func TestAllSMOverflow(t *testing.T) {
	c := New(2*mem.LineSize*2, 2)
	c.Insert(lineAddr(0), Modified, mem.Line{})
	c.Peek(lineAddr(0)).SM = true
	c.Insert(lineAddr(2), Modified, mem.Line{})
	c.Peek(lineAddr(2)).SM = true
	_, _, ok := c.Insert(lineAddr(4), Shared, mem.Line{})
	if ok {
		t.Fatal("expected overflow when set full of SM lines")
	}
	if c.Stats.SMEvictTries != 1 {
		t.Fatalf("SMEvictTries = %d", c.Stats.SMEvictTries)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4*1024, 4)
	c.Insert(lineAddr(3), Modified, mem.Line{7})
	old, ok := c.Invalidate(lineAddr(3))
	if !ok || old.Data[0] != 7 {
		t.Fatalf("invalidate = %+v, %v", old, ok)
	}
	if _, ok := c.Invalidate(lineAddr(3)); ok {
		t.Fatal("double invalidate succeeded")
	}
	if c.Peek(lineAddr(3)) != nil {
		t.Fatal("line still present")
	}
}

func TestGangInvalidateSM(t *testing.T) {
	c := New(4*1024, 4)
	for i := 0; i < 6; i++ {
		c.Insert(lineAddr(i), Modified, mem.Line{})
		if i%2 == 0 {
			c.Peek(lineAddr(i)).SM = true
		}
	}
	if n := c.GangInvalidateSM(); n != 3 {
		t.Fatalf("gang invalidated %d, want 3", n)
	}
	for i := 0; i < 6; i++ {
		present := c.Peek(lineAddr(i)) != nil
		if present != (i%2 == 1) {
			t.Fatalf("line %d presence = %v", i, present)
		}
	}
	if c.CountSM() != 0 {
		t.Fatal("SM lines remain")
	}
}

func TestCommitSM(t *testing.T) {
	c := New(4*1024, 4)
	c.Insert(lineAddr(0), Exclusive, mem.Line{42})
	e := c.Peek(lineAddr(0))
	e.SM = true
	e.Spec = true
	committed := map[mem.Addr]mem.Line{}
	n := c.CommitSM(func(l mem.Addr, d mem.Line) { committed[l] = d })
	if n != 1 {
		t.Fatalf("committed %d lines", n)
	}
	if d, ok := committed[lineAddr(0)]; !ok || d[0] != 42 {
		t.Fatal("commit callback missing or wrong data")
	}
	e = c.Peek(lineAddr(0))
	if e.SM || e.Spec || e.State != Modified || !e.Dirty {
		t.Fatalf("post-commit entry = %+v", e)
	}
}

func TestVictimCarriesFullState(t *testing.T) {
	c := New(mem.LineSize*1, 1) // 1 set, 1 way
	c.Insert(lineAddr(0), Modified, mem.Line{9})
	e := c.Peek(lineAddr(0))
	e.Dirty = true
	v, evicted, ok := c.Insert(lineAddr(1), Shared, mem.Line{})
	if !ok || !evicted {
		t.Fatal("no eviction")
	}
	if v.Tag != lineAddr(0) || !v.Dirty || v.State != Modified || v.Data[0] != 9 {
		t.Fatalf("victim = %+v", v)
	}
}

// Property: the cache never holds two entries for the same tag, and never
// holds more valid entries than its capacity.
func TestCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(8*mem.LineSize*2, 2) // 8 sets, 2 ways
		for _, op := range ops {
			line := lineAddr(int(op % 64))
			switch op % 3 {
			case 0:
				c.Insert(line, Shared, mem.Line{uint64(op)})
			case 1:
				c.Lookup(line)
			case 2:
				c.Invalidate(line)
			}
			seen := map[mem.Addr]int{}
			count := 0
			c.ForEach(func(e *Entry) {
				seen[e.Tag]++
				count++
			})
			for _, n := range seen {
				if n > 1 {
					return false
				}
			}
			if count > c.Sets()*c.Ways() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should still print")
	}
}
