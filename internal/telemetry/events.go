// Package telemetry is the simulator's observability layer: a Collector
// that implements machine.Tracer/XTracer and turns the event stream into
// (1) a metrics registry of counters, gauges, fixed-bucket histograms and
// cycle-windowed time series, (2) structured exports — JSON Lines and
// Chrome trace_event format loadable in Perfetto — and (3) attribution
// reports: a hot-line profiler over the top-K contended addresses and a
// chain-topology report (depth distribution, fan-out, NACK counts).
//
// The package deliberately does not import internal/machine: the
// Collector satisfies the machine's tracer interfaces structurally, so
// the simulator core carries no telemetry dependency and its no-tracer
// fast path stays a single pointer check.
package telemetry

import (
	"fmt"
	"io"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
)

// Kind discriminates the event records the Collector retains.
type Kind uint8

const (
	KindBegin Kind = iota
	KindCommit
	KindAbort
	KindForward
	KindConsume
	KindValidate
	KindFallback
	KindConflict
	KindNack
	KindVSB
	KindFault
)

func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindForward:
		return "forward"
	case KindConsume:
		return "consume"
	case KindValidate:
		return "validate"
	case KindFallback:
		return "fallback"
	case KindConflict:
		return "conflict"
	case KindNack:
		return "nack"
	case KindVSB:
		return "vsb"
	case KindFault:
		return "fault"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one structured simulator occurrence. Core is the acting core
// (the producer for forwards, the set-holder for conflicts); Peer is the
// counterpart core where one exists (-1 otherwise). Which of the
// remaining fields are meaningful depends on Kind.
type Event struct {
	Cycle uint64
	Kind  Kind
	Core  int
	Peer  int

	Line    mem.Addr
	HasLine bool

	Attempt  int                 // begin
	Consumed int                 // commit: lines validated through the VSB
	Power    bool                // begin
	Cause    htm.AbortCause      // abort
	PiC      coherence.PiC       // forward, consume
	Probe    coherence.ProbeKind // conflict
	Decision htm.ProbeDecision   // conflict
	OK       bool                // validate
	Occ      int                 // vsb
	Fault    string              // fault: injected kind ("spurious", ...)
}

// appendJSON renders the event as one JSON object without reflection, so
// exports are fast and field order is deterministic for golden tests.
func (e Event) appendJSON(b []byte) []byte {
	b = fmt.Appendf(b, `{"cycle":%d,"kind":%q,"core":%d`, e.Cycle, e.Kind.String(), e.Core)
	if e.Peer >= 0 {
		b = fmt.Appendf(b, `,"peer":%d`, e.Peer)
	}
	if e.HasLine {
		b = fmt.Appendf(b, `,"line":"0x%x"`, uint64(e.Line))
	}
	switch e.Kind {
	case KindBegin:
		b = fmt.Appendf(b, `,"attempt":%d,"power":%t`, e.Attempt, e.Power)
	case KindCommit:
		b = fmt.Appendf(b, `,"consumed":%d`, e.Consumed)
	case KindAbort:
		b = fmt.Appendf(b, `,"cause":%q`, e.Cause.String())
	case KindForward, KindConsume:
		b = fmt.Appendf(b, `,"pic":%d`, int(e.PiC))
	case KindValidate:
		b = fmt.Appendf(b, `,"ok":%t`, e.OK)
	case KindConflict:
		b = fmt.Appendf(b, `,"probe":%q,"decision":%q`, e.Probe.String(), e.Decision.String())
	case KindVSB:
		b = fmt.Appendf(b, `,"occ":%d`, e.Occ)
	case KindFault:
		b = fmt.Appendf(b, `,"fault":%q`, e.Fault)
	}
	return append(b, '}', '\n')
}

// TraceSchema names the JSONL trace layout; the header line every
// export starts with carries it so stored traces are self-describing.
const TraceSchema = "chats-trace/v1"

// WriteJSONL writes the retained event stream as JSON Lines: a schema
// header line first ({"schema":"chats-trace/v1",...}), then one event
// per line in emission order. If the event buffer was capped, a final
// meta line additionally reports how many events were dropped.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if _, err := fmt.Fprintf(w, `{"schema":%q,"events":%d,"dropped":%d}`+"\n",
		TraceSchema, len(c.Events), c.Dropped); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for _, e := range c.Events {
		buf = e.appendJSON(buf[:0])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if c.Dropped > 0 {
		if _, err := fmt.Fprintf(w, `{"kind":"meta","dropped":%d}`+"\n", c.Dropped); err != nil {
			return err
		}
	}
	return nil
}
