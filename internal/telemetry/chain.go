package telemetry

import (
	"fmt"
	"io"

	"chats/internal/stats"
)

// ChainReport summarizes the forwarding topology of a run: how deep the
// producer→consumer chains grew, how widely single producers fanned out,
// and how often the cycle-avoidance machinery had to refuse (NACK) or
// kill. It generalizes ChainTracer.MaxChainDepth into distributions.
type ChainReport struct {
	// Edges is the number of forwarding edges (SpecResps sent).
	Edges uint64
	// MaxDepth is the deepest chain observed (distinct producers
	// transitively upstream of one consumer among live transactions).
	MaxDepth int
	// Depth is the distribution of the consumer's chain depth at each
	// forwarding edge.
	Depth *stats.Histogram
	// FanOut is the distribution of SpecResps sent per forwarding
	// transaction attempt.
	FanOut *stats.Histogram
	// StallNacks counts conflicts resolved requester-stalls; CycleAborts
	// counts transactions killed by PiC cycle avoidance or validation.
	StallNacks  uint64
	CycleAborts uint64
}

// Chain builds the chain-topology report from the collected state.
func (c *Collector) Chain() ChainReport {
	return ChainReport{
		Edges:       c.chainEdges,
		MaxDepth:    c.maxDepth,
		Depth:       c.depth,
		FanOut:      c.fanOut,
		StallNacks:  c.Reg.Counter("conflict/nack").N,
		CycleAborts: c.Reg.Counter("tx/aborts/cycle").N + c.Reg.Counter("tx/aborts/validation").N,
	}
}

// Fprint renders the report.
func (r ChainReport) Fprint(w io.Writer) {
	fmt.Fprintln(w, "== chain topology ==")
	fmt.Fprintf(w, "forwarding edges   %d\n", r.Edges)
	fmt.Fprintf(w, "max chain depth    %d\n", r.MaxDepth)
	fmt.Fprintf(w, "stall nacks        %d\n", r.StallNacks)
	fmt.Fprintf(w, "cycle/val aborts   %d\n", r.CycleAborts)
	fmt.Fprintln(w)
	r.Depth.Fprint(w)
	r.FanOut.Fprint(w)
}
