package telemetry

import (
	"fmt"
	"io"
	"sort"

	"chats/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct{ N uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.N += n }

// Gauge is a last-written value (high-water marks, final depths).
type Gauge struct{ V float64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.V = v }

// Registry is a small create-on-demand metrics registry. All lookups
// return the same instance for a name, so instrumentation sites can call
// Counter("x").Inc() without holding references. Rendering is sorted by
// name so output is deterministic.
type Registry struct {
	window   uint64
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*stats.Histogram
	series   map[string]*stats.Series
}

// NewRegistry builds a registry whose time series use the given cycle
// window (0 picks the 10 000-cycle default).
func NewRegistry(window uint64) *Registry {
	if window == 0 {
		window = 10_000
	}
	return &Registry{
		window:   window,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*stats.Histogram),
		series:   make(map[string]*stats.Series),
	}
}

// Window returns the configured cycle-window width.
func (r *Registry) Window() uint64 { return r.window }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *stats.Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = stats.NewHistogram(name, bounds)
		r.hists[name] = h
	}
	return h
}

// Series returns the named cycle-windowed series, creating it on first
// use.
func (r *Registry) Series(name string) *stats.Series {
	s, ok := r.series[name]
	if !ok {
		s = stats.NewSeries(name, r.window)
		r.series[name] = s
	}
	return s
}

// AllHistograms returns every registered histogram sorted by name, for
// exporters that persist the full distribution set (runstore).
func (r *Registry) AllHistograms() []*stats.Histogram {
	out := make([]*stats.Histogram, 0, len(r.hists))
	for _, k := range sortedKeys(r.hists) {
		out = append(out, r.hists[k])
	}
	return out
}

// AllSeries returns every registered cycle-windowed series sorted by
// name.
func (r *Registry) AllSeries() []*stats.Series {
	out := make([]*stats.Series, 0, len(r.series))
	for _, k := range sortedKeys(r.series) {
		out = append(out, r.series[k])
	}
	return out
}

// CounterValues returns a name → count snapshot of every counter.
func (r *Registry) CounterValues() map[string]uint64 {
	out := make(map[string]uint64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.N
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Fprint renders counters and gauges as a name/value table, then every
// histogram and series.
func (r *Registry) Fprint(w io.Writer) {
	if len(r.counters)+len(r.gauges) > 0 {
		fmt.Fprintln(w, "== telemetry counters ==")
		for _, k := range sortedKeys(r.counters) {
			fmt.Fprintf(w, "%-32s %12d\n", k, r.counters[k].N)
		}
		for _, k := range sortedKeys(r.gauges) {
			fmt.Fprintf(w, "%-32s %12g\n", k, r.gauges[k].V)
		}
		fmt.Fprintln(w)
	}
	for _, k := range sortedKeys(r.hists) {
		r.hists[k].Fprint(w)
	}
	for _, k := range sortedKeys(r.series) {
		r.series[k].Fprint(w)
	}
}
