package telemetry

import (
	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/mem"
	"chats/internal/stats"
)

// Options configure a Collector.
type Options struct {
	// Window is the cycle-window width of the time series (0 = 10 000).
	Window uint64
	// MaxEvents caps the retained structured-event buffer; aggregation
	// (metrics, hot lines, chain state) continues past the cap and the
	// exports report the number of dropped events. 0 keeps everything.
	MaxEvents int
}

// coreState is the per-core bookkeeping the Collector needs to turn the
// flat event stream into per-transaction measurements.
type coreState struct {
	inTx       bool
	beginCycle uint64
	attempt    int
	power      bool
	forwards   int // SpecResps sent by the current transaction
	depth      int // chain-depth estimate of the current transaction
}

// Collector consumes the machine's event stream (it implements
// machine.Tracer and machine.XTracer structurally) and aggregates it
// into metrics, a hot-line profile and chain topology, while retaining
// the raw events for the JSONL / Chrome exports.
//
// A Collector is per-run state and is NOT goroutine-safe: it mutates
// maps, slices and per-core bookkeeping on every event without locking.
// Attach each Collector to exactly one machine. Under the parallel
// sweep runner, build one Collector per cell (experiments.Params.Tracer
// is a factory for exactly this reason) — never share one across
// concurrently running simulations.
type Collector struct {
	Events  []Event
	Dropped uint64

	Reg *Registry

	hot   map[mem.Addr]*LineCounters
	cores []coreState

	chainEdges uint64
	maxDepth   int

	txCycles *stats.Histogram
	retries  *stats.Histogram
	vsbOcc   *stats.Histogram
	depth    *stats.Histogram
	fanOut   *stats.Histogram

	commits   *stats.Series
	aborts    *stats.Series
	forwards  *stats.Series
	conflicts *stats.Series
	nacks     *stats.Series

	opts Options
}

// New builds a Collector for a machine with the given core count.
func New(cores int, opts Options) *Collector {
	reg := NewRegistry(opts.Window)
	c := &Collector{
		Reg:   reg,
		hot:   make(map[mem.Addr]*LineCounters),
		cores: make([]coreState, cores),
		opts:  opts,

		txCycles: reg.Histogram("tx/cycles-per-commit", stats.ExpBounds(64, 2, 16)),
		retries:  reg.Histogram("tx/retries-per-commit", stats.LinearBounds(1, 1, 16)),
		vsbOcc:   reg.Histogram("vsb/occupancy", stats.LinearBounds(0, 1, 9)),
		depth:    reg.Histogram("chain/depth-at-forward", stats.LinearBounds(1, 1, 12)),
		fanOut:   reg.Histogram("chain/fanout-per-forwarder", stats.LinearBounds(1, 1, 12)),

		commits:   reg.Series("commits"),
		aborts:    reg.Series("aborts"),
		forwards:  reg.Series("forwards"),
		conflicts: reg.Series("conflicts"),
		nacks:     reg.Series("nack-retries"),
	}
	return c
}

func (c *Collector) record(e Event) {
	if c.opts.MaxEvents > 0 && len(c.Events) >= c.opts.MaxEvents {
		c.Dropped++
		return
	}
	c.Events = append(c.Events, e)
}

func (c *Collector) core(id int) *coreState {
	for id >= len(c.cores) { // tolerate cores discovered late (defensive)
		c.cores = append(c.cores, coreState{})
	}
	return &c.cores[id]
}

func (c *Collector) line(a mem.Addr) *LineCounters {
	a = a.Line()
	lc, ok := c.hot[a]
	if !ok {
		lc = &LineCounters{}
		c.hot[a] = lc
	}
	return lc
}

// endTx folds the per-transaction state into the histograms when an
// attempt finishes either way.
func (c *Collector) endTx(cs *coreState) {
	if cs.forwards > 0 {
		c.fanOut.Observe(uint64(cs.forwards))
	}
	cs.inTx = false
	cs.forwards = 0
	cs.depth = 0
}

// ---------- machine.Tracer ----------

func (c *Collector) TxBegin(cycle uint64, core, attempt int, power bool) {
	cs := c.core(core)
	cs.inTx = true
	cs.beginCycle = cycle
	cs.attempt = attempt
	cs.power = power
	cs.forwards = 0
	cs.depth = 0
	c.record(Event{Cycle: cycle, Kind: KindBegin, Core: core, Peer: -1, Attempt: attempt, Power: power})
}

func (c *Collector) TxCommit(cycle uint64, core int, consumed int) {
	cs := c.core(core)
	if cs.inTx {
		c.txCycles.Observe(cycle - cs.beginCycle)
		c.retries.Observe(uint64(cs.attempt))
	}
	c.commits.Add(cycle, 1)
	c.Reg.Counter("tx/commits").Inc()
	c.endTx(cs)
	c.record(Event{Cycle: cycle, Kind: KindCommit, Core: core, Peer: -1, Consumed: consumed})
}

func (c *Collector) TxAbort(cycle uint64, core int, cause htm.AbortCause) {
	c.aborts.Add(cycle, 1)
	c.Reg.Counter("tx/aborts/" + cause.String()).Inc()
	c.endTx(c.core(core))
	c.record(Event{Cycle: cycle, Kind: KindAbort, Core: core, Peer: -1, Cause: cause})
}

func (c *Collector) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	c.forwards.Add(cycle, 1)
	c.line(line).Forwards++
	c.chainEdges++
	// The producer's depth estimate propagates to the consumer exactly as
	// in ChainTracer.MaxChainDepth, but per live transaction, so the
	// distribution is not inflated by cores recycling across attempts.
	p, q := c.core(producer), c.core(requester)
	d := p.depth + 1
	if d > q.depth {
		q.depth = d
	}
	if q.depth > c.maxDepth {
		c.maxDepth = q.depth
	}
	c.depth.Observe(uint64(d))
	p.forwards++
	c.record(Event{Cycle: cycle, Kind: KindForward, Core: producer, Peer: requester,
		Line: line, HasLine: true, PiC: pic})
}

func (c *Collector) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC) {
	c.line(line).Consumes++
	c.record(Event{Cycle: cycle, Kind: KindConsume, Core: core, Peer: -1,
		Line: line, HasLine: true, PiC: pic})
}

func (c *Collector) Validate(cycle uint64, core int, line mem.Addr, ok bool) {
	lc := c.line(line)
	lc.Validations++
	if ok {
		lc.ValidationsOK++
	}
	c.record(Event{Cycle: cycle, Kind: KindValidate, Core: core, Peer: -1,
		Line: line, HasLine: true, OK: ok})
}

func (c *Collector) Fallback(cycle uint64, core int) {
	c.Reg.Counter("tx/fallbacks").Inc()
	c.record(Event{Cycle: cycle, Kind: KindFallback, Core: core, Peer: -1})
}

// ---------- machine.XTracer ----------

func (c *Collector) Conflict(cycle uint64, holder, requester int, line mem.Addr, kind coherence.ProbeKind, dec htm.ProbeDecision) {
	c.conflicts.Add(cycle, 1)
	lc := c.line(line)
	lc.Conflicts++
	switch dec {
	case htm.DecideAbort:
		lc.Aborts++
	case htm.DecideNack:
		lc.Nacks++
	}
	c.Reg.Counter("conflict/" + dec.String()).Inc()
	c.record(Event{Cycle: cycle, Kind: KindConflict, Core: holder, Peer: requester,
		Line: line, HasLine: true, Probe: kind, Decision: dec})
}

func (c *Collector) NackRetry(cycle uint64, core int, line mem.Addr) {
	c.nacks.Add(cycle, 1)
	c.line(line).NackRetries++
	c.record(Event{Cycle: cycle, Kind: KindNack, Core: core, Peer: -1, Line: line, HasLine: true})
}

func (c *Collector) VSBOccupancy(cycle uint64, core, occ int) {
	c.vsbOcc.Observe(uint64(occ))
	c.record(Event{Cycle: cycle, Kind: KindVSB, Core: core, Peer: -1, Occ: occ})
}

// ---------- machine.CMTracer ----------

// CMDecision counts one post-abort contention-manager verdict under
// "cm/wait", "cm/spec" or "cm/fallback" — the per-path breakdown the
// adaptive-manager drill-down reads. Counter-only: decisions are dense
// and carry no line, so they stay out of the retained event buffer.
func (c *Collector) CMDecision(cycle uint64, core int, act htm.CMAction) {
	c.Reg.Counter("cm/" + act.String()).Inc()
}

// ---------- machine.FaultTracer ----------

// FaultInjected records one injected fault (core is -1 for faults not
// attributable to a core, e.g. network jitter).
func (c *Collector) FaultInjected(cycle uint64, core int, kind string) {
	c.Reg.Counter("fault/" + kind).Inc()
	c.record(Event{Cycle: cycle, Kind: KindFault, Core: core, Peer: -1, Fault: kind})
}
