package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/mem"
)

// The Collector must keep satisfying the machine's tracer interfaces
// structurally — this package deliberately never imports internal/machine
// outside its tests, so these assertions are the only compile-time tie.
var (
	_ machine.Tracer      = (*Collector)(nil)
	_ machine.XTracer     = (*Collector)(nil)
	_ machine.FaultTracer = (*Collector)(nil)
)

// feedScenario drives a small synthetic event sequence through the
// Collector: core 0 forwards line 0x80 to core 1, which consumes,
// validates and commits; core 2 loses a conflict and aborts.
func feedScenario(c *Collector) {
	line := mem.Addr(0x80)
	c.TxBegin(100, 0, 1, false)
	c.TxBegin(110, 1, 2, false)
	c.TxBegin(120, 2, 1, false)

	c.Conflict(150, 0, 1, line, coherence.FwdGetX, htm.DecideSpec)
	c.Forward(150, 0, 1, line, coherence.PiCInit)
	c.Consume(160, 1, line, coherence.PiCInit)
	c.VSBOccupancy(160, 1, 1)

	c.Conflict(170, 0, 2, line, coherence.FwdGetX, htm.DecideAbort)
	c.TxAbort(175, 2, htm.CauseConflict)

	c.NackRetry(180, 2, line)

	c.TxCommit(200, 0, 0)
	c.Validate(210, 1, line, true)
	c.VSBOccupancy(210, 1, 0)
	c.TxCommit(220, 1, 1)
	c.Fallback(230, 2)
	c.FaultInjected(240, 2, "spurious")
	c.FaultInjected(250, -1, "jitter")
}

func TestCollectorAggregates(t *testing.T) {
	c := New(4, Options{Window: 100})
	feedScenario(c)

	if got := c.Reg.Counter("tx/commits").N; got != 2 {
		t.Errorf("commits = %d, want 2", got)
	}
	if got := c.Reg.Counter("tx/aborts/conflict").N; got != 1 {
		t.Errorf("conflict aborts = %d, want 1", got)
	}
	if got := c.Reg.Counter("conflict/spec").N; got != 1 {
		t.Errorf("spec conflicts = %d, want 1", got)
	}
	if got := c.Reg.Counter("tx/fallbacks").N; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	if got := c.Reg.Counter("fault/spurious").N + c.Reg.Counter("fault/jitter").N; got != 2 {
		t.Errorf("fault counters = %d, want 2", got)
	}

	// tx latencies: core 0 ran 100..200, core 1 ran 110..220.
	if c.txCycles.N != 2 || c.txCycles.Sum != 100+110 {
		t.Errorf("txCycles n=%d sum=%d, want 2/210", c.txCycles.N, c.txCycles.Sum)
	}
	// Both VSB samples (occupancy 1 then 0) observed.
	if c.vsbOcc.N != 2 {
		t.Errorf("vsb samples = %d, want 2", c.vsbOcc.N)
	}

	hot := c.HotLines(10)
	if len(hot) != 1 || hot[0].Line != 0x80 {
		t.Fatalf("hot lines = %+v, want single 0x80", hot)
	}
	h := hot[0]
	if h.Conflicts != 2 || h.Aborts != 1 || h.Forwards != 1 || h.Consumes != 1 ||
		h.ValidationsOK != 1 || h.NackRetries != 1 {
		t.Errorf("line counters = %+v", h.LineCounters)
	}

	ch := c.Chain()
	if ch.Edges != 1 || ch.MaxDepth != 1 || ch.CycleAborts != 0 {
		t.Errorf("chain report = %+v", ch)
	}

	// Windowed series: commits at cycles 200 and 220 share window 2.
	if s := c.Reg.Series("commits"); s.Bins[2] != 2 || s.Total() != 2 {
		t.Errorf("commit series bins = %v", s.Bins)
	}
}

func TestHotLinesOrderAndTies(t *testing.T) {
	c := New(2, Options{})
	// 0x100 engages more machinery than 0x40; 0x1c0 ties with 0x40 and
	// must sort after it (lower address first on ties).
	for i := 0; i < 3; i++ {
		c.Conflict(uint64(i), 0, 1, 0x100, coherence.FwdGetS, htm.DecideAbort)
	}
	c.Conflict(10, 0, 1, 0x40, coherence.FwdGetS, htm.DecideNack)
	c.Conflict(11, 0, 1, 0x1c0, coherence.FwdGetS, htm.DecideNack)
	hot := c.HotLines(0) // 0 = no cap
	if len(hot) != 3 || hot[0].Line != 0x100 || hot[1].Line != 0x40 || hot[2].Line != 0x1c0 {
		t.Errorf("order = %v", hot)
	}
	if top := c.HotLines(1); len(top) != 1 || top[0].Line != 0x100 {
		t.Errorf("top-1 = %v", top)
	}
}

func TestWriteJSONL(t *testing.T) {
	c := New(4, Options{})
	feedScenario(c)
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(c.Events)+1 {
		t.Fatalf("%d lines for %d events + header", len(lines), len(c.Events))
	}
	// The first line is the schema header that makes stored traces
	// self-describing.
	var hdr struct {
		Schema  string `json:"schema"`
		Events  int    `json:"events"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header not JSON: %v\n%s", err, lines[0])
	}
	if hdr.Schema != TraceSchema || hdr.Events != len(c.Events) || hdr.Dropped != 0 {
		t.Errorf("header = %+v, want schema %q with %d events", hdr, TraceSchema, len(c.Events))
	}
	// Every event line must be a standalone JSON object with the shared
	// fields.
	for i, ln := range lines[1:] {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		for _, k := range []string{"cycle", "kind", "core"} {
			if _, ok := m[k]; !ok {
				t.Errorf("line %d missing %q: %s", i, k, ln)
			}
		}
	}
	// Spot-check the exact rendering of a forward (field order is part of
	// the format contract — the golden test depends on it).
	want := `{"cycle":150,"kind":"forward","core":0,"peer":1,"line":"0x80","pic":15}`
	if lines[5] != want {
		t.Errorf("forward line = %s, want %s", lines[5], want)
	}
}

func TestJSONLDroppedMeta(t *testing.T) {
	c := New(4, Options{MaxEvents: 3})
	feedScenario(c)
	if len(c.Events) != 3 || c.Dropped == 0 {
		t.Fatalf("events=%d dropped=%d", len(c.Events), c.Dropped)
	}
	// Aggregation continues past the cap.
	if c.Reg.Counter("tx/commits").N != 2 {
		t.Error("metrics stopped at the event cap")
	}
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{"kind":"meta","dropped":`) {
		t.Errorf("missing dropped meta line:\n%s", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := New(3, Options{})
	feedScenario(c)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Tid  int            `json:"tid"`
			ID   uint64         `json:"id"`
			BP   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid trace_event JSON: %v", err)
	}
	byPh := map[string]int{}
	var slices, meta int
	for _, e := range out.TraceEvents {
		byPh[e.Ph]++
		switch e.Ph {
		case "M":
			meta++
			if e.Name != "thread_name" {
				t.Errorf("metadata name = %q", e.Name)
			}
		case "X":
			slices++
			if e.Dur == 0 {
				t.Errorf("slice %q has zero duration", e.Name)
			}
		}
	}
	if meta != 3 {
		t.Errorf("thread_name metadata = %d, want one per core", meta)
	}
	// 2 commits + 1 abort = 3 duration slices.
	if slices != 3 {
		t.Errorf("slices = %d, want 3", slices)
	}
	// The forward/consume pair must become a matched flow: one "s" start
	// and one "f" end sharing an id.
	if byPh["s"] != 1 || byPh["f"] != 1 {
		t.Fatalf("flow events = s:%d f:%d, want 1/1", byPh["s"], byPh["f"])
	}
	var sID, fID uint64
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "s":
			sID = e.ID
		case "f":
			fID = e.ID
			if e.BP != "e" {
				t.Errorf("flow end bp = %q, want e", e.BP)
			}
		}
	}
	if sID == 0 || sID != fID {
		t.Errorf("flow ids start=%d end=%d, want matching non-zero", sID, fID)
	}
	// Instants: conflicts, nack retry, fallback, two injected faults.
	if byPh["i"] != 2+1+1+2 {
		t.Errorf("instants = %d, want 6", byPh["i"])
	}
}

func TestRegistryReuseAndRender(t *testing.T) {
	r := NewRegistry(0)
	if r.Window() != 10_000 {
		t.Errorf("default window = %d", r.Window())
	}
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Error("Counter returned distinct instances for one name")
	}
	a.Add(3)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []uint64{1, 2}).Observe(1)
	r.Series("s").Add(5, 1)
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"telemetry counters", "x", "g", "== h ==", "== s ("} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMultiTracerFansOutToCollector(t *testing.T) {
	a := New(2, Options{})
	b := New(2, Options{})
	var sink bytes.Buffer
	mt := machine.MultiTracer{machine.WriterTracer{W: &sink}, a, b}
	var x machine.XTracer = mt // MultiTracer always offers the extended view
	x.TxBegin(10, 0, 1, false)
	x.Conflict(20, 0, 1, 0x80, coherence.FwdGetX, htm.DecideSpec)
	x.TxCommit(30, 0, 0)
	for name, c := range map[string]*Collector{"a": a, "b": b} {
		if c.Reg.Counter("tx/commits").N != 1 || c.Reg.Counter("conflict/spec").N != 1 {
			t.Errorf("collector %s missed fanned-out events", name)
		}
	}
	// The plain WriterTracer only sees the base Tracer events.
	if got := sink.String(); !strings.Contains(got, "commit") || strings.Contains(got, "conflict") {
		t.Errorf("writer saw: %s", got)
	}
}

func TestBankOccupancy(t *testing.T) {
	c := New(2, Options{})
	// 0x100 and 0x40/0x1c0: line 4 -> bank 0, lines 1 and 7 -> banks 1, 3.
	for i := 0; i < 3; i++ {
		c.Conflict(uint64(i), 0, 1, 0x100, coherence.FwdGetS, htm.DecideAbort)
	}
	c.Conflict(10, 0, 1, 0x40, coherence.FwdGetS, htm.DecideNack)
	c.Conflict(11, 0, 1, 0x1c0, coherence.FwdGetS, htm.DecideNack)
	lines, events := c.BankOccupancy(4)
	if lines[0] != 1 || lines[1] != 1 || lines[2] != 0 || lines[3] != 1 {
		t.Errorf("lines = %v", lines)
	}
	// Each conflict counts twice: once as a conflict, once as the
	// abort/nack it resolved to.
	if events[0] != 6 || events[1] != 2 || events[3] != 2 {
		t.Errorf("events = %v", events)
	}
	var buf strings.Builder
	c.WriteBankOccupancyReport(&buf, 4)
	if !strings.Contains(buf.String(), "4 banks, 3 tracked lines") {
		t.Errorf("report:\n%s", buf.String())
	}
}
