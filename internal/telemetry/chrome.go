package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// Perfetto and chrome://tracing load). Only the fields each phase needs
// are populated.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event container.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// flowKey matches a Forward to the Consume that accepted it: the
// requester core plus the line address.
type flowKey struct {
	core int
	line uint64
}

// WriteChromeTrace exports the run as Chrome trace_event JSON: one track
// (tid) per core, transaction attempts as duration slices named by their
// outcome, forwards as flow arrows from producer to consumer, and
// conflicts/nacks/fallbacks as instant markers. Timestamps are simulated
// cycles (the viewer displays them as microseconds).
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for tid := range c.cores {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("core %d", tid)},
		})
	}

	type open struct {
		cycle   uint64
		attempt int
		power   bool
	}
	begun := map[int]open{}
	flows := map[flowKey][]uint64{}
	var flowID uint64

	for _, e := range c.Events {
		switch e.Kind {
		case KindBegin:
			begun[e.Core] = open{cycle: e.Cycle, attempt: e.Attempt, power: e.Power}
		case KindCommit, KindAbort:
			b, ok := begun[e.Core]
			if !ok {
				continue
			}
			delete(begun, e.Core)
			name := "commit"
			args := map[string]any{"attempt": b.attempt}
			if e.Kind == KindAbort {
				name = "abort(" + e.Cause.String() + ")"
				args["cause"] = e.Cause.String()
			} else {
				args["consumed"] = e.Consumed
			}
			if b.power {
				args["power"] = true
			}
			dur := e.Cycle - b.cycle
			if dur == 0 {
				dur = 1 // zero-width slices vanish in the viewer
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Ts: b.cycle, Dur: dur, Pid: 0, Tid: e.Core,
				Cat: "tx", Args: args,
			})
		case KindForward:
			flowID++
			k := flowKey{core: e.Peer, line: uint64(e.Line)}
			flows[k] = append(flows[k], flowID)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "forward", Ph: "s", Ts: e.Cycle, Pid: 0, Tid: e.Core,
				Cat: "flow", ID: flowID,
				Args: map[string]any{"line": e.Line.String(), "to": e.Peer, "pic": int(e.PiC)},
			})
		case KindConsume:
			k := flowKey{core: e.Core, line: uint64(e.Line)}
			if ids := flows[k]; len(ids) > 0 {
				id := ids[0]
				flows[k] = ids[1:]
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "forward", Ph: "f", BP: "e", Ts: e.Cycle, Pid: 0, Tid: e.Core,
					Cat: "flow", ID: id,
					Args: map[string]any{"line": e.Line.String(), "pic": int(e.PiC)},
				})
			}
		case KindConflict:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "conflict(" + e.Decision.String() + ")", Ph: "i", Ts: e.Cycle,
				Pid: 0, Tid: e.Core, Cat: "conflict", S: "t",
				Args: map[string]any{"line": e.Line.String(), "requester": e.Peer, "probe": e.Probe.String()},
			})
		case KindNack:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "nack-retry", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: e.Core,
				Cat: "nack", S: "t", Args: map[string]any{"line": e.Line.String()},
			})
		case KindFallback:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "fallback-lock", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: e.Core,
				Cat: "fallback", S: "t",
			})
		case KindFault:
			tid := e.Core
			if tid < 0 {
				tid = 0
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "fault(" + e.Fault + ")", Ph: "i", Ts: e.Cycle, Pid: 0, Tid: tid,
				Cat: "fault", S: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
