package telemetry

import (
	"fmt"
	"io"
	"sort"

	"chats/internal/mem"
)

// LineCounters attributes contention events to one cache line.
type LineCounters struct {
	Conflicts     uint64 // conflicting probes that hit this line
	Aborts        uint64 // conflicts resolved requester-wins (a tx died here)
	Forwards      uint64 // SpecResps sent for this line
	Consumes      uint64 // SpecResps accepted into a VSB
	Validations   uint64 // validation responses inspected
	ValidationsOK uint64 // entries that left the VSB validated
	Nacks         uint64 // conflicts resolved requester-stalls
	NackRetries   uint64 // demand accesses re-issued after a nack
}

// total orders lines by how much contention machinery they engaged.
func (l *LineCounters) total() uint64 {
	return l.Conflicts + l.Aborts + l.Forwards + l.Consumes + l.Nacks + l.NackRetries
}

// HotLine pairs a line address with its counters.
type HotLine struct {
	Line mem.Addr
	LineCounters
}

// HotLines returns the top-k contended lines, most contended first
// (ties break on the lower address so output is deterministic).
func (c *Collector) HotLines(k int) []HotLine {
	all := make([]HotLine, 0, len(c.hot))
	for a, lc := range c.hot {
		all = append(all, HotLine{Line: a, LineCounters: *lc})
	}
	sort.Slice(all, func(i, j int) bool {
		ti, tj := all[i].total(), all[j].total()
		if ti != tj {
			return ti > tj
		}
		return all[i].Line < all[j].Line
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// TrackedLines returns how many distinct lines saw at least one
// attributed event.
func (c *Collector) TrackedLines() int { return len(c.hot) }

// BankOccupancy folds the per-line profile onto an address-interleaved
// directory of the given bank count (the line-granular hash the sharded
// directory uses): lines[b] is how many tracked lines bank b owns,
// events[b] how much contention machinery they engaged. The skew tells
// whether the workload's storm spreads across banks (sharding buys
// parallel coverage) or pins one bank.
func (c *Collector) BankOccupancy(banks int) (lines []int, events []uint64) {
	lines = make([]int, banks)
	events = make([]uint64, banks)
	for a, lc := range c.hot {
		b := mem.LineShard(a, banks)
		lines[b]++
		events[b] += lc.total()
	}
	return lines, events
}

// WriteBankOccupancyReport renders the per-bank fold as a short table.
func (c *Collector) WriteBankOccupancyReport(w io.Writer, banks int) {
	lines, events := c.BankOccupancy(banks)
	fmt.Fprintf(w, "== directory bank occupancy (%d banks, %d tracked lines) ==\n", banks, len(c.hot))
	fmt.Fprintf(w, "%4s %7s %10s\n", "bank", "lines", "events")
	for b := 0; b < banks; b++ {
		fmt.Fprintf(w, "%4d %7d %10d\n", b, lines[b], events[b])
	}
	fmt.Fprintln(w)
}

// WriteHotLineReport renders the top-k profile as a fixed-width table.
func (c *Collector) WriteHotLineReport(w io.Writer, k int) {
	top := c.HotLines(k)
	fmt.Fprintf(w, "== hot lines (top %d of %d tracked) ==\n", len(top), len(c.hot))
	fmt.Fprintf(w, "%12s %9s %7s %8s %8s %9s %7s %7s\n",
		"line", "conflicts", "aborts", "forwards", "consumes", "validated", "nacks", "retries")
	for _, h := range top {
		fmt.Fprintf(w, "%12s %9d %7d %8d %8d %9d %7d %7d\n",
			h.Line.String(), h.Conflicts, h.Aborts, h.Forwards, h.Consumes,
			h.ValidationsOK, h.Nacks, h.NackRetries)
	}
	fmt.Fprintln(w)
}
