package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fullRecord populates every field so the round-trip test covers the
// whole schema.
func fullRecord(id uint64) Record {
	return Record{
		ID: id,
		Meta: Meta{
			Commit:       "abc123def456",
			TimestampUTC: "2026-08-07T12:00:00Z",
			GoVersion:    "go1.24.0",
		},
		Seed:        42,
		System:      "chats",
		Workload:    "kmeans-h",
		Config:      "r8-v8-i50-f0-n0-pfalse",
		Size:        "tiny",
		Source:      "test",
		SimCycles:   123_456_789_012,
		WallclockNS: 9_876_543_210,
		Allocs:      55_555,
		Counters: map[string]uint64{
			"commits": 100, "aborts": 17, "fallbacks": 2, "flits": 9999,
		},
		ByCause: map[string]uint64{"conflict": 12, "capacity": 5},
		Hists: []Hist{{
			Name:   "tx/cycles-per-commit",
			Bounds: []uint64{64, 128, 256},
			Counts: []uint64{1, 2, 3, 4},
			N:      10, Sum: 2048, Max: 1999,
		}},
		Series: []TimeSeries{{
			Name: "commits", Window: 10_000, Bins: []uint64{5, 0, 9},
		}},
		HotLines: []HotLine{{
			Line: "0x1c0", Conflicts: 7, Aborts: 3, Forwards: 2, Consumes: 2,
			Validations: 2, ValidationsOK: 1, Nacks: 4, NackRetries: 6,
		}},
		Chain: &Chain{Edges: 9, MaxDepth: 3, StallNacks: 4, CycleAborts: 1},
	}
}

// TestRecordRoundTrip pins the acceptance criterion: every recorded
// field survives encode→decode bit-exactly.
func TestRecordRoundTrip(t *testing.T) {
	want := fullRecord(7)
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestStoreAppendReopen checks the basic persistence contract: what was
// appended is what a fresh Open indexes, IDs keep increasing across
// reopen, and the full record content survives the disk round trip.
func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 5; i++ {
		r := fullRecord(0)
		r.Seed = uint64(i)
		id, err := s.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		r.ID = id
		want = append(want, r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(fullRecord(0)); err == nil {
		t.Error("Append after Close succeeded")
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Runs(Query{})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reopened store drifted:\ngot  %+v\nwant %+v", got, want)
	}
	// IDs continue where the previous generation stopped.
	id, err := s2.Append(fullRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if wantID := want[len(want)-1].ID + 1; id != wantID {
		t.Errorf("ID after reopen = %d, want %d", id, wantID)
	}
}

// TestStoreSegmentRotation forces tiny segments and checks records span
// multiple files while queries see one continuous store.
func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		r := fullRecord(0)
		r.Seed = uint64(i)
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", segs)
	}
	s2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != n {
		t.Errorf("Len after rotation+reopen = %d, want %d", got, n)
	}
}

// TestQueryAndTrends exercises filtering and the cross-commit trend
// aggregation (commit order = first-recorded, seeds folded by mean).
func TestQueryAndTrends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	add := func(commit, system, workload string, seed, cycles uint64) {
		r := Record{
			Meta:      Meta{Commit: commit},
			Seed:      seed,
			System:    system,
			Workload:  workload,
			SimCycles: cycles,
			Counters:  map[string]uint64{"commits": 90, "aborts": 10},
		}
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	add("c1", "chats", "cadd", 1, 100)
	add("c1", "chats", "cadd", 2, 300) // second seed, same commit → mean 200
	add("c1", "baseline", "cadd", 1, 400)
	add("c2", "chats", "cadd", 1, 150)

	if got := len(s.Runs(Query{System: "chats"})); got != 3 {
		t.Errorf("Query{System:chats} = %d records, want 3", got)
	}
	if got := len(s.Runs(Query{Commit: "c2"})); got != 1 {
		t.Errorf("Query{Commit:c2} = %d records, want 1", got)
	}
	if got := s.Runs(Query{System: "chats", Limit: 1}); len(got) != 1 || got[0].SimCycles != 150 {
		t.Errorf("Limit=1 should keep the newest record, got %+v", got)
	}
	if got := s.Commits(); !reflect.DeepEqual(got, []string{"c1", "c2"}) {
		t.Errorf("Commits() = %v, want first-recorded order [c1 c2]", got)
	}

	trends := s.Trends(Query{System: "chats"})
	if len(trends) != 1 {
		t.Fatalf("Trends = %d groups, want 1: %+v", len(trends), trends)
	}
	tr := trends[0]
	if tr.System != "chats" || tr.Workload != "cadd" || len(tr.Points) != 2 {
		t.Fatalf("trend = %+v, want chats/cadd with 2 points", tr)
	}
	if tr.Points[0].Commit != "c1" || tr.Points[0].SimCycles != 200 || tr.Points[0].Runs != 2 {
		t.Errorf("point 0 = %+v, want commit c1 mean 200 over 2 runs", tr.Points[0])
	}
	if tr.Points[1].Commit != "c2" || tr.Points[1].SimCycles != 150 {
		t.Errorf("point 1 = %+v, want commit c2 with 150 cycles", tr.Points[1])
	}
	if rate := tr.Points[0].AbortRate; rate != 0.1 {
		t.Errorf("abort rate = %v, want 0.1", rate)
	}
}

// TestImportBench loads a chats-bench/v1 document and checks cells
// become queryable records with the file name as the commit fallback.
func TestImportBench(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	doc := `{
  "schema": "chats-bench/v1",
  "workers": 1, "size": "small", "runs": 2, "total_wallclock_ns": 5,
  "cells": [
    {"cell": "baseline/cadd", "simcycles": 100, "wallclock_ns": 10, "allocs": 3},
    {"cell": "chats/llb-h/r8-v8", "simcycles": 200, "wallclock_ns": 20, "allocs": 4}
  ]
}`
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := s.ImportBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s.Len() != 2 {
		t.Fatalf("imported %d records, store has %d, want 2", n, s.Len())
	}
	recs := s.Runs(Query{System: "chats"})
	if len(recs) != 1 {
		t.Fatalf("chats records = %+v, want 1", recs)
	}
	r := recs[0]
	if r.Workload != "llb-h" || r.Config != "r8-v8" || r.SimCycles != 200 {
		t.Errorf("imported cell parsed as %+v", r)
	}
	if r.Commit != "BENCH_test" || r.Source != "import:BENCH_test.json" {
		t.Errorf("import meta = commit %q source %q", r.Commit, r.Source)
	}

	// A v2 document's own header beats the filename fallback.
	doc2 := `{
  "schema": "chats-bench/v2",
  "commit": "deadbeef", "timestamp_utc": "2026-08-07T00:00:00Z", "go_version": "go1.24.0",
  "workers": 4, "size": "small", "runs": 1, "total_wallclock_ns": 5,
  "cells": [{"cell": "power/cadd", "simcycles": 1, "wallclock_ns": 1, "allocs": 1}]
}`
	path2 := filepath.Join(t.TempDir(), "BENCH_v2.json")
	if err := os.WriteFile(path2, []byte(doc2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportBench(path2); err != nil {
		t.Fatal(err)
	}
	recs = s.Runs(Query{System: "power"})
	if len(recs) != 1 || recs[0].Commit != "deadbeef" || recs[0].GoVersion != "go1.24.0" {
		t.Errorf("v2 import meta = %+v", recs)
	}

	if got := s.Commits(); !reflect.DeepEqual(got, []string{"BENCH_test", "deadbeef"}) {
		t.Errorf("commits = %v, want [BENCH_test deadbeef]", got)
	}
}

// TestGetByID covers the drill-down lookup.
func TestGetByID(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Append(fullRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.Get(id)
	if !ok || r.System != "chats" || r.Chain == nil {
		t.Errorf("Get(%d) = %+v, %v", id, r, ok)
	}
	if _, ok := s.Get(id + 99); ok {
		t.Error("Get of unknown ID succeeded")
	}
}

// TestOpenEmptyAndMissingDir covers the create-on-open path.
func TestOpenEmptyAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("fresh store Len = %d", s.Len())
	}
	if _, err := s.Append(Record{System: "chats", Workload: "cadd"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-000001.jsonl")); err != nil {
		t.Errorf("segment file missing: %v", err)
	}
}

// TestRecorderStampsMeta checks the callback the CLIs hand to
// experiments.Params.Recorder.
func TestRecorderStampsMeta(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	meta := Meta{Commit: "feed", TimestampUTC: "2026-08-07T01:02:03Z", GoVersion: "go1.24.0"}
	rec := s.Recorder(meta, "experiments")
	for i := 0; i < 3; i++ {
		rec(Record{System: "chats", Workload: fmt.Sprintf("w%d", i)})
	}
	runs := s.Runs(Query{Source: "experiments"})
	if len(runs) != 3 {
		t.Fatalf("recorded %d runs, want 3", len(runs))
	}
	for _, r := range runs {
		if r.Meta != meta {
			t.Errorf("meta not stamped: %+v", r.Meta)
		}
	}
}
