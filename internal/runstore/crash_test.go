package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// writeRuns appends n minimal records and returns what the store holds.
func writeRuns(t *testing.T, dir string, n int) []Record {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r := fullRecord(0)
		r.Seed = uint64(i)
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Runs(Query{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return segs[len(segs)-1]
}

// TestCrashRecoveryTornTail is the issue's crash scenario: a segment
// truncated mid-record (as an interrupted append would leave it) must
// reopen cleanly with the torn tail dropped, every prior run intact,
// and the file physically truncated back to the last record boundary.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	want := writeRuns(t, dir, 6)

	// Tear the tail: chop the last record in half, no trailing newline.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := bytes.LastIndexByte(bytes.TrimRight(data, "\n"), '\n') + 1
	cut := lastStart + (len(data)-lastStart)/2
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	got := s.Runs(Query{})
	if !reflect.DeepEqual(got, want[:5]) {
		t.Errorf("recovered records drifted:\ngot  %d records %+v\nwant %d records", len(got), got, 5)
	}
	// The torn bytes must be gone from disk so the next append starts at
	// a clean record boundary.
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(after)) != int64(lastStart) {
		t.Errorf("segment is %d bytes after recovery, want %d (torn tail truncated)", len(after), lastStart)
	}
	// Appends after recovery reuse the freed ID and persist normally.
	id, err := s.Append(fullRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if wantID := want[4].ID + 1; id != wantID {
		t.Errorf("post-recovery ID = %d, want %d", id, wantID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 6 {
		t.Errorf("store holds %d records after recovery+append+reopen, want 6", s2.Len())
	}
}

// TestCrashRecoveryTornJSONWithNewline covers the other tear shape: a
// partially-flushed final line that happens to end in a newline but is
// not valid JSON.
func TestCrashRecoveryTornJSONWithNewline(t *testing.T) {
	dir := t.TempDir()
	want := writeRuns(t, dir, 3)
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":99,"sys` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn JSON line: %v", err)
	}
	defer s.Close()
	if got := s.Runs(Query{}); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered %d records, want %d intact", len(got), len(want))
	}
}

// TestCorruptionMidSegmentIsAnError distinguishes recoverable tails
// from real corruption: garbage in the middle of a segment must refuse
// to open, not silently drop data.
func TestCorruptionMidSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	writeRuns(t, dir, 4)
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Smash bytes inside the second record.
	lines := bytes.SplitAfter(data, []byte("\n"))
	copy(lines[1][4:], []byte("XXXX"))
	if err := os.WriteFile(seg, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded on a segment with mid-file corruption")
	}
}

// TestConcurrentWriters hammers Append from many goroutines (run under
// -race in CI): every record must land exactly once with a unique ID,
// and the result must replay identically from disk.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 4096}) // small: rotate under load
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := fullRecord(0)
				r.Seed = uint64(w*1000 + i)
				if _, err := s.Append(r); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers must see consistent snapshots while writes land.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = s.Runs(Query{System: "chats"})
				_ = s.Trends(Query{})
			}
		}()
	}
	wg.Wait()
	const total = writers * perWriter
	if s.Len() != total {
		t.Fatalf("store holds %d records, want %d", s.Len(), total)
	}
	ids := make(map[uint64]bool, total)
	seeds := make(map[uint64]bool, total)
	for _, r := range s.Runs(Query{}) {
		if ids[r.ID] {
			t.Fatalf("duplicate ID %d", r.ID)
		}
		ids[r.ID] = true
		seeds[r.Seed] = true
	}
	if len(seeds) != total {
		t.Errorf("%d distinct seeds recorded, want %d", len(seeds), total)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != total {
		t.Errorf("reopened store holds %d records, want %d", s2.Len(), total)
	}
}
