package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options tune a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = 8 MiB). Rotation bounds the work a torn-tail recovery
	// scan has to redo and keeps individual files manageable.
	SegmentBytes int64
}

const defaultSegmentBytes = 8 << 20

// Store is the embedded run database: append-only JSONL segments on
// disk plus a full in-memory index. All methods are safe for concurrent
// use; appends are serialized, queries return copies of the index
// entries (the nested slices/maps are shared and must be treated as
// read-only by callers).
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	seg     *os.File // active segment (nil after Close)
	segSize int64
	segIdx  int
	nextID  uint64
	recs    []Record // insertion == ID order
	closed  bool
}

// Open opens (creating if needed) the store directory and replays every
// segment into the in-memory index. A torn final record — the only
// corruption a crash mid-append can leave behind — is truncated away;
// corruption anywhere else is reported as an error.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{dir: dir, opt: opt}
	names, err := s.segments()
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		// Only the newest segment can legally carry a torn tail: older
		// segments were sealed by rotation.
		if err := s.replay(name, i == len(names)-1); err != nil {
			return nil, err
		}
	}
	if len(names) > 0 {
		last := names[len(names)-1]
		fmt.Sscanf(filepath.Base(last), "seg-%06d.jsonl", &s.segIdx)
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
		s.seg, s.segSize = f, st.Size()
	}
	for i := range s.recs {
		if s.recs[i].ID >= s.nextID {
			s.nextID = s.recs[i].ID + 1
		}
	}
	return s, nil
}

// segments lists the segment files in name (= creation) order.
func (s *Store) segments() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// replay decodes one segment into the index. With truncate set, a torn
// tail record (no trailing newline, or a final line that is not valid
// JSON) is dropped and the file is truncated back to the last good
// record boundary.
func (s *Store) replay(path string, truncate bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	good := int64(0) // offset just past the last fully-decoded record
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn: no newline terminator
		}
		line := rest[:nl]
		var r Record
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &r); err != nil {
				if truncate && int64(nl+1) == int64(len(rest)) {
					break // torn final line (partial flush that happened to end in \n)
				}
				return fmt.Errorf("runstore: %s: corrupt record at offset %d: %w",
					path, good, err)
			}
			s.recs = append(s.recs, r)
		}
		good += int64(nl + 1)
		rest = rest[nl+1:]
	}
	if int64(len(data)) > good {
		if !truncate {
			return fmt.Errorf("runstore: %s: torn record in sealed segment at offset %d", path, good)
		}
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("runstore: truncating torn tail of %s: %w", path, err)
		}
	}
	return nil
}

// Append assigns the record an ID, persists it to the active segment
// and indexes it. The write is flushed to the OS before Append returns,
// so a crash can tear at most the record being appended.
func (s *Store) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("runstore: store is closed")
	}
	if s.seg == nil || s.segSize >= s.opt.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	r.ID = s.nextID
	line, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.seg.Write(line); err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	s.segSize += int64(len(line))
	s.nextID++
	s.recs = append(s.recs, r)
	return r.ID, nil
}

// rotateLocked seals the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if s.seg != nil {
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	s.segIdx++
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.jsonl", s.segIdx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.seg, s.segSize = f, 0
	return nil
}

// Close seals the active segment. Further Appends fail; queries keep
// working from the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.seg == nil {
		return nil
	}
	err := s.seg.Close()
	s.seg = nil
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Query filters Runs. Zero-value fields match everything.
type Query struct {
	Commit   string
	System   string
	Workload string
	Source   string
	// Limit keeps only the newest N matches (0 = all).
	Limit int
}

func (q Query) matches(r *Record) bool {
	return (q.Commit == "" || q.Commit == r.Commit) &&
		(q.System == "" || q.System == r.System) &&
		(q.Workload == "" || q.Workload == r.Workload) &&
		(q.Source == "" || q.Source == r.Source)
}

// Runs returns the matching records in ID (= insertion) order.
func (s *Store) Runs(q Query) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for i := range s.recs {
		if q.matches(&s.recs[i]) {
			out = append(out, s.recs[i])
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// Get returns the record with the given ID.
func (s *Store) Get(id uint64) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.recs {
		if s.recs[i].ID == id {
			return s.recs[i], true
		}
	}
	return Record{}, false
}

// Commits returns the distinct commits in first-recorded order — the
// x-axis of every trend view.
func (s *Store) Commits() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return commitsLocked(s.recs)
}

func commitsLocked(recs []Record) []string {
	var out []string
	seen := make(map[string]bool)
	for i := range recs {
		if c := recs[i].Commit; !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// TrendPoint aggregates every record of one commit within a
// (system, workload) group: arithmetic means of the cost fields, so
// multi-seed cells fold into one point.
type TrendPoint struct {
	Commit       string  `json:"commit"`
	TimestampUTC string  `json:"timestamp_utc,omitempty"`
	Runs         int     `json:"runs"`
	SimCycles    float64 `json:"simcycles"`
	WallclockNS  float64 `json:"wallclock_ns"`
	Allocs       float64 `json:"allocs"`
	AbortRate    float64 `json:"abort_rate"`
}

// Trend is the cross-commit series of one (system, workload) group.
type Trend struct {
	System   string       `json:"system"`
	Workload string       `json:"workload"`
	Points   []TrendPoint `json:"points"`
}

// Trends groups the store by (system, workload) and, within each group,
// orders one aggregated point per commit in first-recorded order.
// Groups come back sorted by system then workload so output is
// deterministic.
func (s *Store) Trends(q Query) []Trend {
	s.mu.Lock()
	defer s.mu.Unlock()
	commitOrder := commitsLocked(s.recs)
	type group struct {
		byCommit map[string][]*Record
	}
	groups := make(map[[2]string]*group)
	for i := range s.recs {
		r := &s.recs[i]
		if !q.matches(r) {
			continue
		}
		gk := [2]string{r.System, r.Workload}
		g, ok := groups[gk]
		if !ok {
			g = &group{byCommit: make(map[string][]*Record)}
			groups[gk] = g
		}
		g.byCommit[r.Commit] = append(g.byCommit[r.Commit], r)
	}
	keys := make([][2]string, 0, len(groups))
	for gk := range groups {
		keys = append(keys, gk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Trend, 0, len(keys))
	for _, gk := range keys {
		g := groups[gk]
		tr := Trend{System: gk[0], Workload: gk[1]}
		for _, c := range commitOrder {
			recs := g.byCommit[c]
			if len(recs) == 0 {
				continue
			}
			p := TrendPoint{Commit: c, Runs: len(recs), TimestampUTC: recs[0].TimestampUTC}
			var aborts, execs uint64
			for _, r := range recs {
				p.SimCycles += float64(r.SimCycles)
				p.WallclockNS += float64(r.WallclockNS)
				p.Allocs += float64(r.Allocs)
				aborts += r.counter("aborts")
				execs += r.counter("aborts") + r.counter("commits")
			}
			n := float64(len(recs))
			p.SimCycles /= n
			p.WallclockNS /= n
			p.Allocs /= n
			if execs > 0 {
				p.AbortRate = float64(aborts) / float64(execs)
			}
			tr.Points = append(tr.Points, p)
		}
		out = append(out, tr)
	}
	return out
}

// Recorder returns a per-run callback that stamps meta and source onto
// each record and appends it — the shape experiments.Params.Recorder
// and the CLI `-store` wiring expect. Append failures are reported on
// stderr rather than aborting the producing run: losing one database
// row must not kill a half-finished sweep.
func (s *Store) Recorder(meta Meta, source string) func(Record) {
	return func(r Record) {
		r.Meta = meta
		r.Source = source
		if _, err := s.Append(r); err != nil {
			fmt.Fprintf(os.Stderr, "runstore: dropping record for %s/%s: %v\n", r.System, r.Workload, err)
		}
	}
}
