package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// benchDoc mirrors the chats-bench file layout without importing
// internal/experiments (which itself depends on runstore). v1 files
// carry no header meta; v2 adds commit/timestamp_utc/go_version.
type benchDoc struct {
	Schema       string `json:"schema"`
	Commit       string `json:"commit"`
	TimestampUTC string `json:"timestamp_utc"`
	GoVersion    string `json:"go_version"`
	Workers      int    `json:"workers"`
	Size         string `json:"size"`
	Cells        []struct {
		Cell         string `json:"cell"`
		SimCycles    uint64 `json:"simcycles"`
		WallclockNS  int64  `json:"wallclock_ns"`
		Allocs       uint64 `json:"allocs"`
		WaveEvents   uint64 `json:"wave_events"`
		Waves        uint64 `json:"waves"`
		SerialEvents uint64 `json:"serial_events"`
	} `json:"cells"`
}

// ImportBench loads a chats-bench/v1 or /v2 trajectory file and appends
// one record per cell, so committed BENCH_*.json history joins the
// cross-commit trend views. For v1 files (no header meta) the commit
// defaults to the file's base name; v2 headers win over the fallback.
// Returns the number of records appended.
func (s *Store) ImportBench(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("runstore: %s: %w", path, err)
	}
	if doc.Schema != "chats-bench/v1" && doc.Schema != "chats-bench/v2" {
		return 0, fmt.Errorf("runstore: %s: unsupported schema %q (want chats-bench/v1 or /v2)", path, doc.Schema)
	}
	meta := Meta{Commit: doc.Commit, TimestampUTC: doc.TimestampUTC, GoVersion: doc.GoVersion}
	if meta.Commit == "" {
		meta.Commit = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	source := "import:" + filepath.Base(path)
	n := 0
	for _, c := range doc.Cells {
		system, workload, config := splitCell(c.Cell)
		r := Record{
			Meta:         meta,
			System:       system,
			Workload:     workload,
			Config:       config,
			Size:         doc.Size,
			Source:       source,
			SimCycles:    c.SimCycles,
			WallclockNS:  c.WallclockNS,
			Allocs:       c.Allocs,
			WaveEvents:   c.WaveEvents,
			Waves:        c.Waves,
			SerialEvents: c.SerialEvents,
		}
		if _, err := s.Append(r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// splitCell decomposes a chats-bench cell name
// ("system/workload[/traits][/seed=N]") into its identity parts.
func splitCell(cell string) (system, workload, config string) {
	parts := strings.SplitN(cell, "/", 3)
	system = parts[0]
	if len(parts) > 1 {
		workload = parts[1]
	}
	if len(parts) > 2 {
		config = parts[2]
	}
	return system, workload, config
}
