package runstore

import (
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/telemetry"
)

// The adapters in this file are the only runstore code that knows about
// the simulator's own types; the storage engine itself is plain
// stdlib + JSON so the on-disk format stays self-describing.

// FromStats builds the Record for one completed run: the RunStats
// counters flattened into the Counters/ByCause maps plus the cost
// fields measured around the run. system is the canonical kind string
// ("baseline", "chats", ...) rather than RunStats.System's display name,
// so store keys line up with chats-bench cell names. Meta, Source and
// ID are stamped later (Store.Recorder / Store.Append).
func FromStats(st machine.RunStats, system string, seed uint64, config, size string, wallclockNS int64, allocs uint64) Record {
	return Record{
		Seed:        seed,
		System:      system,
		Workload:    st.Workload,
		Config:      config,
		Size:        size,
		SimCycles:   st.Cycles,
		WallclockNS: wallclockNS,
		Allocs:      allocs,
		Counters: map[string]uint64{
			"commits":              st.Commits,
			"aborts":               st.Aborts,
			"fallbacks":            st.Fallbacks,
			"power_acqs":           st.PowerAcqs,
			"conflicted_committed": st.ConflictedCommitted,
			"conflicted_aborted":   st.ConflictedAborted,
			"forwarder_committed":  st.ForwarderCommitted,
			"forwarder_aborted":    st.ForwarderAborted,
			"consumer_committed":   st.ConsumerCommitted,
			"consumer_aborted":     st.ConsumerAborted,
			"spec_resps_sent":      st.SpecRespsSent,
			"spec_resps_consumed":  st.SpecRespsConsumed,
			"validations":          st.Validations,
			"validations_ok":       st.ValidationsOK,
			"flits":                st.Flits,
			"messages":             st.Messages,
			"l1_hits":              st.L1Hits,
			"l1_misses":            st.L1Misses,
			"nack_retries":         st.NackRetries,
			"faults_injected":      st.FaultsInjected,
			"fallback_stm_commits": st.FallbackSTMCommits,
			"fallback_stm_retries": st.FallbackSTMRetries,
			"fallback_elide_exts":  st.FallbackElideExtends,
			"fallback_body_cycles": st.FallbackBodyCycles,
			"cm_waits":             st.CMWaits,
			"cm_specs":             st.CMSpecs,
			"cm_fallbacks":         st.CMFallbacks,
			"cm_hot_nacks":         st.CMHotNacks,
		},
		ByCause: byCause(st),
	}
}

// StampEngine records which engine the producing run used: workers <= 1
// is the serial engine, anything above is the intra-run parallel
// executor with that many workers.
func (r *Record) StampEngine(workers int) {
	if workers <= 1 {
		r.EngineMode = "serial"
		r.IntraWorkers = 1
		return
	}
	r.EngineMode = "parallel"
	r.IntraWorkers = workers
}

// StampDirBanks records the directory bank count of the producing run;
// counts <= 1 are normalized to 1 so the monolithic and single-bank
// directories stamp identically.
func (r *Record) StampDirBanks(banks int) {
	if banks <= 1 {
		banks = 1
	}
	r.DirBanks = banks
}

// StampWaves records the producing run's parallel-coverage counters
// (machine.WaveStats / chats.WaveInfo): total fired events, waves, and
// serial-domain events. Scheduling structure, not simulation results —
// stored for the dashboard's wave-width drill-down, never compared by
// the equivalence oracles.
func (r *Record) StampWaves(events, waves, serial uint64) {
	r.WaveEvents = events
	r.Waves = waves
	r.SerialEvents = serial
}

// byCause names the non-zero abort causes (cause 0 is "none").
func byCause(st machine.RunStats) map[string]uint64 {
	var m map[string]uint64
	for c := 1; c < htm.NumCauses; c++ {
		if st.ByCause[c] == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]uint64)
		}
		m[htm.AbortCause(c).String()] = st.ByCause[c]
	}
	return m
}

// AttachTelemetry folds a run's collector into the record: every
// registered histogram and cycle-windowed series, the top-k hot lines
// and the chain-topology summary — the same reports the CLI renders as
// text, persisted for the dashboard drill-downs.
func AttachTelemetry(r *Record, col *telemetry.Collector, topK int) {
	for _, h := range col.Reg.AllHistograms() {
		r.Hists = append(r.Hists, Hist{
			Name:   h.Name,
			Bounds: append([]uint64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			N:      h.N,
			Sum:    h.Sum,
			Max:    h.Max,
		})
	}
	for _, sr := range col.Reg.AllSeries() {
		r.Series = append(r.Series, TimeSeries{
			Name:   sr.Name,
			Window: sr.Window,
			Bins:   append([]uint64(nil), sr.Bins...),
		})
	}
	for _, h := range col.HotLines(topK) {
		r.HotLines = append(r.HotLines, HotLine{
			Line:          h.Line.String(),
			Conflicts:     h.Conflicts,
			Aborts:        h.Aborts,
			Forwards:      h.Forwards,
			Consumes:      h.Consumes,
			Validations:   h.Validations,
			ValidationsOK: h.ValidationsOK,
			Nacks:         h.Nacks,
			NackRetries:   h.NackRetries,
		})
	}
	ch := col.Chain()
	r.Chain = &Chain{
		Edges:       ch.Edges,
		MaxDepth:    ch.MaxDepth,
		StallNacks:  ch.StallNacks,
		CycleAborts: ch.CycleAborts,
	}
}
