// Package runstore is the simulator's embedded run database: a
// zero-external-dependency, append-only store that gives every sweep
// cell, bench run, fuzz campaign and fault soak a permanent, queryable
// home keyed by (commit, seed, config, system, workload).
//
// On disk a store is a directory of JSONL segment files
// (seg-000001.jsonl, ...), one JSON record per line, appended and
// flushed per run — recording happens per completed simulation, never
// per event, so it adds nothing to the simulation hot path. Opening a
// store replays every segment into an in-memory index; a torn tail
// record (the only corruption a crash mid-append can produce) is
// detected and truncated away, so the store always reopens cleanly with
// every fully-written run intact.
package runstore

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Meta identifies the build a batch of records was produced by. The
// same stamp is shared by every record of one CLI invocation.
type Meta struct {
	// Commit is the VCS revision the binary was built from (the
	// cross-commit trend axis).
	Commit string `json:"commit"`
	// TimestampUTC is the RFC 3339 recording time.
	TimestampUTC string `json:"timestamp_utc"`
	// GoVersion is runtime.Version() of the recording process.
	GoVersion string `json:"go_version"`
}

// NowMeta stamps the current commit, wall-clock time and Go version.
func NowMeta() Meta {
	return Meta{
		Commit:       CurrentCommit(),
		TimestampUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
	}
}

// CurrentCommit resolves the commit label for new records: the
// CHATS_COMMIT environment variable if set (CI pins it), else git
// rev-parse, else "unknown". Never fails — an unlabelled record beats a
// lost one.
func CurrentCommit() string {
	if c := strings.TrimSpace(os.Getenv("CHATS_COMMIT")); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err == nil {
		if c := strings.TrimSpace(string(out)); c != "" {
			return c
		}
	}
	return "unknown"
}

// Key is the identity a run is stored and queried under.
type Key struct {
	Commit   string `json:"commit"`
	Seed     uint64 `json:"seed"`
	Config   string `json:"config"`
	System   string `json:"system"`
	Workload string `json:"workload"`
}

// Record is one persisted run. The flat cost fields (SimCycles,
// WallclockNS, Allocs) mirror the chats-bench cell schema; Counters and
// ByCause carry the full RunStats breakdown; the optional telemetry
// fields (Hists, Series, HotLines, Chain) hold the drill-down reports
// when a run was recorded with a collector attached.
//
// Every field round-trips bit-exactly through the JSONL encoding
// (pinned by TestRecordRoundTrip).
type Record struct {
	// ID is assigned by Store.Append: strictly increasing, unique within
	// a store directory.
	ID uint64 `json:"id"`
	Meta
	Seed     uint64 `json:"seed"`
	System   string `json:"system"`
	Workload string `json:"workload"`
	// Config fingerprints non-default machine/trait overrides ("" = the
	// Table I/II defaults).
	Config string `json:"config,omitempty"`
	Size   string `json:"size,omitempty"`
	// Source names the producing entry point: "chatsim", "sweep",
	// "experiments", "serve", or "import:<file>" for bench history.
	Source string `json:"source,omitempty"`

	// EngineMode is "serial" or "parallel"; IntraWorkers is the
	// engine's intra-run worker count (1 = serial). Both empty/zero on
	// records written before the parallel engine existed, so dashboard
	// trends can separate the modes without guessing.
	EngineMode   string `json:"engine_mode,omitempty"`
	IntraWorkers int    `json:"intra_workers,omitempty"`

	// DirBanks is the directory bank count of the producing run; zero
	// on records from before the sharded directory (equivalent to 1).
	DirBanks int `json:"dir_banks,omitempty"`

	// WaveEvents/Waves/SerialEvents are the engine's parallel-coverage
	// counters: fired events, the same-cycle distinct-domain waves they
	// formed, and the subset that ran on DomainSerial (full barriers).
	// wave_events/waves is the average parallel batch width the
	// dashboard's wave-width panel plots; serial_events/wave_events the
	// residual barrier fraction. Zero on records from before the wave
	// counters were stamped.
	WaveEvents   uint64 `json:"wave_events,omitempty"`
	Waves        uint64 `json:"waves,omitempty"`
	SerialEvents uint64 `json:"serial_events,omitempty"`

	SimCycles   uint64 `json:"simcycles"`
	WallclockNS int64  `json:"wallclock_ns"`
	Allocs      uint64 `json:"allocs"`

	// Counters flattens machine.RunStats (commits, aborts, fallbacks,
	// flits, ...); ByCause is the abort-cause breakdown.
	Counters map[string]uint64 `json:"counters,omitempty"`
	ByCause  map[string]uint64 `json:"by_cause,omitempty"`

	Hists    []Hist       `json:"hists,omitempty"`
	Series   []TimeSeries `json:"series,omitempty"`
	HotLines []HotLine    `json:"hot_lines,omitempty"`
	Chain    *Chain       `json:"chain,omitempty"`
}

// Key returns the identity tuple of the record.
func (r Record) Key() Key {
	return Key{Commit: r.Commit, Seed: r.Seed, Config: r.Config, System: r.System, Workload: r.Workload}
}

// Cell returns the chats-bench style cell name
// ("system/workload[/config]") the record diffs under.
func (r Record) Cell() string {
	cell := r.System + "/" + r.Workload
	if r.Config != "" {
		cell += "/" + r.Config
	}
	return cell
}

// Commits returns the commits-per-executed-transaction counters, 0 when
// absent.
func (r Record) counter(name string) uint64 {
	if r.Counters == nil {
		return 0
	}
	return r.Counters[name]
}

// AbortRate returns aborts per executed transaction attempt (0 when the
// record carries no transaction counters, e.g. imported bench cells).
func (r Record) AbortRate() float64 {
	commits, aborts := r.counter("commits"), r.counter("aborts")
	if commits+aborts == 0 {
		return 0
	}
	return float64(aborts) / float64(commits+aborts)
}

// Hist is a persisted stats.Histogram.
type Hist struct {
	Name   string   `json:"name"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	N      uint64   `json:"n"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
}

// TimeSeries is a persisted stats.Series (cycle-windowed event counts).
type TimeSeries struct {
	Name   string   `json:"name"`
	Window uint64   `json:"window"`
	Bins   []uint64 `json:"bins"`
}

// HotLine is one row of the persisted hot-line profile.
type HotLine struct {
	Line          string `json:"line"` // "0x..." cache-line address
	Conflicts     uint64 `json:"conflicts"`
	Aborts        uint64 `json:"aborts"`
	Forwards      uint64 `json:"forwards"`
	Consumes      uint64 `json:"consumes"`
	Validations   uint64 `json:"validations"`
	ValidationsOK uint64 `json:"validations_ok"`
	Nacks         uint64 `json:"nacks"`
	NackRetries   uint64 `json:"nack_retries"`
}

// Chain is the persisted chain-topology summary.
type Chain struct {
	Edges       uint64 `json:"edges"`
	MaxDepth    int    `json:"max_depth"`
	StallNacks  uint64 `json:"stall_nacks"`
	CycleAborts uint64 `json:"cycle_aborts"`
}

// String renders the record identity for diagnostics.
func (r Record) String() string {
	return fmt.Sprintf("run %d: %s seed=%d commit=%s (%d cycles)", r.ID, r.Cell(), r.Seed, r.Commit, r.SimCycles)
}
