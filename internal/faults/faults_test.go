package faults

import (
	"strings"
	"testing"

	"chats/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "spurious:p=0.01;vsbfull:p=0.5;valfail:p=0.02;jitter:p=0.2,max=16;nack:p=0.05;powerdeny:p=0.3;lockburst:p=0.1,cycles=200"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Spurious != 0.01 || p.VSBFull != 0.5 || p.ValFail != 0.02 ||
		p.Jitter != 0.2 || p.JitterMax != 16 || p.Nack != 0.05 ||
		p.PowerDeny != 0.3 || p.LockBurst != 0.1 || p.LockBurstCycles != 200 {
		t.Fatalf("parsed %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("plan should be enabled")
	}
	// The canonical rendering parses back to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2 != p {
		t.Fatalf("round trip: %+v != %+v", p2, p)
	}
}

func TestParseBankSelectorRoundTrip(t *testing.T) {
	// Without bank=, both selectors default to -1 (all banks) and the
	// canonical rendering omits them.
	p, err := Parse("nack:p=0.05;lockburst:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.NackBank != -1 || p.LockBurstBank != -1 {
		t.Fatalf("default bank selectors should be -1: %+v", p)
	}
	if s := p.String(); strings.Contains(s, "bank=") {
		t.Fatalf("default rendering should omit bank=: %q", s)
	}

	p, err = Parse("nack:p=0.05,bank=3;lockburst:p=0.1,cycles=200,bank=0")
	if err != nil {
		t.Fatal(err)
	}
	if p.NackBank != 3 || p.LockBurstBank != 0 {
		t.Fatalf("bank selectors not parsed: %+v", p)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2 != p {
		t.Fatalf("round trip: %+v != %+v", p2, p)
	}

	for _, bad := range []string{"nack:p=0.1,bank=-1", "nack:p=0.1,bank=x", "lockburst:p=0.1,bank=1.5", "spurious:p=0.1,bank=2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseEmptyAndDefaults(t *testing.T) {
	p, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() || p.String() != "" {
		t.Fatalf("empty spec parsed to %+v", p)
	}
	p, err = Parse("jitter:p=1;lockburst:p=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.JitterMax != defaultJitterMax || p.LockBurstCycles != defaultLockBurstCycles {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"frob:p=0.5", "valid: spurious, vsbfull, valfail, jitter, nack, powerdeny, lockburst"},
		{"spurious:p=1.5", "[0,1]"},
		{"spurious:p=x", "[0,1]"},
		{"spurious", "missing p="},
		{"jitter:p=0.1,max=0", "positive cycle count"},
		{"spurious:p=0.1,zap=2", "unknown option"},
		{"spurious:p", "key=value"},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan, err := Parse("spurious:p=0.1;jitter:p=0.3,max=8;nack:p=0.2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]bool, []uint64, Stats) {
		in := NewInjector(plan, sim.NewRand(42))
		var bs []bool
		var ds []uint64
		for i := 0; i < 1000; i++ {
			bs = append(bs, in.SpuriousAbort(), in.ForceNack())
			ds = append(ds, in.JitterDelay())
		}
		return bs, ds, in.Stats
	}
	b1, d1, s1 := run()
	b2, d2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("jitter %d diverged", i)
		}
	}
	if s1.Total() == 0 {
		t.Fatal("expected some injections at these rates")
	}
}

func TestDisabledKindsDoNotTouchPRNG(t *testing.T) {
	// Interleaving calls to disabled kinds must not change the schedule
	// of enabled ones: disabled kinds skip the PRNG entirely.
	plan := Plan{Spurious: 0.5}
	a := NewInjector(plan, sim.NewRand(7))
	b := NewInjector(plan, sim.NewRand(7))
	for i := 0; i < 200; i++ {
		b.ForceNack() // disabled; must be a no-op on the stream
		b.VSBFull()
		if a.SpuriousAbort() != b.SpuriousAbort() {
			t.Fatalf("disabled draws perturbed the schedule at %d", i)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	plan := Plan{Jitter: 1, JitterMax: 4}
	in := NewInjector(plan, sim.NewRand(9))
	for i := 0; i < 500; i++ {
		d := in.JitterDelay()
		if d < 1 || d > 4 {
			t.Fatalf("jitter %d outside [1,4]", d)
		}
	}
}
