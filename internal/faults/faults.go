// Package faults defines a deterministic fault-injection plan for the
// simulated machine: adversarial-but-reproducible events at the HTM
// layer (spurious best-effort aborts, forced VSB pressure, forced
// validation failures), the coherence/network layer (latency jitter,
// forced directory NACKs) and the machine layer (power-token denial,
// fallback-lock contention bursts).
//
// Every injection decision is drawn from a sim.Rand seeded from the run
// seed, and every draw happens at engine time, so a faulted run is as
// bit-reproducible as a clean one: the same seed produces the same fault
// schedule at -j 1 and -j N, across reruns and across machines.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"chats/internal/sim"
)

// Plan is a parsed fault-injection specification. A zero Plan injects
// nothing. Probabilities are per decision point (per transactional
// memory access for Spurious, per SpecResp for VSBFull, per validation
// response for ValFail, per message for Jitter, per transactional
// directory request for Nack, per token acquisition for PowerDeny, per
// fallback entry for LockBurst).
type Plan struct {
	Spurious float64 // spurious best-effort abort on a transactional access
	VSBFull  float64 // pretend the VSB is full when a SpecResp arrives
	ValFail  float64 // force a value mismatch on a validation response

	Jitter    float64 // extra latency on a network message
	JitterMax uint64  // maximum extra cycles per jittered message (default 8)

	Nack float64 // bounce a transactional request at the directory
	// NackBank selects which directory bank force-nacks: -1 (the
	// default, rendered as no bank= option) targets every bank, >= 0
	// arms only that bank's seam. Plans built literally (not via Parse)
	// may leave it 0 only if they also leave Nack 0.
	NackBank int

	PowerDeny float64 // deny a power-token acquisition
	LockBurst float64 // hold the fallback lock for extra cycles on entry
	// LockBurstCycles is the length of an injected lock-contention burst
	// (default 500).
	LockBurstCycles uint64
	// LockBurstBank, when >= 0, restricts bursts to machines whose
	// fallback-lock line is owned by that directory bank (-1 = any, the
	// default). Pinning the burst to the lock's bank exercises the
	// interaction between a saturated bank and the fallback path.
	LockBurstBank int
}

// faultNames lists the spec grammar's fault names in canonical order.
var faultNames = []string{"spurious", "vsbfull", "valfail", "jitter", "nack", "powerdeny", "lockburst"}

// SoakSpec is the canonical all-kinds plan the fault soak (tests, CI and
// chats-experiments -faults-soak) runs under: every fault kind enabled
// at rates aggressive enough to exercise the recovery paths while still
// letting every system finish a small workload.
const SoakSpec = "spurious:p=0.02;vsbfull:p=0.05;valfail:p=0.05;jitter:p=0.1,max=6;nack:p=0.05;powerdeny:p=0.5;lockburst:p=0.2,cycles=200"

// SoakPlan returns the parsed SoakSpec.
func SoakPlan() Plan {
	p, err := Parse(SoakSpec)
	if err != nil {
		panic("faults: SoakSpec does not parse: " + err.Error())
	}
	return p
}

const (
	defaultJitterMax       = 8
	defaultLockBurstCycles = 500
)

// Parse reads a fault spec of the form
//
//	name:key=val[,key=val...][;name:key=val...]
//
// e.g. "spurious:p=0.01;jitter:p=0.2,max=16;nack:p=0.05". Every fault
// takes p= (probability in [0,1]); jitter also takes max= (cycles),
// lockburst takes cycles=, and nack/lockburst take an optional bank=
// directory-bank selector (default: all banks). Unknown names and keys
// are errors that list the valid options.
func Parse(spec string) (Plan, error) {
	p := Plan{NackBank: -1, LockBurstBank: -1}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, args, _ := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		kv := map[string]string{}
		if strings.TrimSpace(args) != "" {
			for _, pair := range strings.Split(args, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					return Plan{}, fmt.Errorf("faults: %q: malformed option %q (want key=value)", name, pair)
				}
				kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
		prob := func() (float64, error) {
			s, ok := kv["p"]
			if !ok {
				return 0, fmt.Errorf("faults: %q: missing p= probability", name)
			}
			delete(kv, "p")
			f, err := strconv.ParseFloat(s, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("faults: %q: p=%q is not a probability in [0,1]", name, s)
			}
			return f, nil
		}
		cycles := func(key string, def uint64) (uint64, error) {
			s, ok := kv[key]
			if !ok {
				return def, nil
			}
			delete(kv, key)
			u, err := strconv.ParseUint(s, 10, 64)
			if err != nil || u == 0 {
				return 0, fmt.Errorf("faults: %q: %s=%q is not a positive cycle count", name, key, s)
			}
			return u, nil
		}
		bank := func() (int, error) {
			s, ok := kv["bank"]
			if !ok {
				return -1, nil // all banks
			}
			delete(kv, "bank")
			b, err := strconv.Atoi(s)
			if err != nil || b < 0 {
				return 0, fmt.Errorf("faults: %q: bank=%q is not a non-negative bank index", name, s)
			}
			return b, nil
		}
		var err error
		switch name {
		case "spurious":
			p.Spurious, err = prob()
		case "vsbfull":
			p.VSBFull, err = prob()
		case "valfail":
			p.ValFail, err = prob()
		case "jitter":
			if p.Jitter, err = prob(); err == nil {
				p.JitterMax, err = cycles("max", defaultJitterMax)
			}
		case "nack":
			if p.Nack, err = prob(); err == nil {
				p.NackBank, err = bank()
			}
		case "powerdeny":
			p.PowerDeny, err = prob()
		case "lockburst":
			if p.LockBurst, err = prob(); err == nil {
				p.LockBurstCycles, err = cycles("cycles", defaultLockBurstCycles)
			}
			if err == nil {
				p.LockBurstBank, err = bank()
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown fault %q (valid: %s)", name, strings.Join(faultNames, ", "))
		}
		if err != nil {
			return Plan{}, err
		}
		if len(kv) > 0 {
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return Plan{}, fmt.Errorf("faults: %q: unknown option(s) %s", name, strings.Join(keys, ", "))
		}
	}
	return p, p.Validate()
}

// Validate reports out-of-range plan fields.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"spurious", p.Spurious}, {"vsbfull", p.VSBFull}, {"valfail", p.ValFail},
		{"jitter", p.Jitter}, {"nack", p.Nack}, {"powerdeny", p.PowerDeny}, {"lockburst", p.LockBurst},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", f.name, f.v)
		}
	}
	return nil
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.Spurious > 0 || p.VSBFull > 0 || p.ValFail > 0 ||
		p.Jitter > 0 || p.Nack > 0 || p.PowerDeny > 0 || p.LockBurst > 0
}

// String renders the plan in the canonical spec grammar (parsable by
// Parse; empty for a zero plan). Diagnostics embed it so a failing cell
// can be reproduced from the error message alone.
func (p Plan) String() string {
	var parts []string
	add := func(name string, prob float64, extra string) {
		if prob <= 0 {
			return
		}
		s := name + ":p=" + strconv.FormatFloat(prob, 'g', -1, 64)
		if extra != "" {
			s += "," + extra
		}
		parts = append(parts, s)
	}
	add("spurious", p.Spurious, "")
	add("vsbfull", p.VSBFull, "")
	add("valfail", p.ValFail, "")
	jmax := p.JitterMax
	if jmax == 0 {
		jmax = defaultJitterMax
	}
	add("jitter", p.Jitter, "max="+strconv.FormatUint(jmax, 10))
	nackOpts := ""
	if p.NackBank >= 0 {
		nackOpts = "bank=" + strconv.Itoa(p.NackBank)
	}
	add("nack", p.Nack, nackOpts)
	add("powerdeny", p.PowerDeny, "")
	lcyc := p.LockBurstCycles
	if lcyc == 0 {
		lcyc = defaultLockBurstCycles
	}
	lbOpts := "cycles=" + strconv.FormatUint(lcyc, 10)
	if p.LockBurstBank >= 0 {
		lbOpts += ",bank=" + strconv.Itoa(p.LockBurstBank)
	}
	add("lockburst", p.LockBurst, lbOpts)
	return strings.Join(parts, ";")
}

// Stats counts injections per fault kind.
type Stats struct {
	Spurious    uint64
	VSBFull     uint64
	ValFail     uint64
	Jitter      uint64
	Nacks       uint64
	PowerDenies uint64
	LockBursts  uint64
}

// Total sums every injection.
func (s Stats) Total() uint64 {
	return s.Spurious + s.VSBFull + s.ValFail + s.Jitter + s.Nacks + s.PowerDenies + s.LockBursts
}

// Injector draws the plan's injection decisions from one deterministic
// PRNG. All methods must be called at engine time (single goroutine) so
// the draw order — and with it the fault schedule — is reproducible.
type Injector struct {
	Plan  Plan
	Stats Stats
	rng   *sim.Rand
}

// NewInjector builds an injector for one run. The rng must be dedicated
// to the injector (sharing a stream with other consumers would make the
// fault schedule depend on their draw order).
func NewInjector(p Plan, rng *sim.Rand) *Injector {
	return &Injector{Plan: p, rng: rng}
}

// draw flips a p-biased coin. Disabled kinds never touch the PRNG, so
// enabling one fault does not reshuffle another's schedule.
func (in *Injector) draw(p float64) bool {
	return p > 0 && in.rng.Float64() < p
}

// SpuriousAbort decides whether a transactional access dies spuriously.
func (in *Injector) SpuriousAbort() bool {
	if in.draw(in.Plan.Spurious) {
		in.Stats.Spurious++
		return true
	}
	return false
}

// VSBFull decides whether an arriving SpecResp sees artificial VSB
// pressure (treated exactly like a full buffer: retry, then abort).
func (in *Injector) VSBFull() bool {
	if in.draw(in.Plan.VSBFull) {
		in.Stats.VSBFull++
		return true
	}
	return false
}

// ValFail decides whether a validation response is forced to mismatch,
// as if the producer had overwritten the forwarded line.
func (in *Injector) ValFail() bool {
	if in.draw(in.Plan.ValFail) {
		in.Stats.ValFail++
		return true
	}
	return false
}

// JitterDelay returns extra cycles of latency for one message (0 = no
// injection).
func (in *Injector) JitterDelay() uint64 {
	if !in.draw(in.Plan.Jitter) {
		return 0
	}
	in.Stats.Jitter++
	max := in.Plan.JitterMax
	if max == 0 {
		max = defaultJitterMax
	}
	return 1 + in.rng.Uint64n(max)
}

// ForceNack decides whether the directory bounces a transactional
// request.
func (in *Injector) ForceNack() bool {
	if in.draw(in.Plan.Nack) {
		in.Stats.Nacks++
		return true
	}
	return false
}

// DenyPower decides whether a power-token acquisition is refused even
// though the token is free.
func (in *Injector) DenyPower() bool {
	if in.draw(in.Plan.PowerDeny) {
		in.Stats.PowerDenies++
		return true
	}
	return false
}

// LockBurstDelay returns extra cycles a thread holds the fallback lock
// before running its body (0 = no injection), manufacturing the lock
// convoys that stress the lock-subscription abort path.
func (in *Injector) LockBurstDelay() uint64 {
	if !in.draw(in.Plan.LockBurst) {
		return 0
	}
	in.Stats.LockBursts++
	cycles := in.Plan.LockBurstCycles
	if cycles == 0 {
		cycles = defaultLockBurstCycles
	}
	return cycles
}
