// Package testutil holds the machine-level test harness shared by the
// external test packages (machine_test, invariant_test, workloads_test,
// difftest, experiments): standard config, build-and-run helpers, and
// the three canonical contention workloads (RMW hotspot, bank transfer,
// migratory write-once).
//
// Import-cycle rule: testutil imports machine, so only *external* test
// packages (package foo_test) may use it. Internal test files of the
// machine package keep their own copies in helpers_test.go.
package testutil

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/mem"
)

// Config is the standard unit-test machine config: defaults plus a
// 50M-cycle limit so a livelocked run fails fast instead of hanging.
func Config() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.CycleLimit = 50_000_000
	return cfg
}

// Policy builds the named system's policy, failing the test on error.
func Policy(t testing.TB, kind core.Kind) htm.Policy {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	return policy
}

// Machine builds a machine, failing the test on error.
func Machine(t testing.TB, cfg machine.Config, policy htm.Policy) *machine.Machine {
	t.Helper()
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Run builds the named system, runs w on it and returns the stats,
// failing the test on any build, run, or workload-check error.
func Run(t testing.TB, kind core.Kind, w machine.Workload, cfg machine.Config) machine.RunStats {
	t.Helper()
	stats, err := RunPolicy(Policy(t, kind), w, cfg)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return stats
}

// RunPolicy runs w under an explicit (possibly wrapped or deliberately
// broken) policy and returns the run error instead of failing, so
// negative tests can assert on it.
func RunPolicy(policy htm.Policy, w machine.Workload, cfg machine.Config) (machine.RunStats, error) {
	m, err := machine.New(cfg, policy)
	if err != nil {
		return machine.RunStats{}, err
	}
	return m.Run(w)
}

// RunChecked runs w on the named system with a fresh invariant checker
// attached and fails the test on any run error or invariant violation.
// It returns the stats and the checker's work counters so callers can
// assert the checker actually exercised its oracles.
func RunChecked(t testing.TB, kind core.Kind, w machine.Workload, cfg machine.Config) (machine.RunStats, invariant.Counts) {
	t.Helper()
	m := Machine(t, cfg, Policy(t, kind))
	chk := invariant.New()
	m.SetTracer(chk)
	stats, err := m.Run(w)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return stats, chk.Counts()
}

// Counter is the maximal write-write contention workload: every thread
// atomically increments one shared counter Iters times.
type Counter struct {
	Iters   int
	addr    mem.Addr
	threads int
}

func (w *Counter) Name() string { return "counter" }
func (w *Counter) Setup(wd *machine.World, threads int) {
	w.addr = wd.Alloc.LineAligned(1)
	wd.Mem.WriteWord(w.addr, 0)
	w.threads = threads
}
func (w *Counter) Thread(ctx machine.Ctx, tid int) {
	for i := 0; i < w.Iters; i++ {
		ctx.Atomic(func(tx machine.Tx) {
			v := tx.Load(w.addr)
			tx.Store(w.addr, v+1)
		})
		ctx.Work(20)
	}
}
func (w *Counter) Check(wd *machine.World) error {
	got := wd.Mem.ReadWord(w.addr)
	want := uint64(w.threads * w.Iters)
	if got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// Bank does random transfers between Accounts accounts; the total must
// be conserved (atomicity + isolation witness).
type Bank struct {
	Accounts int
	Iters    int
	base     mem.Addr
	total    uint64
}

func (w *Bank) Name() string { return "bank" }
func (w *Bank) Setup(wd *machine.World, threads int) {
	w.base = wd.Alloc.Lines(w.Accounts)
	for i := 0; i < w.Accounts; i++ {
		wd.Mem.WriteWord(w.acct(i), 100)
	}
	w.total = uint64(100 * w.Accounts)
}
func (w *Bank) acct(i int) mem.Addr { return w.base + mem.Addr(i*mem.LineSize) }
func (w *Bank) Thread(ctx machine.Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.Iters; i++ {
		from, to := r.Intn(w.Accounts), r.Intn(w.Accounts)
		if from == to {
			continue
		}
		ctx.Atomic(func(tx machine.Tx) {
			fv := tx.Load(w.acct(from))
			tv := tx.Load(w.acct(to))
			if fv == 0 {
				return
			}
			tx.Store(w.acct(from), fv-1)
			tx.Store(w.acct(to), tv+1)
		})
	}
}
func (w *Bank) Check(wd *machine.World) error {
	var sum uint64
	for i := 0; i < w.Accounts; i++ {
		sum += wd.Mem.ReadWord(w.acct(i))
	}
	if sum != w.total {
		return fmt.Errorf("bank total = %d, want %d", sum, w.total)
	}
	return nil
}

// Migratory read-modify-writes a random shared slot once per
// transaction with a long post-write window — the write-once migration
// pattern CHATS exploits by forwarding.
type Migratory struct {
	Slots   int
	Iters   int
	base    mem.Addr
	threads int
}

func (w *Migratory) Name() string { return "migratory" }
func (w *Migratory) Setup(wd *machine.World, threads int) {
	w.base = wd.Alloc.Lines(w.Slots)
	w.threads = threads
}
func (w *Migratory) Thread(ctx machine.Ctx, tid int) {
	r := ctx.Rand()
	for i := 0; i < w.Iters; i++ {
		slot := w.base + mem.Addr(r.Intn(w.Slots)*mem.LineSize)
		ctx.Atomic(func(tx machine.Tx) {
			v := tx.Load(slot)
			tx.Store(slot, v+1)
			tx.Work(80) // post-write window: the block migrates by forwarding
		})
	}
}
func (w *Migratory) Check(wd *machine.World) error {
	var sum uint64
	for i := 0; i < w.Slots; i++ {
		sum += wd.Mem.ReadWord(w.base + mem.Addr(i*mem.LineSize))
	}
	if sum != uint64(w.threads*w.Iters) {
		return fmt.Errorf("sum = %d, want %d", sum, w.threads*w.Iters)
	}
	return nil
}
