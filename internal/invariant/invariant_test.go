package invariant_test

import (
	"strings"
	"testing"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/testutil"
	"chats/internal/workloads"
)

// checkedCfg is the registry-workload variant of testutil.Config: Tiny
// benchmarks need more headroom than the hand-rolled micro workloads.
func checkedCfg() machine.Config {
	cfg := testutil.Config()
	cfg.CycleLimit = 200_000_000
	return cfg
}

// runChecked runs workload wl on the given policy with a fresh Checker
// attached and returns the run error plus the checker.
func runChecked(t *testing.T, kind core.Kind, wl string, mutate func(*machine.Config)) (error, *invariant.Checker) {
	t.Helper()
	w, err := workloads.New(wl, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkedCfg()
	if mutate != nil {
		mutate(&cfg)
	}
	m := testutil.Machine(t, cfg, testutil.Policy(t, kind))
	chk := invariant.New()
	m.SetTracer(chk)
	_, err = m.Run(w)
	return err, chk
}

// Every system must pass the full invariant suite on clean runs of a
// forwarding-heavy microbenchmark.
func TestCheckerCleanAllSystems(t *testing.T) {
	for _, wl := range []string{"cadd", "llb-h"} {
		for _, kind := range core.Kinds() {
			wl, kind := wl, kind
			t.Run(wl+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				err, chk := runChecked(t, kind, wl, nil)
				if err != nil {
					t.Fatal(err)
				}
				c := chk.Counts()
				if c.TxReplays == 0 || c.TxOps == 0 || c.LinesDiffed == 0 {
					t.Fatalf("checker did no work: %+v", c)
				}
			})
		}
	}
}

// Clean runs must stay clean with faults injected: every fault kind only
// forces legal (abort/retry) paths, never an unsound commit.
func TestCheckerCleanUnderFaults(t *testing.T) {
	plan := faults.SoakPlan()
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			err, chk := runChecked(t, kind, "cadd", func(cfg *machine.Config) {
				cfg.Faults = &plan
			})
			if err != nil {
				t.Fatal(err)
			}
			if chk.Err() != nil {
				t.Fatal(chk.Err())
			}
		})
	}
}

// brokenPolicy wraps a real policy but ignores validation mismatches:
// stale forwarded data is allowed to commit. The checker must catch the
// resulting unserializable execution.
type brokenPolicy struct {
	htm.Policy
}

func (p brokenPolicy) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	return p.Policy.ValidationCheck(local, isSpec, pic, true)
}

func TestBrokenPolicyCaught(t *testing.T) {
	// Spurious producer aborts strand stale data in consumer VSBs; the
	// broken validation waves it through.
	plan, err := faults.Parse("spurious:p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.New("cadd", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := checkedCfg()
	cfg.Faults = &plan
	m := testutil.Machine(t, cfg, brokenPolicy{testutil.Policy(t, core.KindCHATS)})
	chk := invariant.New()
	m.SetTracer(chk)
	_, runErr := m.Run(w)
	if chk.Err() == nil && runErr == nil {
		t.Fatal("broken validation policy escaped the invariant checker")
	}
	err = runErr
	if chk.Err() != nil {
		err = chk.Err()
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("expected an invariant violation, got: %v", err)
	}
}

// The checker must be reusable across runs: a second clean run after a
// first one starts from fresh state.
func TestCheckerReuse(t *testing.T) {
	chk := invariant.New()
	for i := 0; i < 2; i++ {
		w, _ := workloads.New("cadd", workloads.Tiny)
		m := testutil.Machine(t, checkedCfg(), testutil.Policy(t, core.KindCHATS))
		m.SetTracer(chk)
		if _, err := m.Run(w); err != nil {
			t.Fatal(err)
		}
	}
}
