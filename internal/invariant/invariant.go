// Package invariant provides a runtime self-checking layer for the
// simulated machine. A Checker attaches as a tracer (machine.SetTracer)
// and verifies, while the run executes, the structural invariants the
// chaining protocols promise:
//
//   - chain acyclicity: the observed forwarding graph (Forward/Consume
//     events) never contains a cycle among live transactions — checked
//     for edges carrying a chain position (PiC-tracking systems); the
//     naive design's PiC-less edges may legally form transient cycles
//     that its validation counter breaks;
//   - PiC/Cons consistency: a consumer accepting a speculative line at
//     PiC p ends up strictly below p in the chain, sets its Cons bit,
//     and a non-empty VSB always implies Cons;
//   - consumption discipline: every Consume is preceded by a matching
//     Forward, and no transaction commits with unvalidated VSB entries
//     or live consumer edges;
//   - single-writer: two live transactions whose write sets overlap on
//     a line must be related by a forwarding edge on that line;
//   - serializability: committed transactions, replayed in commit order
//     against a shadow memory, reproduce exactly the values the real
//     run observed, and the final shadow equals the final simulated
//     memory (a serial re-execution oracle).
//
// The first violation halts the simulation (machine.Halt) with a
// descriptive error; EndRun performs the final memory comparison. The
// checker is deterministic and adds no simulated-time cost — it runs in
// the tracer seam — but costs host time per event, so it is opt-in
// (chatsim -invariants).
package invariant

import (
	"fmt"
	"sort"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/mem"
)

// Counts reports how much checking a run performed (for cost reporting
// and for tests asserting the checker actually ran).
type Counts struct {
	NonTxOps    uint64 // plain/fallback ops checked against shadow memory
	TxReplays   uint64 // committed transactions replayed
	TxOps       uint64 // speculative ops replayed inside those
	Edges       uint64 // forwarding edges tracked
	Commits     uint64 // commit-time structural checks
	LinesDiffed uint64 // lines compared at EndRun
}

// op is one logged speculative operation of an uncommitted transaction.
type txOp struct {
	kind machine.OpKind
	addr mem.Addr
	val  uint64
}

// edgeKey identifies a consumed-but-unvalidated line at a consumer.
type edgeKey struct {
	consumer int
	line     mem.Addr
}

// edge records who produced the line and in which of the producer's
// transactions (generation), so stale edges never alias a newer one.
type edge struct {
	producer int
	prodGen  uint64
	pic      coherence.PiC
}

// Checker implements machine.Tracer, machine.OpTracer and
// machine.RunChecker. Attach with machine.SetTracer (possibly inside a
// machine.MultiTracer) before Run.
type Checker struct {
	m      *machine.Machine
	shadow map[mem.Addr]mem.Line // line addr -> committed value
	ops    [][]txOp              // per-core speculative op log
	gen    []uint64              // per-core transaction generation
	pend   map[edgeKey]edge      // forwarded, not yet consumed
	live   map[edgeKey]edge      // consumed, not yet validated

	counts Counts
	err    error
}

// New returns a Checker ready to attach to a machine.
func New() *Checker {
	return &Checker{
		shadow: make(map[mem.Addr]mem.Line),
		pend:   make(map[edgeKey]edge),
		live:   make(map[edgeKey]edge),
	}
}

// Counts returns the work counters accumulated so far.
func (c *Checker) Counts() Counts { return c.counts }

// Err returns the first violation, or nil.
func (c *Checker) Err() error { return c.err }

// violation records the first violation and halts the run.
func (c *Checker) violation(format string, args ...any) {
	err := fmt.Errorf("invariant: "+format, args...)
	if c.err == nil {
		c.err = err
	}
	if c.m != nil {
		c.m.Halt(err)
	}
}

// ---------- RunChecker ----------

// BeginRun seeds the shadow memory from the post-Setup memory image and
// resets all per-run state.
func (c *Checker) BeginRun(m *machine.Machine) {
	c.m = m
	c.shadow = make(map[mem.Addr]mem.Line)
	m.World().Mem.ForEachLine(func(a mem.Addr, l mem.Line) {
		c.shadow[a] = l
	})
	c.ops = make([][]txOp, m.NumCores())
	c.gen = make([]uint64, m.NumCores())
	c.pend = make(map[edgeKey]edge)
	c.live = make(map[edgeKey]edge)
	c.counts = Counts{}
	c.err = nil
}

// EndRun compares the shadow memory against the final simulated memory:
// the two must agree word for word, or some committed effect was lost,
// duplicated, or reordered unserializably.
func (c *Checker) EndRun(m *machine.Machine) error {
	if c.err != nil {
		return c.err
	}
	memory := m.World().Mem
	seen := make(map[mem.Addr]bool)
	memory.ForEachLine(func(a mem.Addr, l mem.Line) {
		seen[a] = true
		c.counts.LinesDiffed++
		if c.err == nil && c.shadow[a] != l {
			c.err = fmt.Errorf("invariant: final memory diverges from serial re-execution at line %v: machine %v, oracle %v",
				a, l, c.shadow[a])
		}
	})
	// Lines the oracle holds that the machine never wrote back must be
	// zero-diffs too (sorted for a deterministic error message).
	var extra []mem.Addr
	for a := range c.shadow {
		if !seen[a] {
			extra = append(extra, a)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	for _, a := range extra {
		c.counts.LinesDiffed++
		if c.err == nil && c.shadow[a] != (mem.Line{}) {
			c.err = fmt.Errorf("invariant: oracle holds %v = %v but the machine's final memory has no such line",
				a, c.shadow[a])
		}
	}
	return c.err
}

// ---------- shadow memory ----------

func (c *Checker) shadowWord(a mem.Addr) uint64 {
	return c.shadow[a.Line()][a.WordIndex()]
}

func (c *Checker) setShadowWord(a mem.Addr, v uint64) {
	line := c.shadow[a.Line()]
	line[a.WordIndex()] = v
	c.shadow[a.Line()] = line
}

// ---------- OpTracer ----------

// Op logs speculative operations for commit-time replay and applies
// plain/fallback operations to the shadow immediately.
//
// Stores and CASes are value-checked: they only complete after acquiring
// ownership (a local M/E hit or a GetX grant), so their completion order
// matches the coherence order and the shadow is exact at each one.
// Non-transactional loads are applied without a value check: a load's
// value binds at the directory while the reply is still in flight, so a
// store that completes during the flight legally makes the load look
// stale at completion time (the load linearizes at its bind point).
// Transactional loads don't have this gap — a committed transaction's
// read set is coherence-protected from bind to commit — which is why the
// commit-time replay can check them exactly.
func (c *Checker) Op(cycle uint64, core int, kind machine.OpKind, inTx bool, addr mem.Addr, val, val2 uint64, ok bool) {
	if inTx {
		c.ops[core] = append(c.ops[core], txOp{kind: kind, addr: addr, val: val})
		return
	}
	c.counts.NonTxOps++
	switch kind {
	case machine.OpStore:
		c.setShadowWord(addr, val)
	case machine.OpCAS:
		if want := c.shadowWord(addr); val != want {
			c.violation("cycle %d core %d: CAS %v saw previous %d, oracle has %d",
				cycle, core, addr, val, want)
		}
		if ok {
			c.setShadowWord(addr, val2)
		}
	}
}

// ---------- Tracer ----------

func (c *Checker) TxBegin(cycle uint64, core, attempt int, power bool) {
	c.gen[core]++
	c.ops[core] = c.ops[core][:0]
	// Pending forwards addressed to a previous attempt can never be
	// consumed (the consumer stale-drops the delivery); clear them.
	for k := range c.pend {
		if k.consumer == core {
			delete(c.pend, k)
		}
	}
}

// TxCommit replays the transaction's operations against the shadow in
// commit order and folds its writes in, then runs the structural
// commit-time checks.
func (c *Checker) TxCommit(cycle uint64, core int, consumed int) {
	c.counts.Commits++
	snap := c.m.CoreSnapshot(core)
	if snap.VSBLen != 0 {
		c.violation("cycle %d core %d: committing with %d unvalidated VSB entries", cycle, core, snap.VSBLen)
	}
	if snap.Cons {
		c.violation("cycle %d core %d: committing with Cons still set", cycle, core)
	}
	for k := range c.live {
		if k.consumer == core {
			c.violation("cycle %d core %d: committing with unvalidated consumption of %v", cycle, core, k.line)
		}
	}
	c.checkSingleWriter(cycle, core, snap)
	c.replay(cycle, core)
	// Consumer edges must already be gone (checked above); drop any
	// leftovers so one violation does not cascade. Producer edges stay:
	// their consumers still hold unvalidated fictions and resolve them
	// through Validate or TxAbort (the generation tag keeps these edges
	// out of the cycle check once this core begins a new transaction).
	for k := range c.live {
		if k.consumer == core {
			delete(c.live, k)
		}
	}
}

// replay re-executes core's logged speculative ops against the shadow
// with a read-your-own-writes overlay, then commits the overlay.
func (c *Checker) replay(cycle uint64, core int) {
	c.counts.TxReplays++
	overlay := make(map[mem.Addr]uint64)
	for _, o := range c.ops[core] {
		c.counts.TxOps++
		switch o.kind {
		case machine.OpLoad:
			want, own := overlay[o.addr]
			if !own {
				want = c.shadowWord(o.addr)
			}
			if o.val != want {
				c.violation("cycle %d core %d: committed transaction read %v = %d, serial re-execution gives %d",
					cycle, core, o.addr, o.val, want)
			}
		case machine.OpStore:
			overlay[o.addr] = o.val
		}
	}
	for a, v := range overlay {
		c.setShadowWord(a, v)
	}
	c.ops[core] = c.ops[core][:0]
}

// checkSingleWriter verifies that the committing transaction is the only
// REAL owner of each line it wrote. Other live transactions may hold the
// same line in their write sets, but only as unvalidated VSB fictions
// (forwarded copies whose validation will succeed or abort them); a
// second directory-granted speculative copy would be a coherence bug.
// The committing core's own copies are all real — its VSB is empty.
func (c *Checker) checkSingleWriter(cycle uint64, core int, snap machine.CoreSnapshot) {
	if len(snap.WriteSet) == 0 {
		return
	}
	ws := make(map[mem.Addr]bool, len(snap.WriteSet))
	for _, a := range snap.WriteSet {
		ws[a] = true
	}
	for i := 0; i < c.m.NumCores(); i++ {
		if i == core {
			continue
		}
		other := c.m.CoreSnapshot(i)
		if other.Status != htm.Active && other.Status != htm.Committing {
			continue
		}
		fiction := make(map[mem.Addr]bool, len(other.VSBLines))
		for _, a := range other.VSBLines {
			fiction[a] = true
		}
		for _, a := range other.WriteSet {
			if ws[a] && !fiction[a] {
				c.violation("cycle %d: core %d commits line %v while core %d also holds it in its write set outside the VSB (two real owners)",
					cycle, core, a, i)
				return
			}
		}
	}
}

func (c *Checker) TxAbort(cycle uint64, core int, cause htm.AbortCause) {
	c.ops[core] = c.ops[core][:0]
	// The abort drains this core's VSB, so its consumer edges die with
	// it. Edges it produced stay until each consumer's own validation or
	// abort resolves them.
	for k := range c.live {
		if k.consumer == core {
			delete(c.live, k)
		}
	}
	for k := range c.pend {
		if k.consumer == core {
			delete(c.pend, k)
		}
	}
}

func (c *Checker) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {
	c.pend[edgeKey{consumer: requester, line: line}] = edge{
		producer: producer, prodGen: c.gen[producer], pic: pic,
	}
}

func (c *Checker) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC) {
	c.counts.Edges++
	k := edgeKey{consumer: core, line: line}
	e, ok := c.pend[k]
	if !ok {
		c.violation("cycle %d core %d: consumed %v with no preceding forward", cycle, core, line)
		return
	}
	delete(c.pend, k)
	c.live[k] = e

	snap := c.m.CoreSnapshot(core)
	if !snap.Cons {
		c.violation("cycle %d core %d: consumed %v without setting Cons", cycle, core, line)
	}
	if snap.VSBLen == 0 {
		c.violation("cycle %d core %d: consumed %v with an empty VSB", cycle, core, line)
	}
	if pic.Valid() && (!snap.PiC.Valid() || snap.PiC >= pic) {
		c.violation("cycle %d core %d: consumed %v at PiC %d but sits at PiC %d (must be strictly below the producer)",
			cycle, core, line, pic, snap.PiC)
	}
	// Acyclicity is a promise of the PiC protocol, so it attaches only
	// to edges that carry a chain position (valid PiC or PiCPower). The
	// naive design forwards with PiCNone and legitimately forms
	// transient cycles — its validation counter, not chain order, is
	// what breaks them (Section VI-B).
	if (pic.Valid() || pic == coherence.PiCPower) && c.cyclic(core, e) {
		c.violation("cycle %d core %d: consuming %v from core %d closes a chain cycle",
			cycle, core, line, e.producer)
	}
}

// cyclic reports whether the new edge producer->core closes a cycle in
// the live forwarding graph: can core already reach producer through
// edges whose producers are still running the transaction that forwarded
// (a dead or recycled producer's edges impose no ordering any more)?
func (c *Checker) cyclic(core int, newEdge edge) bool {
	current := func(p int, g uint64) bool {
		if g != c.gen[p] {
			return false
		}
		st := c.m.CoreSnapshot(p).Status
		return st == htm.Active || st == htm.Committing
	}
	seen := map[int]bool{core: true}
	var reach func(from int) bool
	reach = func(from int) bool {
		if from == newEdge.producer {
			return true
		}
		for k, e := range c.live {
			if e.producer != from || seen[k.consumer] || !current(from, e.prodGen) {
				continue
			}
			seen[k.consumer] = true
			if reach(k.consumer) {
				return true
			}
		}
		return false
	}
	// Start from the new consumer: a path core => ... => producer means
	// producer must commit after core, while the new edge demands the
	// opposite.
	return reach(core)
}

func (c *Checker) Validate(cycle uint64, core int, line mem.Addr, ok bool) {
	snap := c.m.CoreSnapshot(core)
	if snap.VSBLen > 0 && !snap.Cons {
		c.violation("cycle %d core %d: VSB holds %d entries but Cons is clear", cycle, core, snap.VSBLen)
	}
	if ok {
		delete(c.live, edgeKey{consumer: core, line: line})
	}
}

func (c *Checker) Fallback(cycle uint64, core int) {}
