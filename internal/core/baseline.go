package core

import (
	"chats/internal/coherence"
	"chats/internal/htm"
)

// Baseline is the commercial-like requester-wins best-effort HTM
// (Section VI-B): every conflicting probe aborts the responder.
type Baseline struct {
	traits htm.Traits
}

// NewBaseline builds the baseline with Table II's 6 retries.
func NewBaseline() *Baseline {
	return &Baseline{traits: htm.Traits{Retries: 6}}
}

// NewBaselineWith builds a baseline variant (retry sensitivity).
func NewBaselineWith(t htm.Traits) *Baseline {
	t.UsesVSB = false
	return &Baseline{traits: t}
}

func (b *Baseline) Name() string       { return "Baseline" }
func (b *Baseline) Traits() htm.Traits { return b.traits }

// DecideProbe always resolves requester-wins.
func (b *Baseline) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	return htm.DecideAbort, coherence.PiCNone
}

// AcceptSpec never runs: the baseline never forwards.
func (b *Baseline) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	panic("core: baseline received a SpecResp")
}

// ValidationCheck never runs: the baseline has no VSB.
func (b *Baseline) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	panic("core: baseline validated a line")
}

// NaiveRS is the naive requester-speculates design of Fig. 1 and
// Section VI-B: forward always, no dependency tracking; a 4-bit counter
// of consecutive unsuccessful validation attempts breaks cycles by
// aborting the consumer.
type NaiveRS struct {
	traits htm.Traits
}

// NewNaiveRS builds the naive design with Table II's configuration:
// 2 retries, 4 VSB entries, 50-cycle validation, 16-attempt counter.
func NewNaiveRS() *NaiveRS {
	return &NaiveRS{traits: htm.Traits{
		Retries:            2,
		UsesVSB:            true,
		VSBSize:            4,
		ValidationInterval: 50,
		ForwardMode:        htm.ForwardRW,
		NaiveBudget:        16,
	}}
}

// NewNaiveRSWith builds a naive variant.
func NewNaiveRSWith(t htm.Traits) *NaiveRS {
	t.UsesVSB = true
	if t.NaiveBudget == 0 {
		t.NaiveBudget = 16
	}
	return &NaiveRS{traits: t}
}

func (n *NaiveRS) Name() string       { return "NaiveRS" }
func (n *NaiveRS) Traits() htm.Traits { return n.traits }

// DecideProbe forwards unconditionally (subject only to the block
// eligibility mode, R/W for the naive design), carrying no PiC.
func (n *NaiveRS) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	if !forwardEligible(n.traits.ForwardMode, pc) {
		return htm.DecideAbort, coherence.PiCNone
	}
	return htm.DecideSpec, coherence.PiCNone
}

// AcceptSpec always consumes.
func (n *NaiveRS) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	local.Cons = true
	return htm.SpecOutcome{Accept: true}
}

// ValidationCheck decrements the validation counter on every
// unsuccessful attempt and aborts when it reaches zero, escaping
// potential cyclic deadlocks (Section VI-B).
func (n *NaiveRS) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	if !match {
		return htm.ValidationAbort, htm.CauseValidation
	}
	if !isSpec {
		local.NaiveCounter = n.traits.NaiveBudget // success resets
		return htm.ValidationDone, htm.CauseNone
	}
	local.NaiveCounter--
	if local.NaiveCounter <= 0 {
		return htm.ValidationAbort, htm.CauseCycle
	}
	return htm.ValidationPending, htm.CauseNone
}
