package core

import (
	"fmt"
	"sort"

	"chats/internal/htm"
)

// Kind names one of the evaluated HTM systems.
type Kind string

const (
	KindBaseline Kind = "baseline"
	KindNaiveRS  Kind = "naive-rs"
	KindCHATS    Kind = "chats"
	KindPower    Kind = "power"
	KindPCHATS   Kind = "pchats"
	KindLEVC     Kind = "levc-be-ideal"
)

// Kinds lists every system in the paper's presentation order.
func Kinds() []Kind {
	return []Kind{KindBaseline, KindNaiveRS, KindCHATS, KindPower, KindPCHATS, KindLEVC}
}

// New constructs the named system with its Table II default
// configuration.
func New(k Kind) (htm.Policy, error) {
	switch k {
	case KindBaseline:
		return NewBaseline(), nil
	case KindNaiveRS:
		return NewNaiveRS(), nil
	case KindCHATS:
		return NewCHATS(), nil
	case KindPower:
		return NewPower(), nil
	case KindPCHATS:
		return NewPCHATS(), nil
	case KindLEVC:
		return NewLEVCIdeal(), nil
	}
	return nil, fmt.Errorf("core: unknown system %q (known: %v)", k, Kinds())
}

// NewWith constructs the named system with overridden traits, for the
// sensitivity analyses.
func NewWith(k Kind, t htm.Traits) (htm.Policy, error) {
	switch k {
	case KindBaseline:
		return NewBaselineWith(t), nil
	case KindNaiveRS:
		return NewNaiveRSWith(t), nil
	case KindCHATS:
		return NewCHATSWith(t), nil
	case KindPower:
		return NewPowerWith(t), nil
	case KindPCHATS:
		return NewPCHATSWith(t), nil
	case KindLEVC:
		return NewLEVCIdealWith(t), nil
	}
	return nil, fmt.Errorf("core: unknown system %q", k)
}

// KindNames returns the registry keys sorted, for CLI help text.
func KindNames() []string {
	ks := Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = string(k)
	}
	sort.Strings(names)
	return names
}
