package core

import (
	"testing"

	"chats/internal/coherence"
	"chats/internal/htm"
)

// The exhaustive table over the producer-side PiC update rules of
// Fig. 3 / Section IV-C, including both saturation edges of the 5-bit
// register (PiCMax = 30, one encoding reserved). Each case states the
// full before/after contract: decision, the PiC the SpecResp carries,
// and the producer's register afterwards.
func TestChatsDecideTable(t *testing.T) {
	const none = coherence.PiCNone
	cases := []struct {
		name      string
		local     coherence.PiC
		cons      bool
		remote    coherence.PiC
		decision  htm.ProbeDecision
		sent      coherence.PiC // meaningful only for DecideSpec
		localPost coherence.PiC
	}{
		// Fig. 3A: neither chained — producer takes the middle position.
		{"A/both-unchained", none, false, none, htm.DecideSpec, coherence.PiCInit, coherence.PiCInit},
		// Fig. 3C: unchained producer joins one above the requester.
		{"C/join-above-0", none, false, 0, htm.DecideSpec, 1, 1},
		{"C/join-above-mid", none, false, 17, htm.DecideSpec, 18, 18},
		{"C/join-above-29", none, false, coherence.PiCMax - 1, htm.DecideSpec, coherence.PiCMax, coherence.PiCMax},
		// Saturation: the requester already holds the top position; the
		// producer cannot encode PiCMax+1 and must fall back to
		// requester-wins.
		{"C/overflow-at-max", none, false, coherence.PiCMax, htm.DecideAbort, none, none},
		// Fig. 3B: chained producer forwards its position; the requester
		// will join below. At position 0 the requester would underflow.
		{"B/requester-joins-below", 7, false, none, htm.DecideSpec, 7, 7},
		{"B/at-top", coherence.PiCMax, false, none, htm.DecideSpec, coherence.PiCMax, coherence.PiCMax},
		{"B/underflow-at-0", 0, false, none, htm.DecideAbort, none, 0},
		// Requester already below the producer: forward unchanged.
		{"below/forwards", 9, true, 3, htm.DecideSpec, 9, 9},
		{"below/adjacent", 9, false, 8, htm.DecideSpec, 9, 9},
		// Fig. 3D/E: requester at or above a consuming producer — abort.
		{"DE/equal-cons", 5, true, 5, htm.DecideAbort, none, 5},
		{"DE/above-cons", 5, true, 11, htm.DecideAbort, none, 5},
		// Fig. 3F: with Cons clear the producer may re-chain above.
		{"F/raises-past-equal", 5, false, 5, htm.DecideSpec, 6, 6},
		{"F/raises-past-above", 5, false, 20, htm.DecideSpec, 21, 21},
		{"F/raise-to-max", 5, false, coherence.PiCMax - 1, htm.DecideSpec, coherence.PiCMax, coherence.PiCMax},
		// Saturation again on the re-chain path.
		{"F/overflow-at-max", 5, false, coherence.PiCMax, htm.DecideAbort, none, 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tx := activeTx(t)
			tx.PiC = tc.local
			tx.Cons = tc.cons
			dec, sent := chatsDecide(tx, tc.remote)
			if dec != tc.decision {
				t.Fatalf("decision = %v, want %v", dec, tc.decision)
			}
			if dec == htm.DecideSpec && sent != tc.sent {
				t.Fatalf("sent PiC = %v, want %v", sent, tc.sent)
			}
			if tx.PiC != tc.localPost {
				t.Fatalf("local PiC after = %v, want %v", tx.PiC, tc.localPost)
			}
			if tx.Cons != tc.cons {
				t.Fatalf("producer side must not change Cons (got %v)", tx.Cons)
			}
		})
	}
}

// Consumer-side table (chatsAccept): how an arriving SpecResp moves the
// consumer's PiC/Cons, including the underflow guard at position 0 and
// the cycle races.
func TestChatsAcceptTable(t *testing.T) {
	const none = coherence.PiCNone
	cases := []struct {
		name      string
		local     coherence.PiC
		pic       coherence.PiC // carried by the SpecResp
		accept    bool
		cause     htm.AbortCause
		localPost coherence.PiC
		consPost  bool
	}{
		// Power producer: consume without touching the PiC.
		{"power/unchained", none, coherence.PiCPower, true, htm.CauseNone, none, true},
		{"power/chained", 12, coherence.PiCPower, true, htm.CauseNone, 12, true},
		// A producer never sends an invalid PiC; treat as a race.
		{"invalid/none", none, none, false, htm.CauseCycle, none, false},
		{"invalid/out-of-range", none, coherence.PiCMax + 1, false, htm.CauseCycle, none, false},
		// Unchained consumer joins one below the producer.
		{"join-below/mid", none, 16, true, htm.CauseNone, 15, true},
		{"join-below/top", none, coherence.PiCMax, true, htm.CauseNone, coherence.PiCMax - 1, true},
		// Saturation at the bottom: position -1 does not exist.
		{"join-below/underflow-at-0", none, 0, false, htm.CauseCycle, none, false},
		// Chained consumer: producer must sit strictly above.
		{"chained/producer-above", 4, 10, true, htm.CauseNone, 4, true},
		{"chained/producer-equal", 4, 4, false, htm.CauseCycle, 4, false},
		{"chained/producer-below", 4, 3, false, htm.CauseCycle, 4, false},
		{"chained/adjacent-above", 4, 5, true, htm.CauseNone, 4, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tx := activeTx(t)
			tx.PiC = tc.local
			out := chatsAccept(tx, tc.pic)
			if out.Accept != tc.accept {
				t.Fatalf("accept = %v, want %v (cause %v)", out.Accept, tc.accept, out.Cause)
			}
			if !tc.accept && out.Cause != tc.cause {
				t.Fatalf("cause = %v, want %v", out.Cause, tc.cause)
			}
			if tx.PiC != tc.localPost {
				t.Fatalf("PiC after = %v, want %v", tx.PiC, tc.localPost)
			}
			if tx.Cons != tc.consPost {
				t.Fatalf("Cons after = %v, want %v", tx.Cons, tc.consPost)
			}
		})
	}
}

// Validation-response table (Section IV-B): value mismatch always
// aborts; clean non-speculative responses finish the line; speculative
// ones stay pending unless the carried PiC exposes a cycle race.
func TestChatsValidationTable(t *testing.T) {
	const none = coherence.PiCNone
	c := NewCHATS()
	cases := []struct {
		name    string
		local   coherence.PiC
		isSpec  bool
		pic     coherence.PiC
		match   bool
		outcome htm.ValidationOutcome
		cause   htm.AbortCause
	}{
		{"mismatch/spec", 5, true, 10, false, htm.ValidationAbort, htm.CauseValidation},
		{"mismatch/nonspec", none, false, none, false, htm.ValidationAbort, htm.CauseValidation},
		{"clean/nonspec", 5, false, none, true, htm.ValidationDone, htm.CauseNone},
		{"clean/spec-power", 5, true, coherence.PiCPower, true, htm.ValidationPending, htm.CauseNone},
		{"clean/spec-above", 5, true, 9, true, htm.ValidationPending, htm.CauseNone},
		{"clean/spec-unchained-local", none, true, 3, true, htm.ValidationPending, htm.CauseNone},
		{"race/spec-equal", 5, true, 5, true, htm.ValidationAbort, htm.CauseCycle},
		{"race/spec-below", 5, true, 2, true, htm.ValidationAbort, htm.CauseCycle},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tx := activeTx(t)
			tx.PiC = tc.local
			out, cause := c.ValidationCheck(tx, tc.isSpec, tc.pic, tc.match)
			if out != tc.outcome || cause != tc.cause {
				t.Fatalf("= %v/%v, want %v/%v", out, cause, tc.outcome, tc.cause)
			}
		})
	}
}

// The PiC register is 5 bits with one encoding reserved: positions
// 0..30 are valid, PiCInit sits mid-range, and a chain can absorb at
// most PiCMax-PiCInit join-above steps before saturating.
func TestPiCRegisterEncoding(t *testing.T) {
	if coherence.PiCMax != 30 {
		t.Fatalf("PiCMax = %d, want 30 (5-bit register, one value reserved)", coherence.PiCMax)
	}
	if coherence.PiCInit != 15 {
		t.Fatalf("PiCInit = %d, want 15", coherence.PiCInit)
	}
	for p, want := range map[coherence.PiC]bool{
		coherence.PiCNone: false, coherence.PiCPower: false,
		0: true, coherence.PiCInit: true, coherence.PiCMax: true,
		coherence.PiCMax + 1: false, 63: false,
	} {
		if p.Valid() != want {
			t.Errorf("PiC(%d).Valid() = %v, want %v", p, p.Valid(), want)
		}
	}

	// Growing a chain one join-above at a time: starting from a fresh
	// A-rule producer at PiCInit, successive unchained producers can
	// stack up to PiCMax and the next join must fall back to abort.
	top := coherence.PiCInit
	joins := 0
	for {
		tx := activeTx(t)
		dec, sent := chatsDecide(tx, top)
		if dec == htm.DecideAbort {
			break
		}
		if sent != top+1 {
			t.Fatalf("join above %d sent %d, want %d", top, sent, top+1)
		}
		top = sent
		joins++
	}
	if top != coherence.PiCMax {
		t.Fatalf("chain saturated at %d, want %d", top, coherence.PiCMax)
	}
	if want := int(coherence.PiCMax - coherence.PiCInit); joins != want {
		t.Fatalf("absorbed %d joins above PiCInit, want %d", joins, want)
	}
}
