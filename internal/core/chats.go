// Package core implements the paper's contribution — the CHATS conflict
// resolution policy built on the Position-in-Chain (PiC) rules of
// Section IV-C / Fig. 3 — together with every system it is evaluated
// against in Section VI-B: the requester-wins baseline, the naive
// requester-speculates design, PowerTM, PCHATS and LEVC-BE-Idealized.
//
// A policy is pure decision logic: the protocol machinery (probes, VSB
// plumbing, validation timers, retries, the power token) lives in package
// machine and calls into the policy at the three decision points of the
// design: responding to a conflicting probe, accepting a SpecResp, and
// checking a validation response.
package core

import (
	"chats/internal/coherence"
	"chats/internal/htm"
)

// CHATS is the CHAined TransactionS policy (Sections III and IV).
type CHATS struct {
	traits htm.Traits
}

// NewCHATS builds the CHATS policy with the Table II configuration:
// 32 retries, 4 VSB entries, 50-cycle validation period, Rrestrict/W
// forwarding. Use the fields of Traits to build sensitivity variants.
func NewCHATS() *CHATS {
	return &CHATS{traits: htm.Traits{
		Retries:            32,
		UsesVSB:            true,
		VSBSize:            4,
		ValidationInterval: 50,
		ForwardMode:        htm.ForwardRrestrictW,
	}}
}

// NewCHATSWith builds a CHATS variant with explicit knobs (used by the
// sensitivity analyses of Section VII-A).
func NewCHATSWith(t htm.Traits) *CHATS {
	t.UsesVSB = true
	return &CHATS{traits: t}
}

func (c *CHATS) Name() string       { return "CHATS" }
func (c *CHATS) Traits() htm.Traits { return c.traits }

// forwardEligible applies the Section VI-D block-eligibility gating on
// top of the mechanical Forwardable check.
func forwardEligible(mode htm.ForwardMode, pc htm.ProbeContext) bool {
	if !pc.Forwardable {
		return false
	}
	if pc.InWriteSet {
		return true
	}
	switch mode {
	case htm.ForwardRW:
		return true
	case htm.ForwardW:
		return false
	case htm.ForwardRrestrictW:
		return !pc.PredictedWrite
	}
	return false
}

// chatsDecide implements the PiC update rules (Fig. 3 and the bullet
// list of Section IV-C). It mutates local.PiC when the rules require the
// producer to take or advance a chain position, and returns the PiC the
// SpecResp must carry. A DecideAbort return means requester-wins
// resolution (including the overflow/underflow cases).
func chatsDecide(local *htm.TxState, remote coherence.PiC) (htm.ProbeDecision, coherence.PiC) {
	l := local.PiC
	switch {
	case l == coherence.PiCNone && remote == coherence.PiCNone:
		// Fig. 3A: neither chained. Producer takes the initial position.
		local.PiC = coherence.PiCInit
		return htm.DecideSpec, local.PiC
	case l == coherence.PiCNone:
		// Fig. 3C: producer joins above the requester.
		if remote+1 > coherence.PiCMax {
			return htm.DecideAbort, coherence.PiCNone // overflow
		}
		local.PiC = remote + 1
		return htm.DecideSpec, local.PiC
	case remote == coherence.PiCNone:
		// Fig. 3B: requester will join below the producer.
		if l == 0 {
			return htm.DecideAbort, coherence.PiCNone // requester would underflow
		}
		return htm.DecideSpec, l
	case remote < l:
		// Requester already sits below: forward without changes.
		return htm.DecideSpec, l
	default: // remote >= l
		// The producer would have to raise its PiC past the requester's.
		// Legal only if it has no unvalidated speculative inputs
		// (Fig. 3D/E abort; Fig. 3F allows it once Cons is clear).
		if local.Cons {
			return htm.DecideAbort, coherence.PiCNone
		}
		if remote+1 > coherence.PiCMax {
			return htm.DecideAbort, coherence.PiCNone // overflow
		}
		local.PiC = remote + 1
		return htm.DecideSpec, local.PiC
	}
}

// DecideProbe resolves a conflicting probe under CHATS.
func (c *CHATS) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	if !forwardEligible(c.traits.ForwardMode, pc) {
		return htm.DecideAbort, coherence.PiCNone
	}
	return chatsDecide(local, pc.Req.PiC)
}

// chatsAccept is the consumer side shared by CHATS and PCHATS.
func chatsAccept(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	if pic == coherence.PiCPower {
		// Forwarded by a power transaction: consume without touching the
		// PiC (Section VI-B, PCHATS).
		local.Cons = true
		return htm.SpecOutcome{Accept: true}
	}
	if !pic.Valid() {
		// A producer never sends an invalid PiC; treat as a race.
		return htm.SpecOutcome{Cause: htm.CauseCycle}
	}
	if local.PiC == coherence.PiCNone {
		if pic == 0 {
			return htm.SpecOutcome{Cause: htm.CauseCycle} // would underflow
		}
		local.PiC = pic - 1
		local.Cons = true
		return htm.SpecOutcome{Accept: true}
	}
	// The PiC cannot change once the transaction consumes speculative
	// data; a producer at or below our position signals a cycle race.
	if local.PiC >= pic {
		return htm.SpecOutcome{Cause: htm.CauseCycle}
	}
	local.Cons = true
	return htm.SpecOutcome{Accept: true}
}

// AcceptSpec applies the consumer-side rules on SpecResp arrival.
func (c *CHATS) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	return chatsAccept(local, pic)
}

// ValidationCheck implements Section IV-B: abort on value mismatch;
// abort on a PiC at or below ours in a speculative response (cycle
// created by a race, Section IV-C); otherwise pending until real
// permissions arrive.
func (c *CHATS) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	if !match {
		return htm.ValidationAbort, htm.CauseValidation
	}
	if !isSpec {
		return htm.ValidationDone, htm.CauseNone
	}
	if pic == coherence.PiCPower {
		return htm.ValidationPending, htm.CauseNone
	}
	if local.PiC != coherence.PiCNone && local.PiC >= pic {
		return htm.ValidationAbort, htm.CauseCycle
	}
	return htm.ValidationPending, htm.CauseNone
}
