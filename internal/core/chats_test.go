package core

import (
	"testing"

	"chats/internal/coherence"
	"chats/internal/htm"
)

func activeTx(t *testing.T) *htm.TxState {
	t.Helper()
	tx := htm.NewTxState(4)
	tx.Begin(1, 16)
	return tx
}

func wsProbe(reqPiC coherence.PiC) htm.ProbeContext {
	return htm.ProbeContext{
		Kind:        coherence.FwdGetX,
		Req:         coherence.ReqInfo{ID: 1, IsTx: true, PiC: reqPiC},
		InWriteSet:  true,
		Forwardable: true,
	}
}

func TestChatsBothUnchained(t *testing.T) {
	c := NewCHATS()
	local := activeTx(t)
	dec, pic := c.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideSpec {
		t.Fatalf("decision = %v", dec)
	}
	if local.PiC != coherence.PiCInit || pic != coherence.PiCInit {
		t.Fatalf("producer PiC = %d, sent = %d, want %d", local.PiC, pic, coherence.PiCInit)
	}
	// Consumer side (Fig. 3A): requester lands one below.
	remote := activeTx(t)
	out := c.AcceptSpec(remote, pic)
	if !out.Accept || remote.PiC != coherence.PiCInit-1 || !remote.Cons {
		t.Fatalf("consumer out=%+v PiC=%d Cons=%v", out, remote.PiC, remote.Cons)
	}
}

func TestChatsUnchainedProducerJoinsAbove(t *testing.T) {
	// Fig. 3C: local unchained, requester chained at 10 -> local takes 11.
	c := NewCHATS()
	local := activeTx(t)
	dec, pic := c.DecideProbe(local, wsProbe(10))
	if dec != htm.DecideSpec || local.PiC != 11 || pic != 11 {
		t.Fatalf("dec=%v local=%d sent=%d", dec, local.PiC, pic)
	}
}

func TestChatsChainedProducerUnchainedRequester(t *testing.T) {
	// Fig. 3B: local chained at 20, requester unchained -> forward with 20.
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 20
	dec, pic := c.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideSpec || pic != 20 || local.PiC != 20 {
		t.Fatalf("dec=%v sent=%d local=%d", dec, pic, local.PiC)
	}
	remote := activeTx(t)
	out := c.AcceptSpec(remote, pic)
	if !out.Accept || remote.PiC != 19 {
		t.Fatalf("consumer PiC = %d", remote.PiC)
	}
}

func TestChatsUnderflowGuard(t *testing.T) {
	// Producer at PiC 0 cannot serve an unchained requester (would need -1).
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 0
	dec, _ := c.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideAbort {
		t.Fatalf("decision = %v, want abort on underflow", dec)
	}
}

func TestChatsOverflowGuard(t *testing.T) {
	c := NewCHATS()
	local := activeTx(t)
	dec, _ := c.DecideProbe(local, wsProbe(coherence.PiCMax))
	if dec != htm.DecideAbort {
		t.Fatalf("decision = %v, want abort on overflow", dec)
	}
	// Same when the local PiC would have to move past PiCMax.
	local2 := activeTx(t)
	local2.PiC = 5
	dec, _ = c.DecideProbe(local2, wsProbe(coherence.PiCMax))
	if dec != htm.DecideAbort {
		t.Fatal("overflow with chained local not caught")
	}
}

func TestChatsRequesterBelowForwards(t *testing.T) {
	// remote < local: forward unchanged even while consuming.
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 20
	local.Cons = true
	dec, pic := c.DecideProbe(local, wsProbe(10))
	if dec != htm.DecideSpec || pic != 20 || local.PiC != 20 {
		t.Fatalf("dec=%v pic=%d", dec, pic)
	}
}

func TestChatsConsBlocksRaisingPiC(t *testing.T) {
	// Fig. 3D/E: remote >= local while local has unvalidated inputs.
	c := NewCHATS()
	for _, remote := range []coherence.PiC{20, 25} {
		local := activeTx(t)
		local.PiC = 20
		local.Cons = true
		dec, _ := c.DecideProbe(local, wsProbe(remote))
		if dec != htm.DecideAbort {
			t.Fatalf("remote=%d: decision = %v, want abort", remote, dec)
		}
	}
}

func TestChatsFig3FRaisesWhenConsClear(t *testing.T) {
	// Fig. 3F: validated everything (Cons clear) -> may move above.
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 10
	local.Cons = false
	dec, pic := c.DecideProbe(local, wsProbe(25))
	if dec != htm.DecideSpec || local.PiC != 26 || pic != 26 {
		t.Fatalf("dec=%v local=%d", dec, local.PiC)
	}
}

func TestChatsConsumerCycleRaceAbortsOnArrival(t *testing.T) {
	// A SpecResp carrying a PiC at or below ours is a race-created cycle.
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 15
	local.Cons = true
	out := c.AcceptSpec(local, 15)
	if out.Accept || out.Cause != htm.CauseCycle {
		t.Fatalf("out = %+v", out)
	}
	out = c.AcceptSpec(local, 10)
	if out.Accept || out.Cause != htm.CauseCycle {
		t.Fatalf("out = %+v", out)
	}
	out = c.AcceptSpec(local, 16)
	if !out.Accept {
		t.Fatalf("out = %+v", out)
	}
}

func TestChatsValidationCheck(t *testing.T) {
	c := NewCHATS()
	local := activeTx(t)
	local.PiC = 14

	// Mismatch always aborts.
	if o, cause := c.ValidationCheck(local, true, 20, false); o != htm.ValidationAbort || cause != htm.CauseValidation {
		t.Fatalf("mismatch: %v %v", o, cause)
	}
	// Real permissions + match: done.
	if o, _ := c.ValidationCheck(local, false, coherence.PiCNone, true); o != htm.ValidationDone {
		t.Fatal("real match should validate")
	}
	// Spec response from above: pending.
	if o, _ := c.ValidationCheck(local, true, 20, true); o != htm.ValidationPending {
		t.Fatal("spec from above should stay pending")
	}
	// Spec response at or below our PiC: cycle.
	if o, cause := c.ValidationCheck(local, true, 14, true); o != htm.ValidationAbort || cause != htm.CauseCycle {
		t.Fatalf("cycle check: %v %v", o, cause)
	}
}

func TestChatsForwardModeGating(t *testing.T) {
	// A read-set conflict on a forwarded probe (the local core holds the
	// line in E state, so the directory forwarded the request here).
	readProbe := htm.ProbeContext{
		Kind:        coherence.FwdGetX,
		Req:         coherence.ReqInfo{IsTx: true, PiC: coherence.PiCNone},
		Forwardable: true,
	}
	// W mode: read-set conflicts never forward.
	w := NewCHATSWith(htm.Traits{Retries: 32, VSBSize: 4, ValidationInterval: 50, ForwardMode: htm.ForwardW})
	if dec, _ := w.DecideProbe(activeTx(t), readProbe); dec != htm.DecideAbort {
		t.Fatal("W mode forwarded a read block")
	}
	// R/W mode: read-set conflicts forward.
	rw := NewCHATSWith(htm.Traits{Retries: 32, VSBSize: 4, ValidationInterval: 50, ForwardMode: htm.ForwardRW})
	if dec, _ := rw.DecideProbe(activeTx(t), readProbe); dec != htm.DecideSpec {
		t.Fatal("R/W mode refused a read block")
	}
	// Rrestrict/W: predicted-write read blocks do not forward.
	rr := NewCHATS()
	predicted := readProbe
	predicted.PredictedWrite = true
	if dec, _ := rr.DecideProbe(activeTx(t), predicted); dec != htm.DecideAbort {
		t.Fatal("Rrestrict forwarded a predicted-write block")
	}
	if dec, _ := rr.DecideProbe(activeTx(t), readProbe); dec != htm.DecideSpec {
		t.Fatal("Rrestrict refused an unpredicted read block")
	}
	// Write-set blocks always eligible.
	if dec, _ := w.DecideProbe(activeTx(t), wsProbe(coherence.PiCNone)); dec != htm.DecideSpec {
		t.Fatal("W mode refused a write block")
	}
}

func TestBaselineAlwaysAborts(t *testing.T) {
	b := NewBaseline()
	if b.Traits().Retries != 6 || b.Traits().UsesVSB {
		t.Fatalf("traits = %+v", b.Traits())
	}
	dec, _ := b.DecideProbe(activeTx(t), wsProbe(10))
	if dec != htm.DecideAbort {
		t.Fatal("baseline must requester-win")
	}
}

func TestNaiveAlwaysForwards(t *testing.T) {
	n := NewNaiveRS()
	local := activeTx(t)
	dec, pic := n.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideSpec || pic != coherence.PiCNone {
		t.Fatalf("dec=%v pic=%d", dec, pic)
	}
	if local.PiC != coherence.PiCNone {
		t.Fatal("naive must not touch PiC")
	}
}

func TestNaiveCounterEscapesCycles(t *testing.T) {
	n := NewNaiveRS()
	local := activeTx(t)
	local.NaiveCounter = 3
	for i := 0; i < 2; i++ {
		o, _ := n.ValidationCheck(local, true, coherence.PiCNone, true)
		if o != htm.ValidationPending {
			t.Fatalf("attempt %d: %v", i, o)
		}
	}
	o, cause := n.ValidationCheck(local, true, coherence.PiCNone, true)
	if o != htm.ValidationAbort || cause != htm.CauseCycle {
		t.Fatalf("counter exhaustion: %v %v", o, cause)
	}
	// Success resets the counter to the full budget.
	local2 := activeTx(t)
	local2.NaiveCounter = 1
	if o, _ := n.ValidationCheck(local2, false, coherence.PiCNone, true); o != htm.ValidationDone {
		t.Fatal("real match must validate")
	}
	if local2.NaiveCounter != n.Traits().NaiveBudget {
		t.Fatalf("counter not reset: %d", local2.NaiveCounter)
	}
}

func TestPowerDecisions(t *testing.T) {
	p := NewPower()
	// Power responder nacks.
	local := activeTx(t)
	local.Power = true
	if dec, _ := p.DecideProbe(local, wsProbe(coherence.PiCNone)); dec != htm.DecideNack {
		t.Fatal("power responder must nack")
	}
	// Power requester wins (even against a power responder — cannot
	// happen with a unique token, but requester priority is the rule).
	pc := wsProbe(coherence.PiCNone)
	pc.Req.Power = true
	if dec, _ := p.DecideProbe(activeTx(t), pc); dec != htm.DecideAbort {
		t.Fatal("responder must abort for a power requester")
	}
	// Neither: baseline requester-wins.
	if dec, _ := p.DecideProbe(activeTx(t), wsProbe(coherence.PiCNone)); dec != htm.DecideAbort {
		t.Fatal("plain conflict must requester-win")
	}
}

func TestPCHATSPowerProducer(t *testing.T) {
	p := NewPCHATS()
	local := activeTx(t)
	local.Power = true
	dec, pic := p.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideSpec || pic != coherence.PiCPower {
		t.Fatalf("dec=%v pic=%d", dec, pic)
	}
	// Ineligible block: power nacks instead of aborting itself.
	read := htm.ProbeContext{Kind: coherence.FwdGetX, Req: coherence.ReqInfo{IsTx: true, PiC: coherence.PiCNone}, PredictedWrite: true, Forwardable: true}
	if dec, _ := p.DecideProbe(local, read); dec != htm.DecideNack {
		t.Fatal("power must nack ineligible blocks")
	}
	inv := htm.ProbeContext{Kind: coherence.InvProbe, Req: coherence.ReqInfo{IsTx: true, PiC: coherence.PiCNone}, InWriteSet: false}
	if dec, _ := p.DecideProbe(local, inv); dec != htm.DecideNack {
		t.Fatal("power must nack invalidations (PowerTM keeps its data)")
	}
	// Consumer of power data keeps its PiC.
	cons := activeTx(t)
	cons.PiC = 7
	out := p.AcceptSpec(cons, coherence.PiCPower)
	if !out.Accept || cons.PiC != 7 || !cons.Cons {
		t.Fatalf("out=%+v PiC=%d", out, cons.PiC)
	}
	// An unchained consumer of power data stays unchained.
	cons2 := activeTx(t)
	p.AcceptSpec(cons2, coherence.PiCPower)
	if cons2.PiC != coherence.PiCNone {
		t.Fatal("power forwarding must not chain the consumer")
	}
	// Power transactions never consume: retry.
	pw := activeTx(t)
	pw.Power = true
	if out := p.AcceptSpec(pw, 10); !out.Retry {
		t.Fatalf("power consumer outcome = %+v", out)
	}
	// Validation of power-forwarded data is exempt from the cycle check.
	if o, _ := p.ValidationCheck(cons, true, coherence.PiCPower, true); o != htm.ValidationPending {
		t.Fatal("power spec response should stay pending")
	}
}

func TestPCHATSPowerRequesterWins(t *testing.T) {
	p := NewPCHATS()
	local := activeTx(t)
	local.PiC = 20
	pc := wsProbe(coherence.PiCNone)
	pc.Req.Power = true
	if dec, _ := p.DecideProbe(local, pc); dec != htm.DecideAbort {
		t.Fatal("power requester must win under PCHATS")
	}
}

func TestLEVCRestrictions(t *testing.T) {
	l := NewLEVCIdeal()
	// Fresh producer forwards a written block.
	local := activeTx(t)
	local.TS = 100
	if dec, _ := l.DecideProbe(local, wsProbe(coherence.PiCNone)); dec != htm.DecideSpec {
		t.Fatal("fresh producer should forward")
	}
	// Single consumer: after one forwarding, no more.
	local.ForwardedTo = 1
	pc := wsProbe(coherence.PiCNone)
	pc.Req.TS = 50 // older requester
	if dec, _ := l.DecideProbe(local, pc); dec != htm.DecideAbort {
		t.Fatal("older requester should win when forwarding is exhausted")
	}
	pc.Req.TS = 200 // younger requester
	if dec, _ := l.DecideProbe(local, pc); dec != htm.DecideNack {
		t.Fatal("younger requester should be nacked")
	}
	// Consumers never forward (chain length 1).
	cons := activeTx(t)
	cons.TS = 100
	cons.Cons = true
	cons.VSB.Add(0x40, [8]uint64{})
	pc2 := wsProbe(coherence.PiCNone)
	pc2.Req.TS = 200
	if dec, _ := l.DecideProbe(cons, pc2); dec != htm.DecideNack {
		t.Fatal("consumer must not forward")
	}
	// Read blocks never forward (W mode).
	read := htm.ProbeContext{Kind: coherence.FwdGetX, Req: coherence.ReqInfo{IsTx: true, TS: 200}, Forwardable: true}
	fresh := activeTx(t)
	fresh.TS = 100
	if dec, _ := l.DecideProbe(fresh, read); dec != htm.DecideNack {
		t.Fatal("LEVC must not forward read blocks")
	}
}

func TestRegistry(t *testing.T) {
	for _, k := range Kinds() {
		p, err := New(k)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: empty name", k)
		}
		if p.Traits().Retries <= 0 {
			t.Fatalf("%s: retries = %d", k, p.Traits().Retries)
		}
		if _, err := NewWith(k, p.Traits()); err != nil {
			t.Fatalf("NewWith(%s): %v", k, err)
		}
	}
	if _, err := New(Kind("nope")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := NewWith(Kind("nope"), htm.Traits{}); err == nil {
		t.Fatal("unknown kind accepted by NewWith")
	}
	if len(KindNames()) != len(Kinds()) {
		t.Fatal("KindNames length mismatch")
	}
}
