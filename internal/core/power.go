package core

import (
	"chats/internal/coherence"
	"chats/internal/htm"
)

// Power is the PowerTM-like dual-priority system (Section VI-B): after
// the second conflict-induced abort a thread acquires the (unique) power
// token; conflicts involving a power transaction are resolved in its
// favor, and a power responder nacks requesters without invalidating
// their data.
type Power struct {
	traits htm.Traits
}

// NewPower builds PowerTM with Table II's 2 retries.
func NewPower() *Power {
	return &Power{traits: htm.Traits{
		Retries:          2,
		UsesPower:        true,
		PowerAfterAborts: 2,
	}}
}

// NewPowerWith builds a PowerTM variant.
func NewPowerWith(t htm.Traits) *Power {
	t.UsesVSB = false
	t.UsesPower = true
	if t.PowerAfterAborts == 0 {
		t.PowerAfterAborts = 2
	}
	return &Power{traits: t}
}

func (p *Power) Name() string       { return "Power" }
func (p *Power) Traits() htm.Traits { return p.traits }

// DecideProbe: a power responder nacks; a power requester wins; otherwise
// requester-wins as in the baseline.
func (p *Power) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	if pc.Req.Power {
		return htm.DecideAbort, coherence.PiCNone
	}
	if local.Power {
		return htm.DecideNack, coherence.PiCNone
	}
	return htm.DecideAbort, coherence.PiCNone
}

// AcceptSpec never runs: PowerTM does not forward.
func (p *Power) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	panic("core: Power received a SpecResp")
}

// ValidationCheck never runs: PowerTM has no VSB.
func (p *Power) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	panic("core: Power validated a line")
}

// PCHATS combines CHATS with PowerTM (Section VI-B): power transactions
// are exclusively producers, sit above every chain (PiCPower), and
// conflicts are systematically resolved in their favor; everything else
// follows the CHATS rules.
type PCHATS struct {
	traits htm.Traits
}

// NewPCHATS builds PCHATS with Table II's configuration: 1 retry,
// 4 VSB entries, 50-cycle validation, Rrestrict/W forwarding.
func NewPCHATS() *PCHATS {
	return &PCHATS{traits: htm.Traits{
		Retries:            1,
		UsesVSB:            true,
		VSBSize:            4,
		ValidationInterval: 50,
		UsesPower:          true,
		PowerAfterAborts:   2,
		ForwardMode:        htm.ForwardRrestrictW,
	}}
}

// NewPCHATSWith builds a PCHATS variant.
func NewPCHATSWith(t htm.Traits) *PCHATS {
	t.UsesVSB = true
	t.UsesPower = true
	if t.PowerAfterAborts == 0 {
		t.PowerAfterAborts = 2
	}
	return &PCHATS{traits: t}
}

func (p *PCHATS) Name() string       { return "PCHATS" }
func (p *PCHATS) Traits() htm.Traits { return p.traits }

// DecideProbe: a power requester always wins; a power responder forwards
// (it is always a producer) or nacks when the block is ineligible;
// otherwise the CHATS PiC rules apply.
func (p *PCHATS) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	if pc.Req.Power {
		return htm.DecideAbort, coherence.PiCNone
	}
	if local.Power {
		if !forwardEligible(p.traits.ForwardMode, pc) {
			return htm.DecideNack, coherence.PiCNone
		}
		return htm.DecideSpec, coherence.PiCPower
	}
	if !forwardEligible(p.traits.ForwardMode, pc) {
		return htm.DecideAbort, coherence.PiCNone
	}
	return chatsDecide(local, pc.Req.PiC)
}

// AcceptSpec: power transactions never consume — they retry the request
// instead (the responder, seeing a power requester, will then abort).
// Everyone else follows the CHATS consumer rules.
func (p *PCHATS) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	if local.Power {
		return htm.SpecOutcome{Retry: true}
	}
	return chatsAccept(local, pic)
}

// ValidationCheck follows CHATS, with PiCPower responses exempt from the
// cycle check (the power producer commits independently).
func (p *PCHATS) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	if !match {
		return htm.ValidationAbort, htm.CauseValidation
	}
	if !isSpec {
		return htm.ValidationDone, htm.CauseNone
	}
	if pic == coherence.PiCPower {
		return htm.ValidationPending, htm.CauseNone
	}
	if local.PiC != coherence.PiCNone && local.PiC >= pic {
		return htm.ValidationAbort, htm.CauseCycle
	}
	return htm.ValidationPending, htm.CauseNone
}
