package core

import (
	"testing"

	"chats/internal/coherence"
	"chats/internal/htm"
)

// The no-forwarding systems must fail loudly if the machine ever routes
// speculative data at them — that would be a protocol bug.
func TestNonForwardingSystemsPanicOnSpecPaths(t *testing.T) {
	cases := []struct {
		name string
		spec func()
		val  func()
	}{
		{"baseline",
			func() { NewBaseline().AcceptSpec(activeTx(t), 10) },
			func() { NewBaseline().ValidationCheck(activeTx(t), true, 10, true) }},
		{"power",
			func() { NewPower().AcceptSpec(activeTx(t), 10) },
			func() { NewPower().ValidationCheck(activeTx(t), true, 10, true) }},
	}
	for _, c := range cases {
		for _, fn := range []func(){c.spec, c.val} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", c.name)
					}
				}()
				fn()
			}()
		}
	}
}

func TestLEVCValidationValueOnly(t *testing.T) {
	l := NewLEVCIdeal()
	local := activeTx(t)
	if o, cause := l.ValidationCheck(local, true, coherence.PiCNone, false); o != htm.ValidationAbort || cause != htm.CauseValidation {
		t.Fatal("mismatch must abort")
	}
	if o, _ := l.ValidationCheck(local, true, coherence.PiCNone, true); o != htm.ValidationPending {
		t.Fatal("matching spec response must stay pending")
	}
	if o, _ := l.ValidationCheck(local, false, coherence.PiCNone, true); o != htm.ValidationDone {
		t.Fatal("real matching data must validate")
	}
}

func TestPCHATSValidationMismatch(t *testing.T) {
	p := NewPCHATS()
	local := activeTx(t)
	local.PiC = 12
	if o, cause := p.ValidationCheck(local, true, 20, false); o != htm.ValidationAbort || cause != htm.CauseValidation {
		t.Fatal("mismatch must abort")
	}
	if o, _ := p.ValidationCheck(local, false, coherence.PiCNone, true); o != htm.ValidationDone {
		t.Fatal("real data must validate")
	}
	if o, cause := p.ValidationCheck(local, true, 12, true); o != htm.ValidationAbort || cause != htm.CauseCycle {
		t.Fatal("PiC cycle must abort under PCHATS too")
	}
	if o, _ := p.ValidationCheck(local, true, 20, true); o != htm.ValidationPending {
		t.Fatal("spec from above must stay pending")
	}
}

func TestPCHATSNonPowerFollowsCHATSRules(t *testing.T) {
	p := NewPCHATS()
	// A read-set block predicted to be written is ineligible: a plain
	// (non-power) responder resolves requester-wins.
	pc := htm.ProbeContext{
		Kind:           coherence.FwdGetX,
		Req:            coherence.ReqInfo{IsTx: true, PiC: coherence.PiCNone},
		PredictedWrite: true,
		Forwardable:    true,
	}
	if dec, _ := p.DecideProbe(activeTx(t), pc); dec != htm.DecideAbort {
		t.Fatal("non-power responder must abort on ineligible block")
	}
	// Eligible write-set block: CHATS forwarding applies.
	local := activeTx(t)
	dec, pic := p.DecideProbe(local, wsProbe(coherence.PiCNone))
	if dec != htm.DecideSpec || pic != coherence.PiCInit {
		t.Fatalf("dec=%v pic=%d", dec, pic)
	}
}

func TestVariantConstructorDefaults(t *testing.T) {
	// NewNaiveRSWith fills the naive budget when omitted.
	n := NewNaiveRSWith(htm.Traits{Retries: 2, VSBSize: 4, ValidationInterval: 50})
	if n.Traits().NaiveBudget != 16 {
		t.Fatalf("naive budget = %d", n.Traits().NaiveBudget)
	}
	// Power/PCHATS variants fill PowerAfterAborts.
	if NewPowerWith(htm.Traits{Retries: 2}).Traits().PowerAfterAborts != 2 {
		t.Fatal("power trigger default missing")
	}
	if NewPCHATSWith(htm.Traits{Retries: 1, VSBSize: 4}).Traits().PowerAfterAborts != 2 {
		t.Fatal("pchats trigger default missing")
	}
	if !NewPCHATSWith(htm.Traits{Retries: 1}).Traits().UsesPower {
		t.Fatal("pchats must use power")
	}
	if NewPowerWith(htm.Traits{UsesVSB: true}).Traits().UsesVSB {
		t.Fatal("power must not use a VSB")
	}
}

func TestChatsAcceptPowerAndInvalidPiC(t *testing.T) {
	c := NewCHATS()
	// PiCPower consumption leaves the PiC alone even under plain CHATS
	// (arises when PCHATS machinery shares the consumer path).
	local := activeTx(t)
	out := c.AcceptSpec(local, coherence.PiCPower)
	if !out.Accept || local.PiC != coherence.PiCNone || !local.Cons {
		t.Fatalf("power consume: %+v PiC=%d", out, local.PiC)
	}
	// A malformed PiC is treated as a race.
	out = c.AcceptSpec(activeTx(t), coherence.PiC(-7))
	if out.Accept || out.Cause != htm.CauseCycle {
		t.Fatalf("invalid PiC accepted: %+v", out)
	}
	// A producer at position 0 cannot chain an unset consumer below it.
	out = c.AcceptSpec(activeTx(t), 0)
	if out.Accept || out.Cause != htm.CauseCycle {
		t.Fatalf("underflow accepted: %+v", out)
	}
}

func TestNaiveDecideInvNotForwardable(t *testing.T) {
	n := NewNaiveRS()
	pc := htm.ProbeContext{
		Kind: coherence.InvProbe,
		Req:  coherence.ReqInfo{IsTx: true},
		// Forwardable false: invalidations cannot carry data.
	}
	if dec, _ := n.DecideProbe(activeTx(t), pc); dec != htm.DecideAbort {
		t.Fatal("naive forwarded an invalidation")
	}
}
