package core

import (
	"chats/internal/coherence"
	"chats/internal/htm"
)

// LEVCIdeal is LEVC-BE-Idealized (Section VI-B): a best-effort adaptation
// of Pant & Byrd's Limited Early Value Communication on top of a
// requester-stall design with idealized timestamps (never roll over,
// instantly propagated at no cost). Its restrictions, faithfully kept:
//
//   - a producer can forward speculative data to a single consumer;
//   - chains of length greater than 1 are disallowed (a transaction that
//     has consumed unvalidated data never forwards);
//   - the timestamp-based deadlock avoidance is unaware of forwarding
//     dependencies — the paper's key criticism, which this model
//     reproduces (a high-priority transaction can abort the producer it
//     consumed from, wasting the forwarding).
type LEVCIdeal struct {
	traits htm.Traits
}

// NewLEVCIdeal builds LEVC-BE-Idealized with Table II's configuration:
// 64 retries, 4 VSB entries, back-to-back (0-cycle) validation, written
// blocks only.
func NewLEVCIdeal() *LEVCIdeal {
	return &LEVCIdeal{traits: htm.Traits{
		Retries:            64,
		UsesVSB:            true,
		VSBSize:            4,
		ValidationInterval: 0,
		ForwardMode:        htm.ForwardW,
	}}
}

// NewLEVCIdealWith builds an LEVC variant.
func NewLEVCIdealWith(t htm.Traits) *LEVCIdeal {
	t.UsesVSB = true
	return &LEVCIdeal{traits: t}
}

func (l *LEVCIdeal) Name() string       { return "LEVC-BE-Idealized" }
func (l *LEVCIdeal) Traits() htm.Traits { return l.traits }

// DecideProbe forwards when LEVC's draconian restrictions permit it;
// otherwise it falls back to timestamp-ordered requester-stall: an older
// requester wins (responder aborts), a younger one is nacked and stalls.
func (l *LEVCIdeal) DecideProbe(local *htm.TxState, pc htm.ProbeContext) (htm.ProbeDecision, coherence.PiC) {
	canForward := forwardEligible(l.traits.ForwardMode, pc) &&
		local.VSB.Empty() && !local.Cons && // consumers never forward (chain length 1)
		local.ForwardedTo == 0 // single consumer per producer
	if canForward {
		return htm.DecideSpec, coherence.PiCNone
	}
	if pc.Req.TS < local.TS {
		return htm.DecideAbort, coherence.PiCNone
	}
	return htm.DecideNack, coherence.PiCNone
}

// AcceptSpec always consumes (the timestamp scheme ignores the created
// dependency — deliberately, to model LEVC's shortcoming).
func (l *LEVCIdeal) AcceptSpec(local *htm.TxState, pic coherence.PiC) htm.SpecOutcome {
	local.Cons = true
	return htm.SpecOutcome{Accept: true}
}

// ValidationCheck is value-only.
func (l *LEVCIdeal) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	if !match {
		return htm.ValidationAbort, htm.CauseValidation
	}
	if !isSpec {
		return htm.ValidationDone, htm.CauseNone
	}
	return htm.ValidationPending, htm.CauseNone
}
