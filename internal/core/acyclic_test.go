package core

import (
	"testing"

	"chats/internal/coherence"
	"chats/internal/htm"
	"chats/internal/sim"
)

// modelWorld drives the CHATS decision functions against an exact
// dependency-graph oracle. The oracle tracks every accepted forwarding as
// an edge consumer→producer ("must commit after") and asserts the graph
// stays acyclic — the paper's central correctness claim for the PiC
// mechanism when decisions see up-to-date PiCs (races are resolved by the
// validation-time abort, exercised in the machine tests).
type modelWorld struct {
	t      *testing.T
	policy htm.Policy
	txs    []*htm.TxState
	// deps[i] = set of producers transaction i consumed from (uncommitted).
	deps []map[int]bool
	// consumers[j] = set of consumers of j's data.
	consumers []map[int]bool
	attempts  []int
}

func newModelWorld(t *testing.T, policy htm.Policy, n int) *modelWorld {
	w := &modelWorld{t: t, policy: policy}
	for i := 0; i < n; i++ {
		tx := htm.NewTxState(64) // large VSB: capacity is not under test
		tx.Begin(1, 16)
		tx.TS = uint64(i)
		w.txs = append(w.txs, tx)
		w.deps = append(w.deps, map[int]bool{})
		w.consumers = append(w.consumers, map[int]bool{})
		w.attempts = append(w.attempts, 1)
	}
	return w
}

// reset aborts or commits transaction i and starts its next attempt.
func (w *modelWorld) reset(i int) {
	for p := range w.deps[i] {
		delete(w.consumers[p], i)
	}
	w.deps[i] = map[int]bool{}
	for c := range w.consumers[i] {
		delete(w.deps[c], i)
	}
	w.consumers[i] = map[int]bool{}
	w.attempts[i]++
	w.txs[i].MarkAborted(htm.CauseConflict)
	w.txs[i].Finish()
	w.txs[i].Begin(w.attempts[i], 16)
	w.txs[i].TS = uint64(len(w.txs)*w.attempts[i] + i)
}

// abortCascade aborts i and, transitively, everyone that consumed from it
// (what validation mismatches do in the real system).
func (w *modelWorld) abortCascade(i int) {
	victims := []int{i}
	seen := map[int]bool{i: true}
	for len(victims) > 0 {
		v := victims[0]
		victims = victims[1:]
		for c := range w.consumers[v] {
			if !seen[c] {
				seen[c] = true
				victims = append(victims, c)
			}
		}
		w.reset(v)
	}
}

// commit commits producer j if it has no unvalidated inputs; its
// consumers' dependencies on it resolve (successful validation), and
// their Cons bit clears when their last producer commits.
func (w *modelWorld) commit(j int) bool {
	if len(w.deps[j]) != 0 {
		return false // must wait for its own producers
	}
	for c := range w.consumers[j] {
		delete(w.deps[c], j)
		delete(w.consumers[j], c)
		if len(w.deps[c]) == 0 {
			w.txs[c].Cons = false // VSB drained
		}
	}
	w.txs[j].Finish()
	w.attempts[j] = 1
	w.txs[j].Begin(1, 16)
	w.txs[j].TS = w.txs[j].TS + uint64(len(w.txs))
	return true
}

// conflict models consumer i requesting a line owned by producer j.
func (w *modelWorld) conflict(i, j int) {
	pc := htm.ProbeContext{
		Kind:        coherence.FwdGetX,
		Req:         coherence.ReqInfo{ID: i, IsTx: true, PiC: w.txs[i].PiC, TS: w.txs[i].TS},
		InWriteSet:  true,
		Forwardable: true,
	}
	dec, pic := w.policy.DecideProbe(w.txs[j], pc)
	switch dec {
	case htm.DecideAbort:
		w.abortCascade(j)
	case htm.DecideNack:
		// requester retries later; nothing changes
	case htm.DecideSpec:
		out := w.policy.AcceptSpec(w.txs[i], pic)
		switch {
		case out.Cause != htm.CauseNone:
			w.abortCascade(i)
		case out.Retry:
			// dropped
		case out.Accept:
			w.txs[j].Forwarded = true
			w.txs[j].ForwardedTo++
			w.deps[i][j] = true
			w.consumers[j][i] = true
		}
	}
}

// acyclic verifies the dependency graph has no cycle.
func (w *modelWorld) acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(w.txs))
	var visit func(int) bool
	visit = func(v int) bool {
		color[v] = gray
		for p := range w.deps[v] {
			if color[p] == gray {
				return false
			}
			if color[p] == white && !visit(p) {
				return false
			}
		}
		color[v] = black
		return true
	}
	for v := range w.txs {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

// picConsistent checks the structural invariant the paper states: a
// producer's PiC is strictly greater than the PiC of every transaction
// that consumed from it.
func (w *modelWorld) picConsistent() bool {
	for c := range w.txs {
		for p := range w.deps[c] {
			pp, cp := w.txs[p].PiC, w.txs[c].PiC
			if pp == coherence.PiCPower {
				continue
			}
			if !pp.Valid() || !cp.Valid() || pp <= cp {
				return false
			}
		}
	}
	return true
}

func runModel(t *testing.T, policy htm.Policy, seed uint64, steps, n int) {
	w := newModelWorld(t, policy, n)
	r := sim.NewRand(seed)
	for s := 0; s < steps; s++ {
		switch r.Intn(10) {
		case 0: // occasional commit attempt
			w.commit(r.Intn(n))
		case 1: // occasional spontaneous abort (capacity etc.)
			w.abortCascade(r.Intn(n))
		default:
			i := r.Intn(n)
			j := r.Intn(n)
			if i != j {
				w.conflict(i, j)
			}
		}
		if !w.acyclic() {
			t.Fatalf("seed %d step %d: dependency cycle created", seed, s)
		}
		if _, isChats := policy.(*CHATS); isChats && !w.picConsistent() {
			t.Fatalf("seed %d step %d: producer PiC not above consumer PiC", seed, s)
		}
		for i, tx := range w.txs {
			if tx.PiC != coherence.PiCNone && !tx.PiC.Valid() && tx.PiC != coherence.PiCPower {
				t.Fatalf("seed %d step %d: tx %d PiC out of range: %d", seed, s, i, tx.PiC)
			}
		}
	}
}

func TestCHATSNeverCreatesCycles(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		runModel(t, NewCHATS(), seed, 3000, 8)
	}
}

func TestCHATSManyTransactions(t *testing.T) {
	runModel(t, NewCHATS(), 99, 20000, 16)
}

func TestLEVCNeverCreatesCycles(t *testing.T) {
	// LEVC's chain-length-1 restriction also keeps the graph acyclic
	// (a consumer never forwards), even without PiCs.
	for seed := uint64(1); seed <= 10; seed++ {
		runModel(t, NewLEVCIdeal(), seed, 3000, 8)
	}
}

// The naive design does create cycles — that is the whole point of
// Fig. 1. This test documents the failure mode the escape counter exists
// for: with naive forwarding, mutual producer/consumer pairs arise.
func TestNaiveDoesCreateCycles(t *testing.T) {
	policy := NewNaiveRS()
	w := newModelWorld(t, policy, 2)
	w.conflict(0, 1) // 0 consumes from 1 on line A
	w.conflict(1, 0) // 1 consumes from 0 on line B: cycle
	if w.acyclic() {
		t.Fatal("expected the naive policy to allow a cycle")
	}
}

// CHATS refuses exactly that scenario: after 0 consumes from 1, a
// conflicting request from 1 makes 0's producer-side rules abort rather
// than forward (0 cannot raise its PiC past its own producer).
func TestCHATSRefusesMutualForwarding(t *testing.T) {
	w := newModelWorld(t, NewCHATS(), 2)
	w.conflict(0, 1)
	if len(w.deps[0]) != 1 {
		t.Fatal("setup: first forwarding should succeed")
	}
	w.conflict(1, 0)
	if !w.acyclic() {
		t.Fatal("CHATS created a cycle")
	}
	if len(w.deps[1]) != 0 {
		t.Fatal("reverse edge should not exist")
	}
}
