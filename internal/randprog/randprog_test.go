package randprog_test

import (
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/randprog"
)

func mustParse(t *testing.T, spec string) *randprog.Program {
	t.Helper()
	p, err := randprog.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"rp1;cores=1;pool=2;pack=1;priv=0|[l0,s1+5]",
		"rp1;cores=2;pool=4;pack=2;priv=2|[l0,a0+3,w10] S0+7 L3|W25 [s2+1] [l1,l2,a3+9,w1]",
		"rp1;cores=3;pool=6;pack=1;priv=1|||[a5+2]", // empty core programs
	}
	for _, spec := range specs {
		p := mustParse(t, spec)
		if got := p.String(); got != spec {
			t.Errorf("round trip:\n in  %s\n out %s", spec, got)
		}
		// And String -> Parse -> String is a fixpoint.
		q := mustParse(t, p.String())
		if q.String() != p.String() {
			t.Errorf("String not a fixpoint for %s", spec)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"rp2;cores=1;pool=1;pack=1;priv=0|",
		"rp1;cores=2;pool=2;pack=1;priv=0|[l0]",        // core count mismatch
		"rp1;cores=1;pool=2;pack=1;priv=0|[l5]",        // slot out of pool
		"rp1;cores=1;pool=2;pack=1;priv=0|S0+1",        // private store with priv=0
		"rp1;cores=1;pool=2;pack=9;priv=0|[l0]",        // pack too large
		"rp1;cores=1;pool=2;pack=1;priv=0|[x0]",        // unknown op
		"rp1;cores=1;pool=2;pack=1;priv=0|[l0,s1]",     // store missing +arg
		"rp1;cores=1;pool=2;pack=1;priv=0|[l0 s1+2]",   // space inside block
		"rp1;cores=0;pool=2;pack=1;priv=0",             // no cores
		"rp1;cores=1;pool=2;pack=1;priv=0|Q9",          // unknown action
	}
	for _, spec := range bad {
		if _, err := randprog.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := randprog.Preset(1)
	a := randprog.Generate(7, g)
	b := randprog.Generate(7, g)
	if a.String() != b.String() {
		t.Fatal("same seed generated different programs")
	}
	c := randprog.Generate(8, g)
	if a.String() == c.String() {
		t.Fatal("different seeds generated identical programs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Commutative() {
		t.Fatal("preset (AddFrac=1) must generate commutative programs")
	}
	// Generated programs must themselves round-trip.
	q := mustParse(t, a.String())
	if q.String() != a.String() {
		t.Fatal("generated program does not round-trip")
	}
}

func TestGenerateStoresWhenRequested(t *testing.T) {
	g := randprog.Preset(0)
	g.AddFrac = 0 // all writes become order-sensitive stores
	p := randprog.Generate(3, g)
	if p.Commutative() {
		t.Fatal("AddFrac=0 program reported commutative")
	}
}

func TestReplaySemantics(t *testing.T) {
	// Two cores, one shared slot; core 1 blind-overwrites the slot, so
	// commit order decides the final state. (A store fed by a single
	// load of the same slot is additive in the loaded value and would
	// incidentally commute with the add.)
	p := mustParse(t, "rp1;cores=2;pool=1;pack=1;priv=1|[a0+5] S0+9|[s0+1]")
	serial, err := p.Replay(p.SerialOrder())
	if err != nil {
		t.Fatal(err)
	}
	rev, err := p.Replay([]randprog.BlockRef{{Core: 1}, {Core: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Shared[0] == rev.Shared[0] {
		t.Fatal("order-sensitive program replayed identically in both orders")
	}
	if serial.Priv[0][0] != 9 || rev.Priv[0][0] != 9 {
		t.Fatal("private store lost in replay")
	}
	// A commutative program replays identically in any order.
	q := mustParse(t, "rp1;cores=2;pool=1;pack=1;priv=0|[a0+5]|[l0,a0+3]")
	s1, _ := q.Replay(q.SerialOrder())
	s2, _ := q.Replay([]randprog.BlockRef{{Core: 1}, {Core: 0}})
	if s1.Shared[0] != s2.Shared[0] {
		t.Fatal("commutative program diverged across orders")
	}
}

func TestReplayRejectsBadOrders(t *testing.T) {
	p := mustParse(t, "rp1;cores=1;pool=1;pack=1;priv=0|[a0+1] [a0+2]")
	if _, err := p.Replay([]randprog.BlockRef{{Core: 0, Index: 0}}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := p.Replay([]randprog.BlockRef{{Core: 0, Index: 0}, {Core: 0, Index: 0}}); err == nil {
		t.Fatal("repeated block accepted")
	}
	if _, err := p.Replay([]randprog.BlockRef{{Core: 0, Index: 0}, {Core: 1, Index: 0}}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestNumOpsAndClone(t *testing.T) {
	p := mustParse(t, "rp1;cores=2;pool=2;pack=1;priv=1|[l0,a1+2] S0+3|W5 [w7]")
	if got := p.NumOps(); got != 5 {
		t.Fatalf("NumOps = %d, want 5", got)
	}
	q := p.Clone()
	q.Seq[0][0].Ops[0].Slot = 1
	if p.Seq[0][0].Ops[0].Slot != 0 {
		t.Fatal("Clone shares op storage")
	}
}

// The fixed-program workload must run and self-check on every system
// (commutative program → exact shared-state check inside Check).
func TestWorkloadOnMachine(t *testing.T) {
	g := randprog.Preset(0)
	p := randprog.Generate(11, g)
	for _, kind := range core.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			policy, err := core.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			cfg := machine.DefaultConfig()
			cfg.Cores = p.Cores
			cfg.CycleLimit = 100_000_000
			m, err := machine.New(cfg, policy)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run(randprog.NewWorkload(p.Clone()))
			if err != nil {
				t.Fatal(err)
			}
			if st.Commits+st.Fallbacks != uint64(p.NumBlocks(-1)) {
				t.Fatalf("commits %d + fallbacks %d != %d blocks",
					st.Commits, st.Fallbacks, p.NumBlocks(-1))
			}
		})
	}
}

// Family mode adapts the program to the machine's thread count.
func TestFamilyAdaptsToCores(t *testing.T) {
	g := randprog.Preset(2) // wants 16 cores
	w := randprog.Family("randprog", 1, g)
	policy, _ := core.New(core.KindCHATS)
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.CycleLimit = 100_000_000
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w); err != nil {
		t.Fatal(err)
	}
	if w.Program().Cores != 4 {
		t.Fatalf("family program has %d cores on a 4-core machine", w.Program().Cores)
	}
	if !strings.HasPrefix(w.Program().String(), "rp1;cores=4;") {
		t.Fatalf("unexpected spec: %s", w.Program().String())
	}
}
