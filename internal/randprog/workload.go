package randprog

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
)

// Workload adapts a Program to machine.Workload. In fixed mode
// (NewWorkload) the program is given up front and the machine must run
// with at least Program.Cores threads; in family mode (Family) the
// program is generated at Setup time for however many threads the
// machine has, so the registered benchmark composes with any -cores
// sweep.
//
// Check verifies the exactly-checkable slices of the final memory:
// every private slot must hold its core's last non-tx store, and for
// commutative programs the shared pool must equal the serial
// interpreter's result (commit order cannot matter). Order-sensitive
// shared state needs a commit-order witness and is checked by
// internal/difftest instead.
type Workload struct {
	name string
	prog *Program               // fixed mode
	gen  func(threads int) *Program // family mode

	p        *Program // active program after Setup
	poolBase mem.Addr
	privBase mem.Addr
}

// NewWorkload wraps a fixed program.
func NewWorkload(p *Program) *Workload {
	return &Workload{name: "randprog", prog: p}
}

// Family returns a self-generating workload: each Setup draws the
// program from (seed, g) with Cores clamped to the machine's thread
// count.
func Family(name string, seed uint64, g GenConfig) *Workload {
	return &Workload{name: name, gen: func(threads int) *Program {
		if g.Cores > threads {
			g.Cores = threads
		}
		return Generate(seed, g)
	}}
}

// Program returns the active program (after Setup in family mode).
func (w *Workload) Program() *Program { return w.p }

func (w *Workload) Name() string { return w.name }

// Setup lays the shared pool out at poolBase (Pack slots per line) and
// one private line per core, then writes the initial slot values.
func (w *Workload) Setup(wd *machine.World, threads int) {
	if w.gen != nil {
		w.p = w.gen(threads)
	} else {
		w.p = w.prog
	}
	p := w.p
	if p.Cores > threads {
		panic(fmt.Sprintf("randprog: program needs %d cores, machine has %d", p.Cores, threads))
	}
	lines := (p.Pool + p.Pack - 1) / p.Pack
	w.poolBase = wd.Alloc.Lines(lines)
	w.privBase = wd.Alloc.Lines(p.Cores)
	for i := 0; i < p.Pool; i++ {
		wd.Mem.WriteWord(w.SlotAddr(i), initSlot(i))
	}
}

// SlotAddr returns the simulated address of shared slot i.
func (w *Workload) SlotAddr(i int) mem.Addr {
	return w.poolBase + mem.Addr((i/w.p.Pack)*mem.LineSize+(i%w.p.Pack)*mem.WordSize)
}

// PrivAddr returns the simulated address of core c's private slot k.
func (w *Workload) PrivAddr(c, k int) mem.Addr {
	return w.privBase + mem.Addr(c*mem.LineSize+k*mem.WordSize)
}

// Thread interprets core tid's action sequence. The atomic-block body
// mirrors Program.applyBlock bit-for-bit (same accumulator seed and
// mixing), which is what makes the serial replay an exact oracle.
func (w *Workload) Thread(ctx machine.Ctx, tid int) {
	p := w.p
	if tid >= p.Cores {
		return
	}
	blockIdx := 0
	for _, a := range p.Seq[tid] {
		switch a.Kind {
		case ActBlock:
			idx := blockIdx
			blockIdx++
			ops := a.Ops
			ctx.Atomic(func(tx machine.Tx) {
				acc := blockAcc(tid, idx)
				for _, op := range ops {
					switch op.Kind {
					case OpLoad:
						acc = acc*mixMul + tx.Load(w.SlotAddr(op.Slot))
					case OpStore:
						tx.Store(w.SlotAddr(op.Slot), acc+op.Arg)
					case OpAdd:
						addr := w.SlotAddr(op.Slot)
						tx.Store(addr, tx.Load(addr)+op.Arg)
					case OpWork:
						tx.Work(op.Arg)
					}
				}
			})
		case ActLoad:
			ctx.Load(w.SlotAddr(a.Slot)) // value intentionally discarded
		case ActStore:
			ctx.Store(w.PrivAddr(tid, a.Slot), a.Arg)
		case ActWork:
			ctx.Work(a.Arg)
		}
	}
}

// Check verifies private slots exactly and, for commutative programs,
// the shared pool against the serial interpreter.
func (w *Workload) Check(wd *machine.World) error {
	p := w.p
	want, err := p.Replay(p.SerialOrder())
	if err != nil {
		return err
	}
	for c := 0; c < p.Cores; c++ {
		for k := 0; k < p.Priv; k++ {
			if got := wd.Mem.ReadWord(w.PrivAddr(c, k)); got != want.Priv[c][k] {
				return fmt.Errorf("randprog: core %d private slot %d = %d, want %d", c, k, got, want.Priv[c][k])
			}
		}
	}
	if !p.Commutative() {
		return nil
	}
	for i := 0; i < p.Pool; i++ {
		if got := wd.Mem.ReadWord(w.SlotAddr(i)); got != want.Shared[i] {
			return fmt.Errorf("randprog: shared slot %d = %d, want %d (commutative program)", i, got, want.Shared[i])
		}
	}
	return nil
}
