package randprog

import "chats/internal/sim"

// GenConfig tunes the program generator. The zero value is not useful;
// start from a Preset.
type GenConfig struct {
	Cores int // participating cores
	Pool  int // shared slots
	Pack  int // slots per cache line (false-sharing stress when > 1)
	Priv  int // private slots per core

	Blocks    int     // atomic blocks per core
	OpsMax    int     // max transactional ops per non-motif block (>= 1)
	HotSlots  int     // size of the hot subset (contention skew target)
	HotFrac   float64 // probability a shared access hits the hot subset
	WriteFrac float64 // probability a tx op is a write (rest are loads)
	AddFrac   float64 // among writes: probability of OpAdd vs OpStore.
	// AddFrac 1.0 generates commutative programs (self-checking against
	// the serial oracle on every system, no commit-order witness needed).
	ChainFrac float64 // probability a block is the chain motif below
	NonTxFrac float64 // probability of a non-tx action between blocks
	WorkMax   int     // max cycles for work ops (>= 1)
}

// Preset returns the generator configuration for a size level
// (0 = tiny, 1 = small, 2+ = medium), mirroring workloads.Size. The
// presets are commutative (AddFrac 1) so the generated family is
// self-checking on any system; the fuzz driver flips AddFrac down to
// also exercise order-sensitive stores under the difftest oracle.
func Preset(level int) GenConfig {
	g := GenConfig{
		Cores:     4,
		Pool:      6,
		Pack:      2,
		Priv:      2,
		Blocks:    4,
		OpsMax:    4,
		HotSlots:  2,
		HotFrac:   0.7,
		WriteFrac: 0.5,
		AddFrac:   1.0,
		ChainFrac: 0.3,
		NonTxFrac: 0.3,
		WorkMax:   40,
	}
	switch {
	case level <= 0:
	case level == 1:
		g.Cores, g.Pool, g.Blocks = 8, 12, 8
	default:
		g.Cores, g.Pool, g.Blocks = 16, 24, 16
	}
	return g
}

// Generate builds a deterministic random program from the seed. Same
// seed and config always produce the identical program.
func Generate(seed uint64, g GenConfig) *Program {
	r := sim.NewRand(seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	if g.OpsMax < 1 {
		g.OpsMax = 1
	}
	if g.WorkMax < 1 {
		g.WorkMax = 1
	}
	if g.HotSlots < 1 {
		g.HotSlots = 1
	}
	if g.HotSlots > g.Pool {
		g.HotSlots = g.Pool
	}
	p := &Program{Cores: g.Cores, Pool: g.Pool, Pack: g.Pack, Priv: g.Priv}
	p.Seq = make([][]Action, g.Cores)

	slot := func() int {
		if r.Float64() < g.HotFrac {
			return r.Intn(g.HotSlots)
		}
		return r.Intn(g.Pool)
	}
	writeOp := func(s int) Op {
		salt := uint64(1 + r.Intn(9))
		if r.Float64() < g.AddFrac {
			return Op{Kind: OpAdd, Slot: s, Arg: salt}
		}
		return Op{Kind: OpStore, Slot: s, Arg: salt}
	}

	for c := 0; c < g.Cores; c++ {
		for b := 0; b < g.Blocks; b++ {
			if r.Float64() < g.NonTxFrac {
				p.Seq[c] = append(p.Seq[c], nonTxAction(r, g))
			}
			var ops []Op
			if r.Float64() < g.ChainFrac {
				// Chain motif: read-modify-write a hot slot, keep the line
				// speculatively modified through a long compute window (the
				// producer→consumer forwarding opportunity), then modify it
				// again — the forwarded-then-modified hazard value-based
				// validation exists to catch.
				h := r.Intn(g.HotSlots)
				ops = append(ops, Op{Kind: OpLoad, Slot: h}, writeOp(h),
					Op{Kind: OpWork, Arg: uint64(20 + r.Intn(4*g.WorkMax))}, writeOp(h))
			} else {
				n := 1 + r.Intn(g.OpsMax)
				for i := 0; i < n; i++ {
					s := slot()
					switch {
					case r.Float64() < g.WriteFrac:
						ops = append(ops, writeOp(s))
					case r.Float64() < 0.15:
						ops = append(ops, Op{Kind: OpWork, Arg: uint64(1 + r.Intn(g.WorkMax))})
					default:
						ops = append(ops, Op{Kind: OpLoad, Slot: s})
					}
				}
			}
			p.Seq[c] = append(p.Seq[c], Action{Kind: ActBlock, Ops: ops})
		}
		if r.Float64() < g.NonTxFrac {
			p.Seq[c] = append(p.Seq[c], nonTxAction(r, g))
		}
	}
	return p
}

func nonTxAction(r *sim.Rand, g GenConfig) Action {
	switch {
	case g.Priv > 0 && r.Float64() < 0.4:
		return Action{Kind: ActStore, Slot: r.Intn(g.Priv), Arg: uint64(1 + r.Intn(100))}
	case r.Float64() < 0.5:
		return Action{Kind: ActLoad, Slot: r.Intn(g.Pool)}
	default:
		return Action{Kind: ActWork, Arg: uint64(1 + r.Intn(g.WorkMax))}
	}
}
