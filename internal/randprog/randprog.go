// Package randprog generates and interprets seeded random concurrent
// transactional programs for differential testing (the fuzzing layer of
// the correctness stack). A Program is a per-core sequence of actions —
// atomic blocks of transactional reads/read-modify-writes/stores over a
// shared slot pool, plus non-transactional loads, private stores and
// compute — whose semantics are simple enough to replay exactly on a
// single-threaded interpreter, yet whose access patterns (contention
// skew, false sharing via packed slots, producer→consumer chain motifs)
// probe the adversarial interleavings where speculative forwarding is
// most fragile.
//
// Programs serialize to a self-contained one-line spec string
// (grammar below), so a failing input survives as a committed corpus
// entry and replays byte-identically anywhere:
//
//	rp1;cores=C;pool=P;pack=K;priv=Q|<core 0>|<core 1>|...
//
// Each <core i> is a space-separated action list:
//
//	[op,op,...]  atomic block; ops: lN (tx load slot N),
//	             sN+V (tx store: acc+V), aN+V (tx add: slot += V),
//	             wN (N cycles of in-tx compute)
//	LN           non-tx load of shared slot N (value discarded)
//	SN+V         non-tx store of V to the core's private slot N
//	WN           non-tx compute, N cycles
//
// Shared slot N lives at line N/K, word N%K — pack K > 1 puts several
// slots on one cache line (false-sharing stress). Private slots are one
// line per core, so non-transactional stores never race transactions
// and the serial oracle stays exact.
package randprog

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind is one transactional operation inside an atomic block.
type OpKind uint8

const (
	// OpLoad folds the slot's value into the block accumulator:
	// acc = acc*mixMul + shared[slot].
	OpLoad OpKind = iota
	// OpStore writes acc+Arg to the slot (order-sensitive: the stored
	// value depends on every load before it).
	OpStore
	// OpAdd is a read-modify-write: shared[slot] += Arg. It does not
	// touch the accumulator, so programs whose only tx writes are adds
	// are commutative (any commit order yields the serial result).
	OpAdd
	// OpWork burns Arg cycles inside the transaction (widens the
	// conflict window without touching memory).
	OpWork
)

// Op is one transactional operation.
type Op struct {
	Kind OpKind
	Slot int    // shared slot for Load/Store/Add
	Arg  uint64 // store/add salt, or work cycles
}

// ActionKind classifies one top-level step of a core's program.
type ActionKind uint8

const (
	// ActBlock runs Ops as one atomic block.
	ActBlock ActionKind = iota
	// ActLoad is a non-transactional load of a shared slot; the value is
	// discarded (it has no well-defined serialization point, so the
	// oracle must not depend on it).
	ActLoad
	// ActStore is a non-transactional store to one of the core's private
	// slots (never shared, so the final value is core-local program
	// order — exactly checkable).
	ActStore
	// ActWork is non-transactional compute.
	ActWork
)

// Action is one top-level step.
type Action struct {
	Kind ActionKind
	Ops  []Op   // ActBlock
	Slot int    // ActLoad: shared slot; ActStore: private slot
	Arg  uint64 // ActStore value, ActWork cycles
}

// Program is a complete multi-core transactional program.
type Program struct {
	Cores int // participating cores (threads beyond Cores idle)
	Pool  int // shared slots
	Pack  int // slots per cache line, 1..WordsPerLine
	Priv  int // private slots per core, 0..WordsPerLine
	Seq   [][]Action
}

// mixMul is the accumulator mixing multiplier (Knuth's MMIX LCG
// constant); the machine-side workload and the interpreter must agree
// on it bit-for-bit.
const mixMul = 6364136223846793005

// blockAcc seeds the per-block accumulator from the core and the
// block's index in that core's program, so every block computes a
// distinct value stream even after the minimizer strips its loads.
func blockAcc(core, idx int) uint64 {
	return uint64(core+1)*0x9E3779B97F4A7C15 + uint64(idx+1)*0xBF58476D1CE4E5B9
}

// initSlot is the deterministic initial value of shared slot i (nonzero
// so a lost initialization is visible).
func initSlot(i int) uint64 { return uint64(i+1) * 1001 }

// maxPack bounds slots per line / private slots per core to one line.
const maxPack = 8 // mem.WordsPerLine, kept literal to avoid the import

// Validate checks structural well-formedness (slot bounds, pack range).
func (p *Program) Validate() error {
	if p.Cores < 1 || p.Cores > 64 {
		return fmt.Errorf("randprog: cores %d out of range [1,64]", p.Cores)
	}
	if p.Pool < 1 {
		return fmt.Errorf("randprog: pool %d < 1", p.Pool)
	}
	if p.Pack < 1 || p.Pack > maxPack {
		return fmt.Errorf("randprog: pack %d out of range [1,%d]", p.Pack, maxPack)
	}
	if p.Priv < 0 || p.Priv > maxPack {
		return fmt.Errorf("randprog: priv %d out of range [0,%d]", p.Priv, maxPack)
	}
	if len(p.Seq) != p.Cores {
		return fmt.Errorf("randprog: %d core programs for %d cores", len(p.Seq), p.Cores)
	}
	for c, seq := range p.Seq {
		for i, a := range seq {
			switch a.Kind {
			case ActBlock:
				for _, op := range a.Ops {
					if op.Kind != OpWork && (op.Slot < 0 || op.Slot >= p.Pool) {
						return fmt.Errorf("randprog: core %d action %d: slot %d out of pool %d", c, i, op.Slot, p.Pool)
					}
				}
			case ActLoad:
				if a.Slot < 0 || a.Slot >= p.Pool {
					return fmt.Errorf("randprog: core %d action %d: shared slot %d out of pool %d", c, i, a.Slot, p.Pool)
				}
			case ActStore:
				if a.Slot < 0 || a.Slot >= p.Priv {
					return fmt.Errorf("randprog: core %d action %d: private slot %d out of %d", c, i, a.Slot, p.Priv)
				}
			case ActWork:
			default:
				return fmt.Errorf("randprog: core %d action %d: unknown kind %d", c, i, a.Kind)
			}
		}
	}
	return nil
}

// NumOps counts every operation in the program: each transactional op
// and each non-transactional action is one op (the minimizer's size
// metric).
func (p *Program) NumOps() int {
	n := 0
	for _, seq := range p.Seq {
		for _, a := range seq {
			if a.Kind == ActBlock {
				n += len(a.Ops)
			} else {
				n++
			}
		}
	}
	return n
}

// NumBlocks counts the atomic blocks of one core (negative core: all).
func (p *Program) NumBlocks(core int) int {
	n := 0
	for c, seq := range p.Seq {
		if core >= 0 && c != core {
			continue
		}
		for _, a := range seq {
			if a.Kind == ActBlock {
				n++
			}
		}
	}
	return n
}

// Commutative reports whether every transactional write is an OpAdd:
// then the final shared state is independent of commit order and any
// run must reproduce the serial interpreter's result exactly.
func (p *Program) Commutative() bool {
	for _, seq := range p.Seq {
		for _, a := range seq {
			if a.Kind != ActBlock {
				continue
			}
			for _, op := range a.Ops {
				if op.Kind == OpStore {
					return false
				}
			}
		}
	}
	return true
}

// Clone deep-copies the program (the minimizer mutates candidates).
func (p *Program) Clone() *Program {
	q := &Program{Cores: p.Cores, Pool: p.Pool, Pack: p.Pack, Priv: p.Priv}
	q.Seq = make([][]Action, len(p.Seq))
	for c, seq := range p.Seq {
		q.Seq[c] = make([]Action, len(seq))
		for i, a := range seq {
			b := a
			if a.Ops != nil {
				b.Ops = append([]Op(nil), a.Ops...)
			}
			q.Seq[c][i] = b
		}
	}
	return q
}

// ---------- serial interpreter ----------

// BlockRef names one atomic block by core and position among that
// core's blocks (0-based, program order).
type BlockRef struct {
	Core  int
	Index int
}

// State is an interpreter memory image.
type State struct {
	Shared []uint64   // by slot
	Priv   [][]uint64 // [core][private slot]
}

// InitState returns the memory image the machine workload's Setup
// produces.
func (p *Program) InitState() *State {
	st := &State{Shared: make([]uint64, p.Pool), Priv: make([][]uint64, p.Cores)}
	for i := range st.Shared {
		st.Shared[i] = initSlot(i)
	}
	for c := range st.Priv {
		st.Priv[c] = make([]uint64, p.Priv)
	}
	return st
}

// block returns the ops of block (core, idx).
func (p *Program) block(ref BlockRef) ([]Op, error) {
	if ref.Core < 0 || ref.Core >= p.Cores {
		return nil, fmt.Errorf("randprog: replay references core %d of %d", ref.Core, p.Cores)
	}
	idx := 0
	for _, a := range p.Seq[ref.Core] {
		if a.Kind != ActBlock {
			continue
		}
		if idx == ref.Index {
			return a.Ops, nil
		}
		idx++
	}
	return nil, fmt.Errorf("randprog: replay references block %d of core %d (has %d)", ref.Index, ref.Core, idx)
}

// applyBlock runs one atomic block against st, mirroring the machine
// workload's Atomic body exactly (same accumulator seed, same mixing,
// uint64 wraparound).
func (p *Program) applyBlock(st *State, ref BlockRef) error {
	ops, err := p.block(ref)
	if err != nil {
		return err
	}
	acc := blockAcc(ref.Core, ref.Index)
	for _, op := range ops {
		switch op.Kind {
		case OpLoad:
			acc = acc*mixMul + st.Shared[op.Slot]
		case OpStore:
			st.Shared[op.Slot] = acc + op.Arg
		case OpAdd:
			st.Shared[op.Slot] += op.Arg
		case OpWork:
		}
	}
	return nil
}

// Replay executes the atomic blocks in the given total order (which
// must contain every block of the program exactly once) and applies
// each core's private stores in program order, returning the final
// memory image. This is the serial oracle: a machine run is
// serializable iff its final memory equals Replay of its observed
// commit order.
func (p *Program) Replay(order []BlockRef) (*State, error) {
	seen := make(map[BlockRef]bool, len(order))
	for _, ref := range order {
		if seen[ref] {
			return nil, fmt.Errorf("randprog: replay order repeats block %+v", ref)
		}
		seen[ref] = true
	}
	if want := p.NumBlocks(-1); len(order) != want {
		return nil, fmt.Errorf("randprog: replay order has %d blocks, program has %d", len(order), want)
	}
	st := p.InitState()
	for _, ref := range order {
		if err := p.applyBlock(st, ref); err != nil {
			return nil, err
		}
	}
	for c, seq := range p.Seq {
		for _, a := range seq {
			if a.Kind == ActStore {
				st.Priv[c][a.Slot] = a.Arg
			}
		}
	}
	return st, nil
}

// SerialOrder is the canonical single-threaded schedule: all of core
// 0's blocks in program order, then core 1's, and so on.
func (p *Program) SerialOrder() []BlockRef {
	var order []BlockRef
	for c := 0; c < p.Cores; c++ {
		for i := 0; i < p.NumBlocks(c); i++ {
			order = append(order, BlockRef{Core: c, Index: i})
		}
	}
	return order
}

// ---------- spec-string serialization ----------

// String serializes the program in the rp1 grammar; Parse inverts it.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rp1;cores=%d;pool=%d;pack=%d;priv=%d", p.Cores, p.Pool, p.Pack, p.Priv)
	for _, seq := range p.Seq {
		b.WriteByte('|')
		for i, a := range seq {
			if i > 0 {
				b.WriteByte(' ')
			}
			switch a.Kind {
			case ActBlock:
				b.WriteByte('[')
				for j, op := range a.Ops {
					if j > 0 {
						b.WriteByte(',')
					}
					switch op.Kind {
					case OpLoad:
						fmt.Fprintf(&b, "l%d", op.Slot)
					case OpStore:
						fmt.Fprintf(&b, "s%d+%d", op.Slot, op.Arg)
					case OpAdd:
						fmt.Fprintf(&b, "a%d+%d", op.Slot, op.Arg)
					case OpWork:
						fmt.Fprintf(&b, "w%d", op.Arg)
					}
				}
				b.WriteByte(']')
			case ActLoad:
				fmt.Fprintf(&b, "L%d", a.Slot)
			case ActStore:
				fmt.Fprintf(&b, "S%d+%d", a.Slot, a.Arg)
			case ActWork:
				fmt.Fprintf(&b, "W%d", a.Arg)
			}
		}
	}
	return b.String()
}

// Parse reads a spec string back into a Program and validates it.
func Parse(spec string) (*Program, error) {
	spec = strings.TrimSpace(spec)
	parts := strings.Split(spec, "|")
	header := strings.Split(parts[0], ";")
	if header[0] != "rp1" {
		return nil, fmt.Errorf("randprog: spec must start with rp1, got %q", header[0])
	}
	p := &Program{}
	for _, kv := range header[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("randprog: bad header field %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("randprog: bad header value %q: %v", kv, err)
		}
		switch k {
		case "cores":
			p.Cores = n
		case "pool":
			p.Pool = n
		case "pack":
			p.Pack = n
		case "priv":
			p.Priv = n
		default:
			return nil, fmt.Errorf("randprog: unknown header field %q", k)
		}
	}
	progs := parts[1:]
	if len(progs) != p.Cores {
		return nil, fmt.Errorf("randprog: %d core programs for cores=%d", len(progs), p.Cores)
	}
	p.Seq = make([][]Action, p.Cores)
	for c, prog := range progs {
		for _, tok := range strings.Fields(prog) {
			a, err := parseAction(tok)
			if err != nil {
				return nil, fmt.Errorf("randprog: core %d: %v", c, err)
			}
			p.Seq[c] = append(p.Seq[c], a)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseAction(tok string) (Action, error) {
	if strings.HasPrefix(tok, "[") {
		if !strings.HasSuffix(tok, "]") {
			return Action{}, fmt.Errorf("unterminated block %q", tok)
		}
		body := tok[1 : len(tok)-1]
		a := Action{Kind: ActBlock}
		if body == "" {
			return a, nil
		}
		for _, ot := range strings.Split(body, ",") {
			op, err := parseOp(ot)
			if err != nil {
				return Action{}, err
			}
			a.Ops = append(a.Ops, op)
		}
		return a, nil
	}
	if len(tok) < 2 {
		return Action{}, fmt.Errorf("bad action %q", tok)
	}
	switch tok[0] {
	case 'L':
		n, err := strconv.Atoi(tok[1:])
		if err != nil {
			return Action{}, fmt.Errorf("bad action %q: %v", tok, err)
		}
		return Action{Kind: ActLoad, Slot: n}, nil
	case 'S':
		slot, arg, err := parseSlotArg(tok[1:])
		if err != nil {
			return Action{}, fmt.Errorf("bad action %q: %v", tok, err)
		}
		return Action{Kind: ActStore, Slot: slot, Arg: arg}, nil
	case 'W':
		n, err := strconv.ParseUint(tok[1:], 10, 64)
		if err != nil {
			return Action{}, fmt.Errorf("bad action %q: %v", tok, err)
		}
		return Action{Kind: ActWork, Arg: n}, nil
	}
	return Action{}, fmt.Errorf("unknown action %q", tok)
}

func parseOp(tok string) (Op, error) {
	if len(tok) < 2 {
		return Op{}, fmt.Errorf("bad op %q", tok)
	}
	switch tok[0] {
	case 'l':
		n, err := strconv.Atoi(tok[1:])
		if err != nil {
			return Op{}, fmt.Errorf("bad op %q: %v", tok, err)
		}
		return Op{Kind: OpLoad, Slot: n}, nil
	case 's':
		slot, arg, err := parseSlotArg(tok[1:])
		if err != nil {
			return Op{}, fmt.Errorf("bad op %q: %v", tok, err)
		}
		return Op{Kind: OpStore, Slot: slot, Arg: arg}, nil
	case 'a':
		slot, arg, err := parseSlotArg(tok[1:])
		if err != nil {
			return Op{}, fmt.Errorf("bad op %q: %v", tok, err)
		}
		return Op{Kind: OpAdd, Slot: slot, Arg: arg}, nil
	case 'w':
		n, err := strconv.ParseUint(tok[1:], 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("bad op %q: %v", tok, err)
		}
		return Op{Kind: OpWork, Arg: n}, nil
	}
	return Op{}, fmt.Errorf("unknown op %q", tok)
}

// parseSlotArg splits "3+17" into (3, 17).
func parseSlotArg(s string) (int, uint64, error) {
	a, b, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("missing +arg in %q", s)
	}
	slot, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	arg, err := strconv.ParseUint(b, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return slot, arg, nil
}
