// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a global cycle counter and a scheduler ordered by
// (cycle, insertion sequence). Events inserted at the same cycle fire in
// insertion order, which makes every simulation run bit-reproducible for
// a given seed: there is no reliance on map iteration order, goroutine
// scheduling, or wall-clock time.
//
// Internally the scheduler is a hierarchical timing wheel: a near wheel
// of wheelSize one-cycle buckets absorbs the short Table-I latencies
// that make up virtually all simulated delays (schedule, cancel and fire
// are O(1)), and a far binary heap holds the rare long delays (backoff
// tails, watchdog windows) until the clock advances to within the
// wheel's horizon, at which point they migrate into their bucket in
// (cycle, seq) order. The observable firing order is exactly the
// (cycle, seq) order of the old pure-heap engine, so runs stay
// bit-identical.
package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
)

// Runner is a typed event payload: Run is invoked when the event fires.
// Hot paths implement Runner on pooled per-layer message structs and use
// ScheduleRunner, so scheduling a latency hop allocates nothing — unlike
// a func() payload, which captures its state in a fresh closure per
// call.
type Runner interface{ Run() }

const (
	wheelBits  = 8
	wheelSize  = 1 << wheelBits // near-wheel horizon in cycles
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64
)

// Event.index sentinels. Far-heap events use their heap position
// (0..len-1); wheel-parked events use idxWheel so tests can still treat
// "index >= 0" as queued. idxFrame marks an event drained into the
// parallel engine's per-cycle frame, idxStaged one buffered by a worker
// during a batch (both only ever occur with workers > 1).
const (
	idxFired     = -1
	idxCancelled = -2
	idxWheel     = 1 << 30
	idxFrame     = 1<<30 + 1
	idxStaged    = 1<<30 + 2
)

// maxFreeEvents caps the event free list. A burst of scheduled-then-
// cancelled events (backoff storms, mass probe cancellation) would
// otherwise grow the list to the burst's high-water mark and pin that
// memory for the rest of a long sweep; beyond the cap, recycled events
// are simply dropped for the GC.
const maxFreeEvents = 4096

// Event is a callback scheduled to run at a specific cycle.
//
// The pointer returned by Schedule stays valid until the event fires or
// is cancelled; after that the engine may recycle the object for a later
// Schedule call, so holders must drop the pointer once it fires (the
// machine's validation timer clears its handle inside the callback for
// exactly this reason).
type Event struct {
	cycle uint64
	// seq is the global insertion sequence. While an event sits staged
	// inside a parallel batch it temporarily holds the frame index of the
	// event that scheduled it; the real seq is assigned at merge time.
	seq uint64
	fn  func()
	run Runner
	// next/prev link the event into its timing-wheel bucket (nil while
	// in the far heap).
	next, prev *Event
	// index: far-heap position while overflowed, idxWheel while parked
	// in a bucket, idxFired once popped, idxCancelled once cancelled,
	// idxFrame/idxStaged while owned by the parallel executor.
	index int
	// dom is the owner domain the event fires in (DomainSerial unless
	// scheduled through a Sched handle). Ignored by the serial engine.
	dom Domain
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == idxCancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = idxFired
	*h = old[:n-1]
	return e
}

// bucket is one near-wheel slot: a FIFO of events for a single cycle.
// Doubly linked so Cancel unlinks in O(1).
type bucket struct {
	head, tail *Event
}

// Engine is a discrete-event simulator clock and scheduler.
// The zero value is ready to use.
type Engine struct {
	now   uint64
	seq   uint64
	fired uint64

	// Near wheel: bucket i holds the events for the unique cycle c in
	// [now, now+wheelSize) with c&wheelMask == i. occ mirrors bucket
	// occupancy as a bitmap so the next non-empty bucket is found with a
	// handful of word scans.
	buckets    [wheelSize]bucket
	occ        [wheelWords]uint64
	wheelCount int

	// far holds events scheduled past the wheel horizon; they migrate
	// into buckets (in heap order, i.e. (cycle, seq) order) as the clock
	// advances.
	far eventHeap

	// free recycles Event objects popped or cancelled, so the
	// steady-state schedule/fire cycle allocates nothing (a simulation
	// schedules one event per latency hop, which dominated the heap
	// profile before). Capped at maxFreeEvents.
	free []*Event

	// halt, when set by Halt, stops Run before the next event fires. It
	// lets in-event code (watchdogs, invariant checkers) abort the whole
	// simulation with a diagnostic instead of unwinding through every
	// caller on the event stack.
	halt error

	// maxDom tracks the highest domain handed out by NewSched, so the
	// parallel executor can size its per-domain state.
	maxDom int

	// par holds the parallel executor state; nil with workers <= 1, in
	// which case Run takes the serial path below untouched (no
	// goroutines, no locks, no atomics).
	par *parState

	// waves tracks parallel coverage (events per same-cycle
	// distinct-domain segment); see waves.go.
	waves waveStat
}

// Halt requests that Run stop before firing the next event, returning
// err. Safe to call from inside an event callback; the current event
// finishes normally. Calling Halt again keeps the first error.
func (e *Engine) Halt(err error) {
	if e.halt == nil {
		e.halt = err
	}
}

// Halted returns the pending halt error, if any.
func (e *Engine) Halted() error { return e.halt }

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.wheelCount + len(e.far) }

// Schedule runs fn delay cycles from now. A delay of zero runs fn after
// all events already scheduled for the current cycle. The returned
// handle may be passed to Cancel, but is only valid until the event
// fires or is cancelled (see Event).
func (e *Engine) Schedule(delay uint64, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	return e.insert(delay, fn, nil)
}

// ScheduleRunner runs r.Run() delay cycles from now, with the same
// ordering and handle semantics as Schedule. Unlike a closure payload,
// r is typically a pooled or embedded struct, so the call allocates
// nothing.
func (e *Engine) ScheduleRunner(delay uint64, r Runner) *Event {
	if r == nil {
		panic("sim: ScheduleRunner called with nil Runner")
	}
	return e.insert(delay, nil, r)
}

func (e *Engine) insert(delay uint64, fn func(), r Runner) *Event {
	return e.insertDom(DomainSerial, delay, fn, r)
}

func (e *Engine) insertDom(target Domain, delay uint64, fn func(), r Runner) *Event {
	if p := e.par; p != nil && p.inBatch {
		panic("sim: direct Schedule during a parallel batch; schedule through a Sched handle")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.cycle = e.now + delay
	ev.seq = e.seq
	ev.fn = fn
	ev.run = r
	ev.dom = target
	e.seq++
	if delay < wheelSize {
		e.wheelAdd(ev)
	} else {
		heap.Push(&e.far, ev)
	}
	return ev
}

// wheelAdd parks ev at the tail of its bucket. Callers guarantee
// ev.cycle is within [now, now+wheelSize), so the bucket holds only
// events of that one cycle and tail-append preserves seq order.
func (e *Engine) wheelAdd(ev *Event) {
	i := int(uint(ev.cycle) & wheelMask)
	b := &e.buckets[i]
	ev.prev = b.tail
	ev.next = nil
	if b.tail != nil {
		b.tail.next = ev
	} else {
		b.head = ev
		e.occ[i>>6] |= 1 << uint(i&63)
	}
	b.tail = ev
	ev.index = idxWheel
	e.wheelCount++
}

// wheelRemove unlinks ev from its bucket.
func (e *Engine) wheelRemove(ev *Event) {
	i := int(uint(ev.cycle) & wheelMask)
	b := &e.buckets[i]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
	if b.head == nil {
		e.occ[i>>6] &^= 1 << uint(i&63)
	}
	e.wheelCount--
}

// migrate moves far-heap events whose cycle has come within the wheel
// horizon into their buckets. Called on every clock advance, before any
// event at the new cycle runs, so a bucket always receives far events
// (smaller seq) before any same-cycle event scheduled directly into the
// wheel later — preserving global (cycle, seq) FIFO order.
func (e *Engine) migrate() {
	horizon := e.now + wheelSize - 1
	for len(e.far) > 0 && e.far[0].cycle <= horizon {
		e.wheelAdd(heap.Pop(&e.far).(*Event))
	}
}

// nextCycle returns the cycle of the earliest pending event. While the
// wheel is non-empty its earliest bucket is always at or before the far
// heap's top (far events are beyond the horizon by construction), so
// the far heap is only consulted when the wheel is empty.
func (e *Engine) nextCycle() (uint64, bool) {
	if e.wheelCount > 0 {
		return e.scanWheel(), true
	}
	if len(e.far) > 0 {
		return e.far[0].cycle, true
	}
	return 0, false
}

// scanWheel finds the first occupied bucket at or after now, walking the
// occupancy bitmap (at most wheelWords+1 word reads).
func (e *Engine) scanWheel() uint64 {
	p := uint(e.now) & wheelMask
	w := p >> 6
	word := e.occ[w] &^ (1<<(p&63) - 1)
	for steps := 0; ; steps++ {
		if word != 0 {
			idx := w<<6 + uint(bits.TrailingZeros64(word))
			return e.now + uint64((idx-p)&wheelMask)
		}
		if steps > wheelWords {
			panic("sim: wheel count positive but no occupied bucket")
		}
		w = (w + 1) & (wheelWords - 1)
		word = e.occ[w]
	}
}

// Cancel removes a scheduled event. It is a no-op if the event already
// fired or was already cancelled. During a parallel batch events must be
// cancelled through a Sched handle instead.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if p := e.par; p != nil && p.inBatch {
		panic("sim: Engine.Cancel during a parallel batch; cancel through a Sched handle")
	}
	switch {
	case ev.index == idxWheel:
		e.wheelRemove(ev)
	case ev.index == idxFrame:
		// Drained into the current cycle's frame but not yet fired: mark
		// it; the frame walker skips and recycles it.
		ev.index = idxCancelled
		ev.fn = nil
		ev.run = nil
		return
	case ev.index == idxStaged:
		panic("sim: cancel of a staged event outside its batch")
	case ev.index >= 0:
		heap.Remove(&e.far, ev.index)
	default:
		return
	}
	ev.index = idxCancelled
	// Recycle: the object keeps reporting Cancelled() until Schedule
	// hands it out again.
	ev.fn = nil
	ev.run = nil
	e.release(ev)
}

func (e *Engine) release(ev *Event) {
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// Step fires the next event, advancing the clock to its cycle.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	c, ok := e.nextCycle()
	if !ok {
		return false
	}
	e.step(c)
	return true
}

// step fires the earliest event, known to be at cycle c.
func (e *Engine) step(c uint64) {
	if c < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%d < %d)", c, e.now))
	}
	if c > e.now {
		e.now = c
		e.migrate()
	}
	i := int(uint(e.now) & wheelMask)
	b := &e.buckets[i]
	ev := b.head
	if ev == nil || ev.cycle != e.now {
		panic("sim: timing wheel bucket out of sync with clock")
	}
	b.head = ev.next
	if b.head == nil {
		b.tail = nil
		e.occ[i>>6] &^= 1 << uint(i&63)
	} else {
		b.head.prev = nil
	}
	ev.next, ev.prev = nil, nil
	ev.index = idxFired
	e.wheelCount--
	e.fired++
	e.waves.note(ev.dom, e.now)
	if r := ev.run; r != nil {
		r.Run()
	} else {
		fn := ev.fn
		fn()
	}
	// The callback may observe its own popped handle (index -1), so the
	// object joins the free list only after it returns.
	ev.fn = nil
	ev.run = nil
	e.release(ev)
}

// Run fires events until the queue drains or the clock would pass limit.
// A limit of 0 means no limit. It returns the number of events fired and
// an error if the limit was reached with events still pending (a likely
// deadlock or livelock in the simulated system).
//
// With SetWorkers(n > 1) Run executes same-cycle events of distinct
// non-serial domains concurrently; the observable (cycle, seq) firing
// order — and therefore every simulation result — is bit-identical to
// the serial engine (see parallel.go for the merge rule).
func (e *Engine) Run(limit uint64) (uint64, error) {
	if e.par != nil {
		return e.runParallel(limit)
	}
	start := e.fired
	for {
		c, ok := e.nextCycle()
		if !ok {
			break
		}
		if e.halt != nil {
			err := e.halt
			e.halt = nil
			return e.fired - start, err
		}
		if limit != 0 && c > limit {
			return e.fired - start, fmt.Errorf("sim: cycle limit %d reached with %d events pending at cycle %d",
				limit, e.Pending(), c)
		}
		e.step(c)
	}
	// The last event may itself have requested the halt.
	if e.halt != nil {
		err := e.halt
		e.halt = nil
		return e.fired - start, err
	}
	return e.fired - start, nil
}
