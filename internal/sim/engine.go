// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a global cycle counter and a priority queue of
// events ordered by (cycle, insertion sequence). Events inserted at the
// same cycle fire in insertion order, which makes every simulation run
// bit-reproducible for a given seed: there is no reliance on map
// iteration order, goroutine scheduling, or wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to run at a specific cycle.
//
// The pointer returned by Schedule stays valid until the event fires or
// is cancelled; after that the engine may recycle the object for a later
// Schedule call, so holders must drop the pointer once it fires (the
// machine's validation timer clears its handle inside the callback for
// exactly this reason).
type Event struct {
	cycle uint64
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped, -2 once cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator clock and scheduler.
// The zero value is ready to use.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap
	fired  uint64
	// free recycles Event objects popped or cancelled, so the steady-state
	// schedule/fire cycle allocates nothing (a simulation schedules one
	// event per latency hop, which dominated the heap profile before).
	free []*Event
	// halt, when set by Halt, stops Run before the next event fires. It
	// lets in-event code (watchdogs, invariant checkers) abort the whole
	// simulation with a diagnostic instead of unwinding through every
	// caller on the event stack.
	halt error
}

// Halt requests that Run stop before firing the next event, returning
// err. Safe to call from inside an event callback; the current event
// finishes normally. Calling Halt again keeps the first error.
func (e *Engine) Halt(err error) {
	if e.halt == nil {
		e.halt = err
	}
}

// Halted returns the pending halt error, if any.
func (e *Engine) Halted() error { return e.halt }

// Now returns the current simulation cycle.
func (e *Engine) Now() uint64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn delay cycles from now. A delay of zero runs fn after
// all events already scheduled for the current cycle. The returned
// handle may be passed to Cancel, but is only valid until the event
// fires or is cancelled (see Event).
func (e *Engine) Schedule(delay uint64, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cycle = e.now + delay
		ev.seq = e.seq
		ev.fn = fn
	} else {
		ev = &Event{cycle: e.now + delay, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Cancel removes a scheduled event. It is a no-op if the event already
// fired or was already cancelled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -2
	// Recycle: the object keeps reporting Cancelled() until Schedule
	// hands it out again.
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step fires the next event, advancing the clock to its cycle.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	if ev.cycle < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (%d < %d)", ev.cycle, e.now))
	}
	e.now = ev.cycle
	e.fired++
	fn := ev.fn
	fn()
	// The callback may observe its own popped handle (index -1), so the
	// object joins the free list only after it returns.
	ev.fn = nil
	e.free = append(e.free, ev)
	return true
}

// Run fires events until the queue drains or the clock would pass limit.
// A limit of 0 means no limit. It returns the number of events fired and
// an error if the limit was reached with events still pending (a likely
// deadlock or livelock in the simulated system).
func (e *Engine) Run(limit uint64) (uint64, error) {
	start := e.fired
	for len(e.events) > 0 {
		if e.halt != nil {
			err := e.halt
			e.halt = nil
			return e.fired - start, err
		}
		if limit != 0 && e.events[0].cycle > limit {
			return e.fired - start, fmt.Errorf("sim: cycle limit %d reached with %d events pending at cycle %d",
				limit, len(e.events), e.events[0].cycle)
		}
		e.Step()
	}
	// The last event may itself have requested the halt.
	if e.halt != nil {
		err := e.halt
		e.halt = nil
		return e.fired - start, err
	}
	return e.fired - start, nil
}
