package sim

import (
	"container/heap"
	"testing"
)

// Ordering edge cases the timing wheel must preserve exactly: the
// observable firing order is defined as (cycle, insertion seq), and the
// wheel/far-heap split plus free-list recycling must never reorder it.

// TestZeroDelaySelfRescheduleOrdering: an event that reschedules itself
// at delay 0 runs after everything already queued for the current
// cycle, every iteration — including events added while it was running.
func TestZeroDelaySelfRescheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	hops := 0
	var self func()
	self = func() {
		got = append(got, hops)
		hops++
		if hops < 3 {
			// Interleave a fresh same-cycle event, then the self-hop: the
			// fresh event has a smaller seq and must fire first.
			n := 100 + hops
			e.Schedule(0, func() { got = append(got, n) })
			e.Schedule(0, self)
		}
	}
	e.Schedule(0, self)
	e.Schedule(0, func() { got = append(got, 99) })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 99, 101, 1, 102, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %d, want 0", e.Now())
	}
}

// TestCancelThenScheduleHandleAliasing: a cancelled handle is recycled
// by the next Schedule. The old holder must see Cancelled() right up to
// the reuse, and cancelling the STALE handle after reuse must cancel the
// new incarnation (the documented hazard) — the engine's state must stay
// consistent either way, with no double-free or wheel corruption.
func TestCancelThenScheduleHandleReuse(t *testing.T) {
	var e Engine
	old := e.Schedule(3, func() { t.Error("cancelled event fired") })
	e.Cancel(old)
	if !old.Cancelled() {
		t.Fatal("handle must report cancelled before reuse")
	}
	fired := false
	reused := e.Schedule(5, func() { fired = true })
	if reused != old {
		t.Fatal("free list did not recycle the cancelled event")
	}
	if old.Cancelled() {
		t.Fatal("recycled handle still reports cancelled")
	}
	// Cancel through the stale alias: it is the same object, so the new
	// incarnation is cancelled. Engine bookkeeping must survive.
	e.Cancel(old)
	if !reused.Cancelled() {
		t.Fatal("alias cancel missed the live incarnation")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after alias cancel, want 0", e.Pending())
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled-via-alias event fired")
	}
	// The engine must still schedule and fire normally afterwards.
	ok := false
	e.Schedule(1, func() { ok = true })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("engine wedged after handle-aliasing churn")
	}
}

// TestSameCycleFIFOAcrossWheelOverflowBoundary: one event reaches cycle
// C through the far heap (scheduled early with a beyond-horizon delay),
// another lands on the same cycle directly in the wheel (scheduled late
// with a short delay). The far event was inserted first, so it must
// fire first.
func TestSameCycleFIFOAcrossWheelOverflowBoundary(t *testing.T) {
	const target = wheelSize + 44 // arbitrary cycle beyond the initial horizon
	var e Engine
	var got []string
	e.Schedule(target, func() { got = append(got, "far") }) // seq 0, far heap
	// A stepping stone inside the horizon of target schedules the direct
	// competitor once target is reachable with a short delay.
	e.Schedule(target-10, func() {
		e.Schedule(10, func() { got = append(got, "near") }) // same cycle, larger seq
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "far" || got[1] != "near" {
		t.Fatalf("order = %v, want [far near]", got)
	}
	if e.Now() != target {
		t.Fatalf("Now = %d, want %d", e.Now(), target)
	}
}

// TestSameCycleFIFOMultipleFarEvents: several far-heap events for one
// cycle must migrate into the bucket in seq order even though the heap
// stores them unordered.
func TestSameCycleFIFOMultipleFarEvents(t *testing.T) {
	var e Engine
	var got []int
	const target = 3 * wheelSize
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(target, func() { got = append(got, i) })
	}
	// Interleave far events at other cycles so the heap actually mixes.
	e.Schedule(target+wheelSize, func() {})
	e.Schedule(target-wheelSize, func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("fired %d, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle far events fired out of insertion order: %v", got)
		}
	}
}

// TestDelaysPastHorizon: delays beyond the near wheel (including ones
// many horizons out) fire at the exact requested cycle, in cycle order.
func TestDelaysPastHorizon(t *testing.T) {
	var e Engine
	delays := []uint64{wheelSize - 1, wheelSize, wheelSize + 1, 2*wheelSize + 3, 10 * wheelSize, 100*wheelSize + 7}
	firedAt := make([]uint64, len(delays))
	for i, d := range delays {
		i, d := i, d
		e.Schedule(d, func() { firedAt[i] = e.Now() })
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, d := range delays {
		if firedAt[i] != d {
			t.Fatalf("delay %d fired at cycle %d", d, firedAt[i])
		}
	}
}

// TestCancelFarEvent: cancelling an event still parked in the overflow
// heap removes it without disturbing wheel events.
func TestCancelFarEvent(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1, func() { got = append(got, 1) })
	far := e.Schedule(5*wheelSize, func() { got = append(got, 2) })
	e.Schedule(2*wheelSize, func() { got = append(got, 3) })
	e.Cancel(far)
	if !far.Cancelled() {
		t.Fatal("far event not cancelled")
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", got)
	}
}

// TestCancelMigratedEvent: an event that overflowed to the far heap and
// then migrated into the wheel is cancelled through the wheel path.
func TestCancelMigratedEvent(t *testing.T) {
	var e Engine
	fired := false
	far := e.Schedule(wheelSize+10, func() { fired = true })
	// This event advances the clock, migrating `far` into the wheel, and
	// then cancels it.
	e.Schedule(wheelSize, func() {
		if far.index != idxWheel {
			t.Errorf("far event index = %d after migration, want idxWheel", far.index)
		}
		e.Cancel(far)
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled migrated event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// TestRunnerPayloadOrderingWithFuncPayloads: ScheduleRunner events obey
// the same (cycle, seq) order interleaved with Schedule closures.
type recordRunner struct {
	out *[]int
	id  int
}

func (r *recordRunner) Run() { *r.out = append(*r.out, r.id) }

func TestRunnerPayloadOrdering(t *testing.T) {
	var e Engine
	var got []int
	r1 := &recordRunner{out: &got, id: 1}
	r3 := &recordRunner{out: &got, id: 3}
	e.ScheduleRunner(4, r1)
	e.Schedule(4, func() { got = append(got, 2) })
	e.ScheduleRunner(4, r3)
	e.Schedule(2, func() { got = append(got, 0) })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestScheduleRunnerNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var e Engine
	e.ScheduleRunner(1, nil)
}

// TestFreeListCapped: recycling stops at maxFreeEvents so a cancel burst
// cannot pin an unbounded number of dead events.
func TestFreeListCapped(t *testing.T) {
	var e Engine
	var evs []*Event
	for i := 0; i < maxFreeEvents+500; i++ {
		evs = append(evs, e.Schedule(uint64(i%wheelSize), func() {}))
	}
	for _, ev := range evs {
		e.Cancel(ev)
	}
	if len(e.free) != maxFreeEvents {
		t.Fatalf("free list length = %d, want cap %d", len(e.free), maxFreeEvents)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

// TestHeapInterfaceDirect covers the far heap's Push/Pop contract
// directly (the engine itself only grows the heap via Schedule).
func TestHeapInterfaceDirect(t *testing.T) {
	var h eventHeap
	heap.Push(&h, &Event{cycle: 5, seq: 1})
	heap.Push(&h, &Event{cycle: 3, seq: 2})
	heap.Push(&h, &Event{cycle: 5, seq: 0})
	if h.Len() != 3 {
		t.Fatalf("len = %d", h.Len())
	}
	a := heap.Pop(&h).(*Event)
	b := heap.Pop(&h).(*Event)
	c := heap.Pop(&h).(*Event)
	if a.cycle != 3 || b.cycle != 5 || b.seq != 0 || c.seq != 1 {
		t.Fatalf("pop order (%d,%d) (%d,%d) (%d,%d)", a.cycle, a.seq, b.cycle, b.seq, c.cycle, c.seq)
	}
	if a.index != idxFired {
		t.Fatalf("popped index = %d", a.index)
	}
}
