// Benchmarks pinning the scheduling hot path. The steady-state
// schedule/fire cycle must not allocate: every simulated latency hop
// (cache lookups, network messages, directory accesses) schedules one
// event, so a per-event allocation shows up directly in sweep wall
// clock. Run as:
//
//	go test -bench 'Schedule|Timer' -benchmem ./internal/sim
package sim

import "testing"

// BenchmarkScheduleFire is the core loop: one event scheduled and fired
// per iteration. With the free list engaged this is 0 allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Step()
	}
}

// BenchmarkScheduleFireDeep keeps a standing queue of 64 events so the
// heap sift cost at realistic occupancy is measured too.
func BenchmarkScheduleFireDeep(b *testing.B) {
	var e Engine
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(uint64(1+i%7), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(uint64(1+i%7), fn)
		e.Step()
	}
}

// BenchmarkTimerCancelReschedule models the machine's validation-timer
// pattern: arm, cancel, re-arm. Pure free-list churn, 0 allocs/op.
func BenchmarkTimerCancelReschedule(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(10, fn)
		e.Cancel(ev)
	}
}

// benchRunner is a typed payload like the pooled per-layer message
// structs: scheduling it must not allocate, payload included.
type benchRunner struct{ n uint64 }

func (r *benchRunner) Run() { r.n++ }

// BenchmarkScheduleFireRunner is the schedule/fire cycle with a typed
// payload instead of a closure — the production hot path after the
// dispatch refactor. 0 allocs/op including the payload.
func BenchmarkScheduleFireRunner(b *testing.B) {
	var e Engine
	r := &benchRunner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleRunner(1, r)
		e.Step()
	}
}

// BenchmarkScheduleFireRunnerDeep keeps a standing queue of 64 events at
// mixed offsets so bucket scanning at realistic occupancy is measured.
func BenchmarkScheduleFireRunnerDeep(b *testing.B) {
	var e Engine
	r := &benchRunner{}
	for i := 0; i < 64; i++ {
		e.ScheduleRunner(uint64(1+i%7), r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleRunner(uint64(1+i%7), r)
		e.Step()
	}
}

// BenchmarkScheduleFireSerialSched is the schedule/fire cycle through a
// domain-annotated Sched handle with the engine in explicit serial mode
// (SetWorkers(1)) — the default -intra-j 1 configuration of every
// production call site after the domain refactor. The serial guard must
// make the domain seam free: 0 allocs/op, no goroutines, no locks.
func BenchmarkScheduleFireSerialSched(b *testing.B) {
	var e Engine
	e.SetWorkers(1)
	s := e.NewSched(Domain(1))
	r := &benchRunner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleRunnerIn(DomainSerial, 1, r)
		e.Step()
	}
}

// TestSerialSchedZeroAllocs hard-pins the serial guard: the bench above
// reports the number, this fails the suite if it ever becomes non-zero.
func TestSerialSchedZeroAllocs(t *testing.T) {
	var e Engine
	e.SetWorkers(1)
	s := e.NewSched(Domain(1))
	r := &benchRunner{}
	if avg := testing.AllocsPerRun(1000, func() {
		s.ScheduleRunnerIn(DomainSerial, 1, r)
		e.Step()
	}); avg != 0 {
		t.Errorf("serial-mode schedule/fire allocates %.2f per op, want 0", avg)
	}
}

// BenchmarkScheduleFireFar exercises the overflow heap: every delay is
// past the near-wheel horizon, so events migrate heap→wheel before
// firing. Still 0 allocs/op.
func BenchmarkScheduleFireFar(b *testing.B) {
	var e Engine
	r := &benchRunner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleRunner(wheelSize+uint64(i%100), r)
		e.Step()
	}
}
