// Benchmarks pinning the scheduling hot path. The steady-state
// schedule/fire cycle must not allocate: every simulated latency hop
// (cache lookups, network messages, directory accesses) schedules one
// event, so a per-event allocation shows up directly in sweep wall
// clock. Run as:
//
//	go test -bench 'Schedule|Timer' -benchmem ./internal/sim
package sim

import "testing"

// BenchmarkScheduleFire is the core loop: one event scheduled and fired
// per iteration. With the free list engaged this is 0 allocs/op.
func BenchmarkScheduleFire(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Step()
	}
}

// BenchmarkScheduleFireDeep keeps a standing queue of 64 events so the
// heap sift cost at realistic occupancy is measured too.
func BenchmarkScheduleFireDeep(b *testing.B) {
	var e Engine
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(uint64(1+i%7), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(uint64(1+i%7), fn)
		e.Step()
	}
}

// BenchmarkTimerCancelReschedule models the machine's validation-timer
// pattern: arm, cancel, re-arm. Pure free-list churn, 0 allocs/op.
func BenchmarkTimerCancelReschedule(b *testing.B) {
	var e Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(10, fn)
		e.Cancel(ev)
	}
}
