package sim

// waveStat measures parallel coverage: how many same-cycle events of
// distinct non-serial domains sit next to each other in the logical
// (cycle, seq) fire order. A wave is a maximal run of events that could
// execute concurrently — it is broken by a serial-domain event (which
// runs alone), by a cycle boundary, or by a repeated domain (two events
// of one domain serialize on its worker). events/waves is the
// events-per-wave figure the bench reports quote: 1.0 means fully
// serialized, higher means more same-cycle work off the serial domain.
//
// The automaton is fed from the logical fire order in both engines, so
// the figure is comparable across -intra-j values; it is a coverage
// metric, not a simulation result, and is deliberately kept out of
// machine.RunStats so the bit-equality oracles never depend on it (the
// parallel engine counts a mid-batch-cancelled event where the serial
// engine skips it, an edge the oracles must not see).
type waveStat struct {
	events uint64
	waves  uint64
	serial uint64
	cycle  uint64
	open   bool
	seen   []uint64 // bitset over domains in the open wave
}

// note feeds one fired event to the automaton.
func (w *waveStat) note(dom Domain, cycle uint64) {
	w.events++
	if cycle != w.cycle {
		w.open = false
		w.cycle = cycle
	}
	if dom == DomainSerial {
		w.open = false
		w.waves++
		w.serial++
		return
	}
	wi, bit := int(dom)>>6, uint64(1)<<(uint(dom)&63)
	if wi >= len(w.seen) {
		w.seen = append(w.seen, make([]uint64, wi+1-len(w.seen))...)
	}
	if !w.open || w.seen[wi]&bit != 0 {
		for i := range w.seen {
			w.seen[i] = 0
		}
		w.open = true
		w.waves++
	}
	w.seen[wi] |= bit
}

// WaveStats returns the parallel-coverage counters: total events fed to
// the wave automaton, the number of waves they formed, and how many of
// those events ran on DomainSerial (each one a full barrier). The ratio
// events/waves is the average same-cycle segment length the parallel
// executor can exploit (1.0 = fully serialized); serial/events is the
// serial-event fraction — the share of fired events that still split
// the frame. After the delivery-routing work the remaining serial
// events are begin-flow commit-order bookkeeping and the eviction
// writeback cancellation window (see machine's pendingWB).
func (e *Engine) WaveStats() (events, waves, serial uint64) {
	return e.waves.events, e.waves.waves, e.waves.serial
}
