package sim

// Rand is a small, fast, deterministic PRNG (xorshift64*), used instead
// of math/rand so that simulation results are stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded from seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift cannot leave the zero state.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
