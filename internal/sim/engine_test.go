package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(10, func() { got = append(got, 3) }) // same cycle: insertion order
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestZeroDelayRunsSameCycleAfterExisting(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(0, func() {
		got = append(got, 1)
		e.Schedule(0, func() { got = append(got, 3) })
	})
	e.Schedule(0, func() { got = append(got, 2) })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %d, want 0", e.Now())
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(5, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
}

// TestCancelIndexStates pins the Event.index lifecycle the free-list
// recycling relies on: >= 0 while queued, -1 once popped (fired), -2 once
// cancelled. Only the -2 state reports Cancelled().
func TestCancelIndexStates(t *testing.T) {
	var e Engine
	var fired *Event
	fired = e.Schedule(1, func() {
		if fired.index != -1 {
			t.Errorf("index during own callback = %d, want -1", fired.index)
		}
	})
	cancelled := e.Schedule(2, func() { t.Error("cancelled event fired") })
	if fired.index < 0 || cancelled.index < 0 {
		t.Fatalf("queued indices = %d, %d; want >= 0", fired.index, cancelled.index)
	}
	if fired.Cancelled() || cancelled.Cancelled() {
		t.Fatal("queued events report Cancelled")
	}
	e.Cancel(cancelled)
	if cancelled.index != -2 {
		t.Fatalf("cancelled index = %d, want -2", cancelled.index)
	}
	if !cancelled.Cancelled() {
		t.Fatal("cancelled event does not report Cancelled")
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired.index != -1 {
		t.Fatalf("fired index = %d, want -1", fired.index)
	}
	if fired.Cancelled() {
		t.Fatal("fired event reports Cancelled")
	}
}

// TestFreeListRecycles proves the free list is engaged: an Event object
// that fired (or was cancelled) backs a later Schedule call, and the
// recycled incarnation behaves like a fresh one.
func TestFreeListRecycles(t *testing.T) {
	var e Engine
	first := e.Schedule(1, func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	second := e.Schedule(1, func() {})
	if first != second {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if second.Cancelled() || second.index < 0 {
		t.Fatalf("recycled event in bad state: index=%d", second.index)
	}
	e.Cancel(second)
	third := e.Schedule(3, func() {})
	if third != second {
		t.Fatal("cancelled event was not recycled by the next Schedule")
	}
	if third.Cancelled() {
		t.Fatal("recycled event still reports Cancelled")
	}
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Cancel(third)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("unrelated event lost after recycling churn")
	}
	if e.Now() != 1+1 {
		t.Fatalf("Now = %d, want 2", e.Now())
	}
}

// TestFreeListOrderingUnchanged re-runs the ordering property through
// enough schedule/fire/cancel churn that most events are recycled ones.
func TestFreeListOrderingUnchanged(t *testing.T) {
	var e Engine
	r := NewRand(17)
	var fireOrder []uint64
	var pending []*Event
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			pending = append(pending, e.Schedule(r.Uint64n(16), func() {
				fireOrder = append(fireOrder, e.Now())
			}))
		}
		// Cancel a deterministic subset while still queued.
		for i := 0; i < len(pending); i += 3 {
			e.Cancel(pending[i])
		}
		pending = pending[:0]
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(fireOrder); i++ {
		if fireOrder[i] < fireOrder[i-1] {
			t.Fatalf("cycle order regressed at %d: %d < %d", i, fireOrder[i], fireOrder[i-1])
		}
	}
	if len(fireOrder) == 0 {
		t.Fatal("nothing fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(1, func() { got = append(got, 1) })
	ev := e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(3, func() { got = append(got, 3) })
	e.Cancel(ev)
	e.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", got)
	}
}

func TestRunLimit(t *testing.T) {
	var e Engine
	var reschedule func()
	reschedule = func() { e.Schedule(10, reschedule) }
	e.Schedule(10, reschedule)
	n, err := e.Run(100)
	if err == nil {
		t.Fatal("expected cycle-limit error")
	}
	if n == 0 {
		t.Fatal("no events fired before limit")
	}
	if e.Now() > 100 {
		t.Fatalf("clock ran past limit: %d", e.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var e Engine
	e.Schedule(1, nil)
}

// Property: events always fire in nondecreasing cycle order, and ties fire
// in insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		var e Engine
		type rec struct {
			cycle uint64
			seq   int
		}
		var fireOrder []rec
		for i, d := range delays {
			d := uint64(d % 64)
			i := i
			e.Schedule(d, func() { fireOrder = append(fireOrder, rec{e.Now(), i}) })
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fireOrder); i++ {
			a, b := fireOrder[i-1], fireOrder[i]
			if b.cycle < a.cycle {
				return false
			}
			if b.cycle == a.cycle && b.seq < a.seq {
				return false
			}
		}
		return len(fireOrder) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}
