// Intra-run parallel execution: same-cycle events of distinct domains
// run concurrently on a worker pool, with results bit-identical to the
// serial engine.
//
// Model. Every event carries an owner Domain. Domain 0 (DomainSerial)
// is the global serial domain: its events run alone, one at a time, on
// the coordinating goroutine, and may touch anything — unannotated
// events land there, so migration is incremental. Non-serial domains
// promise that their events touch only domain-local state and interact
// with the rest of the system exclusively by scheduling events (through
// Sched handles), so same-cycle events of *distinct* domains commute
// and may run concurrently.
//
// Execution. Each cycle the bucket for `now` is drained into a frame
// (seq-ordered). The frame is walked in order and split into segments:
// a serial event is fired inline; a maximal run of non-serial events
// becomes a batch whose events are grouped per domain (each group keeps
// frame order) and executed by the pool, one goroutine per domain.
// Events scheduled during a batch are buffered per scheduling domain,
// tagged with the frame index of the event that scheduled them. After
// the barrier the buffers are merged by walking the batch's frame
// indices in order and popping each executing domain's buffer: because
// one worker runs a domain's events sequentially, each buffer is
// already (parent frame index, birth order)-sorted, so the merge visits
// new events in exactly the order the serial engine would have created
// them and assigns seq numbers accordingly. Delay-0 children land back
// in the current bucket and feed the next wave of the same cycle.
//
// The serial fast path is untouched: with workers <= 1, Engine.par is
// nil and Run/Schedule/Cancel never take a lock, touch an atomic or
// start a goroutine.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Domain identifies an ownership domain for parallel execution.
// DomainSerial is the default for everything scheduled directly on the
// Engine; events of non-serial domains may fire concurrently with
// same-cycle events of other domains.
type Domain int32

// DomainSerial is the global serial domain: its events run alone and
// may touch any simulator state.
const DomainSerial Domain = 0

// parMinBatch is the minimum number of live events in a same-cycle
// segment for it to be worth dispatching to the pool; smaller segments
// (and segments whose events all share one domain) run inline on the
// coordinator, which is trivially bit-identical and avoids the wakeup
// round-trip.
const parMinBatch = 4

// domFreeCap caps each domain's private event free list; overflow goes
// to the engine's global list (coordinator only).
const domFreeCap = 64

// Sched is a scheduling handle owned by one domain. It is the only
// legal way to schedule or cancel events from inside a concurrently
// executing (non-serial) event; outside a batch it behaves exactly like
// the plain Engine methods, just annotating the owner domain. Handles
// must be created before Run starts.
type Sched struct {
	eng *Engine
	dom Domain
}

// NewSched returns a scheduling handle that stamps events with domain
// d. Call once per component at build time.
func (e *Engine) NewSched(d Domain) Sched {
	if d < 0 {
		panic("sim: negative domain")
	}
	if int(d) > e.maxDom {
		e.maxDom = int(d)
	}
	return Sched{eng: e, dom: d}
}

// Engine returns the underlying engine (for serial-context use only).
func (s Sched) Engine() *Engine { return s.eng }

// Domain returns the handle's owner domain.
func (s Sched) Domain() Domain { return s.dom }

// Now returns the current cycle. The clock is frozen while any batch
// executes, so this is safe from worker context.
func (s Sched) Now() uint64 { return s.eng.now }

// Halted reports the pending halt error. Reads are safe from worker
// context only in the sense that halts are never raised there; it is
// meant for serial-context checks.
func (s Sched) Halted() error { return s.eng.halt }

// Schedule runs fn delay cycles from now in the handle's own domain.
func (s Sched) Schedule(delay uint64, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	return s.scheduleIn(s.dom, delay, fn, nil)
}

// ScheduleRunner runs r delay cycles from now in the handle's own
// domain.
func (s Sched) ScheduleRunner(delay uint64, r Runner) *Event {
	if r == nil {
		panic("sim: ScheduleRunner called with nil Runner")
	}
	return s.scheduleIn(s.dom, delay, nil, r)
}

// ScheduleRunnerIn runs r delay cycles from now in the given target
// domain (e.g. a node handing a message to the serial directory, or a
// serial response handler scheduling a retry back into a node domain).
func (s Sched) ScheduleRunnerIn(target Domain, delay uint64, r Runner) *Event {
	if r == nil {
		panic("sim: ScheduleRunnerIn called with nil Runner")
	}
	if target < 0 {
		panic("sim: negative target domain")
	}
	return s.scheduleIn(target, delay, nil, r)
}

func (s Sched) scheduleIn(target Domain, delay uint64, fn func(), r Runner) *Event {
	e := s.eng
	p := e.par
	if p == nil || !p.inBatch {
		return e.insertDom(target, delay, fn, r)
	}
	// Worker context: buffer in the scheduling domain's staging list.
	// ev.seq temporarily holds the parent frame index; the coordinator
	// assigns the real seq at merge time.
	ds := &p.doms[s.dom]
	var ev *Event
	if n := len(ds.free); n > 0 {
		ev = ds.free[n-1]
		ds.free[n-1] = nil
		ds.free = ds.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.cycle = e.now + delay
	ev.seq = uint64(ds.curParent)
	ev.fn = fn
	ev.run = r
	ev.dom = target
	ev.index = idxStaged
	ds.staged = append(ds.staged, ev)
	return ev
}

// Cancel removes a scheduled event. From worker context only events
// owned by (or staged by) the handle's own domain may be cancelled:
// frame/staged events are marked dead in place, wheel and far events
// are marked immediately and unlinked by the coordinator at the merge.
func (s Sched) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	e := s.eng
	p := e.par
	if p == nil || !p.inBatch {
		e.Cancel(ev)
		return
	}
	ds := &p.doms[s.dom]
	switch ev.index {
	case idxStaged:
		// Stays in the staging list: the merge still assigns its seq (the
		// serial engine would have consumed one) but recycles it instead
		// of inserting it.
		ev.index = idxCancelled
		ev.fn = nil
		ev.run = nil
	case idxFrame:
		// A later same-domain event of this frame: the group walker skips
		// it, the coordinator recycles it with the rest of the frame.
		ev.index = idxCancelled
		ev.fn = nil
		ev.run = nil
	case idxWheel:
		ev.index = idxCancelled
		ev.fn = nil
		ev.run = nil
		ds.cancels = append(ds.cancels, stagedCancel{ev: ev, far: false})
	case idxFired, idxCancelled:
		// no-op
	default: // far heap position
		ev.index = idxCancelled
		ev.fn = nil
		ev.run = nil
		ds.cancels = append(ds.cancels, stagedCancel{ev: ev, far: true})
	}
}

// stagedCancel defers the queue unlink of a cancel issued from worker
// context to the coordinator's merge step.
type stagedCancel struct {
	ev  *Event
	far bool
}

// frameEvt pairs a frame event with its frame index (the merge key for
// events it schedules).
type frameEvt struct {
	ev *Event
	fi int32
}

// domState is the per-domain execution state. During a batch it is
// touched only by the single worker running that domain (events and
// groups are laid out by the coordinator before the wakeup, and read
// back after the barrier).
type domState struct {
	events    []frameEvt     // this domain's slice of the current batch
	staged    []*Event       // events scheduled during the batch, birth order
	cancels   []stagedCancel // deferred queue unlinks
	free      []*Event       // private event free list
	curParent int32          // frame index of the event currently running
	executed  uint64         // events actually fired this batch
	mc        int            // merge cursor into staged
}

// parState is the parallel executor: worker pool, per-domain state and
// the frame/group scratch of the current cycle.
type parState struct {
	eng     *Engine
	workers int // total, including the coordinating goroutine

	doms   []domState
	frame  []*Event
	groups []Domain

	// inBatch is written by the coordinator around each pool dispatch
	// (the epoch/joined atomics provide the happens-before edges) and
	// read by Sched calls to pick the staging path.
	inBatch bool

	cursor     atomic.Int64  // next group index to claim
	groupsDone atomic.Int32  // groups fully executed this batch
	epoch      atomic.Uint64 // odd = batch open, even = closed
	joined     atomic.Int32  // workers currently inside the batch
	stop       atomic.Bool   // tells workers to exit
	parked     []atomic.Bool // worker i is blocked on park[i]
	park       []chan struct{}
	started    bool
	wg         sync.WaitGroup

	// Coordinator-only wake throttling. On a host with no spare cores
	// (GOMAXPROCS=1, or every core busy with sweep cells) the spawned
	// workers never get scheduled inside a batch window, so unparking
	// them every batch is pure overhead: after wakeIdleLimit consecutive
	// batches fully executed by the coordinator the wakes pause, and a
	// periodic probe keeps checking whether cores have freed up. Which
	// goroutine runs a group never affects results, so the throttle is
	// invisible to determinism.
	selfClaims int
	workerIdle int
	batchNo    uint64
}

// SetWorkers selects the execution mode for subsequent Run calls:
// n <= 1 restores the serial engine (the zero-overhead default), n > 1
// enables the parallel executor with n-1 spawned workers plus the
// calling goroutine. Must not be called while Run is active.
func (e *Engine) SetWorkers(n int) {
	if e.par != nil && e.par.started {
		panic("sim: SetWorkers while Run is active")
	}
	if n <= 1 {
		e.par = nil
		return
	}
	e.par = &parState{eng: e, workers: n}
}

// Workers returns the configured worker count (1 = serial).
func (e *Engine) Workers() int {
	if e.par == nil {
		return 1
	}
	return e.par.workers
}

// parkSpins is how many failed epoch checks (each yielding the
// processor) a worker tolerates before blocking on its park channel.
const parkSpins = 64

// wakeIdleLimit and wakeProbeMask tune the wake throttle: after
// wakeIdleLimit consecutive all-coordinator batches, parked workers are
// only unparked every wakeProbeMask+1 batches.
const (
	wakeIdleLimit = 8
	wakeProbeMask = 255
)

func (p *parState) startWorkers() {
	n := p.workers - 1
	if len(p.doms) <= p.eng.maxDom {
		p.doms = make([]domState, p.eng.maxDom+1)
	}
	p.parked = make([]atomic.Bool, n)
	p.park = make([]chan struct{}, n)
	for i := range p.park {
		p.park[i] = make(chan struct{}, 1)
	}
	p.stop.Store(false)
	p.started = true
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.workerLoop(i)
	}
}

func (p *parState) stopWorkers() {
	p.stop.Store(true)
	for i := range p.park {
		if p.parked[i].CompareAndSwap(true, false) {
			p.park[i] <- struct{}{}
		}
	}
	p.wg.Wait()
	p.started = false
}

// workerLoop spins on the batch epoch, joins open batches, and parks
// after enough idle passes. The join protocol (joined.Add around a
// re-checked epoch load) lets the coordinator close a batch without
// ever waiting for workers to arrive: a worker that joins late sees the
// closed epoch and backs straight out.
func (p *parState) workerLoop(id int) {
	defer p.wg.Done()
	var lastSeen uint64
	spins := 0
	for {
		if p.stop.Load() {
			return
		}
		e := p.epoch.Load()
		if e&1 == 0 || e == lastSeen {
			spins++
			if spins < parkSpins {
				runtime.Gosched()
				continue
			}
			spins = 0
			// Park. Publish the flag first, then re-check for a batch or a
			// stop that raced with the publication; if the racing side
			// already consumed the flag, its token is in flight — take it.
			p.parked[id].Store(true)
			if e2 := p.epoch.Load(); (e2&1 == 1 && e2 != lastSeen) || p.stop.Load() {
				if !p.parked[id].CompareAndSwap(true, false) {
					<-p.park[id]
				}
				continue
			}
			<-p.park[id]
			continue
		}
		lastSeen = e
		spins = 0
		p.joined.Add(1)
		if p.epoch.Load() == e {
			p.work()
		}
		p.joined.Add(-1)
	}
}

// work claims domain groups off the shared cursor until the batch is
// exhausted. Called by workers that joined the open batch.
func (p *parState) work() {
	for {
		t := int(p.cursor.Add(1)) - 1
		if t >= len(p.groups) {
			return
		}
		p.runGroup(p.groups[t])
		p.groupsDone.Add(1)
	}
}

// coordWork is work for the coordinator: it also counts the groups it
// claimed itself, which feeds the wake throttle.
func (p *parState) coordWork() {
	for {
		t := int(p.cursor.Add(1)) - 1
		if t >= len(p.groups) {
			return
		}
		p.runGroup(p.groups[t])
		p.groupsDone.Add(1)
		p.selfClaims++
	}
}

// wakeParked unparks blocked workers for the batch just opened, subject
// to the throttle. Spinning workers join via the epoch alone and are
// never throttled.
func (p *parState) wakeParked() {
	if p.workerIdle >= wakeIdleLimit && p.batchNo&wakeProbeMask != 0 {
		return
	}
	need := len(p.groups) - 1
	for i := range p.park {
		if need <= 0 {
			return
		}
		if p.parked[i].CompareAndSwap(true, false) {
			p.park[i] <- struct{}{}
			need--
		}
	}
}

// runGroup fires one domain's slice of the batch, in frame order.
func (p *parState) runGroup(d Domain) {
	ds := &p.doms[d]
	for _, fe := range ds.events {
		ev := fe.ev
		if ev.index == idxCancelled {
			continue
		}
		ds.curParent = fe.fi
		ev.index = idxFired
		ds.executed++
		if r := ev.run; r != nil {
			r.Run()
		} else {
			ev.fn()
		}
	}
}

// runParallel is the parallel counterpart of the serial Run loop.
func (e *Engine) runParallel(limit uint64) (uint64, error) {
	p := e.par
	p.startWorkers()
	defer p.stopWorkers()
	start := e.fired
	for {
		if e.halt != nil {
			err := e.halt
			e.halt = nil
			return e.fired - start, err
		}
		c, ok := e.nextCycle()
		if !ok {
			break
		}
		if limit != 0 && c > limit {
			return e.fired - start, fmt.Errorf("sim: cycle limit %d reached with %d events pending at cycle %d",
				limit, e.Pending(), c)
		}
		if c > e.now {
			e.now = c
			e.migrate()
		}
		e.runCycleParallel()
	}
	if e.halt != nil {
		err := e.halt
		e.halt = nil
		return e.fired - start, err
	}
	return e.fired - start, nil
}

// runCycleParallel fires every event at cycle now, in waves: drain the
// bucket into the frame, execute it in seq order (serial events inline,
// non-serial segments on the pool), merge, and repeat while delay-0
// children keep refilling the bucket.
func (e *Engine) runCycleParallel() {
	p := e.par
	bi := int(uint(e.now) & wheelMask)
	b := &e.buckets[bi]
	for b.head != nil {
		frame := p.frame[:0]
		for ev := b.head; ev != nil; {
			nx := ev.next
			ev.next, ev.prev = nil, nil
			ev.index = idxFrame
			frame = append(frame, ev)
			ev = nx
		}
		b.head, b.tail = nil, nil
		e.occ[bi>>6] &^= 1 << uint(bi&63)
		e.wheelCount -= len(frame)
		p.frame = frame

		k := 0
		for k < len(frame) {
			ev := frame[k]
			if ev.index == idxCancelled {
				e.release(ev)
				k++
				continue
			}
			if e.halt != nil {
				e.requeue(frame[k:])
				return
			}
			if ev.dom == DomainSerial {
				k++
				ev.index = idxFired
				e.fired++
				e.waves.note(DomainSerial, e.now)
				if r := ev.run; r != nil {
					r.Run()
				} else {
					ev.fn()
				}
				ev.fn = nil
				ev.run = nil
				e.release(ev)
				continue
			}
			j := k + 1
			for j < len(frame) && frame[j].dom != DomainSerial {
				j++
			}
			if h := e.runBatch(frame, k, j); h >= 0 {
				e.requeue(frame[h:])
				return
			}
			k = j
		}
	}
}

// runBatch executes frame[k:j] (all non-serial). Segments with a single
// distinct domain or below parMinBatch live events run inline in frame
// order — bit-identical trivially and free of pool overhead. Larger
// segments dispatch to the pool and merge. Returns the frame index of
// the first unfired event if a halt interrupted the inline path, else
// -1.
func (e *Engine) runBatch(frame []*Event, k, j int) int {
	p := e.par
	live := 0
	for idx := k; idx < j; idx++ {
		ev := frame[idx]
		if ev.index == idxCancelled {
			continue
		}
		ds := &p.doms[ev.dom]
		if len(ds.events) == 0 {
			p.groups = append(p.groups, ev.dom)
		}
		ds.events = append(ds.events, frameEvt{ev: ev, fi: int32(idx)})
		e.waves.note(ev.dom, e.now)
		live++
	}
	if len(p.groups) <= 1 || live < parMinBatch {
		for _, g := range p.groups {
			ds := &p.doms[g]
			ds.events = ds.events[:0]
		}
		p.groups = p.groups[:0]
		for idx := k; idx < j; idx++ {
			ev := frame[idx]
			if ev.index == idxCancelled {
				e.release(ev)
				continue
			}
			if e.halt != nil {
				return idx
			}
			ev.index = idxFired
			e.fired++
			if r := ev.run; r != nil {
				r.Run()
			} else {
				ev.fn()
			}
			ev.fn = nil
			ev.run = nil
			e.release(ev)
		}
		return -1
	}

	// Rebalance event reuse across domains before dispatch. Routing
	// deliveries into destination domains makes some domains net
	// producers of free events (a bank fires a request and an unblock
	// but stages only the response) and others net consumers (a core
	// fires one response and stages the next request plus its unblock),
	// so the private free lists alone would drain on the consumer side
	// and allocate every staged event. The coordinator is the only
	// context that may touch the global list; top each group up to its
	// expected staging demand here, and let the per-domain refill
	// overflow drain back to the global list after the merge.
	for _, g := range p.groups {
		ds := &p.doms[g]
		want := 2 * len(ds.events)
		if want > domFreeCap {
			want = domFreeCap
		}
		for len(ds.free) < want && len(e.free) > 0 {
			n := len(e.free) - 1
			ds.free = append(ds.free, e.free[n])
			e.free[n] = nil
			e.free = e.free[:n]
		}
	}

	// Pool dispatch. Opening the batch is a handful of atomics: reset
	// the claim cursor, bump the epoch to odd (the store publishes the
	// groups laid out above), unpark workers if the throttle allows, and
	// participate. The coordinator never waits for a worker to *arrive*:
	// on a host with no spare cores it claims every group itself and the
	// close below is immediate. The close (epoch back to even, joined
	// drained to zero) is the barrier: after it no worker can touch the
	// per-domain state, and everything workers wrote is visible here.
	p.inBatch = true
	p.cursor.Store(0)
	p.groupsDone.Store(0)
	p.selfClaims = 0
	p.epoch.Add(1) // odd: batch open
	p.wakeParked()
	p.batchNo++
	p.coordWork()
	for p.groupsDone.Load() != int32(len(p.groups)) {
		runtime.Gosched() // a worker owns the remaining groups; let it run
	}
	p.epoch.Add(1) // even: batch closed
	for p.joined.Load() != 0 {
		runtime.Gosched() // drain late joiners before touching shared state
	}
	p.inBatch = false
	if p.selfClaims == len(p.groups) {
		p.workerIdle++
	} else {
		p.workerIdle = 0
	}

	// Deferred cancels first, so the queues are consistent before the
	// staged inserts below.
	for _, g := range p.groups {
		ds := &p.doms[g]
		e.fired += ds.executed
		ds.executed = 0
		for ci := range ds.cancels {
			c := ds.cancels[ci]
			ds.cancels[ci] = stagedCancel{}
			if c.far {
				for fi := range e.far {
					if e.far[fi] == c.ev {
						heap.Remove(&e.far, fi)
						break
					}
				}
				c.ev.index = idxCancelled
			} else {
				e.wheelRemove(c.ev)
			}
			e.release(c.ev)
		}
		ds.cancels = ds.cancels[:0]
	}

	// Merge: walk the batch's frame indices in order; each executing
	// domain's staging list is (parent, birth)-sorted, so popping by
	// parent index reproduces the serial engine's creation order and the
	// seq assignment below is exactly what the serial engine would have
	// produced.
	for idx := k; idx < j; idx++ {
		ev := frame[idx]
		if ev.index == idxCancelled {
			continue // never ran, has no children
		}
		ds := &p.doms[ev.dom]
		for ds.mc < len(ds.staged) && ds.staged[ds.mc].seq == uint64(idx) {
			sev := ds.staged[ds.mc]
			ds.staged[ds.mc] = nil
			ds.mc++
			sev.seq = e.seq
			e.seq++
			if sev.index == idxCancelled {
				e.release(sev)
				continue
			}
			if sev.cycle-e.now < wheelSize {
				e.wheelAdd(sev)
			} else {
				heap.Push(&e.far, sev)
			}
		}
	}

	// Recycle the frame slice of this batch and reset the groups. Fired
	// events refill their own domain's free list so staging stays
	// allocation-free in steady state.
	for idx := k; idx < j; idx++ {
		ev := frame[idx]
		ev.fn = nil
		ev.run = nil
		ds := &p.doms[ev.dom]
		if len(ds.free) < domFreeCap {
			ds.free = append(ds.free, ev)
		} else {
			e.release(ev)
		}
	}
	for _, g := range p.groups {
		ds := &p.doms[g]
		if ds.mc != len(ds.staged) {
			panic("sim: staged events left unmerged (event scheduled outside its executing domain?)")
		}
		ds.events = ds.events[:0]
		ds.staged = ds.staged[:0]
		ds.mc = 0
	}
	p.groups = p.groups[:0]
	return -1
}

// requeue pushes not-yet-fired frame events back onto the front of the
// current bucket (halt path), ahead of any delay-0 children appended by
// earlier segments of this wave — which all carry larger seqs — so the
// bucket stays seq-sorted and Pending() matches the serial engine.
func (e *Engine) requeue(evs []*Event) {
	bi := int(uint(e.now) & wheelMask)
	b := &e.buckets[bi]
	for k := len(evs) - 1; k >= 0; k-- {
		ev := evs[k]
		if ev.index == idxCancelled {
			e.release(ev)
			continue
		}
		ev.prev = nil
		ev.next = b.head
		if b.head != nil {
			b.head.prev = ev
		} else {
			b.tail = ev
		}
		b.head = ev
		ev.index = idxWheel
		e.wheelCount++
	}
	if b.head != nil {
		e.occ[bi>>6] |= 1 << uint(bi&63)
	}
}
