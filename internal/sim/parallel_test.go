package sim

import (
	"fmt"
	"testing"
)

// The synthetic workload below mimics the machine's event shapes: per
// node a stream of self-rescheduling events (delay 0..3), requests into
// the serial hub which answers back into the node's domain, occasional
// far delays past the wheel horizon, and an armed-then-cancelled timer.
// Every observable — each node's private log, the hub's order-sensitive
// log, Fired(), Now() — must be bit-identical at any worker count.

type phub struct {
	sched Sched
	log   []uint64
}

type preq struct {
	hub   *phub
	node  *pnode
	delay uint64
}

func (r *preq) Run() {
	h := r.hub
	// The hub log captures the global firing order of serial events: a
	// merge-order bug between domains shows up here immediately.
	h.log = append(h.log, h.sched.Now()<<8|uint64(r.node.id))
	h.sched.ScheduleRunnerIn(r.node.sched.Domain(), r.delay, &presp{node: r.node})
}

type presp struct{ node *pnode }

func (r *presp) Run() { r.node.fire(2) }

type pnode struct {
	sched Sched
	hub   *phub
	id    int
	rng   uint64
	ops   int
	log   []uint64
	timer *Event
	tick  ptick
	self  pself
}

type ptick struct{ node *pnode }

func (t *ptick) Run() {
	n := t.node
	n.timer = nil
	n.log = append(n.log, n.sched.Now()<<8|7)
}

type pself struct{ node *pnode }

func (s *pself) Run() { s.node.fire(1) }

func (n *pnode) next() uint64 {
	n.rng = n.rng*6364136223846793005 + 1442695040888963407
	return n.rng >> 33
}

func (n *pnode) fire(kind uint64) {
	n.log = append(n.log, n.sched.Now()<<8|kind)
	if n.timer != nil {
		n.sched.Cancel(n.timer)
		n.timer = nil
	}
	if n.ops <= 0 {
		return
	}
	n.ops--
	switch n.next() % 5 {
	case 0, 1:
		n.sched.ScheduleRunner(n.next()%4, &n.self)
	case 2:
		n.sched.ScheduleRunnerIn(DomainSerial, 1+n.next()%3,
			&preq{hub: n.hub, node: n, delay: 1 + n.next()%4})
	case 3:
		// Arm a timer, then keep going; a later fire cancels it while it
		// sits in the wheel (or, with delay 0, in the current frame).
		n.timer = n.sched.ScheduleRunner(n.next()%8, &n.tick)
		n.sched.ScheduleRunner(1, &n.self)
	case 4:
		n.sched.ScheduleRunner(wheelSize+n.next()%70, &n.self)
	}
}

type pworld struct {
	eng   *Engine
	hub   *phub
	nodes []*pnode
}

func buildWorld(nodes, ops int, workers int) *pworld {
	w := &pworld{eng: &Engine{}}
	w.eng.SetWorkers(workers)
	w.hub = &phub{sched: w.eng.NewSched(DomainSerial)}
	for i := 0; i < nodes; i++ {
		n := &pnode{
			sched: w.eng.NewSched(Domain(1 + i)),
			hub:   w.hub,
			id:    i,
			rng:   uint64(i)*977 + 13,
			ops:   ops,
		}
		n.tick.node = n
		n.self.node = n
		w.nodes = append(w.nodes, n)
		w.eng.ScheduleRunner(uint64(i%3), &pself{node: n})
	}
	return w
}

func runWorld(t *testing.T, nodes, ops, workers int) (*pworld, uint64) {
	t.Helper()
	w := buildWorld(nodes, ops, workers)
	fired, err := w.eng.Run(0)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return w, fired
}

func TestParallelMatchesSerial(t *testing.T) {
	const nodes, ops = 16, 400
	ref, refFired := runWorld(t, nodes, ops, 1)
	for _, workers := range []int{2, 4, 8} {
		got, gotFired := runWorld(t, nodes, ops, workers)
		if gotFired != refFired {
			t.Errorf("workers=%d: fired %d, want %d", workers, gotFired, refFired)
		}
		if got.eng.Now() != ref.eng.Now() {
			t.Errorf("workers=%d: final cycle %d, want %d", workers, got.eng.Now(), ref.eng.Now())
		}
		if fmt.Sprint(got.hub.log) != fmt.Sprint(ref.hub.log) {
			t.Errorf("workers=%d: hub log diverged", workers)
		}
		for i := range got.nodes {
			if fmt.Sprint(got.nodes[i].log) != fmt.Sprint(ref.nodes[i].log) {
				t.Errorf("workers=%d: node %d log diverged", workers, i)
			}
		}
	}
}

// TestParallelSerialCancelsFrameEvent pins the idxFrame path: a serial
// event cancels a same-cycle event that is already drained into the
// frame but not yet fired.
func TestParallelSerialCancelsFrameEvent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var e Engine
		e.SetWorkers(workers)
		nd := e.NewSched(1)
		ran := false
		// Order at cycle 0: serial canceller (seq 0) fires first, then
		// the node event must be gone.
		var victim *Event
		e.Schedule(0, func() { e.Cancel(victim) })
		victim = nd.ScheduleRunner(0, runnerFunc(func() { ran = true }))
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		if ran {
			t.Errorf("workers=%d: cancelled frame event ran", workers)
		}
		if !victim.Cancelled() {
			t.Errorf("workers=%d: victim not marked cancelled", workers)
		}
	}
}

type runnerFunc func()

func (f runnerFunc) Run() { f() }

// TestParallelHaltRequeues checks that a halt raised by a serial event
// mid-cycle leaves the same Pending() count as the serial engine.
func TestParallelHaltRequeues(t *testing.T) {
	count := func(workers int) (int, uint64) {
		var e Engine
		e.SetWorkers(workers)
		nd := e.NewSched(1)
		nop := runnerFunc(func() {})
		for i := 0; i < 6; i++ {
			nd.ScheduleRunner(2, nop)
		}
		e.Schedule(2, func() { e.Halt(fmt.Errorf("stop")) })
		for i := 0; i < 6; i++ {
			nd.ScheduleRunner(2, nop)
		}
		nd.ScheduleRunner(9, nop)
		if _, err := e.Run(0); err == nil {
			t.Fatalf("workers=%d: expected halt error", workers)
		}
		return e.Pending(), e.Fired()
	}
	wantPending, wantFired := count(1)
	gotPending, gotFired := count(4)
	if gotPending != wantPending || gotFired != wantFired {
		t.Errorf("halt state: got pending=%d fired=%d, want pending=%d fired=%d",
			gotPending, gotFired, wantPending, wantFired)
	}
}

// TestParallelDirectScheduleDuringBatchPanics pins the migration guard:
// raw Engine scheduling from worker context is a bug, not a race.
func TestParallelDirectScheduleDuringBatchPanics(t *testing.T) {
	var e Engine
	e.SetWorkers(4)
	sd := make([]Sched, 8)
	for i := range sd {
		sd[i] = e.NewSched(Domain(1 + i))
	}
	panicked := make(chan any, 8)
	bad := runnerFunc(func() {
		defer func() { panicked <- recover() }()
		e.Schedule(1, func() {})
	})
	for i := range sd {
		sd[i].ScheduleRunner(0, bad)
	}
	e.Run(0)
	close(panicked)
	saw := false
	for v := range panicked {
		if v != nil {
			saw = true
		}
	}
	if !saw {
		t.Error("direct Engine.Schedule during a batch did not panic")
	}
}

// TestSerialModeStartsNoGoroutines pins the workers=1 guard: the serial
// engine must not spawn anything.
func TestSerialModeStartsNoGoroutines(t *testing.T) {
	var e Engine
	e.SetWorkers(1)
	if e.par != nil {
		t.Fatal("workers=1 left parallel state armed")
	}
	n := 0
	e.Schedule(1, func() { n++ })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("event did not run")
	}
}
