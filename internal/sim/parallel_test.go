package sim

import (
	"fmt"
	"testing"
)

// The synthetic workload below mimics the machine's event shapes: per
// node a stream of self-rescheduling events (delay 0..3), requests into
// the serial hub which answers back into the node's domain, occasional
// far delays past the wheel horizon, and an armed-then-cancelled timer.
// Every observable — each node's private log, the hub's order-sensitive
// log, Fired(), Now() — must be bit-identical at any worker count.

type phub struct {
	sched Sched
	log   []uint64
}

type preq struct {
	hub   *phub
	node  *pnode
	delay uint64
}

func (r *preq) Run() {
	h := r.hub
	// The hub log captures the global firing order of serial events: a
	// merge-order bug between domains shows up here immediately.
	h.log = append(h.log, h.sched.Now()<<8|uint64(r.node.id))
	h.sched.ScheduleRunnerIn(r.node.sched.Domain(), r.delay, &presp{node: r.node})
}

type presp struct{ node *pnode }

func (r *presp) Run() { r.node.fire(2) }

type pnode struct {
	sched Sched
	hub   *phub
	id    int
	rng   uint64
	ops   int
	log   []uint64
	timer *Event
	tick  ptick
	self  pself
}

type ptick struct{ node *pnode }

func (t *ptick) Run() {
	n := t.node
	n.timer = nil
	n.log = append(n.log, n.sched.Now()<<8|7)
}

type pself struct{ node *pnode }

func (s *pself) Run() { s.node.fire(1) }

func (n *pnode) next() uint64 {
	n.rng = n.rng*6364136223846793005 + 1442695040888963407
	return n.rng >> 33
}

func (n *pnode) fire(kind uint64) {
	n.log = append(n.log, n.sched.Now()<<8|kind)
	if n.timer != nil {
		n.sched.Cancel(n.timer)
		n.timer = nil
	}
	if n.ops <= 0 {
		return
	}
	n.ops--
	switch n.next() % 5 {
	case 0, 1:
		n.sched.ScheduleRunner(n.next()%4, &n.self)
	case 2:
		n.sched.ScheduleRunnerIn(DomainSerial, 1+n.next()%3,
			&preq{hub: n.hub, node: n, delay: 1 + n.next()%4})
	case 3:
		// Arm a timer, then keep going; a later fire cancels it while it
		// sits in the wheel (or, with delay 0, in the current frame).
		n.timer = n.sched.ScheduleRunner(n.next()%8, &n.tick)
		n.sched.ScheduleRunner(1, &n.self)
	case 4:
		n.sched.ScheduleRunner(wheelSize+n.next()%70, &n.self)
	}
}

type pworld struct {
	eng   *Engine
	hub   *phub
	nodes []*pnode
}

func buildWorld(nodes, ops int, workers int) *pworld {
	w := &pworld{eng: &Engine{}}
	w.eng.SetWorkers(workers)
	w.hub = &phub{sched: w.eng.NewSched(DomainSerial)}
	for i := 0; i < nodes; i++ {
		n := &pnode{
			sched: w.eng.NewSched(Domain(1 + i)),
			hub:   w.hub,
			id:    i,
			rng:   uint64(i)*977 + 13,
			ops:   ops,
		}
		n.tick.node = n
		n.self.node = n
		w.nodes = append(w.nodes, n)
		w.eng.ScheduleRunner(uint64(i%3), &pself{node: n})
	}
	return w
}

func runWorld(t *testing.T, nodes, ops, workers int) (*pworld, uint64) {
	t.Helper()
	w := buildWorld(nodes, ops, workers)
	fired, err := w.eng.Run(0)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return w, fired
}

func TestParallelMatchesSerial(t *testing.T) {
	const nodes, ops = 16, 400
	ref, refFired := runWorld(t, nodes, ops, 1)
	for _, workers := range []int{2, 4, 8} {
		got, gotFired := runWorld(t, nodes, ops, workers)
		if gotFired != refFired {
			t.Errorf("workers=%d: fired %d, want %d", workers, gotFired, refFired)
		}
		if got.eng.Now() != ref.eng.Now() {
			t.Errorf("workers=%d: final cycle %d, want %d", workers, got.eng.Now(), ref.eng.Now())
		}
		if fmt.Sprint(got.hub.log) != fmt.Sprint(ref.hub.log) {
			t.Errorf("workers=%d: hub log diverged", workers)
		}
		for i := range got.nodes {
			if fmt.Sprint(got.nodes[i].log) != fmt.Sprint(ref.nodes[i].log) {
				t.Errorf("workers=%d: node %d log diverged", workers, i)
			}
		}
	}
}

// TestParallelSerialCancelsFrameEvent pins the idxFrame path: a serial
// event cancels a same-cycle event that is already drained into the
// frame but not yet fired.
func TestParallelSerialCancelsFrameEvent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var e Engine
		e.SetWorkers(workers)
		nd := e.NewSched(1)
		ran := false
		// Order at cycle 0: serial canceller (seq 0) fires first, then
		// the node event must be gone.
		var victim *Event
		e.Schedule(0, func() { e.Cancel(victim) })
		victim = nd.ScheduleRunner(0, runnerFunc(func() { ran = true }))
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		if ran {
			t.Errorf("workers=%d: cancelled frame event ran", workers)
		}
		if !victim.Cancelled() {
			t.Errorf("workers=%d: victim not marked cancelled", workers)
		}
	}
}

type runnerFunc func()

func (f runnerFunc) Run() { f() }

// TestParallelHaltRequeues checks that a halt raised by a serial event
// mid-cycle leaves the same Pending() count as the serial engine.
func TestParallelHaltRequeues(t *testing.T) {
	count := func(workers int) (int, uint64) {
		var e Engine
		e.SetWorkers(workers)
		nd := e.NewSched(1)
		nop := runnerFunc(func() {})
		for i := 0; i < 6; i++ {
			nd.ScheduleRunner(2, nop)
		}
		e.Schedule(2, func() { e.Halt(fmt.Errorf("stop")) })
		for i := 0; i < 6; i++ {
			nd.ScheduleRunner(2, nop)
		}
		nd.ScheduleRunner(9, nop)
		if _, err := e.Run(0); err == nil {
			t.Fatalf("workers=%d: expected halt error", workers)
		}
		return e.Pending(), e.Fired()
	}
	wantPending, wantFired := count(1)
	gotPending, gotFired := count(4)
	if gotPending != wantPending || gotFired != wantFired {
		t.Errorf("halt state: got pending=%d fired=%d, want pending=%d fired=%d",
			gotPending, gotFired, wantPending, wantFired)
	}
}

// TestParallelDirectScheduleDuringBatchPanics pins the migration guard:
// raw Engine scheduling from worker context is a bug, not a race.
func TestParallelDirectScheduleDuringBatchPanics(t *testing.T) {
	var e Engine
	e.SetWorkers(4)
	sd := make([]Sched, 8)
	for i := range sd {
		sd[i] = e.NewSched(Domain(1 + i))
	}
	panicked := make(chan any, 8)
	bad := runnerFunc(func() {
		defer func() { panicked <- recover() }()
		e.Schedule(1, func() {})
	})
	for i := range sd {
		sd[i].ScheduleRunner(0, bad)
	}
	e.Run(0)
	close(panicked)
	saw := false
	for v := range panicked {
		if v != nil {
			saw = true
		}
	}
	if !saw {
		t.Error("direct Engine.Schedule during a batch did not panic")
	}
}

// TestSerialModeStartsNoGoroutines pins the workers=1 guard: the serial
// engine must not spawn anything.
func TestSerialModeStartsNoGoroutines(t *testing.T) {
	var e Engine
	e.SetWorkers(1)
	if e.par != nil {
		t.Fatal("workers=1 left parallel state armed")
	}
	n := 0
	e.Schedule(1, func() { n++ })
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("event did not run")
	}
}

// ---------- delivery-merge oracle ----------
//
// The barrier-free delivery refactor routes directory→core and
// core→directory messages into their destination's domain, so the
// staged-merge discipline now carries deliveries, not just node-local
// work. The tests below pin the two shapes that matter: same-cycle
// deliveries from several source domains converging on one destination
// domain, and counterflowing hops (core→bank and bank→core) fired from
// the same wave.

// dmDelivery is one staged cross-domain message: it appends its tag to
// the destination's log when it runs there.
type dmDelivery struct {
	log *[]uint64
	now func() uint64
	tag uint64
}

func (d *dmDelivery) Run() { *d.log = append(*d.log, d.now()<<16|d.tag) }

// dmSender fires in a source domain and schedules deliveries into a
// destination domain, mimicking a dirBank answering cores (or a core
// messaging its bank).
type dmSender struct {
	sched   Sched
	dest    Domain
	log     *[]uint64
	tagBase uint64
	sends   []uint64 // delivery delays
}

func (s *dmSender) Run() {
	for i, delay := range s.sends {
		s.sched.ScheduleRunnerIn(s.dest, delay,
			&dmDelivery{log: s.log, now: s.sched.Now, tag: s.tagBase + uint64(i)})
	}
}

// runConverge schedules, for a handful of cycles, one sender in each of
// two "bank" domains targeting the same "core" domain with overlapping
// delays, and returns the core's delivery log.
func runConverge(t *testing.T, workers int) []uint64 {
	t.Helper()
	var eng Engine
	eng.SetWorkers(workers)
	core := eng.NewSched(1)
	bankA := eng.NewSched(2)
	bankB := eng.NewSched(3)
	_ = core

	var coreLog []uint64
	for c := uint64(0); c < 8; c++ {
		// Same cycle, both banks, colliding delivery delays: the merge
		// must order the staged deliveries by (parent frame position,
		// per-parent order), never by worker timing.
		bankA.ScheduleRunnerIn(bankA.Domain(), c, &dmSender{
			sched: bankA, dest: 1, log: &coreLog,
			tagBase: 100 * (c + 1), sends: []uint64{2, 1, 2},
		})
		bankB.ScheduleRunnerIn(bankB.Domain(), c, &dmSender{
			sched: bankB, dest: 1, log: &coreLog,
			tagBase: 100*(c+1) + 50, sends: []uint64{1, 2, 1},
		})
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	return coreLog
}

// TestParallelDeliveryConvergeDeterministic pins the first shape:
// same-cycle deliveries from two bank domains into one core domain
// arrive in an order that is bit-identical at any worker count.
func TestParallelDeliveryConvergeDeterministic(t *testing.T) {
	ref := runConverge(t, 1)
	if len(ref) == 0 {
		t.Fatal("no deliveries recorded")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runConverge(t, workers)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Errorf("workers=%d: delivery order diverged\nserial:   %v\nparallel: %v",
				workers, ref, got)
		}
	}
}

// runCounterflow fires a core-domain sender and a bank-domain sender in
// the same cycle — the same wave under the parallel engine — each
// delivering into the other's domain, and returns both logs plus the
// engine's wave accounting.
func runCounterflow(t *testing.T, workers int) (coreLog, bankLog []uint64, events, waves, serial uint64) {
	t.Helper()
	var eng Engine
	eng.SetWorkers(workers)
	core := eng.NewSched(1)
	bank := eng.NewSched(2)

	for c := uint64(0); c < 6; c++ {
		core.ScheduleRunnerIn(core.Domain(), c, &dmSender{
			sched: core, dest: bank.Domain(), log: &bankLog,
			tagBase: 10 * (c + 1), sends: []uint64{1, 3},
		})
		bank.ScheduleRunnerIn(bank.Domain(), c, &dmSender{
			sched: bank, dest: core.Domain(), log: &coreLog,
			tagBase: 10*(c+1) + 5, sends: []uint64{3, 1},
		})
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	events, waves, serial = eng.WaveStats()
	return
}

// TestParallelDeliveryCounterflowSameWave pins the second shape:
// core→bank and bank→core hops issued from the same wave land
// deterministically on both sides, none of it needs a serial frame, and
// the wave accounting shows the two domains actually batched together.
func TestParallelDeliveryCounterflowSameWave(t *testing.T) {
	refCore, refBank, refEvents, refWaves, refSerial := runCounterflow(t, 1)
	if len(refCore) == 0 || len(refBank) == 0 {
		t.Fatal("no deliveries recorded")
	}
	if refSerial != 0 {
		t.Fatalf("counterflow traffic recorded %d serial events, want 0", refSerial)
	}
	if refWaves >= refEvents {
		t.Fatalf("events=%d waves=%d: same-cycle cross-domain work never batched", refEvents, refWaves)
	}
	for _, workers := range []int{2, 8} {
		core, bank, events, waves, serial := runCounterflow(t, workers)
		if fmt.Sprint(core) != fmt.Sprint(refCore) || fmt.Sprint(bank) != fmt.Sprint(refBank) {
			t.Errorf("workers=%d: logs diverged from serial", workers)
		}
		if events != refEvents || waves != refWaves || serial != refSerial {
			t.Errorf("workers=%d: WaveStats (%d,%d,%d), want (%d,%d,%d)",
				workers, events, waves, serial, refEvents, refWaves, refSerial)
		}
	}
}
