package htm

import (
	"chats/internal/coherence"
	"chats/internal/mem"
)

// ProbeDecision is a conflict-resolution outcome at the responder side.
type ProbeDecision uint8

const (
	// DecideAbort: requester-wins — the local transaction rolls back and
	// the request is serviced with committed data.
	DecideAbort ProbeDecision = iota
	// DecideSpec: requester-speculates — answer with a SpecResp carrying
	// the current (speculative) value, keep ownership, cancel at the
	// directory.
	DecideSpec
	// DecideNack: requester-stalls — refuse without data; the requester
	// retries.
	DecideNack
)

func (d ProbeDecision) String() string {
	switch d {
	case DecideAbort:
		return "abort"
	case DecideSpec:
		return "spec"
	case DecideNack:
		return "nack"
	}
	return "decision?"
}

// ForwardMode selects which blocks are eligible for forwarding
// (Section VI-D).
type ForwardMode uint8

const (
	// ForwardRW: read-set and write-set blocks may be forwarded.
	ForwardRW ForwardMode = iota
	// ForwardW: only write-set blocks may be forwarded.
	ForwardW
	// ForwardRrestrictW: read- and write-set blocks, but read-set blocks
	// predicted to be written by the local transaction are excluded.
	ForwardRrestrictW
)

func (m ForwardMode) String() string {
	switch m {
	case ForwardRW:
		return "R/W"
	case ForwardW:
		return "W"
	case ForwardRrestrictW:
		return "Rrestrict/W"
	}
	return "mode?"
}

// ProbeContext describes a conflicting probe for the policy.
type ProbeContext struct {
	Line mem.Addr
	Kind coherence.ProbeKind
	Req  coherence.ReqInfo
	// InWriteSet: the conflict is on a write-set (SM) line; otherwise the
	// line is only in the read signature.
	InWriteSet bool
	// PredictedWrite: the Rrestrict/W heuristic predicts the local
	// transaction will write this (read-set) line before committing.
	PredictedWrite bool
	// Forwardable: a speculative response is mechanically possible. It is
	// false for invalidation probes (forwarding happens only from the
	// exclusive owner the directory forwards requests to — CHATS
	// piggybacks the usual transfer of coherence permissions and sharers
	// cannot refuse invalidations) and when the data is no longer held.
	Forwardable bool
}

// SpecOutcome is the consumer-side result of receiving a SpecResp.
type SpecOutcome struct {
	Accept bool
	// Retry: drop the speculative data and reissue the request (e.g., a
	// power transaction must not consume).
	Retry bool
	// Cause is set instead of Accept when the consumer must abort (e.g.,
	// a PiC race detected on arrival).
	Cause AbortCause
}

// ValidationOutcome is the result of inspecting a validation response.
type ValidationOutcome uint8

const (
	// ValidationPending: value matched but the data is still speculative
	// at the producer; keep the entry and retry later.
	ValidationPending ValidationOutcome = iota
	// ValidationDone: real permissions received and value matched; the
	// entry leaves the VSB.
	ValidationDone
	// ValidationAbort: mismatch or cycle detection; the consumer aborts.
	ValidationAbort
)

// Traits are the per-system configuration knobs of Table II.
type Traits struct {
	// Retries before the fallback path (Table II).
	Retries int
	// UsesVSB: the system can consume speculative data.
	UsesVSB bool
	// VSBSize is the number of VSB entries.
	VSBSize int
	// ValidationInterval is the periodic validation timer in cycles; 0
	// validates back-to-back (LEVC-BE-Idealized).
	ValidationInterval uint64
	// UsesPower: the system runs the PowerTM dual-priority runtime.
	UsesPower bool
	// PowerAfterAborts is the number of conflict aborts before a thread
	// requests the power token (PowerTM: after the second).
	PowerAfterAborts int
	// ForwardMode gates which blocks are forwarded.
	ForwardMode ForwardMode
	// NaiveBudget is the naive design's validation counter start value
	// (16 for a 4-bit counter); 0 disables the counter.
	NaiveBudget int
}

// Policy is the conflict-resolution brain of one evaluated HTM system.
// A Policy instance is shared by all cores (it carries no per-core
// mutable state; per-core state lives in TxState).
type Policy interface {
	Name() string
	Traits() Traits

	// DecideProbe resolves a conflicting probe at the responder. local is
	// the responder's transaction. The implementation applies the PiC
	// update rules of Fig. 3 (possibly mutating local.PiC) and returns
	// the PiC to embed in a SpecResp. Callers guarantee local.InTx() and
	// that the line is in local's read signature or write set.
	DecideProbe(local *TxState, pc ProbeContext) (ProbeDecision, coherence.PiC)

	// AcceptSpec runs at the consumer when a SpecResp arrives, applying
	// the consumer-side PiC/Cons updates. The caller has already checked
	// VSB capacity.
	AcceptSpec(local *TxState, pic coherence.PiC) SpecOutcome

	// ValidationCheck inspects a validation response for one VSB entry.
	// isSpec says the response was another SpecResp; pic is the PiC it
	// carried; match is the value comparison result. On ValidationAbort
	// the cause is returned.
	ValidationCheck(local *TxState, isSpec bool, pic coherence.PiC, match bool) (ValidationOutcome, AbortCause)
}
