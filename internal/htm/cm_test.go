package htm

import (
	"testing"

	"chats/internal/mem"
	"chats/internal/sim"
)

func TestCMDecideWindow(t *testing.T) {
	cm := NewAdaptiveCM(CMConfig{Kind: CMAdaptive, Window: 4, SpecFrac: 0.5, FallbackAfter: 3}, 2, sim.NewRand(1))

	// Empty window: abort fraction 0 <= 0.5, speculate.
	if act := cm.Decide(0); act != CMSpeculate {
		t.Fatalf("empty window: got %s, want spec", act)
	}
	// One abort in a window of one: fraction 1 > 0.5, wait.
	cm.NoteAbort(0)
	if act := cm.Decide(0); act != CMWait {
		t.Fatalf("1/1 aborts: got %s, want wait", act)
	}
	// Commit resets the streak and dilutes the fraction to 1/2.
	cm.NoteCommit(0)
	cm.NoteCommit(0)
	// Window now [abort commit commit]: 1/3 <= 0.5, speculate.
	if act := cm.Decide(0); act != CMSpeculate {
		t.Fatalf("1/3 aborts: got %s, want spec", act)
	}
	// Three consecutive aborts reach FallbackAfter.
	cm.NoteAbort(0)
	cm.NoteAbort(0)
	if act := cm.Decide(0); act == CMFallback {
		t.Fatal("fallback after only 2 consecutive aborts")
	}
	cm.NoteAbort(0)
	if act := cm.Decide(0); act != CMFallback {
		t.Fatalf("3 consecutive aborts: got %s, want fallback", act)
	}
	// Core 1's state is independent.
	if act := cm.Decide(1); act != CMSpeculate {
		t.Fatalf("untouched core: got %s, want spec", act)
	}
}

func TestCMWindowSlides(t *testing.T) {
	cm := NewAdaptiveCM(CMConfig{Kind: CMAdaptive, Window: 4}, 1, sim.NewRand(1))
	// Fill the window with aborts, then push them out with commits: the
	// old outcomes must leave the fraction.
	for i := 0; i < 4; i++ {
		cm.NoteAbort(0)
	}
	if f := cm.abortFrac(0); f != 1 {
		t.Fatalf("full abort window: frac %v, want 1", f)
	}
	for i := 0; i < 4; i++ {
		cm.NoteCommit(0)
	}
	if f := cm.abortFrac(0); f != 0 {
		t.Fatalf("aborts should have slid out: frac %v, want 0", f)
	}
}

func TestCMHotLine(t *testing.T) {
	cfg := CMConfig{Kind: CMAdaptive, HotLine: 3}
	cm := NewAdaptiveCM(cfg, 1, sim.NewRand(1))
	line := mem.Addr(0x1000)
	other := mem.Addr(0x2000)

	if cm.OverrideNack(line) {
		t.Fatal("cold line nacked")
	}
	cm.NoteLineAbort(line)
	cm.NoteLineAbort(line)
	if cm.OverrideNack(line) {
		t.Fatal("line nacked below threshold")
	}
	cm.NoteLineAbort(line)
	if !cm.OverrideNack(line) {
		t.Fatal("hot line not nacked at threshold")
	}
	if cm.OverrideNack(other) {
		t.Fatal("unrelated line nacked")
	}
	if hot := cm.HotLines(); len(hot) != 1 || hot[0] != line {
		t.Fatalf("HotLines = %v, want [%v]", hot, line)
	}

	// Decay halves heat machine-wide; 3/2 = 1 drops below the threshold.
	cm.decay()
	if cm.OverrideNack(line) {
		t.Fatal("line still hot after decay")
	}
	// A second decay drops the entry entirely.
	cm.decay()
	if len(cm.heat) != 0 {
		t.Fatalf("heat table not emptied: %v", cm.heat)
	}
}

func TestCMHotLineDisabled(t *testing.T) {
	cm := NewAdaptiveCM(CMConfig{Kind: CMAdaptive}, 1, sim.NewRand(1))
	for i := 0; i < 100; i++ {
		cm.NoteLineAbort(mem.Addr(0x40))
	}
	if cm.OverrideNack(mem.Addr(0x40)) {
		t.Fatal("hotline=0 must disable the override")
	}
	if len(cm.heat) != 0 {
		t.Fatal("hotline=0 must not populate the heat table")
	}
}

func TestCMWaitDelayCap(t *testing.T) {
	cfg := CMConfig{Kind: CMAdaptive, WaitBase: 100, WaitCap: 250}
	cm := NewAdaptiveCM(cfg, 1, sim.NewRand(7))
	// Build a long consecutive-abort streak: the shifted delay must stay
	// at the cap, plus jitter in [0, WaitBase].
	for i := 0; i < 10; i++ {
		cm.NoteAbort(0)
	}
	for i := 0; i < 50; i++ {
		d := cm.WaitDelay(0)
		if d < 250 || d > 250+100 {
			t.Fatalf("capped delay %d outside [250, 350]", d)
		}
	}
	// Fresh streak: base delay, pre-shift.
	cm.NoteCommit(0)
	if d := cm.WaitDelay(0); d < 100 || d > 200 {
		t.Fatalf("base delay %d outside [100, 200]", d)
	}
}

func TestCMWaitDelayDeterministic(t *testing.T) {
	mk := func() *AdaptiveCM {
		return NewAdaptiveCM(CMConfig{Kind: CMAdaptive}, 1, sim.NewRand(42))
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			a.NoteCommit(0)
			b.NoteCommit(0)
		} else {
			a.NoteAbort(0)
			b.NoteAbort(0)
		}
		if da, db := a.WaitDelay(0), b.WaitDelay(0); da != db {
			t.Fatalf("draw %d: %d != %d", i, da, db)
		}
	}
}

func TestParseCMEdges(t *testing.T) {
	// Empty spec is the fixed manager.
	if c, err := ParseCM(""); err != nil || c.Kind != CMFixed {
		t.Fatalf("empty spec: %+v, %v", c, err)
	}
	// Whitespace is trimmed.
	if c, err := ParseCM("  adaptive  "); err != nil || c.Kind != CMAdaptive {
		t.Fatalf("padded spec: %+v, %v", c, err)
	}
	// Out-of-range values are rejected at parse time via Validate.
	for _, bad := range []string{
		"adaptive:window=-1", "adaptive:window=65", "adaptive:spec=-0.1",
		"adaptive:fallbackafter=-1", "adaptive:hotline=-1",
		"adaptive:wait=100,cap=50", "adaptive:wait", "adaptive:wait=",
	} {
		if _, err := ParseCM(bad); err == nil {
			t.Errorf("ParseCM(%q) accepted", bad)
		}
	}
	// A defaults-only adaptive spec prints canonically.
	c, err := ParseCM("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	if s := c.String(); s != "adaptive" {
		t.Fatalf("canonical adaptive = %q", s)
	}
}

func TestCMBankHeat(t *testing.T) {
	cfg := CMConfig{Kind: CMAdaptive, HotLine: 2}
	cm := NewAdaptiveCM(cfg, 1, sim.NewRand(1))
	// Lines 0x40 and 0x140 share bank 1 of 4; 0x80 sits in bank 2.
	cm.NoteLineAbort(mem.Addr(0x40))
	cm.NoteLineAbort(mem.Addr(0x40))
	cm.NoteLineAbort(mem.Addr(0x140))
	cm.NoteLineAbort(mem.Addr(0x80))
	heat, hot := cm.BankHeat(4)
	if len(heat) != 4 || len(hot) != 4 {
		t.Fatalf("lengths %d/%d", len(heat), len(hot))
	}
	if heat[1] != 3 || heat[2] != 1 || heat[0] != 0 || heat[3] != 0 {
		t.Fatalf("heat = %v", heat)
	}
	if hot[1] != 1 || hot[0]+hot[2]+hot[3] != 0 {
		t.Fatalf("hot = %v", hot)
	}
	// A single bank absorbs everything.
	heat, hot = cm.BankHeat(1)
	if heat[0] != 4 || hot[0] != 1 {
		t.Fatalf("1-bank fold: heat %v hot %v", heat, hot)
	}
}
