package htm

import (
	"testing"

	"chats/internal/mem"
)

// Re-forwarding a line already buffered must refresh the stored copy in
// place without consuming a second entry — the original copy is what
// validation compares against, and the newest forwarding carries the
// producer's current data.
func TestVSBRefreshOnDuplicate(t *testing.T) {
	v := NewVSB(2)
	if !v.Add(0x40, mem.Line{1}) || !v.Add(0x80, mem.Line{2}) {
		t.Fatal("adds failed")
	}
	if !v.Full() {
		t.Fatal("expected full")
	}
	// Duplicate add succeeds even though the buffer is full.
	if !v.Add(0x40, mem.Line{9}) {
		t.Fatal("refresh of buffered line failed on a full VSB")
	}
	if v.Len() != 2 {
		t.Fatalf("refresh changed occupancy: %d", v.Len())
	}
	if d, ok := v.Lookup(0x40); !ok || d[0] != 9 {
		t.Fatalf("refresh did not replace the copy: %v %v", d, ok)
	}
	// Offsets within the same line alias the same entry.
	if !v.Add(0x44, mem.Line{7}) {
		t.Fatal("same-line offset treated as a new entry")
	}
	if d, _ := v.Lookup(0x40); d[0] != 7 {
		t.Fatal("offset refresh missed the line entry")
	}
}

// At capacity the VSB refuses new lines (the machine then drops the
// SpecResp and retries the access non-speculatively); freeing any entry
// reopens exactly one slot.
func TestVSBCapacityAndReopen(t *testing.T) {
	v := NewVSB(4)
	for i := 0; i < 4; i++ {
		if !v.Add(mem.Addr(0x40*(i+1)), mem.Line{uint64(i)}) {
			t.Fatalf("add %d failed below capacity", i)
		}
	}
	if v.Add(0x400, mem.Line{}) {
		t.Fatal("add above capacity succeeded")
	}
	if !v.Remove(0x80) {
		t.Fatal("remove failed")
	}
	if !v.Add(0x400, mem.Line{5}) {
		t.Fatal("freed slot not reusable")
	}
	if v.Add(0x440, mem.Line{}) {
		t.Fatal("buffer should be full again")
	}
}

// The validation pointer must skip holes left by out-of-order removals
// and keep its round-robin position across them.
func TestVSBValidationPointerSkipsHoles(t *testing.T) {
	v := NewVSB(4)
	lines := []mem.Addr{0x40, 0x80, 0xC0, 0x100}
	for _, l := range lines {
		v.Add(l, mem.Line{})
	}
	// Advance the pointer past slot 0.
	if e, ok := v.NextToValidate(); !ok || e.Line != 0x40 {
		t.Fatalf("first validation target = %+v, %v", e, ok)
	}
	// Remove the next two targets; the pointer must skip to 0x100.
	v.Remove(0x80)
	v.Remove(0xC0)
	if e, ok := v.NextToValidate(); !ok || e.Line != 0x100 {
		t.Fatalf("after holes, target = %+v, %v", e, ok)
	}
	// Round robin wraps back to slot 0.
	if e, ok := v.NextToValidate(); !ok || e.Line != 0x40 {
		t.Fatalf("wraparound target = %+v, %v", e, ok)
	}
}

// Clear must reset the round-robin pointer: a transaction beginning
// after an abort validates its first buffered line first.
func TestVSBClearResetsPointer(t *testing.T) {
	v := NewVSB(2)
	v.Add(0x40, mem.Line{})
	v.Add(0x80, mem.Line{})
	v.NextToValidate() // pointer now at slot 1
	v.Clear()
	v.Add(0xC0, mem.Line{})
	v.Add(0x100, mem.Line{})
	if e, _ := v.NextToValidate(); e.Line != 0xC0 {
		t.Fatalf("pointer survived Clear: first target %v", e.Line)
	}
}

// The occupancy observer sees every transition exactly once, including
// the implicit drop on Clear, and nothing on no-op paths (refresh,
// failed add, clearing an empty buffer).
func TestVSBObserver(t *testing.T) {
	v := NewVSB(2)
	var seen []int
	v.Observer = func(n int) { seen = append(seen, n) }
	v.Add(0x40, mem.Line{})
	v.Add(0x80, mem.Line{})
	v.Add(0x40, mem.Line{1}) // refresh: no occupancy change
	v.Add(0xC0, mem.Line{})  // full: dropped
	v.Remove(0x40)
	v.Clear()
	v.Clear() // already empty: no callback
	want := []int{1, 2, 1, 0}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", seen, want)
		}
	}
}
