package htm

// Contention management: the speculate-vs-wait-vs-fallback decision a
// core makes after an abort. The fixed manager reproduces the classic
// retry loop (bounded retries with randomized exponential backoff, then
// the fallback path). The adaptive manager makes the decision online,
// per core and per hot line, from observed abort/commit statistics —
// the "transactional conflict problem" framed as online scheduling.
//
// Determinism: the adaptive manager keeps machine-global mutable state
// (per-core windows, the line heat table) that is updated from both
// engine events (commits, aborts, probes) and thread-side retry
// decisions. That is only safe on the serial engine, so an adaptive CM
// forces IntraWorkers to 1 (see machine.EffectiveIntraWorkers), the
// same discipline as tracers and fault plans. Its jitter draws come
// from a dedicated PRNG stream so enabling it never reshuffles the
// workload or fault streams.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"chats/internal/mem"
	"chats/internal/sim"
)

// CMKind selects the contention manager.
type CMKind uint8

const (
	// CMFixed is the classic manager: always wait (randomized
	// exponential backoff) after an abort, fall back after the
	// policy's retry budget. The zero value, so existing configs are
	// unchanged.
	CMFixed CMKind = iota
	// CMAdaptive decides speculate/wait/fallback online per core from
	// a sliding abort/commit window, and optionally NACKs probes on
	// lines whose recent abort heat crosses a threshold.
	CMAdaptive
)

func (k CMKind) String() string {
	switch k {
	case CMFixed:
		return "fixed"
	case CMAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("cmkind(%d)", uint8(k))
	}
}

// CMAction is the manager's verdict after an abort.
type CMAction uint8

const (
	// CMWait retries after a backoff delay.
	CMWait CMAction = iota
	// CMSpeculate retries immediately.
	CMSpeculate
	// CMFallback abandons speculation and takes the fallback path now.
	CMFallback
)

func (a CMAction) String() string {
	switch a {
	case CMWait:
		return "wait"
	case CMSpeculate:
		return "spec"
	case CMFallback:
		return "fallback"
	default:
		return fmt.Sprintf("cmaction(%d)", uint8(a))
	}
}

// CMConfig configures the contention manager. The zero value is the
// fixed manager with its historical behavior; defaults below apply
// only to the adaptive manager and are filled in at use, so a
// zero-valued field always means "default", never "zero".
type CMConfig struct {
	Kind CMKind

	// Window is the per-core sliding window of recent attempt
	// outcomes (commits and aborts) the abort rate is computed over.
	// Default 16, max 64.
	Window int
	// SpecFrac is the windowed abort fraction at or below which the
	// manager retries immediately instead of waiting. Default 0.25.
	// Set to 1 to always speculate (useful only for mis-tuning tests).
	SpecFrac float64
	// WaitBase is the base wait delay in cycles; the actual delay is
	// WaitBase << min(consecutiveAborts, 5), capped at WaitCap, plus
	// jitter in [0, WaitBase]. Default 64.
	WaitBase uint64
	// WaitCap caps the adaptive wait delay. Default 1 << 16.
	WaitCap uint64
	// FallbackAfter is the consecutive-abort count at which the
	// manager gives up speculating and takes the fallback path.
	// Default 8.
	FallbackAfter int
	// HotLine, when > 0, NACKs transactional conflict probes for
	// lines whose decayed abort count reaches the threshold, forcing
	// requesters to back off instead of killing the current owner.
	// 0 disables the per-line override.
	HotLine int
}

// Adaptive-manager defaults, applied at use so the zero Config means
// "default" for every knob.
const (
	cmDefaultWindow        = 16
	cmMaxWindow            = 64
	cmDefaultSpecFrac      = 0.25
	cmDefaultWaitBase      = 64
	cmDefaultWaitCap       = 1 << 16
	cmDefaultFallbackAfter = 8

	// cmHeatDecayEvery halves every line's heat after this many
	// conflict aborts machine-wide, so stale hot spots cool off
	// deterministically.
	cmHeatDecayEvery = 1024
)

func (c CMConfig) window() int {
	if c.Window == 0 {
		return cmDefaultWindow
	}
	return c.Window
}

func (c CMConfig) specFrac() float64 {
	if c.SpecFrac == 0 {
		return cmDefaultSpecFrac
	}
	return c.SpecFrac
}

func (c CMConfig) waitBase() uint64 {
	if c.WaitBase == 0 {
		return cmDefaultWaitBase
	}
	return c.WaitBase
}

func (c CMConfig) waitCap() uint64 {
	if c.WaitCap == 0 {
		return cmDefaultWaitCap
	}
	return c.WaitCap
}

func (c CMConfig) fallbackAfter() int {
	if c.FallbackAfter == 0 {
		return cmDefaultFallbackAfter
	}
	return c.FallbackAfter
}

// Validate checks the configuration.
func (c CMConfig) Validate() error {
	switch c.Kind {
	case CMFixed, CMAdaptive:
	default:
		return fmt.Errorf("cm: unknown kind %d", c.Kind)
	}
	if c.Window < 0 || c.Window > cmMaxWindow {
		return fmt.Errorf("cm: window %d out of range [0, %d]", c.Window, cmMaxWindow)
	}
	if c.SpecFrac < 0 || c.SpecFrac > 1 {
		return fmt.Errorf("cm: spec fraction %v out of range [0, 1]", c.SpecFrac)
	}
	if c.FallbackAfter < 0 {
		return fmt.Errorf("cm: fallbackafter %d must be >= 0", c.FallbackAfter)
	}
	if c.HotLine < 0 {
		return fmt.Errorf("cm: hotline %d must be >= 0", c.HotLine)
	}
	if c.WaitCap != 0 && c.WaitCap < c.WaitBase {
		return fmt.Errorf("cm: waitcap %d below waitbase %d", c.WaitCap, c.WaitBase)
	}
	return nil
}

// ParseCM parses a contention-manager spec string:
//
//	fixed
//	adaptive
//	adaptive:window=16,spec=0.25,wait=64,cap=65536,fallbackafter=8,hotline=0
//
// Omitted keys keep their defaults. The grammar mirrors the fault-plan
// spec strings: name, then optional comma-separated key=value pairs
// after a colon.
func ParseCM(spec string) (CMConfig, error) {
	var c CMConfig
	name, opts, _ := strings.Cut(strings.TrimSpace(spec), ":")
	switch name {
	case "fixed", "":
		c.Kind = CMFixed
		if opts != "" {
			return c, fmt.Errorf("cm: fixed takes no options, got %q", opts)
		}
		return c, nil
	case "adaptive":
		c.Kind = CMAdaptive
	default:
		return c, fmt.Errorf("cm: unknown kind %q (valid: fixed, adaptive)", name)
	}
	if opts == "" {
		return c, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("cm: option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "window":
			c.Window, err = strconv.Atoi(val)
		case "spec":
			c.SpecFrac, err = strconv.ParseFloat(val, 64)
		case "wait":
			c.WaitBase, err = strconv.ParseUint(val, 10, 64)
		case "cap":
			c.WaitCap, err = strconv.ParseUint(val, 10, 64)
		case "fallbackafter":
			c.FallbackAfter, err = strconv.Atoi(val)
		case "hotline":
			c.HotLine, err = strconv.Atoi(val)
		default:
			return c, fmt.Errorf("cm: unknown option %q (valid: window, spec, wait, cap, fallbackafter, hotline)", key)
		}
		if err != nil {
			return c, fmt.Errorf("cm: option %s: %v", key, err)
		}
	}
	return c, c.Validate()
}

// String renders the canonical spec for the configuration; parsing it
// back yields an equal CMConfig. Defaulted knobs are omitted.
func (c CMConfig) String() string {
	if c.Kind == CMFixed {
		return "fixed"
	}
	var opts []string
	if c.Window != 0 {
		opts = append(opts, fmt.Sprintf("window=%d", c.Window))
	}
	if c.SpecFrac != 0 {
		opts = append(opts, fmt.Sprintf("spec=%v", c.SpecFrac))
	}
	if c.WaitBase != 0 {
		opts = append(opts, fmt.Sprintf("wait=%d", c.WaitBase))
	}
	if c.WaitCap != 0 {
		opts = append(opts, fmt.Sprintf("cap=%d", c.WaitCap))
	}
	if c.FallbackAfter != 0 {
		opts = append(opts, fmt.Sprintf("fallbackafter=%d", c.FallbackAfter))
	}
	if c.HotLine != 0 {
		opts = append(opts, fmt.Sprintf("hotline=%d", c.HotLine))
	}
	if len(opts) == 0 {
		return "adaptive"
	}
	return "adaptive:" + strings.Join(opts, ",")
}

// cmCore is one core's sliding outcome window plus its consecutive
// abort streak.
type cmCore struct {
	outcomes uint64 // ring of outcome bits, 1 = abort
	fill     int    // outcomes recorded so far, saturates at window
	next     int    // ring write position
	consec   int    // consecutive aborts since the last commit
}

// AdaptiveCM is the online contention manager. All methods must run
// single-threaded: engine-side hooks run inside events, thread-side
// decisions run while the engine worker is blocked in that thread's
// rendezvous — both are serialized because an adaptive CM forces the
// serial engine.
type AdaptiveCM struct {
	cfg    CMConfig
	rng    *sim.Rand
	cores  []cmCore
	heat   map[mem.Addr]int
	events int // conflict aborts since the last heat decay
}

// NewAdaptiveCM builds an adaptive manager for a machine with the
// given core count. rng must be a dedicated stream (never shared with
// workload or fault draws).
func NewAdaptiveCM(cfg CMConfig, cores int, rng *sim.Rand) *AdaptiveCM {
	return &AdaptiveCM{
		cfg:   cfg,
		rng:   rng,
		cores: make([]cmCore, cores),
		heat:  make(map[mem.Addr]int),
	}
}

func (cm *AdaptiveCM) note(core int, abort bool) {
	c := &cm.cores[core]
	w := cm.cfg.window()
	bit := uint64(0)
	if abort {
		bit = 1
		c.consec++
	} else {
		c.consec = 0
	}
	c.outcomes = c.outcomes&^(1<<uint(c.next)) | bit<<uint(c.next)
	c.next = (c.next + 1) % w
	if c.fill < w {
		c.fill++
	}
}

// NoteCommit records a committed transaction on core.
func (cm *AdaptiveCM) NoteCommit(core int) { cm.note(core, false) }

// NoteAbort records an aborted transaction on core.
func (cm *AdaptiveCM) NoteAbort(core int) { cm.note(core, true) }

// NoteLineAbort records a conflict abort attributed to line, heating
// it. Heat decays by halving machine-wide every cmHeatDecayEvery
// events so stale hot spots cool off.
func (cm *AdaptiveCM) NoteLineAbort(line mem.Addr) {
	if cm.cfg.HotLine == 0 {
		return
	}
	cm.heat[line]++
	cm.events++
	if cm.events >= cmHeatDecayEvery {
		cm.events = 0
		cm.decay()
	}
}

// decay halves every line's heat, dropping cooled lines. Iteration
// order over the map does not matter: halving is order-independent,
// and deletions only remove zero entries.
func (cm *AdaptiveCM) decay() {
	for line, h := range cm.heat {
		h /= 2
		if h == 0 {
			delete(cm.heat, line)
		} else {
			cm.heat[line] = h
		}
	}
}

// OverrideNack reports whether a transactional conflict probe for line
// should be NACKed instead of consulting the policy, because the line
// is currently hot.
func (cm *AdaptiveCM) OverrideNack(line mem.Addr) bool {
	if cm.cfg.HotLine == 0 {
		return false
	}
	return cm.heat[line] >= cm.cfg.HotLine
}

// abortFrac returns the windowed abort fraction for core; 0 while the
// window is empty.
func (cm *AdaptiveCM) abortFrac(core int) float64 {
	c := &cm.cores[core]
	if c.fill == 0 {
		return 0
	}
	aborts := 0
	for i := 0; i < c.fill; i++ {
		if c.outcomes&(1<<uint(i)) != 0 {
			aborts++
		}
	}
	return float64(aborts) / float64(c.fill)
}

// Decide returns the retry verdict for core after an abort.
func (cm *AdaptiveCM) Decide(core int) CMAction {
	c := &cm.cores[core]
	if c.consec >= cm.cfg.fallbackAfter() {
		return CMFallback
	}
	if cm.abortFrac(core) <= cm.cfg.specFrac() {
		return CMSpeculate
	}
	return CMWait
}

// WaitDelay returns the randomized wait delay for core: exponential in
// the consecutive abort streak, capped, with jitter from the manager's
// dedicated stream. Exactly one PRNG draw per call.
func (cm *AdaptiveCM) WaitDelay(core int) uint64 {
	shift := cm.cores[core].consec
	if shift > 5 {
		shift = 5
	}
	base := cm.cfg.waitBase()
	d := base << uint(shift)
	if cap := cm.cfg.waitCap(); d > cap {
		d = cap
	}
	return d + cm.rng.Uint64n(base+1)
}

// HotLines returns the currently-hot lines in address order, for
// diagnostics.
func (cm *AdaptiveCM) HotLines() []mem.Addr {
	var lines []mem.Addr
	for line := range cm.heat {
		if cm.heat[line] >= cm.cfg.HotLine {
			lines = append(lines, line)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// BankHeat folds the per-line abort heat onto an address-interleaved
// directory of the given bank count (the same line-granular hash the
// sharded directory uses): heat[b] sums the recent abort heat of bank
// b's lines, hot[b] counts its currently-hot lines. A skewed profile
// means the contention storm sits on few banks, so extra banks would
// buy little parallel coverage.
func (cm *AdaptiveCM) BankHeat(banks int) (heat []int, hot []int) {
	heat = make([]int, banks)
	hot = make([]int, banks)
	for line, h := range cm.heat {
		b := mem.LineShard(line, banks)
		heat[b] += h
		if h >= cm.cfg.HotLine {
			hot[b]++
		}
	}
	return heat, hot
}
