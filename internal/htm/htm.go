// Package htm models the per-core best-effort hardware transactional
// memory state that all evaluated systems share (Section VI-B baseline):
// a perfect read signature, a write set held as SM lines in L1, abort
// causes, retry bookkeeping — plus the CHATS hardware additions from
// Fig. 2: the Position-in-Chain register, the Cons bit and the Validation
// State Buffer. Which of those structures a given system actually uses is
// decided by the conflict-resolution policy in package core.
package htm

import (
	"fmt"

	"chats/internal/coherence"
	"chats/internal/mem"
)

// Status is the lifecycle state of a core's current transaction.
type Status uint8

const (
	// Idle: no transaction running.
	Idle Status = iota
	// Active: speculative execution in progress.
	Active
	// Committing: waiting for the VSB to drain before commit.
	Committing
	// Aborted: the transaction was killed; the thread has not yet
	// unwound to its retry point.
	Aborted
	// Fallback: executing the software fallback path (global lock held);
	// accesses are non-speculative.
	Fallback
)

func (s Status) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Committing:
		return "committing"
	case Aborted:
		return "aborted"
	case Fallback:
		return "fallback"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// AbortCause classifies why a transaction rolled back (Fig. 5 splits
// aborts by these reasons).
type AbortCause uint8

const (
	CauseNone AbortCause = iota
	// CauseConflict: requester-wins resolution of a conflicting probe.
	CauseConflict
	// CauseCapacity: write-set overflow in L1, a spec-received line could
	// not be accommodated, or the VSB retry budget ran out.
	CauseCapacity
	// CauseValidation: value-based validation found a mismatch (producer
	// overwrote, aborted, or a third party modified the line).
	CauseValidation
	// CauseCycle: a (potential) cyclic dependency was broken — PiC refusal
	// at validation time, or the naive design's validation counter hitting
	// zero.
	CauseCycle
	// CauseStall: a nack-retry budget was exhausted (requester-stalls
	// escapes a potential deadlock).
	CauseStall
	// CauseLock: the fallback lock was acquired by another thread,
	// invalidating the eager lock subscription.
	CauseLock
	// CauseSpurious: an injected best-effort abort (modelling capacity
	// overflow from non-transactional cache pressure, interrupts, TLB
	// shootdowns — events real best-effort HTM suffers but the Table I
	// machine otherwise never produces). Only the fault injector raises it.
	CauseSpurious
	numCauses
)

// NumCauses is the number of distinct abort causes.
const NumCauses = int(numCauses)

func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseValidation:
		return "validation"
	case CauseCycle:
		return "cycle"
	case CauseStall:
		return "stall"
	case CauseLock:
		return "lock"
	case CauseSpurious:
		return "spurious"
	}
	return fmt.Sprintf("AbortCause(%d)", uint8(c))
}

// TxState is the transactional hardware state of one core.
type TxState struct {
	Status  Status
	Epoch   uint64 // bumped on every begin/abort; stale responses check it
	Attempt int    // 1-based attempt number of the current atomic block

	// Read signature: perfect (no false positives), tracks line
	// addresses, survives cache evictions (Section VI-B).
	ReadSig map[mem.Addr]struct{}
	// WriteSet tracks line addresses speculatively written (the lines
	// themselves live in L1 with the SM bit; this mirror makes conflict
	// checks O(1) and survives nothing — it is cleared with the tx).
	WriteSet map[mem.Addr]struct{}

	// CHATS hardware (Fig. 2).
	PiC  coherence.PiC
	Cons bool
	VSB  *VSB

	// Power is set while this transaction holds the PowerTM token.
	Power bool
	// TS is the transaction timestamp for LEVC's idealized scheme.
	TS uint64

	// NaiveCounter is the naive requester-speculates design's 4-bit
	// validation counter (Section VI-B): decremented on each unsuccessful
	// validation attempt, reset on success, abort at zero.
	NaiveCounter int

	// ForwardedTo counts consumers this transaction has forwarded
	// speculative data to (LEVC limits this to one).
	ForwardedTo int

	// Per-transaction flags for Fig. 6.
	Conflicted bool // was on either side of a conflict
	Forwarded  bool // acted as a producer (sent at least one SpecResp)
	Consumed   bool // acted as a consumer (received at least one SpecResp)

	Cause AbortCause // cause of the pending abort, if Status == Aborted
}

// NewTxState returns idle transactional state with a VSB of the given
// capacity.
func NewTxState(vsbSize int) *TxState {
	return &TxState{
		PiC: coherence.PiCNone,
		VSB: NewVSB(vsbSize),
	}
}

// InTx reports whether speculative work is in flight (active or waiting
// to commit).
func (t *TxState) InTx() bool { return t.Status == Active || t.Status == Committing }

// Begin resets the state for a new attempt. The signature and write-set
// maps are reused across attempts (cleared, not reallocated): a core
// begins a transaction every few hundred simulated cycles, and the two
// map allocations per attempt dominated the steady-state heap churn.
func (t *TxState) Begin(attempt int, naiveBudget int) {
	t.Status = Active
	t.Epoch++
	t.Attempt = attempt
	if t.ReadSig == nil {
		t.ReadSig = make(map[mem.Addr]struct{})
	} else {
		clear(t.ReadSig)
	}
	if t.WriteSet == nil {
		t.WriteSet = make(map[mem.Addr]struct{})
	} else {
		clear(t.WriteSet)
	}
	t.PiC = coherence.PiCNone
	t.Cons = false
	t.VSB.Clear()
	t.NaiveCounter = naiveBudget
	t.ForwardedTo = 0
	t.Conflicted = false
	t.Forwarded = false
	t.Consumed = false
	t.Cause = CauseNone
}

// MarkAborted transitions to Aborted with the given cause, clearing the
// speculative structures. The caller handles L1 gang invalidation.
func (t *TxState) MarkAborted(cause AbortCause) {
	if !t.InTx() {
		panic("htm: abort outside transaction: " + t.Status.String())
	}
	t.Status = Aborted
	t.Epoch++
	t.Cause = cause
	clear(t.ReadSig)
	clear(t.WriteSet)
	t.PiC = coherence.PiCNone
	t.Cons = false
	t.VSB.Clear()
}

// Finish transitions to Idle after a commit or after the abort has been
// delivered to the thread.
func (t *TxState) Finish() {
	t.Status = Idle
	t.Epoch++
	clear(t.ReadSig)
	clear(t.WriteSet)
	t.PiC = coherence.PiCNone
	t.Cons = false
	t.Power = false
	t.VSB.Clear()
}

// Reads reports whether the transaction read the line (signature hit).
func (t *TxState) Reads(line mem.Addr) bool {
	if t.ReadSig == nil {
		return false
	}
	_, ok := t.ReadSig[line.Line()]
	return ok
}

// Writes reports whether the line is in the write set.
func (t *TxState) Writes(line mem.Addr) bool {
	if t.WriteSet == nil {
		return false
	}
	_, ok := t.WriteSet[line.Line()]
	return ok
}

// AddRead records a line in the read signature.
func (t *TxState) AddRead(line mem.Addr) { t.ReadSig[line.Line()] = struct{}{} }

// AddWrite records a line in the write set.
func (t *TxState) AddWrite(line mem.Addr) { t.WriteSet[line.Line()] = struct{}{} }
