package htm

import "chats/internal/mem"

// VSBEntry holds the unmodified copy of one speculatively received line,
// kept for value-based validation (Fig. 2: valid bit, block address,
// data block).
type VSBEntry struct {
	Valid bool
	Line  mem.Addr
	Data  mem.Line
}

// VSB is the Validation State Buffer (Section IV-B): a small buffer with
// an allocation pointer and a round-robin validation pointer, holding the
// original copies of speculatively received blocks until each has been
// validated with real coherence permissions.
type VSB struct {
	entries  []VSBEntry
	validate int // next entry the periodic validation process will try
	count    int

	// Observer, when non-nil, is invoked with the new occupancy whenever
	// the number of valid entries changes — the telemetry layer samples
	// VSB pressure through it. The nil path is a single pointer check.
	Observer func(occupancy int)
}

// NewVSB builds a VSB with the given number of entries (Table II: 4).
func NewVSB(size int) *VSB {
	if size <= 0 {
		panic("htm: VSB size must be positive")
	}
	return &VSB{entries: make([]VSBEntry, size)}
}

// Size returns the capacity.
func (v *VSB) Size() int { return len(v.entries) }

// Len returns the number of valid entries.
func (v *VSB) Len() int { return v.count }

// Empty reports whether all speculative data has been validated.
func (v *VSB) Empty() bool { return v.count == 0 }

// Full reports whether another speculative line can be accepted.
func (v *VSB) Full() bool { return v.count == len(v.entries) }

// Add stores the original copy of a speculatively received line. It
// reports false if the buffer is full. Adding a line already present
// refreshes its copy (a re-forwarding after the first was dropped).
func (v *VSB) Add(line mem.Addr, data mem.Line) bool {
	line = line.Line()
	for i := range v.entries {
		if v.entries[i].Valid && v.entries[i].Line == line {
			v.entries[i].Data = data
			return true
		}
	}
	for i := range v.entries {
		if !v.entries[i].Valid {
			v.entries[i] = VSBEntry{Valid: true, Line: line, Data: data}
			v.count++
			if v.Observer != nil {
				v.Observer(v.count)
			}
			return true
		}
	}
	return false
}

// Lookup returns the stored copy for line.
func (v *VSB) Lookup(line mem.Addr) (mem.Line, bool) {
	line = line.Line()
	for i := range v.entries {
		if v.entries[i].Valid && v.entries[i].Line == line {
			return v.entries[i].Data, true
		}
	}
	return mem.Line{}, false
}

// Remove discards the entry for line after a successful validation.
func (v *VSB) Remove(line mem.Addr) bool {
	line = line.Line()
	for i := range v.entries {
		if v.entries[i].Valid && v.entries[i].Line == line {
			v.entries[i] = VSBEntry{}
			v.count--
			if v.Observer != nil {
				v.Observer(v.count)
			}
			return true
		}
	}
	return false
}

// NextToValidate returns the entry the validation pointer designates and
// advances the pointer (round robin over valid entries). ok is false when
// the buffer is empty.
func (v *VSB) NextToValidate() (VSBEntry, bool) {
	if v.count == 0 {
		return VSBEntry{}, false
	}
	n := len(v.entries)
	for i := 0; i < n; i++ {
		idx := (v.validate + i) % n
		if v.entries[idx].Valid {
			v.validate = (idx + 1) % n
			return v.entries[idx], true
		}
	}
	panic("htm: VSB count/entries inconsistent")
}

// Clear discards everything (transaction abort or commit).
func (v *VSB) Clear() {
	for i := range v.entries {
		v.entries[i] = VSBEntry{}
	}
	changed := v.count != 0
	v.count = 0
	v.validate = 0
	if changed && v.Observer != nil {
		v.Observer(0)
	}
}

// Lines returns the addresses of the valid entries in slot order
// (diagnostics and invariant checking; allocates only when non-empty).
func (v *VSB) Lines() []mem.Addr {
	if v.count == 0 {
		return nil
	}
	out := make([]mem.Addr, 0, v.count)
	for i := range v.entries {
		if v.entries[i].Valid {
			out = append(out, v.entries[i].Line)
		}
	}
	return out
}
