package htm

import (
	"testing"
	"testing/quick"

	"chats/internal/coherence"
	"chats/internal/mem"
)

func TestTxLifecycle(t *testing.T) {
	tx := NewTxState(4)
	if tx.InTx() || tx.Status != Idle {
		t.Fatal("fresh state not idle")
	}
	tx.Begin(1, 16)
	if !tx.InTx() || tx.Attempt != 1 || tx.PiC != coherence.PiCNone {
		t.Fatalf("post-begin: %+v", tx)
	}
	e0 := tx.Epoch
	tx.AddRead(0x40)
	tx.AddWrite(0x80)
	if !tx.Reads(0x44) || tx.Reads(0x80) || !tx.Writes(0x9f) || tx.Writes(0x40) {
		t.Fatal("set membership wrong")
	}
	tx.MarkAborted(CauseConflict)
	if tx.Status != Aborted || tx.Cause != CauseConflict || tx.Epoch == e0 {
		t.Fatalf("post-abort: %+v", tx)
	}
	if tx.Reads(0x40) || tx.Writes(0x80) {
		t.Fatal("sets survived abort")
	}
	tx.Finish()
	if tx.Status != Idle {
		t.Fatal("not idle after finish")
	}
}

func TestAbortOutsideTxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTxState(4).MarkAborted(CauseConflict)
}

func TestBeginClearsChatsState(t *testing.T) {
	tx := NewTxState(4)
	tx.Begin(1, 16)
	tx.PiC = 10
	tx.Cons = true
	tx.VSB.Add(0x40, mem.Line{1})
	tx.Forwarded = true
	tx.MarkAborted(CauseCycle)
	tx.Finish()
	tx.Begin(2, 16)
	if tx.PiC != coherence.PiCNone || tx.Cons || !tx.VSB.Empty() || tx.Forwarded {
		t.Fatalf("state leaked across attempts: %+v", tx)
	}
}

func TestVSBAddRemove(t *testing.T) {
	v := NewVSB(4)
	if !v.Empty() || v.Full() || v.Size() != 4 {
		t.Fatal("fresh VSB wrong")
	}
	for i := 0; i < 4; i++ {
		if !v.Add(mem.Addr(i*64), mem.Line{uint64(i)}) {
			t.Fatalf("add %d failed", i)
		}
	}
	if !v.Full() || v.Len() != 4 {
		t.Fatal("should be full")
	}
	if v.Add(0x1000, mem.Line{}) {
		t.Fatal("add to full VSB succeeded")
	}
	// Re-adding an existing line refreshes rather than consuming a slot.
	if !v.Add(0x40, mem.Line{99}) {
		t.Fatal("refresh failed")
	}
	if d, ok := v.Lookup(0x40); !ok || d[0] != 99 {
		t.Fatal("refresh not applied")
	}
	if !v.Remove(0x40) || v.Remove(0x40) {
		t.Fatal("remove semantics wrong")
	}
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	if _, ok := v.Lookup(0x40); ok {
		t.Fatal("removed entry still found")
	}
}

func TestVSBLookupNormalizesToLine(t *testing.T) {
	v := NewVSB(2)
	v.Add(0x47, mem.Line{5}) // mid-line address
	if d, ok := v.Lookup(0x40); !ok || d[0] != 5 {
		t.Fatal("line normalization broken")
	}
}

func TestVSBRoundRobinValidation(t *testing.T) {
	v := NewVSB(4)
	v.Add(0x00, mem.Line{})
	v.Add(0x40, mem.Line{})
	v.Add(0x80, mem.Line{})
	var order []mem.Addr
	for i := 0; i < 6; i++ {
		e, ok := v.NextToValidate()
		if !ok {
			t.Fatal("unexpected empty")
		}
		order = append(order, e.Line)
	}
	want := []mem.Addr{0x00, 0x40, 0x80, 0x00, 0x40, 0x80}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	// Removing the middle entry keeps rotation sane.
	v.Remove(0x40)
	seen := map[mem.Addr]int{}
	for i := 0; i < 4; i++ {
		e, _ := v.NextToValidate()
		seen[e.Line]++
	}
	if seen[0x40] != 0 || seen[0x00] != 2 || seen[0x80] != 2 {
		t.Fatalf("post-remove rotation = %v", seen)
	}
}

func TestVSBNextToValidateEmpty(t *testing.T) {
	v := NewVSB(2)
	if _, ok := v.NextToValidate(); ok {
		t.Fatal("empty VSB returned an entry")
	}
	v.Add(0x40, mem.Line{})
	v.Clear()
	if _, ok := v.NextToValidate(); ok {
		t.Fatal("cleared VSB returned an entry")
	}
}

// Property: VSB count always equals the number of valid entries, and a
// full buffer of distinct lines rejects new distinct lines.
func TestVSBCountInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		v := NewVSB(4)
		model := map[mem.Addr]bool{}
		for _, op := range ops {
			line := mem.Addr(op%8) * 64
			if op&0x80 == 0 {
				if v.Add(line, mem.Line{}) {
					model[line] = true
				} else if !model[line] && len(model) != 4 {
					return false // rejected while not full
				}
			} else {
				if v.Remove(line) != model[line] {
					return false
				}
				delete(model, line)
			}
			if v.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	for s := Idle; s <= Fallback; s++ {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
	for c := CauseNone; int(c) < NumCauses; c++ {
		if c.String() == "" {
			t.Fatal("empty cause string")
		}
	}
	if DecideAbort.String() != "abort" || DecideSpec.String() != "spec" || DecideNack.String() != "nack" {
		t.Fatal("decision strings")
	}
	if ForwardRW.String() != "R/W" || ForwardW.String() != "W" || ForwardRrestrictW.String() != "Rrestrict/W" {
		t.Fatal("forward mode strings")
	}
}
