package difftest_test

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/difftest"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/randprog"
	"chats/internal/runstore"
)

// The full differential oracle stack (invariant checker, accounting,
// commit-order replay, commutative cross-check) over every fallback
// path and the adaptive contention manager: the new code must not
// introduce a single serializability or accounting violation the seed
// configuration would not have.

// fallbackKnobs enumerates the knob combinations the oracle sweeps: the
// three fallback paths, the backoff variants and the adaptive manager.
// Retries is forced down so contended blocks actually reach the
// fallback path under the tiny fuzz programs.
var fallbackKnobs = []struct {
	name     string
	fallback string
	cm       string
	backoff  string
}{
	{"lock", "lock", "", ""},
	{"stm", "stm", "", ""},
	{"stm-small-table", "stm:locks=16", "", ""},
	{"elide", "elide:budget=2", "", ""},
	{"lock-linear", "lock", "", "linear:cap=4096"},
	{"stm-jitter", "stm", "", "jitter"},
	{"lock-adaptive", "lock", "adaptive", ""},
	{"stm-adaptive-hot", "stm", "adaptive:window=8,spec=0.5,hotline=4", ""},
	{"elide-adaptive", "elide", "adaptive:fallbackafter=3", ""},
}

func knobConfig(t *testing.T, fallback, cm, backoff string) machine.Config {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.CycleLimit = 200_000_000
	var err error
	if fallback != "" {
		if cfg.Fallback, err = machine.ParseFallback(fallback); err != nil {
			t.Fatal(err)
		}
	}
	if cm != "" {
		if cfg.CM, err = htm.ParseCM(cm); err != nil {
			t.Fatal(err)
		}
	}
	if backoff != "" {
		if cfg.Backoff, err = machine.ParseBackoff(backoff); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

// lowRetryWrap forces every system's retry budget down so the tiny fuzz
// programs exercise the fallback path, not just hardware commits.
func lowRetryWrap(k core.Kind, p htm.Policy) htm.Policy {
	t := p.Traits()
	t.Retries = 1
	np, err := core.NewWith(k, t)
	if err != nil {
		panic(err)
	}
	return np
}

// TestFallbackPathsPassOracle fuzzes a small batch per knob combination
// through the full oracle stack on all five systems.
func TestFallbackPathsPassOracle(t *testing.T) {
	for _, k := range fallbackKnobs {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			cfg := knobConfig(t, k.fallback, k.cm, k.backoff)
			g := randprog.Preset(0)
			g.AddFrac = 0.5
			rep := difftest.Fuzz(difftest.FuzzOptions{
				Start: 7000,
				N:     6,
				Gen:   g,
				Check: difftest.Options{
					Machine: &cfg,
					Wrap:    lowRetryWrap,
				},
				Jobs: 2,
			})
			for _, f := range rep.Failures {
				t.Errorf("seed %d: %s", f.Seed, f.Err)
			}
		})
	}
}

// TestFallbackSTMTakesSTMPath asserts the STM oracle batch above is not
// vacuous: with the retry budget forced down, at least one program must
// commit through the optimistic STM protocol.
func TestFallbackSTMTakesSTMPath(t *testing.T) {
	cfg := knobConfig(t, "stm", "", "")
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	var stmCommits, fallbacks uint64
	rep := difftest.Fuzz(difftest.FuzzOptions{
		Start: 7000,
		N:     6,
		Gen:   g,
		Check: difftest.Options{
			Machine: &cfg,
			Wrap:    lowRetryWrap,
			Record: func(r runstore.Record) {
				stmCommits += r.Counters["fallback_stm_commits"]
				fallbacks += r.Counters["fallbacks"]
			},
		},
		Jobs: 1,
	})
	if !rep.Ok() {
		t.Fatalf("oracle failures: %v", rep.Failures)
	}
	if fallbacks == 0 {
		t.Fatal("batch never reached the fallback path; the STM oracle sweep is vacuous")
	}
	if stmCommits == 0 {
		t.Fatal("batch never committed through the STM protocol")
	}
}

// TestFallbackIntraEquivalence: serial-vs-parallel engine equivalence
// for the new knobs — the same program must produce bit-identical stats
// and memory at IntraWorkers {1, 2, 8}. The adaptive manager is absent
// here on purpose: it forces serial (pinned by a machine test).
func TestFallbackIntraEquivalence(t *testing.T) {
	knobs := []struct {
		name     string
		fallback string
		backoff  string
	}{
		{"stm", "stm", ""},
		{"elide", "elide:budget=2", ""},
		{"lock-linear", "lock", "linear:cap=4096"},
		{"stm-jitter", "stm:locks=32", "jitter"},
	}
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	for i, k := range knobs {
		seed := uint64(8100 + i)
		p := randprog.Generate(seed, g)
		kind := intraSystems()[i%len(intraSystems())]
		k := k
		t.Run(fmt.Sprintf("%s/seed%d/%s", k.name, seed, kind), func(t *testing.T) {
			t.Parallel()
			cfg := knobConfig(t, k.fallback, "", k.backoff)
			ref, refImg := runWorkersCfg(t, p, kind, cfg, 1)
			for _, workers := range []int{2, 8} {
				st, img := runWorkersCfg(t, p, kind, cfg, workers)
				if st != ref {
					t.Errorf("IntraWorkers=%d stats diverged from serial:\nserial:   %+v\nparallel: %+v",
						workers, ref, st)
				}
				for i := range refImg {
					if img[i] != refImg[i] {
						t.Errorf("IntraWorkers=%d memory slot %d = %d, serial run has %d",
							workers, i, img[i], refImg[i])
					}
				}
			}
		})
	}
}

// runWorkersCfg is runWorkers with an explicit machine config (knobs
// preserved, cores and worker count overridden per run).
func runWorkersCfg(t *testing.T, p *randprog.Program, kind core.Kind, base machine.Config, workers int) (machine.RunStats, []uint64) {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Cores = p.Cores
	cfg.IntraWorkers = workers
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	w := randprog.NewWorkload(p)
	st, err := m.Run(w)
	if err != nil {
		t.Fatalf("IntraWorkers=%d: %v", workers, err)
	}
	if got := m.IntraWorkers(); got != workers {
		t.Fatalf("run used %d engine workers, configured %d", got, workers)
	}
	mem := m.World().Mem
	img := make([]uint64, 0, p.Pool+p.Cores*p.Priv)
	for i := 0; i < p.Pool; i++ {
		img = append(img, mem.ReadWord(w.SlotAddr(i)))
	}
	for c := 0; c < p.Cores; c++ {
		for k := 0; k < p.Priv; k++ {
			img = append(img, mem.ReadWord(w.PrivAddr(c, k)))
		}
	}
	return st, img
}

// TestRandomKnobFuzz mirrors the CI step: a batch of programs each
// checked under a seed-derived random (fallback, cm, backoff) triple at
// IntraWorkers 1 and 4 — the knob space itself is fuzzed, and parallel
// runs of knobbed configs must agree with serial ones (the oracle
// re-runs and compares internally via the replay; here the point is
// that no combination crashes or breaks an oracle).
func TestRandomKnobFuzz(t *testing.T) {
	fallbacks := []string{"lock", "stm", "stm:locks=32", "elide", "elide:budget=1,refill=2"}
	cms := []string{"", "adaptive", "adaptive:window=4,spec=0.75", "adaptive:hotline=3"}
	backoffs := []string{"", "linear", "jitter", "exp:cap=1024"}
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	const n = 10
	for i := 0; i < n; i++ {
		seed := uint64(9200 + i)
		// Seed-derived knob pick: reproducible from the test log alone.
		fb := fallbacks[int(seed)%len(fallbacks)]
		cm := cms[int(seed/7)%len(cms)]
		bo := backoffs[int(seed/3)%len(backoffs)]
		for _, intra := range []int{1, 4} {
			i, intra := i, intra
			t.Run(fmt.Sprintf("seed%d/fb=%s,cm=%s,bo=%s/intra%d", seed, fb, cm, bo, intra), func(t *testing.T) {
				t.Parallel()
				cfg := knobConfig(t, fb, cm, bo)
				cfg.IntraWorkers = intra
				p := randprog.Generate(uint64(9200+i), g)
				if err := difftest.Check(p, difftest.Options{Machine: &cfg, Wrap: lowRetryWrap}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}
