package difftest_test

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/randprog"
)

// Bank-count equivalence over random programs: the address-sharded
// directory must be a pure decomposition of the monolithic one, so
// every committed corpus entry plus a fresh generated batch runs at
// DirBanks ∈ {1, 4, 16} × IntraWorkers ∈ {1, 8}, and every combination
// must reproduce the single-bank serial run bit-for-bit — the full
// comparable RunStats and the final shared + private memory image.
// This is the oracle for the sharding: the banks only partition state
// by address, and the staged-merge (cycle, seq) discipline keeps
// cross-bank flows in the same order the monolithic directory saw.

// runBanked executes p on one system with the given bank and engine
// worker counts, returning the stats plus the flushed memory image.
func runBanked(t *testing.T, p *randprog.Program, kind core.Kind, banks, workers int) (machine.RunStats, []uint64) {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.CycleLimit = 200_000_000
	cfg.Cores = p.Cores
	cfg.DirBanks = banks
	cfg.IntraWorkers = workers
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.DirBanks(); got != banks && !(banks == 0 && got == 1) {
		t.Fatalf("machine built %d banks, configured %d", got, banks)
	}
	w := randprog.NewWorkload(p)
	st, err := m.Run(w)
	if err != nil {
		t.Fatalf("DirBanks=%d IntraWorkers=%d: %v", banks, workers, err)
	}
	mem := m.World().Mem
	img := make([]uint64, 0, p.Pool+p.Cores*p.Priv)
	for i := 0; i < p.Pool; i++ {
		img = append(img, mem.ReadWord(w.SlotAddr(i)))
	}
	for c := 0; c < p.Cores; c++ {
		for k := 0; k < p.Priv; k++ {
			img = append(img, mem.ReadWord(w.PrivAddr(c, k)))
		}
	}
	return st, img
}

// checkBanks runs p at every bank × worker combination and fails on the
// first divergence from the single-bank serial run.
func checkBanks(t *testing.T, p *randprog.Program, kind core.Kind) {
	t.Helper()
	ref, refImg := runBanked(t, p, kind, 1, 1)
	for _, banks := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			if banks == 1 && workers == 1 {
				continue // the reference itself
			}
			st, img := runBanked(t, p, kind, banks, workers)
			if st != ref {
				t.Errorf("DirBanks=%d IntraWorkers=%d stats diverged from single-bank serial:\nref:    %+v\nbanked: %+v",
					banks, workers, ref, st)
			}
			for i := range refImg {
				if img[i] != refImg[i] {
					t.Errorf("DirBanks=%d IntraWorkers=%d memory slot %d = %d, single-bank serial has %d",
						banks, workers, i, img[i], refImg[i])
				}
			}
		}
	}
}

// TestBankCorpusEquivalence replays every committed corpus program on
// the parallel-capable systems at each bank × worker combination.
func TestBankCorpusEquivalence(t *testing.T) {
	for name, p := range loadCorpus(t) {
		for _, kind := range intraSystems() {
			p, kind := p, kind
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				checkBanks(t, p, kind)
			})
		}
	}
}

// TestBankFuzzEquivalence does the same over a fresh generated batch —
// fixed seeds distinct from the intra-equivalence batch, with blind
// stores mixed in for order-sensitive coverage.
func TestBankFuzzEquivalence(t *testing.T) {
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	kinds := intraSystems()
	const n = 12
	for i := 0; i < n; i++ {
		seed := uint64(7000 + i)
		p := randprog.Generate(seed, g)
		kind := kinds[i%len(kinds)]
		t.Run(fmt.Sprintf("seed%d/%s", seed, kind), func(t *testing.T) {
			t.Parallel()
			checkBanks(t, p, kind)
		})
	}
}

// TestBankSerialSystems covers the power-token systems (forced serial
// on their own) at the bank sweep: sharding must be invisible to them
// too, even though their directory events never run in a bank domain.
func TestBankSerialSystems(t *testing.T) {
	g := randprog.Preset(0)
	for i, kind := range []core.Kind{core.KindPower, core.KindPCHATS} {
		seed := uint64(7100 + i)
		p := randprog.Generate(seed, g)
		t.Run(fmt.Sprintf("seed%d/%s", seed, kind), func(t *testing.T) {
			t.Parallel()
			ref, refImg := runBanked(t, p, kind, 1, 1)
			for _, banks := range []int{4, 16} {
				st, img := runBanked(t, p, kind, banks, 1)
				if st != ref {
					t.Errorf("DirBanks=%d stats diverged:\nref:    %+v\nbanked: %+v", banks, ref, st)
				}
				for j := range refImg {
					if img[j] != refImg[j] {
						t.Errorf("DirBanks=%d memory slot %d = %d, want %d", banks, j, img[j], refImg[j])
					}
				}
			}
		})
	}
}
