package difftest

import (
	"fmt"
	"time"

	"chats/internal/randprog"
	"chats/internal/runstore"
	"chats/internal/sweep"
)

// FuzzOptions configures a fuzzing campaign over a seed range.
type FuzzOptions struct {
	// Start is the first generator seed; N the number of programs.
	Start uint64
	N     int
	// Gen is the generator configuration for every program.
	Gen randprog.GenConfig
	// Check configures the per-program differential check.
	Check Options
	// Jobs bounds the programs checked in parallel (<= 0: GOMAXPROCS).
	// Results are bit-identical at any Jobs value.
	Jobs int
	// Minimize shrinks each failing program to a minimal reproducer.
	Minimize bool
	// MinimizeBudget caps candidate evaluations per reduction (0: 500).
	MinimizeBudget int
	// Budget, when non-zero, stops scheduling new seeds once the wall
	// clock exceeds it (already-started seeds finish). The set of seeds
	// actually run then depends on host speed, so fixed-N campaigns are
	// the reproducible mode; Report.Skipped says how many were cut.
	Budget time.Duration
	// Record, when non-nil, receives one runstore.Record per system run
	// of every checked program, with Record.Seed rewritten to the
	// program's generator seed (the campaign's axis; the fixed machine
	// seed is Check.Seed). Minimization re-runs are not recorded. Must
	// be safe for concurrent use at Jobs > 1.
	Record func(runstore.Record)
}

// Failure describes one program the oracle rejected.
type Failure struct {
	Seed    uint64 `json:"seed"`
	Spec    string `json:"spec"`
	Err     string `json:"err"`
	MinSpec string `json:"min_spec,omitempty"` // minimized reproducer
	MinOps  int    `json:"min_ops,omitempty"`
	MinErr  string `json:"min_err,omitempty"` // oracle error of the reproducer
}

// Report is the outcome of a campaign, in seed order.
type Report struct {
	Start    uint64    `json:"start"`
	Programs int       `json:"programs"`
	Ran      int       `json:"ran"`
	Skipped  int       `json:"skipped"` // cut by Budget
	Failures []Failure `json:"failures,omitempty"`
}

// Ok reports a fully green campaign.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Summary is a one-line human rendering.
func (r *Report) Summary() string {
	s := fmt.Sprintf("fuzz: %d/%d programs checked, %d failure(s)", r.Ran, r.Programs, len(r.Failures))
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped by budget", r.Skipped)
	}
	return s
}

// Fuzz generates and differentially checks N programs. Every program
// is checked on every configured system even after a failure (the
// campaign reports all failures, not the first), and the report is
// assembled in seed order so output is deterministic at any Jobs.
func Fuzz(o FuzzOptions) *Report {
	if o.N <= 0 {
		o.N = 1
	}
	rep := &Report{Start: o.Start, Programs: o.N}
	var deadline time.Time
	if o.Budget > 0 {
		deadline = time.Now().Add(o.Budget)
	}
	type result struct {
		ran  bool
		fail *Failure
	}
	results := make([]result, o.N)
	sweep.MapAll(o.Jobs, o.N, nil, func(i int) error {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil // cut by budget; ran stays false
		}
		seed := o.Start + uint64(i)
		p := randprog.Generate(seed, o.Gen)
		results[i].ran = true
		check := o.Check
		if o.Record != nil {
			check.Record = func(r runstore.Record) {
				r.Seed = seed
				o.Record(r)
			}
		}
		err := Check(p, check)
		if err == nil {
			return nil
		}
		f := &Failure{Seed: seed, Spec: p.String(), Err: err.Error()}
		if o.Minimize {
			min := Minimize(p, func(q *randprog.Program) bool {
				return Check(q, o.Check) != nil
			}, o.MinimizeBudget)
			f.MinSpec = min.String()
			f.MinOps = min.NumOps()
			if merr := Check(min, o.Check); merr != nil {
				f.MinErr = merr.Error()
			}
		}
		results[i].fail = f
		return nil
	})
	for _, r := range results {
		if r.ran {
			rep.Ran++
		} else {
			rep.Skipped++
		}
		if r.fail != nil {
			rep.Failures = append(rep.Failures, *r.fail)
		}
	}
	return rep
}
