// Package difftest executes one randprog program on every evaluated HTM
// system and cross-checks each run against a single-threaded reference
// executor — the differential layer of the correctness stack.
//
// The oracle has three parts, checked per system:
//
//  1. Serializability modulo commit order: a tracer records the global
//     order of commit points (hardware commits and fallback critical
//     sections — the fallback lock aborts and excludes all hardware
//     transactions, so the Fallback event is an exact serialization
//     point). Replaying the program's atomic blocks in that order on
//     the serial interpreter must reproduce the machine's final shared
//     memory exactly, and per-core private slots must equal program
//     order. For commutative programs any order gives the serial
//     result, so all five systems are additionally forced to agree
//     with each other and with the reference executor.
//
//  2. Structural serializability: the existing internal/invariant
//     checker replays committed transactions in commit order during
//     the run (chain acyclicity, single-writer, PiC/Cons consistency,
//     shadow-memory equality).
//
//  3. Accounting sanity: every atomic block commits exactly once
//     (Commits + Fallbacks == blocks, also per core), abort causes sum
//     to Aborts, and the forwarding counters are internally consistent
//     (consumed <= sent, validated <= validations).
//
// On a failure, Minimize delta-debugs the program down to a minimal
// reproducer and the spec string goes into the committed corpus
// (corpus/*.txt), which corpus_test.go replays forever after.
package difftest

import (
	"fmt"
	"strings"
	"time"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/randprog"
	"chats/internal/runstore"
)

// Systems returns the five paper systems the differential oracle runs
// (LEVC-BE-Idealized is excluded from the cross-check for the same
// reason the figures exclude it: it is an idealized bound, not a
// design under test — but it can be opted in via Options.Systems).
func Systems() []core.Kind {
	return []core.Kind{core.KindBaseline, core.KindNaiveRS, core.KindCHATS, core.KindPower, core.KindPCHATS}
}

// Options configures one differential check. The zero value checks the
// five paper systems on the default 16-core machine with the invariant
// checker attached.
type Options struct {
	// Machine, when non-nil, is the base machine configuration; Cores is
	// overridden to the program's core count per run.
	Machine *machine.Config
	// Systems, when non-empty, restricts or extends the checked systems.
	Systems []core.Kind
	// Wrap, when non-nil, post-processes each system's policy before the
	// run — the seam fault-injection and broken-policy tests use to
	// prove the oracle catches real protocol violations.
	Wrap func(core.Kind, htm.Policy) htm.Policy
	// Seed is the machine seed (0 means 1).
	Seed uint64
	// Faults optionally attaches a fault plan to every run.
	Faults *faults.Plan
	// NoInvariants detaches the structural checker, leaving only the
	// differential memory oracle (used to prove the oracle stands
	// alone).
	NoInvariants bool
	// Record, when non-nil, receives one runstore.Record per system run
	// that completed — even when an oracle then rejects the result: the
	// cost profile of a failing campaign is still data. Under Fuzz the
	// callback fires from worker goroutines, so it must be safe for
	// concurrent use (runstore.Store.Recorder is).
	Record func(runstore.Record)
}

func (o *Options) systems() []core.Kind {
	if len(o.Systems) > 0 {
		return o.Systems
	}
	return Systems()
}

func (o *Options) machineConfig(p *randprog.Program) machine.Config {
	var cfg machine.Config
	if o.Machine != nil {
		cfg = *o.Machine
	} else {
		cfg = machine.DefaultConfig()
		cfg.CycleLimit = 200_000_000
	}
	cfg.Cores = p.Cores
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Faults != nil {
		cfg.Faults = o.Faults
	}
	return cfg
}

// recorder captures the global serialization order: one BlockRef per
// hardware commit or fallback entry. It relies on blocks executing in
// program order per core (each Atomic call commits exactly once).
type recorder struct {
	order []randprog.BlockRef
	next  []int // per-core next block index
}

func newRecorder(cores int) *recorder { return &recorder{next: make([]int, cores)} }

func (r *recorder) note(core int) {
	if core < 0 || core >= len(r.next) {
		return
	}
	r.order = append(r.order, randprog.BlockRef{Core: core, Index: r.next[core]})
	r.next[core]++
}

func (r *recorder) TxBegin(cycle uint64, core, attempt int, power bool)                          {}
func (r *recorder) TxCommit(cycle uint64, core int, consumed int)                                { r.note(core) }
func (r *recorder) TxAbort(cycle uint64, core int, cause htm.AbortCause)                         {}
func (r *recorder) Forward(cycle uint64, producer, requester int, line mem.Addr, pic coherence.PiC) {}
func (r *recorder) Consume(cycle uint64, core int, line mem.Addr, pic coherence.PiC)             {}
func (r *recorder) Validate(cycle uint64, core int, line mem.Addr, ok bool)                      {}
func (r *recorder) Fallback(cycle uint64, core int)                                              { r.note(core) }

// CheckSystem runs the program on one system and applies the full
// oracle. The returned error carries the system name and the first
// divergence found.
func CheckSystem(p *randprog.Program, kind core.Kind, opts Options) error {
	if err := p.Validate(); err != nil {
		return err
	}
	policy, err := core.New(kind)
	if err != nil {
		return err
	}
	if opts.Wrap != nil {
		policy = opts.Wrap(kind, policy)
	}
	cfg := opts.machineConfig(p)
	m, err := machine.New(cfg, policy)
	if err != nil {
		return err
	}
	rec := newRecorder(p.Cores)
	tracers := machine.MultiTracer{rec}
	var chk *invariant.Checker
	if !opts.NoInvariants {
		chk = invariant.New()
		tracers = append(tracers, chk)
	}
	m.SetTracer(tracers)

	w := randprog.NewWorkload(p)
	start := time.Now()
	st, err := m.Run(w)
	if opts.Record != nil && err == nil {
		r := runstore.FromStats(st, string(kind), cfg.Seed, cfg.KnobsKey(), "fuzz",
			time.Since(start).Nanoseconds(), 0)
		r.StampEngine(m.IntraWorkers())
		r.StampDirBanks(m.DirBanks())
		r.StampWaves(m.WaveStats())
		opts.Record(r)
	}
	if err != nil {
		// Run already folds in the invariant checker's EndRun and the
		// workload's private-slot/commutative Check.
		return fmt.Errorf("%s: %w", kind, err)
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
	}

	// Accounting sanity.
	blocks := uint64(p.NumBlocks(-1))
	if st.Commits+st.Fallbacks != blocks {
		return fmt.Errorf("%s: commits %d + fallbacks %d != %d atomic blocks",
			kind, st.Commits, st.Fallbacks, blocks)
	}
	var byCause uint64
	for _, c := range st.ByCause {
		byCause += c
	}
	if byCause != st.Aborts {
		return fmt.Errorf("%s: abort causes sum to %d, Aborts = %d", kind, byCause, st.Aborts)
	}
	if st.SpecRespsConsumed > st.SpecRespsSent {
		return fmt.Errorf("%s: consumed %d spec responses, only %d sent",
			kind, st.SpecRespsConsumed, st.SpecRespsSent)
	}
	if st.ValidationsOK > st.Validations {
		return fmt.Errorf("%s: %d validations succeeded of %d issued",
			kind, st.ValidationsOK, st.Validations)
	}
	for c := 0; c < p.Cores; c++ {
		if rec.next[c] != p.NumBlocks(c) {
			return fmt.Errorf("%s: core %d committed %d blocks, program has %d",
				kind, c, rec.next[c], p.NumBlocks(c))
		}
	}

	// Serializability modulo commit order: replay the observed order.
	want, err := p.Replay(rec.order)
	if err != nil {
		return fmt.Errorf("%s: %w", kind, err)
	}
	mem := m.World().Mem
	for i := 0; i < p.Pool; i++ {
		if got := mem.ReadWord(w.SlotAddr(i)); got != want.Shared[i] {
			return fmt.Errorf("%s: shared slot %d = %d, replay of observed commit order gives %d",
				kind, i, got, want.Shared[i])
		}
	}
	for c := 0; c < p.Cores; c++ {
		for k := 0; k < p.Priv; k++ {
			if got := mem.ReadWord(w.PrivAddr(c, k)); got != want.Priv[c][k] {
				return fmt.Errorf("%s: core %d private slot %d = %d, want %d",
					kind, c, k, got, want.Priv[c][k])
			}
		}
	}

	// Commutative programs must match the serial reference executor
	// exactly — the direct cross-system agreement oracle.
	if p.Commutative() {
		serial, err := p.Replay(p.SerialOrder())
		if err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
		for i := 0; i < p.Pool; i++ {
			if got := mem.ReadWord(w.SlotAddr(i)); got != serial.Shared[i] {
				return fmt.Errorf("%s: shared slot %d = %d, serial reference gives %d (commutative program)",
					kind, i, got, serial.Shared[i])
			}
		}
	}
	return nil
}

// Check runs the program on every configured system and returns the
// joined failures (nil when all systems pass). Systems are checked in
// a fixed order, so the result is deterministic.
func Check(p *randprog.Program, opts Options) error {
	var msgs []string
	for _, kind := range opts.systems() {
		if err := CheckSystem(p, kind, opts); err != nil {
			msgs = append(msgs, err.Error())
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("difftest: %s", strings.Join(msgs, "; "))
}

// SkipValidation wraps a policy so value-based validation always
// reports a match — stale forwarded data is never detected, the bug
// class the VSB exists to prevent. Use as Options.Wrap in self-tests:
// the differential oracle must catch it.
func SkipValidation(p htm.Policy) htm.Policy { return brokenValidation{p} }

type brokenValidation struct{ htm.Policy }

func (p brokenValidation) ValidationCheck(local *htm.TxState, isSpec bool, pic coherence.PiC, match bool) (htm.ValidationOutcome, htm.AbortCause) {
	return p.Policy.ValidationCheck(local, isSpec, pic, true)
}
