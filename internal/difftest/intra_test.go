package difftest_test

import (
	"fmt"
	"testing"

	"chats/internal/coherence"
	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/randprog"
)

// Serial-vs-parallel engine equivalence over random programs: every
// committed corpus entry plus a fresh generated batch runs with
// IntraWorkers ∈ {1, 2, 8}, and the parallel runs must reproduce the
// serial run bit-for-bit — the full comparable RunStats (cycles, every
// commit/abort/decision counter, flits) and the final shared + private
// memory image. No tracer is attached: a tracer forces the serial
// engine, and the test would compare serial against itself.
//
// Power-token systems (Power, PCHATS) are excluded: they force serial
// on their own, which TestIntraForcedSerial in internal/machine pins.
func intraSystems() []core.Kind {
	return []core.Kind{core.KindBaseline, core.KindNaiveRS, core.KindCHATS, core.KindLEVC}
}

// runWorkers executes p on one system with the given engine worker
// count and returns the stats plus the flushed memory image (shared
// slots, then per-core private slots).
func runWorkers(t *testing.T, p *randprog.Program, kind core.Kind, workers int) (machine.RunStats, []uint64) {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.CycleLimit = 200_000_000
	cfg.Cores = p.Cores
	cfg.IntraWorkers = workers
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	w := randprog.NewWorkload(p)
	st, err := m.Run(w)
	if err != nil {
		t.Fatalf("IntraWorkers=%d: %v", workers, err)
	}
	if got := m.IntraWorkers(); got != workers {
		t.Fatalf("run used %d engine workers, configured %d", got, workers)
	}
	mem := m.World().Mem
	img := make([]uint64, 0, p.Pool+p.Cores*p.Priv)
	for i := 0; i < p.Pool; i++ {
		img = append(img, mem.ReadWord(w.SlotAddr(i)))
	}
	for c := 0; c < p.Cores; c++ {
		for k := 0; k < p.Priv; k++ {
			img = append(img, mem.ReadWord(w.PrivAddr(c, k)))
		}
	}
	return st, img
}

// checkIntra runs p at workers 1, 2 and 8 on one system and fails on
// the first divergence from the serial run.
func checkIntra(t *testing.T, p *randprog.Program, kind core.Kind) {
	t.Helper()
	ref, refImg := runWorkers(t, p, kind, 1)
	for _, workers := range []int{2, 8} {
		st, img := runWorkers(t, p, kind, workers)
		if st != ref {
			t.Errorf("IntraWorkers=%d stats diverged from serial:\nserial:   %+v\nparallel: %+v",
				workers, ref, st)
		}
		for i := range refImg {
			if img[i] != refImg[i] {
				t.Errorf("IntraWorkers=%d memory slot %d = %d, serial run has %d",
					workers, i, img[i], refImg[i])
			}
		}
	}
}

// TestIntraCorpusEquivalence replays every committed corpus program on
// the parallel-capable systems at each worker count.
func TestIntraCorpusEquivalence(t *testing.T) {
	for name, p := range loadCorpus(t) {
		for _, kind := range intraSystems() {
			p, kind := p, kind
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				checkIntra(t, p, kind)
			})
		}
	}
}

// nopTracer is the minimal machine.Tracer: attaching any tracer —
// telemetry collector, trace writer, invariant checker — must force the
// engine serial, so traced output is identical at any -intra-j.
type nopTracer struct{}

func (nopTracer) TxBegin(uint64, int, int, bool)                    {}
func (nopTracer) TxCommit(uint64, int, int)                         {}
func (nopTracer) TxAbort(uint64, int, htm.AbortCause)               {}
func (nopTracer) Forward(uint64, int, int, mem.Addr, coherence.PiC) {}
func (nopTracer) Consume(uint64, int, mem.Addr, coherence.PiC)      {}
func (nopTracer) Validate(uint64, int, mem.Addr, bool)              {}
func (nopTracer) Fallback(uint64, int)                              {}

// TestIntraTracerForcesSerial pins the tracer half of the gating rule.
func TestIntraTracerForcesSerial(t *testing.T) {
	p := randprog.Generate(1000, randprog.Preset(0))
	policy, err := core.New(core.KindCHATS)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.CycleLimit = 200_000_000
	cfg.Cores = p.Cores
	cfg.IntraWorkers = 8
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTracer(nopTracer{})
	if _, err := m.Run(randprog.NewWorkload(p)); err != nil {
		t.Fatal(err)
	}
	if got := m.IntraWorkers(); got != 1 {
		t.Errorf("traced run used %d engine workers, want forced serial", got)
	}
}

// TestIntraFuzzEquivalence does the same over a fresh generated batch —
// fixed seeds, so failures reproduce; systems rotate through the batch
// so every parallel-capable system sees several distinct programs.
func TestIntraFuzzEquivalence(t *testing.T) {
	g := randprog.Preset(0)
	g.AddFrac = 0.5 // mix blind stores in: order-sensitive coverage
	kinds := intraSystems()
	const n = 12
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i)
		p := randprog.Generate(seed, g)
		kind := kinds[i%len(kinds)]
		t.Run(fmt.Sprintf("seed%d/%s", seed, kind), func(t *testing.T) {
			t.Parallel()
			checkIntra(t, p, kind)
		})
	}
}
