package difftest_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/difftest"
	"chats/internal/randprog"
)

// loadCorpus reads every corpus/*.txt entry, skipping '#' comment and
// blank lines; each remaining line must be a valid rp1 spec.
func loadCorpus(t *testing.T) map[string]*randprog.Program {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("corpus", "*.txt"))
	if err != nil {
		t.Fatalf("glob corpus: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus is empty: expected at least one corpus/*.txt entry")
	}
	progs := make(map[string]*randprog.Program)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".txt")
		specs := 0
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			p, err := randprog.Parse(line)
			if err != nil {
				t.Fatalf("%s: bad spec: %v", path, err)
			}
			specs++
			key := name
			if specs > 1 {
				key = name + "#" + string(rune('0'+specs))
			}
			progs[key] = p
		}
		if specs == 0 {
			t.Fatalf("%s: no spec line found", path)
		}
	}
	return progs
}

// TestCorpusReplay replays every committed corpus program on all five
// paper systems (plus LEVC) with the full oracle stack: invariant
// checker, accounting cross-checks, and the commit-order memory replay.
func TestCorpusReplay(t *testing.T) {
	systems := append(append([]core.Kind{}, difftest.Systems()...), core.KindLEVC)
	for name, p := range loadCorpus(t) {
		for _, kind := range systems {
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				if err := difftest.CheckSystem(p, kind, difftest.Options{}); err != nil {
					t.Fatalf("corpus entry failed: %v", err)
				}
			})
		}
	}
}
