package difftest_test

import (
	"fmt"
	"testing"

	"chats/internal/core"
	"chats/internal/randprog"
)

// Delivery-equivalence oracle for the barrier-free delivery paths:
// responses, probes, unblocks and writeback data now run in their
// destination's domain (the requesting core's, or the owning bank's)
// instead of the serial domain, so this batch pins that the routing is
// pure plumbing — every committed corpus program plus a fresh fuzz
// batch must produce bit-identical RunStats and memory images across
// intra-j {1, 4, 8} × dir-banks {1, 4}. It deliberately includes the
// worker counts the intra and bank oracles skip (intra-j 4 crossed
// with banks), because delivery merges exercise mid-width waves where
// several bank domains answer the same core in one cycle.

// checkDelivery runs p at every intra × banks combination and fails on
// the first divergence from the fully serial single-bank run.
func checkDelivery(t *testing.T, p *randprog.Program, kind core.Kind) {
	t.Helper()
	ref, refImg := runBanked(t, p, kind, 1, 1)
	for _, workers := range []int{1, 4, 8} {
		for _, banks := range []int{1, 4} {
			if workers == 1 && banks == 1 {
				continue // the reference itself
			}
			st, img := runBanked(t, p, kind, banks, workers)
			if st != ref {
				t.Errorf("IntraWorkers=%d DirBanks=%d stats diverged from serial:\nserial:   %+v\nparallel: %+v",
					workers, banks, ref, st)
			}
			for i := range refImg {
				if img[i] != refImg[i] {
					t.Errorf("IntraWorkers=%d DirBanks=%d memory slot %d = %d, serial run has %d",
						workers, banks, i, img[i], refImg[i])
				}
			}
		}
	}
}

// TestDeliveryCorpusEquivalence replays every committed corpus program
// on the parallel-capable systems across the delivery grid.
func TestDeliveryCorpusEquivalence(t *testing.T) {
	for name, p := range loadCorpus(t) {
		for _, kind := range intraSystems() {
			p, kind := p, kind
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				checkDelivery(t, p, kind)
			})
		}
	}
}

// TestDeliveryFuzzEquivalence does the same over a fresh generated
// batch — fixed seeds distinct from the intra and bank batches, blind
// stores mixed in for order-sensitive coverage.
func TestDeliveryFuzzEquivalence(t *testing.T) {
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	kinds := intraSystems()
	const n = 12
	for i := 0; i < n; i++ {
		seed := uint64(9000 + i)
		p := randprog.Generate(seed, g)
		kind := kinds[i%len(kinds)]
		t.Run(fmt.Sprintf("seed%d/%s", seed, kind), func(t *testing.T) {
			t.Parallel()
			checkDelivery(t, p, kind)
		})
	}
}
