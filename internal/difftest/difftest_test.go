package difftest_test

import (
	"reflect"
	"testing"

	"chats/internal/core"
	"chats/internal/difftest"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/randprog"
)

// smokeGen is the campaign configuration the smoke tests share: small
// programs, mixed adds and order-sensitive stores.
func smokeGen() randprog.GenConfig {
	g := randprog.Preset(0)
	g.AddFrac = 0.5
	return g
}

// TestFuzzSmoke is the CI entry point: a fixed-seed campaign over all
// five systems with the invariant checker attached must be green.
func TestFuzzSmoke(t *testing.T) {
	rep := difftest.Fuzz(difftest.FuzzOptions{Start: 1, N: 6, Gen: smokeGen()})
	if !rep.Ok() {
		t.Fatalf("%s\nfirst: %+v", rep.Summary(), rep.Failures[0])
	}
	if rep.Ran != 6 {
		t.Fatalf("ran %d of 6", rep.Ran)
	}
}

// The campaign report must be bit-identical at any parallelism.
func TestFuzzDeterminismAcrossJobs(t *testing.T) {
	opts := difftest.FuzzOptions{Start: 3, N: 6, Gen: smokeGen()}
	opts.Jobs = 1
	a := difftest.Fuzz(opts)
	opts.Jobs = 4
	b := difftest.Fuzz(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fuzz diverged across -j:\n-j1: %+v\n-j4: %+v", a, b)
	}
}

// Fault injection must not break the oracle: faulted runs abort and
// retry more, but stay serializable and fully accounted.
func TestFuzzUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault fuzz skipped in -short mode")
	}
	plan := faults.SoakPlan()
	rep := difftest.Fuzz(difftest.FuzzOptions{
		Start: 1, N: 4, Gen: smokeGen(),
		Check: difftest.Options{Faults: &plan},
	})
	if !rep.Ok() {
		t.Fatalf("%s\nfirst: %+v", rep.Summary(), rep.Failures[0])
	}
}

// brokenOpts cripples value-based validation on CHATS and disables the
// structural checker, leaving the differential memory oracle alone to
// catch the resulting stale-data commits.
func brokenOpts() difftest.Options {
	return difftest.Options{
		Systems:      []core.Kind{core.KindCHATS},
		NoInvariants: true,
		Wrap:         func(k core.Kind, p htm.Policy) htm.Policy { return difftest.SkipValidation(p) },
	}
}

// The acceptance test of the whole subsystem: an intentionally broken
// policy (validation always reports a match) must be caught by the
// differential oracle and shrink to a reproducer of at most 16 ops
// that still fails.
func TestBrokenValidationCaughtAndMinimized(t *testing.T) {
	g := randprog.Preset(1)
	g.AddFrac = 0.5
	g.ChainFrac = 0.6 // forwarded-then-modified motifs trigger the hazard
	opts := brokenOpts()

	var failing *randprog.Program
	for seed := uint64(1); seed <= 10; seed++ {
		p := randprog.Generate(seed, g)
		if difftest.Check(p, opts) != nil {
			failing = p
			break
		}
	}
	if failing == nil {
		t.Fatal("broken validation policy not caught in 10 seeds")
	}
	min := difftest.Minimize(failing, func(q *randprog.Program) bool {
		return difftest.Check(q, opts) != nil
	}, 400)
	if err := difftest.Check(min, opts); err == nil {
		t.Fatal("minimized program no longer fails")
	}
	if ops := min.NumOps(); ops > 16 {
		t.Fatalf("reproducer has %d ops (> 16): %s", ops, min)
	}
	// The reproducer must survive its own serialization.
	rt, err := randprog.Parse(min.String())
	if err != nil {
		t.Fatal(err)
	}
	if difftest.Check(rt, opts) == nil {
		t.Fatal("round-tripped reproducer no longer fails")
	}
	t.Logf("reproducer (%d ops): %s", min.NumOps(), min)
}

// The same hunt through the Fuzz driver: failures carry minimized
// specs.
func TestFuzzReportsMinimizedFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("minimizing fuzz skipped in -short mode")
	}
	g := randprog.Preset(1)
	g.AddFrac = 0.5
	g.ChainFrac = 0.6
	rep := difftest.Fuzz(difftest.FuzzOptions{
		Start: 1, N: 3, Gen: g, Check: brokenOpts(),
		Minimize: true, MinimizeBudget: 300,
	})
	if rep.Ok() {
		t.Fatal("broken policy produced a green campaign")
	}
	f := rep.Failures[0]
	if f.MinSpec == "" || f.MinOps == 0 || f.MinErr == "" {
		t.Fatalf("failure not minimized: %+v", f)
	}
	if f.MinOps > 16 {
		t.Fatalf("minimized reproducer has %d ops: %s", f.MinOps, f.MinSpec)
	}
}

// SkipValidation must be harmless on a system that never forwards: no
// false positives from the oracle itself.
func TestSkipValidationHarmlessOnBaseline(t *testing.T) {
	g := smokeGen()
	p := randprog.Generate(5, g)
	err := difftest.Check(p, difftest.Options{
		Systems: []core.Kind{core.KindBaseline},
		Wrap:    func(k core.Kind, pol htm.Policy) htm.Policy { return difftest.SkipValidation(pol) },
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A handcrafted order-sensitive program must pass the oracle on every
// system, including LEVC when opted in.
func TestCheckHandcrafted(t *testing.T) {
	p, err := randprog.Parse(
		"rp1;cores=3;pool=4;pack=2;priv=1|[l0,s1+3] [a0+7] S0+5|[s0+1,w20] [l1,l0,s2+2]|[a1+4] [l2,a3+9,w10] L1")
	if err != nil {
		t.Fatal(err)
	}
	systems := append(difftest.Systems(), core.KindLEVC)
	for _, kind := range systems {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			if err := difftest.CheckSystem(p, kind, difftest.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
