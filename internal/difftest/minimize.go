package difftest

import "chats/internal/randprog"

// Minimize delta-debugs a failing program: it repeatedly tries smaller
// candidates — dropping whole cores, ddmin chunk removal over each
// core's action list, removing single ops inside blocks, shrinking
// salts/work amounts and the address pool — and keeps a candidate
// whenever fails still reports it failing, iterating to a fixpoint or
// until budget candidate evaluations are spent. Every run is
// deterministic, so the reduction is reproducible.
//
// fails must return true when the candidate still exhibits the
// failure (typically: CheckSystem against the one failing system
// returns non-nil). The returned program always fails.
func Minimize(p *randprog.Program, fails func(*randprog.Program) bool, budget int) *randprog.Program {
	if budget <= 0 {
		budget = 500
	}
	cur := p.Clone()
	evals := 0
	try := func(cand *randprog.Program) bool {
		if evals >= budget {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		evals++
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}

	for pass := 0; pass < 16; pass++ {
		improved := false

		// Drop whole cores (highest first, so indices shift least).
		for c := cur.Cores - 1; c >= 0 && cur.Cores > 1; c-- {
			cand := cur.Clone()
			cand.Seq = append(cand.Seq[:c], cand.Seq[c+1:]...)
			cand.Cores--
			if try(cand) {
				improved = true
			}
		}

		// ddmin over each core's action list: remove chunks, halving the
		// chunk size down to single actions.
		for c := 0; c < cur.Cores; c++ {
			for chunk := len(cur.Seq[c]); chunk >= 1; chunk /= 2 {
				for start := 0; start < len(cur.Seq[c]); {
					end := start + chunk
					if end > len(cur.Seq[c]) {
						end = len(cur.Seq[c])
					}
					cand := cur.Clone()
					cand.Seq[c] = append(cand.Seq[c][:start], cand.Seq[c][end:]...)
					if try(cand) {
						improved = true
						// cur shrank; retry the same start position.
						continue
					}
					start = end
				}
			}
		}

		// Remove single ops inside blocks.
		for c := 0; c < cur.Cores; c++ {
			for i := 0; i < len(cur.Seq[c]); i++ {
				if cur.Seq[c][i].Kind != randprog.ActBlock {
					continue
				}
				for j := 0; j < len(cur.Seq[c][i].Ops); {
					cand := cur.Clone()
					cand.Seq[c][i].Ops = append(cand.Seq[c][i].Ops[:j], cand.Seq[c][i].Ops[j+1:]...)
					if try(cand) {
						improved = true
						continue // same j now names the next op
					}
					j++
				}
			}
		}

		// Shrink magnitudes: salts and work amounts to 1.
		for c := 0; c < cur.Cores; c++ {
			for i := range cur.Seq[c] {
				a := &cur.Seq[c][i]
				if a.Kind != randprog.ActBlock {
					if a.Arg > 1 {
						cand := cur.Clone()
						cand.Seq[c][i].Arg = 1
						if try(cand) {
							improved = true
						}
					}
					continue
				}
				for j := range a.Ops {
					if a.Ops[j].Arg > 1 {
						cand := cur.Clone()
						cand.Seq[c][i].Ops[j].Arg = 1
						if try(cand) {
							improved = true
						}
					}
				}
			}
		}

		// Shrink the layout: smaller pool (remapping slots), pack 1,
		// fewer private slots.
		if cur.Pool > 1 {
			for _, newPool := range []int{cur.Pool / 2, cur.Pool - 1} {
				if newPool < 1 || newPool >= cur.Pool {
					continue
				}
				cand := cur.Clone()
				cand.Pool = newPool
				remap := func(slot int) int { return slot % newPool }
				for c := range cand.Seq {
					for i := range cand.Seq[c] {
						a := &cand.Seq[c][i]
						if a.Kind == randprog.ActLoad {
							a.Slot = remap(a.Slot)
						}
						for j := range a.Ops {
							if a.Ops[j].Kind != randprog.OpWork {
								a.Ops[j].Slot = remap(a.Ops[j].Slot)
							}
						}
					}
				}
				if try(cand) {
					improved = true
					break
				}
			}
		}
		if cur.Pack > 1 {
			cand := cur.Clone()
			cand.Pack = 1
			if try(cand) {
				improved = true
			}
		}

		if !improved || evals >= budget {
			break
		}
	}
	return cur
}
