// Package mem models the simulated physical address space: 64-byte cache
// lines of eight 64-bit words, a sparse backing store holding the
// committed (architectural) value of every line, and a bump allocator for
// building workload data structures in simulated memory.
package mem

import "fmt"

const (
	// LineSize is the cache line size in bytes (Table I: 64-byte lines).
	LineSize = 64
	// WordSize is the machine word size in bytes.
	WordSize = 8
	// WordsPerLine is the number of words in a cache line.
	WordsPerLine = LineSize / WordSize
	// LineShift is log2(LineSize).
	LineShift = 6
)

// Addr is a simulated physical byte address. Workload code always uses
// word-aligned addresses.
type Addr uint64

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// WordIndex returns the index of a's word within its cache line.
func (a Addr) WordIndex() int { return int(a>>3) & (WordsPerLine - 1) }

// Plus returns the address offset by n words.
func (a Addr) Plus(n int) Addr { return a + Addr(n*WordSize) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Line is the value of one cache line: eight 64-bit words.
type Line [WordsPerLine]uint64

// numShards is the fixed internal shard count of a Memory. It is the
// upper bound on the coherence directory's bank count: because every
// power-of-two bank count <= numShards selects banks from the same low
// line-index bits LineShard uses, two lines owned by different directory
// banks always live in different memory shards, so concurrently
// executing banks never touch the same map.
const numShards = 256

// LineShard returns the shard index in [0, shards) of the line
// containing a. shards must be a power of two. This is the one address
// hash shared by the memory's internal sharding and the directory's
// bank selection (coherence.BankOf): consecutive cache lines round-robin
// across shards, so regular strides spread load over all banks.
func LineShard(a Addr, shards int) int {
	return int((uint64(a) >> LineShift) & uint64(shards-1))
}

// Memory is the simulated backing store. It always holds the latest
// committed value of every line (the simulator maintains the invariant
// that any speculatively modified cache copy has its committed version
// here, so silent invalidation of speculative lines is always safe).
//
// The store is internally sharded by LineShard so that directory banks
// executing in distinct parallel domains (which by construction touch
// lines of distinct shards) never race on one Go map.
type Memory struct {
	shards [numShards]map[Addr]*Line
}

// NewMemory returns an empty simulated memory. Untouched lines read as
// zero.
func NewMemory() *Memory {
	m := new(Memory)
	for i := range m.shards {
		m.shards[i] = make(map[Addr]*Line)
	}
	return m
}

// shard returns the map holding a's line.
func (m *Memory) shard(la Addr) map[Addr]*Line {
	return m.shards[LineShard(la, numShards)]
}

// ReadLine returns a copy of the line containing a.
func (m *Memory) ReadLine(a Addr) Line {
	la := a.Line()
	if l, ok := m.shard(la)[la]; ok {
		return *l
	}
	return Line{}
}

// WriteLine replaces the line containing a with l.
func (m *Memory) WriteLine(a Addr, l Line) {
	la := a.Line()
	s := m.shard(la)
	p, ok := s[la]
	if !ok {
		p = new(Line)
		s[la] = p
	}
	*p = l
}

// ReadWord returns the committed word at a (a must be word aligned).
func (m *Memory) ReadWord(a Addr) uint64 {
	la := a.Line()
	if l, ok := m.shard(la)[la]; ok {
		return l[a.WordIndex()]
	}
	return 0
}

// WriteWord sets the committed word at a.
func (m *Memory) WriteWord(a Addr, v uint64) {
	la := a.Line()
	s := m.shard(la)
	p, ok := s[la]
	if !ok {
		p = new(Line)
		s[la] = p
	}
	p[a.WordIndex()] = v
}

// Touched returns the number of distinct lines ever written.
func (m *Memory) Touched() int {
	n := 0
	for i := range m.shards {
		n += len(m.shards[i])
	}
	return n
}

// ForEachLine calls fn with a copy of every line ever written, in
// unspecified order. Callers needing determinism must sort the addresses
// themselves (the invariant checker's shadow memory does).
func (m *Memory) ForEachLine(fn func(a Addr, l Line)) {
	for i := range m.shards {
		for a, l := range m.shards[i] {
			fn(a, *l)
		}
	}
}

// Allocator is a bump allocator over the simulated address space, used
// by workloads to lay out their data structures. It never reuses
// addresses; simulated runs are short enough that this is fine and it
// keeps allocation deterministic.
type Allocator struct {
	next Addr
}

// NewAllocator returns an allocator starting at base (rounded up to a
// line boundary, and never handing out address 0, which workloads treat
// as nil).
func NewAllocator(base Addr) *Allocator {
	if base == 0 {
		base = LineSize
	}
	return &Allocator{next: (base + LineSize - 1).Line()}
}

// Words allocates n words, word-aligned, and returns the base address.
func (al *Allocator) Words(n int) Addr {
	if n <= 0 {
		panic("mem: Words called with n <= 0")
	}
	a := al.next
	al.next += Addr(n * WordSize)
	return a
}

// Lines allocates n whole cache lines, line-aligned.
func (al *Allocator) Lines(n int) Addr {
	if n <= 0 {
		panic("mem: Lines called with n <= 0")
	}
	al.next = (al.next + LineSize - 1).Line()
	a := al.next
	al.next += Addr(n * LineSize)
	return a
}

// LineAligned allocates n words starting at a fresh line boundary. Use it
// for records that must not share a line with unrelated data (avoids
// false sharing in workloads that want isolation).
func (al *Allocator) LineAligned(nWords int) Addr {
	if nWords <= 0 {
		panic("mem: LineAligned called with nWords <= 0")
	}
	al.next = (al.next + LineSize - 1).Line()
	a := al.next
	al.next += Addr(nWords * WordSize)
	return a
}

// Next returns the next address that would be allocated.
func (al *Allocator) Next() Addr { return al.next }
