package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLineMath(t *testing.T) {
	cases := []struct {
		a    Addr
		line Addr
		idx  int
	}{
		{0, 0, 0},
		{8, 0, 1},
		{56, 0, 7},
		{64, 64, 0},
		{72, 64, 1},
		{127, 64, 7},
		{0x1000, 0x1000, 0},
	}
	for _, c := range cases {
		if c.a.Line() != c.line {
			t.Errorf("%v.Line() = %v, want %v", c.a, c.a.Line(), c.line)
		}
		if c.a.WordIndex() != c.idx {
			t.Errorf("%v.WordIndex() = %d, want %d", c.a, c.a.WordIndex(), c.idx)
		}
	}
}

func TestAddrPlus(t *testing.T) {
	a := Addr(0x100)
	if a.Plus(3) != 0x118 {
		t.Fatalf("Plus(3) = %v", a.Plus(3))
	}
}

// Property: for any address, Line() is line-aligned, contains the
// address, and word index is within the line.
func TestAddrProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ 7) // word aligned
		l := a.Line()
		return uint64(l)%LineSize == 0 &&
			l <= a && a < l+LineSize &&
			a.WordIndex() >= 0 && a.WordIndex() < WordsPerLine &&
			l.Plus(a.WordIndex()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryReadWriteWord(t *testing.T) {
	m := NewMemory()
	if m.ReadWord(0x40) != 0 {
		t.Fatal("fresh memory not zero")
	}
	m.WriteWord(0x40, 99)
	m.WriteWord(0x48, 100)
	if m.ReadWord(0x40) != 99 || m.ReadWord(0x48) != 100 {
		t.Fatal("readback mismatch")
	}
	// Same line.
	l := m.ReadLine(0x44) // any addr in the line
	if l[0] != 99 || l[1] != 100 {
		t.Fatalf("line = %v", l)
	}
}

func TestMemoryLineRoundTrip(t *testing.T) {
	m := NewMemory()
	var l Line
	for i := range l {
		l[i] = uint64(i * 7)
	}
	m.WriteLine(0x80, l)
	got := m.ReadLine(0x80)
	if got != l {
		t.Fatalf("got %v want %v", got, l)
	}
	// WriteLine with non-aligned addr targets the containing line.
	m.WriteLine(0x88, Line{1})
	if m.ReadWord(0x80) != 1 {
		t.Fatal("WriteLine did not normalize to line base")
	}
}

// Property: word writes are independent; writing one word never changes
// another word.
func TestMemoryWordIsolation(t *testing.T) {
	f := func(addrs []uint16, vals []uint64) bool {
		m := NewMemory()
		model := make(map[Addr]uint64)
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := Addr(addrs[i]) &^ 7
			m.WriteWord(a, vals[i])
			model[a] = vals[i]
		}
		for a, v := range model {
			if m.ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	al := NewAllocator(0)
	a := al.Words(3)
	if a == 0 {
		t.Fatal("allocator handed out nil address")
	}
	if uint64(a)%WordSize != 0 {
		t.Fatal("not word aligned")
	}
	b := al.Words(1)
	if b != a.Plus(3) {
		t.Fatalf("bump allocation not contiguous: %v then %v", a, b)
	}
	c := al.Lines(2)
	if uint64(c)%LineSize != 0 {
		t.Fatal("Lines not line aligned")
	}
	d := al.LineAligned(5)
	if uint64(d)%LineSize != 0 {
		t.Fatal("LineAligned not line aligned")
	}
	if d < c+2*LineSize {
		t.Fatal("allocations overlap")
	}
}

func TestAllocatorNoOverlap(t *testing.T) {
	al := NewAllocator(0x1000)
	type span struct{ lo, hi Addr }
	var spans []span
	r := []int{1, 8, 3, 16, 2}
	for i, n := range r {
		var a Addr
		switch i % 3 {
		case 0:
			a = al.Words(n)
			spans = append(spans, span{a, a + Addr(n*WordSize)})
		case 1:
			a = al.Lines(n)
			spans = append(spans, span{a, a + Addr(n*LineSize)})
		case 2:
			a = al.LineAligned(n)
			spans = append(spans, span{a, a + Addr(n*WordSize)})
		}
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("overlap between %v and %v", spans[i-1], spans[i])
		}
	}
}

func TestAllocatorPanics(t *testing.T) {
	al := NewAllocator(0)
	for _, fn := range []func(){
		func() { al.Words(0) },
		func() { al.Lines(-1) },
		func() { al.LineAligned(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTouched(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0, 1)
	m.WriteWord(8, 2)        // same line
	m.WriteWord(64, 3)       // new line
	m.WriteLine(128, Line{}) // new line even if zero
	if got := m.Touched(); got != 3 {
		t.Fatalf("Touched = %d, want 3", got)
	}
}
