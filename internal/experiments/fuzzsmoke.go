package experiments

import (
	"fmt"
	"io"

	"chats/internal/difftest"
	"chats/internal/randprog"
)

// FuzzSmoke runs a fixed-seed differential-fuzzing campaign sized for
// CI: N seeded random programs checked on all five systems with the
// full oracle stack (invariants, accounting, commit-order replay),
// minimizing any failure. Honors p.Size (generator preset), p.Machine,
// p.Workers, p.Faults and p.Recorder (one record per system run, keyed
// by generator seed); results are bit-identical at any Workers.
func FuzzSmoke(p Params, start uint64, n int) *difftest.Report {
	g := randprog.Preset(int(p.Size))
	g.AddFrac = 0.5 // mix blind stores in: order-sensitive coverage
	cfg := p.Machine
	return difftest.Fuzz(difftest.FuzzOptions{
		Start:    start,
		N:        n,
		Gen:      g,
		Check:    difftest.Options{Machine: &cfg, Seed: cfg.Seed, Faults: p.Faults},
		Jobs:     p.Workers,
		Minimize: true,
		Record:   p.Recorder,
	})
}

// WriteFuzzReport renders a campaign outcome, one line per failure.
func WriteFuzzReport(w io.Writer, rep *difftest.Report) {
	fmt.Fprintln(w, rep.Summary())
	for _, f := range rep.Failures {
		fmt.Fprintf(w, "  seed %d: %s\n    spec: %s\n", f.Seed, f.Err, f.Spec)
		if f.MinSpec != "" {
			fmt.Fprintf(w, "    minimized (%d ops): %s\n", f.MinOps, f.MinSpec)
		}
	}
}
