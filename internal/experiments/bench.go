package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/runstore"
)

// CellBench records the cost of one simulation cell: simulated cycles,
// host wall clock, and heap allocations observed while it ran. Emitted
// by `chats-experiments -bench-json` so perf trajectories can be
// compared machine-readably across commits.
type CellBench struct {
	Cell        string `json:"cell"`
	SimCycles   uint64 `json:"simcycles"`
	WallclockNS int64  `json:"wallclock_ns"`
	Allocs      uint64 `json:"allocs"`

	// WaveEvents/Waves describe the engine's parallel coverage: fired
	// events grouped into same-cycle distinct-domain waves (a wave is
	// the unit the intra-run executor can overlap). events/waves is the
	// average batch width — higher means more headroom for -intra-j.
	// SerialEvents counts the subset that ran on DomainSerial (each one
	// a full barrier); serial/events is the residual barrier fraction.
	// Zero on files written before the wave counters existed.
	WaveEvents   uint64 `json:"wave_events,omitempty"`
	Waves        uint64 `json:"waves,omitempty"`
	SerialEvents uint64 `json:"serial_events,omitempty"`
}

// BenchReport is the top-level -bench-json document.
type BenchReport struct {
	// Schema names the document layout so downstream tooling can detect
	// incompatible changes.
	Schema string `json:"schema"`
	// Commit, TimestampUTC and GoVersion identify the build the
	// trajectory was measured on (new in chats-bench/v2; empty when
	// reading v1 history).
	Commit       string `json:"commit,omitempty"`
	TimestampUTC string `json:"timestamp_utc,omitempty"`
	GoVersion    string `json:"go_version,omitempty"`
	// Workers is the -j value the sweep ran under. Note that with
	// Workers > 1 the per-cell Allocs and WallclockNS figures include
	// interference from concurrently running cells (Mallocs is a
	// process-wide counter); SimCycles is always exact.
	Workers          int         `json:"workers"`
	Size             string      `json:"size"`
	Runs             int         `json:"runs"`
	TotalWallclockNS int64       `json:"total_wallclock_ns"`
	Cells            []CellBench `json:"cells"`
}

// BenchSchema identifies the current BenchReport layout. v2 adds the
// commit/timestamp_utc/go_version header; readers (benchdiff, runstore
// import) keep accepting v1.
const BenchSchema = "chats-bench/v2"

// cellBenchRec is an in-flight measurement for one simulation.
type cellBenchRec struct {
	bench   CellBench
	start   time.Time
	mallocs uint64
}

// beginCellBench snapshots the clocks before a simulation starts.
func beginCellBench(name string) cellBenchRec {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return cellBenchRec{
		bench:   CellBench{Cell: name},
		start:   time.Now(),
		mallocs: ms.Mallocs,
	}
}

// finish closes the measurement. Mallocs is process-wide, so under a
// parallel sweep the per-cell delta is approximate (it includes
// allocations of cells running concurrently); at -j 1 it is exact.
func (r *cellBenchRec) finish(simCycles uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.bench.SimCycles = simCycles
	r.bench.WallclockNS = time.Since(r.start).Nanoseconds()
	r.bench.Allocs = ms.Mallocs - r.mallocs
}

// cellName builds the stable identifier a CellBench is reported under.
func cellName(kind core.Kind, traits *htm.Traits, bench string, seed uint64, labelSeed bool) string {
	name := fmt.Sprintf("%s/%s", kind, bench)
	if tk := traitsKey(traits); tk != "" {
		name += "/" + tk
	}
	if labelSeed {
		name += fmt.Sprintf("/seed=%d", seed)
	}
	return name
}

// largeBenches are the workloads of the large-machine bench grid:
// the linked-list benches carry most of the wall clock and, with every
// core busy each cycle, most of the same-cycle event parallelism the
// intra-run engine can exploit; the rest anchor contended and mixed
// behavior at 64 cores.
var largeBenches = []string{"llb-l", "llb-h", "kmeans-l", "kmeans-h", "cadd", "vacation"}

// LargeBenchCores is the machine width of the large-machine bench grid.
const LargeBenchCores = 64

// RunLargeBench executes the large-machine bench grid — baseline and
// CHATS on every large bench — so WriteBenchJSON captures the cells.
// The suite's Params.Machine should already carry LargeBenchCores and
// the IntraWorkers under test; cells run through the normal memoizing
// Run path.
func (s *Suite) RunLargeBench() error {
	for _, kind := range []core.Kind{core.KindBaseline, core.KindCHATS} {
		for _, bench := range largeBenches {
			if _, err := s.Run(kind, nil, bench); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScaleBenchCores are the machine widths of the directory-scaling
// bench grid: the large-machine width and the MaxCores ceiling, where
// directory occupancy is densest and bank-level parallelism matters
// most.
var ScaleBenchCores = []int{64, 256}

// scaleBenches are the grid's workloads: the chaining-heavy benches
// whose directory traffic used to serialize on the single DomainSerial
// directory (~2 events/wave), so they show the bank-sharding gain most
// directly.
var scaleBenches = []string{"kmeans-l", "kmeans-h", "cadd"}

// RunScaleBench executes the directory-scaling bench grid: CHATS on
// every scale bench at each ScaleBenchCores width, cells labeled
// <system>/<bench>/c<cores>. The bank count under test comes from
// p.Machine.DirBanks — run once per bank count into separate files and
// diff them with benchdiff: common cells must be cycle-identical at any
// bank count, and the events-per-wave row quantifies the parallel
// coverage each bank count buys.
func RunScaleBench(p Params) ([]CellBench, int, error) {
	var cells []CellBench
	runs := 0
	for _, cores := range ScaleBenchCores {
		sp := p
		sp.Machine.Cores = cores
		s := NewSuite(sp)
		for _, bench := range scaleBenches {
			if _, err := s.Run(core.KindCHATS, nil, bench); err != nil {
				return nil, 0, err
			}
		}
		for _, cb := range s.BenchCells() {
			cb.Cell = fmt.Sprintf("%s/c%d", cb.Cell, cores)
			cells = append(cells, cb)
		}
		runs += s.Runs
	}
	return cells, runs, nil
}

// BenchCells returns a copy of the per-cell measurements collected so
// far.
func (s *Suite) BenchCells() []CellBench {
	s.mu.Lock()
	defer s.mu.Unlock()
	cells := make([]CellBench, len(s.bench))
	copy(cells, s.bench)
	return cells
}

// WriteBenchJSON emits the bench trajectory of every simulation the
// suite has executed, sorted by cell name so the output is stable
// regardless of sweep scheduling. meta stamps the v2 header fields
// (runstore.NowMeta() for live runs).
func (s *Suite) WriteBenchJSON(w io.Writer, workers int, total time.Duration, meta runstore.Meta) error {
	s.mu.Lock()
	runs := s.Runs
	s.mu.Unlock()
	return WriteBenchCells(w, s.BenchCells(), workers, s.p.Size.String(), runs, total, meta)
}

// WriteBenchCells writes an explicit cell list as a -bench-json
// document — the seam shared by the suite writer and grids (like
// RunScaleBench) that collect cells across several suites.
func WriteBenchCells(w io.Writer, cells []CellBench, workers int, size string, runs int, total time.Duration, meta runstore.Meta) error {
	cells = append([]CellBench(nil), cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Cell < cells[j].Cell })
	rep := BenchReport{
		Schema:           BenchSchema,
		Commit:           meta.Commit,
		TimestampUTC:     meta.TimestampUTC,
		GoVersion:        meta.GoVersion,
		Workers:          workers,
		Size:             size,
		Runs:             runs,
		TotalWallclockNS: total.Nanoseconds(),
		Cells:            cells,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
