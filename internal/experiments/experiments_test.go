package experiments

import (
	"bytes"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/workloads"
)

func tinySuite() *Suite {
	p := Params{Size: workloads.Tiny, Machine: machine.DefaultConfig()}
	p.Machine.CycleLimit = 200_000_000
	return NewSuite(p)
}

func TestRunMemoizes(t *testing.T) {
	s := tinySuite()
	a, err := s.Run(core.KindBaseline, nil, "ssca2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(core.KindBaseline, nil, "ssca2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized result differs")
	}
	if s.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", s.Runs)
	}
}

func TestFig1And4ShareRuns(t *testing.T) {
	s := tinySuite()
	if _, err := s.Fig4(); err != nil {
		t.Fatal(err)
	}
	runsAfter4 := s.Runs
	if _, err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	if s.Runs != runsAfter4 {
		t.Fatalf("Fig1 re-ran cached cells: %d -> %d", runsAfter4, s.Runs)
	}
	// 11 benchmarks x 5 systems.
	if runsAfter4 != 55 {
		t.Fatalf("Fig4 ran %d simulations, want 55", runsAfter4)
	}
}

func TestFig4Shape(t *testing.T) {
	s := tinySuite()
	tab, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline column must be exactly 1 everywhere (self-normalized).
	for _, b := range workloads.AllNames() {
		if got := tab.Get(b, "baseline"); got != 1 {
			t.Fatalf("baseline[%s] = %g, want 1", b, got)
		}
	}
	if tab.Get("gmean", "chats") <= 0 {
		t.Fatal("gmean missing")
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Fatal("table title missing")
	}
}

func TestFig5Tables(t *testing.T) {
	s := tinySuite()
	tabs, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 6 { // summary + 5 systems
		t.Fatalf("Fig5 returned %d tables", len(tabs))
	}
}

func TestFig6Tables(t *testing.T) {
	s := tinySuite()
	tabs, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("Fig6 returned %d tables", len(tabs))
	}
	// Baseline never forwards.
	for _, b := range workloads.AllNames() {
		if tabs[0].Get(b, "forwarder-committed") != 0 {
			t.Fatal("baseline forwarded")
		}
	}
}

func TestFig7(t *testing.T) {
	s := tinySuite()
	tab, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range workloads.AllNames() {
		if tab.Get(b, "baseline") != 1 {
			t.Fatal("baseline flits not self-normalized")
		}
	}
}

func TestFig8RunsAllModes(t *testing.T) {
	s := tinySuite()
	tab, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 6 {
		t.Fatalf("Fig8 cols = %v", tab.Cols)
	}
	for _, b := range workloads.AllNames() {
		if tab.Get(b, "chats-R/W") != 1 {
			t.Fatal("reference column not 1")
		}
	}
}

func TestFig9SingleSystem(t *testing.T) {
	s := tinySuite()
	tabs, err := s.Fig9([]core.Kind{core.KindCHATS})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Cols) != len(Fig9Retries) {
		t.Fatalf("Fig9 shape wrong")
	}
}

func TestFig11(t *testing.T) {
	s := tinySuite()
	tab, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 4 {
		t.Fatalf("Fig11 cols = %v", tab.Cols)
	}
}

func TestPrintTables(t *testing.T) {
	var buf bytes.Buffer
	PrintTableI(&buf, machine.DefaultConfig())
	if err := PrintTableII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "CHATS", "LEVC", "MESI", "crossbar"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	p := Params{Size: workloads.Tiny, Machine: machine.DefaultConfig(), Seeds: 3}
	p.Machine.CycleLimit = 200_000_000
	s := NewSuite(p)
	st, err := s.Run(core.KindCHATS, nil, "ssca2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 3 {
		t.Fatalf("Runs = %d, want 3", s.Runs)
	}
	if st.Cycles == 0 || st.Commits == 0 {
		t.Fatalf("averaged stats empty: %+v", st)
	}
	// Memoized: a second call must not re-run.
	if _, err := s.Run(core.KindCHATS, nil, "ssca2"); err != nil || s.Runs != 3 {
		t.Fatalf("memoization broken: runs=%d err=%v", s.Runs, err)
	}
}
