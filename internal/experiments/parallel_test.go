package experiments

import (
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/telemetry"
	"chats/internal/workloads"
)

// parallelGrid is a small but heterogeneous cell set: every system kind
// of the main matrix across two benchmarks.
func parallelGrid() []cell {
	var cells []cell
	for _, b := range []string{"intruder", "cadd"} {
		for _, k := range mainSystems() {
			cells = append(cells, cell{kind: k, bench: b})
		}
	}
	return cells
}

func gridStats(t *testing.T, p Params) map[runKey]machine.RunStats {
	t.Helper()
	s := NewSuite(p)
	if err := s.prime(parallelGrid()); err != nil {
		t.Fatal(err)
	}
	out := make(map[runKey]machine.RunStats)
	for _, c := range parallelGrid() {
		st, err := s.Run(c.kind, c.traits, c.bench)
		if err != nil {
			t.Fatal(err)
		}
		out[runKey{system: c.kind, traits: traitsKey(c.traits), bench: c.bench}] = st
	}
	return out
}

// TestParallelSweepMatchesSerial is the tentpole determinism guarantee:
// every cell's statistics must be bit-identical between -j 1 and -j N.
// RunStats is a comparable struct (counters and a fixed-size array), so
// == compares every field exactly.
func TestParallelSweepMatchesSerial(t *testing.T) {
	p := DefaultParams()
	p.Size = workloads.Small
	serial := gridStats(t, p)

	for _, workers := range []int{4, 16} {
		pp := p
		pp.Workers = workers
		par := gridStats(t, pp)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(par), len(serial))
		}
		for k, want := range serial {
			if got := par[k]; got != want {
				t.Errorf("workers=%d: cell %+v diverged:\n  serial   %+v\n  parallel %+v", workers, k, want, got)
			}
		}
	}
}

// TestParallelSweepWithTelemetry runs a small sweep at -j 4 with a
// fresh telemetry.Collector per cell via Params.Tracer; under -race
// this checks the documented discipline that collectors are per-run
// state and the Suite's shared bookkeeping is properly locked.
func TestParallelSweepWithTelemetry(t *testing.T) {
	p := DefaultParams()
	p.Size = workloads.Small
	p.Workers = 4
	p.Tracer = func() machine.Tracer {
		return telemetry.New(p.Machine.Cores, telemetry.Options{MaxEvents: 1024})
	}
	s := NewSuite(p)
	if err := s.prime(parallelGrid()); err != nil {
		t.Fatal(err)
	}
	if s.Runs != len(parallelGrid()) {
		t.Fatalf("Runs = %d, want %d", s.Runs, len(parallelGrid()))
	}
	// Traced runs must still produce the untraced results.
	st, err := s.Run(core.KindCHATS, nil, "cadd")
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits == 0 {
		t.Fatal("traced parallel run produced no commits")
	}
}
