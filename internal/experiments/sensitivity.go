package experiments

import (
	"fmt"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/stats"
	"chats/internal/workloads"
)

// Fig8 reproduces the forwarding-eligibility study: CHATS and PCHATS
// with R/W, W and Rrestrict/W block selection, normalized to CHATS with
// R/W (as in the paper).
func (s *Suite) Fig8() (*stats.Table, error) {
	type variant struct {
		col    string
		kind   core.Kind
		mode   htm.ForwardMode
		traits *htm.Traits
	}
	variants := []variant{
		{col: "chats-R/W", kind: core.KindCHATS, mode: htm.ForwardRW},
		{col: "chats-W", kind: core.KindCHATS, mode: htm.ForwardW},
		{col: "chats-Rr/W", kind: core.KindCHATS, mode: htm.ForwardRrestrictW},
		{col: "pchats-R/W", kind: core.KindPCHATS, mode: htm.ForwardRW},
		{col: "pchats-W", kind: core.KindPCHATS, mode: htm.ForwardW},
		{col: "pchats-Rr/W", kind: core.KindPCHATS, mode: htm.ForwardRrestrictW},
	}
	cols := make([]string, len(variants))
	var cells []cell
	for i := range variants {
		v := &variants[i]
		cols[i] = v.col
		p, err := core.New(v.kind)
		if err != nil {
			return nil, err
		}
		tr := p.Traits()
		tr.ForwardMode = v.mode
		v.traits = &tr
		for _, b := range workloads.AllNames() {
			cells = append(cells, cell{kind: v.kind, traits: v.traits, bench: b})
		}
	}
	if err := s.prime(cells); err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 8: blocks eligible for forwarding (normalized to CHATS R/W)",
		workloads.AllNames(), cols)
	for _, b := range workloads.AllNames() {
		var ref uint64
		for i, v := range variants {
			st, err := s.Run(v.kind, v.traits, b)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				ref = st.Cycles
			}
			t.Set(b, v.col, stats.Ratio(st.Cycles, ref))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}

// Fig9Retries is the sweep of Fig. 9.
var Fig9Retries = []int{1, 2, 4, 6, 8, 16, 32, 64}

// Fig9 reproduces the retry-threshold sensitivity: per system, execution
// time for each retry budget, normalized to the baseline at its Table II
// default (6 retries).
func (s *Suite) Fig9(systems []core.Kind) ([]*stats.Table, error) {
	if systems == nil {
		systems = []core.Kind{core.KindBaseline, core.KindCHATS, core.KindPower, core.KindPCHATS}
	}
	cols := make([]string, len(Fig9Retries))
	for i, r := range Fig9Retries {
		cols[i] = fmt.Sprintf("r=%d", r)
	}
	// One traits object per (system, retry budget), shared by priming and
	// the table loops so the memo keys line up.
	traits := make(map[core.Kind][]*htm.Traits, len(systems))
	var cells []cell
	for _, b := range workloads.AllNames() {
		cells = append(cells, cell{kind: core.KindBaseline, bench: b})
	}
	for _, k := range systems {
		p, err := core.New(k)
		if err != nil {
			return nil, err
		}
		for _, r := range Fig9Retries {
			tr := p.Traits()
			tr.Retries = r
			trp := &tr
			traits[k] = append(traits[k], trp)
			for _, b := range workloads.AllNames() {
				cells = append(cells, cell{kind: k, traits: trp, bench: b})
			}
		}
	}
	if err := s.prime(cells); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	for _, k := range systems {
		t := stats.NewTable(fmt.Sprintf("Fig. 9: retry sensitivity, %s (normalized to baseline r=6)", k),
			workloads.AllNames(), cols)
		for _, b := range workloads.AllNames() {
			base, err := s.Run(core.KindBaseline, nil, b)
			if err != nil {
				return nil, err
			}
			for i := range Fig9Retries {
				st, err := s.Run(k, traits[k][i], b)
				if err != nil {
					return nil, err
				}
				t.Set(b, cols[i], stats.Ratio(st.Cycles, base.Cycles))
			}
		}
		t.AddMeanRows(workloads.STAMPNames())
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig. 10 sweep axes.
var (
	Fig10VSBSizes  = []int{1, 2, 4, 8, 16, 32}
	Fig10Intervals = []uint64{50, 100, 200, 400}
)

// Fig10 reproduces the VSB-size × validation-interval heatmaps for
// CHATS: geometric-mean execution time and aborts over the STAMP suite,
// normalized to the bottom-left square (VSB=1, interval=50 cycles).
func (s *Suite) Fig10() ([]*stats.Table, error) {
	rows := make([]string, len(Fig10VSBSizes))
	for i, v := range Fig10VSBSizes {
		rows[i] = fmt.Sprintf("vsb=%d", v)
	}
	cols := make([]string, len(Fig10Intervals))
	for i, iv := range Fig10Intervals {
		cols[i] = fmt.Sprintf("val=%d", iv)
	}
	timeT := stats.NewTable("Fig. 10 (left): execution time vs VSB size and validation interval", rows, cols)
	timeT.Note = "geomean over STAMP, normalized to vsb=1/val=50"
	abortT := stats.NewTable("Fig. 10 (right): aborts vs VSB size and validation interval", rows, cols)
	abortT.Note = "geomean over STAMP, normalized to vsb=1/val=50"

	// One traits object per (vsb, interval) square, shared by priming and
	// the heatmap loop so the memo keys line up.
	p, err := core.New(core.KindCHATS)
	if err != nil {
		return nil, err
	}
	traits := make(map[[2]uint64]*htm.Traits)
	var cells []cell
	for _, vsb := range Fig10VSBSizes {
		for _, iv := range Fig10Intervals {
			tr := p.Traits()
			tr.VSBSize = vsb
			tr.ValidationInterval = iv
			trp := &tr
			traits[[2]uint64{uint64(vsb), iv}] = trp
			for _, b := range workloads.STAMPNames() {
				cells = append(cells, cell{kind: core.KindCHATS, traits: trp, bench: b})
			}
		}
	}
	if err := s.prime(cells); err != nil {
		return nil, err
	}

	square := func(vsb int, iv uint64) (float64, float64, error) {
		var times, aborts []float64
		for _, b := range workloads.STAMPNames() {
			st, err := s.Run(core.KindCHATS, traits[[2]uint64{uint64(vsb), iv}], b)
			if err != nil {
				return 0, 0, err
			}
			times = append(times, float64(st.Cycles))
			aborts = append(aborts, float64(st.Aborts)+1) // +1 keeps geomean defined
		}
		return stats.GeoMean(times), stats.GeoMean(aborts), nil
	}

	refT, refA, err := square(1, 50)
	if err != nil {
		return nil, err
	}
	for _, vsb := range Fig10VSBSizes {
		for _, iv := range Fig10Intervals {
			ct, ca, err := square(vsb, iv)
			if err != nil {
				return nil, err
			}
			timeT.Set(fmt.Sprintf("vsb=%d", vsb), fmt.Sprintf("val=%d", iv), ct/refT)
			abortT.Set(fmt.Sprintf("vsb=%d", vsb), fmt.Sprintf("val=%d", iv), ca/refA)
		}
	}
	return []*stats.Table{timeT, abortT}, nil
}

// Fig11 reproduces the comparison against LEVC-BE-Idealized.
func (s *Suite) Fig11() (*stats.Table, error) {
	return s.normTimeTable("Fig. 11: CHATS vs LEVC-BE-Idealized",
		[]core.Kind{core.KindBaseline, core.KindLEVC, core.KindCHATS, core.KindPCHATS})
}
