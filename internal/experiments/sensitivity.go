package experiments

import (
	"fmt"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/stats"
	"chats/internal/workloads"
)

// Fig8 reproduces the forwarding-eligibility study: CHATS and PCHATS
// with R/W, W and Rrestrict/W block selection, normalized to CHATS with
// R/W (as in the paper).
func (s *Suite) Fig8() (*stats.Table, error) {
	type variant struct {
		col  string
		kind core.Kind
		mode htm.ForwardMode
	}
	variants := []variant{
		{"chats-R/W", core.KindCHATS, htm.ForwardRW},
		{"chats-W", core.KindCHATS, htm.ForwardW},
		{"chats-Rr/W", core.KindCHATS, htm.ForwardRrestrictW},
		{"pchats-R/W", core.KindPCHATS, htm.ForwardRW},
		{"pchats-W", core.KindPCHATS, htm.ForwardW},
		{"pchats-Rr/W", core.KindPCHATS, htm.ForwardRrestrictW},
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.col
	}
	t := stats.NewTable("Fig. 8: blocks eligible for forwarding (normalized to CHATS R/W)",
		workloads.AllNames(), cols)
	for _, b := range workloads.AllNames() {
		var ref uint64
		for i, v := range variants {
			p, err := core.New(v.kind)
			if err != nil {
				return nil, err
			}
			tr := p.Traits()
			tr.ForwardMode = v.mode
			st, err := s.Run(v.kind, &tr, b)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				ref = st.Cycles
			}
			t.Set(b, v.col, stats.Ratio(st.Cycles, ref))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}

// Fig9Retries is the sweep of Fig. 9.
var Fig9Retries = []int{1, 2, 4, 6, 8, 16, 32, 64}

// Fig9 reproduces the retry-threshold sensitivity: per system, execution
// time for each retry budget, normalized to the baseline at its Table II
// default (6 retries).
func (s *Suite) Fig9(systems []core.Kind) ([]*stats.Table, error) {
	if systems == nil {
		systems = []core.Kind{core.KindBaseline, core.KindCHATS, core.KindPower, core.KindPCHATS}
	}
	cols := make([]string, len(Fig9Retries))
	for i, r := range Fig9Retries {
		cols[i] = fmt.Sprintf("r=%d", r)
	}
	var tables []*stats.Table
	for _, k := range systems {
		t := stats.NewTable(fmt.Sprintf("Fig. 9: retry sensitivity, %s (normalized to baseline r=6)", k),
			workloads.AllNames(), cols)
		for _, b := range workloads.AllNames() {
			base, err := s.Run(core.KindBaseline, nil, b)
			if err != nil {
				return nil, err
			}
			for i, r := range Fig9Retries {
				p, err := core.New(k)
				if err != nil {
					return nil, err
				}
				tr := p.Traits()
				tr.Retries = r
				st, err := s.Run(k, &tr, b)
				if err != nil {
					return nil, err
				}
				t.Set(b, cols[i], stats.Ratio(st.Cycles, base.Cycles))
			}
		}
		t.AddMeanRows(workloads.STAMPNames())
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig. 10 sweep axes.
var (
	Fig10VSBSizes  = []int{1, 2, 4, 8, 16, 32}
	Fig10Intervals = []uint64{50, 100, 200, 400}
)

// Fig10 reproduces the VSB-size × validation-interval heatmaps for
// CHATS: geometric-mean execution time and aborts over the STAMP suite,
// normalized to the bottom-left square (VSB=1, interval=50 cycles).
func (s *Suite) Fig10() ([]*stats.Table, error) {
	rows := make([]string, len(Fig10VSBSizes))
	for i, v := range Fig10VSBSizes {
		rows[i] = fmt.Sprintf("vsb=%d", v)
	}
	cols := make([]string, len(Fig10Intervals))
	for i, iv := range Fig10Intervals {
		cols[i] = fmt.Sprintf("val=%d", iv)
	}
	timeT := stats.NewTable("Fig. 10 (left): execution time vs VSB size and validation interval", rows, cols)
	timeT.Note = "geomean over STAMP, normalized to vsb=1/val=50"
	abortT := stats.NewTable("Fig. 10 (right): aborts vs VSB size and validation interval", rows, cols)
	abortT.Note = "geomean over STAMP, normalized to vsb=1/val=50"

	cell := func(vsb int, iv uint64) (float64, float64, error) {
		var times, aborts []float64
		for _, b := range workloads.STAMPNames() {
			p, err := core.New(core.KindCHATS)
			if err != nil {
				return 0, 0, err
			}
			tr := p.Traits()
			tr.VSBSize = vsb
			tr.ValidationInterval = iv
			st, err := s.Run(core.KindCHATS, &tr, b)
			if err != nil {
				return 0, 0, err
			}
			times = append(times, float64(st.Cycles))
			aborts = append(aborts, float64(st.Aborts)+1) // +1 keeps geomean defined
		}
		return stats.GeoMean(times), stats.GeoMean(aborts), nil
	}

	refT, refA, err := cell(1, 50)
	if err != nil {
		return nil, err
	}
	for _, vsb := range Fig10VSBSizes {
		for _, iv := range Fig10Intervals {
			ct, ca, err := cell(vsb, iv)
			if err != nil {
				return nil, err
			}
			timeT.Set(fmt.Sprintf("vsb=%d", vsb), fmt.Sprintf("val=%d", iv), ct/refT)
			abortT.Set(fmt.Sprintf("vsb=%d", vsb), fmt.Sprintf("val=%d", iv), ca/refA)
		}
	}
	return []*stats.Table{timeT, abortT}, nil
}

// Fig11 reproduces the comparison against LEVC-BE-Idealized.
func (s *Suite) Fig11() (*stats.Table, error) {
	return s.normTimeTable("Fig. 11: CHATS vs LEVC-BE-Idealized",
		[]core.Kind{core.KindBaseline, core.KindLEVC, core.KindCHATS, core.KindPCHATS})
}
