package experiments

import (
	"bytes"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/machine"
	"chats/internal/workloads"
)

// The canonical soak must come back clean: every system × micro bench
// under the full fault plan with invariants and the watchdog armed.
func TestFaultSoakClean(t *testing.T) {
	if testing.Short() {
		t.Skip("fault soak is the long path; covered by the full run")
	}
	p := Params{
		Size:            workloads.Tiny,
		Machine:         machine.DefaultConfig(),
		Workers:         4,
		WatchdogCycles:  5_000_000,
		CellCycleBudget: 200_000_000,
	}
	rep := FaultSoak(p, nil)
	if want := len(mainSystems()) * len(workloads.MicroNames()); len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Failures() {
		t.Errorf("cell %s/%s failed: %v", c.System, c.Bench, c.Err)
	}
	var injected uint64
	for _, c := range rep.Cells {
		injected += c.Stats.FaultsInjected
	}
	if injected == 0 {
		t.Fatal("soak injected no faults")
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "all") || !strings.Contains(buf.String(), "clean") {
		t.Errorf("report verdict missing:\n%s", buf.String())
	}
}

// A failing cell must carry its identity and the fault plan in the error
// so the exact run can be reproduced from the message alone.
func TestCellErrorCarriesIdentityAndPlan(t *testing.T) {
	plan := faults.SoakPlan()
	cfg := machine.DefaultConfig()
	p := Params{
		Size:            workloads.Tiny,
		Machine:         cfg,
		Faults:          &plan,
		CellCycleBudget: 1_000, // far too small: the cell must die on the cycle limit
	}
	s := NewSuite(p)
	_, err := s.Run(core.KindCHATS, nil, "cadd")
	if err == nil {
		t.Fatal("expected a cycle-budget failure")
	}
	msg := err.Error()
	for _, want := range []string{"chats", "cadd", "seed", "spurious"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error lacks %q: %s", want, msg)
		}
	}
}

// The soak must be bit-deterministic in the worker count: the same seed
// produces identical per-cell stats (fault counts included) whether the
// grid runs on one worker or many.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the soak column twice")
	}
	base := Params{
		Size:           workloads.Tiny,
		Machine:        machine.DefaultConfig(),
		WatchdogCycles: 10_000_000,
	}
	p1 := base
	p1.Workers = 1
	pn := base
	pn.Workers = 4
	r1 := FaultSoak(p1, []string{"cadd"})
	rn := FaultSoak(pn, []string{"cadd"})
	if len(r1.Cells) != len(rn.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(r1.Cells), len(rn.Cells))
	}
	for i := range r1.Cells {
		a, b := r1.Cells[i], rn.Cells[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("cell %s/%s errored: j1=%v jN=%v", a.System, a.Bench, a.Err, b.Err)
		}
		if a.Stats != b.Stats {
			t.Errorf("cell %s/%s differs between -j1 and -j4:\nj1 %+v\njN %+v",
				a.System, a.Bench, a.Stats, b.Stats)
		}
	}
}

// Params.Faults must change the cells' execution (and the stat must fold
// through averaging) while Params.Invariants rides along cleanly.
func TestParamsFaultsAndInvariants(t *testing.T) {
	plan := faults.SoakPlan()
	p := Params{
		Size:       workloads.Tiny,
		Machine:    machine.DefaultConfig(),
		Seeds:      2,
		Faults:     &plan,
		Invariants: true,
	}
	s := NewSuite(p)
	st, err := s.Run(core.KindCHATS, nil, "cadd")
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("faulted run reports zero injected faults")
	}
}

// The main figure matrix must also hold up with the invariant checker
// attached to every cell: zero violations across all systems and
// benches (acceptance: the clean sweep self-checks, not just the soak).
func TestFigureSweepWithInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix sweep; covered by the full run")
	}
	p := Params{
		Size:       workloads.Tiny,
		Machine:    machine.DefaultConfig(),
		Workers:    4,
		Invariants: true,
	}
	p.Machine.CycleLimit = 200_000_000
	s := NewSuite(p)
	if _, err := s.Fig4(); err != nil {
		t.Fatalf("Fig4 with invariants on: %v", err)
	}
}
