// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII). Each FigN function returns text tables whose
// rows/series match what the paper plots; cmd/chats-experiments prints
// them and EXPERIMENTS.md records the comparison against the paper.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/htm"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/stats"
	"chats/internal/sweep"
	"chats/internal/workloads"
)

// Params configures a suite run.
type Params struct {
	// Size selects the workload scale (medium regenerates the figures).
	Size workloads.Size
	// Machine is the base Table I configuration.
	Machine machine.Config
	// Seeds is the number of seeds each cell is averaged over (0 or 1 =
	// single run with Machine.Seed).
	Seeds int
	// Verbose, when non-nil, receives a progress line per simulation.
	// Under Workers > 1 the lines appear in completion order, but every
	// cell's statistics are identical to a serial run (each cell owns its
	// engine, machine and workload, so results are bit-reproducible
	// regardless of scheduling).
	Verbose io.Writer
	// Workers bounds how many simulation cells the figure functions run
	// concurrently (0 or 1 = serial; cmd/chats-experiments wires -j
	// here). Only wall clock changes with Workers — never results.
	Workers int
	// Tracer, when non-nil, builds a fresh tracer per simulation. A
	// telemetry.Collector is per-run state and must NOT be shared across
	// parallel cells; this factory makes one collector per cell instead.
	Tracer func() machine.Tracer
	// Faults, when non-nil, injects the plan into every cell (each cell
	// derives its injector stream from its own seed, so -j keeps runs
	// bit-identical).
	Faults *faults.Plan
	// Invariants attaches a fresh invariant.Checker to every cell; a
	// violation fails that cell with the checker's diagnostic.
	Invariants bool
	// WatchdogCycles arms the per-cell livelock watchdog (0 = off).
	WatchdogCycles uint64
	// CellCycleBudget, when non-zero, overrides Machine.CycleLimit per
	// cell so soak runs bound their worst case.
	CellCycleBudget uint64
	// Progress, when non-nil, receives live done/total updates while a
	// figure grid primes (the CLIs wire -progress here). Each grid
	// restarts the count; calls are serialized by the sweep pool.
	Progress sweep.Progress
	// Recorder, when non-nil, receives one runstore.Record per completed
	// simulation — the persistence seam the -store flags hook up
	// (runstore.Store.Recorder stamps commit metadata and appends).
	// Called from worker goroutines, so it must be safe for concurrent
	// use; recording is per-run, never per-event, so it costs the
	// simulation hot path nothing.
	Recorder func(runstore.Record)
}

// DefaultParams returns the figure-regeneration setup.
func DefaultParams() Params {
	return Params{Size: workloads.Medium, Machine: machine.DefaultConfig()}
}

type runKey struct {
	system core.Kind
	traits string // fingerprint of trait overrides ("" = Table II default)
	bench  string
}

// Suite runs (and memoizes) simulations; the main-matrix runs are shared
// by Figs. 1, 4, 5, 6 and 7, like the artifact's config.chats.main.py.
// The figure functions fan their cells out over Params.Workers
// goroutines; the Suite's shared state (cache, Runs, bench log, Verbose
// writer) is mutex-guarded, while each simulation itself is confined to
// one goroutine.
type Suite struct {
	p     Params
	mu    sync.Mutex // guards cache, Runs, bench, Verbose output
	cache map[runKey]machine.RunStats
	// Runs counts distinct simulations executed.
	Runs  int
	bench []CellBench
}

// NewSuite builds an empty suite.
func NewSuite(p Params) *Suite {
	return &Suite{p: p, cache: make(map[runKey]machine.RunStats)}
}

// cell identifies one simulation of a figure grid before it runs.
type cell struct {
	kind   core.Kind
	traits *htm.Traits
	bench  string
}

// prime simulates every not-yet-cached cell of a figure, fanning them
// out over Params.Workers goroutines. The figure functions call it
// before building their tables, so the table loops below always hit the
// cache and stay strictly ordered; only the simulations themselves run
// concurrently. Duplicate cells (shared baselines) are deduplicated, so
// Runs counts exactly the distinct simulations.
func (s *Suite) prime(cells []cell) error {
	var todo []cell
	seen := make(map[runKey]bool, len(cells))
	s.mu.Lock()
	for _, c := range cells {
		k := runKey{system: c.kind, traits: traitsKey(c.traits), bench: c.bench}
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := s.cache[k]; ok {
			continue
		}
		todo = append(todo, c)
	}
	s.mu.Unlock()
	if len(todo) == 0 {
		return nil
	}
	var verbose sweep.Progress
	if s.p.Verbose != nil && s.p.Workers > 1 {
		verbose = func(done, total int) {
			s.mu.Lock() // all Verbose writes go through s.mu
			fmt.Fprintf(s.p.Verbose, "sweep: %d/%d cells\n", done, total)
			s.mu.Unlock()
		}
	}
	progress := verbose
	switch {
	case s.p.Progress != nil && verbose != nil:
		progress = func(done, total int) {
			verbose(done, total)
			s.p.Progress(done, total)
		}
	case s.p.Progress != nil:
		progress = s.p.Progress
	}
	return sweep.Map(s.p.Workers, len(todo), progress, func(i int) error {
		_, err := s.Run(todo[i].kind, todo[i].traits, todo[i].bench)
		return err
	})
}

func traitsKey(t *htm.Traits) string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("r%d-v%d-i%d-f%d-n%d-p%v",
		t.Retries, t.VSBSize, t.ValidationInterval, t.ForwardMode, t.NaiveBudget, t.UsesPower)
}

// TraitsKey is the canonical fingerprint of trait overrides ("" for the
// Table II defaults) — the Config component of a run-store key, shared
// by every entry point so records from chatsim and the figure suite
// land under the same identity.
func TraitsKey(t *htm.Traits) string { return traitsKey(t) }

// ConfigKey combines the trait fingerprint with the machine's
// fallback/cm/backoff knob spec — the Config component of a run-store
// key for entry points that may override either. Defaults collapse to
// "" so records from knobless runs keep their historical identity.
func ConfigKey(t *htm.Traits, cfg machine.Config) string {
	tk := traitsKey(t)
	kk := cfg.KnobsKey()
	switch {
	case tk == "":
		return kk
	case kk == "":
		return tk
	}
	return tk + " " + kk
}

// Run simulates one (system, traits, bench) cell, memoized, averaging
// over Params.Seeds seeds. Safe for concurrent use; callers that need a
// whole grid should go through the figure functions (which prime the
// cache in parallel) rather than racing duplicate cells here.
func (s *Suite) Run(kind core.Kind, traits *htm.Traits, bench string) (machine.RunStats, error) {
	k := runKey{system: kind, traits: traitsKey(traits), bench: bench}
	s.mu.Lock()
	if st, ok := s.cache[k]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	seeds := s.p.Seeds
	if seeds < 1 {
		seeds = 1
	}
	var runs []machine.RunStats
	for i := 0; i < seeds; i++ {
		st, err := s.runOnce(kind, traits, bench, s.p.Machine.Seed+uint64(i), seeds > 1)
		if err != nil {
			return machine.RunStats{}, err
		}
		runs = append(runs, st)
	}
	st := average(runs)
	s.mu.Lock()
	s.cache[k] = st
	if s.p.Verbose != nil {
		fmt.Fprintf(s.p.Verbose, "ran %-18s %-10s %12d cycles  %6d commits  %6d aborts\n",
			kind, bench, st.Cycles, st.Commits, st.Aborts)
	}
	s.mu.Unlock()
	return st, nil
}

func (s *Suite) runOnce(kind core.Kind, traits *htm.Traits, bench string, seed uint64, labelSeed bool) (machine.RunStats, error) {
	w, err := workloads.New(bench, s.p.Size)
	if err != nil {
		return machine.RunStats{}, err
	}
	var policy htm.Policy
	if traits != nil {
		policy, err = core.NewWith(kind, *traits)
	} else {
		policy, err = core.New(kind)
	}
	if err != nil {
		return machine.RunStats{}, err
	}
	cfg := s.p.Machine
	cfg.Seed = seed
	cfg.Faults = s.p.Faults
	if s.p.WatchdogCycles > 0 {
		cfg.WatchdogCycles = s.p.WatchdogCycles
	}
	if s.p.CellCycleBudget > 0 {
		cfg.CycleLimit = s.p.CellCycleBudget
	}
	m, err := machine.New(cfg, policy)
	if err != nil {
		return machine.RunStats{}, err
	}
	var tracers []machine.Tracer
	if s.p.Tracer != nil {
		if t := s.p.Tracer(); t != nil {
			tracers = append(tracers, t)
		}
	}
	var chk *invariant.Checker
	if s.p.Invariants {
		chk = invariant.New()
		tracers = append(tracers, chk)
	}
	switch len(tracers) {
	case 0:
	case 1:
		m.SetTracer(tracers[0])
	default:
		m.SetTracer(machine.MultiTracer(tracers))
	}
	rec := beginCellBench(cellName(kind, traits, bench, seed, labelSeed))
	st, err := m.Run(w)
	if err == nil && chk != nil {
		err = chk.Err()
	}
	if err != nil {
		// Cell identity plus fault plan: a soak failure must be
		// reproducible from the message alone.
		name := cellName(kind, traits, bench, seed, labelSeed)
		if s.p.Faults != nil {
			return machine.RunStats{}, fmt.Errorf("cell %s (seed %d, faults %q): %w",
				name, seed, s.p.Faults.String(), err)
		}
		return machine.RunStats{}, fmt.Errorf("cell %s (seed %d): %w", name, seed, err)
	}
	rec.finish(st.Cycles)
	rec.bench.WaveEvents, rec.bench.Waves, rec.bench.SerialEvents = m.WaveStats()
	if s.p.Recorder != nil {
		r := runstore.FromStats(st, string(kind), seed, ConfigKey(traits, cfg),
			s.p.Size.String(), rec.bench.WallclockNS, rec.bench.Allocs)
		r.StampEngine(m.IntraWorkers())
		r.StampDirBanks(m.DirBanks())
		r.StampWaves(rec.bench.WaveEvents, rec.bench.Waves, rec.bench.SerialEvents)
		s.p.Recorder(r)
	}
	s.mu.Lock()
	s.Runs++
	s.bench = append(s.bench, rec.bench)
	s.mu.Unlock()
	return st, nil
}

// average folds per-seed runs into one RunStats with mean counts (the
// figure-relevant fields).
func average(runs []machine.RunStats) machine.RunStats {
	if len(runs) == 1 {
		return runs[0]
	}
	n := uint64(len(runs))
	out := runs[0]
	agg := func(get func(*machine.RunStats) *uint64) {
		var sum uint64
		for i := range runs {
			sum += *get(&runs[i])
		}
		*get(&out) = sum / n
	}
	agg(func(r *machine.RunStats) *uint64 { return &r.Cycles })
	agg(func(r *machine.RunStats) *uint64 { return &r.Commits })
	agg(func(r *machine.RunStats) *uint64 { return &r.Aborts })
	// Fold causes in ascending index order so the per-cause tables (and
	// their goldens) come out byte-stable run over run.
	for c := 0; c < htm.NumCauses; c++ {
		c := c
		agg(func(r *machine.RunStats) *uint64 { return &r.ByCause[c] })
	}
	agg(func(r *machine.RunStats) *uint64 { return &r.Fallbacks })
	agg(func(r *machine.RunStats) *uint64 { return &r.PowerAcqs })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConflictedCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConflictedAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ForwarderCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ForwarderAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConsumerCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConsumerAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.SpecRespsSent })
	agg(func(r *machine.RunStats) *uint64 { return &r.SpecRespsConsumed })
	agg(func(r *machine.RunStats) *uint64 { return &r.Validations })
	agg(func(r *machine.RunStats) *uint64 { return &r.ValidationsOK })
	agg(func(r *machine.RunStats) *uint64 { return &r.Flits })
	agg(func(r *machine.RunStats) *uint64 { return &r.Messages })
	agg(func(r *machine.RunStats) *uint64 { return &r.L1Hits })
	agg(func(r *machine.RunStats) *uint64 { return &r.L1Misses })
	agg(func(r *machine.RunStats) *uint64 { return &r.FaultsInjected })
	return out
}

// mainSystems are the Fig. 4–7 series.
func mainSystems() []core.Kind {
	return []core.Kind{core.KindBaseline, core.KindNaiveRS, core.KindCHATS, core.KindPower, core.KindPCHATS}
}

func sysNames(ks []core.Kind) []string {
	ns := make([]string, len(ks))
	for i, k := range ks {
		ns[i] = string(k)
	}
	return ns
}

// mainMatrixCells enumerates the (systems × benchmarks) grid plus the
// baseline column the normalizations divide by.
func mainMatrixCells(systems []core.Kind) []cell {
	var cells []cell
	for _, b := range workloads.AllNames() {
		cells = append(cells, cell{kind: core.KindBaseline, bench: b})
		for _, k := range systems {
			cells = append(cells, cell{kind: k, bench: b})
		}
	}
	return cells
}

// normTimeTable builds a rows=benchmarks, cols=systems table of execution
// time normalized to the baseline, with means over the STAMP subset.
func (s *Suite) normTimeTable(title string, systems []core.Kind) (*stats.Table, error) {
	if err := s.prime(mainMatrixCells(systems)); err != nil {
		return nil, err
	}
	t := stats.NewTable(title, workloads.AllNames(), sysNames(systems))
	t.Note = "execution time normalized to baseline (lower is better); means over STAMP only"
	for _, b := range workloads.AllNames() {
		base, err := s.Run(core.KindBaseline, nil, b)
		if err != nil {
			return nil, err
		}
		for _, k := range systems {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			t.Set(b, string(k), stats.Ratio(st.Cycles, base.Cycles))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}

// Fig1 reproduces the motivation figure: a naive requester-speculates
// implementation vs the best-effort baseline.
func (s *Suite) Fig1() (*stats.Table, error) {
	return s.normTimeTable("Fig. 1: naive requester-speculates vs baseline",
		[]core.Kind{core.KindBaseline, core.KindNaiveRS})
}

// Fig4 reproduces the headline execution-time comparison.
func (s *Suite) Fig4() (*stats.Table, error) {
	return s.normTimeTable("Fig. 4: execution time", mainSystems())
}

// Fig5 reproduces the abort counts split by cause: one summary table
// (total aborted transactions normalized to baseline) plus one absolute
// per-cause table per system.
func (s *Suite) Fig5() ([]*stats.Table, error) {
	if err := s.prime(mainMatrixCells(mainSystems())); err != nil {
		return nil, err
	}
	summary := stats.NewTable("Fig. 5: aborted transactions (normalized to baseline)",
		workloads.AllNames(), sysNames(mainSystems()))
	var tables []*stats.Table
	causeCols := make([]string, 0, htm.NumCauses-1)
	for c := 1; c < htm.NumCauses; c++ {
		causeCols = append(causeCols, htm.AbortCause(c).String())
	}
	for _, k := range mainSystems() {
		ct := stats.NewTable(fmt.Sprintf("Fig. 5 detail: %s aborts by cause", k),
			workloads.AllNames(), causeCols)
		ct.Format = "%.0f"
		for _, b := range workloads.AllNames() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			base, err := s.Run(core.KindBaseline, nil, b)
			if err != nil {
				return nil, err
			}
			summary.Set(b, string(k), stats.Ratio(st.Aborts, base.Aborts))
			for c := 1; c < htm.NumCauses; c++ {
				ct.Set(b, htm.AbortCause(c).String(), float64(st.ByCause[c]))
			}
		}
		tables = append(tables, ct)
	}
	summary.AddMeanRows(workloads.STAMPNames())
	return append([]*stats.Table{summary}, tables...), nil
}

// Fig6 reproduces the conflicted/forwarder transaction outcome split:
// for each system, the fraction of executed transactions that conflicted
// (and, where applicable, forwarded), split by commit/abort.
func (s *Suite) Fig6() ([]*stats.Table, error) {
	if err := s.prime(mainMatrixCells(mainSystems())); err != nil {
		return nil, err
	}
	var tables []*stats.Table
	cols := []string{"conflicted-committed", "conflicted-aborted", "forwarder-committed", "forwarder-aborted"}
	for _, k := range mainSystems() {
		t := stats.NewTable(fmt.Sprintf("Fig. 6: conflicting/forwarding transactions under %s", k),
			workloads.AllNames(), cols)
		t.Note = "fraction of executed transaction attempts"
		for _, b := range workloads.AllNames() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			exec := st.Commits + st.Aborts
			t.Set(b, "conflicted-committed", stats.Ratio(st.ConflictedCommitted, exec))
			t.Set(b, "conflicted-aborted", stats.Ratio(st.ConflictedAborted, exec))
			t.Set(b, "forwarder-committed", stats.Ratio(st.ForwarderCommitted, exec))
			t.Set(b, "forwarder-aborted", stats.Ratio(st.ForwarderAborted, exec))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 reproduces the normalized network usage in flits.
func (s *Suite) Fig7() (*stats.Table, error) {
	if err := s.prime(mainMatrixCells(mainSystems())); err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 7: network usage (flits, normalized to baseline)",
		workloads.AllNames(), sysNames(mainSystems()))
	for _, b := range workloads.AllNames() {
		base, err := s.Run(core.KindBaseline, nil, b)
		if err != nil {
			return nil, err
		}
		for _, k := range mainSystems() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			t.Set(b, string(k), stats.Ratio(st.Flits, base.Flits))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}
