// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII). Each FigN function returns text tables whose
// rows/series match what the paper plots; cmd/chats-experiments prints
// them and EXPERIMENTS.md records the comparison against the paper.
package experiments

import (
	"fmt"
	"io"

	"chats/internal/core"
	"chats/internal/htm"
	"chats/internal/machine"
	"chats/internal/stats"
	"chats/internal/workloads"
)

// Params configures a suite run.
type Params struct {
	// Size selects the workload scale (medium regenerates the figures).
	Size workloads.Size
	// Machine is the base Table I configuration.
	Machine machine.Config
	// Seeds is the number of seeds each cell is averaged over (0 or 1 =
	// single run with Machine.Seed).
	Seeds int
	// Verbose, when non-nil, receives a progress line per simulation.
	Verbose io.Writer
}

// DefaultParams returns the figure-regeneration setup.
func DefaultParams() Params {
	return Params{Size: workloads.Medium, Machine: machine.DefaultConfig()}
}

type runKey struct {
	system core.Kind
	traits string // fingerprint of trait overrides ("" = Table II default)
	bench  string
}

// Suite runs (and memoizes) simulations; the main-matrix runs are shared
// by Figs. 1, 4, 5, 6 and 7, like the artifact's config.chats.main.py.
type Suite struct {
	p     Params
	cache map[runKey]machine.RunStats
	// Runs counts distinct simulations executed.
	Runs int
}

// NewSuite builds an empty suite.
func NewSuite(p Params) *Suite {
	return &Suite{p: p, cache: make(map[runKey]machine.RunStats)}
}

func traitsKey(t *htm.Traits) string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("r%d-v%d-i%d-f%d-n%d-p%v",
		t.Retries, t.VSBSize, t.ValidationInterval, t.ForwardMode, t.NaiveBudget, t.UsesPower)
}

// Run simulates one (system, traits, bench) cell, memoized, averaging
// over Params.Seeds seeds.
func (s *Suite) Run(kind core.Kind, traits *htm.Traits, bench string) (machine.RunStats, error) {
	k := runKey{system: kind, traits: traitsKey(traits), bench: bench}
	if st, ok := s.cache[k]; ok {
		return st, nil
	}
	seeds := s.p.Seeds
	if seeds < 1 {
		seeds = 1
	}
	var runs []machine.RunStats
	for i := 0; i < seeds; i++ {
		st, err := s.runOnce(kind, traits, bench, s.p.Machine.Seed+uint64(i))
		if err != nil {
			return machine.RunStats{}, err
		}
		runs = append(runs, st)
	}
	st := average(runs)
	s.cache[k] = st
	if s.p.Verbose != nil {
		fmt.Fprintf(s.p.Verbose, "ran %-18s %-10s %12d cycles  %6d commits  %6d aborts\n",
			kind, bench, st.Cycles, st.Commits, st.Aborts)
	}
	return st, nil
}

func (s *Suite) runOnce(kind core.Kind, traits *htm.Traits, bench string, seed uint64) (machine.RunStats, error) {
	w, err := workloads.New(bench, s.p.Size)
	if err != nil {
		return machine.RunStats{}, err
	}
	var policy htm.Policy
	if traits != nil {
		policy, err = core.NewWith(kind, *traits)
	} else {
		policy, err = core.New(kind)
	}
	if err != nil {
		return machine.RunStats{}, err
	}
	cfg := s.p.Machine
	cfg.Seed = seed
	m, err := machine.New(cfg, policy)
	if err != nil {
		return machine.RunStats{}, err
	}
	st, err := m.Run(w)
	if err != nil {
		return machine.RunStats{}, err
	}
	s.Runs++
	return st, nil
}

// average folds per-seed runs into one RunStats with mean counts (the
// figure-relevant fields).
func average(runs []machine.RunStats) machine.RunStats {
	if len(runs) == 1 {
		return runs[0]
	}
	n := uint64(len(runs))
	out := runs[0]
	agg := func(get func(*machine.RunStats) *uint64) {
		var sum uint64
		for i := range runs {
			sum += *get(&runs[i])
		}
		*get(&out) = sum / n
	}
	agg(func(r *machine.RunStats) *uint64 { return &r.Cycles })
	agg(func(r *machine.RunStats) *uint64 { return &r.Commits })
	agg(func(r *machine.RunStats) *uint64 { return &r.Aborts })
	for c := range out.ByCause {
		c := c
		agg(func(r *machine.RunStats) *uint64 { return &r.ByCause[c] })
	}
	agg(func(r *machine.RunStats) *uint64 { return &r.Fallbacks })
	agg(func(r *machine.RunStats) *uint64 { return &r.PowerAcqs })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConflictedCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConflictedAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ForwarderCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ForwarderAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConsumerCommitted })
	agg(func(r *machine.RunStats) *uint64 { return &r.ConsumerAborted })
	agg(func(r *machine.RunStats) *uint64 { return &r.SpecRespsSent })
	agg(func(r *machine.RunStats) *uint64 { return &r.SpecRespsConsumed })
	agg(func(r *machine.RunStats) *uint64 { return &r.Validations })
	agg(func(r *machine.RunStats) *uint64 { return &r.ValidationsOK })
	agg(func(r *machine.RunStats) *uint64 { return &r.Flits })
	agg(func(r *machine.RunStats) *uint64 { return &r.Messages })
	agg(func(r *machine.RunStats) *uint64 { return &r.L1Hits })
	agg(func(r *machine.RunStats) *uint64 { return &r.L1Misses })
	return out
}

// mainSystems are the Fig. 4–7 series.
func mainSystems() []core.Kind {
	return []core.Kind{core.KindBaseline, core.KindNaiveRS, core.KindCHATS, core.KindPower, core.KindPCHATS}
}

func sysNames(ks []core.Kind) []string {
	ns := make([]string, len(ks))
	for i, k := range ks {
		ns[i] = string(k)
	}
	return ns
}

// normTimeTable builds a rows=benchmarks, cols=systems table of execution
// time normalized to the baseline, with means over the STAMP subset.
func (s *Suite) normTimeTable(title string, systems []core.Kind) (*stats.Table, error) {
	t := stats.NewTable(title, workloads.AllNames(), sysNames(systems))
	t.Note = "execution time normalized to baseline (lower is better); means over STAMP only"
	for _, b := range workloads.AllNames() {
		base, err := s.Run(core.KindBaseline, nil, b)
		if err != nil {
			return nil, err
		}
		for _, k := range systems {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			t.Set(b, string(k), stats.Ratio(st.Cycles, base.Cycles))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}

// Fig1 reproduces the motivation figure: a naive requester-speculates
// implementation vs the best-effort baseline.
func (s *Suite) Fig1() (*stats.Table, error) {
	return s.normTimeTable("Fig. 1: naive requester-speculates vs baseline",
		[]core.Kind{core.KindBaseline, core.KindNaiveRS})
}

// Fig4 reproduces the headline execution-time comparison.
func (s *Suite) Fig4() (*stats.Table, error) {
	return s.normTimeTable("Fig. 4: execution time", mainSystems())
}

// Fig5 reproduces the abort counts split by cause: one summary table
// (total aborted transactions normalized to baseline) plus one absolute
// per-cause table per system.
func (s *Suite) Fig5() ([]*stats.Table, error) {
	summary := stats.NewTable("Fig. 5: aborted transactions (normalized to baseline)",
		workloads.AllNames(), sysNames(mainSystems()))
	var tables []*stats.Table
	causeCols := make([]string, 0, htm.NumCauses-1)
	for c := 1; c < htm.NumCauses; c++ {
		causeCols = append(causeCols, htm.AbortCause(c).String())
	}
	for _, k := range mainSystems() {
		ct := stats.NewTable(fmt.Sprintf("Fig. 5 detail: %s aborts by cause", k),
			workloads.AllNames(), causeCols)
		ct.Format = "%.0f"
		for _, b := range workloads.AllNames() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			base, err := s.Run(core.KindBaseline, nil, b)
			if err != nil {
				return nil, err
			}
			summary.Set(b, string(k), stats.Ratio(st.Aborts, base.Aborts))
			for c := 1; c < htm.NumCauses; c++ {
				ct.Set(b, htm.AbortCause(c).String(), float64(st.ByCause[c]))
			}
		}
		tables = append(tables, ct)
	}
	summary.AddMeanRows(workloads.STAMPNames())
	return append([]*stats.Table{summary}, tables...), nil
}

// Fig6 reproduces the conflicted/forwarder transaction outcome split:
// for each system, the fraction of executed transactions that conflicted
// (and, where applicable, forwarded), split by commit/abort.
func (s *Suite) Fig6() ([]*stats.Table, error) {
	var tables []*stats.Table
	cols := []string{"conflicted-committed", "conflicted-aborted", "forwarder-committed", "forwarder-aborted"}
	for _, k := range mainSystems() {
		t := stats.NewTable(fmt.Sprintf("Fig. 6: conflicting/forwarding transactions under %s", k),
			workloads.AllNames(), cols)
		t.Note = "fraction of executed transaction attempts"
		for _, b := range workloads.AllNames() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			exec := st.Commits + st.Aborts
			t.Set(b, "conflicted-committed", stats.Ratio(st.ConflictedCommitted, exec))
			t.Set(b, "conflicted-aborted", stats.Ratio(st.ConflictedAborted, exec))
			t.Set(b, "forwarder-committed", stats.Ratio(st.ForwarderCommitted, exec))
			t.Set(b, "forwarder-aborted", stats.Ratio(st.ForwarderAborted, exec))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 reproduces the normalized network usage in flits.
func (s *Suite) Fig7() (*stats.Table, error) {
	t := stats.NewTable("Fig. 7: network usage (flits, normalized to baseline)",
		workloads.AllNames(), sysNames(mainSystems()))
	for _, b := range workloads.AllNames() {
		base, err := s.Run(core.KindBaseline, nil, b)
		if err != nil {
			return nil, err
		}
		for _, k := range mainSystems() {
			st, err := s.Run(k, nil, b)
			if err != nil {
				return nil, err
			}
			t.Set(b, string(k), stats.Ratio(st.Flits, base.Flits))
		}
	}
	t.AddMeanRows(workloads.STAMPNames())
	return t, nil
}
