package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"chats/internal/machine"
	"chats/internal/workloads"
)

// Regenerate with: go test ./internal/experiments -run TestGoldenStats -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json from the current simulator")

// goldenCell pins one (system, bench) cell of the Tiny-size main
// matrix. Commits and fallbacks are exact (they count retired atomic
// blocks, which no timing change may alter); cycles and aborts carry
// tolerance bands so deliberate performance work can move them without
// churning the file, while a real regression still trips the gate.
type goldenCell struct {
	Commits   uint64 `json:"commits"`
	Fallbacks uint64 `json:"fallbacks"`
	Cycles    uint64 `json:"cycles"`
	Aborts    uint64 `json:"aborts"`
}

const (
	goldenPath     = "testdata/golden_stats.json"
	cycleTolerance = 0.10 // ±10%
	abortTolerance = 0.25 // ±25%
	abortSlack     = 5    // absolute slack for near-zero abort counts
)

func goldenKey(system, bench string) string { return system + "/" + bench }

func runGoldenMatrix(t *testing.T) map[string]goldenCell {
	t.Helper()
	s := tinySuite()
	got := make(map[string]goldenCell)
	for _, kind := range mainSystems() {
		for _, bench := range workloads.AllNames() {
			st, err := s.Run(kind, nil, bench)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, bench, err)
			}
			got[goldenKey(string(kind), bench)] = goldenCell{
				Commits:   st.Commits,
				Fallbacks: st.Fallbacks,
				Cycles:    st.Cycles,
				Aborts:    st.Aborts,
			}
		}
	}
	return got
}

func withinBand(got, want uint64, frac float64, slack uint64) bool {
	lo := uint64(float64(want) * (1 - frac))
	hi := uint64(float64(want)*(1+frac)) + slack
	if want > slack && lo > slack {
		lo -= slack
	} else {
		lo = 0
	}
	return got >= lo && got <= hi
}

// runMatrixStats runs the Tiny-size main matrix with the given engine
// worker count and directory bank count, returning the full RunStats
// per cell.
func runMatrixStats(t *testing.T, workers, banks int) map[string]machine.RunStats {
	t.Helper()
	p := Params{Size: workloads.Tiny, Machine: machine.DefaultConfig()}
	p.Machine.CycleLimit = 200_000_000
	p.Machine.IntraWorkers = workers
	p.Machine.DirBanks = banks
	s := NewSuite(p)
	out := make(map[string]machine.RunStats)
	for _, kind := range mainSystems() {
		for _, bench := range workloads.AllNames() {
			st, err := s.Run(kind, nil, bench)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, bench, err)
			}
			out[goldenKey(string(kind), bench)] = st
		}
	}
	return out
}

// TestGoldenStatsIntraParallel re-runs the main matrix with the
// parallel engine (IntraWorkers=4) and demands bit-exact RunStats
// agreement with the serial matrix, cell by cell — a stronger gate than
// the golden tolerance bands, and one -update-golden cannot silence.
// Power-token systems inside the matrix force themselves serial, which
// the comparison covers for free.
func TestGoldenStatsIntraParallel(t *testing.T) {
	serial := runMatrixStats(t, 1, 1)
	parallel := runMatrixStats(t, 4, 1)
	for key, ref := range serial {
		if got := parallel[key]; got != ref {
			t.Errorf("%s: IntraWorkers=4 diverged from serial:\nserial:   %+v\nparallel: %+v",
				key, ref, got)
		}
	}
}

// TestGoldenStatsBanked re-runs the main matrix with the directory
// sharded into four banks (under the parallel engine, where banking
// actually changes the execution schedule) and demands bit-exact
// RunStats agreement with the single-bank serial matrix, plus exact
// commits/fallbacks agreement with the committed golden file. Both
// references are computed or pinned independently of the banked run, so
// -update-golden cannot silence a banking divergence.
func TestGoldenStatsBanked(t *testing.T) {
	serial := runMatrixStats(t, 1, 1)
	banked := runMatrixStats(t, 4, 4)
	for key, ref := range serial {
		if got := banked[key]; got != ref {
			t.Errorf("%s: DirBanks=4 diverged from single-bank serial:\nserial: %+v\nbanked: %+v",
				key, ref, got)
		}
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	var want map[string]goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for key, w := range want {
		g, ok := banked[key]
		if !ok {
			continue // golden covers exactly the main matrix; guarded by TestGoldenStats
		}
		if g.Commits != w.Commits || g.Fallbacks != w.Fallbacks {
			t.Errorf("%s: banked commits/fallbacks %d/%d, golden %d/%d",
				key, g.Commits, g.Fallbacks, w.Commits, w.Fallbacks)
		}
	}
}

// TestGoldenStats is the statistics regression gate: the Tiny-size
// main matrix (5 systems × 11 benchmarks) must reproduce the pinned
// per-cell commits/fallbacks exactly and land cycles/aborts inside the
// tolerance bands. The simulator is bit-deterministic, so a mismatch
// means the simulated machine's behavior changed — either regenerate
// the golden file deliberately (-update-golden) or explain the drift.
func TestGoldenStats(t *testing.T) {
	got := runGoldenMatrix(t)

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenCell, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cells)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	var want map[string]goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, matrix has %d (stale file? -update-golden)", len(want), len(got))
	}

	var failures []string
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: cell missing from matrix", key))
			continue
		}
		if g.Commits != w.Commits {
			failures = append(failures, fmt.Sprintf("%s: commits %d, golden %d", key, g.Commits, w.Commits))
		}
		if g.Fallbacks != w.Fallbacks {
			failures = append(failures, fmt.Sprintf("%s: fallbacks %d, golden %d", key, g.Fallbacks, w.Fallbacks))
		}
		if !withinBand(g.Cycles, w.Cycles, cycleTolerance, 0) {
			failures = append(failures, fmt.Sprintf("%s: cycles %d outside ±%.0f%% of golden %d",
				key, g.Cycles, cycleTolerance*100, w.Cycles))
		}
		if !withinBand(g.Aborts, w.Aborts, abortTolerance, abortSlack) {
			failures = append(failures, fmt.Sprintf("%s: aborts %d outside ±%.0f%%+%d of golden %d",
				key, g.Aborts, abortTolerance*100, abortSlack, w.Aborts))
		}
	}
	sort.Strings(failures)
	for _, f := range failures {
		t.Error(f)
	}
}
