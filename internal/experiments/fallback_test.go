package experiments

import (
	"bytes"
	"strings"
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/workloads"
)

// The acceptance criterion of the fallback matrix: under a lockburst
// soak the STM fallback path keeps >= 2 cores inside fallback bodies
// concurrently while the global lock admits at most one — graceful
// degradation instead of full serialization.
func TestFallbackMatrixGracefulDegradation(t *testing.T) {
	p := Params{
		Size:            workloads.Tiny,
		Machine:         machine.DefaultConfig(),
		Workers:         4,
		CellCycleBudget: 200_000_000,
	}
	rep := FallbackMatrix(p, []string{"cadd"})
	for _, c := range rep.Failures() {
		t.Fatalf("cell %s/%s/%s failed: %v", c.Fallback, c.System, c.Bench, c.Err)
	}
	if want := len(FallbackMatrixPaths()) * 2; len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	for _, k := range []core.Kind{core.KindCHATS, core.KindBaseline} {
		lock := rep.Cell("lock", k, "cadd")
		stm := rep.Cell("stm:locks=256", k, "cadd")
		if lock == nil || stm == nil {
			t.Fatalf("%s: matrix cells missing", k)
		}
		if lock.Stats.Fallbacks == 0 || stm.Stats.Fallbacks == 0 {
			t.Fatalf("%s: matrix never exercised the fallback paths (lock %d, stm %d)",
				k, lock.Stats.Fallbacks, stm.Stats.Fallbacks)
		}
		if c := lock.Concurrency(); c > 1.0 {
			t.Errorf("%s: global lock fallback concurrency %.2f > 1 — the lock must serialize", k, c)
		}
		if c := stm.Concurrency(); c < 2.0 {
			t.Errorf("%s: stm fallback concurrency %.2f < 2 — bodies are not overlapping", k, c)
		}
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "fb-conc") || !strings.Contains(buf.String(), "clean") {
		t.Errorf("report rendering off:\n%s", buf.String())
	}
}

// The matrix must be bit-deterministic in the worker count, like the
// fault soak.
func TestFallbackMatrixDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the matrix twice")
	}
	base := Params{
		Size:            workloads.Tiny,
		Machine:         machine.DefaultConfig(),
		CellCycleBudget: 200_000_000,
	}
	p1, pn := base, base
	p1.Workers = 1
	pn.Workers = 4
	r1 := FallbackMatrix(p1, []string{"cadd"})
	rn := FallbackMatrix(pn, []string{"cadd"})
	if len(r1.Cells) != len(rn.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(r1.Cells), len(rn.Cells))
	}
	for i := range r1.Cells {
		a, b := r1.Cells[i], rn.Cells[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("cell %s/%s/%s errored: j1=%v jN=%v", a.Fallback, a.System, a.Bench, a.Err, b.Err)
		}
		if a.Stats != b.Stats {
			t.Errorf("cell %s/%s/%s differs between -j1 and -j4", a.Fallback, a.System, a.Bench)
		}
	}
}

// FaultSoak and FallbackMatrix must persist one record per clean cell
// when a Recorder is attached (the -store wiring), with the fallback
// counters present.
func TestSoakAndMatrixRecord(t *testing.T) {
	var recs []runstore.Record
	p := Params{
		Size:            workloads.Tiny,
		Machine:         machine.DefaultConfig(),
		CellCycleBudget: 200_000_000,
		Recorder:        func(r runstore.Record) { recs = append(recs, r) },
	}
	rep := FallbackMatrix(p, []string{"cadd"})
	if n := len(rep.Cells) - len(rep.Failures()); len(recs) != n {
		t.Fatalf("matrix recorded %d cells, %d ran clean", len(recs), n)
	}
	sawSTM, sawKnob := false, 0
	for _, r := range recs {
		if _, ok := r.Counters["fallback_body_cycles"]; !ok {
			t.Fatalf("record %s/%s lacks fallback_body_cycles", r.System, r.Workload)
		}
		if strings.Contains(r.Config, "fb=") {
			sawKnob++
		}
		if r.Counters["fallback_stm_commits"] > 0 {
			sawSTM = true
		}
	}
	// The lock path is the zero config (its knob key is empty by design);
	// the stm and elide cells must carry theirs.
	if want := len(recs) * 2 / 3; sawKnob != want {
		t.Errorf("%d of %d records carry a fallback knob key, want %d", sawKnob, len(recs), want)
	}
	if !sawSTM {
		t.Error("no record carries STM fallback commits")
	}

	recs = nil
	soak := FaultSoak(p, []string{"cadd"})
	if n := len(soak.Cells) - len(soak.Failures()); len(recs) != n {
		t.Fatalf("soak recorded %d cells, %d ran clean", len(recs), n)
	}
	for _, r := range recs {
		if r.Counters["faults_injected"] == 0 && r.Counters["commits"] == 0 {
			t.Errorf("soak record %s/%s looks empty", r.System, r.Workload)
		}
	}
}
