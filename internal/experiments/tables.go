package experiments

import (
	"fmt"
	"io"

	"chats/internal/core"
	"chats/internal/machine"
)

// PrintTableI dumps the Table I system parameters of a machine config.
func PrintTableI(w io.Writer, cfg machine.Config) {
	fmt.Fprintln(w, "== Table I: system parameters ==")
	fmt.Fprintf(w, "cores                 %d (in-order timing model; see DESIGN.md)\n", cfg.Cores)
	fmt.Fprintf(w, "L1 D cache            %d KiB, %d-way, %d-cycle hit\n", cfg.L1Size/1024, cfg.L1Ways, cfg.L1Latency)
	fmt.Fprintf(w, "L2 (private)          %d-cycle lookup on L1 miss\n", cfg.L2Latency)
	fmt.Fprintf(w, "L3/directory (shared) %d-cycle access\n", cfg.LLCLatency)
	fmt.Fprintf(w, "memory                %d-cycle first-touch fill\n", cfg.DRAMLatency)
	fmt.Fprintf(w, "protocol              MESI, directory-based, blocking\n")
	fmt.Fprintf(w, "network               crossbar, %d-cycle links, 1 flit control / 5 flits data\n", cfg.LinkLatency)
	fmt.Fprintf(w, "HTM primitives        begin %d, commit %d, abort %d cycles\n",
		cfg.BeginLatency, cfg.CommitLatency, cfg.AbortLatency)
	fmt.Fprintln(w)
}

// PrintTableII dumps the per-system Table II configurations.
func PrintTableII(w io.Writer) error {
	fmt.Fprintln(w, "== Table II: HTM system configurations ==")
	fmt.Fprintf(w, "%-18s %-12s %8s %9s %14s\n", "system", "blocks", "retries", "VSB size", "cycles valid.")
	for _, k := range core.Kinds() {
		p, err := core.New(k)
		if err != nil {
			return err
		}
		t := p.Traits()
		blocks, vsb, valid := "NA", "NA", "NA"
		if t.UsesVSB {
			blocks = t.ForwardMode.String()
			vsb = fmt.Sprintf("%d", t.VSBSize)
			valid = fmt.Sprintf("%d", t.ValidationInterval)
		}
		fmt.Fprintf(w, "%-18s %-12s %8d %9s %14s\n", p.Name(), blocks, t.Retries, vsb, valid)
	}
	fmt.Fprintln(w)
	return nil
}
