package experiments

import (
	"fmt"
	"io"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/invariant"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/sweep"
	"chats/internal/workloads"
)

// SoakCell is one (system, bench) cell of a fault soak.
type SoakCell struct {
	System core.Kind
	Bench  string
	Stats  machine.RunStats
	Err    error
}

// SoakReport collects a full fault-soak sweep. Unlike the figure
// functions, a soak never stops at the first failure: every cell runs
// (sweep.MapAll) and the report keeps all outcomes.
type SoakReport struct {
	Plan  faults.Plan
	Cells []SoakCell
}

// Failures returns the cells that errored, in grid order.
func (r *SoakReport) Failures() []SoakCell {
	var out []SoakCell
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// Write renders the soak outcome as one line per cell plus a verdict.
func (r *SoakReport) Write(w io.Writer) {
	fmt.Fprintf(w, "fault soak: plan %q\n", r.Plan.String())
	for _, c := range r.Cells {
		if c.Err != nil {
			fmt.Fprintf(w, "  FAIL %-10s %-10s %v\n", c.System, c.Bench, c.Err)
			continue
		}
		fmt.Fprintf(w, "  ok   %-10s %-10s %10d cycles %8d commits %8d aborts %8d faults\n",
			c.System, c.Bench, c.Stats.Cycles, c.Stats.Commits, c.Stats.Aborts, c.Stats.FaultsInjected)
	}
	if n := len(r.Failures()); n > 0 {
		fmt.Fprintf(w, "fault soak: %d of %d cells FAILED\n", n, len(r.Cells))
		return
	}
	fmt.Fprintf(w, "fault soak: all %d cells clean (invariants on)\n", len(r.Cells))
}

// FaultSoak runs every system × bench cell under the fault plan with the
// invariant checker and the livelock watchdog armed, and reports every
// cell's outcome. p.Faults defaults to faults.SoakPlan(); p.Size,
// p.Workers and p.Machine are honored; benches defaults to the
// microbenchmarks (the forwarding-heavy subset).
func FaultSoak(p Params, benches []string) *SoakReport {
	plan := faults.SoakPlan()
	if p.Faults != nil {
		plan = *p.Faults
	}
	if len(benches) == 0 {
		benches = workloads.MicroNames()
	}
	systems := mainSystems()
	var cells []SoakCell
	for _, b := range benches {
		for _, k := range systems {
			cells = append(cells, SoakCell{System: k, Bench: b})
		}
	}
	var progress sweep.Progress
	if p.Verbose != nil {
		progress = func(done, total int) {
			fmt.Fprintf(p.Verbose, "soak: %d/%d cells\n", done, total)
		}
	}
	errs := sweep.MapAll(p.Workers, len(cells), progress, func(i int) error {
		c := &cells[i]
		w, err := workloads.New(c.Bench, p.Size)
		if err != nil {
			return err
		}
		policy, err := core.New(c.System)
		if err != nil {
			return err
		}
		cfg := p.Machine
		cfg.Faults = &plan
		if p.WatchdogCycles > 0 {
			cfg.WatchdogCycles = p.WatchdogCycles
		}
		if p.CellCycleBudget > 0 {
			cfg.CycleLimit = p.CellCycleBudget
		}
		m, err := machine.New(cfg, policy)
		if err != nil {
			return err
		}
		chk := invariant.New()
		m.SetTracer(chk)
		rec := beginCellBench(fmt.Sprintf("%s/%s", c.System, c.Bench))
		st, err := m.Run(w)
		if err == nil {
			err = chk.Err()
		}
		if err != nil {
			return fmt.Errorf("cell %s/%s (seed %d, faults %q): %w",
				c.System, c.Bench, cfg.Seed, plan.String(), err)
		}
		rec.finish(st.Cycles)
		if p.Recorder != nil {
			r := runstore.FromStats(st, string(c.System), cfg.Seed, ConfigKey(nil, cfg),
				p.Size.String(), rec.bench.WallclockNS, rec.bench.Allocs)
			r.StampEngine(m.IntraWorkers())
			r.StampDirBanks(m.DirBanks())
			r.StampWaves(m.WaveStats())
			p.Recorder(r)
		}
		c.Stats = st
		return nil
	})
	for i := range cells {
		cells[i].Err = errs[i]
	}
	return &SoakReport{Plan: plan, Cells: cells}
}
