package experiments

import (
	"fmt"
	"io"

	"chats/internal/core"
	"chats/internal/faults"
	"chats/internal/machine"
	"chats/internal/runstore"
	"chats/internal/sweep"
	"chats/internal/workloads"
)

// FallbackBurstSpec is the default fault plan of the fallback matrix: a
// lockburst-only soak that stretches every global-lock critical section,
// the failure mode the alternative fallback paths exist to survive.
const FallbackBurstSpec = "lockburst:p=0.5,cycles=2000"

// FallbackMatrixPaths are the three fallback paths the matrix sweeps.
// The STM path gets a wide lock table so false version-lock sharing
// never masks the concurrency it is supposed to demonstrate; elide gets
// a small budget so its extensions actually run out under a burst.
func FallbackMatrixPaths() []string {
	return []string{"lock", "stm:locks=256", "elide:budget=2"}
}

// fallbackMatrixSystems are the matrix's conflict-resolution series:
// CHATS and the requester-wins baseline.
func fallbackMatrixSystems() []core.Kind {
	return []core.Kind{core.KindCHATS, core.KindBaseline}
}

// fallbackRetries is the forced per-transaction retry budget of every
// matrix cell: contended blocks must reach the fallback path quickly or
// the matrix would mostly measure hardware commits.
const fallbackRetries = 1

// FallbackCell is one (fallback path, system, bench) cell.
type FallbackCell struct {
	Fallback string
	System   core.Kind
	Bench    string
	Stats    machine.RunStats
	Err      error
}

// Concurrency is the cell's average fallback concurrency: the integral
// of cores inside a fallback body over the run, divided by its length.
// The global lock admits at most one body at a time (<= 1 by
// construction); the STM path overlapping non-conflicting bodies pushes
// it past 1.
func (c *FallbackCell) Concurrency() float64 {
	if c.Stats.Cycles == 0 {
		return 0
	}
	return float64(c.Stats.FallbackBodyCycles) / float64(c.Stats.Cycles)
}

// FallbackReport is the full matrix outcome.
type FallbackReport struct {
	Plan  faults.Plan
	Cells []FallbackCell
}

// Failures returns the cells that errored, in grid order.
func (r *FallbackReport) Failures() []FallbackCell {
	var out []FallbackCell
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// Cell returns the matrix cell for (fallback, system, bench), nil when
// absent.
func (r *FallbackReport) Cell(fb string, k core.Kind, bench string) *FallbackCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Fallback == fb && c.System == k && c.Bench == bench {
			return c
		}
	}
	return nil
}

// Write renders the matrix, one line per cell, with the fallback
// concurrency as the headline column.
func (r *FallbackReport) Write(w io.Writer) {
	fmt.Fprintf(w, "fallback matrix: plan %q, retries forced to %d\n", r.Plan.String(), fallbackRetries)
	fmt.Fprintf(w, "  %-16s %-10s %-8s %12s %9s %10s %12s %8s\n",
		"fallback", "system", "bench", "cycles", "commits", "fallbacks", "stm-commits", "fb-conc")
	for _, c := range r.Cells {
		if c.Err != nil {
			fmt.Fprintf(w, "  FAIL %-11s %-10s %-8s %v\n", c.Fallback, c.System, c.Bench, c.Err)
			continue
		}
		fmt.Fprintf(w, "  %-16s %-10s %-8s %12d %9d %10d %12d %8.2f\n",
			c.Fallback, c.System, c.Bench, c.Stats.Cycles, c.Stats.Commits,
			c.Stats.Fallbacks, c.Stats.FallbackSTMCommits, c.Concurrency())
	}
	if n := len(r.Failures()); n > 0 {
		fmt.Fprintf(w, "fallback matrix: %d of %d cells FAILED\n", n, len(r.Cells))
		return
	}
	fmt.Fprintf(w, "fallback matrix: all %d cells clean\n", len(r.Cells))
}

// FallbackMatrix sweeps (fallback path × system × bench) under a
// lockburst fault plan with the retry budget forced down, so nearly
// every contended block exercises its fallback path. p.Faults overrides
// the plan; benches defaults to the microbenchmarks; p.Size, p.Workers,
// p.Machine, p.CellCycleBudget and p.Recorder are honored. Like
// FaultSoak, every cell runs and the report keeps all outcomes.
func FallbackMatrix(p Params, benches []string) *FallbackReport {
	plan, err := faults.Parse(FallbackBurstSpec)
	if err != nil {
		panic("experiments: FallbackBurstSpec does not parse: " + err.Error())
	}
	if p.Faults != nil {
		plan = *p.Faults
	}
	if len(benches) == 0 {
		benches = workloads.MicroNames()
	}
	var cells []FallbackCell
	for _, fb := range FallbackMatrixPaths() {
		for _, k := range fallbackMatrixSystems() {
			for _, b := range benches {
				cells = append(cells, FallbackCell{Fallback: fb, System: k, Bench: b})
			}
		}
	}
	var progress sweep.Progress
	if p.Verbose != nil {
		progress = func(done, total int) {
			fmt.Fprintf(p.Verbose, "fallback-matrix: %d/%d cells\n", done, total)
		}
	}
	errs := sweep.MapAll(p.Workers, len(cells), progress, func(i int) error {
		c := &cells[i]
		w, err := workloads.New(c.Bench, p.Size)
		if err != nil {
			return err
		}
		base, err := core.New(c.System)
		if err != nil {
			return err
		}
		traits := base.Traits()
		traits.Retries = fallbackRetries
		policy, err := core.NewWith(c.System, traits)
		if err != nil {
			return err
		}
		cfg := p.Machine
		cfg.Faults = &plan
		cfg.Fallback, err = machine.ParseFallback(c.Fallback)
		if err != nil {
			return err
		}
		if p.WatchdogCycles > 0 {
			cfg.WatchdogCycles = p.WatchdogCycles
		}
		if p.CellCycleBudget > 0 {
			cfg.CycleLimit = p.CellCycleBudget
		}
		m, err := machine.New(cfg, policy)
		if err != nil {
			return err
		}
		rec := beginCellBench(fmt.Sprintf("%s/%s/%s", c.Fallback, c.System, c.Bench))
		st, err := m.Run(w)
		if err != nil {
			return fmt.Errorf("cell %s/%s/%s (seed %d, faults %q): %w",
				c.Fallback, c.System, c.Bench, cfg.Seed, plan.String(), err)
		}
		rec.finish(st.Cycles)
		if p.Recorder != nil {
			r := runstore.FromStats(st, string(c.System), cfg.Seed, ConfigKey(&traits, cfg),
				p.Size.String(), rec.bench.WallclockNS, rec.bench.Allocs)
			r.StampEngine(m.IntraWorkers())
			r.StampDirBanks(m.DirBanks())
			r.StampWaves(m.WaveStats())
			p.Recorder(r)
		}
		c.Stats = st
		return nil
	})
	for i := range cells {
		cells[i].Err = errs[i]
	}
	return &FallbackReport{Plan: plan, Cells: cells}
}
