package coherence

import (
	"fmt"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// MaxCores is the widest sharer set the directory tracks (sharerSet is a
// fixed 256-bit set so line metadata stays pointer-free and poolable).
const MaxCores = 256

// MaxBanks caps the bank count at the memory shard count, so two lines
// owned by different banks always live in different mem.Memory shards
// and concurrently executing banks never share a map.
const MaxBanks = 256

// Config holds the directory/memory timing parameters (Table I) and the
// bank layout.
type Config struct {
	// LLCLatency is the shared-LLC/directory access latency charged on
	// every request that reaches the directory.
	LLCLatency uint64
	// DRAMLatency is charged the first time a line is touched (cold miss
	// filled from main memory).
	DRAMLatency uint64

	// Banks is the number of independent address-interleaved directory
	// banks (power of two, <= MaxBanks; 0 means 1). Each bank owns the
	// full per-line state — MESI entry, blocking queue, in-flight flow
	// pools — for the lines hashing to it, so banks never share mutable
	// state.
	Banks int
	// FirstDomain, when non-zero, gives bank i the scheduling domain
	// FirstDomain+i so directory actions for distinct banks run in
	// parallel under the intra-run parallel engine. Zero keeps every
	// bank on sim.DomainSerial (bit-identical, fully serial — the
	// correct default for direct-construction tests).
	FirstDomain sim.Domain

	// CoreDomain, when non-nil, maps a core ID to the scheduling domain
	// its deliveries (responses through RespSlot, probes) should execute
	// in — the machine wires the node domains here so deliveries join
	// the destination's wave instead of serializing the frame. Nil
	// delivers everything core-bound into sim.DomainSerial (the correct
	// default for direct-construction tests, whose handlers are not
	// domain-owned).
	CoreDomain func(core int) sim.Domain
}

// Stats counts directory activity.
type Stats struct {
	GetS        uint64
	GetX        uint64
	Forwards    uint64 // probes sent to exclusive owners
	Invs        uint64 // invalidation probes sent to sharers
	SpecCancels uint64 // requests cancelled by a speculative forwarding
	Nacks       uint64 // requests nacked by their responder
	Writebacks  uint64
	DRAMFills   uint64
}

// add folds o into s.
func (s *Stats) add(o *Stats) {
	s.GetS += o.GetS
	s.GetX += o.GetX
	s.Forwards += o.Forwards
	s.Invs += o.Invs
	s.SpecCancels += o.SpecCancels
	s.Nacks += o.Nacks
	s.Writebacks += o.Writebacks
	s.DRAMFills += o.DRAMFills
}

// BankOf returns the bank in [0, banks) owning the line containing a.
// banks must be a power of two <= MaxBanks. It is mem.LineShard, the one
// address hash shared with the memory's internal sharding.
func BankOf(a mem.Addr, banks int) int { return mem.LineShard(a, banks) }

type dirState uint8

const (
	dirI dirState = iota
	dirS
	dirE // exclusive at owner (cache side may be E or M)
)

// sharerSet is a fixed bitset over core IDs (up to MaxCores).
type sharerSet [MaxCores / 64]uint64

func (s *sharerSet) set(i int)      { s[i>>6] |= 1 << uint(i&63) }
func (s *sharerSet) clear(i int)    { s[i>>6] &^= 1 << uint(i&63) }
func (s *sharerSet) has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

func (s *sharerSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// onlyMember reports whether no core other than id is in the set.
func (s *sharerSet) onlyMember(id int) bool {
	for w, word := range s {
		if w == id>>6 {
			word &^= 1 << uint(id&63)
		}
		if word != 0 {
			return false
		}
	}
	return true
}

// queuedReq is one request parked behind a busy line.
type queuedReq struct {
	isX  bool
	line mem.Addr
	req  ReqInfo
	resp RespHandler
}

type dirLine struct {
	state   dirState
	owner   int
	sharers sharerSet
	busy    bool
	queue   []queuedReq
	inLLC   bool
}

// dirBank is one address-interleaved home-node bank. It owns every line
// hashing to it — MESI state, the blocking request queue, the in-flight
// flow objects and their free lists, a Stats shard, and a network
// endpoint — so two banks share no mutable state and their events can
// execute concurrently in distinct domains.
type dirBank struct {
	d     *Directory
	idx   int
	dom   sim.Domain
	sched sim.Sched
	ep    network.Endpoint
	lines map[mem.Addr]*dirLine
	stats Stats

	// Free lists for the pooled flow/message objects below. Every
	// request hop used to capture its state in a fresh closure; the
	// pools plus sim.Runner dispatch make the whole request path
	// allocation-free in steady state.
	freeMsgs []*dirMsg
	freeFwds []*fwdFlow
	freeInvC []*invCollect
	freeInvT []*invTarget

	// forceNack, when non-nil, overrides the Directory-wide ForceNack
	// seam for this bank only (fault plans with a bank= selector).
	forceNack func(req ReqInfo) bool
}

// Directory is the home node for every line: MESI state, the LLC/memory
// data image, and the blocking request queue per line, sharded into
// independent address-interleaved banks. The public API is unchanged
// from the single-bank directory — every call dispatches on the line
// address — and a 1-bank directory behaves exactly as before.
type Directory struct {
	eng    *sim.Engine
	net    *network.Network
	memory *mem.Memory
	cores  []Core
	cfg    Config
	banks  []*dirBank

	// ForceNack, when non-nil, is consulted for every transactional
	// request before it is admitted; returning true bounces the request
	// with RespNack without touching line state. The fault injector uses
	// it to model an overloaded home node. Non-transactional requests are
	// never force-nacked: the machine's non-speculative paths do not
	// retry nacks, and sparing them preserves forward progress. A
	// per-bank override installed with SetBankForceNack takes precedence
	// for its bank.
	ForceNack func(req ReqInfo) bool
}

// NewDirectory builds the home node. cores may be populated later via
// AttachCores (the machine wires cores and directory together).
func NewDirectory(eng *sim.Engine, net *network.Network, memory *mem.Memory, cfg Config) *Directory {
	nbanks := cfg.Banks
	if nbanks == 0 {
		nbanks = 1
	}
	if nbanks < 0 || nbanks > MaxBanks || nbanks&(nbanks-1) != 0 {
		panic(fmt.Sprintf("coherence: bank count %d not a power of two in [1, %d]", nbanks, MaxBanks))
	}
	d := &Directory{eng: eng, net: net, memory: memory, cfg: cfg}
	for i := 0; i < nbanks; i++ {
		dom := sim.DomainSerial
		if cfg.FirstDomain != sim.DomainSerial {
			dom = cfg.FirstDomain + sim.Domain(i)
		}
		sched := eng.NewSched(dom)
		d.banks = append(d.banks, &dirBank{
			d:     d,
			idx:   i,
			dom:   dom,
			sched: sched,
			ep:    net.NewEndpoint(sched),
			lines: make(map[mem.Addr]*dirLine),
		})
	}
	return d
}

// AttachCores registers the core controllers the directory can probe.
func (d *Directory) AttachCores(cores []Core) {
	if len(cores) > MaxCores {
		panic(fmt.Sprintf("coherence: %d cores exceeds MaxCores=%d", len(cores), MaxCores))
	}
	d.cores = cores
}

// NumBanks returns the bank count.
func (d *Directory) NumBanks() int { return len(d.banks) }

// BankIndex returns the bank owning the line containing a.
func (d *Directory) BankIndex(a mem.Addr) int { return BankOf(a, len(d.banks)) }

// bankFor returns the bank owning the line containing a.
func (d *Directory) bankFor(a mem.Addr) *dirBank { return d.banks[d.BankIndex(a)] }

// BankDomain returns the scheduling domain of the bank owning the line
// containing a (DomainSerial unless per-bank domains are configured).
// The machine targets directory-bound messages at this domain so
// requests to distinct banks execute in parallel.
func (d *Directory) BankDomain(a mem.Addr) sim.Domain { return d.bankFor(a).dom }

// coreDom returns the delivery domain for core-bound messages to core i.
func (d *Directory) coreDom(i int) sim.Domain {
	if d.cfg.CoreDomain == nil {
		return sim.DomainSerial
	}
	return d.cfg.CoreDomain(i)
}

// SetBankForceNack installs a per-bank override of the ForceNack seam.
// A nil fn removes the override, falling back to the directory-wide
// hook.
func (d *Directory) SetBankForceNack(bank int, fn func(req ReqInfo) bool) {
	d.banks[bank].forceNack = fn
}

// TotalStats sums the per-bank stats shards.
func (d *Directory) TotalStats() Stats {
	var s Stats
	for _, b := range d.banks {
		s.add(&b.stats)
	}
	return s
}

// BankStats returns one bank's stats shard.
func (d *Directory) BankStats(bank int) Stats { return d.banks[bank].stats }

// BankLines returns how many distinct lines bank tracks, a cheap
// occupancy measure for the per-bank load reports.
func (d *Directory) BankLines(bank int) int { return len(d.banks[bank].lines) }

// NetShards folds the per-bank endpoint counters into the network
// totals; the machine calls it once after a run.
func (d *Directory) NetShards() {
	for _, b := range d.banks {
		d.net.AddShard(&b.ep.Stats)
	}
}

func (b *dirBank) line(a mem.Addr) *dirLine {
	a = a.Line()
	l, ok := b.lines[a]
	if !ok {
		l = &dirLine{state: dirI, owner: -1}
		b.lines[a] = l
	}
	return l
}

// accessLatency charges LLC latency plus a DRAM fill on first touch.
func (b *dirBank) accessLatency(l *dirLine) uint64 {
	lat := b.d.cfg.LLCLatency
	if !l.inLLC {
		l.inLLC = true
		lat += b.d.cfg.DRAMLatency
		b.stats.DRAMFills++
	}
	return lat
}

// ---------- pooled messages ----------

// dirMsg ops. Each value is one kind of directory-side event: a legacy
// response delivery at the requester, a queued-request restart, a
// post-latency state-transition arm, or a requester's unblock. Probe
// deliveries and flow-internal cancellations need no dirMsg: the flow
// objects (fwdFlow, invTarget) are their own hop payloads, phase-
// switched, so nothing pooled at a bank ever travels through a core
// domain's executing context.
const (
	mResp        uint8 = iota // deliver resp at a legacy (non-slot) handler
	mStart                    // re-issue a queued GetS/GetX
	mGrantExcl                // serve memory, grant exclusive
	mGrantShared              // serve memory, add sharer
	mFwd                      // forward to the exclusive owner
	mCollect                  // start the invalidation collection
	mUnblockLine              // requester's Unblock message (by address)
)

// dirMsg is the one pooled event payload for directory flows that need
// no per-flow identity; op selects the behavior, the other fields are a
// union over the ops. Each message belongs to (and returns to) the pool
// of the bank that owns its line.
type dirMsg struct {
	b    *dirBank
	op   uint8
	isX  bool
	core int
	line mem.Addr
	l    *dirLine
	req  ReqInfo
	h    RespHandler
	resp Resp
}

func (b *dirBank) newMsg() *dirMsg {
	if n := len(b.freeMsgs); n > 0 {
		m := b.freeMsgs[n-1]
		b.freeMsgs[n-1] = nil
		b.freeMsgs = b.freeMsgs[:n-1]
		return m
	}
	return &dirMsg{b: b}
}

func (b *dirBank) freeMsg(m *dirMsg) {
	m.h = nil
	m.l = nil
	m.resp = Resp{}
	b.freeMsgs = append(b.freeMsgs, m)
}

// sendResp schedules a response delivery at the requester over the
// given message class, through via (nil = the bank's own endpoint;
// only legal from bank or serial execution). A *RespSlot handler is
// the requester-owned fast path: the slot is filled in place and
// delivered into its bound domain, so the response executes as an
// ordinary event of the destination domain. Any other handler (tests'
// RespFunc) takes the legacy pooled-message path into the serial
// domain, which is exactly the old behavior and safe because those
// configurations run the serial engine.
func (b *dirBank) sendResp(via *network.Endpoint, data bool, h RespHandler, r Resp) {
	if via == nil {
		via = &b.ep
	}
	if s, ok := h.(*RespSlot); ok {
		s.resp = r
		if data {
			via.SendDataMsg(s.dom, s)
		} else {
			via.SendControlMsg(s.dom, s)
		}
		return
	}
	m := b.newMsg()
	m.op = mResp
	m.h = h
	m.resp = r
	if data {
		via.SendDataMsg(sim.DomainSerial, m)
	} else {
		via.SendControlMsg(sim.DomainSerial, m)
	}
}

func (m *dirMsg) Run() {
	b := m.b
	switch m.op {
	case mResp:
		h, r := m.h, m.resp
		b.freeMsg(m)
		h.HandleResp(r)
	case mStart:
		isX, line, req, h := m.isX, m.line, m.req, m.h
		b.freeMsg(m)
		if isX {
			b.getX(line, req, h)
		} else {
			b.getS(line, req, h)
		}
	case mGrantExcl:
		line, l, req, h := m.line, m.l, m.req, m.h
		b.freeMsg(m)
		data := b.d.memory.ReadLine(line)
		l.state = dirE
		l.owner = req.ID
		l.sharers = sharerSet{}
		b.sendResp(nil, true, h, Resp{Kind: RespData, Data: data, Excl: true})
	case mGrantShared:
		line, l, req, h := m.line, m.l, m.req, m.h
		b.freeMsg(m)
		data := b.d.memory.ReadLine(line)
		l.sharers.set(req.ID)
		b.sendResp(nil, true, h, Resp{Kind: RespData, Data: data, Excl: false})
	case mFwd:
		f := b.newFwd()
		f.line = m.line
		f.l = m.l
		f.req = m.req
		f.h = m.h
		f.owner = m.core
		f.isX = m.isX
		f.phase = fwdDeliver
		b.freeMsg(m)
		b.ep.SendControlMsg(b.d.coreDom(f.owner), f)
	case mCollect:
		line, l, req, h := m.line, m.l, m.req, m.h
		b.freeMsg(m)
		b.collectInvs(line, l, req, h)
	case mUnblockLine:
		line := m.line
		b.freeMsg(m)
		b.unblock(b.line(line))
	default:
		panic("coherence: unknown dirMsg op")
	}
}

// fwdFlow is the continuation of a request forwarded to an exclusive
// owner: it is the probe's own delivery payload (fwdDeliver phase runs
// in the probed core's domain and invokes HandleProbe), the probe's
// replier, and the payload of every second directory-side hop. The
// reply methods run at the probed core and must not touch bank-owned
// pools or stats shards; arms that need bank-side bookkeeping (the
// spec-cancel and nack cancellations) ship the flow itself back to the
// bank's domain through the replying core's endpoint and do the
// bookkeeping on arrival, which keeps the event sequence (one control
// hop, same delay) identical to the old serial-delivered scheme.
type fwdFlow struct {
	b     *dirBank
	line  mem.Addr
	l     *dirLine
	req   ReqInfo
	h     RespHandler
	owner int
	isX   bool
	phase uint8
	data  mem.Line
}

const (
	fwdMemS       uint8 = iota // GetS data reply: refresh memory, go Shared
	fwdMemX                    // GetX data reply: refresh memory, move ownership
	fwdNoData                  // owner dropped the line: serve memory, grant E
	fwdDeliver                 // deliver the probe at the exclusive owner
	fwdCancelSpec              // bank side of a spec-forwarded cancel: count, unblock
	fwdCancelNack              // bank side of a nack: count, unblock
)

func (b *dirBank) newFwd() *fwdFlow {
	if n := len(b.freeFwds); n > 0 {
		f := b.freeFwds[n-1]
		b.freeFwds[n-1] = nil
		b.freeFwds = b.freeFwds[:n-1]
		return f
	}
	return &fwdFlow{b: b}
}

func (b *dirBank) freeFwd(f *fwdFlow) {
	f.h = nil
	f.l = nil
	b.freeFwds = append(b.freeFwds, f)
}

// via resolves the endpoint a reply's hops travel through: the probed
// core's endpoint normally, the bank's own as the serial-only fallback.
func (f *fwdFlow) via(ep *network.Endpoint) *network.Endpoint {
	if ep == nil {
		return &f.b.ep
	}
	return ep
}

func (f *fwdFlow) ReplyData(via *network.Endpoint, data mem.Line) {
	b := f.b
	ep := f.via(via)
	if f.isX {
		// Ownership moves; memory refreshed so the (possibly
		// transactional) new owner can be silently invalidated.
		b.sendResp(ep, true, f.h, Resp{Kind: RespData, Data: data, Excl: true})
		f.phase = fwdMemX
	} else {
		// Owner keeps a Shared copy; data to requester and to memory.
		b.sendResp(ep, true, f.h, Resp{Kind: RespData, Data: data, Excl: false})
		f.phase = fwdMemS
	}
	f.data = data
	ep.SendDataMsg(b.dom, f)
}

func (f *fwdFlow) ReplyNoData(via *network.Endpoint) {
	f.phase = fwdNoData
	f.via(via).SendControlMsg(f.b.dom, f)
}

func (f *fwdFlow) ReplySpec(via *network.Endpoint, data mem.Line, pic PiC) {
	b := f.b
	ep := f.via(via)
	b.sendResp(ep, true, f.h, Resp{Kind: RespSpec, Data: data, PiC: pic})
	f.phase = fwdCancelSpec // cancel at directory
	ep.SendControlMsg(b.dom, f)
}

func (f *fwdFlow) ReplyNack(via *network.Endpoint) {
	b := f.b
	ep := f.via(via)
	b.sendResp(ep, false, f.h, Resp{Kind: RespNack})
	f.phase = fwdCancelNack
	ep.SendControlMsg(b.dom, f)
}

func (f *fwdFlow) Run() {
	b := f.b
	switch f.phase {
	case fwdMemS:
		b.d.memory.WriteLine(f.line, f.data)
		f.l.state = dirS
		f.l.sharers = sharerSet{}
		f.l.sharers.set(f.owner)
		f.l.sharers.set(f.req.ID)
		f.l.owner = -1
		// requester's Unblock releases the line
		b.freeFwd(f)
	case fwdMemX:
		b.d.memory.WriteLine(f.line, f.data)
		f.l.state = dirE
		f.l.owner = f.req.ID
		f.l.sharers = sharerSet{}
		b.freeFwd(f)
	case fwdNoData:
		data := b.d.memory.ReadLine(f.line)
		f.l.state = dirE
		f.l.owner = f.req.ID
		f.l.sharers = sharerSet{}
		h := f.h
		b.freeFwd(f)
		b.sendResp(nil, true, h, Resp{Kind: RespData, Data: data, Excl: true})
	case fwdDeliver:
		kind := FwdGetS
		if f.isX {
			kind = FwdGetX
		}
		b.d.cores[f.owner].HandleProbe(Probe{Line: f.line, Kind: kind, Req: f.req, Reply: f})
	case fwdCancelSpec:
		b.stats.SpecCancels++
		l := f.l
		b.freeFwd(f)
		b.unblock(l)
	case fwdCancelNack:
		b.stats.Nacks++
		l := f.l
		b.freeFwd(f)
		b.unblock(l)
	default:
		panic("coherence: bad fwdFlow phase")
	}
}

// invCollect aggregates the outcome of the invalidation probes sent on a
// GetX against a Shared line.
type invCollect struct {
	b       *dirBank
	line    mem.Addr
	l       *dirLine
	req     ReqInfo
	h       RespHandler
	pending int
	refused bool
	nacked  bool
	minPiC  PiC
}

func (b *dirBank) newInvC() *invCollect {
	if n := len(b.freeInvC); n > 0 {
		c := b.freeInvC[n-1]
		b.freeInvC[n-1] = nil
		b.freeInvC = b.freeInvC[:n-1]
		return c
	}
	return &invCollect{b: b}
}

func (b *dirBank) freeInvCollect(c *invCollect) {
	c.h = nil
	c.l = nil
	b.freeInvC = append(b.freeInvC, c)
}

func (c *invCollect) done() {
	c.pending--
	if c.pending > 0 {
		return
	}
	b := c.b
	switch {
	case c.nacked:
		b.stats.Nacks++
		b.sendResp(nil, false, c.h, Resp{Kind: RespNack})
		b.unblock(c.l)
	case c.refused:
		b.stats.SpecCancels++
		data := b.d.memory.ReadLine(c.line)
		b.sendResp(nil, true, c.h, Resp{Kind: RespSpec, Data: data, PiC: c.minPiC})
		b.unblock(c.l)
	default:
		data := b.d.memory.ReadLine(c.line)
		c.l.state = dirE
		c.l.owner = c.req.ID
		c.l.sharers = sharerSet{}
		b.sendResp(nil, true, c.h, Resp{Kind: RespData, Data: data, Excl: true})
		// requester's Unblock releases the line
	}
	b.freeInvCollect(c)
}

// invTarget is one sharer's probe delivery payload (invDeliver phase
// runs in the sharer's domain and invokes HandleProbe), its probe
// replier, and the payload of its ack hop back to the directory bank.
// The reply methods run at the probed core and only route the ack; all
// bookkeeping (and the object's recycling) happens bank-side in Run.
type invTarget struct {
	c      *invCollect
	target int
	phase  uint8 // invDeliver | invAck
	act    uint8
	pic    PiC
}

const (
	invDeliver uint8 = iota // deliver the invalidation probe at the sharer
	invAck                  // ack arrived back at the bank
)

const (
	ackInv uint8 = iota // invalidated (or already silently dropped)
	ackSpec
	ackNack
)

func (b *dirBank) newInvT(c *invCollect, target int) *invTarget {
	if n := len(b.freeInvT); n > 0 {
		t := b.freeInvT[n-1]
		b.freeInvT[n-1] = nil
		b.freeInvT = b.freeInvT[:n-1]
		t.c = c
		t.target = target
		t.phase = invDeliver
		return t
	}
	return &invTarget{c: c, target: target, phase: invDeliver}
}

// ack routes the reply back to the owning bank's domain through the
// replying core's endpoint (nil via = the bank's own endpoint, the
// serial-only fallback).
func (t *invTarget) ack(via *network.Endpoint) {
	t.phase = invAck
	b := t.c.b
	if via == nil {
		via = &b.ep
	}
	via.SendControlMsg(b.dom, t)
}

func (t *invTarget) ReplyData(via *network.Endpoint, _ mem.Line) { // invalidated (clean sharer)
	t.act = ackInv
	t.ack(via)
}

// already silently dropped
func (t *invTarget) ReplyNoData(via *network.Endpoint) { t.ReplyData(via, mem.Line{}) }

func (t *invTarget) ReplySpec(via *network.Endpoint, _ mem.Line, pic PiC) {
	t.act = ackSpec
	t.pic = pic
	t.ack(via)
}

func (t *invTarget) ReplyNack(via *network.Endpoint) {
	t.act = ackNack
	t.ack(via)
}

func (t *invTarget) Run() {
	if t.phase == invDeliver {
		c := t.c
		c.b.d.cores[t.target].HandleProbe(Probe{Line: c.line, Kind: InvProbe, Req: c.req, Reply: t})
		return
	}
	c, target, act, pic := t.c, t.target, t.act, t.pic
	t.c = nil
	c.b.freeInvT = append(c.b.freeInvT, t)
	switch act {
	case ackInv:
		c.l.sharers.clear(target)
	case ackSpec:
		c.refused = true
		if pic < c.minPiC {
			c.minPiC = pic
		}
	case ackNack:
		c.nacked = true
	}
	c.done()
}

// ---------- request handling ----------

func (b *dirBank) unblock(l *dirLine) {
	if !l.busy {
		panic("coherence: unblock on non-busy line")
	}
	l.busy = false
	b.startNext(l)
}

// startNext pops the next queued request if the line is free. Called
// from unblock and from the force-nack path: a dequeued request that is
// bounced by ForceNack never reaches unblock, and without this the rest
// of the queue would strand until a new request happened to complete.
func (b *dirBank) startNext(l *dirLine) {
	if !l.busy && len(l.queue) > 0 {
		next := l.queue[0]
		l.queue[0] = queuedReq{}
		l.queue = l.queue[1:]
		m := b.newMsg()
		m.op = mStart
		m.isX = next.isX
		m.line = next.line
		m.req = next.req
		m.h = next.resp
		b.sched.ScheduleRunner(0, m)
	}
}

// Unblock is sent by a requester once it has installed a data response;
// it lets the directory start the next queued request for the line.
// (The call is already network-delayed by the requester.)
func (d *Directory) Unblock(line mem.Addr) {
	b := d.bankFor(line)
	b.unblock(b.line(line))
}

// SendUnblock sends the requester's Unblock message for line over the
// interconnect (control class); the line is released on delivery at its
// bank.
func (d *Directory) SendUnblock(line mem.Addr) {
	b := d.bankFor(line)
	m := b.newMsg()
	m.op = mUnblockLine
	m.line = line
	b.ep.SendControlMsg(b.dom, m)
}

// GetS handles a read request from core req.ID. resp is invoked at the
// requester (network-delayed) with the outcome. On RespData the requester
// must send Unblock after installing the line; RespSpec and RespNack need
// no unblock.
func (d *Directory) GetS(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	d.bankFor(lineAddr).getS(lineAddr, req, resp)
}

// GetX handles a write (or upgrade) request from core req.ID.
func (d *Directory) GetX(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	d.bankFor(lineAddr).getX(lineAddr, req, resp)
}

// shouldForceNack consults the bank's fault seam (per-bank override
// first, then the directory-wide hook).
func (b *dirBank) shouldForceNack(req ReqInfo) bool {
	if !req.IsTx {
		return false
	}
	if b.forceNack != nil {
		return b.forceNack(req)
	}
	return b.d.ForceNack != nil && b.d.ForceNack(req)
}

func (b *dirBank) getS(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	lineAddr = lineAddr.Line()
	l := b.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, queuedReq{isX: false, line: lineAddr, req: req, resp: resp})
		return
	}
	if b.shouldForceNack(req) {
		b.stats.Nacks++
		b.sendResp(nil, false, resp, Resp{Kind: RespNack})
		b.startNext(l)
		return
	}
	b.stats.GetS++
	l.busy = true
	lat := b.accessLatency(l)

	m := b.newMsg()
	m.line = lineAddr
	m.l = l
	m.req = req
	m.h = resp
	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID:
		// Cold line, or the owner silently dropped its copy and is
		// re-requesting: serve memory, grant exclusive.
		m.op = mGrantExcl
	case l.state == dirS:
		m.op = mGrantShared
	case l.state == dirE:
		b.stats.Forwards++
		m.op = mFwd
		m.isX = false
		m.core = l.owner
	}
	b.sched.ScheduleRunner(lat, m)
}

func (b *dirBank) getX(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	lineAddr = lineAddr.Line()
	l := b.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, queuedReq{isX: true, line: lineAddr, req: req, resp: resp})
		return
	}
	if b.shouldForceNack(req) {
		b.stats.Nacks++
		b.sendResp(nil, false, resp, Resp{Kind: RespNack})
		b.startNext(l)
		return
	}
	b.stats.GetX++
	l.busy = true
	lat := b.accessLatency(l)

	m := b.newMsg()
	m.line = lineAddr
	m.l = l
	m.req = req
	m.h = resp
	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID,
		l.state == dirS && l.sharers.onlyMember(req.ID):
		// Free line, silent-drop re-request, or upgrade with no other
		// sharer: grant from memory.
		m.op = mGrantExcl
	case l.state == dirE:
		b.stats.Forwards++
		m.op = mFwd
		m.isX = true
		m.core = l.owner
	case l.state == dirS:
		m.op = mCollect
	}
	b.sched.ScheduleRunner(lat, m)
}

// collectInvs sends invalidation probes to every sharer except the
// requester and aggregates the outcome: all invalidated → exclusive
// grant; any refusal (speculative forwarding by a reader) → SpecResp with
// the committed data and the minimum producer PiC; any nack → RespNack.
func (b *dirBank) collectInvs(lineAddr mem.Addr, l *dirLine, req ReqInfo, resp RespHandler) {
	count := 0
	for i := range b.d.cores {
		if l.sharers.has(i) && i != req.ID {
			count++
		}
	}
	if count == 0 {
		panic("coherence: collectInvs with no targets")
	}
	c := b.newInvC()
	c.line = lineAddr
	c.l = l
	c.req = req
	c.h = resp
	c.pending = count
	c.refused = false
	c.nacked = false
	c.minPiC = PiC(127)
	for i := range b.d.cores {
		if !l.sharers.has(i) || i == req.ID {
			continue
		}
		b.stats.Invs++
		t := b.newInvT(c, i)
		b.ep.SendControlMsg(b.d.coreDom(i), t)
	}
}

// WriteBack delivers an evicted dirty line to memory. cancelled lets the
// evicting core withdraw a writeback that was superseded by a forwarded
// probe served from its writeback buffer.
func (d *Directory) WriteBack(lineAddr mem.Addr, data mem.Line, sender int, cancelled *bool) {
	lineAddr = lineAddr.Line()
	if cancelled != nil && *cancelled {
		return
	}
	b := d.bankFor(lineAddr)
	l := b.line(lineAddr)
	b.stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
	if !l.busy && l.state == dirE && l.owner == sender {
		l.state = dirI
		l.owner = -1
	}
	// If busy, an in-flight flow will establish the next state.
}

// WriteBackData refreshes the memory image with the committed value of a
// line whose ownership the sender keeps — the pre-speculative-write
// writeback of lazy versioning (Section VI-B: "non-speculative values
// are written back to L2 before a block in L1 is speculatively
// modified"). Coherence state is untouched. Must execute in the owning
// bank's domain (or serially); the machine's domain-routed path is
// WriteBackDataAck.
func (d *Directory) WriteBackData(lineAddr mem.Addr, data mem.Line) {
	d.bankFor(lineAddr).stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
}

// WriteBackDataAck is WriteBackData plus the acknowledgement hop back
// to the writer: the bank applies the writeback and sends ack (a
// requester-owned payload, typically the issuing access itself) over
// its own endpoint into ackTo, the writer's domain. Called from the
// owning bank's domain — the writer ships its stWBData event to
// BankDomain(lineAddr) and calls this on arrival, so both the memory
// write and the stats shard stay bank-owned.
func (d *Directory) WriteBackDataAck(lineAddr mem.Addr, data mem.Line, ackTo sim.Domain, ack sim.Runner) {
	b := d.bankFor(lineAddr)
	b.stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
	b.ep.SendControlMsg(ackTo, ack)
}

// DropSharer records that core id silently discarded a Shared copy. The
// baseline protocol does not require this message (sharer lists may be
// stale); it exists for tests that want exact sharer tracking.
func (d *Directory) DropSharer(lineAddr mem.Addr, id int) {
	l := d.bankFor(lineAddr).line(lineAddr)
	if l.state == dirS {
		l.sharers.clear(id)
	}
}

// snapshot helpers for tests.

// StateOf reports the directory state of a line as a string, the owner,
// and the low 64 bits of the sharer bitset (tests address cores 0..63).
func (d *Directory) StateOf(lineAddr mem.Addr) (string, int, uint64) {
	l := d.bankFor(lineAddr).line(lineAddr)
	switch l.state {
	case dirI:
		return "I", -1, 0
	case dirS:
		return "S", -1, l.sharers[0]
	case dirE:
		return "E", l.owner, 0
	}
	panic(fmt.Sprintf("bad dir state %d", l.state))
}

// Busy reports whether the line has a request in flight.
func (d *Directory) Busy(lineAddr mem.Addr) bool {
	return d.bankFor(lineAddr).line(lineAddr).busy
}

// QueuedLen reports how many requests wait in the line's blocking queue.
func (d *Directory) QueuedLen(lineAddr mem.Addr) int {
	return len(d.bankFor(lineAddr).line(lineAddr).queue)
}
