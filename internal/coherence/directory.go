package coherence

import (
	"fmt"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// Config holds the directory/memory timing parameters (Table I).
type Config struct {
	// LLCLatency is the shared-LLC/directory access latency charged on
	// every request that reaches the directory.
	LLCLatency uint64
	// DRAMLatency is charged the first time a line is touched (cold miss
	// filled from main memory).
	DRAMLatency uint64
}

// Stats counts directory activity.
type Stats struct {
	GetS        uint64
	GetX        uint64
	Forwards    uint64 // probes sent to exclusive owners
	Invs        uint64 // invalidation probes sent to sharers
	SpecCancels uint64 // requests cancelled by a speculative forwarding
	Nacks       uint64 // requests nacked by their responder
	Writebacks  uint64
	DRAMFills   uint64
}

type dirState uint8

const (
	dirI dirState = iota
	dirS
	dirE // exclusive at owner (cache side may be E or M)
)

// queuedReq is one request parked behind a busy line.
type queuedReq struct {
	isX  bool
	line mem.Addr
	req  ReqInfo
	resp RespHandler
}

type dirLine struct {
	state   dirState
	owner   int
	sharers uint64 // bitset
	busy    bool
	queue   []queuedReq
	inLLC   bool
}

// Directory is the home node for every line: MESI state, the LLC/memory
// data image, and the blocking request queue per line.
type Directory struct {
	eng *sim.Engine
	// sched stamps the directory's internal flow events with its domain.
	// Today that is the engine's serial domain — every directory event
	// runs alone under intra-run parallelism — but all internal
	// scheduling goes through this seam so per-bank domains only need a
	// handle per bank, not another call-site audit.
	sched  sim.Sched
	net    *network.Network
	memory *mem.Memory
	cores  []Core
	cfg    Config
	lines  map[mem.Addr]*dirLine
	Stats  Stats

	// Free lists for the pooled flow/message objects below. Every
	// request hop used to capture its state in a fresh closure; the
	// pools plus sim.Runner dispatch make the whole request path
	// allocation-free in steady state.
	freeMsgs []*dirMsg
	freeFwds []*fwdFlow
	freeInvC []*invCollect
	freeInvT []*invTarget

	// ForceNack, when non-nil, is consulted for every transactional
	// request before it is admitted; returning true bounces the request
	// with RespNack without touching line state. The fault injector uses
	// it to model an overloaded home node. Non-transactional requests are
	// never force-nacked: the machine's non-speculative paths do not
	// retry nacks, and sparing them preserves forward progress.
	ForceNack func(req ReqInfo) bool
}

// NewDirectory builds the home node. cores may be populated later via
// AttachCores (the machine wires cores and directory together).
func NewDirectory(eng *sim.Engine, net *network.Network, memory *mem.Memory, cfg Config) *Directory {
	return &Directory{
		eng:    eng,
		sched:  eng.NewSched(sim.DomainSerial),
		net:    net,
		memory: memory,
		cfg:    cfg,
		lines:  make(map[mem.Addr]*dirLine),
	}
}

// AttachCores registers the core controllers the directory can probe.
func (d *Directory) AttachCores(cores []Core) { d.cores = cores }

func (d *Directory) line(a mem.Addr) *dirLine {
	a = a.Line()
	l, ok := d.lines[a]
	if !ok {
		l = &dirLine{state: dirI, owner: -1}
		d.lines[a] = l
	}
	return l
}

// accessLatency charges LLC latency plus a DRAM fill on first touch.
func (d *Directory) accessLatency(l *dirLine) uint64 {
	lat := d.cfg.LLCLatency
	if !l.inLLC {
		l.inLLC = true
		lat += d.cfg.DRAMLatency
		d.Stats.DRAMFills++
	}
	return lat
}

// ---------- pooled messages ----------

// dirMsg ops. Each value is one kind of directory-side event: a response
// delivery at the requester, a queued-request restart, a post-latency
// state-transition arm, a probe delivery, or an unblock.
const (
	mResp        uint8 = iota // deliver resp at the requester
	mStart                    // re-issue a queued GetS/GetX
	mGrantExcl                // serve memory, grant exclusive
	mGrantShared              // serve memory, add sharer
	mFwd                      // forward to the exclusive owner
	mCollect                  // start the invalidation collection
	mProbe                    // deliver a probe at a core
	mUnblock                  // release the line (flow-internal cancel paths)
	mUnblockLine              // requester's Unblock message (by address)
)

// dirMsg is the one pooled event payload for directory flows that need
// no per-flow identity; op selects the behavior, the other fields are a
// union over the ops.
type dirMsg struct {
	d    *Directory
	op   uint8
	isX  bool
	core int
	line mem.Addr
	l    *dirLine
	req  ReqInfo
	h    RespHandler
	resp Resp
	p    Probe
}

func (d *Directory) newMsg() *dirMsg {
	if n := len(d.freeMsgs); n > 0 {
		m := d.freeMsgs[n-1]
		d.freeMsgs[n-1] = nil
		d.freeMsgs = d.freeMsgs[:n-1]
		return m
	}
	return &dirMsg{d: d}
}

func (d *Directory) freeMsg(m *dirMsg) {
	m.h = nil
	m.l = nil
	m.p = Probe{}
	m.resp = Resp{}
	d.freeMsgs = append(d.freeMsgs, m)
}

// sendResp schedules a response delivery at the requester over the
// given message class.
func (d *Directory) sendResp(data bool, h RespHandler, r Resp) {
	m := d.newMsg()
	m.op = mResp
	m.h = h
	m.resp = r
	if data {
		d.net.SendDataMsg(m)
	} else {
		d.net.SendControlMsg(m)
	}
}

// sendProbe schedules a probe delivery at a core.
func (d *Directory) sendProbe(core int, p Probe) {
	m := d.newMsg()
	m.op = mProbe
	m.core = core
	m.p = p
	d.net.SendControlMsg(m)
}

func (m *dirMsg) Run() {
	d := m.d
	switch m.op {
	case mResp:
		h, r := m.h, m.resp
		d.freeMsg(m)
		h.HandleResp(r)
	case mStart:
		isX, line, req, h := m.isX, m.line, m.req, m.h
		d.freeMsg(m)
		if isX {
			d.GetX(line, req, h)
		} else {
			d.GetS(line, req, h)
		}
	case mGrantExcl:
		line, l, req, h := m.line, m.l, m.req, m.h
		d.freeMsg(m)
		data := d.memory.ReadLine(line)
		l.state = dirE
		l.owner = req.ID
		l.sharers = 0
		d.sendResp(true, h, Resp{Kind: RespData, Data: data, Excl: true})
	case mGrantShared:
		line, l, req, h := m.line, m.l, m.req, m.h
		d.freeMsg(m)
		data := d.memory.ReadLine(line)
		l.sharers |= bit(req.ID)
		d.sendResp(true, h, Resp{Kind: RespData, Data: data, Excl: false})
	case mFwd:
		f := d.newFwd()
		f.line = m.line
		f.l = m.l
		f.req = m.req
		f.h = m.h
		f.owner = m.core
		f.isX = m.isX
		kind := FwdGetS
		if m.isX {
			kind = FwdGetX
		}
		req := m.req
		d.freeMsg(m)
		d.sendProbe(f.owner, Probe{Line: f.line, Kind: kind, Req: req, Reply: f})
	case mCollect:
		line, l, req, h := m.line, m.l, m.req, m.h
		d.freeMsg(m)
		d.collectInvs(line, l, req, h)
	case mProbe:
		core, p := m.core, m.p
		d.freeMsg(m)
		d.cores[core].HandleProbe(p)
	case mUnblock:
		l := m.l
		d.freeMsg(m)
		d.unblock(l)
	case mUnblockLine:
		line := m.line
		d.freeMsg(m)
		d.Unblock(line)
	default:
		panic("coherence: unknown dirMsg op")
	}
}

// fwdFlow is the continuation of a request forwarded to an exclusive
// owner: it is the probe's replier, and — for the reply arms that need a
// second directory-side hop — its own event payload.
type fwdFlow struct {
	d     *Directory
	line  mem.Addr
	l     *dirLine
	req   ReqInfo
	h     RespHandler
	owner int
	isX   bool
	phase uint8
	data  mem.Line
}

const (
	fwdMemS   uint8 = iota // GetS data reply: refresh memory, go Shared
	fwdMemX                // GetX data reply: refresh memory, move ownership
	fwdNoData              // owner dropped the line: serve memory, grant E
)

func (d *Directory) newFwd() *fwdFlow {
	if n := len(d.freeFwds); n > 0 {
		f := d.freeFwds[n-1]
		d.freeFwds[n-1] = nil
		d.freeFwds = d.freeFwds[:n-1]
		return f
	}
	return &fwdFlow{d: d}
}

func (d *Directory) freeFwd(f *fwdFlow) {
	f.h = nil
	f.l = nil
	d.freeFwds = append(d.freeFwds, f)
}

func (f *fwdFlow) ReplyData(data mem.Line) {
	d := f.d
	if f.isX {
		// Ownership moves; memory refreshed so the (possibly
		// transactional) new owner can be silently invalidated.
		d.sendResp(true, f.h, Resp{Kind: RespData, Data: data, Excl: true})
		f.phase = fwdMemX
	} else {
		// Owner keeps a Shared copy; data to requester and to memory.
		d.sendResp(true, f.h, Resp{Kind: RespData, Data: data, Excl: false})
		f.phase = fwdMemS
	}
	f.data = data
	d.net.SendDataMsg(f)
}

func (f *fwdFlow) ReplyNoData() {
	f.phase = fwdNoData
	f.d.net.SendControlMsg(f)
}

func (f *fwdFlow) ReplySpec(data mem.Line, pic PiC) {
	d := f.d
	d.Stats.SpecCancels++
	d.sendResp(true, f.h, Resp{Kind: RespSpec, Data: data, PiC: pic})
	m := d.newMsg() // cancel at directory
	m.op = mUnblock
	m.l = f.l
	d.net.SendControlMsg(m)
	d.freeFwd(f)
}

func (f *fwdFlow) ReplyNack() {
	d := f.d
	d.Stats.Nacks++
	d.sendResp(false, f.h, Resp{Kind: RespNack})
	m := d.newMsg()
	m.op = mUnblock
	m.l = f.l
	d.net.SendControlMsg(m)
	d.freeFwd(f)
}

func (f *fwdFlow) Run() {
	d := f.d
	switch f.phase {
	case fwdMemS:
		d.memory.WriteLine(f.line, f.data)
		f.l.state = dirS
		f.l.sharers = bit(f.owner) | bit(f.req.ID)
		f.l.owner = -1
		// requester's Unblock releases the line
		d.freeFwd(f)
	case fwdMemX:
		d.memory.WriteLine(f.line, f.data)
		f.l.state = dirE
		f.l.owner = f.req.ID
		f.l.sharers = 0
		d.freeFwd(f)
	case fwdNoData:
		data := d.memory.ReadLine(f.line)
		f.l.state = dirE
		f.l.owner = f.req.ID
		f.l.sharers = 0
		h := f.h
		d.freeFwd(f)
		d.sendResp(true, h, Resp{Kind: RespData, Data: data, Excl: true})
	default:
		panic("coherence: bad fwdFlow phase")
	}
}

// invCollect aggregates the outcome of the invalidation probes sent on a
// GetX against a Shared line.
type invCollect struct {
	d       *Directory
	line    mem.Addr
	l       *dirLine
	req     ReqInfo
	h       RespHandler
	pending int
	refused bool
	nacked  bool
	minPiC  PiC
}

func (d *Directory) newInvC() *invCollect {
	if n := len(d.freeInvC); n > 0 {
		c := d.freeInvC[n-1]
		d.freeInvC[n-1] = nil
		d.freeInvC = d.freeInvC[:n-1]
		return c
	}
	return &invCollect{d: d}
}

func (d *Directory) freeInvCollect(c *invCollect) {
	c.h = nil
	c.l = nil
	d.freeInvC = append(d.freeInvC, c)
}

func (c *invCollect) done() {
	c.pending--
	if c.pending > 0 {
		return
	}
	d := c.d
	switch {
	case c.nacked:
		d.Stats.Nacks++
		d.sendResp(false, c.h, Resp{Kind: RespNack})
		d.unblock(c.l)
	case c.refused:
		d.Stats.SpecCancels++
		data := d.memory.ReadLine(c.line)
		d.sendResp(true, c.h, Resp{Kind: RespSpec, Data: data, PiC: c.minPiC})
		d.unblock(c.l)
	default:
		data := d.memory.ReadLine(c.line)
		c.l.state = dirE
		c.l.owner = c.req.ID
		c.l.sharers = 0
		d.sendResp(true, c.h, Resp{Kind: RespData, Data: data, Excl: true})
		// requester's Unblock releases the line
	}
	d.freeInvCollect(c)
}

// invTarget is one sharer's probe replier and the payload of its ack
// hop back to the directory.
type invTarget struct {
	c      *invCollect
	target int
	act    uint8
	pic    PiC
}

const (
	ackInv uint8 = iota // invalidated (or already silently dropped)
	ackSpec
	ackNack
)

func (d *Directory) newInvT(c *invCollect, target int) *invTarget {
	if n := len(d.freeInvT); n > 0 {
		t := d.freeInvT[n-1]
		d.freeInvT[n-1] = nil
		d.freeInvT = d.freeInvT[:n-1]
		t.c = c
		t.target = target
		return t
	}
	return &invTarget{c: c, target: target}
}

func (t *invTarget) ReplyData(mem.Line) { // invalidated (clean sharer)
	t.act = ackInv
	t.c.d.net.SendControlMsg(t)
}

func (t *invTarget) ReplyNoData() { t.ReplyData(mem.Line{}) } // already silently dropped

func (t *invTarget) ReplySpec(_ mem.Line, pic PiC) {
	t.act = ackSpec
	t.pic = pic
	t.c.d.net.SendControlMsg(t)
}

func (t *invTarget) ReplyNack() {
	t.act = ackNack
	t.c.d.net.SendControlMsg(t)
}

func (t *invTarget) Run() {
	c, target, act, pic := t.c, t.target, t.act, t.pic
	t.c = nil
	c.d.freeInvT = append(c.d.freeInvT, t)
	switch act {
	case ackInv:
		c.l.sharers &^= bit(target)
	case ackSpec:
		c.refused = true
		if pic < c.minPiC {
			c.minPiC = pic
		}
	case ackNack:
		c.nacked = true
	}
	c.done()
}

// ---------- request handling ----------

func (d *Directory) unblock(l *dirLine) {
	if !l.busy {
		panic("coherence: unblock on non-busy line")
	}
	l.busy = false
	d.startNext(l)
}

// startNext pops the next queued request if the line is free. Called
// from unblock and from the force-nack path: a dequeued request that is
// bounced by ForceNack never reaches unblock, and without this the rest
// of the queue would strand until a new request happened to complete.
func (d *Directory) startNext(l *dirLine) {
	if !l.busy && len(l.queue) > 0 {
		next := l.queue[0]
		l.queue[0] = queuedReq{}
		l.queue = l.queue[1:]
		m := d.newMsg()
		m.op = mStart
		m.isX = next.isX
		m.line = next.line
		m.req = next.req
		m.h = next.resp
		d.sched.ScheduleRunner(0, m)
	}
}

// Unblock is sent by a requester once it has installed a data response;
// it lets the directory start the next queued request for the line.
// (The call is already network-delayed by the requester.)
func (d *Directory) Unblock(line mem.Addr) {
	d.unblock(d.line(line))
}

// SendUnblock sends the requester's Unblock message for line over the
// interconnect (control class); the line is released on delivery.
func (d *Directory) SendUnblock(line mem.Addr) {
	m := d.newMsg()
	m.op = mUnblockLine
	m.line = line
	d.net.SendControlMsg(m)
}

func bit(i int) uint64 { return 1 << uint(i) }

// GetS handles a read request from core req.ID. resp is invoked at the
// requester (network-delayed) with the outcome. On RespData the requester
// must send Unblock after installing the line; RespSpec and RespNack need
// no unblock.
func (d *Directory) GetS(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	lineAddr = lineAddr.Line()
	l := d.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, queuedReq{isX: false, line: lineAddr, req: req, resp: resp})
		return
	}
	if d.ForceNack != nil && req.IsTx && d.ForceNack(req) {
		d.Stats.Nacks++
		d.sendResp(false, resp, Resp{Kind: RespNack})
		d.startNext(l)
		return
	}
	d.Stats.GetS++
	l.busy = true
	lat := d.accessLatency(l)

	m := d.newMsg()
	m.line = lineAddr
	m.l = l
	m.req = req
	m.h = resp
	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID:
		// Cold line, or the owner silently dropped its copy and is
		// re-requesting: serve memory, grant exclusive.
		m.op = mGrantExcl
	case l.state == dirS:
		m.op = mGrantShared
	case l.state == dirE:
		d.Stats.Forwards++
		m.op = mFwd
		m.isX = false
		m.core = l.owner
	}
	d.sched.ScheduleRunner(lat, m)
}

// GetX handles a write (or upgrade) request from core req.ID.
func (d *Directory) GetX(lineAddr mem.Addr, req ReqInfo, resp RespHandler) {
	lineAddr = lineAddr.Line()
	l := d.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, queuedReq{isX: true, line: lineAddr, req: req, resp: resp})
		return
	}
	if d.ForceNack != nil && req.IsTx && d.ForceNack(req) {
		d.Stats.Nacks++
		d.sendResp(false, resp, Resp{Kind: RespNack})
		d.startNext(l)
		return
	}
	d.Stats.GetX++
	l.busy = true
	lat := d.accessLatency(l)

	m := d.newMsg()
	m.line = lineAddr
	m.l = l
	m.req = req
	m.h = resp
	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID,
		l.state == dirS && l.sharers&^bit(req.ID) == 0:
		// Free line, silent-drop re-request, or upgrade with no other
		// sharer: grant from memory.
		m.op = mGrantExcl
	case l.state == dirE:
		d.Stats.Forwards++
		m.op = mFwd
		m.isX = true
		m.core = l.owner
	case l.state == dirS:
		m.op = mCollect
	}
	d.sched.ScheduleRunner(lat, m)
}

// collectInvs sends invalidation probes to every sharer except the
// requester and aggregates the outcome: all invalidated → exclusive
// grant; any refusal (speculative forwarding by a reader) → SpecResp with
// the committed data and the minimum producer PiC; any nack → RespNack.
func (d *Directory) collectInvs(lineAddr mem.Addr, l *dirLine, req ReqInfo, resp RespHandler) {
	count := 0
	for i := range d.cores {
		if l.sharers&bit(i) != 0 && i != req.ID {
			count++
		}
	}
	if count == 0 {
		panic("coherence: collectInvs with no targets")
	}
	c := d.newInvC()
	c.line = lineAddr
	c.l = l
	c.req = req
	c.h = resp
	c.pending = count
	c.refused = false
	c.nacked = false
	c.minPiC = PiC(127)
	for i := range d.cores {
		if l.sharers&bit(i) == 0 || i == req.ID {
			continue
		}
		d.Stats.Invs++
		t := d.newInvT(c, i)
		d.sendProbe(i, Probe{Line: lineAddr, Kind: InvProbe, Req: req, Reply: t})
	}
}

// WriteBack delivers an evicted dirty line to memory. cancelled lets the
// evicting core withdraw a writeback that was superseded by a forwarded
// probe served from its writeback buffer.
func (d *Directory) WriteBack(lineAddr mem.Addr, data mem.Line, sender int, cancelled *bool) {
	lineAddr = lineAddr.Line()
	if cancelled != nil && *cancelled {
		return
	}
	l := d.line(lineAddr)
	d.Stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
	if !l.busy && l.state == dirE && l.owner == sender {
		l.state = dirI
		l.owner = -1
	}
	// If busy, an in-flight flow will establish the next state.
}

// WriteBackData refreshes the memory image with the committed value of a
// line whose ownership the sender keeps — the pre-speculative-write
// writeback of lazy versioning (Section VI-B: "non-speculative values
// are written back to L2 before a block in L1 is speculatively
// modified"). Coherence state is untouched.
func (d *Directory) WriteBackData(lineAddr mem.Addr, data mem.Line) {
	d.Stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
}

// DropSharer records that core id silently discarded a Shared copy. The
// baseline protocol does not require this message (sharer lists may be
// stale); it exists for tests that want exact sharer tracking.
func (d *Directory) DropSharer(lineAddr mem.Addr, id int) {
	l := d.line(lineAddr)
	if l.state == dirS {
		l.sharers &^= bit(id)
	}
}

// snapshot helpers for tests.

// StateOf reports the directory state of a line as a string, the owner,
// and the sharer bitset.
func (d *Directory) StateOf(lineAddr mem.Addr) (string, int, uint64) {
	l := d.line(lineAddr)
	switch l.state {
	case dirI:
		return "I", -1, 0
	case dirS:
		return "S", -1, l.sharers
	case dirE:
		return "E", l.owner, 0
	}
	panic(fmt.Sprintf("bad dir state %d", l.state))
}

// Busy reports whether the line has a request in flight.
func (d *Directory) Busy(lineAddr mem.Addr) bool { return d.line(lineAddr).busy }

// QueuedLen reports how many requests wait in the line's blocking queue.
func (d *Directory) QueuedLen(lineAddr mem.Addr) int { return len(d.line(lineAddr).queue) }
