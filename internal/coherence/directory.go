package coherence

import (
	"fmt"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// Config holds the directory/memory timing parameters (Table I).
type Config struct {
	// LLCLatency is the shared-LLC/directory access latency charged on
	// every request that reaches the directory.
	LLCLatency uint64
	// DRAMLatency is charged the first time a line is touched (cold miss
	// filled from main memory).
	DRAMLatency uint64
}

// Stats counts directory activity.
type Stats struct {
	GetS        uint64
	GetX        uint64
	Forwards    uint64 // probes sent to exclusive owners
	Invs        uint64 // invalidation probes sent to sharers
	SpecCancels uint64 // requests cancelled by a speculative forwarding
	Nacks       uint64 // requests nacked by their responder
	Writebacks  uint64
	DRAMFills   uint64
}

type dirState uint8

const (
	dirI dirState = iota
	dirS
	dirE // exclusive at owner (cache side may be E or M)
)

type dirLine struct {
	state   dirState
	owner   int
	sharers uint64 // bitset
	busy    bool
	queue   []func()
	inLLC   bool
}

// Directory is the home node for every line: MESI state, the LLC/memory
// data image, and the blocking request queue per line.
type Directory struct {
	eng    *sim.Engine
	net    *network.Network
	memory *mem.Memory
	cores  []Core
	cfg    Config
	lines  map[mem.Addr]*dirLine
	Stats  Stats

	// ForceNack, when non-nil, is consulted for every transactional
	// request before it is admitted; returning true bounces the request
	// with RespNack without touching line state. The fault injector uses
	// it to model an overloaded home node. Non-transactional requests are
	// never force-nacked: the machine's non-speculative paths do not
	// retry nacks, and sparing them preserves forward progress.
	ForceNack func(req ReqInfo) bool
}

// NewDirectory builds the home node. cores may be populated later via
// AttachCores (the machine wires cores and directory together).
func NewDirectory(eng *sim.Engine, net *network.Network, memory *mem.Memory, cfg Config) *Directory {
	return &Directory{
		eng:    eng,
		net:    net,
		memory: memory,
		cfg:    cfg,
		lines:  make(map[mem.Addr]*dirLine),
	}
}

// AttachCores registers the core controllers the directory can probe.
func (d *Directory) AttachCores(cores []Core) { d.cores = cores }

func (d *Directory) line(a mem.Addr) *dirLine {
	a = a.Line()
	l, ok := d.lines[a]
	if !ok {
		l = &dirLine{state: dirI, owner: -1}
		d.lines[a] = l
	}
	return l
}

// accessLatency charges LLC latency plus a DRAM fill on first touch.
func (d *Directory) accessLatency(l *dirLine) uint64 {
	lat := d.cfg.LLCLatency
	if !l.inLLC {
		l.inLLC = true
		lat += d.cfg.DRAMLatency
		d.Stats.DRAMFills++
	}
	return lat
}

func (d *Directory) unblock(l *dirLine) {
	if !l.busy {
		panic("coherence: unblock on non-busy line")
	}
	l.busy = false
	d.startNext(l)
}

// startNext pops the next queued request if the line is free. Called
// from unblock and from the force-nack path: a dequeued request that is
// bounced by ForceNack never reaches unblock, and without this the rest
// of the queue would strand until a new request happened to complete.
func (d *Directory) startNext(l *dirLine) {
	if !l.busy && len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		d.eng.Schedule(0, next)
	}
}

// Unblock is sent by a requester once it has installed a data response;
// it lets the directory start the next queued request for the line.
// (The call is already network-delayed by the requester.)
func (d *Directory) Unblock(line mem.Addr) {
	d.unblock(d.line(line))
}

func bit(i int) uint64 { return 1 << uint(i) }

// GetS handles a read request from core req.ID. resp is invoked at the
// requester (network-delayed) with the outcome. On RespData the requester
// must send Unblock after installing the line; RespSpec and RespNack need
// no unblock.
func (d *Directory) GetS(lineAddr mem.Addr, req ReqInfo, resp func(Resp)) {
	lineAddr = lineAddr.Line()
	l := d.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, func() { d.GetS(lineAddr, req, resp) })
		return
	}
	if d.ForceNack != nil && req.IsTx && d.ForceNack(req) {
		d.Stats.Nacks++
		d.net.SendControl(func() { resp(Resp{Kind: RespNack}) })
		d.startNext(l)
		return
	}
	d.Stats.GetS++
	l.busy = true
	lat := d.accessLatency(l)

	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID:
		// Cold line, or the owner silently dropped its copy and is
		// re-requesting: serve memory, grant exclusive.
		d.eng.Schedule(lat, func() {
			data := d.memory.ReadLine(lineAddr)
			l.state = dirE
			l.owner = req.ID
			l.sharers = 0
			d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
		})
	case l.state == dirS:
		d.eng.Schedule(lat, func() {
			data := d.memory.ReadLine(lineAddr)
			l.sharers |= bit(req.ID)
			d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: false}) })
		})
	case l.state == dirE:
		owner := l.owner
		d.Stats.Forwards++
		d.eng.Schedule(lat, func() {
			p := Probe{Line: lineAddr, Kind: FwdGetS, Req: req}
			p.ReplyData = func(data mem.Line) {
				// Owner keeps a Shared copy; data to requester and to memory.
				d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: false}) })
				d.net.SendData(func() {
					d.memory.WriteLine(lineAddr, data)
					l.state = dirS
					l.sharers = bit(owner) | bit(req.ID)
					l.owner = -1
					// requester's Unblock releases the line
				})
			}
			p.ReplyNoData = func() {
				d.net.SendControl(func() {
					data := d.memory.ReadLine(lineAddr)
					l.state = dirE
					l.owner = req.ID
					l.sharers = 0
					d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
				})
			}
			p.ReplySpec = func(data mem.Line, pic PiC) {
				d.Stats.SpecCancels++
				d.net.SendData(func() { resp(Resp{Kind: RespSpec, Data: data, PiC: pic}) })
				d.net.SendControl(func() { d.unblock(l) }) // cancel at directory
			}
			p.ReplyNack = func() {
				d.Stats.Nacks++
				d.net.SendControl(func() { resp(Resp{Kind: RespNack}) })
				d.net.SendControl(func() { d.unblock(l) })
			}
			d.net.SendControl(func() { d.cores[owner].HandleProbe(p) })
		})
	}
}

// GetX handles a write (or upgrade) request from core req.ID.
func (d *Directory) GetX(lineAddr mem.Addr, req ReqInfo, resp func(Resp)) {
	lineAddr = lineAddr.Line()
	l := d.line(lineAddr)
	if l.busy {
		l.queue = append(l.queue, func() { d.GetX(lineAddr, req, resp) })
		return
	}
	if d.ForceNack != nil && req.IsTx && d.ForceNack(req) {
		d.Stats.Nacks++
		d.net.SendControl(func() { resp(Resp{Kind: RespNack}) })
		d.startNext(l)
		return
	}
	d.Stats.GetX++
	l.busy = true
	lat := d.accessLatency(l)

	switch {
	case l.state == dirI, l.state == dirE && l.owner == req.ID,
		l.state == dirS && l.sharers&^bit(req.ID) == 0:
		// Free line, silent-drop re-request, or upgrade with no other
		// sharer: grant from memory.
		d.eng.Schedule(lat, func() {
			data := d.memory.ReadLine(lineAddr)
			l.state = dirE
			l.owner = req.ID
			l.sharers = 0
			d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
		})
	case l.state == dirE:
		owner := l.owner
		d.Stats.Forwards++
		d.eng.Schedule(lat, func() {
			p := Probe{Line: lineAddr, Kind: FwdGetX, Req: req}
			p.ReplyData = func(data mem.Line) {
				// Ownership moves; memory refreshed so the (possibly
				// transactional) new owner can be silently invalidated.
				d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
				d.net.SendData(func() {
					d.memory.WriteLine(lineAddr, data)
					l.state = dirE
					l.owner = req.ID
					l.sharers = 0
				})
			}
			p.ReplyNoData = func() {
				d.net.SendControl(func() {
					data := d.memory.ReadLine(lineAddr)
					l.state = dirE
					l.owner = req.ID
					l.sharers = 0
					d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
				})
			}
			p.ReplySpec = func(data mem.Line, pic PiC) {
				d.Stats.SpecCancels++
				d.net.SendData(func() { resp(Resp{Kind: RespSpec, Data: data, PiC: pic}) })
				d.net.SendControl(func() { d.unblock(l) })
			}
			p.ReplyNack = func() {
				d.Stats.Nacks++
				d.net.SendControl(func() { resp(Resp{Kind: RespNack}) })
				d.net.SendControl(func() { d.unblock(l) })
			}
			d.net.SendControl(func() { d.cores[owner].HandleProbe(p) })
		})
	case l.state == dirS:
		d.eng.Schedule(lat, func() { d.collectInvs(lineAddr, l, req, resp) })
	}
}

// collectInvs sends invalidation probes to every sharer except the
// requester and aggregates the outcome: all invalidated → exclusive
// grant; any refusal (speculative forwarding by a reader) → SpecResp with
// the committed data and the minimum producer PiC; any nack → RespNack.
func (d *Directory) collectInvs(lineAddr mem.Addr, l *dirLine, req ReqInfo, resp func(Resp)) {
	targets := []int{}
	for i := range d.cores {
		if l.sharers&bit(i) != 0 && i != req.ID {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		panic("coherence: collectInvs with no targets")
	}
	pending := len(targets)
	refused := false
	nacked := false
	minPiC := PiC(127)
	done := func() {
		pending--
		if pending > 0 {
			return
		}
		switch {
		case nacked:
			d.Stats.Nacks++
			d.net.SendControl(func() { resp(Resp{Kind: RespNack}) })
			d.unblock(l)
		case refused:
			d.Stats.SpecCancels++
			data := d.memory.ReadLine(lineAddr)
			d.net.SendData(func() { resp(Resp{Kind: RespSpec, Data: data, PiC: minPiC}) })
			d.unblock(l)
		default:
			data := d.memory.ReadLine(lineAddr)
			l.state = dirE
			l.owner = req.ID
			l.sharers = 0
			d.net.SendData(func() { resp(Resp{Kind: RespData, Data: data, Excl: true}) })
			// requester's Unblock releases the line
		}
	}
	for _, t := range targets {
		t := t
		d.Stats.Invs++
		p := Probe{Line: lineAddr, Kind: InvProbe, Req: req}
		p.ReplyData = func(mem.Line) { // invalidated (clean sharer)
			d.net.SendControl(func() {
				l.sharers &^= bit(t)
				done()
			})
		}
		p.ReplyNoData = func() { p.ReplyData(mem.Line{}) } // already silently dropped
		p.ReplySpec = func(_ mem.Line, pic PiC) {
			d.net.SendControl(func() {
				refused = true
				if pic < minPiC {
					minPiC = pic
				}
				done()
			})
		}
		p.ReplyNack = func() {
			d.net.SendControl(func() {
				nacked = true
				done()
			})
		}
		d.net.SendControl(func() { d.cores[t].HandleProbe(p) })
	}
}

// WriteBack delivers an evicted dirty line to memory. cancelled lets the
// evicting core withdraw a writeback that was superseded by a forwarded
// probe served from its writeback buffer.
func (d *Directory) WriteBack(lineAddr mem.Addr, data mem.Line, sender int, cancelled *bool) {
	lineAddr = lineAddr.Line()
	if cancelled != nil && *cancelled {
		return
	}
	l := d.line(lineAddr)
	d.Stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
	if !l.busy && l.state == dirE && l.owner == sender {
		l.state = dirI
		l.owner = -1
	}
	// If busy, an in-flight flow will establish the next state.
}

// WriteBackData refreshes the memory image with the committed value of a
// line whose ownership the sender keeps — the pre-speculative-write
// writeback of lazy versioning (Section VI-B: "non-speculative values
// are written back to L2 before a block in L1 is speculatively
// modified"). Coherence state is untouched.
func (d *Directory) WriteBackData(lineAddr mem.Addr, data mem.Line) {
	d.Stats.Writebacks++
	d.memory.WriteLine(lineAddr, data)
}

// DropSharer records that core id silently discarded a Shared copy. The
// baseline protocol does not require this message (sharer lists may be
// stale); it exists for tests that want exact sharer tracking.
func (d *Directory) DropSharer(lineAddr mem.Addr, id int) {
	l := d.line(lineAddr)
	if l.state == dirS {
		l.sharers &^= bit(id)
	}
}

// snapshot helpers for tests.

// StateOf reports the directory state of a line as a string, the owner,
// and the sharer bitset.
func (d *Directory) StateOf(lineAddr mem.Addr) (string, int, uint64) {
	l := d.line(lineAddr)
	switch l.state {
	case dirI:
		return "I", -1, 0
	case dirS:
		return "S", -1, l.sharers
	case dirE:
		return "E", l.owner, 0
	}
	panic(fmt.Sprintf("bad dir state %d", l.state))
}

// Busy reports whether the line has a request in flight.
func (d *Directory) Busy(lineAddr mem.Addr) bool { return d.line(lineAddr).busy }

// QueuedLen reports how many requests wait in the line's blocking queue.
func (d *Directory) QueuedLen(lineAddr mem.Addr) int { return len(d.line(lineAddr).queue) }
