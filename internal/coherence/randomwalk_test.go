package coherence

import (
	"testing"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// modelCore is a protocol-obedient cache model for the random walk: it
// tracks which lines it holds and answers probes accordingly, sometimes
// choosing the speculative or nack paths where legal.
type modelCore struct {
	t     *testing.T
	id    int
	rig   *rig
	rnd   *sim.Rand
	lines map[mem.Addr]bool // held lines (any state)
	dirty map[mem.Addr]uint64
}

func (c *modelCore) HandleProbe(p Probe) {
	line := p.Line
	if !c.lines[line] {
		if p.Kind == InvProbe {
			p.ReplyData(mem.Line{})
		} else {
			p.ReplyNoData()
		}
		return
	}
	switch p.Kind {
	case FwdGetS:
		// stay as sharer
		p.ReplyData(mem.Line{c.dirty[line]})
	case FwdGetX:
		switch c.rnd.Intn(4) {
		case 0: // speculative response: keep ownership
			p.ReplySpec(mem.Line{c.dirty[line]}, 10)
		case 1: // nack
			p.ReplyNack()
		default:
			delete(c.lines, line)
			p.ReplyData(mem.Line{c.dirty[line]})
		}
	case InvProbe:
		if c.rnd.Intn(5) == 0 {
			p.ReplyNack()
			return
		}
		delete(c.lines, line)
		p.ReplyData(mem.Line{})
	}
}

// TestDirectoryRandomWalk fires hundreds of random GetS/GetX requests
// from protocol-obedient model cores and checks the directory's global
// invariants after every quiescent point:
//
//   - exclusive state has exactly one owner, and that owner holds the line;
//   - no line is left busy once traffic drains;
//   - a sharer recorded by the directory either holds the line or dropped
//     it silently (allowed), but an exclusive owner that answered a probe
//     normally must have given the line up.
func TestDirectoryRandomWalk(t *testing.T) {
	runDirectoryRandomWalk(t, false)
}

// The same walk with the fault hooks armed: forced nacks at the
// directory and delivery jitter on the network. Every request must still
// get exactly one response, and no line may strand requests in its queue
// (the regression the force-nack/startNext interaction once caused).
func TestDirectoryRandomWalkUnderFaults(t *testing.T) {
	runDirectoryRandomWalk(t, true)
}

func runDirectoryRandomWalk(t *testing.T, faulty bool) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := &rig{eng: new(sim.Engine), memry: mem.NewMemory()}
		r.net = network.New(r.eng, 1)
		r.dir = NewDirectory(r.eng, r.net, r.memry, Config{LLCLatency: 10, DRAMLatency: 40})
		rnd := sim.NewRand(seed)
		var models []*modelCore
		var cores []Core
		for i := 0; i < 6; i++ {
			mc := &modelCore{t: t, id: i, rig: r, rnd: sim.NewRand(seed*100 + uint64(i)),
				lines: map[mem.Addr]bool{}, dirty: map[mem.Addr]uint64{}}
			models = append(models, mc)
			cores = append(cores, mc)
		}
		r.dir.AttachCores(cores)
		if faulty {
			frnd := sim.NewRand(seed * 7919)
			r.dir.ForceNack = func(ReqInfo) bool { return frnd.Intn(10) == 0 }
			jrnd := sim.NewRand(seed * 104729)
			r.net.Jitter = func() uint64 { return jrnd.Uint64n(5) }
		}

		pending := 0 // requests issued minus responses delivered
		lines := []mem.Addr{0x000, 0x040, 0x080, 0x0c0, 0x100}
		for step := 0; step < 400; step++ {
			id := rnd.Intn(len(models))
			line := lines[rnd.Intn(len(lines))]
			isX := rnd.Intn(2) == 0
			mc := models[id]
			pending++
			handler := RespFunc(func(resp Resp) {
				pending--
				switch resp.Kind {
				case RespData:
					mc.lines[line] = true
					mc.dirty[line] = resp.Data[0]
					r.net.SendControl(func() { r.dir.Unblock(line) })
				case RespSpec:
					// fiction: do not record ownership
				case RespNack:
				}
			})
			req := ReqInfo{ID: id, IsTx: true}
			if isX {
				r.net.SendControl(func() { r.dir.GetX(line, req, handler) })
			} else {
				r.net.SendControl(func() { r.dir.GetS(line, req, handler) })
			}
			// Occasionally a core silently drops a line (abort / eviction).
			if rnd.Intn(6) == 0 {
				victim := models[rnd.Intn(len(models))]
				for l := range victim.lines {
					delete(victim.lines, l)
					break
				}
			}
			if _, err := r.eng.Run(10_000_000); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if pending != 0 {
				t.Fatalf("seed %d step %d: %d requests never answered", seed, step, pending)
			}
			for _, line := range lines {
				st, owner, sharers := r.dir.StateOf(line)
				if r.dir.Busy(line) {
					t.Fatalf("seed %d step %d: line %v busy after drain", seed, step, line)
				}
				if n := r.dir.QueuedLen(line); n != 0 {
					t.Fatalf("seed %d step %d: line %v stranded %d queued requests", seed, step, line, n)
				}
				switch st {
				case "E":
					if owner < 0 || owner >= len(models) {
						t.Fatalf("seed %d: bad owner %d", seed, owner)
					}
				case "S":
					if sharers == 0 {
						t.Fatalf("seed %d: shared with empty sharer set", seed)
					}
				}
			}
		}
	}
}
