package coherence

import (
	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// This file holds the requester-owned delivery objects that let
// responses and unblocks travel between core and directory domains
// without pool crossing: a message payload allocated from one domain's
// free list must never be recycled from another domain's executing
// context, so the requester embeds its own mailbox and the directory
// only fills it.

// RespSlot is a requester-owned response mailbox: the directory fills
// resp and schedules the slot itself into the requester's domain, so a
// response delivery needs no pooled directory-side message and runs as
// an ordinary event of the destination domain (joining its wave instead
// of splitting the frame on DomainSerial). The owner embeds one slot
// per outstanding-request lane — the machine's access and valOp flows
// each guarantee a single request in flight, so one embedded slot each
// suffices and the whole path stays allocation-free.
//
// The embedded unblockMsg is the slot's second lane: the requester's
// Unblock for the same request, sent core→bank via SendUnblockVia. The
// two lanes never overlap — the unblock is sent only after the response
// (which used resp) has been handled, and the next response for this
// slot arrives a full request round trip after that, long past the
// unblock's control-latency delivery.
type RespSlot struct {
	h    RespHandler
	dom  sim.Domain
	resp Resp
	unb  unblockMsg
}

// Bind points the slot at its handler and the domain responses should
// be delivered into (the requester's own domain, or DomainSerial for
// flows that must run serially). Call before issuing the request the
// slot will receive the response for.
func (s *RespSlot) Bind(h RespHandler, dom sim.Domain) {
	s.h = h
	s.dom = dom
}

// Run delivers the buffered response to the handler. Executes in the
// slot's bound domain.
func (s *RespSlot) Run() { s.h.HandleResp(s.resp) }

// HandleResp makes the slot a RespHandler — requesters pass &slot to
// GetS/GetX and the directory detects it for the in-place fast path.
// Called directly only on paths that bypass the mailbox (immediate
// synchronous responses, if any); it simply forwards to the bound
// handler.
func (s *RespSlot) HandleResp(r Resp) { s.h.HandleResp(r) }

// unblockMsg is the requester's Unblock message for one line: filled by
// SendUnblockVia at the core, it runs in the owning bank's domain and
// releases the line there.
type unblockMsg struct {
	b    *dirBank
	line mem.Addr
}

// Run releases the line at its bank.
func (u *unblockMsg) Run() { u.b.unblock(u.b.line(u.line)) }

// SendUnblockVia sends the requester's Unblock message for line over
// the requester's own endpoint (control class), targeting the owning
// bank's domain. s must be the RespSlot of the request being unblocked:
// its embedded unblockMsg carries the hop, so the path allocates
// nothing and touches no bank-owned pool from the core's context. Safe
// from the slot's bound domain or serial context.
func (d *Directory) SendUnblockVia(via *network.Endpoint, s *RespSlot, line mem.Addr) {
	b := d.bankFor(line)
	s.unb.b = b
	s.unb.line = line
	via.SendControlMsg(b.dom, &s.unb)
}
