// Package coherence implements the directory side of a blocking MESI
// protocol over the simulated interconnect, extended with the two
// mechanisms CHATS needs (Section IV-A / V-A):
//
//   - an owner or sharer that receives a conflicting probe may answer
//     with a speculative data response (SpecResp) and cancel the request
//     at the directory, which then leaves coherence state untouched; and
//   - negative acknowledgements (nacks) that make the requester retry,
//     as used by requester-stalls policies such as PowerTM.
//
// The directory is "blocking": it processes one request per line at a
// time and queues the rest, which serializes races the way the paper's
// Ruby protocol does at its transient states.
package coherence

import (
	"chats/internal/mem"
	"chats/internal/network"
)

// PiC is the Position-in-Chain value carried in coherence messages
// (Section IV-C). Valid chain positions are 0..PiCMax; PiCNone marks a
// transaction that is not part of any chain; PiCPower marks a forwarding
// by a PowerTM power transaction, which sits above every chain and must
// not change the consumer's PiC (Section VI-B, PCHATS).
type PiC int8

const (
	PiCNone  PiC = -1
	PiCPower PiC = -2
	// PiCMax is the largest encodable position (5-bit register, one value
	// reserved for "unset": 0..30 usable, initial value in the middle).
	PiCMax  PiC = 30
	PiCInit PiC = 15
)

// Valid reports whether p is a real chain position.
func (p PiC) Valid() bool { return p >= 0 && p <= PiCMax }

// ReqInfo describes the requester of a coherence transaction; it is the
// information piggybacked on request messages and forwarded probes that
// CHATS consumes to make forwarding decisions.
type ReqInfo struct {
	ID           int    // requesting core
	IsTx         bool   // request issued from inside a transaction
	Power        bool   // requester holds the PowerTM token
	PiC          PiC    // requester's current PiC
	TS           uint64 // requester's transaction timestamp (LEVC's idealized scheme)
	IsValidation bool   // request re-issued by the VSB validation controller
}

// ProbeKind distinguishes the probes a core can receive.
type ProbeKind uint8

const (
	// FwdGetS: a remote read request forwarded to the exclusive owner.
	FwdGetS ProbeKind = iota
	// FwdGetX: a remote write request forwarded to the exclusive owner.
	FwdGetX
	// InvProbe: an invalidation sent to a sharer on a remote write.
	InvProbe
)

func (k ProbeKind) String() string {
	switch k {
	case FwdGetS:
		return "FwdGetS"
	case FwdGetX:
		return "FwdGetX"
	case InvProbe:
		return "Inv"
	}
	return "Probe?"
}

// ProbeReplier is the directory-side continuation of a probe: the flow
// object that knows how to route the core's answer. Pooled per-flow
// structs implement it so probes carry no closures.
//
// Every method takes the replying core's network endpoint as via: the
// reply executes in the probed core's domain, so the hops it sends
// (the response to the requester, the flow's return to its bank) must
// go through an endpoint owned by that domain — the bank's own
// endpoint may only be used from the bank's context. A nil via falls
// back to the bank endpoint, which is only legal from serial execution
// (direct-construction tests; the Probe convenience wrappers use it).
type ProbeReplier interface {
	// ReplyData services the request normally: the line (and, for
	// FwdGetX, ownership) moves to the requester and the memory image is
	// refreshed. For InvProbe the data argument is ignored (the directory
	// supplies memory data) and this means "invalidated, no conflict".
	ReplyData(via *network.Endpoint, data mem.Line)
	// ReplyNoData tells the directory the core no longer holds the line
	// (silent invalidation already happened); the directory serves the
	// committed copy from the memory image.
	ReplyNoData(via *network.Endpoint)
	// ReplySpec answers the requester with speculative data while
	// retaining ownership; the request is cancelled at the directory and
	// coherence state is left unchanged. pic is the producer's PiC after
	// any update mandated by the CHATS rules.
	ReplySpec(via *network.Endpoint, data mem.Line, pic PiC)
	// ReplyNack refuses the request without data; the requester will
	// retry. Coherence state is unchanged.
	ReplyNack(via *network.Endpoint)
}

// Probe is delivered to a core when the directory needs its copy of a
// line. The core must call exactly one of the reply methods; each
// already accounts for the response messages and directory bookkeeping.
type Probe struct {
	Line mem.Addr
	Kind ProbeKind
	Req  ReqInfo

	// Reply is the directory flow awaiting this probe's answer.
	Reply ProbeReplier
}

// The reply methods delegate to the flow object, keeping the core-side
// call syntax independent of the dispatch plumbing. The Via variants
// route the reply's hops through the probed core's own endpoint and are
// what the machine uses (probes execute in the probed core's domain);
// the via-less forms fall back to the bank endpoint and are only legal
// from serial execution — tests keep their original call syntax.

func (p Probe) ReplyData(data mem.Line)          { p.Reply.ReplyData(nil, data) }
func (p Probe) ReplyNoData()                     { p.Reply.ReplyNoData(nil) }
func (p Probe) ReplySpec(data mem.Line, pic PiC) { p.Reply.ReplySpec(nil, data, pic) }
func (p Probe) ReplyNack()                       { p.Reply.ReplyNack(nil) }

func (p Probe) ReplyDataVia(via *network.Endpoint, data mem.Line) { p.Reply.ReplyData(via, data) }
func (p Probe) ReplyNoDataVia(via *network.Endpoint)              { p.Reply.ReplyNoData(via) }
func (p Probe) ReplySpecVia(via *network.Endpoint, data mem.Line, pic PiC) {
	p.Reply.ReplySpec(via, data, pic)
}
func (p Probe) ReplyNackVia(via *network.Endpoint) { p.Reply.ReplyNack(via) }

// RespKind tags the response a requester receives for GetS/GetX.
type RespKind uint8

const (
	// RespData carries committed data. For GetS, Excl says whether the
	// grant is Exclusive (sole copy) or Shared; for GetX the grant is
	// always exclusive ownership.
	RespData RespKind = iota
	// RespSpec carries a speculative value forwarded by a producer
	// transaction; no coherence permissions were transferred.
	RespSpec
	// RespNack carries nothing; retry later.
	RespNack
)

// Resp is the response to a GetS/GetX delivered back at the requester
// (network latency already applied).
type Resp struct {
	Kind RespKind
	Data mem.Line
	Excl bool // RespData on GetS: exclusive (E) grant
	PiC  PiC  // RespSpec: producer's PiC
}

// RespHandler receives the response to a GetS/GetX at the requester.
// The machine's pooled access structs implement it directly; tests use
// the RespFunc adapter.
type RespHandler interface {
	HandleResp(r Resp)
}

// RespFunc adapts a plain function to RespHandler.
type RespFunc func(Resp)

// HandleResp invokes the function.
func (f RespFunc) HandleResp(r Resp) { f(r) }

// Core is the directory's view of an L1 cache controller.
type Core interface {
	// HandleProbe is invoked (already network-delayed) when the directory
	// needs this core's copy of a line.
	HandleProbe(p Probe)
}
