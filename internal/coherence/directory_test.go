package coherence

import (
	"testing"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// fakeCore lets tests script probe responses.
type fakeCore struct {
	onProbe func(p Probe)
	probes  []Probe
}

func (f *fakeCore) HandleProbe(p Probe) {
	f.probes = append(f.probes, p)
	if f.onProbe != nil {
		f.onProbe(p)
	}
}

type rig struct {
	eng   *sim.Engine
	net   *network.Network
	memry *mem.Memory
	dir   *Directory
	cores []*fakeCore
}

func newRig(n int) *rig {
	r := &rig{eng: new(sim.Engine), memry: mem.NewMemory()}
	r.net = network.New(r.eng, 1)
	r.dir = NewDirectory(r.eng, r.net, r.memry, Config{LLCLatency: 30, DRAMLatency: 100})
	var cores []Core
	for i := 0; i < n; i++ {
		fc := &fakeCore{}
		r.cores = append(r.cores, fc)
		cores = append(cores, fc)
	}
	r.dir.AttachCores(cores)
	return r
}

// request issues GetS/GetX from core id and runs the sim until the
// response arrives, returning it. It sends Unblock on RespData like a
// real core would.
func (r *rig) request(t *testing.T, isX bool, line mem.Addr, id int) Resp {
	t.Helper()
	var got *Resp
	handler := RespFunc(func(resp Resp) {
		got = &resp
		if resp.Kind == RespData {
			r.net.SendControl(func() { r.dir.Unblock(line) })
		}
	})
	req := ReqInfo{ID: id}
	if isX {
		r.net.SendControl(func() { r.dir.GetX(line, req, handler) })
	} else {
		r.net.SendControl(func() { r.dir.GetS(line, req, handler) })
	}
	if _, err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no response")
	}
	return *got
}

func TestColdGetSGrantsExclusive(t *testing.T) {
	r := newRig(2)
	r.memry.WriteWord(0x40, 7)
	resp := r.request(t, false, 0x40, 0)
	if resp.Kind != RespData || !resp.Excl || resp.Data[0] != 7 {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x40)
	if st != "E" || owner != 0 {
		t.Fatalf("dir state %s owner %d", st, owner)
	}
	if r.dir.TotalStats().DRAMFills != 1 {
		t.Fatal("expected one DRAM fill")
	}
	// Second touch: no new DRAM fill.
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{7}) }
	r.request(t, false, 0x40, 1)
	if r.dir.TotalStats().DRAMFills != 1 {
		t.Fatal("unexpected second DRAM fill")
	}
}

func TestGetSForwardsToOwnerAndDowngrades(t *testing.T) {
	r := newRig(2)
	r.request(t, true, 0x80, 0) // core 0 becomes owner
	r.cores[0].onProbe = func(p Probe) {
		if p.Kind != FwdGetS || p.Line != mem.Addr(0x80) {
			t.Fatalf("probe = %+v", p)
		}
		p.ReplyData(mem.Line{42}) // owner supplies dirty data
	}
	resp := r.request(t, false, 0x80, 1)
	if resp.Kind != RespData || resp.Excl || resp.Data[0] != 42 {
		t.Fatalf("resp = %+v", resp)
	}
	st, _, sharers := r.dir.StateOf(0x80)
	if st != "S" || sharers != 0b11 {
		t.Fatalf("dir %s sharers %b", st, sharers)
	}
	if r.memry.ReadWord(0x80) != 42 {
		t.Fatal("memory not refreshed by owner data")
	}
}

func TestGetXOwnershipTransfer(t *testing.T) {
	r := newRig(2)
	r.request(t, true, 0x80, 0)
	r.cores[0].onProbe = func(p Probe) {
		if p.Kind != FwdGetX {
			t.Fatalf("probe kind %v", p.Kind)
		}
		p.ReplyData(mem.Line{9})
	}
	resp := r.request(t, true, 0x80, 1)
	if resp.Kind != RespData || !resp.Excl || resp.Data[0] != 9 {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x80)
	if st != "E" || owner != 1 {
		t.Fatalf("dir %s owner %d", st, owner)
	}
	if r.memry.ReadWord(0x80) != 9 {
		t.Fatal("memory not refreshed on transfer")
	}
}

func TestSilentDropServedFromMemory(t *testing.T) {
	r := newRig(2)
	r.memry.WriteWord(0xc0, 5)
	r.request(t, true, 0xc0, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyNoData() } // dropped (abort)
	resp := r.request(t, false, 0xc0, 1)
	if resp.Kind != RespData || !resp.Excl || resp.Data[0] != 5 {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0xc0)
	if st != "E" || owner != 1 {
		t.Fatalf("dir %s owner %d", st, owner)
	}
}

func TestSpecRespLeavesStateUnchanged(t *testing.T) {
	r := newRig(2)
	r.request(t, true, 0x100, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplySpec(mem.Line{13}, 16) }
	resp := r.request(t, false, 0x100, 1)
	if resp.Kind != RespSpec || resp.Data[0] != 13 || resp.PiC != 16 {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x100)
	if st != "E" || owner != 0 {
		t.Fatalf("ownership moved: %s owner %d", st, owner)
	}
	if r.dir.Busy(0x100) {
		t.Fatal("line still busy after spec cancel")
	}
	if r.dir.TotalStats().SpecCancels != 1 {
		t.Fatal("spec cancel not counted")
	}
}

func TestNack(t *testing.T) {
	r := newRig(2)
	r.request(t, true, 0x140, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyNack() }
	resp := r.request(t, true, 0x140, 1)
	if resp.Kind != RespNack {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x140)
	if st != "E" || owner != 0 {
		t.Fatal("nack changed ownership")
	}
	if r.dir.Busy(0x140) {
		t.Fatal("line busy after nack")
	}
}

func TestGetXInvalidatesSharers(t *testing.T) {
	r := newRig(4)
	// Build S state with cores 0,1,2.
	r.request(t, false, 0x180, 0)
	r.cores[0].onProbe = func(p Probe) {
		if p.Kind == FwdGetS {
			p.ReplyData(mem.Line{3})
		} else {
			p.ReplyData(mem.Line{})
		}
	}
	r.request(t, false, 0x180, 1)
	r.request(t, false, 0x180, 2)
	st, _, sharers := r.dir.StateOf(0x180)
	if st != "S" || sharers != 0b111 {
		t.Fatalf("setup: %s %b", st, sharers)
	}
	for _, c := range r.cores[1:3] {
		c.onProbe = func(p Probe) {
			if p.Kind != InvProbe {
				t.Fatalf("want Inv, got %v", p.Kind)
			}
			p.ReplyData(mem.Line{})
		}
	}
	resp := r.request(t, true, 0x180, 3)
	if resp.Kind != RespData || !resp.Excl {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x180)
	if st != "E" || owner != 3 {
		t.Fatalf("dir %s owner %d", st, owner)
	}
	if len(r.cores[1].probes) != 1 || len(r.cores[2].probes) != 1 || len(r.cores[3].probes) != 0 {
		t.Fatal("wrong inv fan-out")
	}
}

func TestUpgradeSkipsRequester(t *testing.T) {
	r := newRig(2)
	r.request(t, false, 0x1c0, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{1}) }
	r.request(t, false, 0x1c0, 1)
	// Core 1 upgrades; only core 0 gets an Inv.
	r.cores[0].probes = nil
	resp := r.request(t, true, 0x1c0, 1)
	if resp.Kind != RespData || !resp.Excl {
		t.Fatalf("resp = %+v", resp)
	}
	if len(r.cores[0].probes) != 1 || r.cores[0].probes[0].Kind != InvProbe {
		t.Fatalf("core0 probes = %+v", r.cores[0].probes)
	}
	if len(r.cores[1].probes) != 0 {
		t.Fatal("requester probed itself")
	}
}

func TestSharerRefusalYieldsSpecResp(t *testing.T) {
	r := newRig(3)
	r.memry.WriteWord(0x200, 77)
	r.request(t, false, 0x200, 0)
	r.cores[0].onProbe = func(p Probe) {
		if p.Kind == FwdGetS {
			p.ReplyData(mem.Line{77})
		} else {
			p.ReplySpec(mem.Line{77}, 20) // reader refuses to invalidate
		}
	}
	r.request(t, false, 0x200, 1)
	r.cores[1].onProbe = func(p Probe) { p.ReplyData(mem.Line{}) } // acks inv
	resp := r.request(t, true, 0x200, 2)
	if resp.Kind != RespSpec || resp.Data[0] != 77 || resp.PiC != 20 {
		t.Fatalf("resp = %+v", resp)
	}
	st, _, sharers := r.dir.StateOf(0x200)
	if st != "S" || sharers != 0b01 {
		t.Fatalf("dir %s sharers %b: refuser must stay, acker must go", st, sharers)
	}
}

func TestSharerNackWins(t *testing.T) {
	r := newRig(3)
	r.request(t, false, 0x240, 0)
	r.cores[0].onProbe = func(p Probe) {
		if p.Kind == FwdGetS {
			p.ReplyData(mem.Line{1})
		} else {
			p.ReplyNack()
		}
	}
	r.request(t, false, 0x240, 1)
	r.cores[1].onProbe = func(p Probe) { p.ReplySpec(mem.Line{1}, 10) }
	resp := r.request(t, true, 0x240, 2)
	if resp.Kind != RespNack {
		t.Fatalf("resp = %+v, want nack to dominate", resp)
	}
}

func TestBusyLineQueuesRequests(t *testing.T) {
	r := newRig(3)
	r.request(t, true, 0x280, 0)
	// Core 0 delays its probe reply; meanwhile a second request arrives.
	var pending Probe
	r.cores[0].onProbe = func(p Probe) { pending = p }
	order := []int{}
	mk := func(id int) RespFunc {
		return func(resp Resp) {
			order = append(order, id)
			if resp.Kind == RespData {
				r.net.SendControl(func() { r.dir.Unblock(0x280) })
			}
		}
	}
	r.net.SendControl(func() { r.dir.GetX(0x280, ReqInfo{ID: 1}, mk(1)) })
	r.eng.Run(0)
	if !r.dir.Busy(0x280) {
		t.Fatal("line should be busy while probe outstanding")
	}
	r.net.SendControl(func() { r.dir.GetX(0x280, ReqInfo{ID: 2}, mk(2)) })
	r.eng.Run(0)
	// Release the first; core 1 then owns, its probe must be answered too.
	r.cores[0].onProbe = nil
	cur := pending
	r.cores[1].onProbe = func(p Probe) { p.ReplyData(mem.Line{}) }
	cur.ReplyData(mem.Line{5})
	if _, err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v", order)
	}
	st, owner, _ := r.dir.StateOf(0x280)
	if st != "E" || owner != 2 {
		t.Fatalf("final dir %s owner %d", st, owner)
	}
}

func TestWriteBack(t *testing.T) {
	r := newRig(1)
	r.request(t, true, 0x2c0, 0)
	r.dir.WriteBack(0x2c0, mem.Line{99}, 0, nil)
	if r.memry.ReadWord(0x2c0) != 99 {
		t.Fatal("memory not written")
	}
	st, _, _ := r.dir.StateOf(0x2c0)
	if st != "I" {
		t.Fatalf("dir state %s after WB", st)
	}
}

func TestWriteBackCancelled(t *testing.T) {
	r := newRig(1)
	r.request(t, true, 0x300, 0)
	cancelled := true
	r.dir.WriteBack(0x300, mem.Line{99}, 0, &cancelled)
	if r.memry.ReadWord(0x300) == 99 {
		t.Fatal("cancelled WB applied")
	}
	st, owner, _ := r.dir.StateOf(0x300)
	if st != "E" || owner != 0 {
		t.Fatal("cancelled WB changed state")
	}
}

func TestPiCValidity(t *testing.T) {
	if PiCNone.Valid() || PiCPower.Valid() {
		t.Fatal("sentinels must be invalid")
	}
	if !PiCInit.Valid() || !PiC(0).Valid() || !PiCMax.Valid() {
		t.Fatal("range values must be valid")
	}
	if PiC(31).Valid() {
		t.Fatal("31 is out of the 0..30 usable range")
	}
}

func TestWriteBackDataKeepsOwnership(t *testing.T) {
	r := newRig(1)
	r.request(t, true, 0x340, 0) // core 0 owns the line
	r.dir.WriteBackData(0x340, mem.Line{55})
	if r.memry.ReadWord(0x340) != 55 {
		t.Fatal("memory image not refreshed")
	}
	st, owner, _ := r.dir.StateOf(0x340)
	if st != "E" || owner != 0 {
		t.Fatalf("ownership changed: %s owner %d", st, owner)
	}
}

func TestDropSharer(t *testing.T) {
	r := newRig(2)
	r.request(t, false, 0x380, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{}) }
	r.request(t, false, 0x380, 1)
	r.dir.DropSharer(0x380, 0)
	_, _, sharers := r.dir.StateOf(0x380)
	if sharers != 0b10 {
		t.Fatalf("sharers = %b after drop", sharers)
	}
	// DropSharer on a non-shared line is a no-op.
	r.request(t, true, 0x3c0, 0)
	r.dir.DropSharer(0x3c0, 0)
	st, owner, _ := r.dir.StateOf(0x3c0)
	if st != "E" || owner != 0 {
		t.Fatal("DropSharer touched an exclusive line")
	}
}

func TestGetXForwardNackAndSpec(t *testing.T) {
	r := newRig(2)
	r.request(t, true, 0x400, 0)
	// Owner nacks a write request.
	r.cores[0].onProbe = func(p Probe) { p.ReplyNack() }
	if resp := r.request(t, true, 0x400, 1); resp.Kind != RespNack {
		t.Fatalf("resp = %+v", resp)
	}
	// Owner forwards speculatively on a write request.
	r.cores[0].onProbe = func(p Probe) { p.ReplySpec(mem.Line{7}, 12) }
	resp := r.request(t, true, 0x400, 1)
	if resp.Kind != RespSpec || resp.Data[0] != 7 || resp.PiC != 12 {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(0x400)
	if st != "E" || owner != 0 {
		t.Fatal("spec response moved ownership")
	}
}

func TestGetXNoDataFallsBackToMemory(t *testing.T) {
	r := newRig(2)
	r.memry.WriteWord(0x440, 31)
	r.request(t, true, 0x440, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyNoData() }
	resp := r.request(t, true, 0x440, 1)
	if resp.Kind != RespData || !resp.Excl || resp.Data[0] != 31 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestOwnerReRequestAfterSilentDrop(t *testing.T) {
	// A core that silently dropped its exclusive line re-requests it: the
	// directory serves memory and keeps it as owner.
	r := newRig(1)
	r.memry.WriteWord(0x480, 9)
	r.request(t, true, 0x480, 0)
	resp := r.request(t, true, 0x480, 0) // no probe must be sent
	if resp.Kind != RespData || resp.Data[0] != 9 {
		t.Fatalf("resp = %+v", resp)
	}
	if len(r.cores[0].probes) != 0 {
		t.Fatal("directory probed the requester itself")
	}
}

func TestProbeKindStrings(t *testing.T) {
	if FwdGetS.String() != "FwdGetS" || FwdGetX.String() != "FwdGetX" || InvProbe.String() != "Inv" {
		t.Fatal("probe kind strings wrong")
	}
	if ProbeKind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}
