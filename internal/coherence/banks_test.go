package coherence

import (
	"testing"

	"chats/internal/mem"
	"chats/internal/network"
	"chats/internal/sim"
)

// Directed tests for the address-sharded directory: bank selection,
// cross-bank independence, the per-bank ForceNack seam, and the
// queue-unstranding regression from the fault-seam PR. All rigs run
// with FirstDomain 0 (every bank serial), so the tests exercise the
// sharded state machine itself; the engine-level domain interleaving is
// covered by the difftest bank-equivalence layer.

func newBankedRig(n, banks int) *rig {
	r := &rig{eng: new(sim.Engine), memry: mem.NewMemory()}
	r.net = network.New(r.eng, 1)
	r.dir = NewDirectory(r.eng, r.net, r.memry, Config{LLCLatency: 30, DRAMLatency: 100, Banks: banks})
	var cores []Core
	for i := 0; i < n; i++ {
		fc := &fakeCore{}
		r.cores = append(r.cores, fc)
		cores = append(cores, fc)
	}
	r.dir.AttachCores(cores)
	return r
}

// requestInfo is rig.request with a caller-supplied ReqInfo (the fault
// seam only fires for transactional requests).
func (r *rig) requestInfo(t *testing.T, isX bool, line mem.Addr, req ReqInfo) Resp {
	t.Helper()
	var got *Resp
	handler := RespFunc(func(resp Resp) {
		got = &resp
		if resp.Kind == RespData {
			r.net.SendControl(func() { r.dir.Unblock(line) })
		}
	})
	if isX {
		r.net.SendControl(func() { r.dir.GetX(line, req, handler) })
	} else {
		r.net.SendControl(func() { r.dir.GetS(line, req, handler) })
	}
	if _, err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no response")
	}
	return *got
}

func TestBankOfMatchesMemoryShard(t *testing.T) {
	for _, banks := range []int{1, 2, 4, 16, 256} {
		for _, a := range []mem.Addr{0x0, 0x40, 0x80, 0x1000, 0xdeadc0} {
			if got, want := BankOf(a, banks), mem.LineShard(a, banks); got != want {
				t.Fatalf("BankOf(%#x, %d) = %d, LineShard = %d", a, banks, got, want)
			}
		}
	}
	// Same line, different words: one bank.
	if BankOf(0x40, 4) != BankOf(0x78, 4) {
		t.Fatal("words of one line landed in different banks")
	}
	// Consecutive lines interleave round-robin.
	for i := 0; i < 8; i++ {
		if got := BankOf(mem.Addr(i*mem.LineSize), 4); got != i%4 {
			t.Fatalf("line %d in bank %d, want %d", i, got, i%4)
		}
	}
}

func TestBankCountValidation(t *testing.T) {
	for _, bad := range []int{-1, 3, 5, 2 * MaxBanks} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("banks=%d accepted", bad)
				}
			}()
			newBankedRig(1, bad)
		}()
	}
	if got := newBankedRig(1, 0).dir.NumBanks(); got != 1 {
		t.Fatalf("banks=0 built %d banks, want 1", got)
	}
}

// TestCrossBankIndependence pins that a busy line in one bank does not
// block service in another: while bank 1's line waits on an owner
// probe, a request for a bank 2 line completes start to finish.
func TestCrossBankIndependence(t *testing.T) {
	r := newBankedRig(3, 4)
	lineA := mem.Addr(0x40) // bank 1
	lineB := mem.Addr(0x80) // bank 2
	if r.dir.BankIndex(lineA) != 1 || r.dir.BankIndex(lineB) != 2 {
		t.Fatal("address plan broke")
	}
	r.request(t, true, lineA, 0) // core 0 owns A
	// Core 0 holds the forward probe: bank 1's line stays busy.
	var pending Probe
	r.cores[0].onProbe = func(p Probe) { pending = p }
	r.net.SendControl(func() {
		r.dir.GetX(lineA, ReqInfo{ID: 1}, RespFunc(func(resp Resp) {
			if resp.Kind == RespData {
				r.net.SendControl(func() { r.dir.Unblock(lineA) })
			}
		}))
	})
	r.eng.Run(0)
	if !r.dir.Busy(lineA) {
		t.Fatal("bank 1 line should be busy")
	}
	// Bank 2 serves core 2 while bank 1 is stuck.
	resp := r.request(t, true, lineB, 2)
	if resp.Kind != RespData || !resp.Excl {
		t.Fatalf("bank 2 resp = %+v", resp)
	}
	if !r.dir.Busy(lineA) {
		t.Fatal("bank 2 service released bank 1's line")
	}
	pending.ReplyData(mem.Line{1})
	r.eng.Run(1_000_000)
	if r.dir.Busy(lineA) {
		t.Fatal("bank 1 line stuck after probe reply")
	}
	// Per-bank accounting: each bank saw only its own line.
	if r.dir.BankLines(1) != 1 || r.dir.BankLines(2) != 1 || r.dir.BankLines(0) != 0 {
		t.Fatalf("bank line counts: %d/%d/%d", r.dir.BankLines(0), r.dir.BankLines(1), r.dir.BankLines(2))
	}
}

// TestCrossBankInvalidationCollect builds S state on a bank 3 line and
// upgrades it while a second bank's line is mid-flight: the
// invalidation collect must gather every ack without touching the
// other bank.
func TestCrossBankInvalidationCollect(t *testing.T) {
	r := newBankedRig(4, 4)
	hot := mem.Addr(0xc0) // bank 3
	r.request(t, false, hot, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{3}) }
	r.request(t, false, hot, 1)
	r.request(t, false, hot, 2)
	st, _, sharers := r.dir.StateOf(hot)
	if st != "S" || sharers != 0b111 {
		t.Fatalf("setup: %s %b", st, sharers)
	}
	// Park a request on bank 1 so two banks have in-flight work.
	r.request(t, true, 0x40, 3)
	var parked Probe
	r.cores[3].onProbe = func(p Probe) { parked = p }
	r.net.SendControl(func() { r.dir.GetX(0x40, ReqInfo{ID: 0}, RespFunc(func(Resp) {})) })
	r.eng.Run(0)

	for _, c := range r.cores[1:3] {
		c.onProbe = func(p Probe) {
			if p.Kind != InvProbe {
				t.Fatalf("want Inv, got %v", p.Kind)
			}
			p.ReplyData(mem.Line{})
		}
	}
	resp := r.request(t, true, hot, 3)
	if resp.Kind != RespData || !resp.Excl {
		t.Fatalf("resp = %+v", resp)
	}
	st, owner, _ := r.dir.StateOf(hot)
	if st != "E" || owner != 3 {
		t.Fatalf("dir %s owner %d", st, owner)
	}
	if !r.dir.Busy(0x40) {
		t.Fatal("collect on bank 3 disturbed bank 1's busy line")
	}
	// Cores 0, 1 and 2 all shared the line: three invalidations, all
	// accounted to bank 3.
	if r.dir.BankStats(3).Invs != 3 {
		t.Fatalf("bank 3 counted %d invalidations, want 3", r.dir.BankStats(3).Invs)
	}
	parked.ReplyData(mem.Line{})
	r.eng.Run(1_000_000)
}

// TestWriteBackRacesForwardAcrossBanks: a core owning lines in two
// banks writes one back while the other has a forward in flight — the
// writeback lands (bank 2) without perturbing the pending forward
// (bank 1), which then resolves normally.
func TestWriteBackRacesForwardAcrossBanks(t *testing.T) {
	r := newBankedRig(2, 4)
	fwdLine := mem.Addr(0x40) // bank 1
	wbLine := mem.Addr(0x80)  // bank 2
	r.request(t, true, fwdLine, 0)
	r.request(t, true, wbLine, 0)
	var pending Probe
	r.cores[0].onProbe = func(p Probe) { pending = p }
	var got *Resp
	r.net.SendControl(func() {
		r.dir.GetX(fwdLine, ReqInfo{ID: 1}, RespFunc(func(resp Resp) {
			got = &resp
			r.net.SendControl(func() { r.dir.Unblock(fwdLine) })
		}))
	})
	r.eng.Run(0)
	if !r.dir.Busy(fwdLine) {
		t.Fatal("forward line should be busy")
	}
	// The owner evicts the other bank's line mid-forward.
	r.dir.WriteBack(wbLine, mem.Line{77}, 0, nil)
	if r.memry.ReadWord(wbLine) != 77 {
		t.Fatal("writeback not applied")
	}
	if st, _, _ := r.dir.StateOf(wbLine); st != "I" {
		t.Fatalf("bank 2 line %s after WB", st)
	}
	if !r.dir.Busy(fwdLine) {
		t.Fatal("writeback on bank 2 released bank 1's busy line")
	}
	pending.ReplyData(mem.Line{5})
	r.eng.Run(1_000_000)
	if got == nil || got.Kind != RespData || got.Data[0] != 5 {
		t.Fatalf("forward resp = %+v", got)
	}
	if st, owner, _ := r.dir.StateOf(fwdLine); st != "E" || owner != 1 {
		t.Fatalf("forward line %s owner %d", st, owner)
	}
}

// TestBankLocalForceNack arms the fault seam on one bank only: requests
// for that bank's lines bounce, sibling banks are untouched, and — the
// queue-stranding regression — a nacked dequeue must still start the
// next waiter.
func TestBankLocalForceNack(t *testing.T) {
	r := newBankedRig(4, 4)
	hot := mem.Addr(0x140) // bank 1
	r.dir.SetBankForceNack(1, func(req ReqInfo) bool { return req.ID == 2 })

	// Other banks ignore the seam entirely.
	if resp := r.requestInfo(t, true, 0x80, ReqInfo{ID: 2, IsTx: true}); resp.Kind != RespData {
		t.Fatalf("bank 2 resp = %+v", resp)
	}
	// Core 2 bounces on the armed bank even when the line is idle.
	if resp := r.requestInfo(t, true, hot, ReqInfo{ID: 2, IsTx: true}); resp.Kind != RespNack {
		t.Fatalf("idle-line forced nack: resp = %+v", resp)
	}
	if r.dir.Busy(hot) {
		t.Fatal("bounced request left the line busy")
	}
	if r.dir.BankStats(1).Nacks == 0 {
		t.Fatal("bank 1 did not count the forced nack")
	}

	// Queue stranding: core 0 owns the line and holds core 3's forward
	// probe while cores 2 and 1 queue behind it. When the probe resolves,
	// core 2's dequeued request is force-nacked — core 1 behind it must
	// still be served, not stranded.
	if resp := r.request(t, true, hot, 0); resp.Kind != RespData {
		t.Fatal("owner setup failed")
	}
	var pending Probe
	r.cores[0].onProbe = func(p Probe) { pending = p }
	kinds := map[int]RespKind{}
	mk := func(id int) RespFunc {
		return func(resp Resp) {
			kinds[id] = resp.Kind
			if resp.Kind == RespData {
				r.net.SendControl(func() { r.dir.Unblock(hot) })
			}
		}
	}
	r.net.SendControl(func() { r.dir.GetX(hot, ReqInfo{ID: 3, IsTx: true}, mk(3)) })
	r.eng.Run(0)
	if !r.dir.Busy(hot) {
		t.Fatal("setup: forward should hold the line busy")
	}
	r.net.SendControl(func() { r.dir.GetX(hot, ReqInfo{ID: 2, IsTx: true}, mk(2)) })
	r.eng.Run(0)
	r.net.SendControl(func() { r.dir.GetX(hot, ReqInfo{ID: 1, IsTx: true}, mk(1)) })
	r.eng.Run(0)
	if r.dir.QueuedLen(hot) != 2 {
		t.Fatalf("setup: queued=%d, want 2", r.dir.QueuedLen(hot))
	}
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{9}) }
	r.cores[3].onProbe = func(p Probe) { p.ReplyData(mem.Line{9}) }
	pending.ReplyData(mem.Line{9})
	if _, err := r.eng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if kinds[3] != RespData {
		t.Fatalf("core 3 got %v, want data", kinds[3])
	}
	if kinds[2] != RespNack {
		t.Fatalf("core 2 got %v, want forced nack on dequeue", kinds[2])
	}
	if kinds[1] != RespData {
		t.Fatalf("core 1 got %v: queue stranded behind the forced nack", kinds[1])
	}
	if r.dir.Busy(hot) {
		t.Fatal("line busy after queue drained")
	}
}

// TestWideSharerSetInvalidation exercises the multi-word sharer set
// (cores above bit 63): 70 readers share a line, an upgrade must
// invalidate every one of them exactly once.
func TestWideSharerSetInvalidation(t *testing.T) {
	const n = 70
	r := newBankedRig(n, 4)
	hot := mem.Addr(0x40)
	r.request(t, false, hot, 0)
	r.cores[0].onProbe = func(p Probe) { p.ReplyData(mem.Line{1}) }
	for id := 1; id < n-1; id++ {
		r.request(t, false, hot, id)
	}
	for _, c := range r.cores[:n-1] {
		c.onProbe = func(p Probe) { p.ReplyData(mem.Line{}) }
	}
	resp := r.request(t, true, hot, n-1)
	if resp.Kind != RespData || !resp.Excl {
		t.Fatalf("resp = %+v", resp)
	}
	if st, owner, _ := r.dir.StateOf(hot); st != "E" || owner != n-1 {
		t.Fatalf("dir %s owner %d", st, owner)
	}
	if invs := r.dir.BankStats(1).Invs; invs != n-1 {
		t.Fatalf("counted %d invalidations, want %d", invs, n-1)
	}
	for id, c := range r.cores[:n-1] {
		got := 0
		for _, p := range c.probes {
			if p.Kind == InvProbe {
				got++
			}
		}
		if got != 1 {
			t.Fatalf("core %d saw %d Inv probes, want 1", id, got)
		}
	}
}

// TestGlobalForceNackStillCoversAllBanks: the machine-level seam
// (Directory.ForceNack) applies to every bank when no bank-local
// override is set.
func TestGlobalForceNackStillCoversAllBanks(t *testing.T) {
	r := newBankedRig(2, 4)
	r.dir.ForceNack = func(req ReqInfo) bool { return true }
	for _, line := range []mem.Addr{0x0, 0x40, 0x80, 0xc0} {
		if resp := r.requestInfo(t, true, line, ReqInfo{ID: 0, IsTx: true}); resp.Kind != RespNack {
			t.Fatalf("bank %d: resp = %+v", r.dir.BankIndex(line), resp)
		}
	}
	var nacks uint64
	for b := 0; b < 4; b++ {
		nacks += r.dir.BankStats(b).Nacks
	}
	if nacks != 4 || r.dir.TotalStats().Nacks != 4 {
		t.Fatalf("nack accounting: per-bank %d, total %d", nacks, r.dir.TotalStats().Nacks)
	}
}
