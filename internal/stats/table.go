// Package stats provides the aggregation and presentation helpers the
// experiment harness uses: normalization against a baseline, arithmetic
// and geometric means, and fixed-width text tables shaped like the
// paper's figures.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which would indicate a broken normalization).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Ratio divides safely: 0/0 normalizes to 1 (both sides did nothing, so
// they are at parity) and x/0 with x > 0 returns +Inf, a deliberately
// loud marker — a finite stand-in would silently distort means.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		if num == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(num) / float64(den)
}

// Table is a labelled grid of numbers, one row per benchmark (or sweep
// point) and one column per system (or configuration).
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  []string
	Cells [][]float64 // [row][col]
	// Format is the cell printf verb; default "%.3f".
	Format string
}

// NewTable allocates an empty table with the given axes.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Cols: cols, Rows: rows, Cells: cells}
}

// Set stores a cell by labels; it panics on unknown labels (a typo in an
// experiment definition should fail loudly).
func (t *Table) Set(row, col string, v float64) {
	t.Cells[t.rowIdx(row)][t.colIdx(col)] = v
}

// Get reads a cell by labels.
func (t *Table) Get(row, col string) float64 {
	return t.Cells[t.rowIdx(row)][t.colIdx(col)]
}

func (t *Table) rowIdx(r string) int {
	for i, x := range t.Rows {
		if x == r {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown row %q", r))
}

func (t *Table) colIdx(c string) int {
	for i, x := range t.Cols {
		if x == c {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown column %q", c))
}

// AddMeanRows appends arithmetic-mean and geometric-mean rows computed
// over the named subset of rows (the paper excludes the microbenchmarks
// from its means).
func (t *Table) AddMeanRows(over []string) {
	am := make([]float64, len(t.Cols))
	gm := make([]float64, len(t.Cols))
	for c := range t.Cols {
		var xs []float64
		for _, r := range over {
			xs = append(xs, t.Cells[t.rowIdx(r)][c])
		}
		am[c] = Mean(xs)
		gm[c] = GeoMean(xs)
	}
	t.Rows = append(t.Rows, "amean", "gmean")
	t.Cells = append(t.Cells, am, gm)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	format := t.Format
	if format == "" {
		format = "%.3f"
	}
	rowW := len("benchmark")
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for j, c := range t.Cols {
		colW[j] = len(c)
		for i := range t.Rows {
			if n := len(fmt.Sprintf(format, t.Cells[i][j])); n > colW[j] {
				colW[j] = n
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	fmt.Fprintf(w, "%-*s", rowW, "")
	for j, c := range t.Cols {
		fmt.Fprintf(w, "  %*s", colW[j], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", rowW+sum(colW)+2*len(colW)))
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", rowW, r)
		for j := range t.Cols {
			fmt.Fprintf(w, "  %*s", colW[j], fmt.Sprintf(format, t.Cells[i][j]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// WriteCSV emits the table as CSV (header row of column labels, one row
// per benchmark/sweep point) — the same shape the original artifact's
// plotting pipeline consumes.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"row"}, t.Cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range t.Rows {
		rec := make([]string, 0, len(t.Cols)+1)
		rec = append(rec, r)
		for j := range t.Cols {
			rec = append(rec, strconv.FormatFloat(t.Cells[i][j], 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
