package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %g", g)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: geomean <= mean (AM-GM) for positive inputs.
func TestAMGM(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000)/100 + 0.01
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0, 0) != 1 {
		t.Fatal("0/0 should be 1")
	}
	if !math.IsInf(Ratio(5, 0), 1) {
		t.Fatal("x/0 should be +Inf")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("demo", []string{"a", "b"}, []string{"x", "y"})
	tb.Set("a", "x", 1)
	tb.Set("a", "y", 2)
	tb.Set("b", "x", 3)
	tb.Set("b", "y", 5)
	if tb.Get("b", "y") != 5 {
		t.Fatal("get")
	}
	tb.AddMeanRows([]string{"a", "b"})
	if got := tb.Get("amean", "x"); got != 2 {
		t.Fatalf("amean x = %g", got)
	}
	if got := tb.Get("gmean", "y"); math.Abs(got-math.Sqrt(10)) > 1e-12 {
		t.Fatalf("gmean y = %g", got)
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "amean", "gmean", "x", "y", "3.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableUnknownLabelPanics(t *testing.T) {
	tb := NewTable("demo", []string{"a"}, []string{"x"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Set("nope", "x", 1)
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("demo", []string{"a", "b"}, []string{"x", "y"})
	tb.Set("a", "x", 1.5)
	tb.Set("b", "y", 2)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "row,x,y\na,1.5,0\nb,0,2\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
