package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits in ascending order; values above the last bound land in an
// implicit overflow bucket. The telemetry layer uses these for latency,
// retry and occupancy distributions; Fprint renders them next to Table in
// the same fixed-width style.
type Histogram struct {
	Name   string
	Bounds []uint64
	Counts []uint64 // len(Bounds)+1; the last cell is the overflow bucket
	N      uint64
	Sum    uint64
	Max    uint64
}

// NewHistogram allocates a histogram over the given ascending bounds.
func NewHistogram(name string, bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram %q bounds not ascending", name))
		}
	}
	return &Histogram{Name: name, Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// ExpBounds returns n bounds starting at start, each factor times the
// previous — the usual shape for cycle-latency histograms.
func ExpBounds(start, factor uint64, n int) []uint64 {
	bs := make([]uint64, n)
	v := start
	for i := 0; i < n; i++ {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBounds returns n bounds start, start+step, ...
func LinearBounds(start, step uint64, n int) []uint64 {
	bs := make([]uint64, n)
	for i := 0; i < n; i++ {
		bs[i] = start + uint64(i)*step
	}
	return bs
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.Bounds) && v > h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the arithmetic mean of the observed values (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1). The overflow bucket reports the observed Max.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.N)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Fprint renders the histogram as labelled buckets with proportional
// bars, skipping empty leading/trailing buckets.
func (h *Histogram) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", h.Name)
	fmt.Fprintf(w, "n=%d mean=%.1f p50=%d p99=%d max=%d\n",
		h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
	if h.N == 0 {
		fmt.Fprintln(w)
		return
	}
	var peak uint64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	lo, hi := 0, len(h.Counts)-1
	for lo < hi && h.Counts[lo] == 0 {
		lo++
	}
	for hi > lo && h.Counts[hi] == 0 {
		hi--
	}
	for i := lo; i <= hi; i++ {
		label := fmt.Sprintf("> %d", h.Bounds[len(h.Bounds)-1])
		if i < len(h.Bounds) {
			label = fmt.Sprintf("<= %d", h.Bounds[i])
		}
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(h.Counts[i]*40/peak))
		}
		fmt.Fprintf(w, "%12s %8d %s\n", label, h.Counts[i], bar)
	}
	fmt.Fprintln(w)
}

// Series is a cycle-windowed time series: event counts bucketed by
// fixed-width windows of simulated time, so a run can show abort or
// forwarding rates over time rather than one aggregate number.
type Series struct {
	Name   string
	Window uint64
	Bins   []uint64
}

// NewSeries allocates a series with the given window width in cycles.
func NewSeries(name string, window uint64) *Series {
	if window == 0 {
		panic("stats: series window must be positive")
	}
	return &Series{Name: name, Window: window}
}

// Add records n events at the given cycle.
func (s *Series) Add(cycle uint64, n uint64) {
	idx := int(cycle / s.Window)
	for len(s.Bins) <= idx {
		s.Bins = append(s.Bins, 0)
	}
	s.Bins[idx] += n
}

// Total returns the sum over all windows.
func (s *Series) Total() uint64 {
	var t uint64
	for _, b := range s.Bins {
		t += b
	}
	return t
}

// Fprint renders one line per window with a proportional bar.
func (s *Series) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s (window %d cycles) ==\n", s.Name, s.Window)
	var peak uint64
	for _, b := range s.Bins {
		if b > peak {
			peak = b
		}
	}
	for i, b := range s.Bins {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(b*40/peak))
		}
		fmt.Fprintf(w, "%12d %8d %s\n", uint64(i)*s.Window, b, bar)
	}
	fmt.Fprintln(w)
}
