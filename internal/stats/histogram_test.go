package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Ratio's documented edge behaviour (0/0 = 1, x/0 = +Inf) also has a
// dedicated test in table_test.go; RatioInfPropagates pins that the Inf
// marker survives into a mean rather than silently collapsing.
func TestRatioInfPropagates(t *testing.T) {
	if got := Mean([]float64{Ratio(3, 0), 1}); !math.IsInf(got, 1) {
		t.Errorf("mean over an Inf ratio = %g, want +Inf", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 0, 1} // <=10, <=100, <=1000, overflow
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.N != 5 || h.Max != 5000 {
		t.Errorf("N=%d Max=%d", h.N, h.Max)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("p50 = %d, want 100", got)
	}
	if got := h.Quantile(1.0); got != 5000 {
		t.Errorf("p100 = %d, want 5000 (overflow bucket reports max)", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on descending bounds")
		}
	}()
	NewHistogram("bad", []uint64{10, 5})
}

func TestExpAndLinearBounds(t *testing.T) {
	if got := ExpBounds(10, 10, 3); got[0] != 10 || got[1] != 100 || got[2] != 1000 {
		t.Errorf("ExpBounds = %v", got)
	}
	if got := LinearBounds(1, 2, 3); got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("LinearBounds = %v", got)
	}
}

func TestSeriesWindows(t *testing.T) {
	s := NewSeries("aborts", 100)
	s.Add(0, 1)
	s.Add(99, 1)
	s.Add(100, 2)
	s.Add(950, 5)
	if len(s.Bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(s.Bins))
	}
	if s.Bins[0] != 2 || s.Bins[1] != 2 || s.Bins[9] != 5 {
		t.Errorf("bins = %v", s.Bins)
	}
	if s.Total() != 9 {
		t.Errorf("total = %d", s.Total())
	}
	var buf bytes.Buffer
	s.Fprint(&buf)
	if !strings.Contains(buf.String(), "window 100 cycles") {
		t.Errorf("render missing header:\n%s", buf.String())
	}
}

func TestHistogramFprint(t *testing.T) {
	h := NewHistogram("retries", LinearBounds(1, 1, 4))
	for i := 0; i < 10; i++ {
		h.Observe(uint64(i % 3))
	}
	var buf bytes.Buffer
	h.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== retries ==") || !strings.Contains(out, "#") {
		t.Errorf("render unexpected:\n%s", out)
	}
}
