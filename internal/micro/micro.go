// Package micro implements the two synthetic microbenchmarks of
// Section VI-C: llb (linked-list traverse-then-modify, low and high
// contention flavours) and cadd (clustered add: a hot shared variable
// held modified across a long cluster summation — the chained-add
// pattern that shows off transaction chaining).
package micro

import (
	"fmt"

	"chats/internal/machine"
	"chats/internal/mem"
	"chats/internal/sim"
	"chats/internal/structures"
)

// LLB traverses a shared sorted linked list and increments the value of
// a searched element. In the low-contention flavour each thread modifies
// mostly its own key range (but still traverses the shared prefix); in
// the high-contention flavour every thread modifies every range.
type LLB struct {
	// ListLen is the number of list nodes.
	ListLen int
	// Iters is the number of search-modify operations per thread.
	Iters int
	// PerThread is the width of a thread's modify window; 0 means the
	// whole list (high contention).
	PerThread int

	name    string
	threads int
	list    *structures.List
}

// NewLLB builds the microbenchmark; high selects the contended flavour.
func NewLLB(listLen, iters int, high bool) *LLB {
	l := &LLB{ListLen: listLen, Iters: iters, name: "llb-l", PerThread: 16}
	if high {
		l.name = "llb-h"
		l.PerThread = 0
	}
	return l
}

func (l *LLB) Name() string { return l.name }

func (l *LLB) Setup(w *machine.World, threads int) {
	l.threads = threads
	l.list = structures.NewList(w.Alloc)
	pool := structures.NewPool(w.Alloc, l.ListLen, structures.ListNodeWords)
	d := structures.Direct{M: w.Mem}
	for k := 0; k < l.ListLen; k++ {
		l.list.Insert(d, pool.Get(), uint64(k), 0)
	}
}

func (l *LLB) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*1013 + 61)
	for i := 0; i < l.Iters; i++ {
		var key uint64
		if l.PerThread == 0 {
			key = r.Uint64n(uint64(l.ListLen))
		} else {
			window := l.ListLen / l.threads
			off := r.Intn(l.PerThread) % window
			key = uint64(tid*window + off)
		}
		ctx.Atomic(func(tx machine.Tx) {
			v, ok := l.list.Find(tx, key)
			if !ok {
				panic("llb: key vanished")
			}
			l.list.Update(tx, key, v+1)
			tx.Work(60) // verify the modified element (post-write window)
		})
		ctx.Work(40)
	}
}

func (l *LLB) Check(w *machine.World) error {
	d := structures.Direct{M: w.Mem}
	var sum uint64
	for k := 0; k < l.ListLen; k++ {
		v, ok := l.list.Find(d, uint64(k))
		if !ok {
			return fmt.Errorf("llb: key %d missing", k)
		}
		sum += v
	}
	want := uint64(l.threads * l.Iters)
	if sum != want {
		return fmt.Errorf("llb: increment sum %d, want %d", sum, want)
	}
	return nil
}

// CAdd increments a hot shared variable and then sums a cluster of
// integers while still holding the variable speculatively modified — the
// paper's chained-add pattern where requester-speculates lets several
// transactions hold local copies of the hot line and serialize their
// commits through validation instead of aborting.
type CAdd struct {
	// Clusters is the number of clusters.
	Clusters int
	// ClusterLen is the number of integers per cluster.
	ClusterLen int
	// Iters is the number of operations per thread.
	Iters int

	threads  int
	shared   mem.Addr
	clusters mem.Addr
	sums     mem.Addr
}

// NewCAdd builds the microbenchmark.
func NewCAdd(clusters, clusterLen, iters int) *CAdd {
	return &CAdd{Clusters: clusters, ClusterLen: clusterLen, Iters: iters}
}

func (c *CAdd) Name() string { return "cadd" }

func (c *CAdd) cluster(i int) mem.Addr {
	words := (c.ClusterLen + mem.WordsPerLine - 1) / mem.WordsPerLine * mem.WordsPerLine
	return c.clusters + mem.Addr(i*words*mem.WordSize)
}

func (c *CAdd) Setup(w *machine.World, threads int) {
	c.threads = threads
	c.shared = w.Alloc.LineAligned(1)
	linesPer := (c.ClusterLen + mem.WordsPerLine - 1) / mem.WordsPerLine
	c.clusters = w.Alloc.Lines(c.Clusters * linesPer)
	d := structures.Direct{M: w.Mem}
	r := sim.NewRand(777)
	for i := 0; i < c.Clusters; i++ {
		base := c.cluster(i)
		for j := 0; j < c.ClusterLen; j++ {
			d.Store(base.Plus(j), r.Uint64n(50))
		}
	}
	c.sums = w.Alloc.Lines(threads)
}

func (c *CAdd) slot(tid int) mem.Addr { return c.sums + mem.Addr(tid*mem.LineSize) }

func (c *CAdd) Thread(ctx machine.Ctx, tid int) {
	r := sim.NewRand(uint64(tid)*509 + 71)
	var acc uint64
	for i := 0; i < c.Iters; i++ {
		cl := r.Intn(c.Clusters)
		ctx.Atomic(func(tx machine.Tx) {
			s := tx.Load(c.shared)
			tx.Store(c.shared, s+1) // hot line held modified from here on
			base := c.cluster(cl)
			var sum uint64
			for j := 0; j < c.ClusterLen; j++ {
				sum += tx.Load(base.Plus(j)) + s
			}
			acc = sum
		})
		ctx.Work(30)
	}
	ctx.Store(c.slot(tid), acc)
}

func (c *CAdd) Check(w *machine.World) error {
	got := w.Mem.ReadWord(c.shared)
	want := uint64(c.threads * c.Iters)
	if got != want {
		return fmt.Errorf("cadd: shared variable %d, want %d", got, want)
	}
	return nil
}
