package micro

import (
	"testing"

	"chats/internal/core"
	"chats/internal/machine"
	"chats/internal/structures"
)

func run(t *testing.T, kind core.Kind, w machine.Workload) (*machine.World, machine.RunStats) {
	t.Helper()
	policy, err := core.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	cfg.CycleLimit = 100_000_000
	m, err := machine.New(cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return m.World(), stats
}

func TestLLBIncrementExact(t *testing.T) {
	for _, high := range []bool{false, true} {
		w := NewLLB(64, 6, high)
		world, stats := run(t, core.KindCHATS, w)
		if stats.Commits == 0 {
			t.Fatal("no commits")
		}
		// Corrupt one value: the sum check must fire.
		d := structures.Direct{M: world.Mem}
		v, _ := w.list.Find(d, 0)
		w.list.Update(d, 0, v+1)
		if err := w.Check(world); err == nil {
			t.Fatalf("llb(high=%v) Check missed a phantom increment", high)
		}
	}
}

func TestLLBWindowsDisjointInLowContention(t *testing.T) {
	w := NewLLB(64, 1, false)
	if w.PerThread == 0 {
		t.Fatal("low contention must have a window")
	}
	h := NewLLB(64, 1, true)
	if h.PerThread != 0 {
		t.Fatal("high contention must span the list")
	}
	if w.Name() != "llb-l" || h.Name() != "llb-h" {
		t.Fatal("names wrong")
	}
}

func TestCAddSharedCounterExact(t *testing.T) {
	w := NewCAdd(8, 16, 5)
	world, stats := run(t, core.KindCHATS, w)
	if err := w.Check(world); err != nil {
		t.Fatal(err)
	}
	if stats.Commits == 0 {
		t.Fatal("no commits")
	}
	world.Mem.WriteWord(w.shared, world.Mem.ReadWord(w.shared)-1)
	if err := w.Check(world); err == nil {
		t.Fatal("cadd Check missed a lost increment")
	}
}

// cadd is the chained-add pattern: under CHATS the hot variable should
// actually be forwarded between transactions.
func TestCAddChainsUnderCHATS(t *testing.T) {
	w := NewCAdd(4, 32, 8)
	_, stats := run(t, core.KindCHATS, w)
	if stats.SpecRespsConsumed == 0 {
		t.Fatal("cadd produced no forwarding under CHATS")
	}
}
