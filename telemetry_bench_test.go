// Benchmarks sizing the cost of the telemetry layer. Run as:
//
//	go test -bench 'RunNilTracer|RunTelemetry' -benchmem
//
// BenchmarkRunNilTracer is the reference: no tracer attached, so every
// event site reduces to one nil pointer check (the per-event zero-alloc
// property itself is pinned by machine.TestNilTracerEmitsNoAllocations;
// -benchmem here shows the whole-run allocation budget the collector
// adds on top). BenchmarkRunTelemetry attaches a full Collector —
// event retention, metrics, hot-line and chain profiling — and should
// stay within ~15% of the reference on this medium microbenchmark.
package chats_test

import (
	"testing"

	"chats"
	"chats/internal/telemetry"
	"chats/internal/workloads"
)

func benchTelemetryCfg() chats.Config {
	cfg := chats.DefaultConfig()
	cfg.System = chats.CHATS
	cfg.Machine.CycleLimit = 500_000_000
	return cfg
}

func BenchmarkRunNilTracer(b *testing.B) {
	cfg := benchTelemetryCfg()
	b.ReportAllocs()
	var last chats.Stats
	for i := 0; i < b.N; i++ {
		w, err := workloads.New("cadd", workloads.Medium)
		if err != nil {
			b.Fatal(err)
		}
		last, err = chats.Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Cycles), "simcycles/op")
}

func BenchmarkRunTelemetry(b *testing.B) {
	cfg := benchTelemetryCfg()
	b.ReportAllocs()
	var last chats.Stats
	var events int
	for i := 0; i < b.N; i++ {
		w, err := workloads.New("cadd", workloads.Medium)
		if err != nil {
			b.Fatal(err)
		}
		col := telemetry.New(cfg.Machine.Cores, telemetry.Options{})
		last, err = chats.RunWithTracer(cfg, w, col)
		if err != nil {
			b.Fatal(err)
		}
		events = len(col.Events)
	}
	b.ReportMetric(float64(last.Cycles), "simcycles/op")
	b.ReportMetric(float64(events), "events/op")
}
